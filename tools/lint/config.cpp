#include "lint/config.hpp"

#include <cctype>

namespace tsvpt::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse `["a", "b", ...]` into out; false on malformed input.
bool parse_string_list(std::string_view s, std::vector<std::string>* out) {
  s = trim(s);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') return false;
  s = s.substr(1, s.size() - 2);
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() &&
           (std::isspace(static_cast<unsigned char>(s[pos])) ||
            s[pos] == ',')) {
      ++pos;
    }
    if (pos >= s.size()) break;
    if (s[pos] != '"') return false;
    const std::size_t close = s.find('"', pos + 1);
    if (close == std::string_view::npos) return false;
    out->push_back(std::string(s.substr(pos + 1, close - pos - 1)));
    pos = close + 1;
  }
  return true;
}

}  // namespace

bool parse_layering(std::string_view text, LayeringConfig* out,
                    std::string* error) {
  *out = LayeringConfig{};
  std::string section;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[' && line.back() == ']') {
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      *error = "line " + std::to_string(line_no) + ": expected key = [...]";
      return false;
    }
    const std::string key{trim(line.substr(0, eq))};
    // A list may span lines; accumulate until the closing bracket.
    std::string value{line.substr(eq + 1)};
    while (value.find(']') == std::string::npos && pos <= text.size()) {
      const std::size_t next_eol = text.find('\n', pos);
      std::string_view cont = text.substr(
          pos, next_eol == std::string_view::npos ? text.size() - pos
                                                  : next_eol - pos);
      pos = next_eol == std::string_view::npos ? text.size() + 1
                                               : next_eol + 1;
      ++line_no;
      const std::size_t cont_hash = cont.find('#');
      if (cont_hash != std::string_view::npos) cont = cont.substr(0, cont_hash);
      value += ' ';
      value += std::string(cont);
    }
    std::vector<std::string> values;
    if (!parse_string_list(value, &values)) {
      *error = "line " + std::to_string(line_no) + ": malformed string list";
      return false;
    }
    if (section == "modules" && key == "order") {
      out->modules = std::move(values);
    } else if (section == "deps") {
      out->deps[key] = std::set<std::string>(values.begin(), values.end());
    } else if (section == "must_consume" && key == "status_types") {
      out->status_types.insert(values.begin(), values.end());
    } else if (section == "must_consume" && key == "bool_functions") {
      out->consume_bool_functions.insert(values.begin(), values.end());
    } else if (section == "lock_order" && key == "blocking") {
      out->blocking_calls.insert(values.begin(), values.end());
    } else if (section == "hot_path" && key == "io") {
      out->hot_io_calls.insert(values.begin(), values.end());
    } else {
      *error = "line " + std::to_string(line_no) + ": unknown entry '" + key +
               "' in section [" + section + "]";
      return false;
    }
  }

  if (out->modules.empty()) {
    *error = "missing [modules] order = [...]";
    return false;
  }
  for (const std::string& m : out->modules) {
    if (out->deps.count(m) == 0) {
      *error = "module '" + m + "' listed in order but has no [deps] entry";
      return false;
    }
  }
  for (const auto& [mod, deps] : out->deps) {
    bool known = false;
    for (const std::string& m : out->modules) known = known || m == mod;
    if (!known) {
      *error = "module '" + mod + "' has deps but is not in [modules] order";
      return false;
    }
    for (const std::string& d : deps) {
      bool dep_known = false;
      for (const std::string& m : out->modules) dep_known = dep_known || m == d;
      if (!dep_known) {
        *error = "module '" + mod + "' depends on unknown module '" + d + "'";
        return false;
      }
    }
  }
  return true;
}

}  // namespace tsvpt::lint
