// tsvpt_lint — project-invariant static analyzer for the tsvpt tree.
//
//   tsvpt_lint --root <repo> [--config <layering.toml>] [--rules a,b]
//              [--disable rule] [--json <out.json>] [--sarif <out.sarif>]
//              [--layering-audit] [--list-rules] [--stats]
//              [--max-millis N] [paths...]
//
// Walks src/, tools/, tests/, bench/ and examples/ under --root (or lints
// just the explicitly listed files), runs the enabled rules, and prints
// file:line diagnostics.  Exit code: 0 clean, 1 diagnostics found (or the
// --max-millis budget exceeded), 2 usage or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/config.hpp"
#include "lint/sarif.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kVersion = "tsvpt_lint 1.0";

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool has_cpp_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Repo-relative path with forward slashes.
std::string relative_key(const fs::path& root, const fs::path& path) {
  return fs::relative(path, root).generic_string();
}

void usage(std::ostream& out) {
  out << "usage: tsvpt_lint [--root DIR] [--config FILE] [--rules LIST]\n"
         "                  [--disable RULE] [--json FILE] [--sarif FILE]\n"
         "                  [--layering-audit] [--list-rules] [--stats]\n"
         "                  [--max-millis N] [--version] [paths...]\n";
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start_time = std::chrono::steady_clock::now();
  fs::path root = ".";
  std::string config_path;
  std::string json_path;
  std::string sarif_path;
  long max_millis = -1;
  bool layering_audit = false;
  bool list_rules = false;
  bool show_stats = false;
  std::vector<std::string> explicit_paths;
  tsvpt::lint::Analyzer::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "tsvpt_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next_value("--root");
    } else if (arg == "--config") {
      config_path = next_value("--config");
    } else if (arg == "--json") {
      json_path = next_value("--json");
    } else if (arg == "--sarif") {
      sarif_path = next_value("--sarif");
    } else if (arg == "--max-millis") {
      max_millis = std::strtol(next_value("--max-millis"), nullptr, 10);
      if (max_millis <= 0) {
        std::cerr << "tsvpt_lint: --max-millis needs a positive integer\n";
        return 2;
      }
    } else if (arg == "--rules") {
      options.enabled.clear();
      for (const std::string& rule : split_csv(next_value("--rules"))) {
        options.enabled.insert(rule);
      }
    } else if (arg == "--disable") {
      options.enabled.erase(next_value("--disable"));
    } else if (arg == "--layering-audit") {
      layering_audit = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--version") {
      std::cout << kVersion << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tsvpt_lint: unknown flag '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const std::string& rule : tsvpt::lint::all_rules()) {
      std::cout << rule << "  " << tsvpt::lint::rule_description(rule)
                << "\n";
    }
    return 0;
  }
  for (const std::string& rule : options.enabled) {
    const auto& rules = tsvpt::lint::all_rules();
    if (std::find(rules.begin(), rules.end(), rule) == rules.end()) {
      std::cerr << "tsvpt_lint: unknown rule '" << rule
                << "' (see --list-rules)\n";
      return 2;
    }
  }

  if (config_path.empty()) {
    config_path = (root / "tools/lint/layering.toml").string();
  }
  std::string config_text;
  if (!read_file(config_path, &config_text)) {
    std::cerr << "tsvpt_lint: cannot read layering config '" << config_path
              << "'\n";
    return 2;
  }
  tsvpt::lint::LayeringConfig layering;
  std::string config_error;
  if (!tsvpt::lint::parse_layering(config_text, &layering, &config_error)) {
    std::cerr << "tsvpt_lint: " << config_path << ": " << config_error
              << "\n";
    return 2;
  }

  options.layering_audit = layering_audit;
  options.config_path = "tools/lint/layering.toml";
  tsvpt::lint::Analyzer analyzer{std::move(layering), options};

  std::vector<fs::path> targets;
  if (!explicit_paths.empty()) {
    for (const std::string& path : explicit_paths) {
      targets.emplace_back(path);
    }
  } else {
    for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
          targets.push_back(entry.path());
        }
      }
    }
  }
  std::sort(targets.begin(), targets.end());

  for (const fs::path& path : targets) {
    std::string content;
    if (!read_file(path, &content)) {
      std::cerr << "tsvpt_lint: cannot read '" << path.string() << "'\n";
      return 2;
    }
    analyzer.add_file(relative_key(root, path), content);
  }

  const std::vector<tsvpt::lint::Diagnostic> diags = analyzer.finish();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start_time)
                           .count();
  for (const tsvpt::lint::Diagnostic& diag : diags) {
    std::cout << tsvpt::lint::format_diagnostic(diag) << "\n";
  }
  if (show_stats || !diags.empty()) {
    const tsvpt::lint::Stats& stats = analyzer.stats();
    std::cout << "tsvpt_lint: " << stats.files_scanned << " files, "
              << stats.atomic_sites << " atomic sites ("
              << stats.atomic_nonrelaxed << " non-relaxed), "
              << stats.includes_checked << " cross-module includes, "
              << stats.determinism_sites << " determinism sites, "
              << stats.globals_audited << " namespace-scope statements, "
              << stats.headers_audited << " headers, " << stats.lock_sites
              << " lock sites (" << stats.lock_edges << " order edges, "
              << stats.blocking_sites << " blocking calls), "
              << stats.must_consume_sites << " must-consume sites, "
              << stats.hot_functions << " hot functions ("
              << stats.hot_callee_checks << " callee checks), "
              << stats.layouts_checked << " wire layouts ("
              << stats.layout_fields << " fields); " << diags.size()
              << " diagnostics, " << stats.suppressions_used
              << " suppressed; " << elapsed << " ms\n";
  }
  if (!json_path.empty()) {
    std::ofstream out{json_path, std::ios::binary};
    if (!out) {
      std::cerr << "tsvpt_lint: cannot write '" << json_path << "'\n";
      return 2;
    }
    out << tsvpt::lint::json_report(diags, analyzer.stats());
  }
  if (!sarif_path.empty()) {
    std::ofstream out{sarif_path, std::ios::binary};
    if (!out) {
      std::cerr << "tsvpt_lint: cannot write '" << sarif_path << "'\n";
      return 2;
    }
    out << tsvpt::lint::sarif_report(diags);
  }
  if (max_millis > 0 && elapsed > max_millis) {
    std::cerr << "tsvpt_lint: run took " << elapsed
              << " ms, over the --max-millis budget of " << max_millis
              << " ms\n";
    return 1;
  }
  return diags.empty() ? 0 : 1;
}
