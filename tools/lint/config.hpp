// Configuration for tsvpt_lint: the layering DAG plus the declared
// registries the flow-aware rules (must-consume, lock-order, hot-path)
// resolve names against.  The checked-in instance lives at
// tools/lint/layering.toml; LintLayeringAudit asserts the layering half
// matches the include graph that is actually in the tree.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tsvpt::lint {

struct LayeringConfig {
  /// Declared bottom-up; a module may only include modules that appear
  /// earlier in this list (plus itself), and then only via a declared edge.
  std::vector<std::string> modules;
  /// module -> allowed direct dependencies (fully enumerated, no closure).
  std::map<std::string, std::set<std::string>> deps;

  // --- flow-rule registries (all optional; empty = the rule only enforces
  // its built-in bans) -----------------------------------------------------

  /// [must_consume] status_types: return types whose value is a status that
  /// must never be dropped on the floor (DecodeStatus, BatchStatus, ...).
  /// Every function the tree declares with one of these return types joins
  /// the must-consume registry automatically.
  std::set<std::string> status_types;
  /// [must_consume] bool_functions: bool-returning functions whose result
  /// is a status by convention (send_all, try_push, ...).
  std::set<std::string> consume_bool_functions;
  /// [lock_order] blocking: calls that may block indefinitely (send_all,
  /// recv, fsync, poll, ...); holding any lock across one is diagnosed.
  std::set<std::string> blocking_calls;
  /// [hot_path] io: calls a `// hot:` function may not make when its
  /// contract bans io.
  std::set<std::string> hot_io_calls;

  [[nodiscard]] bool has_module(const std::string& name) const {
    return deps.count(name) != 0;
  }
};

/// Parse the minimal TOML subset the config file uses:
///   [modules]
///   order = ["ptsim", "obs", ...]
///   [deps]
///   core = ["ptsim", "circuit"]
///   [must_consume]
///   status_types = ["DecodeStatus", ...]
///   bool_functions = ["send_all", ...]
///   [lock_order]
///   blocking = ["fsync", ...]
///   [hot_path]
///   io = ["fsync", ...]
/// Comments start with '#'.  On failure returns false and sets `error`.
bool parse_layering(std::string_view text, LayeringConfig* out,
                    std::string* error);

}  // namespace tsvpt::lint
