// Layering configuration for the layering-dag rule: which src/ modules
// exist, and which direct include edges are allowed.  The checked-in
// instance lives at tools/lint/layering.toml; LintLayeringAudit asserts it
// matches the include graph that is actually in the tree.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tsvpt::lint {

struct LayeringConfig {
  /// Declared bottom-up; a module may only include modules that appear
  /// earlier in this list (plus itself), and then only via a declared edge.
  std::vector<std::string> modules;
  /// module -> allowed direct dependencies (fully enumerated, no closure).
  std::map<std::string, std::set<std::string>> deps;

  [[nodiscard]] bool has_module(const std::string& name) const {
    return deps.count(name) != 0;
  }
};

/// Parse the minimal TOML subset the layering file uses:
///   [modules]
///   order = ["ptsim", "obs", ...]
///   [deps]
///   core = ["ptsim", "circuit"]
/// Comments start with '#'.  On failure returns false and sets `error`.
bool parse_layering(std::string_view text, LayeringConfig* out,
                    std::string* error);

}  // namespace tsvpt::lint
