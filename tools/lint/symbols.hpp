// tsvpt_lint symbol/scope resolver: the lightweight semantic layer the
// flow-aware rules share.  It is deliberately not a parser — it is a
// single-pass scope machine over the lexer's token stream that recovers
// exactly the symbols the rules need to be trustworthy on this codebase:
//
//   * function definitions, with their unqualified name, enclosing (or
//     out-of-line `Class::name`) class, and body token range — the unit the
//     per-function statement walkers in flow.cpp operate on;
//   * `std::mutex` members per class, so lock-order can key a guard on
//     `mu_` inside a member function as `Class::mu_` and merge acquisition
//     edges across translation units;
//   * `// hot:` contract annotations attached to the definition directly
//     below them, parsed into the set of banned categories.
//
// Constructs the walker cannot classify (operator overloads, lambdas) fall
// back to plain block scopes, which keeps brace tracking sound; they simply
// cannot carry hot contracts or be resolved as transitive callees.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace tsvpt::lint {

/// Categories a `// hot:` contract can ban.  `// hot: reason` bans all
/// four; `// hot(alloc,lock): reason` bans just the listed ones.
struct HotContract {
  bool ban_alloc = false;
  bool ban_throw = false;
  bool ban_lock = false;
  bool ban_io = false;
  int line = 0;  // line of the contract comment (for diagnostics)
  std::string error;  // non-empty when the directive itself is malformed

  [[nodiscard]] bool any() const {
    return ban_alloc || ban_throw || ban_lock || ban_io;
  }
};

/// One function definition discovered by the scope walker.
struct FunctionDef {
  std::string name;        // unqualified (the token before the '(')
  std::string class_name;  // enclosing or out-of-line class; "" when free
  int line = 0;            // line of the name token
  std::size_t name_index = 0;  // token index of the name
  std::size_t body_begin = 0;  // token index of the opening '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  int decl_line = 0;           // first line of the declaration statement
  bool has_hot = false;
  HotContract hot;

  [[nodiscard]] std::string qualified() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// Everything the resolver extracted from one translation unit.
struct FileSymbols {
  std::vector<FunctionDef> functions;
  /// (declaring class, member name) for every `std::mutex` member.
  std::vector<std::pair<std::string, std::string>> mutex_members;
  /// `// hot:` comments that did not attach to any function definition
  /// (line numbers) — a dangling contract is a diagnosable mistake.
  std::vector<int> dangling_hot_lines;
};

/// Run the scope walker over one file's tokens.
[[nodiscard]] FileSymbols scan_symbols(const LexResult& lex);

/// Cross-TU symbol index built from every scanned file.
class SymbolIndex {
 public:
  /// `symbols` must outlive the index (the Analyzer keeps each file's
  /// FileSymbols alive for the whole run).
  void add(const std::string& path, const FileSymbols& symbols);

  /// mutex member name -> set of classes declaring a member of that name.
  [[nodiscard]] const std::map<std::string, std::set<std::string>>&
  mutex_owners() const {
    return mutex_owners_;
  }

  struct DefRef {
    const FunctionDef* def = nullptr;
    const std::string* file = nullptr;
  };

  /// All definitions sharing an unqualified name, across every file.
  [[nodiscard]] const std::vector<DefRef>* definitions_of(
      const std::string& name) const {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, std::set<std::string>> mutex_owners_;
  std::map<std::string, std::vector<DefRef>> by_name_;
  // Stable storage for the file paths DefRef points into.
  std::vector<std::unique_ptr<std::string>> paths_;
};

}  // namespace tsvpt::lint
