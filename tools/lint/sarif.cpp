#include "lint/sarif.hpp"

#include <set>

namespace tsvpt::lint {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string sarif_report(const std::vector<Diagnostic>& diags) {
  // Rule catalog: every toggleable rule plus any rule id that actually
  // fired (the suppression meta-rule only appears when it fires).
  std::set<std::string> rule_ids(all_rules().begin(), all_rules().end());
  for (const Diagnostic& diag : diags) rule_ids.insert(diag.rule);

  std::string out;
  out += "{\n";
  out += "  \"version\": \"2.1.0\",\n";
  out +=
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"tsvpt_lint\",\n";
  out += "          \"informationUri\": "
         "\"https://example.invalid/tsvpt/tools/lint\",\n";
  out += "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : rule_ids) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "            {\"id\": \"";
    append_escaped(out, rule);
    out += "\", \"shortDescription\": {\"text\": \"";
    append_escaped(out, rule_description(rule));
    out += "\"}}";
  }
  out += rule_ids.empty() ? "]\n" : "\n          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "        {\n";
    out += "          \"ruleId\": \"";
    append_escaped(out, diags[i].rule);
    out += "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"";
    append_escaped(out, diags[i].message);
    out += "\"},\n";
    out += "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"";
    append_escaped(out, diags[i].file);
    out += "\"}, \"region\": {\"startLine\": " +
           std::to_string(diags[i].line < 1 ? 1 : diags[i].line) + "}}}]\n";
    out += "        }";
  }
  out += diags.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace tsvpt::lint
