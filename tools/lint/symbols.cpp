#include "lint/symbols.hpp"

#include <algorithm>
#include <cstddef>

namespace tsvpt::lint {

namespace {

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

/// Keywords that can precede a '(' without being a function name.
const std::set<std::string>& non_function_keywords() {
  static const std::set<std::string> kKeywords{
      "if",       "for",      "while",    "switch",       "catch",
      "return",   "sizeof",   "alignof",  "alignas",      "decltype",
      "noexcept", "new",      "delete",   "static_assert","throw",
      "else",     "do",       "case",     "co_return",    "co_yield",
      "co_await", "typeid",   "assert",   "defined",      "requires"};
  return kKeywords;
}

/// Trailer idents allowed between a parameter list's ')' and the body '{'.
const std::set<std::string>& trailer_keywords() {
  static const std::set<std::string> kKeywords{"const", "noexcept", "override",
                                               "final", "mutable",  "try",
                                               "requires", "volatile"};
  return kKeywords;
}

/// Parse one `// hot:` / `// hot(cats):` directive.  Returns false when the
/// comment is not a hot directive at all.
bool parse_hot_directive(const Token& comment, HotContract* out) {
  const std::string& text = comment.text;
  std::size_t start = 0;
  while (start < text.size() &&
         (text[start] == '/' || text[start] == '*' || text[start] == ' ' ||
          text[start] == '\t')) {
    ++start;
  }
  if (text.compare(start, 4, "hot:") != 0 &&
      text.compare(start, 4, "hot(") != 0) {
    return false;
  }
  out->line = comment.line;
  std::size_t pos = start + 3;
  if (text[pos] == '(') {
    const std::size_t close = text.find(')', pos);
    if (close == std::string::npos || close + 1 >= text.size() ||
        text[close + 1] != ':') {
      out->error = "malformed hot contract: expected '// hot(cats): reason'";
      return true;
    }
    std::string cats = text.substr(pos + 1, close - pos - 1);
    std::size_t at = 0;
    while (at <= cats.size()) {
      std::size_t comma = cats.find(',', at);
      if (comma == std::string::npos) comma = cats.size();
      std::string cat = cats.substr(at, comma - at);
      while (!cat.empty() && cat.front() == ' ') cat.erase(cat.begin());
      while (!cat.empty() && cat.back() == ' ') cat.pop_back();
      if (cat == "alloc") {
        out->ban_alloc = true;
      } else if (cat == "throw") {
        out->ban_throw = true;
      } else if (cat == "lock") {
        out->ban_lock = true;
      } else if (cat == "io") {
        out->ban_io = true;
      } else if (!cat.empty()) {
        out->error = "unknown hot contract category '" + cat +
                     "' (expected alloc, throw, lock, io)";
        return true;
      }
      if (comma >= cats.size()) break;
      at = comma + 1;
    }
    if (!out->any()) {
      out->error = "hot contract bans no categories";
      return true;
    }
    pos = close + 2;
  } else {
    out->ban_alloc = out->ban_throw = out->ban_lock = out->ban_io = true;
    ++pos;  // step past ':'
  }
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos >= text.size()) {
    out->error = "hot contract must carry a reason: '// hot: <why>'";
  }
  return true;
}

}  // namespace

FileSymbols scan_symbols(const LexResult& lex) {
  FileSymbols out;

  // Directive lines never contain definitions; work on the rest.
  std::vector<const Token*> code;
  std::vector<std::size_t> code_to_tok;  // index back into lex.tokens
  code.reserve(lex.tokens.size());
  for (std::size_t i = 0; i < lex.tokens.size(); ++i) {
    if (!lex.tokens[i].in_directive) {
      code.push_back(&lex.tokens[i]);
      code_to_tok.push_back(i);
    }
  }
  const auto cpunct = [&](std::size_t i, std::string_view t) {
    return i < code.size() && is_punct(*code[i], t);
  };
  const auto cident = [&](std::size_t i) {
    return i < code.size() && code[i]->kind == TokKind::kIdentifier;
  };
  const auto cskip = [&](std::size_t open, std::string_view o,
                         std::string_view c) {
    int depth = 0;
    std::size_t i = open;
    for (; i < code.size(); ++i) {
      if (is_punct(*code[i], o)) ++depth;
      if (is_punct(*code[i], c) && --depth == 0) return i;
    }
    return code.size() - 1;
  };

  // ---- pass 1: scope classification --------------------------------------
  // For every code-token index, the innermost enclosing class name ("" at
  // namespace/function scope).  Also collects std::mutex members per class.
  std::vector<std::string> class_at(code.size());
  {
    struct Scope {
      char kind = 'b';   // 'n' namespace, 'c' class, 'b' block
      std::string name;  // class name when kind == 'c'
    };
    std::vector<Scope> scopes;
    auto innermost_class = [&]() -> std::string {
      for (std::size_t i = scopes.size(); i-- > 0;) {
        if (scopes[i].kind == 'c') return scopes[i].name;
      }
      return "";
    };
    for (std::size_t i = 0; i < code.size(); ++i) {
      class_at[i] = innermost_class();
      if (cpunct(i, "{")) {
        Scope scope;
        // Look back to the statement boundary for namespace/class keywords.
        for (std::size_t j = i; j-- > 0;) {
          const Token& tok = *code[j];
          if (is_punct(tok, ";") || is_punct(tok, "{") || is_punct(tok, "}")) {
            break;
          }
          if (is_ident(tok, "namespace")) {
            scope.kind = 'n';
            break;
          }
          if (is_ident(tok, "class") || is_ident(tok, "struct") ||
              is_ident(tok, "union")) {
            scope.kind = 'c';
            // The name is the identifier right after the keyword (enum
            // class X / anonymous structs leave the name empty, which is
            // all the resolver needs).
            if (cident(j + 1)) scope.name = code[j + 1]->text;
            break;
          }
          if (is_ident(tok, "enum")) break;  // enumerators are not a class
        }
        scopes.push_back(std::move(scope));
      } else if (cpunct(i, "}")) {
        if (!scopes.empty()) scopes.pop_back();
      } else if (cident(i) && code[i]->text == "mutex" && cident(i + 1) &&
                 !innermost_class().empty()) {
        // `std::mutex name;` (or brace-init) inside a class body: a member
        // the lock-order rule can key on.  `mutex` as a type is preceded by
        // `::` (std::mutex) or starts the declaration (using-imported).
        const bool typed = i == 0 || cpunct(i - 1, "::") ||
                           is_punct(*code[i - 1], ";") ||
                           is_punct(*code[i - 1], "{") ||
                           is_ident(*code[i - 1], "mutable") ||
                           is_ident(*code[i - 1], "static");
        if (typed) {
          out.mutex_members.emplace_back(innermost_class(),
                                         code[i + 1]->text);
        }
      }
    }
  }

  // ---- pass 2: function definitions --------------------------------------
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!cident(i) || !cpunct(i + 1, "(")) continue;
    const std::string& name = code[i]->text;
    if (non_function_keywords().count(name) != 0) continue;
    if (i > 0) {
      const Token& prev = *code[i - 1];
      // Member-init-list entries (`: a_(1)`), call chains (`x.f(`), and
      // second declarators (`, b(`) are never definitions.
      if (is_punct(prev, ".") || is_punct(prev, "->") ||
          is_punct(prev, ":") || is_punct(prev, ",")) {
        continue;
      }
    }
    const std::size_t close = cskip(i + 1, "(", ")");
    if (close + 1 >= code.size()) continue;

    // Walk the trailer between ')' and the body '{': cv-qualifiers,
    // noexcept(...), override/final, trailing return, ctor init list.
    std::size_t j = close + 1;
    bool in_init_list = false;
    bool in_trailing_return = false;
    std::size_t body = 0;
    while (j < code.size()) {
      const Token& tok = *code[j];
      if (is_punct(tok, "{")) {
        if (in_init_list || in_trailing_return) {
          // A '{' directly after an identifier or '>' inside an init list
          // or trailing return is a member brace-init / braced type arg;
          // anything else opens the body.
          const Token& before = *code[j - 1];
          if (before.kind == TokKind::kIdentifier || is_punct(before, ">")) {
            j = cskip(j, "{", "}") + 1;
            continue;
          }
        }
        body = j;
        break;
      }
      if (is_punct(tok, ";") || is_punct(tok, "=")) break;  // declaration
      if (is_punct(tok, "(")) {
        j = cskip(j, "(", ")") + 1;
        continue;
      }
      if (is_punct(tok, ":")) {
        in_init_list = true;
        ++j;
        continue;
      }
      if (is_punct(tok, "->")) {
        in_trailing_return = true;
        ++j;
        continue;
      }
      if (is_punct(tok, "<")) {
        j = cskip(j, "<", ">") + 1;
        continue;
      }
      if (tok.kind == TokKind::kIdentifier &&
          (trailer_keywords().count(tok.text) != 0 || in_init_list ||
           in_trailing_return)) {
        ++j;
        continue;
      }
      if (is_punct(tok, ",") || is_punct(tok, "::") || is_punct(tok, "&") ||
          is_punct(tok, "*")) {
        ++j;
        continue;
      }
      break;  // anything else: not a definition
    }
    if (body == 0) continue;

    FunctionDef def;
    def.name = name;
    def.line = code[i]->line;
    def.name_index = code_to_tok[i];
    def.body_begin = code_to_tok[body];
    const std::size_t body_close = cskip(body, "{", "}");
    def.body_end = code_to_tok[body_close];

    // Out-of-line `Class::name(` beats the (empty) scope class.
    if (i >= 2 && cpunct(i - 1, "::") && cident(i - 2)) {
      def.class_name = code[i - 2]->text;
    } else {
      def.class_name = class_at[i];
    }

    // First line of the declaration statement, for hot-contract attachment:
    // walk back to the previous statement boundary.
    def.decl_line = def.line;
    for (std::size_t k = i; k-- > 0;) {
      const Token& tok = *code[k];
      if (is_punct(tok, ";") || is_punct(tok, "{") || is_punct(tok, "}")) {
        break;
      }
      def.decl_line = std::min(def.decl_line, tok.line);
    }

    out.functions.push_back(std::move(def));
    // Resume after the header so parameter names are not re-scanned as
    // candidates; the body itself may contain nested definitions the walk
    // still visits (i advances one token at a time from here).
    i = close;
  }

  // ---- pass 3: hot-contract attachment -----------------------------------
  std::set<int> comment_lines;
  for (const Token& comment : lex.comments) {
    for (int l = comment.line; l <= comment.end_line; ++l) {
      comment_lines.insert(l);
    }
  }
  for (const Token& comment : lex.comments) {
    HotContract contract;
    if (!parse_hot_directive(comment, &contract)) continue;
    // The contract governs the first non-comment line below it (stacked doc
    // comments in between are fine).
    int target = comment.end_line + 1;
    while (comment_lines.count(target) != 0) ++target;
    bool attached = false;
    for (FunctionDef& def : out.functions) {
      if (def.decl_line == target || def.line == target) {
        def.has_hot = true;
        def.hot = contract;
        attached = true;
        break;
      }
    }
    if (!attached) out.dangling_hot_lines.push_back(comment.line);
  }

  return out;
}

void SymbolIndex::add(const std::string& path, const FileSymbols& symbols) {
  paths_.push_back(std::make_unique<std::string>(path));
  const std::string* stored = paths_.back().get();
  for (const auto& [cls, member] : symbols.mutex_members) {
    mutex_owners_[member].insert(cls);
  }
  for (const FunctionDef& def : symbols.functions) {
    by_name_[def.name].push_back(DefRef{&def, stored});
  }
}

}  // namespace tsvpt::lint
