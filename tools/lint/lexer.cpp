#include "lint/lexer.hpp"

#include <cctype>

namespace tsvpt::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Cursor over the source with physical line tracking and phase-2 line
// splicing (backslash-newline disappears, the line counter still advances).
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
  [[nodiscard]] int line() const { return line_; }

  /// Current character after splicing; '\0' at end.
  [[nodiscard]] char peek() const {
    std::size_t p = pos_;
    while (is_splice(p)) p += splice_len(p);
    return p < src_.size() ? src_[p] : '\0';
  }

  [[nodiscard]] char peek2() const {
    std::size_t p = pos_;
    while (is_splice(p)) p += splice_len(p);
    if (p < src_.size()) ++p;  // step over peek()
    while (is_splice(p)) p += splice_len(p);
    return p < src_.size() ? src_[p] : '\0';
  }

  /// Advance one (spliced) character and return it.
  char next() {
    while (is_splice(pos_)) {
      pos_ += splice_len(pos_);
      ++line_;
    }
    if (pos_ >= src_.size()) return '\0';
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  /// Raw (unspliced) access, for raw string literals.
  [[nodiscard]] char raw_peek() const {
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }
  char raw_next() {
    if (pos_ >= src_.size()) return '\0';
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

 private:
  [[nodiscard]] bool is_splice(std::size_t p) const {
    if (p + 1 >= src_.size() || src_[p] != '\\') return false;
    if (src_[p + 1] == '\n') return true;
    return p + 2 < src_.size() && src_[p + 1] == '\r' && src_[p + 2] == '\n';
  }
  [[nodiscard]] std::size_t splice_len(std::size_t p) const {
    return src_[p + 1] == '\r' ? 3 : 2;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

LexResult lex(std::string_view source) {
  LexResult out;
  Cursor cur{source};
  bool in_directive = false;
  bool at_line_start = true;  // only whitespace seen on this logical line

  auto push = [&](TokKind kind, std::string text, int line, int end_line) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = line;
    tok.end_line = end_line;
    tok.in_directive = in_directive;
    if (kind == TokKind::kComment) {
      out.comments.push_back(std::move(tok));
    } else {
      out.tokens.push_back(std::move(tok));
    }
  };

  while (!cur.done()) {
    const char c = cur.peek();
    const int line = cur.line();

    if (c == '\n') {
      cur.next();
      in_directive = false;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.next();
      continue;
    }

    // Line comment, including `// ... \` continuations (the splice-aware
    // cursor folds those in, so the comment's end_line covers them).
    if (c == '/' && cur.peek2() == '/') {
      std::string text;
      while (!cur.done() && cur.peek() != '\n') text += cur.next();
      push(TokKind::kComment, std::move(text), line, cur.line());
      continue;
    }
    if (c == '/' && cur.peek2() == '*') {
      std::string text;
      text += cur.next();
      text += cur.next();
      while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek2() == '/') {
          text += cur.next();
          text += cur.next();
          break;
        }
        text += cur.next();
      }
      push(TokKind::kComment, std::move(text), line, cur.line());
      continue;
    }

    if (c == '#' && at_line_start) {
      in_directive = true;
      push(TokKind::kPunct, "#", line, line);
      cur.next();
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    if (is_ident_start(c)) {
      std::string text;
      while (!cur.done() && is_ident_char(cur.peek())) text += cur.next();
      // Raw string literal right after an encoding prefix ending in R?
      const bool raw_prefix = !text.empty() && text.back() == 'R' &&
                              (text == "R" || text == "u8R" || text == "uR" ||
                               text == "UR" || text == "LR");
      if (raw_prefix && cur.peek() == '"') {
        // R"delim( ... )delim" — no splicing, no escapes inside.
        text += cur.raw_next();  // opening quote
        std::string delim;
        while (!cur.done() && cur.raw_peek() != '(' && delim.size() < 20) {
          delim += cur.raw_next();
        }
        text += delim;
        if (!cur.done()) text += cur.raw_next();  // '('
        const std::string closer = ")" + delim + "\"";
        std::string body;
        while (!cur.done()) {
          body += cur.raw_next();
          if (body.size() >= closer.size() &&
              body.compare(body.size() - closer.size(), closer.size(),
                           closer) == 0) {
            break;
          }
        }
        text += body;
        push(TokKind::kString, std::move(text), line, cur.line());
        continue;
      }
      if (raw_prefix || text == "u8" || text == "u" || text == "U" ||
          text == "L") {
        if (cur.peek() == '"' || cur.peek() == '\'') {
          // Encoding-prefixed ordinary literal: fall through by treating the
          // prefix as part of the upcoming string token.
          const char quote = cur.next();
          std::string lit = text;
          lit += quote;
          while (!cur.done() && cur.peek() != quote && cur.peek() != '\n') {
            const char ch = cur.next();
            lit += ch;
            if (ch == '\\' && !cur.done()) lit += cur.next();
          }
          if (!cur.done() && cur.peek() == quote) lit += cur.next();
          push(TokKind::kString, std::move(lit), line, cur.line());
          continue;
        }
      }
      push(TokKind::kIdentifier, std::move(text), line, cur.line());
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek2())))) {
      std::string text;
      while (!cur.done()) {
        const char ch = cur.peek();
        if (is_ident_char(ch) || ch == '.' || ch == '\'') {
          text += cur.next();
          // Exponent signs: 1e-9, 0x1p+3.
          if ((text.back() == 'e' || text.back() == 'E' ||
               text.back() == 'p' || text.back() == 'P') &&
              (cur.peek() == '+' || cur.peek() == '-')) {
            text += cur.next();
          }
        } else {
          break;
        }
      }
      push(TokKind::kNumber, std::move(text), line, cur.line());
      continue;
    }

    if (c == '"' || c == '\'') {
      const char quote = cur.next();
      std::string text(1, quote);
      while (!cur.done() && cur.peek() != quote && cur.peek() != '\n') {
        const char ch = cur.next();
        text += ch;
        if (ch == '\\' && !cur.done()) text += cur.next();
      }
      if (!cur.done() && cur.peek() == quote) text += cur.next();
      push(TokKind::kString, std::move(text), line, cur.line());
      continue;
    }

    // Punctuation: only the multi-char operators the rules inspect get
    // longest-match treatment; everything else is a single char.
    const char d = cur.peek2();
    if ((c == ':' && d == ':') || (c == '-' && d == '>')) {
      std::string text;
      text += cur.next();
      text += cur.next();
      push(TokKind::kPunct, std::move(text), line, line);
      continue;
    }
    push(TokKind::kPunct, std::string(1, cur.next()), line, line);
  }
  return out;
}

}  // namespace tsvpt::lint
