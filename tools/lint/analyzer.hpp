// tsvpt_lint rule engine.
//
// The Analyzer consumes (path, content) pairs — real files from the driver,
// inline fixture strings from the unit tests — and enforces the project
// invariants:
//
//   atomics-contract   every load/store/fetch_*/exchange/compare_exchange/
//                      wait on a std::atomic passes an explicit
//                      std::memory_order (no seq_cst-by-default), and every
//                      non-relaxed ordering in src/ carries a same-line-or-
//                      preceding `// mo:` comment naming its counterpart.
//   layering-dag       src/ module includes must follow the DAG declared in
//                      tools/lint/layering.toml: no undeclared edges, no
//                      back-edges, no cycles.  Audit mode additionally
//                      flags declared edges no include actually uses.
//   determinism-ban    rand()/srand()/time()/clock()/gettimeofday(),
//                      std::random_device (outside src/ptsim/rng) and
//                      std::chrono::system_clock are banned in src/; mutable
//                      namespace-scope variables are banned in the physics
//                      modules src/{device,process,circuit,core}.
//   header-hygiene     headers use #pragma once and never `using namespace`;
//                      a .cpp with a same-stem sibling header includes it
//                      first.
//   metric-name        obs metric registrations in src/ (counter/gauge/
//                      histogram with a literal first argument) follow the
//                      Prometheus-style naming contract: tsvpt_[a-z0-9_]+,
//                      counters end `_total`, histograms end a unit suffix,
//                      gauges end a unit or countable suffix.
//
// Flow-aware rules (built on the symbol resolver in symbols.hpp and the
// statement walkers in flow.cpp):
//
//   lock-order         RAII guard acquisitions form a global mutex
//                      acquisition-order graph across all TUs; cycles
//                      (potential deadlock) and locks held across registered
//                      blocking calls are diagnosed.
//   must-consume       results of functions returning a registered status
//                      type (or named in the bool-status registry) must be
//                      assigned, compared, or returned — never dropped as a
//                      bare statement.
//   wire-layout        `// layout:` / `// field:` directives on framing
//                      offset constants are cross-checked: fields start at
//                      0, stay contiguous and non-overlapping, sum to the
//                      declared header size, and the CRC span stays inside
//                      the header without covering the CRC field itself.
//   hot-path           a function under a `// hot:` contract may not
//                      allocate, throw, lock, or call IO (or the subset in
//                      `// hot(cats):`), enforced transitively one call
//                      level deep.
//
// Suppression: `// lint:allow(<rule>): <reason>` on (or immediately above)
// the offending line.  The reason is mandatory, and suppressions that never
// fire are themselves diagnosed, so the allow-list can only shrink.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/config.hpp"
#include "lint/lexer.hpp"
#include "lint/symbols.hpp"

namespace tsvpt::lint {

inline constexpr const char* kRuleAtomics = "atomics-contract";
inline constexpr const char* kRuleLayering = "layering-dag";
inline constexpr const char* kRuleDeterminism = "determinism-ban";
inline constexpr const char* kRuleHygiene = "header-hygiene";
inline constexpr const char* kRuleMetricName = "metric-name";
inline constexpr const char* kRuleLockOrder = "lock-order";
inline constexpr const char* kRuleMustConsume = "must-consume";
inline constexpr const char* kRuleWireLayout = "wire-layout";
inline constexpr const char* kRuleHotPath = "hot-path";
/// Meta-rule guarding the suppression mechanism itself (reason-less or
/// never-firing `lint:allow` comments).  Not suppressible, not toggleable.
inline constexpr const char* kRuleSuppression = "suppression";

/// The nine toggleable rule families, in catalog order.
[[nodiscard]] const std::vector<std::string>& all_rules();

/// One-line human description of a rule (for --list-rules).
[[nodiscard]] std::string rule_description(const std::string& rule);

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" — the clickable format every consumer sees.
[[nodiscard]] std::string format_diagnostic(const Diagnostic& diag);

/// Per-rule audit counters: how many sites each rule actually examined.
struct Stats {
  int files_scanned = 0;
  int atomic_sites = 0;        // atomic op / fence call sites audited
  int atomic_nonrelaxed = 0;   // subset that required a // mo: contract
  int includes_checked = 0;    // cross-module src/ include edges audited
  int determinism_sites = 0;   // banned-symbol candidates audited
  int globals_audited = 0;     // namespace-scope statements audited
  int headers_audited = 0;     // headers checked for pragma/using hygiene
  int metric_names_checked = 0;  // literal metric registrations audited
  int lock_sites = 0;            // RAII guard acquisitions tracked
  int lock_edges = 0;            // distinct acquisition-order edges observed
  int blocking_sites = 0;        // blocking-call sites audited in functions
  int must_consume_sites = 0;    // registered status call sites audited
  int hot_functions = 0;         // functions under a hot contract
  int hot_callee_checks = 0;     // transitive callee summaries consulted
  int layouts_checked = 0;       // wire layouts validated
  int layout_fields = 0;         // field directives audited
  int suppressions_used = 0;
};

class Analyzer {
 public:
  struct Options {
    /// Enabled rule families; defaults to all nine.
    std::set<std::string> enabled{
        kRuleAtomics,     kRuleLayering,   kRuleDeterminism,
        kRuleHygiene,     kRuleMetricName, kRuleLockOrder,
        kRuleMustConsume, kRuleWireLayout, kRuleHotPath};
    /// Flag declared-but-unused layering edges (LintLayeringAudit).
    bool layering_audit = false;
    /// Path the layering config is reported under in diagnostics.
    std::string config_path = "tools/lint/layering.toml";
  };

  Analyzer(LayeringConfig layering, Options options);

  /// `path` must be repo-relative with forward slashes (e.g.
  /// "src/core/pt_sensor.cpp"); it drives module/scope classification.
  void add_file(std::string path, std::string_view content);

  /// Run every enabled rule over everything added; returns diagnostics
  /// sorted by file then line.  Call once.
  [[nodiscard]] std::vector<Diagnostic> finish();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct FileData {
    std::string path;
    LexResult lex;
    FileSymbols symbols;  // populated when any flow rule is enabled
  };

  LayeringConfig layering_;
  Options options_;
  Stats stats_;
  std::vector<FileData> files_;
  std::set<std::string> atomic_names_;  // collected across all files
};

/// Machine-readable report: {"diagnostics": [...], "stats": {...}}.
[[nodiscard]] std::string json_report(const std::vector<Diagnostic>& diags,
                                      const Stats& stats);

}  // namespace tsvpt::lint
