#include "lint/flow.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <optional>
#include <set>
#include <utility>

namespace tsvpt::lint {

namespace {

// ---------------------------------------------------------------------------
// Token helpers (flow.cpp keeps its own copies; the anonymous namespaces in
// analyzer.cpp / symbols.cpp are deliberately not exported).

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  std::size_t i = open;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_text)) ++depth;
    if (is_punct(toks[i], close_text) && --depth == 0) return i;
  }
  return toks.size() - 1;
}

/// Walk backwards from a closing bracket to its matching opener.
std::size_t skip_balanced_back(const std::vector<Token>& toks,
                               std::size_t close, std::string_view open_text,
                               std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(toks[i], close_text)) ++depth;
    if (is_punct(toks[i], open_text) && --depth == 0) return i;
  }
  return 0;
}

const std::set<std::string>& expr_keywords() {
  static const std::set<std::string> kKeywords{
      "return", "co_return", "co_yield", "case", "else", "do", "throw"};
  return kKeywords;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kKeywords{"if", "while", "for", "switch"};
  return kKeywords;
}

/// True when the identifier at `i` (known to be followed by '(') reads as a
/// call expression rather than a declaration like `BatchStatus consume(`.
bool call_context(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;  // file scope: a declaration
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kIdentifier) {
    return expr_keywords().count(prev.text) != 0;
  }
  // `Foo* f(` / `Foo& f(` / `vector<T> f(` declare a function of that name.
  if (is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&")) {
    return false;
  }
  return true;
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards{"lock_guard", "scoped_lock",
                                             "unique_lock", "shared_lock"};
  return kGuards;
}

const std::set<std::string>& alloc_calls() {
  static const std::set<std::string> kAlloc{
      "malloc",      "calloc",      "realloc",   "aligned_alloc",
      "strdup",      "make_unique", "make_shared",
      // Container growth is allocation too; hot code must pre-size.
      "push_back",   "emplace_back", "resize",   "reserve",
      "append",      "insert"};
  return kAlloc;
}

const std::set<std::string>& non_callee_keywords() {
  static const std::set<std::string> kKeywords{
      "if",       "for",      "while",    "switch",        "catch",
      "return",   "sizeof",   "alignof",  "alignas",       "decltype",
      "noexcept", "new",      "delete",   "static_assert", "throw",
      "else",     "do",       "case",     "co_return",     "co_yield",
      "co_await", "typeid",   "assert",   "defined",       "requires"};
  return kKeywords;
}

// ---------------------------------------------------------------------------
// lock-order

struct EdgeSite {
  const std::string* file = nullptr;
  int line = 0;
  std::string function;
};

struct HeldLock {
  std::string key;
  std::string var;  // guard variable name ("" for unnamed temporaries)
  int depth = 0;    // brace depth at acquisition (for scope release)
  int line = 0;
};

/// Resolve a guard's mutex argument (token range [a, b)) to a stable,
/// cross-TU key.  `mu_` inside a member of class C -> "C::mu_"; `x.mu` with
/// a unique declaring class -> "Class::mu"; `accessor()` -> "accessor()";
/// anything else falls back to the literal spelling of the chain.
std::string resolve_mutex_key(const std::vector<Token>& toks, std::size_t a,
                              std::size_t b, const std::string& class_name,
                              const SymbolIndex& index) {
  if (a >= b) return "";
  const auto& owners = index.mutex_owners();

  // `sink_mutex()` / `detail::mu()` — key on the accessor: one accessor, one
  // mutex, whatever TU calls it.
  if (is_punct(toks[b - 1], ")")) {
    const std::size_t open = skip_balanced_back(toks, b - 1, "(", ")");
    if (open > a) {
      std::string name;
      for (std::size_t k = a; k < open; ++k) name += toks[k].text;
      if (!name.empty()) return name + "()";
    }
    return "";
  }
  if (toks[b - 1].kind != TokKind::kIdentifier) {
    std::string literal;
    for (std::size_t k = a; k < b; ++k) literal += toks[k].text;
    return literal;
  }
  const std::string& leaf = toks[b - 1].text;

  const auto member_key = [&](const std::string& name) -> std::string {
    const auto it = owners.find(name);
    if (it != owners.end()) {
      if (!class_name.empty() && it->second.count(class_name) != 0) {
        return class_name + "::" + name;
      }
      if (it->second.size() == 1) return *it->second.begin() + "::" + name;
    }
    return "";
  };

  if (b - a == 1) {
    // Bare name: a member of the enclosing class, or a unique member.
    const std::string resolved = member_key(leaf);
    return resolved.empty() ? leaf : resolved;
  }
  const Token& sep = toks[b - 2];
  if (is_punct(sep, ".") || is_punct(sep, "->")) {
    // `this->mu_` is the enclosing class; `obj.mu` resolves when exactly one
    // class declares a mutex member of that name.
    if (b - a == 3 && is_ident(toks[a], "this")) {
      if (!class_name.empty()) return class_name + "::" + leaf;
    }
    const std::string resolved = member_key(leaf);
    if (!resolved.empty()) return resolved;
  }
  // Qualified (`detail::g_mu`) or unresolvable chain: literal spelling.
  std::string literal;
  for (std::size_t k = a; k < b; ++k) literal += toks[k].text;
  return literal;
}

// ---------------------------------------------------------------------------
// wire-layout

struct LayoutField {
  std::string name;
  long offset = 0;
  long size = 0;
  const std::string* file = nullptr;
  int line = 0;
};

struct Layout {
  std::string name;
  const std::string* file = nullptr;
  int line = 0;
  long size = -1;
  long crc_lo = -1;
  long crc_hi = -1;
  bool has_crc = false;
  std::vector<LayoutField> fields;
};

std::size_t directive_payload_start(const std::string& text) {
  std::size_t start = 0;
  while (start < text.size() &&
         (text[start] == '/' || text[start] == '*' || text[start] == ' ' ||
          text[start] == '\t')) {
    ++start;
  }
  return start;
}

std::vector<std::string> split_words(std::string_view s) {
  std::vector<std::string> words;
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
    std::size_t end = pos;
    while (end < s.size() && s[end] != ' ' && s[end] != '\t') ++end;
    if (end > pos) words.emplace_back(s.substr(pos, end - pos));
    pos = end;
  }
  return words;
}

bool parse_long(std::string_view s, long* out) {
  if (s.empty()) return false;
  const std::string buf{s};
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 0);
  if (end == buf.c_str()) return false;
  *out = v;
  return true;
}

// ---------------------------------------------------------------------------
// hot-path

struct CatHit {
  bool hit = false;
  int line = 0;
  std::string what;
};

struct HotSummary {
  CatHit alloc;
  CatHit thr;
  CatHit lock;
  CatHit io;

  [[nodiscard]] const CatHit* by_category(char cat) const {
    switch (cat) {
      case 'a': return &alloc;
      case 't': return &thr;
      case 'l': return &lock;
      default:  return &io;
    }
  }
};

HotSummary summarize_function(const std::vector<Token>& toks,
                              const FunctionDef& fn,
                              const LayeringConfig& config) {
  HotSummary s;
  const std::size_t end = std::min(fn.body_end, toks.size() - 1);
  for (std::size_t i = fn.body_begin; i <= end; ++i) {
    const Token& tok = toks[i];
    if (tok.in_directive || tok.kind != TokKind::kIdentifier) continue;
    const std::string& t = tok.text;
    const auto record = [&](CatHit* cat, const std::string& what) {
      if (!cat->hit) {
        cat->hit = true;
        cat->line = tok.line;
        cat->what = what;
      }
    };
    if (t == "new") {
      if (i > 0 && is_ident(toks[i - 1], "operator")) continue;
      record(&s.alloc, "new");
    } else if (alloc_calls().count(t) != 0 && i + 1 < toks.size() &&
               (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "<"))) {
      record(&s.alloc, t);
    } else if (t == "throw") {
      record(&s.thr, "throw");
    } else if (guard_types().count(t) != 0) {
      record(&s.lock, t);
    } else if ((t == "lock" || t == "try_lock") && i > 0 &&
               (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                is_punct(toks[i - 1], "::")) &&
               i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      record(&s.lock, t);
    } else if (config.hot_io_calls.count(t) != 0 && i + 1 < toks.size() &&
               is_punct(toks[i + 1], "(") && call_context(toks, i) &&
               !(i > 0 && (is_punct(toks[i - 1], ".") ||
                           is_punct(toks[i - 1], "->")))) {
      // Member calls are excluded: `sensor.read(...)` is a method on a model
      // object, not the read(2) syscall.  Real IO in this tree is reached
      // through free or namespace-qualified functions (net::send_all,
      // ::fsync), which keep the bare/qualified spelling.
      record(&s.io, t);
    }
  }
  return s;
}

const char* category_verb(char cat) {
  switch (cat) {
    case 'a': return "allocates";
    case 't': return "throws";
    case 'l': return "acquires a lock";
    default:  return "performs blocking io";
  }
}

const char* category_name(char cat) {
  switch (cat) {
    case 'a': return "alloc";
    case 't': return "throw";
    case 'l': return "lock";
    default:  return "io";
  }
}

bool category_banned(const HotContract& hot, char cat) {
  switch (cat) {
    case 'a': return hot.ban_alloc;
    case 't': return hot.ban_throw;
    case 'l': return hot.ban_lock;
    default:  return hot.ban_io;
  }
}

}  // namespace

// ---------------------------------------------------------------------------

FlowAnalyzer::FlowAnalyzer(const LayeringConfig* config, Rules rules)
    : config_(config), rules_(rules) {}

void FlowAnalyzer::add_file(const std::string* path, const LexResult* lex,
                            const FileSymbols* symbols) {
  files_.push_back(FileView{path, lex, symbols});
  index_.add(*path, *symbols);
}

void FlowAnalyzer::finish(Stats* stats, std::vector<Diagnostic>* out) {
  const auto emit = [&](const std::string& file, int line, const char* rule,
                        std::string message) {
    out->push_back(Diagnostic{file, line, rule, std::move(message)});
  };

  // ---- must-consume: build the registry across every TU first ------------
  // fn name -> declared status return type.
  std::map<std::string, std::string> status_fns;
  if (rules_.must_consume && !config_->status_types.empty()) {
    for (const FileView& f : files_) {
      const std::vector<Token>& toks = f.lex->tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].in_directive || toks[i].kind != TokKind::kIdentifier ||
            config_->status_types.count(toks[i].text) == 0) {
          continue;
        }
        // `Status [qualifier::]name (` declares a status-returning function.
        std::size_t j = i + 1;
        std::size_t last_ident = toks.size();
        while (j < toks.size()) {
          if (toks[j].kind == TokKind::kIdentifier) {
            last_ident = j;
            ++j;
          } else if (is_punct(toks[j], "::") || is_punct(toks[j], "&") ||
                     is_punct(toks[j], "*")) {
            ++j;
          } else {
            break;
          }
        }
        if (last_ident == toks.size() || j >= toks.size() ||
            !is_punct(toks[j], "(")) {
          continue;
        }
        if (non_callee_keywords().count(toks[last_ident].text) != 0) continue;
        status_fns.emplace(toks[last_ident].text, toks[i].text);
      }
    }
  }

  // ---- hot summaries for every function (callee side of hot-path) --------
  std::map<const FunctionDef*, HotSummary> summaries;
  std::map<const FunctionDef*, const FileView*> def_file;
  if (rules_.hot_path) {
    for (const FileView& f : files_) {
      for (const FunctionDef& fn : f.symbols->functions) {
        summaries.emplace(&fn, summarize_function(f.lex->tokens, fn, *config_));
        def_file.emplace(&fn, &f);
      }
    }
  }

  // ---- per-file walks -----------------------------------------------------
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;
  std::vector<Layout> layouts;
  std::map<std::string, std::size_t> layout_by_name;

  for (const FileView& f : files_) {
    const std::vector<Token>& toks = f.lex->tokens;
    const std::string& path = *f.path;

    // ---- must-consume call sites ----------------------------------------
    if (rules_.must_consume &&
        (!status_fns.empty() || !config_->consume_bool_functions.empty())) {
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token& tok = toks[i];
        if (tok.in_directive || tok.kind != TokKind::kIdentifier) continue;
        const auto status_it = status_fns.find(tok.text);
        const bool is_status = status_it != status_fns.end();
        const bool is_bool =
            config_->consume_bool_functions.count(tok.text) != 0;
        if (!is_status && !is_bool) continue;
        if (!is_punct(toks[i + 1], "(")) continue;
        if (!call_context(toks, i)) continue;  // declaration, not a call
        ++stats->must_consume_sites;
        const std::size_t close = skip_balanced(toks, i + 1, "(", ")");
        if (close + 1 >= toks.size() || !is_punct(toks[close + 1], ";")) {
          continue;  // result feeds an expression / initializer / return
        }
        // Walk the receiver chain back to the statement boundary; anything
        // other than a boundary there means the value is consumed.
        std::size_t s = i;
        while (s > 0) {
          const Token& p = toks[s - 1];
          if (!is_punct(p, ".") && !is_punct(p, "->") && !is_punct(p, "::")) {
            break;
          }
          if (s < 2) {
            s = 0;
            break;
          }
          const Token& q = toks[s - 2];
          if (q.kind == TokKind::kIdentifier) {
            s -= 2;
            continue;
          }
          if (is_punct(q, ")") || is_punct(q, "]")) {
            const std::size_t open = skip_balanced_back(
                toks, s - 2, q.text == ")" ? "(" : "[", q.text);
            s = open;
            if (s > 0 && toks[s - 1].kind == TokKind::kIdentifier) {
              s -= 1;
              continue;
            }
          }
          break;
        }
        bool ignored = s == 0;
        if (!ignored) {
          const Token& boundary = toks[s - 1];
          if (is_punct(boundary, ";") || is_punct(boundary, "{") ||
              is_punct(boundary, "}")) {
            ignored = true;
          } else if (is_ident(boundary, "else") || is_ident(boundary, "do")) {
            ignored = true;  // un-braced `else f(x);`
          } else if (is_punct(boundary, ")")) {
            // `if (cond) f(x);` — the statement after an un-braced control
            // header still drops the value.
            const std::size_t open =
                skip_balanced_back(toks, s - 1, "(", ")");
            if (open > 0 && toks[open - 1].kind == TokKind::kIdentifier &&
                control_keywords().count(toks[open - 1].text) != 0) {
              ignored = true;
            }
          }
        }
        if (!ignored) continue;
        const std::string what =
            is_status ? "returns '" + status_it->second + "'"
                      : "registered bool status";
        emit(path, tok.line, kRuleMustConsume,
             "status result of '" + tok.text + "' (" + what +
                 ") is discarded; assign, compare, or return it");
      }
    }

    // ---- wire-layout directives ------------------------------------------
    if (rules_.wire_layout) {
      // Fields bind to the most recent layout directive above them.
      std::size_t current = layouts.size();
      bool have_current = false;
      for (const Token& comment : f.lex->comments) {
        const std::size_t start = directive_payload_start(comment.text);
        const bool is_layout =
            comment.text.compare(start, 7, "layout:") == 0;
        const bool is_field = comment.text.compare(start, 6, "field:") == 0;
        if (!is_layout && !is_field) continue;
        const std::string payload =
            comment.text.substr(start + (is_layout ? 7 : 6));
        const std::vector<std::string> words = split_words(payload);

        if (is_layout) {
          Layout layout;
          layout.file = f.path;
          layout.line = comment.line;
          std::string error;
          if (words.empty()) {
            error = "missing layout name";
          } else {
            layout.name = words[0];
            for (std::size_t w = 1; w < words.size() && error.empty(); ++w) {
              const std::string& word = words[w];
              if (word.compare(0, 5, "size=") == 0) {
                if (!parse_long(word.substr(5), &layout.size) ||
                    layout.size <= 0) {
                  error = "bad size in '" + word + "'";
                }
              } else if (word.compare(0, 5, "crc=[") == 0) {
                const std::size_t comma = word.find(',', 5);
                const std::size_t close = word.find(')', 5);
                if (comma == std::string::npos || close == std::string::npos ||
                    close < comma ||
                    !parse_long(word.substr(5, comma - 5), &layout.crc_lo) ||
                    !parse_long(word.substr(comma + 1, close - comma - 1),
                                &layout.crc_hi)) {
                  error = "bad crc span in '" + word + "'";
                } else {
                  layout.has_crc = true;
                }
              } else {
                error = "unknown attribute '" + word + "'";
              }
            }
            if (error.empty() && layout.size < 0) {
              error = "missing size=<bytes>";
            }
          }
          if (!error.empty()) {
            emit(path, comment.line, kRuleWireLayout,
                 "malformed layout directive (" + error +
                     "); expected 'layout: <name> size=<bytes> "
                     "crc=[<lo>,<hi>)'");
            have_current = false;
            continue;
          }
          if (layout_by_name.count(layout.name) != 0) {
            const Layout& first = layouts[layout_by_name[layout.name]];
            emit(path, comment.line, kRuleWireLayout,
                 "wire layout '" + layout.name + "' already declared at " +
                     *first.file + ":" + std::to_string(first.line));
            have_current = false;
            continue;
          }
          current = layouts.size();
          have_current = true;
          layout_by_name.emplace(layout.name, current);
          layouts.push_back(std::move(layout));
          continue;
        }

        // A field directive — '<name> size=<bytes>' on an offset constant.
        LayoutField field;
        field.file = f.path;
        field.line = comment.line;
        std::string error;
        if (words.empty()) {
          error = "missing field name";
        } else {
          field.name = words[0];
          bool have_size = false;
          for (std::size_t w = 1; w < words.size() && error.empty(); ++w) {
            if (words[w].compare(0, 5, "size=") == 0) {
              have_size =
                  parse_long(words[w].substr(5), &field.size) && field.size > 0;
              if (!have_size) error = "bad size in '" + words[w] + "'";
            } else {
              error = "unknown attribute '" + words[w] + "'";
            }
          }
          if (error.empty() && !have_size) error = "missing size=<bytes>";
        }
        if (!error.empty()) {
          emit(path, comment.line, kRuleWireLayout,
               "malformed field directive (" + error +
                   "); expected 'field: <name> size=<bytes>'");
          continue;
        }
        if (!have_current) {
          emit(path, comment.line, kRuleWireLayout,
               "field directive '" + field.name +
                   "' has no preceding layout directive in this file");
          continue;
        }
        // The annotated constant: the directive's own line (trailing
        // comment) or the first code line below it.
        int attach_line = -1;
        for (const Token& t : toks) {
          if (t.line == comment.line) {
            attach_line = comment.line;
            break;
          }
        }
        if (attach_line < 0) {
          for (const Token& t : toks) {
            if (t.line > comment.end_line &&
                (attach_line < 0 || t.line < attach_line)) {
              attach_line = t.line;
            }
          }
        }
        bool found = false;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
          if (toks[i].line == attach_line && is_punct(toks[i], "=") &&
              toks[i + 1].kind == TokKind::kNumber &&
              parse_long(toks[i + 1].text, &field.offset)) {
            field.line = toks[i + 1].line;
            found = true;
            break;
          }
        }
        if (!found) {
          emit(path, comment.line, kRuleWireLayout,
               "field directive '" + field.name +
                   "' must annotate an integer offset constant "
                   "('= <literal>' on the same or next line)");
          continue;
        }
        layouts[current].fields.push_back(std::move(field));
      }
    }

    // ---- lock-order: per-function guard tracking -------------------------
    if (rules_.lock_order) {
      for (const FunctionDef& fn : f.symbols->functions) {
        int depth = 0;
        std::vector<HeldLock> held;
        const std::size_t end = std::min(fn.body_end, toks.size() - 1);
        for (std::size_t i = fn.body_begin; i <= end; ++i) {
          const Token& tok = toks[i];
          if (tok.in_directive) continue;
          if (is_punct(tok, "{")) {
            ++depth;
            continue;
          }
          if (is_punct(tok, "}")) {
            --depth;
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const HeldLock& h) {
                                        return h.depth > depth;
                                      }),
                       held.end());
            continue;
          }
          if (tok.kind != TokKind::kIdentifier) continue;

          // Guard declaration: `lock_guard<...> name{args}` / `(args)`.
          if (guard_types().count(tok.text) != 0) {
            std::size_t j = i + 1;
            if (j < toks.size() && is_punct(toks[j], "<")) {
              j = skip_balanced(toks, j, "<", ">") + 1;
            }
            std::string var;
            if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
              var = toks[j].text;
              ++j;
            }
            const bool paren = j < toks.size() && is_punct(toks[j], "(");
            const bool brace = j < toks.size() && is_punct(toks[j], "{");
            if (!paren && !brace) continue;  // a type mention, not a guard
            const std::size_t close =
                skip_balanced(toks, j, paren ? "(" : "{", paren ? ")" : "}");
            // Split constructor args at the top level.
            std::vector<std::pair<std::size_t, std::size_t>> args;
            {
              int pd = 0;
              int ad = 0;
              int bd = 0;
              std::size_t start = j + 1;
              for (std::size_t k = j + 1; k < close; ++k) {
                if (is_punct(toks[k], "(")) ++pd;
                if (is_punct(toks[k], ")")) --pd;
                if (is_punct(toks[k], "<")) ++ad;
                if (is_punct(toks[k], ">")) --ad;
                if (is_punct(toks[k], "{")) ++bd;
                if (is_punct(toks[k], "}")) --bd;
                if (is_punct(toks[k], ",") && pd == 0 && ad == 0 && bd == 0) {
                  args.emplace_back(start, k);
                  start = k + 1;
                }
              }
              if (start < close) args.emplace_back(start, close);
            }
            bool deferred = false;
            std::vector<std::pair<std::size_t, std::size_t>> mutex_args;
            for (const auto& [a, b] : args) {
              bool tag = false;
              for (std::size_t k = a; k < b; ++k) {
                if (toks[k].kind != TokKind::kIdentifier) continue;
                if (toks[k].text == "defer_lock" ||
                    toks[k].text == "try_to_lock") {
                  deferred = true;  // nothing is held at construction
                  tag = true;
                }
                if (toks[k].text == "adopt_lock") tag = true;
              }
              if (!tag) mutex_args.emplace_back(a, b);
            }
            if (!deferred) {
              // scoped_lock's multi-arg form uses the deadlock-avoiding
              // std::lock under the hood, so its args gain no mutual edges;
              // edges only come from locks already held on entry.
              const std::size_t held_on_entry = held.size();
              for (const auto& [a, b] : mutex_args) {
                const std::string key =
                    resolve_mutex_key(toks, a, b, fn.class_name, index_);
                if (key.empty()) continue;
                ++stats->lock_sites;
                for (std::size_t h = 0; h < held_on_entry; ++h) {
                  if (held[h].key == key) continue;
                  const auto edge = std::make_pair(held[h].key, key);
                  if (edges.count(edge) == 0) {
                    edges[edge] =
                        EdgeSite{f.path, toks[a].line, fn.qualified()};
                  }
                }
                held.push_back(HeldLock{key, var, depth, toks[a].line});
              }
            }
            i = close;
            continue;
          }

          // Early release: `guard.unlock()`.
          if (tok.text == "unlock" && i >= 2 && is_punct(toks[i - 1], ".") &&
              toks[i - 2].kind == TokKind::kIdentifier) {
            const std::string& var = toks[i - 2].text;
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const HeldLock& h) {
                                        return !h.var.empty() && h.var == var;
                                      }),
                       held.end());
            continue;
          }

          // Blocking call while holding any lock.
          if (config_->blocking_calls.count(tok.text) != 0 &&
              i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
              call_context(toks, i)) {
            ++stats->blocking_sites;
            if (!held.empty()) {
              std::string held_desc;
              for (const HeldLock& h : held) {
                if (!held_desc.empty()) held_desc += ", ";
                held_desc += "'" + h.key + "' (acquired line " +
                             std::to_string(h.line) + ")";
              }
              emit(path, tok.line, kRuleLockOrder,
                   "blocking call '" + tok.text + "' while holding " +
                       held_desc +
                       "; a stalled peer pins the critical section — release "
                       "the lock first");
            }
          }
        }
      }
    }

    // ---- hot-path: contracts local to this file --------------------------
    if (rules_.hot_path) {
      for (const int line : f.symbols->dangling_hot_lines) {
        emit(path, line, kRuleHotPath,
             "hot contract attaches to no function definition (the next "
             "code line does not start one)");
      }
      for (const FunctionDef& fn : f.symbols->functions) {
        if (!fn.has_hot) continue;
        if (!fn.hot.error.empty()) {
          emit(path, fn.hot.line, kRuleHotPath, fn.hot.error);
          continue;
        }
        ++stats->hot_functions;
        const HotSummary& s = summaries.at(&fn);
        for (const char cat : {'a', 't', 'l', 'i'}) {
          if (!category_banned(fn.hot, cat)) continue;
          const CatHit* hit = s.by_category(cat);
          if (!hit->hit) continue;
          emit(path, hit->line, kRuleHotPath,
               "'" + hit->what + "' " + category_verb(cat) + " inside '" +
                   fn.qualified() + "', whose hot contract (line " +
                   std::to_string(fn.hot.line) + ") bans " +
                   category_name(cat));
        }
        // Transitive, one call level deep: a callee with a definition we
        // indexed must itself honour the caller's banned categories.  When
        // a name has several definitions, all of them must violate before
        // we diagnose (same-name overloads should not cross-contaminate).
        std::set<std::pair<std::string, char>> reported;
        const std::size_t end = std::min(fn.body_end, toks.size() - 1);
        for (std::size_t i = fn.body_begin; i <= end; ++i) {
          const Token& tok = toks[i];
          if (tok.in_directive || tok.kind != TokKind::kIdentifier) continue;
          if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
          if (non_callee_keywords().count(tok.text) != 0) continue;
          if (!call_context(toks, i)) continue;
          if (tok.text == fn.name) continue;  // recursion
          const std::vector<SymbolIndex::DefRef>* defs =
              index_.definitions_of(tok.text);
          if (defs == nullptr || defs->empty()) continue;
          ++stats->hot_callee_checks;
          for (const char cat : {'a', 't', 'l', 'i'}) {
            if (!category_banned(fn.hot, cat)) continue;
            if (reported.count({tok.text, cat}) != 0) continue;
            bool all_violate = true;
            const SymbolIndex::DefRef* witness = nullptr;
            for (const SymbolIndex::DefRef& ref : *defs) {
              const auto it = summaries.find(ref.def);
              const CatHit* hit =
                  it == summaries.end() ? nullptr : it->second.by_category(cat);
              if (hit == nullptr || !hit->hit) {
                all_violate = false;
                break;
              }
              if (witness == nullptr) witness = &ref;
            }
            if (!all_violate || witness == nullptr) continue;
            reported.insert({tok.text, cat});
            emit(path, tok.line, kRuleHotPath,
                 "call to '" + tok.text + "' (defined at " + *witness->file +
                     ":" + std::to_string(witness->def->line) + ", which " +
                     category_verb(cat) + ") from '" + fn.qualified() +
                     "', whose hot contract (line " +
                     std::to_string(fn.hot.line) + ") bans " +
                     category_name(cat) + " (transitive, depth 1)");
          }
        }
      }
    }
  }

  // ---- lock-order: cross-TU cycle detection -------------------------------
  if (rules_.lock_order) {
    stats->lock_edges = static_cast<int>(edges.size());
    std::map<std::string, std::set<std::string>> adj;
    for (const auto& [edge, site] : edges) adj[edge.first].insert(edge.second);
    for (const auto& [edge, site] : edges) {
      const std::string& a = edge.first;
      const std::string& b = edge.second;
      // BFS b -> a; a path back means this edge closes a cycle.
      std::map<std::string, std::string> parent;
      std::deque<std::string> queue{b};
      parent[b] = b;
      bool found = false;
      while (!queue.empty() && !found) {
        const std::string cur = queue.front();
        queue.pop_front();
        for (const std::string& next : adj[cur]) {
          if (parent.count(next) != 0) continue;
          parent[next] = cur;
          if (next == a) {
            found = true;
            break;
          }
          queue.push_back(next);
        }
      }
      if (!found) continue;
      // Reconstruct b -> ... -> a and emit one diagnostic per cycle: only
      // the edge leaving the cycle's lexicographically smallest node.
      std::vector<std::string> path;
      for (std::string cur = a;; cur = parent.at(cur)) {
        path.push_back(cur);
        if (cur == b) break;
      }
      std::reverse(path.begin(), path.end());  // now b, ..., a
      std::string min_node = a;
      for (const std::string& node : path) min_node = std::min(min_node, node);
      if (a != min_node) continue;

      std::string chain = "'" + a + "' -> '" + b + "'";
      for (std::size_t k = 1; k < path.size(); ++k) {
        chain += " -> '" + path[k] + "'";
      }
      std::string detail = "'" + b + "' acquired while holding '" + a +
                           "' here (in " + site.function + ")";
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const auto hop = edges.find({path[k], path[k + 1]});
        if (hop == edges.end()) continue;
        detail += "; '" + path[k + 1] + "' while holding '" + path[k] +
                  "' at " + *hop->second.file + ":" +
                  std::to_string(hop->second.line) + " (in " +
                  hop->second.function + ")";
      }
      emit(*site.file, site.line, kRuleLockOrder,
           "lock-order cycle " + chain +
               " — threads taking the two orders can deadlock: " + detail);
    }
  }

  // ---- wire-layout: validate every collected layout -----------------------
  if (rules_.wire_layout) {
    for (Layout& layout : layouts) {
      ++stats->layouts_checked;
      stats->layout_fields += static_cast<int>(layout.fields.size());
      const std::string& path = *layout.file;
      if (layout.fields.empty()) {
        emit(path, layout.line, kRuleWireLayout,
             "wire layout '" + layout.name +
                 "' declares no fields (add 'field:' directives to its "
                 "offset constants)");
        continue;
      }
      std::stable_sort(layout.fields.begin(), layout.fields.end(),
                       [](const LayoutField& x, const LayoutField& y) {
                         return x.offset < y.offset;
                       });
      std::set<std::string> names;
      for (const LayoutField& field : layout.fields) {
        if (!names.insert(field.name).second) {
          emit(*field.file, field.line, kRuleWireLayout,
               "wire layout '" + layout.name + "' declares field '" +
                   field.name + "' twice");
        }
      }
      const LayoutField& first = layout.fields.front();
      if (first.offset != 0) {
        emit(*first.file, first.line, kRuleWireLayout,
             "wire layout '" + layout.name + "': first field '" + first.name +
                 "' starts at offset " + std::to_string(first.offset) +
                 ", expected 0");
      }
      for (std::size_t k = 0; k + 1 < layout.fields.size(); ++k) {
        const LayoutField& cur = layout.fields[k];
        const LayoutField& next = layout.fields[k + 1];
        const long cur_end = cur.offset + cur.size;
        if (next.offset < cur_end) {
          emit(*next.file, next.line, kRuleWireLayout,
               "wire layout '" + layout.name + "': field '" + next.name +
                   "' at [" + std::to_string(next.offset) + "," +
                   std::to_string(next.offset + next.size) + ") overlaps '" +
                   cur.name + "' at [" + std::to_string(cur.offset) + "," +
                   std::to_string(cur_end) + ")");
        } else if (next.offset > cur_end) {
          emit(*next.file, next.line, kRuleWireLayout,
               "wire layout '" + layout.name + "': " +
                   std::to_string(next.offset - cur_end) +
                   "-byte gap between '" + cur.name + "' (ends " +
                   std::to_string(cur_end) + ") and '" + next.name +
                   "' (starts " + std::to_string(next.offset) + ")");
        }
      }
      const LayoutField& last = layout.fields.back();
      const long covered = last.offset + last.size;
      if (covered != layout.size) {
        emit(path, layout.line, kRuleWireLayout,
             "wire layout '" + layout.name + "': fields cover [0," +
                 std::to_string(covered) + ") but the layout declares size=" +
                 std::to_string(layout.size));
      }
      if (layout.has_crc) {
        if (layout.crc_lo < 0 || layout.crc_lo >= layout.crc_hi ||
            layout.crc_hi > layout.size) {
          emit(path, layout.line, kRuleWireLayout,
               "wire layout '" + layout.name + "': crc span [" +
                   std::to_string(layout.crc_lo) + "," +
                   std::to_string(layout.crc_hi) +
                   ") must lie inside [0," + std::to_string(layout.size) +
                   ") with lo < hi");
        } else {
          for (const LayoutField& field : layout.fields) {
            const bool is_crc_field =
                field.name.find("crc") != std::string::npos;
            const bool overlaps = field.offset < layout.crc_hi &&
                                  layout.crc_lo < field.offset + field.size;
            if (is_crc_field && overlaps) {
              emit(*field.file, field.line, kRuleWireLayout,
                   "wire layout '" + layout.name + "': crc field '" +
                       field.name + "' at [" + std::to_string(field.offset) +
                       "," + std::to_string(field.offset + field.size) +
                       ") lies inside its own coverage span [" +
                       std::to_string(layout.crc_lo) + "," +
                       std::to_string(layout.crc_hi) + ")");
            }
          }
        }
      }
    }
  }
}

}  // namespace tsvpt::lint
