#include "lint/analyzer.hpp"

#include <algorithm>
#include <cstddef>

#include "lint/flow.hpp"

namespace tsvpt::lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

/// "src/core/pt_sensor.cpp" -> "core"; "" when not under src/.
std::string module_of(const std::string& path) {
  if (!starts_with(path, "src/")) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

/// Modules whose physics must be bit-reproducible: no hidden mutable state.
bool in_deterministic_module(const std::string& path) {
  const std::string mod = module_of(path);
  return mod == "device" || mod == "process" || mod == "circuit" ||
         mod == "core";
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

std::string stem_of(const std::string& path) {
  const std::string base = basename_of(path);
  const std::size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// ---------------------------------------------------------------------------
// Suppressions

struct Allow {
  std::string rule;
  int line = 0;      // first line the allow applies to
  int end_line = 0;  // last line it applies to
  bool has_reason = false;
  bool used = false;
  int comment_line = 0;  // where the comment itself lives (for diagnostics)
};

/// Extract suppressions from a comment.  A suppression must be the comment's
/// directive — the text right after the `//` or `/*` delimiter (modulo
/// whitespace) must start with `lint:allow(` — so prose that merely
/// *mentions* the grammar is never parsed as an allow.  After one parsed
/// allow, further chained `lint:allow(...)` entries in the same comment are
/// honoured.  An own-line comment also covers the next source line.
void collect_allows(const Token& comment, bool own_line,
                    std::vector<Allow>* out) {
  const std::string& text = comment.text;
  std::size_t start = 0;
  while (start < text.size() &&
         (text[start] == '/' || text[start] == '*' || text[start] == ' ' ||
          text[start] == '\t')) {
    ++start;
  }
  if (text.compare(start, 11, "lint:allow(") != 0) return;
  std::size_t pos = start;
  while ((pos = text.find("lint:allow(", pos)) != std::string::npos) {
    const std::size_t open = pos + 10;  // index of '('
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) break;
    Allow allow;
    allow.rule = text.substr(open + 1, close - open - 1);
    allow.comment_line = comment.line;
    allow.line = comment.line;
    allow.end_line = comment.end_line + (own_line ? 1 : 0);
    std::size_t after = close + 1;
    if (after < text.size() && text[after] == ':') {
      ++after;
      while (after < text.size() && text[after] == ' ') ++after;
      allow.has_reason = after < text.size();
    }
    out->push_back(std::move(allow));
    pos = close;
  }
}

// ---------------------------------------------------------------------------
// Token helpers

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, std::string_view text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

/// Walk a balanced bracket group starting at `open` (which must hold the
/// opening token); returns the index of the matching closer, or the last
/// index when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          std::string_view open_text,
                          std::string_view close_text) {
  int depth = 0;
  std::size_t i = open;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], open_text)) ++depth;
    if (is_punct(toks[i], close_text)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size() - 1;
}

const std::set<std::string>& ordered_atomic_methods() {
  static const std::set<std::string> kMethods{
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong",
      "wait",          "test_and_set",
      "test",          "clear"};
  return kMethods;
}

const std::set<std::string>& banned_random_calls() {
  static const std::set<std::string> kCalls{
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random"};
  return kCalls;
}

const std::set<std::string>& banned_clock_calls() {
  static const std::set<std::string> kCalls{"time", "clock", "gettimeofday",
                                            "localtime", "gmtime"};
  return kCalls;
}

struct IncludeInfo {
  std::string target;  // path inside the quotes / angle brackets
  bool quoted = false;
  int line = 0;
};

std::vector<IncludeInfo> collect_includes(const std::vector<Token>& toks) {
  std::vector<IncludeInfo> out;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_punct(toks[i], "#") || !is_ident(toks[i + 1], "include")) continue;
    const Token& target = toks[i + 2];
    if (target.kind == TokKind::kString && target.text.size() >= 2) {
      IncludeInfo inc;
      inc.target = target.text.substr(1, target.text.size() - 2);
      inc.quoted = true;
      inc.line = target.line;
      out.push_back(std::move(inc));
    } else if (is_punct(target, "<")) {
      IncludeInfo inc;
      inc.quoted = false;
      inc.line = target.line;
      for (std::size_t j = i + 3;
           j < toks.size() && !is_punct(toks[j], ">") &&
           toks[j].line == target.line;
           ++j) {
        inc.target += toks[j].text;
      }
      out.push_back(std::move(inc));
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules{
      kRuleAtomics,     kRuleLayering,   kRuleDeterminism,
      kRuleHygiene,     kRuleMetricName, kRuleLockOrder,
      kRuleMustConsume, kRuleWireLayout, kRuleHotPath};
  return kRules;
}

std::string rule_description(const std::string& rule) {
  if (rule == kRuleAtomics) {
    return "atomic ops pass an explicit std::memory_order; non-relaxed "
           "orderings in src/ carry a '// mo:' pairing comment";
  }
  if (rule == kRuleLayering) {
    return "src/ module includes follow the DAG declared in "
           "tools/lint/layering.toml (no undeclared edges, no back-edges)";
  }
  if (rule == kRuleDeterminism) {
    return "no rand()/time()/system_clock in src/, no std::random_device "
           "outside ptsim/rng, no mutable globals in "
           "src/{device,process,circuit,core}";
  }
  if (rule == kRuleHygiene) {
    return "headers use #pragma once and never 'using namespace'; a .cpp "
           "includes its own header first";
  }
  if (rule == kRuleMetricName) {
    return "obs metric names in src/ match tsvpt_[a-z0-9_]+; counters end "
           "'_total', histograms end a unit suffix, gauges end a unit or "
           "countable suffix (scrapers key on the schema staying regular)";
  }
  if (rule == kRuleLockOrder) {
    return "RAII guard acquisitions must form an acyclic cross-TU mutex "
           "order, and no lock may be held across a registered blocking "
           "call (send_all/recv/fsync/poll/...)";
  }
  if (rule == kRuleMustConsume) {
    return "results of functions returning a registered status type (or "
           "named in the bool-status registry) must be assigned, compared, "
           "or returned — a bare 'f(...);' statement drops the status";
  }
  if (rule == kRuleWireLayout) {
    return "'layout:'/'field:' directives on framing offset constants must "
           "be internally consistent: fields start at 0, contiguous, "
           "non-overlapping, summing to the header size, CRC span inside "
           "the header";
  }
  if (rule == kRuleHotPath) {
    return "functions under a 'hot:' contract may not allocate, throw, "
           "lock, or call IO (or the subset in 'hot(cats):'), enforced "
           "transitively one call level deep";
  }
  if (rule == kRuleSuppression) {
    return "meta-rule: lint:allow comments must carry a reason, name a real "
           "rule, and actually fire";
  }
  return "";
}

std::string format_diagnostic(const Diagnostic& diag) {
  return diag.file + ":" + std::to_string(diag.line) + ": [" + diag.rule +
         "] " + diag.message;
}

Analyzer::Analyzer(LayeringConfig layering, Options options)
    : layering_(std::move(layering)), options_(std::move(options)) {}

void Analyzer::add_file(std::string path, std::string_view content) {
  FileData data;
  data.path = std::move(path);
  data.lex = lex(content);
  ++stats_.files_scanned;

  // The flow-aware rules all hang off the symbol resolver; run it once per
  // file when any of them is enabled.
  if (options_.enabled.count(kRuleLockOrder) != 0 ||
      options_.enabled.count(kRuleMustConsume) != 0 ||
      options_.enabled.count(kRuleWireLayout) != 0 ||
      options_.enabled.count(kRuleHotPath) != 0) {
    data.symbols = scan_symbols(data.lex);
  }

  // Pass 1 of the atomics rule happens at add time so declarations in
  // headers are visible when the .cpp that uses them is checked, whatever
  // the add order: collect the names of declared atomic variables.
  const std::vector<Token>& toks = data.lex.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    const bool plain_atomic = tok.text == "atomic";
    const bool typedef_atomic =
        starts_with(tok.text, "atomic_") && tok.text != "atomic_thread_fence" &&
        tok.text != "atomic_signal_fence";
    if (!plain_atomic && !typedef_atomic) continue;
    std::size_t j = i + 1;
    if (plain_atomic) {
      if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(toks[j], "<")) ++depth;
        if (is_punct(toks[j], ">") && --depth == 0) break;
      }
      ++j;  // step past the closing '>'
    }
    // One or more declarators: name [init] {, name [init]} ;
    while (j < toks.size()) {
      if (toks[j].kind != TokKind::kIdentifier) break;
      const std::size_t name_idx = j;
      ++j;
      if (j < toks.size() && is_punct(toks[j], "(")) break;  // function
      atomic_names_.insert(toks[name_idx].text);
      // Skip initializer / array extent up to ',' or ';'.
      while (j < toks.size() && !is_punct(toks[j], ",") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "{")) {
          j = skip_balanced(toks, j, "{", "}") + 1;
        } else if (is_punct(toks[j], "[")) {
          j = skip_balanced(toks, j, "[", "]") + 1;
        } else if (is_punct(toks[j], "(")) {
          j = skip_balanced(toks, j, "(", ")") + 1;
        } else {
          ++j;
        }
      }
      if (j >= toks.size() || is_punct(toks[j], ";")) break;
      ++j;  // step past ',' to the next declarator
    }
  }

  files_.push_back(std::move(data));
}

std::vector<Diagnostic> Analyzer::finish() {
  std::vector<Diagnostic> diags;
  const bool atomics_on = options_.enabled.count(kRuleAtomics) != 0;
  const bool layering_on = options_.enabled.count(kRuleLayering) != 0;
  const bool determinism_on = options_.enabled.count(kRuleDeterminism) != 0;
  const bool hygiene_on = options_.enabled.count(kRuleHygiene) != 0;
  const bool metric_on = options_.enabled.count(kRuleMetricName) != 0;

  std::set<std::string> known_paths;
  for (const FileData& file : files_) known_paths.insert(file.path);

  // module -> dep -> first observing (file, line); doubles as the observed
  // edge set for the layering audit.
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      observed_edges;

  for (const FileData& file : files_) {
    const std::vector<Token>& toks = file.lex.tokens;
    const std::string mod = module_of(file.path);
    const bool in_src = starts_with(file.path, "src/");

    auto emit = [&](int line, const char* rule, std::string message) {
      Diagnostic diag;
      diag.file = file.path;
      diag.line = line;
      diag.rule = rule;
      diag.message = std::move(message);
      diags.push_back(std::move(diag));
    };

    // Lines covered by any comment, so a multi-line run of `//` comments
    // directly above a statement counts as one contiguous block.
    std::set<int> comment_lines;
    for (const Token& comment : file.lex.comments) {
      for (int l = comment.line; l <= comment.end_line; ++l) {
        comment_lines.insert(l);
      }
    }

    auto has_mo_comment = [&](int first_line, int last_line) {
      // Extend the window upward over the contiguous comment block (if any)
      // that ends on the line just above the statement.
      int above = first_line - 1;
      while (comment_lines.count(above) != 0) --above;
      for (const Token& comment : file.lex.comments) {
        if (comment.text.find("mo:") == std::string::npos) continue;
        if (comment.line <= last_line && comment.end_line > above) return true;
      }
      return false;
    };

    // ---- atomics-contract ------------------------------------------------
    if (atomics_on) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdentifier) continue;
        const bool is_fence = toks[i].text == "atomic_thread_fence";
        const bool is_method =
            ordered_atomic_methods().count(toks[i].text) != 0 && i > 0 &&
            (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
        if (!is_fence && !is_method) continue;
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;

        // Resolve the receiver's terminal identifier: a.b[i].load -> b;
        // cells_[t & mask_].state.load -> state.
        bool known_atomic = is_fence;
        if (is_method && i >= 2) {
          std::size_t j = i - 2;
          while (j > 0 && (is_punct(toks[j], "]") || is_punct(toks[j], ")"))) {
            const std::string close_text = toks[j].text;
            const std::string open_text = close_text == "]" ? "[" : "(";
            int depth = 0;
            while (j > 0) {
              if (is_punct(toks[j], close_text)) ++depth;
              if (is_punct(toks[j], open_text) && --depth == 0) break;
              --j;
            }
            if (j > 0) --j;  // step before the opening bracket
          }
          known_atomic = toks[j].kind == TokKind::kIdentifier &&
                         atomic_names_.count(toks[j].text) != 0;
        }

        const std::size_t close = skip_balanced(toks, i + 1, "(", ")");
        // Orders named in the argument list.
        std::vector<std::string> orders;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks[j].kind != TokKind::kIdentifier) continue;
          if (starts_with(toks[j].text, "memory_order_")) {
            orders.push_back(toks[j].text.substr(13));
          } else if (toks[j].text == "memory_order" && j + 2 < close &&
                     is_punct(toks[j + 1], "::")) {
            orders.push_back(toks[j + 2].text);
          }
        }
        if (!known_atomic && orders.empty()) continue;  // not an atomic site
        ++stats_.atomic_sites;

        if (orders.empty()) {
          emit(toks[i].line, kRuleAtomics,
               "atomic '" + toks[i].text +
                   "' must pass an explicit std::memory_order "
                   "(implicit seq_cst is banned)");
          continue;
        }
        bool non_relaxed = false;
        for (const std::string& order : orders) {
          non_relaxed = non_relaxed || order != "relaxed";
        }
        if (non_relaxed && in_src) {
          ++stats_.atomic_nonrelaxed;
          // The statement starts at the receiver (or the fence itself).
          int first_line = toks[i].line;
          if (is_method && i >= 2) {
            first_line = std::min(first_line, toks[i - 2].line);
          }
          if (!has_mo_comment(first_line, toks[close].line)) {
            emit(toks[i].line, kRuleAtomics,
                 "non-relaxed atomic '" + toks[i].text +
                     "' needs a same-line-or-preceding '// mo:' comment "
                     "naming its pairing counterpart");
          }
        }
      }
    }

    // ---- determinism-ban -------------------------------------------------
    if (determinism_on && in_src) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdentifier) continue;
        const std::string& name = toks[i].text;

        if (name == "random_device") {
          ++stats_.determinism_sites;
          if (!starts_with(file.path, "src/ptsim/rng")) {
            emit(toks[i].line, kRuleDeterminism,
                 "std::random_device is banned outside src/ptsim/rng "
                 "(seedable ptsim::Rng keeps runs replayable)");
          }
          continue;
        }
        if (name == "system_clock") {
          ++stats_.determinism_sites;
          emit(toks[i].line, kRuleDeterminism,
               "std::chrono::system_clock is banned in src/ "
               "(wall-clock reads break deterministic replay; use "
               "steady_clock or simulated time)");
          continue;
        }

        const bool random_call = banned_random_calls().count(name) != 0;
        const bool clock_call = banned_clock_calls().count(name) != 0;
        if (!random_call && !clock_call) continue;
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
        if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
          continue;  // member call on some unrelated object
        }
        if (i > 1 && is_punct(toks[i - 1], "::") &&
            !is_ident(toks[i - 2], "std")) {
          continue;  // qualified call into a project type
        }
        if (i > 0) {
          // `Workload random(...)` / `Second* time(...)` declare a function
          // of that name; only flag call expressions.
          const Token& prev = toks[i - 1];
          static const std::set<std::string> kExprKeywords{
              "return", "co_return", "co_yield", "case", "else", "do"};
          const bool decl_context =
              (prev.kind == TokKind::kIdentifier &&
               kExprKeywords.count(prev.text) == 0) ||
              is_punct(prev, ">") || is_punct(prev, "*") ||
              is_punct(prev, "&");
          if (decl_context) continue;
        }
        ++stats_.determinism_sites;
        emit(toks[i].line, kRuleDeterminism,
             random_call
                 ? "'" + name + "()' is banned in src/ (use the seedable "
                   "ptsim::Rng so runs are replayable)"
                 : "'" + name + "()' is banned in src/ (wall-clock reads "
                   "break deterministic replay)");
      }

      // Mutable namespace-scope variables in the physics modules.
      if (in_deterministic_module(file.path)) {
        // Scope machine over non-directive tokens.
        std::vector<const Token*> code;
        code.reserve(toks.size());
        for (const Token& tok : toks) {
          if (!tok.in_directive) code.push_back(&tok);
        }
        std::vector<char> scopes;  // 'n' namespace, 'c' class, 'b' block
        auto at_ns_scope = [&]() {
          for (const char kind : scopes) {
            if (kind != 'n') return false;
          }
          return true;
        };
        auto classify = [&](std::size_t open) {
          for (std::size_t j = open; j-- > 0;) {
            const Token& tok = *code[j];
            if (is_punct(tok, ";") || is_punct(tok, "{") ||
                is_punct(tok, "}")) {
              break;
            }
            if (is_ident(tok, "namespace")) return 'n';
            if (is_ident(tok, "class") || is_ident(tok, "struct") ||
                is_ident(tok, "union") || is_ident(tok, "enum")) {
              return 'c';
            }
          }
          if (open > 0 && is_punct(*code[open - 1], ")")) return 'b';
          for (std::size_t j = open; j-- > 0;) {
            const Token& tok = *code[j];
            if (is_punct(tok, ";") || is_punct(tok, "{") ||
                is_punct(tok, "}")) {
              break;
            }
            if (is_punct(tok, "=")) return 'i';
          }
          if (open > 0 && (code[open - 1]->kind == TokKind::kIdentifier ||
                           is_punct(*code[open - 1], ">") ||
                           is_punct(*code[open - 1], "]"))) {
            return 'i';  // brace-init of a declarator
          }
          return 'b';
        };

        auto analyze_stmt = [&](const std::vector<std::size_t>& stmt) {
          if (stmt.empty()) return;
          ++stats_.globals_audited;
          static const std::set<std::string> kStructural{
              "using",    "typedef",  "namespace", "template",
              "friend",   "operator", "extern",    "static_assert",
              "concept",  "requires", "class",     "struct",
              "union",    "enum",     "asm"};
          std::size_t first_eq = stmt.size();
          std::size_t first_paren = stmt.size();
          std::size_t first_brace = stmt.size();
          int idents = 0;
          for (std::size_t k = 0; k < stmt.size(); ++k) {
            const Token& tok = *code[stmt[k]];
            if (tok.kind == TokKind::kIdentifier) {
              if (kStructural.count(tok.text) != 0) return;
              if (tok.text == "const" || tok.text == "constexpr") return;
              // alignas/decltype parens are type syntax, not calls.
              if ((tok.text == "alignas" || tok.text == "decltype") &&
                  k + 1 < stmt.size() && is_punct(*code[stmt[k + 1]], "(")) {
                int depth = 0;
                while (k + 1 < stmt.size()) {
                  ++k;
                  if (is_punct(*code[stmt[k]], "(")) ++depth;
                  if (is_punct(*code[stmt[k]], ")") && --depth == 0) break;
                }
                continue;
              }
              ++idents;
              continue;
            }
            if (is_punct(tok, "=") && first_eq == stmt.size()) first_eq = k;
            if (is_punct(tok, "(") && first_paren == stmt.size()) {
              first_paren = k;
            }
            if (is_punct(tok, "{") && first_brace == stmt.size()) {
              first_brace = k;
            }
          }
          if (idents < 2) return;
          if (first_paren < first_eq && first_paren < first_brace) {
            return;  // function declaration / vexing parse
          }
          // The declared name: nearest identifier before init or end.
          std::size_t name_end = std::min(first_eq, first_brace);
          if (name_end == stmt.size()) name_end = stmt.size();
          std::string name;
          for (std::size_t k = name_end; k-- > 0;) {
            const Token& tok = *code[stmt[k]];
            if (tok.kind == TokKind::kIdentifier) {
              name = tok.text;
              break;
            }
          }
          if (name.empty()) return;
          emit(code[stmt.front()]->line, kRuleDeterminism,
               "mutable namespace-scope variable '" + name +
                   "' in deterministic module src/" + mod +
                   "/ (hidden state breaks thread-count-invariant replay)");
        };

        std::vector<std::size_t> stmt;
        for (std::size_t i = 0; i < code.size(); ++i) {
          const Token& tok = *code[i];
          if (is_punct(tok, "{")) {
            const char kind = classify(i);
            if (kind == 'i' && at_ns_scope() && !stmt.empty()) {
              int depth = 0;
              do {
                if (is_punct(*code[i], "{")) ++depth;
                if (is_punct(*code[i], "}")) --depth;
                stmt.push_back(i);
                ++i;
              } while (i < code.size() && depth > 0);
              --i;  // the loop's ++i re-advances
              continue;
            }
            scopes.push_back(kind);
            stmt.clear();
            continue;
          }
          if (is_punct(tok, "}")) {
            if (!scopes.empty()) scopes.pop_back();
            stmt.clear();
            continue;
          }
          if (is_punct(tok, ";")) {
            if (at_ns_scope()) analyze_stmt(stmt);
            stmt.clear();
            continue;
          }
          if (at_ns_scope()) stmt.push_back(i);
        }
      }
    }

    // ---- metric-name -----------------------------------------------------
    // Registration sites are `counter("...")` / `gauge("...")` /
    // `histogram("...")` calls with a string-literal first argument; a
    // non-literal first argument (e.g. a shared kFooMetric constant) means
    // the name is declared — and linted — where the literal lives.
    if (metric_on && in_src) {
      static const std::set<std::string> kUnitSuffixes{
          "_seconds", "_bytes", "_ratio", "_celsius", "_joules", "_watts"};
      static const std::set<std::string> kCountableSuffixes{
          "_workers",     "_stacks", "_batches", "_frames",
          "_connections", "_shards", "_sites"};
      auto ends_with_any = [](const std::string& name,
                              const std::set<std::string>& suffixes) {
        for (const std::string& suffix : suffixes) {
          if (ends_with(name, suffix)) return true;
        }
        return false;
      };
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdentifier) continue;
        const std::string& fn = toks[i].text;
        const bool is_counter = fn == "counter";
        const bool is_gauge = fn == "gauge";
        const bool is_histogram = fn == "histogram";
        if (!is_counter && !is_gauge && !is_histogram) continue;
        if (!is_punct(toks[i + 1], "(")) continue;
        const Token& arg = toks[i + 2];
        if (arg.kind != TokKind::kString || arg.text.size() < 2 ||
            arg.text.front() != '"' || arg.text.back() != '"') {
          continue;
        }
        const std::string name = arg.text.substr(1, arg.text.size() - 2);
        ++stats_.metric_names_checked;

        bool charset_ok = name.size() > std::string("tsvpt_").size() &&
                          starts_with(name, "tsvpt_");
        for (const char c : name) {
          charset_ok = charset_ok && ((c >= 'a' && c <= 'z') ||
                                      (c >= '0' && c <= '9') || c == '_');
        }
        if (!charset_ok) {
          emit(arg.line, kRuleMetricName,
               "metric name '" + name +
                   "' must match tsvpt_[a-z0-9_]+ (tsvpt_ prefix, lowercase, "
                   "no dots or dashes)");
          continue;
        }
        if (name.find("__") != std::string::npos || ends_with(name, "_")) {
          emit(arg.line, kRuleMetricName,
               "metric name '" + name +
                   "' has empty name segments (no '__' runs or trailing '_')");
          continue;
        }
        if (is_counter && !ends_with(name, "_total")) {
          emit(arg.line, kRuleMetricName,
               "counter '" + name +
                   "' must end in '_total' (Prometheus counter convention)");
        } else if (is_histogram && !ends_with_any(name, kUnitSuffixes)) {
          emit(arg.line, kRuleMetricName,
               "histogram '" + name +
                   "' must end in a unit suffix (_seconds, _bytes, _ratio, "
                   "_celsius, _joules, _watts)");
        } else if (is_gauge && ends_with(name, "_total")) {
          emit(arg.line, kRuleMetricName,
               "gauge '" + name +
                   "' must not end in '_total' (reserved for counters)");
        } else if (is_gauge && !ends_with_any(name, kUnitSuffixes) &&
                   !ends_with_any(name, kCountableSuffixes)) {
          emit(arg.line, kRuleMetricName,
               "gauge '" + name +
                   "' must end in a unit suffix (_seconds, _bytes, _ratio, "
                   "_celsius, _joules, _watts) or a countable suffix "
                   "(_workers, _stacks, _batches, _frames, _connections, "
                   "_shards, _sites)");
        }
      }
    }

    // ---- header-hygiene --------------------------------------------------
    const std::vector<IncludeInfo> includes = collect_includes(toks);
    if (hygiene_on) {
      if (is_header(file.path)) {
        ++stats_.headers_audited;
        bool pragma_once = false;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
          if (is_punct(toks[i], "#") && is_ident(toks[i + 1], "pragma") &&
              is_ident(toks[i + 2], "once")) {
            pragma_once = true;
            break;
          }
        }
        if (!pragma_once) {
          emit(1, kRuleHygiene, "header is missing '#pragma once'");
        }
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
          if (is_ident(toks[i], "using") &&
              is_ident(toks[i + 1], "namespace")) {
            emit(toks[i].line, kRuleHygiene,
                 "'using namespace' in a header leaks into every includer");
          }
        }
      }
      if (ends_with(file.path, ".cpp")) {
        const std::string sibling =
            dirname_of(file.path) + "/" + stem_of(file.path) + ".hpp";
        if (known_paths.count(sibling) != 0) {
          const std::string want = stem_of(file.path) + ".hpp";
          if (includes.empty()) {
            emit(1, kRuleHygiene,
                 "source file must include its own header '" + want +
                     "' first");
          } else if (basename_of(includes.front().target) != want) {
            emit(includes.front().line, kRuleHygiene,
                 "first include must be the file's own header '" + want +
                     "' (self-include-first catches non-self-contained "
                     "headers)");
          }
        }
      }
    }

    // ---- layering-dag ----------------------------------------------------
    if (layering_on && in_src && !mod.empty()) {
      if (!layering_.has_module(mod)) {
        emit(1, kRuleLayering,
             "module 'src/" + mod + "/' is not declared in layering config");
      } else {
        for (const IncludeInfo& inc : includes) {
          if (!inc.quoted) continue;
          const std::size_t slash = inc.target.find('/');
          if (slash == std::string::npos) continue;
          const std::string dep = inc.target.substr(0, slash);
          // Same-module includes and quoted includes that are not rooted at
          // a declared module (local headers) are outside the DAG's
          // jurisdiction.
          if (dep == mod || !layering_.has_module(dep)) continue;
          ++stats_.includes_checked;
          auto& slot = observed_edges[mod][dep];
          if (slot.first.empty()) slot = {file.path, inc.line};
          if (layering_.deps.at(mod).count(dep) == 0) {
            emit(inc.line, kRuleLayering,
                 "include of \"" + inc.target + "\" creates undeclared edge " +
                     mod + " -> " + dep +
                     " (add it to tools/lint/layering.toml only if it keeps "
                     "the DAG acyclic)");
          }
        }
      }
    }
  }

  // ---- cross-file layering checks ----------------------------------------
  const bool layering_enabled = options_.enabled.count(kRuleLayering) != 0;
  if (layering_enabled) {
    // Back-edges in the *declared* config: an edge must point strictly down
    // the declared order, which is what makes the graph a DAG by
    // construction (any declared cycle necessarily contains a back-edge).
    std::map<std::string, std::size_t> rank;
    for (std::size_t i = 0; i < layering_.modules.size(); ++i) {
      rank[layering_.modules[i]] = i;
    }
    for (const auto& [mod, deps] : layering_.deps) {
      for (const std::string& dep : deps) {
        if (rank.count(mod) != 0 && rank.count(dep) != 0 &&
            rank[dep] >= rank[mod]) {
          Diagnostic diag;
          diag.file = options_.config_path;
          diag.line = 1;
          diag.rule = kRuleLayering;
          diag.message = "declared edge " + mod + " -> " + dep +
                         " is a back-edge (or self-edge) against the "
                         "declared module order; the layering graph must be "
                         "a DAG";
          diags.push_back(std::move(diag));
        }
      }
    }
    if (options_.layering_audit) {
      for (const auto& [mod, deps] : layering_.deps) {
        for (const std::string& dep : deps) {
          const auto observed = observed_edges.find(mod);
          if (observed == observed_edges.end() ||
              observed->second.count(dep) == 0) {
            Diagnostic diag;
            diag.file = options_.config_path;
            diag.line = 1;
            diag.rule = kRuleLayering;
            diag.message = "declared edge " + mod + " -> " + dep +
                           " is not used by any include in the tree "
                           "(stale layering config)";
            diags.push_back(std::move(diag));
          }
        }
      }
    }
  }

  // ---- flow-aware rules ---------------------------------------------------
  {
    FlowAnalyzer::Rules flow_rules;
    flow_rules.lock_order = options_.enabled.count(kRuleLockOrder) != 0;
    flow_rules.must_consume = options_.enabled.count(kRuleMustConsume) != 0;
    flow_rules.wire_layout = options_.enabled.count(kRuleWireLayout) != 0;
    flow_rules.hot_path = options_.enabled.count(kRuleHotPath) != 0;
    if (flow_rules.lock_order || flow_rules.must_consume ||
        flow_rules.wire_layout || flow_rules.hot_path) {
      FlowAnalyzer flow(&layering_, flow_rules);
      for (const FileData& file : files_) {
        flow.add_file(&file.path, &file.lex, &file.symbols);
      }
      flow.finish(&stats_, &diags);
    }
  }

  // ---- suppressions -------------------------------------------------------
  // Allows were collected per file but the vector is flat; rebuild the
  // file association by re-walking files (paths were not stored above).
  // To keep this simple and correct, re-collect with paths.
  std::vector<std::pair<std::string, Allow>> file_allows;
  for (const FileData& file : files_) {
    std::set<int> code_lines;
    for (const Token& tok : file.lex.tokens) code_lines.insert(tok.line);
    for (const Token& comment : file.lex.comments) {
      std::vector<Allow> local;
      collect_allows(comment, code_lines.count(comment.line) == 0, &local);
      for (Allow& allow : local) {
        file_allows.emplace_back(file.path, std::move(allow));
      }
    }
  }

  std::vector<Diagnostic> kept;
  for (Diagnostic& diag : diags) {
    bool suppressed = false;
    if (diag.rule != kRuleSuppression) {
      for (auto& [path, allow] : file_allows) {
        if (path == diag.file && allow.rule == diag.rule &&
            allow.line <= diag.line && diag.line <= allow.end_line) {
          allow.used = true;
          if (allow.has_reason) {
            suppressed = true;
            ++stats_.suppressions_used;
          }
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(diag));
  }

  for (const auto& [path, allow] : file_allows) {
    const bool rule_known =
        std::find(all_rules().begin(), all_rules().end(), allow.rule) !=
        all_rules().end();
    if (!rule_known) {
      kept.push_back({path, allow.comment_line, kRuleSuppression,
                      "lint:allow(" + allow.rule + ") names an unknown rule"});
      continue;
    }
    if (!allow.has_reason) {
      kept.push_back({path, allow.comment_line, kRuleSuppression,
                      "lint:allow(" + allow.rule +
                          ") must carry a reason: '// lint:allow(" +
                          allow.rule + "): <why>'"});
      continue;
    }
    if (!allow.used && options_.enabled.count(allow.rule) != 0) {
      kept.push_back({path, allow.comment_line, kRuleSuppression,
                      "lint:allow(" + allow.rule +
                          ") never matched a diagnostic; delete it"});
    }
  }

  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return kept;
}

// ---------------------------------------------------------------------------

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string json_report(const std::vector<Diagnostic>& diags,
                        const Stats& stats) {
  std::string out = "{\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    append_json_escaped(out, diags[i].file);
    out += "\", \"line\": " + std::to_string(diags[i].line) + ", \"rule\": \"";
    append_json_escaped(out, diags[i].rule);
    out += "\", \"message\": \"";
    append_json_escaped(out, diags[i].message);
    out += "\"}";
  }
  out += diags.empty() ? "],\n" : "\n  ],\n";
  out += "  \"stats\": {\n";
  out += "    \"files_scanned\": " + std::to_string(stats.files_scanned) +
         ",\n";
  out += "    \"atomic_sites\": " + std::to_string(stats.atomic_sites) + ",\n";
  out += "    \"atomic_nonrelaxed\": " +
         std::to_string(stats.atomic_nonrelaxed) + ",\n";
  out += "    \"includes_checked\": " + std::to_string(stats.includes_checked) +
         ",\n";
  out += "    \"determinism_sites\": " +
         std::to_string(stats.determinism_sites) + ",\n";
  out += "    \"globals_audited\": " + std::to_string(stats.globals_audited) +
         ",\n";
  out += "    \"headers_audited\": " + std::to_string(stats.headers_audited) +
         ",\n";
  out += "    \"metric_names_checked\": " +
         std::to_string(stats.metric_names_checked) + ",\n";
  out += "    \"lock_sites\": " + std::to_string(stats.lock_sites) + ",\n";
  out += "    \"lock_edges\": " + std::to_string(stats.lock_edges) + ",\n";
  out += "    \"blocking_sites\": " + std::to_string(stats.blocking_sites) +
         ",\n";
  out += "    \"must_consume_sites\": " +
         std::to_string(stats.must_consume_sites) + ",\n";
  out += "    \"hot_functions\": " + std::to_string(stats.hot_functions) +
         ",\n";
  out += "    \"hot_callee_checks\": " +
         std::to_string(stats.hot_callee_checks) + ",\n";
  out += "    \"layouts_checked\": " + std::to_string(stats.layouts_checked) +
         ",\n";
  out += "    \"layout_fields\": " + std::to_string(stats.layout_fields) +
         ",\n";
  out += "    \"suppressions_used\": " +
         std::to_string(stats.suppressions_used) + "\n";
  out += "  },\n";
  out += "  \"clean\": ";
  out += diags.empty() ? "true" : "false";
  out += "\n}\n";
  return out;
}

}  // namespace tsvpt::lint
