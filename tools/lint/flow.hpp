// Flow-aware rules for tsvpt_lint, built on the symbol/scope resolver:
//
//   lock-order     every RAII guard acquisition (lock_guard / scoped_lock /
//                  unique_lock / shared_lock) is tracked per function; the
//                  mutexes are resolved to class-qualified names and folded
//                  into one global acquisition-order graph across all TUs.
//                  Cycles in that graph (potential deadlock) and locks held
//                  across registered blocking calls are diagnosed.
//   must-consume   calls to functions returning a registered status type
//                  (DecodeStatus, BatchStatus, ...) or named in the bool-
//                  status registry must be assigned, compared, returned or
//                  otherwise consumed; a bare `f(...);` statement is an
//                  error.
//   wire-layout    `// layout:` / `// field:` directives pair offset
//                  constants with byte sizes; each declared layout must be
//                  internally consistent (fields start at 0, contiguous,
//                  non-overlapping, summing to the declared header size,
//                  CRC span inside the header and not covering itself).
//   hot-path       a function under a `// hot:` contract may not allocate,
//                  throw, lock, or call IO (or the subset named in
//                  `// hot(cats):`), enforced transitively one call level
//                  deep through the cross-TU function index.
//
// FlowAnalyzer mirrors the Analyzer's two-phase shape: add_file records
// borrowed views, finish runs the cross-TU passes.  All diagnostics flow
// through the normal suppression machinery in Analyzer::finish.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/config.hpp"
#include "lint/lexer.hpp"
#include "lint/symbols.hpp"

namespace tsvpt::lint {

class FlowAnalyzer {
 public:
  struct Rules {
    bool lock_order = true;
    bool must_consume = true;
    bool wire_layout = true;
    bool hot_path = true;
  };

  FlowAnalyzer(const LayeringConfig* config, Rules rules);

  /// All three views are borrowed and must outlive finish().
  void add_file(const std::string* path, const LexResult* lex,
                const FileSymbols* symbols);

  void finish(Stats* stats, std::vector<Diagnostic>* out);

 private:
  struct FileView {
    const std::string* path;
    const LexResult* lex;
    const FileSymbols* symbols;
  };

  const LayeringConfig* config_;
  Rules rules_;
  std::vector<FileView> files_;
  SymbolIndex index_;
};

}  // namespace tsvpt::lint
