// tsvpt_lint lexer: a lightweight, dependency-free C++ tokenizer.
//
// This is not a compiler front end — it is exactly the slice of lexing the
// project-invariant rules need to be trustworthy on this codebase:
//
//   * comments (line, block, and line-continued `// ... \`) are lexed as
//     first-class tokens with begin/end line ranges, because the rules read
//     them (`// mo:` pairing contracts, `// lint:allow(...)` suppressions);
//   * string literals — including raw strings with arbitrary delimiters and
//     encoding prefixes — and char literals are opaque single tokens, so a
//     `*/` or `//` inside a string can never derail rule matching;
//   * backslash-newline splices are honoured everywhere except inside raw
//     strings (mirroring translation phase 2), and physical line numbers
//     keep advancing through them so diagnostics stay clickable;
//   * preprocessor directive lines are lexed normally but flagged
//     `in_directive`, so include/pragma parsing is trivial and brace/scope
//     tracking can skip them, while atomics inside macro bodies are still
//     visible to the atomics-contract rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tsvpt::lint {

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,   // "..." / R"(...)" / '...' — quotes included in text
  kPunct,    // longest-match of multi-char operators we care about
  kComment,  // full text including // or /* */ delimiters
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;      // 1-based physical line where the token starts
  int end_line = 0;  // last physical line the token touches
  bool in_directive = false;
};

struct LexResult {
  std::vector<Token> tokens;    // everything except comments
  std::vector<Token> comments;  // comments, in source order
};

/// Tokenize one translation unit. Never throws; unterminated constructs are
/// closed at end of input (the linter must not crash on in-progress code).
[[nodiscard]] LexResult lex(std::string_view source);

}  // namespace tsvpt::lint
