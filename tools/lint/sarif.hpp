// Minimal SARIF 2.1.0 serialization of a lint run, for CI artifact upload
// and code-scanning ingestion.  One run, one tool ("tsvpt_lint"), one result
// per diagnostic with the rule id, message, and physical location.
#pragma once

#include <string>
#include <vector>

#include "lint/analyzer.hpp"

namespace tsvpt::lint {

[[nodiscard]] std::string sarif_report(const std::vector<Diagnostic>& diags);

}  // namespace tsvpt::lint
