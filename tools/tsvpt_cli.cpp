// tsvpt command-line tool: drive the library without writing C++.
//
//   tsvpt_cli tech [--card FILE]
//       Print the (default or loaded) technology card.
//   tsvpt_cli sense --t 63.2 [--dvtn-mv 18] [--dvtp-mv -12] [--seed 1]
//                   [--card FILE] [--compensate]
//       One self-calibrating conversion on a synthetic die; prints the
//       estimate vs the truth you specified.
//   tsvpt_cli mc [--dies 500] [--seed 42] [--card FILE]
//       Monte-Carlo accuracy summary (mini F3/F4).
//   tsvpt_cli trace [--trace FILE] [--sample-ms 2] [--duration-ms 150]
//                   [--seed 9]
//       Play a workload trace (or the built-in burst/idle) against the
//       4-die stack with a 16-sensor monitor; prints tracking statistics.
//   tsvpt_cli fleet [--stacks 32] [--threads 8] [--scans 50] [--sample-ms 1]
//                   [--ring 256] [--grid 2] [--alert-c 85] [--seed 1]
//       Concurrent fleet telemetry: sample N independent stacks on a worker
//       pool, stream wire frames through lock-free rings into the
//       aggregator, print a JSON summary (frame/drop/alert counts).
//       Exit status: 0 only when the run is clean — nonzero when any alert
//       fired or any frame failed to decode, so scripts can gate on it.
//   tsvpt_cli chaos [--stacks 8] [--threads 4] [--scans 120] [--grid 2]
//                   [--events-per-kind 1] [--watchdog-ms 50] [--seed 7]
//       Chaos campaign: run a supervised fleet under a seeded random fault
//       plan (stuck/dead oscillators, bit flips, supply droop, calibration
//       drift, frame corruption, ring and worker stalls) and print a JSON
//       report: per-fault detection latency, false-positive count,
//       degraded-mode temperature error, recovery status.  Exit 0 when
//       every sensor fault was detected, nothing healthy was permanently
//       quarantined, and the fleet converged back to all-healthy.
//   tsvpt_cli control [--policy dvfs] [--stacks 8] [--threads 4]
//                     [--scans 120] [--peak-w 8] [--ceiling-c 65]
//                     [--floor-c 58] [--violation-c 75] [--chaos 0]
//       Closed-loop DTM over a fleet: every stack is driven by its own
//       controller (static worst-case, DVFS ladder, reactive gating or
//       inter-die migration) actuating the plant between scans.  --chaos N
//       injects N sensor faults per kind (dead/stuck oscillators, supply
//       droop) under health supervision — quarantined sites are never
//       actuated on; affected dies degrade to the worst-case rung.  Prints
//       a JSON report (energy, peak true temperature, violation-seconds,
//       actuation/migration/blind-scan counters).  Exit 0 only when the
//       fleet accrued zero violation-seconds.
//       Both fleet and chaos take --store DIR to persist every produced
//       frame into the telemetry historian while sampling; fleet also takes
//       --summary-interval S for periodic progress lines on stderr.
//   tsvpt_cli store <info|query|replay|compact> --dir DIR
//       Operate on a historian directory: `info` prints stats and verifies
//       every block CRC (exit 1 on corruption — the post-crash integrity
//       gate), `query` filters by time/stack/site, `replay` feeds stored
//       frames through the aggregator for offline alert analysis and prints
//       the replayed fleet view's canonical digest (compare against a serve
//       report's digest to prove the store holds exactly what the server
//       ingested), and `compact` applies --max-bytes / --max-age-s
//       retention.
//   tsvpt_cli serve [--port 0] [--shards 2] [--ring 4096] [--alert-c 85]
//                   [--store DIR] [--duration-s S] [--idle-exit-s 10]
//                   [--idle-conn-s S]
//       Sharded fleet ingest server: accept framed-TCP publisher
//       connections, ack every consumed batch (deduping retransmits per
//       publisher), partition stacks across per-shard aggregators, and on
//       exit print a JSON report with the merged cross-shard fleet view
//       (including its canonical digest) plus ack/dedup/heartbeat counters.
//       Runs until --duration-s elapses or, once idle with no open
//       connections, --idle-exit-s; --idle-conn-s reaps connections that go
//       silent (publishers heartbeat to stay alive).  Exit 0 only when no
//       alert fired and every frame decoded.
//   tsvpt_cli publish --port N [--host H] [--stacks 8] [--threads 2]
//                     [--scans 50] [--stack-base 0] [--batch-frames 64]
//                     [--flush-ms 5] [--queue 64] [--seed 1]
//                     [--spill-dir DIR] [--publisher-id N]
//                     [--heartbeat-ms MS] [--jitter 0.5] [--drain-s 2]
//       Fleet publisher: sample N stacks and stream their frames to a serve
//       instance over framed TCP (size/time-bounded batches, bounded-queue
//       backpressure, exponential-backoff reconnect with seeded jitter).
//       --stack-base offsets wire stack ids so several publishers occupy
//       disjoint fleet ranges.  --spill-dir upgrades delivery to
//       at-least-once: sealed batches persist to a crash-safe spill log
//       until the server acks them, and a rerun on the same directory
//       (--scans 0 for a pure resume) retransmits whatever a SIGKILL left
//       unacked.  Without a spill dir, exit 0 only when the server was
//       reached and every produced frame was sent; with one, exit 0 only
//       when the FIN/drained handshake completed and nothing was shed.
//   tsvpt_cli obs dump [--format prom|json] [--exercise 1]
//       Print the self-observability metric registry (Prometheus text or
//       JSON); --exercise runs a mini fleet first so the dump holds live
//       numbers.  fleet and chaos take --metrics-out FILE / --trace-out
//       FILE to export the run's metrics and a Chrome trace-event JSON of
//       its flight-recorder spans, and every command takes --log-level
//       (or the TSVPT_LOG environment variable).
//   tsvpt_cli obs scrape --port N [--host H] [--path /metrics|/healthz]
//       One-shot HTTP client for a serve instance's scrape endpoint
//       (--http-port): prints the response body (Prometheus text or health
//       JSON); exit 0 only on a 200.
//   tsvpt_cli obs merge-trace [--out FILE] FILE[:offset_ns[:label]] ...
//       Stitch per-process Chrome traces (--trace-out dumps) into one
//       timeline: each input gets its own pid lane and its events shift by
//       the given clock offset (the publisher's ClockAlign estimate), so
//       spans from different processes line up on one clock.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "control/controller.hpp"
#include "control/policies.hpp"
#include "core/stack_monitor.hpp"
#include "device/tech_io.hpp"
#include "ingest/fleet_view.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/args.hpp"
#include "ptsim/log.hpp"
#include "ptsim/stats.hpp"
#include "sim/monitor_session.hpp"
#include "store/store.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"
#include "thermal/workload_io.hpp"

namespace {

using namespace tsvpt;

/// Shared --log-level handling.  The flag wins over the TSVPT_LOG
/// environment default the Logger picked up at startup.
void apply_log_level(const Args& args) {
  const std::string text = args.get("log-level", std::string{});
  if (text.empty()) return;
  const auto level = parse_log_level(text);
  if (!level) {
    throw std::invalid_argument{
        "--log-level: expected debug|info|warn|error, got '" + text + "'"};
  }
  Logger::instance().set_level(*level);
}

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot open for writing: " + path};
  out << body;
  if (!out) throw std::runtime_error{"write failed: " + path};
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Shared --metrics-out / --trace-out handling, run after a command's
/// workload so the files hold the whole run.  The metrics format follows
/// the extension (.json -> JSON, anything else -> Prometheus text); the
/// trace file is always Chrome trace-event JSON (load via about:tracing or
/// https://ui.perfetto.dev).
void export_obs(const Args& args) {
  const std::string metrics = args.get("metrics-out", std::string{});
  if (!metrics.empty()) {
    write_text_file(metrics, ends_with(metrics, ".json")
                                 ? obs::metrics_json()
                                 : obs::metrics_prometheus());
  }
  const std::string trace = args.get("trace-out", std::string{});
  if (!trace.empty()) write_text_file(trace, obs::trace_chrome_json());
}

device::Technology technology_from(const Args& args) {
  const std::string card = args.get("card", std::string{});
  return card.empty() ? device::Technology::tsmc65_like()
                      : device::load_technology(card);
}

int cmd_tech(const Args& args) {
  args.check_known({"card", "log-level"});
  std::cout << device::to_card_string(technology_from(args));
  return 0;
}

int cmd_sense(const Args& args) {
  args.check_known(
      {"card", "t", "dvtn-mv", "dvtp-mv", "seed", "compensate", "log-level"});
  core::PtSensor::Config cfg;
  cfg.tech = technology_from(args);
  cfg.model_vdd = cfg.tech.vdd_nominal;
  if (args.has("compensate")) cfg.compensate_supply = true;
  core::PtSensor sensor{cfg,
                        static_cast<std::uint64_t>(args.get("seed", 1LL))};

  const double t = args.get("t", 25.0);
  const double dvtn = args.get("dvtn-mv", 0.0);
  const double dvtp = args.get("dvtp-mv", 0.0);
  core::DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t});
  env.vt_delta = {millivolts(dvtn), millivolts(dvtp)};
  env.supply = circuit::SupplyRail{{cfg.model_vdd, Volt{0.0}, Volt{0.0}}};
  Rng noise{static_cast<std::uint64_t>(args.get("seed", 1LL)) + 1};

  const auto est = sensor.self_calibrate(env, &noise);
  std::printf("self-calibration: %s (%d iterations)\n",
              est.converged ? "converged" : "FAILED", est.iterations);
  std::printf("  dVtn  %8.3f mV   (true %8.3f)\n", est.dvtn.value() * 1e3,
              dvtn);
  std::printf("  dVtp  %8.3f mV   (true %8.3f)\n", est.dvtp.value() * 1e3,
              dvtp);
  std::printf("  T     %8.3f degC (true %8.3f)\n",
              to_celsius(est.temperature).value(), t);
  std::printf("  energy %7.1f pJ\n", est.energy.value() * 1e12);
  return est.converged ? 0 : 1;
}

int cmd_mc(const Args& args) {
  args.check_known({"card", "dies", "seed", "log-level"});
  const device::Technology tech = technology_from(args);
  core::PtSensor::Config cfg;
  cfg.tech = tech;
  cfg.model_vdd = tech.vdd_nominal;
  const auto dies = static_cast<std::size_t>(args.get("dies", 500LL));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 42LL));

  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  Samples err_n;
  Samples err_p;
  Samples err_t;
  const process::MonteCarlo mc{seed, dies};
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{cfg, derive_seed(seed, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.supply = circuit::SupplyRail{{cfg.model_vdd, Volt{0.0}, Volt{0.0}}};
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    const auto est = sensor.self_calibrate(env, &rng);
    if (!est.converged) return;
    err_n.add((est.dvtn.value() - die.at(0).nmos.value()) * 1e3);
    err_p.add((est.dvtp.value() - die.at(0).pmos.value()) * 1e3);
    for (double t : {10.0, 50.0, 90.0}) {
      err_t.add(sensor.read(env.at_celsius(Celsius{t}), &rng)
                    .temperature.value() -
                t);
    }
  });
  std::printf("%zu dies on %s:\n", dies, tech.name.c_str());
  std::printf("  dVtn error: 3sigma %.3f mV, max |e| %.3f mV\n",
              err_n.three_sigma(), err_n.max_abs());
  std::printf("  dVtp error: 3sigma %.3f mV, max |e| %.3f mV\n",
              err_p.three_sigma(), err_p.max_abs());
  std::printf("  T error:    3sigma %.3f degC, max |e| %.3f degC\n",
              err_t.three_sigma(), err_t.max_abs());
  return 0;
}

int cmd_trace(const Args& args) {
  args.check_known(
      {"trace", "sample-ms", "duration-ms", "seed", "log-level"});
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  const std::string trace = args.get("trace", std::string{});
  const thermal::Workload workload =
      trace.empty() ? thermal::Workload::burst_idle(stack, Watt{5.0},
                                                    Watt{0.25},
                                                    Second{50e-3}, 3)
                    : thermal::load_workload(trace);

  thermal::ThermalNetwork network{stack};
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    points};
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 9LL));
  Rng rng{seed};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) sites[d * 4 + i].vt_delta = die.at(i);
  }
  core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites,
                             derive_seed(seed, 1)};
  sim::MonitoringSession::Config session_cfg;
  session_cfg.sample_period =
      Second{args.get("sample-ms", 2.0) * 1e-3};
  session_cfg.thermal_step = Second{0.5e-3};
  sim::MonitoringSession session{&network, &workload, &monitor, session_cfg,
                                 derive_seed(seed, 2)};
  const double duration_ms =
      args.get("duration-ms", workload.total_duration().value() * 1e3);
  session.run(Second{duration_ms * 1e-3});

  const Samples errors = session.error_samples();
  std::printf("trace: %s, %.1f ms simulated, %zu scans of %zu sensors\n",
              trace.empty() ? "(built-in burst/idle)" : trace.c_str(),
              duration_ms, session.trace().size(), monitor.site_count());
  std::printf("  tracking error: mean %+.3f, 3sigma %.3f, max |e| %.3f degC\n",
              errors.mean(), errors.three_sigma(), errors.max_abs());
  std::printf("  sensing energy: %.1f nJ\n",
              session.total_sensing_energy().value() * 1e9);
  return 0;
}

/// Periodic progress reporter for long fleet runs: a thread printing the
/// aggregator's live counters to stderr every `interval` until stopped.
class SummaryReporter {
 public:
  SummaryReporter(const telemetry::Aggregator& aggregator, double interval_s)
      : aggregator_(aggregator), interval_s_(interval_s) {
    if (interval_s_ > 0.0) thread_ = std::thread{[this] { loop(); }};
  }
  ~SummaryReporter() { stop(); }

  void stop() {
    done_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    const auto t0 = std::chrono::steady_clock::now();
    double next = interval_s_;
    while (!done_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (elapsed < next) continue;
      next += interval_s_;
      const telemetry::Aggregator::Progress p = aggregator_.progress();
      // Through the Logger, not raw stderr: progress must never pollute the
      // machine-parsed stdout report, and the default sink's monotonic
      // timestamps line up with trace spans.
      char line[128];
      std::snprintf(line, sizeof line,
                    "[fleet %6.1fs] frames=%llu decode_errors=%llu "
                    "alerts=%llu",
                    elapsed, static_cast<unsigned long long>(p.frames),
                    static_cast<unsigned long long>(p.decode_errors),
                    static_cast<unsigned long long>(p.alerts));
      Logger::instance().log(LogLevel::kInfo, line);
    }
  }

  const telemetry::Aggregator& aggregator_;
  double interval_s_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

int cmd_fleet(const Args& args) {
  args.check_known({"stacks", "threads", "scans", "sample-ms", "ring", "grid",
                    "alert-c", "seed", "card", "store", "summary-interval",
                    "log-level", "metrics-out", "trace-out"});
  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = static_cast<std::size_t>(args.get("stacks", 8LL));
  cfg.thread_count = static_cast<std::size_t>(args.get("threads", 0LL));
  cfg.scans_per_stack = static_cast<std::size_t>(args.get("scans", 50LL));
  cfg.sample_period = Second{args.get("sample-ms", 1.0) * 1e-3};
  cfg.ring_capacity = static_cast<std::size_t>(args.get("ring", 256LL));
  cfg.grid_columns = cfg.grid_rows =
      static_cast<std::size_t>(args.get("grid", 2LL));
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1LL));
  cfg.sensor.tech = technology_from(args);
  cfg.sensor.model_vdd = cfg.sensor.tech.vdd_nominal;

  telemetry::Aggregator::Config agg_cfg;
  agg_cfg.alert_threshold = Celsius{args.get("alert-c", 85.0)};

  std::unique_ptr<store::StoreWriter> writer;
  const std::string store_dir = args.get("store", std::string{});
  if (!store_dir.empty()) {
    writer = std::make_unique<store::StoreWriter>(store_dir);
    cfg.sink = writer.get();
  }

  const double summary_interval = args.get("summary-interval", 0.0);
  // Explicitly requested progress must not be filtered by the default WARN
  // level; an explicit --log-level (or TSVPT_LOG) still wins.
  if (summary_interval > 0.0 && !args.has("log-level") &&
      std::getenv("TSVPT_LOG") == nullptr) {
    Logger::instance().set_level(LogLevel::kInfo);
  }

  telemetry::FleetSampler sampler{cfg};
  telemetry::Aggregator aggregator{agg_cfg};
  SummaryReporter reporter{aggregator, summary_interval};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();
  reporter.stop();
  if (writer != nullptr) writer->close();

  const telemetry::Aggregator::Summary& sum = aggregator.summary();
  std::ostringstream json;
  json << "{\n"
       << "  \"stacks\": " << sampler.stack_count() << ",\n"
       << "  \"threads\": " << sampler.worker_count() << ",\n"
       << "  \"scans_per_stack\": " << cfg.scans_per_stack << ",\n"
       << "  \"elapsed_s\": " << sampler.elapsed().value() << ",\n"
       << "  \"frames_produced\": " << sampler.total_frames() << ",\n"
       << "  \"frames_received\": " << sum.frames << ",\n"
       << "  \"frames_dropped\": " << sampler.total_dropped() << ",\n"
       << "  \"decode_errors\": " << sum.decode_errors << ",\n"
       << "  \"frames_per_s\": "
       << (sampler.elapsed().value() > 0.0
               ? static_cast<double>(sampler.total_frames()) /
                     sampler.elapsed().value()
               : 0.0)
       << ",\n"
       << "  \"latency_p50_us\": " << sum.latency.quantile(0.5) * 1e6 << ",\n"
       << "  \"latency_p95_us\": " << sum.latency.quantile(0.95) * 1e6
       << ",\n"
       << "  \"alerts\": {";
  {
    bool first = true;
    for (const auto& [kind, count] : sum.alerts_by_kind) {
      json << (first ? "" : ", ") << '"' << telemetry::to_string(kind)
           << "\": " << count;
      first = false;
    }
  }
  json << "},\n";
  if (writer != nullptr) {
    const store::StoreStats st = writer->stats();
    json << "  \"store\": {\"dir\": \"" << store_dir
         << "\", \"segments\": " << st.segments
         << ", \"blocks\": " << st.blocks << ", \"frames\": " << st.frames
         << ", \"bytes_on_disk\": " << st.bytes_on_disk
         << ", \"bytes_raw\": " << st.bytes_raw
         << ", \"compression_ratio\": " << st.compression_ratio() << "},\n";
  }
  json << "  \"per_stack\": [\n";
  for (std::size_t k = 0; k < sampler.stack_count(); ++k) {
    const auto id = static_cast<std::uint32_t>(k);
    const auto it = sum.stacks.find(id);
    std::uint64_t received = 0;
    std::uint64_t missed = 0;
    std::uint64_t alerts = 0;
    double max_sensed = 0.0;
    if (it != sum.stacks.end()) {
      received = it->second.frames;
      missed = it->second.missed;
      alerts = it->second.alerts;
      for (const auto& [die, stats] : it->second.dies) {
        max_sensed = std::max(max_sensed, stats.sensed_c.max());
      }
    }
    json << "    {\"stack\": " << k
         << ", \"frames\": " << sampler.production()[k].frames
         << ", \"received\": " << received
         << ", \"dropped\": " << sampler.production()[k].dropped
         << ", \"missed\": " << missed << ", \"alerts\": " << alerts
         << ", \"max_sensed_c\": " << max_sensed << "}"
         << (k + 1 < sampler.stack_count() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"obs\": " << obs::metrics_json() << "\n}\n";
  std::cout << json.str();
  export_obs(args);
  // Nonzero when anything alerted (or failed to decode): `tsvpt_cli fleet`
  // doubles as a scriptable health gate for the simulated fleet.
  return (sum.decode_errors == 0 && sum.alerts == 0) ? 0 : 1;
}

int cmd_chaos(const Args& args) {
  args.check_known({"stacks", "threads", "scans", "sample-ms", "ring", "grid",
                    "events-per-kind", "watchdog-ms", "seed", "card", "store",
                    "log-level", "metrics-out", "trace-out"});
  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = static_cast<std::size_t>(args.get("stacks", 8LL));
  cfg.thread_count = static_cast<std::size_t>(args.get("threads", 4LL));
  cfg.scans_per_stack = static_cast<std::size_t>(args.get("scans", 120LL));
  cfg.sample_period = Second{args.get("sample-ms", 1.0) * 1e-3};
  cfg.ring_capacity = static_cast<std::size_t>(args.get("ring", 512LL));
  cfg.grid_columns = cfg.grid_rows =
      static_cast<std::size_t>(args.get("grid", 2LL));
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 7LL));
  cfg.sensor.tech = technology_from(args);
  cfg.sensor.model_vdd = cfg.sensor.tech.vdd_nominal;
  cfg.supervise = true;
  // Sparse fleet grids see real gradients past the single-stack default:
  // the burst workload's die-0 hotspot reaches ~20 degC of leave-one-out
  // deviation on a 2x2 grid.  Quarantine decisions need the threshold
  // above that, or healthy hotspot sensors get false-quarantined.
  cfg.health.fault.threshold = Celsius{25.0};

  const auto sites_per_stack =
      cfg.grid_columns * cfg.grid_rows * 4;  // four_die_stack
  const inject::FaultPlan plan = inject::FaultPlan::random_campaign(
      cfg.seed, cfg.stack_count, sites_per_stack, cfg.scans_per_stack,
      {inject::FaultKind::kStuckRo, inject::FaultKind::kDeadRo,
       inject::FaultKind::kCounterBitFlip, inject::FaultKind::kSupplyDroop,
       inject::FaultKind::kCalDrift, inject::FaultKind::kFrameCorrupt,
       inject::FaultKind::kRingStall, inject::FaultKind::kWorkerStall},
      static_cast<std::size_t>(args.get("events-per-kind", 1LL)));

  // Recording under chaos: the sink sees pristine frames before the
  // injector corrupts the wire, so the store stays replayable even while
  // the live path is being battered (and a SIGKILL mid-run leaves at most
  // a torn tail for recovery to truncate — the CI soak relies on this).
  std::unique_ptr<store::StoreWriter> writer;
  const std::string store_dir = args.get("store", std::string{});
  if (!store_dir.empty()) {
    writer = std::make_unique<store::StoreWriter>(store_dir);
    cfg.sink = writer.get();
  }

  telemetry::FleetSampler sampler{cfg};
  inject::ChaosInjector injector{plan, &sampler};
  sampler.set_interceptor(&injector);

  telemetry::Aggregator::Config agg_cfg;
  agg_cfg.alert_threshold = Celsius{200.0};  // alerts are not under test here
  agg_cfg.watchdog_timeout = Second{args.get("watchdog-ms", 50.0) * 1e-3};
  agg_cfg.on_stalled_ring = [&sampler](std::size_t ring) {
    sampler.resume_worker(ring);
  };
  telemetry::Aggregator aggregator{agg_cfg};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();
  if (writer != nullptr) writer->close();

  // Detection latency per sensor-level fault: scans from the fault's onset
  // to the site's quarantine transition.
  const auto is_sensor_fault = [](inject::FaultKind k) {
    return k == inject::FaultKind::kStuckRo ||
           k == inject::FaultKind::kDeadRo ||
           k == inject::FaultKind::kCounterBitFlip ||
           k == inject::FaultKind::kSupplyDroop ||
           k == inject::FaultKind::kCalDrift;
  };
  struct Detection {
    const inject::FaultEvent* event;
    long latency = -1;  // scans; -1 = never quarantined
  };
  std::vector<Detection> detections;
  std::set<std::pair<std::size_t, std::size_t>> faulted_sites;
  for (const auto& e : plan.events()) {
    if (!is_sensor_fault(e.kind)) continue;
    faulted_sites.insert({e.stack, e.site});
    Detection d{&e, -1};
    for (const auto& t : sampler.transitions(e.stack)) {
      if (t.site_index == e.site &&
          t.to == core::HealthState::kQuarantined && t.scan >= e.start_scan) {
        d.latency = static_cast<long>(t.scan - e.start_scan);
        break;
      }
    }
    detections.push_back(d);
  }

  std::size_t detected = 0;
  for (const auto& d : detections) {
    if (d.latency >= 0) ++detected;
  }
  // False positive: a never-faulted site that was quarantined; permanent
  // when it is still not healthy at the end of the run.
  std::uint64_t false_quarantines = 0;
  std::uint64_t permanent_false_positives = 0;
  bool all_healthy = true;
  for (std::size_t k = 0; k < sampler.stack_count(); ++k) {
    for (const auto& t : sampler.transitions(k)) {
      if (t.to == core::HealthState::kQuarantined &&
          faulted_sites.count({k, t.site_index}) == 0) {
        false_quarantines += 1;
      }
    }
    const auto health = sampler.health(k);
    for (std::size_t i = 0; i < health.size(); ++i) {
      if (health[i] != core::HealthState::kHealthy) {
        all_healthy = false;
        if (faulted_sites.count({k, i}) == 0) permanent_false_positives += 1;
      }
    }
  }

  const telemetry::Aggregator::Summary& sum = aggregator.summary();
  RunningStats degraded_error;
  RunningStats healthy_error;
  for (const auto& [id, stack] : sum.stacks) {
    for (const auto& [die, stats] : stack.dies) {
      degraded_error.merge(stats.degraded_error_c);
      healthy_error.merge(stats.error_c);
    }
  }

  const inject::ChaosInjector::Stats inj = injector.stats();
  std::ostringstream json;
  json << "{\n"
       << "  \"stacks\": " << sampler.stack_count() << ",\n"
       << "  \"scans_per_stack\": " << cfg.scans_per_stack << ",\n"
       << "  \"fault_events\": " << plan.size() << ",\n"
       << "  \"sensor_faults\": " << detections.size() << ",\n"
       << "  \"detected\": " << detected << ",\n"
       << "  \"detections\": [\n";
  for (std::size_t i = 0; i < detections.size(); ++i) {
    const auto& d = detections[i];
    json << "    {\"kind\": \"" << inject::to_string(d.event->kind)
         << "\", \"stack\": " << d.event->stack
         << ", \"site\": " << d.event->site
         << ", \"start_scan\": " << d.event->start_scan
         << ", \"detection_latency_scans\": " << d.latency << "}"
         << (i + 1 < detections.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"false_quarantines\": " << false_quarantines << ",\n"
       << "  \"permanent_false_positives\": " << permanent_false_positives
       << ",\n"
       << "  \"recovered_all_healthy\": " << (all_healthy ? "true" : "false")
       << ",\n"
       << "  \"health_transitions_on_wire\": "
       << sum.health_transitions.size() << ",\n"
       << "  \"substituted_readings\": " << sum.substituted_readings << ",\n"
       << "  \"degraded_error_mean_c\": " << degraded_error.mean() << ",\n"
       << "  \"degraded_error_max_abs_c\": " << degraded_error.max_abs()
       << ",\n"
       << "  \"healthy_error_max_abs_c\": " << healthy_error.max_abs()
       << ",\n"
       << "  \"decode_errors\": " << sum.decode_errors << ",\n"
       << "  \"frames_corrupted\": " << inj.frames_corrupted << ",\n"
       << "  \"publishes_suppressed\": " << inj.publishes_suppressed << ",\n"
       << "  \"worker_stalls\": " << inj.worker_stalls_requested << ",\n"
       << "  \"watchdog_kicks\": " << sum.watchdog_kicks << ",\n"
       << "  \"obs\": " << obs::metrics_json() << "\n"
       << "}\n";
  std::cout << json.str();
  export_obs(args);

  const bool ok = detected == detections.size() &&
                  permanent_false_positives == 0 && all_healthy;
  return ok ? 0 : 1;
}

int cmd_control(const Args& args) {
  args.check_known({"policy", "stacks", "threads", "scans", "sample-ms",
                    "ring", "grid", "seed", "peak-w", "ceiling-c", "floor-c",
                    "violation-c", "chaos", "card", "log-level",
                    "metrics-out", "trace-out"});

  const std::string policy_name = args.get("policy", std::string{"dvfs"});
  control::PolicyKind kind;
  if (!control::parse_policy_kind(policy_name, &kind)) {
    throw std::invalid_argument{"control: unknown policy '" + policy_name +
                                "' (static|dvfs|gating|migration)"};
  }

  const double ceiling_c = args.get("ceiling-c", 65.0);
  const double floor_c = args.get("floor-c", 58.0);
  control::ControlPlane::Config plane_cfg;
  plane_cfg.controller.kind = kind;
  plane_cfg.controller.policy.ceiling = Celsius{ceiling_c};
  plane_cfg.controller.policy.floor = Celsius{floor_c};
  plane_cfg.controller.policy.gate_on = Celsius{ceiling_c};
  plane_cfg.controller.policy.gate_off = Celsius{floor_c};
  plane_cfg.controller.policy.migrate_trip = Celsius{floor_c + 2.0};
  plane_cfg.controller.violation_ceiling =
      Celsius{args.get("violation-c", 75.0)};

  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = static_cast<std::size_t>(args.get("stacks", 8LL));
  cfg.thread_count = static_cast<std::size_t>(args.get("threads", 4LL));
  cfg.scans_per_stack = static_cast<std::size_t>(args.get("scans", 120LL));
  cfg.sample_period = Second{args.get("sample-ms", 1.0) * 1e-3};
  cfg.ring_capacity = static_cast<std::size_t>(args.get("ring", 512LL));
  cfg.grid_columns = cfg.grid_rows =
      static_cast<std::size_t>(args.get("grid", 2LL));
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 4242LL));
  cfg.peak_power = Watt{args.get("peak-w", 8.0)};
  cfg.sensor.tech = technology_from(args);
  cfg.sensor.model_vdd = cfg.sensor.tech.vdd_nominal;
  // Controller-in-the-loop needs supervision: quarantined/dead sites must
  // read as non-credible so a dark die degrades to the worst-case rung
  // instead of being actuated on dead readings.
  cfg.supervise = true;
  cfg.health.fault.threshold = Celsius{25.0};  // same caveat as cmd_chaos

  plane_cfg.stack_count = cfg.stack_count;
  plane_cfg.die_count = 4;  // four_die_stack
  control::ControlPlane plane{plane_cfg};
  cfg.control = &plane;

  telemetry::FleetSampler sampler{cfg};

  // Optional sensor-fault chaos (kinds a controller must survive without
  // ever acting on a dead reading; frame/ring faults are cmd_chaos's job).
  std::unique_ptr<inject::ChaosInjector> injector;
  const auto chaos_events =
      static_cast<std::size_t>(args.get("chaos", 0LL));
  inject::FaultPlan plan;
  if (chaos_events > 0) {
    const auto sites_per_stack = cfg.grid_columns * cfg.grid_rows * 4;
    plan = inject::FaultPlan::random_campaign(
        cfg.seed, cfg.stack_count, sites_per_stack, cfg.scans_per_stack,
        {inject::FaultKind::kDeadRo, inject::FaultKind::kStuckRo,
         inject::FaultKind::kSupplyDroop},
        chaos_events);
    injector = std::make_unique<inject::ChaosInjector>(plan, &sampler);
    sampler.set_interceptor(injector.get());
  }

  sampler.run();

  const control::Controller::Stats total = plane.total();
  std::ostringstream json;
  json << "{\n"
       << "  \"policy\": \"" << control::to_string(kind) << "\",\n"
       << "  \"stacks\": " << cfg.stack_count << ",\n"
       << "  \"threads\": " << cfg.thread_count << ",\n"
       << "  \"scans_per_stack\": " << cfg.scans_per_stack << ",\n"
       << "  \"fault_events\": " << plan.size() << ",\n"
       << "  \"decisions\": " << total.decisions << ",\n"
       << "  \"actuations\": " << total.actuations << ",\n"
       << "  \"level_changes\": " << total.level_changes << ",\n"
       << "  \"migrations\": " << total.migrations << ",\n"
       << "  \"blind_scans\": " << total.blind_scans << ",\n"
       << "  \"energy_j\": " << total.energy_j << ",\n"
       << "  \"work_done\": " << total.work_done << ",\n"
       << "  \"violation_seconds\": " << total.violation_s << ",\n"
       << "  \"peak_true_c\": " << total.peak_true_c << ",\n"
       << "  \"control_digest_bytes\": "
       << control::canonical_digest(plane).size() << ",\n"
       << "  \"obs\": " << obs::metrics_json() << "\n"
       << "}\n";
  std::cout << json.str();
  export_obs(args);

  // Scripts gate on this: the fleet stayed under the scoring ceiling for
  // the whole campaign.
  return total.violation_s == 0.0 ? 0 : 1;
}

int cmd_serve(const Args& args) {
  args.check_known({"port", "shards", "ring", "alert-c", "spatial", "store",
                    "duration-s", "idle-exit-s", "idle-conn-s", "http-port",
                    "log-level", "metrics-out", "trace-out"});
  ingest::IngestServer::Config cfg;
  cfg.port = static_cast<std::uint16_t>(args.get("port", 0LL));
  cfg.shard_count = static_cast<std::size_t>(args.get("shards", 2LL));
  cfg.shard_ring_capacity = static_cast<std::size_t>(args.get("ring", 4096LL));
  cfg.aggregator.alert_threshold = Celsius{args.get("alert-c", 85.0)};
  // Sparse 2x2 publisher grids see real hotspot gradients past the spatial
  // check's threshold (the same caveat cmd_chaos documents); --spatial 0
  // gates a soak on transport cleanliness without the detector's opinion.
  cfg.aggregator.spatial_check = args.get("spatial", 1LL) != 0;
  cfg.store_dir = args.get("store", std::string{});
  // Reap connections silent past this long; publishers on a heartbeat
  // interval below it stay alive while idle.  0 (default) disables.
  cfg.idle_conn_timeout = Second{args.get("idle-conn-s", 0.0)};
  // --http-port N turns on the live scrape endpoint (0 = ephemeral; the
  // bound port is printed on stderr next to the ingest port).
  if (args.has("http-port")) {
    cfg.http_enabled = true;
    cfg.http_port = static_cast<std::uint16_t>(args.get("http-port", 0LL));
  }

  const double duration_s = args.get("duration-s", 0.0);
  const double idle_exit_s = args.get("idle-exit-s", 10.0);

  ingest::IngestServer server{cfg};
  server.start();
  // The bound port on stderr immediately, so scripts wrapping an ephemeral
  // port (--port 0) can discover it before the JSON report exists.
  std::fprintf(stderr, "tsvpt_cli serve: listening on %s:%u (%zu shards)\n",
               cfg.bind_host.c_str(), server.port(), server.shard_count());
  if (cfg.http_enabled) {
    std::fprintf(stderr, "tsvpt_cli serve: scrape endpoint on %s:%u\n",
                 cfg.bind_host.c_str(), server.http_port());
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (duration_s > 0.0 && elapsed >= duration_s) break;
    if (idle_exit_s > 0.0 && server.stats().open_connections == 0 &&
        server.idle_for().value() >= idle_exit_s) {
      break;
    }
  }
  server.stop();

  const ingest::IngestServer::Stats st = server.stats();
  const ingest::FleetView view = server.fleet_view();
  std::ostringstream json;
  json << "{\n"
       << "  \"port\": " << server.port() << ",\n"
       << "  \"shards\": " << server.shard_count() << ",\n"
       << "  \"connections\": " << st.connections << ",\n"
       << "  \"disconnects\": " << st.disconnects << ",\n"
       << "  \"partial_disconnects\": " << st.partial_disconnects << ",\n"
       << "  \"protocol_errors\": " << st.protocol_errors << ",\n"
       << "  \"batches\": " << st.batches << ",\n"
       << "  \"frames\": " << st.frames << ",\n"
       << "  \"bytes\": " << st.bytes << ",\n"
       << "  \"ring_drops\": " << st.ring_drops << ",\n"
       << "  \"acks_sent\": " << st.acks_sent << ",\n"
       << "  \"nacks_sent\": " << st.nacks_sent << ",\n"
       << "  \"duplicate_batches\": " << st.duplicate_batches << ",\n"
       << "  \"duplicate_frames\": " << st.duplicate_frames << ",\n"
       << "  \"heartbeats\": " << st.heartbeats << ",\n"
       << "  \"batch_gaps\": " << st.batch_gaps << ",\n"
       << "  \"fin_drains\": " << st.fin_drains << ",\n"
       << "  \"reaped_connections\": " << st.reaped_connections << ",\n"
       << "  \"http_requests\": " << st.http_requests << ",\n"
       << "  \"publishers\": " << st.publishers << ",\n"
       << "  \"frames_per_shard\": [";
  for (std::size_t s = 0; s < st.frames_per_shard.size(); ++s) {
    json << (s == 0 ? "" : ", ") << st.frames_per_shard[s];
  }
  json << "],\n"
       << "  \"fleet\": {\n"
       << "    \"frames\": " << view.frames() << ",\n"
       << "    \"decode_errors\": " << view.decode_errors() << ",\n"
       << "    \"missed\": " << view.missed() << ",\n"
       << "    \"stacks\": " << view.stacks().size() << ",\n"
       << "    \"alerts\": {";
  {
    bool first = true;
    for (const auto& [kind, count] : view.alerts_by_kind()) {
      json << (first ? "" : ", ") << '"' << telemetry::to_string(kind)
           << "\": " << count;
      first = false;
    }
  }
  json << "},\n"
       << "    \"latency_source\": \"" << view.latency_source() << "\",\n"
       << "    \"latency_aligned_samples\": " << view.latency_aligned()
       << ",\n"
       << "    \"digest\": " << view.digest() << "\n"
       << "  },\n"
       << "  \"slo\": " << obs::to_json(view.slo_status()) << ",\n"
       << "  \"per_stack\": [\n";
  {
    std::size_t i = 0;
    for (const auto& [stack_id, sv] : view.stacks()) {
      json << "    {\"stack\": " << stack_id << ", \"frames\": " << sv.frames
           << ", \"missed\": " << sv.missed << ", \"alerts\": " << sv.alerts
           << "}" << (++i < view.stacks().size() ? "," : "") << "\n";
    }
  }
  json << "  ],\n"
       << "  \"obs\": " << obs::metrics_json() << "\n}\n";
  std::cout << json.str();
  export_obs(args);
  // The same scriptable gate as `fleet`: nonzero when anything alerted or
  // failed to decode anywhere in the (possibly multi-publisher) fleet.
  return (view.decode_errors() == 0 && view.alerts() == 0) ? 0 : 1;
}

int cmd_publish(const Args& args) {
  args.check_known({"host", "port", "stacks", "threads", "scans", "sample-ms",
                    "ring", "grid", "seed", "card", "stack-base",
                    "batch-frames", "batch-bytes", "flush-ms", "queue",
                    "spill-dir", "publisher-id", "heartbeat-ms", "jitter",
                    "drain-s", "log-level", "metrics-out", "trace-out"});
  if (!args.has("port")) {
    std::fprintf(stderr, "tsvpt_cli publish: --port is required\n");
    return 2;
  }
  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = static_cast<std::size_t>(args.get("stacks", 8LL));
  cfg.thread_count = static_cast<std::size_t>(args.get("threads", 2LL));
  cfg.scans_per_stack = static_cast<std::size_t>(args.get("scans", 50LL));
  cfg.sample_period = Second{args.get("sample-ms", 1.0) * 1e-3};
  cfg.ring_capacity = static_cast<std::size_t>(args.get("ring", 1024LL));
  cfg.grid_columns = cfg.grid_rows =
      static_cast<std::size_t>(args.get("grid", 2LL));
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 1LL));
  cfg.stack_id_base =
      static_cast<std::uint32_t>(args.get("stack-base", 0LL));
  cfg.sensor.tech = technology_from(args);
  cfg.sensor.model_vdd = cfg.sensor.tech.vdd_nominal;

  ingest::FleetPublisher::Config pub_cfg;
  pub_cfg.host = args.get("host", std::string{"127.0.0.1"});
  pub_cfg.port = static_cast<std::uint16_t>(args.get("port", 0LL));
  pub_cfg.batch_max_frames =
      static_cast<std::size_t>(args.get("batch-frames", 64LL));
  pub_cfg.batch_max_bytes =
      static_cast<std::size_t>(args.get("batch-bytes", 262144LL));
  pub_cfg.flush_interval = Second{args.get("flush-ms", 5.0) * 1e-3};
  pub_cfg.queue_max_batches =
      static_cast<std::size_t>(args.get("queue", 64LL));
  // At-least-once knobs.  A spill dir makes the run crash-safe: sealed
  // batches hit the log before their first send, and a rerun on the same
  // dir (e.g. --scans 0 for a pure resume) retransmits the unacked window.
  pub_cfg.spill_dir = args.get("spill-dir", std::string{});
  pub_cfg.publisher_id =
      static_cast<std::uint64_t>(args.get("publisher-id", 0LL));
  pub_cfg.heartbeat_interval = Second{args.get("heartbeat-ms", 0.0) * 1e-3};
  pub_cfg.backoff_jitter = args.get("jitter", 0.5);
  pub_cfg.drain_deadline = Second{args.get("drain-s", 2.0)};

  // --scans 0: pure resume.  No sampler at all — construct the publisher on
  // its spill dir (replaying whatever a killed run left unacked), let the
  // sender thread retransmit, and run the FIN/drained handshake.  This is
  // how a supervisor finishes the job of a publisher that was SIGKILL'd.
  if (cfg.scans_per_stack == 0) {
    if (pub_cfg.spill_dir.empty()) {
      std::fprintf(stderr,
                   "tsvpt_cli publish: --scans 0 (resume-only) needs"
                   " --spill-dir\n");
      return 2;
    }
    ingest::FleetPublisher publisher{pub_cfg};
    publisher.start({});
    publisher.stop();
    const ingest::FleetPublisher::Stats st = publisher.stats();
    std::ostringstream json;
    json << "{\n"
         << "  \"resume_only\": true,\n"
         << "  \"publisher_id\": " << publisher.publisher_id() << ",\n"
         << "  \"acked_seq\": " << publisher.acked_seq() << ",\n"
         << "  \"resumed_batches\": " << st.resumed_batches << ",\n"
         << "  \"resumed_frames\": " << st.resumed_frames << ",\n"
         << "  \"retransmitted_batches\": " << st.retransmitted_batches
         << ",\n"
         << "  \"retransmitted_frames\": " << st.retransmitted_frames << ",\n"
         << "  \"acks_received\": " << st.acks_received << ",\n"
         << "  \"unacked_batches\": " << st.unacked_batches << ",\n"
         << "  \"fin_sent\": " << st.fin_sent << ",\n"
         << "  \"drained\": " << (st.drained ? "true" : "false") << ",\n"
         << "  \"connected\": " << (st.connected_once ? "true" : "false")
         << ",\n"
         << "  \"clock_offset_ns\": " << st.clock_offset_ns << ",\n"
         << "  \"clock_rtt_ns\": " << st.clock_rtt_ns << ",\n"
         << "  \"clock_samples\": " << st.clock_samples << ",\n"
         << "  \"obs\": " << obs::metrics_json() << "\n}\n";
    std::cout << json.str();
    export_obs(args);
    return (st.connected_once && st.drained) ? 0 : 1;
  }

  telemetry::FleetSampler sampler{cfg};
  ingest::FleetPublisher publisher{pub_cfg};
  publisher.start(sampler.rings());
  sampler.run();
  publisher.stop();

  const ingest::FleetPublisher::Stats st = publisher.stats();
  std::ostringstream json;
  json << "{\n"
       << "  \"stacks\": " << sampler.stack_count() << ",\n"
       << "  \"stack_base\": " << cfg.stack_id_base << ",\n"
       << "  \"frames_produced\": " << sampler.total_frames() << ",\n"
       << "  \"frames_ring_dropped\": " << sampler.total_dropped() << ",\n"
       << "  \"frames_enqueued\": " << st.frames_enqueued << ",\n"
       << "  \"frames_sent\": " << st.frames_sent << ",\n"
       << "  \"batches_sent\": " << st.batches_sent << ",\n"
       << "  \"bytes_sent\": " << st.bytes_sent << ",\n"
       << "  \"connects\": " << st.connects << ",\n"
       << "  \"reconnects\": " << st.reconnects << ",\n"
       << "  \"send_failures\": " << st.send_failures << ",\n"
       << "  \"queue_dropped_batches\": " << st.queue_dropped_batches << ",\n"
       << "  \"queue_dropped_frames\": " << st.queue_dropped_frames << ",\n"
       << "  \"publisher_id\": " << publisher.publisher_id() << ",\n"
       << "  \"acked_seq\": " << publisher.acked_seq() << ",\n"
       << "  \"acks_received\": " << st.acks_received << ",\n"
       << "  \"frames_acked\": " << st.frames_acked << ",\n"
       << "  \"batches_acked\": " << st.batches_acked << ",\n"
       << "  \"retransmitted_batches\": " << st.retransmitted_batches << ",\n"
       << "  \"retransmitted_frames\": " << st.retransmitted_frames << ",\n"
       << "  \"nacks_received\": " << st.nacks_received << ",\n"
       << "  \"heartbeats_sent\": " << st.heartbeats_sent << ",\n"
       << "  \"fin_sent\": " << st.fin_sent << ",\n"
       << "  \"spilled_batches\": " << st.spilled_batches << ",\n"
       << "  \"resumed_batches\": " << st.resumed_batches << ",\n"
       << "  \"resumed_frames\": " << st.resumed_frames << ",\n"
       << "  \"unacked_batches\": " << st.unacked_batches << ",\n"
       << "  \"drained\": " << (st.drained ? "true" : "false") << ",\n"
       << "  \"connected\": " << (st.connected_once ? "true" : "false")
       << ",\n"
       << "  \"clock_offset_ns\": " << st.clock_offset_ns << ",\n"
       << "  \"clock_rtt_ns\": " << st.clock_rtt_ns << ",\n"
       << "  \"clock_samples\": " << st.clock_samples << ",\n"
       << "  \"obs\": " << obs::metrics_json() << "\n}\n";
  std::cout << json.str();
  export_obs(args);
  // Clean publish, two delivery regimes:
  //   - best-effort (no spill dir): the server was reachable and nothing
  //     was shed anywhere on the way out (ring, queue, wire).
  //   - at-least-once (spill dir): the FIN handshake completed — every
  //     batch that ever entered the log (this run or a resumed one) is
  //     covered by the server's cumulative ack — and the sampler-side ring
  //     shed nothing.  frames_sent == frames_enqueued is the wrong gate
  //     here: a resumed window is retransmitted, not "sent".
  if (!pub_cfg.spill_dir.empty()) {
    return (st.connected_once && st.drained && sampler.total_dropped() == 0 &&
            st.queue_dropped_frames == 0)
               ? 0
               : 1;
  }
  return (st.connected_once && st.frames_sent == st.frames_enqueued &&
          st.frames_enqueued == sampler.total_frames())
             ? 0
             : 1;
}

void print_ids(std::ostringstream& json, const std::vector<std::uint32_t>& ids) {
  json << "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    json << (i == 0 ? "" : ", ") << ids[i];
  }
  json << "]";
}

store::StoreReader::Query query_from(const Args& args) {
  store::StoreReader::Query query;
  if (args.has("t-min")) query.t_min = args.get("t-min", 0.0);
  if (args.has("t-max")) query.t_max = args.get("t-max", 0.0);
  if (args.has("stack")) {
    query.stack_ids.push_back(
        static_cast<std::uint32_t>(args.get("stack", 0LL)));
  }
  if (args.has("site")) {
    query.site_ids.push_back(
        static_cast<std::size_t>(args.get("site", 0LL)));
  }
  return query;
}

int cmd_store_info(const std::string& dir) {
  const store::StoreReader reader{dir};
  const store::StoreStats stats = reader.stats();
  const std::uint64_t corrupt = reader.verify();
  std::ostringstream json;
  json << "{\n"
       << "  \"dir\": \"" << dir << "\",\n"
       << "  \"segments\": " << stats.segments << ",\n"
       << "  \"blocks\": " << stats.blocks << ",\n"
       << "  \"frames\": " << stats.frames << ",\n"
       << "  \"bytes_on_disk\": " << stats.bytes_on_disk << ",\n"
       << "  \"bytes_raw\": " << stats.bytes_raw << ",\n"
       << "  \"compression_ratio\": " << stats.compression_ratio() << ",\n"
       << "  \"torn_tails\": " << stats.torn_tail_recoveries << ",\n"
       << "  \"corrupt_blocks\": " << corrupt << ",\n"
       << "  \"t_min\": " << stats.t_min << ",\n"
       << "  \"t_max\": " << stats.t_max << ",\n"
       << "  \"stack_ids\": ";
  print_ids(json, stats.stack_ids);
  json << ",\n  \"segment_files\": [\n";
  const auto& segments = reader.segments();
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& s = segments[i];
    json << "    {\"path\": \"" << s.path << "\", \"blocks\": "
         << s.blocks.size() << ", \"frames\": " << s.frames()
         << ", \"valid_bytes\": " << s.valid_bytes
         << ", \"torn_tail\": " << (s.torn_tail() ? "true" : "false") << "}"
         << (i + 1 < segments.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << json.str();
  // Scriptable integrity gate: nonzero on any corrupt block, so `store
  // info` doubles as the post-crash soak check.
  return corrupt == 0 ? 0 : 1;
}

int cmd_store_query(const Args& args, const std::string& dir) {
  const store::StoreReader reader{dir};
  const auto limit = static_cast<std::size_t>(args.get("limit", 20LL));
  auto cursor = reader.scan(query_from(args));
  telemetry::Frame frame;
  std::size_t printed = 0;
  std::uint64_t matched = 0;
  while (cursor.next(frame)) {
    matched += 1;
    if (printed >= limit) continue;  // keep counting for the summary line
    printed += 1;
    double max_sensed = 0.0;
    for (const auto& r : frame.readings) {
      max_sensed = std::max(max_sensed, r.sensed.value());
    }
    std::printf(
        "{\"stack\": %u, \"sequence\": %llu, \"sim_time\": %.6f, "
        "\"sites\": %zu, \"max_sensed_c\": %.3f}\n",
        frame.stack_id, static_cast<unsigned long long>(frame.sequence),
        frame.sim_time.value(), frame.readings.size(), max_sensed);
  }
  std::fprintf(stderr, "%llu frames matched, %zu printed, %llu corrupt blocks\n",
               static_cast<unsigned long long>(matched), printed,
               static_cast<unsigned long long>(cursor.corrupt_blocks()));
  return cursor.corrupt_blocks() == 0 ? 0 : 1;
}

int cmd_store_replay(const Args& args, const std::string& dir) {
  const store::StoreReader reader{dir};
  telemetry::Aggregator::Config agg_cfg;
  agg_cfg.alert_threshold = Celsius{args.get("alert-c", 85.0)};
  agg_cfg.spatial_check = args.get("spatial", 1LL) != 0;
  std::vector<telemetry::Alert> alert_log;
  telemetry::Aggregator aggregator{
      agg_cfg, [&](const telemetry::Alert& a) { alert_log.push_back(a); }};
  const auto result = reader.replay(query_from(args), aggregator);
  const telemetry::Aggregator::Summary& sum = aggregator.summary();
  // The replayed run folded into a canonical FleetView: `store replay` on a
  // serve --store directory must digest-equal the serve report's fleet view
  // (the store holds exactly the frames the server emitted post-dedup) —
  // the offline half of the kill-and-resume zero-loss gate.
  ingest::FleetView view;
  view.add_shard(sum, alert_log);
  view.finalize();
  std::ostringstream json;
  json << "{\n"
       << "  \"frames_replayed\": " << result.frames_replayed << ",\n"
       << "  \"corrupt_blocks\": " << result.corrupt_blocks << ",\n"
       << "  \"decode_errors\": " << sum.decode_errors << ",\n"
       << "  \"missed\": " << view.missed() << ",\n"
       << "  \"digest\": " << view.digest() << ",\n"
       << "  \"alerts\": {";
  bool first = true;
  for (const auto& [kind, count] : sum.alerts_by_kind) {
    json << (first ? "" : ", ") << '"' << telemetry::to_string(kind)
         << "\": " << count;
    first = false;
  }
  json << "},\n  \"health_transitions\": " << sum.health_transitions.size()
       << ",\n  \"substituted_readings\": " << sum.substituted_readings
       << "\n}\n";
  std::cout << json.str();
  // Stored frames are pristine wire images: any decode error on replay
  // means the store (not the run) is damaged.
  return (result.corrupt_blocks == 0 && sum.decode_errors == 0) ? 0 : 1;
}

int cmd_store_compact(const Args& args, const std::string& dir) {
  store::Retention retention;
  retention.max_bytes = static_cast<std::uint64_t>(args.get("max-bytes", 0LL));
  retention.max_age = Second{args.get("max-age-s", 0.0)};
  const store::CompactionReport report = store::compact_store(dir, retention);
  std::printf(
      "{\"segments_removed\": %zu, \"segments_rewritten\": %zu, "
      "\"blocks_dropped\": %zu, \"frames_dropped\": %llu, "
      "\"bytes_before\": %llu, \"bytes_after\": %llu}\n",
      report.segments_removed, report.segments_rewritten,
      report.blocks_dropped,
      static_cast<unsigned long long>(report.frames_dropped),
      static_cast<unsigned long long>(report.bytes_before),
      static_cast<unsigned long long>(report.bytes_after));
  return 0;
}

int cmd_store(const Args& args) {
  args.check_known({"dir", "t-min", "t-max", "stack", "site", "limit",
                    "alert-c", "spatial", "max-bytes", "max-age-s",
                    "log-level"});
  if (args.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: tsvpt_cli store <info|query|replay|compact> "
                 "--dir DIR [flags]\n");
    return 2;
  }
  const std::string sub = args.positionals().front();
  const std::string dir = args.get("dir", std::string{});
  if (dir.empty()) {
    std::fprintf(stderr, "tsvpt_cli store %s: --dir is required\n",
                 sub.c_str());
    return 2;
  }
  if (sub == "info") return cmd_store_info(dir);
  if (sub == "query") return cmd_store_query(args, dir);
  if (sub == "replay") return cmd_store_replay(args, dir);
  if (sub == "compact") return cmd_store_compact(args, dir);
  std::fprintf(stderr, "tsvpt_cli store: unknown subcommand '%s'\n",
               sub.c_str());
  return 2;
}

int cmd_obs_scrape(const Args& args) {
  args.check_known({"host", "port", "path", "log-level"});
  if (!args.has("port")) {
    std::fprintf(stderr, "tsvpt_cli obs scrape: --port is required\n");
    return 2;
  }
  const std::string host = args.get("host", std::string{"127.0.0.1"});
  const auto port = static_cast<std::uint16_t>(args.get("port", 0LL));
  const std::string path = args.get("path", std::string{"/metrics"});
  net::Socket sock = net::tcp_connect(host, port);
  if (!sock.valid()) {
    std::fprintf(stderr, "tsvpt_cli obs scrape: cannot connect to %s:%u\n",
                 host.c_str(), port);
    return 1;
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!net::send_all(sock,
                     reinterpret_cast<const std::uint8_t*>(request.data()),
                     request.size())) {
    std::fprintf(stderr, "tsvpt_cli obs scrape: send failed\n");
    return 1;
  }
  // HTTP/1.0 responses are close-delimited: read until the server hangs up.
  std::string response;
  std::uint8_t buf[4096];
  for (;;) {
    const net::IoResult r = net::recv_some(sock, buf, sizeof buf);
    if (r.status != net::IoStatus::kOk) break;
    response.append(reinterpret_cast<const char*>(buf), r.bytes);
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  if (response.rfind("HTTP/1.", 0) != 0 ||
      header_end == std::string::npos) {
    std::fprintf(stderr, "tsvpt_cli obs scrape: malformed response\n");
    return 1;
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  std::cout << response.substr(header_end + 4);
  if (status_line.find(" 200 ") == std::string::npos) {
    std::fprintf(stderr, "tsvpt_cli obs scrape: %s\n", status_line.c_str());
    return 1;
  }
  return 0;
}

int cmd_obs_merge(const Args& args) {
  args.check_known({"out", "log-level"});
  const auto& inputs = args.positionals();
  if (inputs.size() < 2) {  // front() is "merge-trace"
    std::fprintf(stderr,
                 "usage: tsvpt_cli obs merge-trace [--out FILE]"
                 " FILE[:offset_ns[:label]] ...\n");
    return 2;
  }
  obs::TraceMerge merge;
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    // FILE[:offset_ns[:label]] — offset in nanoseconds, added to every
    // event timestamp of that input (obs::ClockAlign's estimate, so all
    // processes land on the ingest server's clock).
    const std::string& spec = inputs[i];
    std::string file = spec;
    std::int64_t offset_ns = 0;
    std::string label;
    const std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      file = spec.substr(0, colon);
      std::string rest = spec.substr(colon + 1);
      const std::size_t colon2 = rest.find(':');
      if (colon2 != std::string::npos) {
        label = rest.substr(colon2 + 1);
        rest = rest.substr(0, colon2);
      }
      offset_ns = std::strtoll(rest.c_str(), nullptr, 10);
    }
    std::ifstream in{file};
    if (!in) {
      std::fprintf(stderr, "tsvpt_cli obs merge-trace: cannot read %s\n",
                   file.c_str());
      return 1;
    }
    std::ostringstream content;
    content << in.rdbuf();
    merge.add(content.str(), offset_ns,
              label.empty() ? file : label);
  }
  const obs::TraceMerge::Result merged = merge.merge();
  const std::string out_path = args.get("out", std::string{});
  if (out_path.empty()) {
    std::cout << merged.json;
  } else {
    std::ofstream out{out_path};
    out << merged.json;
    if (!out) {
      std::fprintf(stderr, "tsvpt_cli obs merge-trace: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "tsvpt_cli obs merge-trace: %zu events from %zu"
               " inputs (",
               merged.total_events, merged.events_per_input.size());
  for (std::size_t i = 0; i < merged.events_per_input.size(); ++i) {
    std::fprintf(stderr, "%s%zu", i == 0 ? "" : ", ",
                 merged.events_per_input[i]);
  }
  std::fprintf(stderr, ")\n");
  return 0;
}

int cmd_obs(const Args& args) {
  const std::string sub =
      args.positionals().empty() ? std::string{} : args.positionals().front();
  if (sub == "scrape") return cmd_obs_scrape(args);
  if (sub == "merge-trace") return cmd_obs_merge(args);
  if (sub != "dump") {
    std::fprintf(stderr,
                 "usage: tsvpt_cli obs dump [--format prom|json]"
                 " [--metrics-out FILE] [--trace-out FILE]"
                 " [--exercise 1 [--stacks N] [--scans N]]\n"
                 "       tsvpt_cli obs scrape --port N [--host H]"
                 " [--path /metrics|/healthz]\n"
                 "       tsvpt_cli obs merge-trace [--out FILE]"
                 " FILE[:offset_ns[:label]] ...\n");
    return 2;
  }
  args.check_known({"format", "metrics-out", "trace-out", "exercise",
                    "stacks", "scans", "log-level"});
  if (args.has("exercise")) {
    // A mini supervised fleet run so the dump holds live numbers — the
    // quickest way to see the full metric inventory and a real trace.
    telemetry::FleetSampler::Config cfg;
    cfg.stack_count = static_cast<std::size_t>(args.get("stacks", 2LL));
    cfg.thread_count = 2;
    cfg.scans_per_stack = static_cast<std::size_t>(args.get("scans", 20LL));
    cfg.sample_period = Second{1e-3};
    cfg.ring_capacity = 64;
    cfg.grid_columns = cfg.grid_rows = 1;
    cfg.seed = 1;
    cfg.sensor.tech = device::Technology::tsmc65_like();
    cfg.sensor.model_vdd = cfg.sensor.tech.vdd_nominal;
    telemetry::FleetSampler sampler{cfg};
    telemetry::Aggregator aggregator{{}};
    aggregator.start(sampler.rings());
    sampler.run();
    aggregator.stop();
  }
  const std::string format = args.get("format", std::string{"prom"});
  if (format == "prom") {
    std::cout << obs::metrics_prometheus();
  } else if (format == "json") {
    std::cout << obs::metrics_json() << "\n";
  } else {
    std::fprintf(stderr, "tsvpt_cli obs: unknown --format '%s'\n",
                 format.c_str());
    return 2;
  }
  export_obs(args);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: tsvpt_cli"
               " <tech|sense|mc|trace|fleet|chaos|control|serve|publish|"
               "store|obs>"
               " [flags]\n"
               "  tech   [--card FILE]\n"
               "  sense  --t DEGC [--dvtn-mv MV] [--dvtp-mv MV] [--seed N]"
               " [--card FILE] [--compensate 1]\n"
               "  mc     [--dies N] [--seed N] [--card FILE]\n"
               "  trace  [--trace FILE] [--sample-ms MS] [--duration-ms MS]"
               " [--seed N]\n"
               "  fleet  [--stacks N] [--threads N] [--scans N]"
               " [--sample-ms MS] [--ring N] [--grid N] [--alert-c DEGC]"
               " [--seed N] [--card FILE]\n"
               "         (exit 0 only when no alert fired and every frame"
               " decoded)\n"
               "  chaos  [--stacks N] [--threads N] [--scans N]"
               " [--sample-ms MS] [--ring N] [--grid N] [--events-per-kind N]"
               " [--watchdog-ms MS] [--seed N] [--card FILE] [--store DIR]\n"
               "  control [--policy static|dvfs|gating|migration]"
               " [--stacks N] [--threads N] [--scans N] [--sample-ms MS]"
               " [--ring N] [--grid N]\n"
               "          [--seed N] [--peak-w W] [--ceiling-c DEGC]"
               " [--floor-c DEGC] [--violation-c DEGC] [--chaos N]"
               " [--card FILE]\n"
               "         controller-in-the-loop fleet: every stack runs the"
               " chosen DTM policy; --chaos N injects N sensor faults per"
               " kind;\n"
               "         prints a JSON report (energy, peak, violation"
               " seconds, actuation counters); exit 0 only with zero"
               " violation-seconds\n"
               "  serve  [--port N] [--shards N] [--ring N] [--alert-c DEGC]"
               " [--store DIR] [--duration-s S] [--idle-exit-s S]"
               " [--idle-conn-s S]\n"
               "         sharded TCP ingest server with per-publisher"
               " ack/dedup; prints the merged fleet view (exit 0 only when"
               " clean); --idle-conn-s reaps silent connections\n"
               "  publish --port N [--host H] [--stacks N] [--threads N]"
               " [--scans N] [--stack-base N] [--batch-frames N]"
               " [--flush-ms MS] [--queue N] [--seed N]\n"
               "          [--spill-dir DIR] [--publisher-id N]"
               " [--heartbeat-ms MS] [--jitter X] [--drain-s S]\n"
               "         sample a fleet and stream it to a serve instance;"
               " --spill-dir makes delivery at-least-once and crash-safe\n"
               "         (rerun on the same dir, e.g. with --scans 0, to"
               " resume a killed run; exit 0 = drained, else = all sent)\n"
               "  store  <info|query|replay|compact> --dir DIR\n"
               "         info                   print stats + integrity"
               " (exit 1 on corrupt blocks)\n"
               "         query   [--t-min S] [--t-max S] [--stack N]"
               " [--site N] [--limit N]\n"
               "         replay  [--t-min S] [--t-max S] [--stack N]"
               " [--alert-c DEGC] [--spatial 0|1]"
               " (prints the replayed fleet-view digest)\n"
               "         compact [--max-bytes N] [--max-age-s S]\n"
               "  obs    dump [--format prom|json] [--metrics-out FILE]"
               " [--trace-out FILE] [--exercise 1]\n"
               "         print the self-observability metric registry"
               " (--exercise runs a mini fleet first)\n"
               "  obs    scrape --port N [--host H]"
               " [--path /metrics|/healthz]\n"
               "         fetch a serve --http-port endpoint (exit 0 only on"
               " a 200)\n"
               "  obs    merge-trace [--out FILE]"
               " FILE[:offset_ns[:label]] ...\n"
               "         stitch per-process Chrome traces onto one clock"
               " (one pid lane per input)\n"
               "  serve also takes [--http-port N] (live /metrics +"
               " /healthz; 0 = ephemeral)\n"
               "  fleet also takes [--store DIR] [--summary-interval S]\n"
               "  fleet and chaos also take [--metrics-out FILE]"
               " [--trace-out FILE] (metrics format by extension:"
               " .json -> JSON, else Prometheus text)\n"
               "  every command takes [--log-level debug|info|warn|error]"
               " (default warn, or the TSVPT_LOG environment variable)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args{argc - 2, argv + 2};
    apply_log_level(args);
    if (command == "tech") return cmd_tech(args);
    if (command == "sense") return cmd_sense(args);
    if (command == "mc") return cmd_mc(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "chaos") return cmd_chaos(args);
    if (command == "control") return cmd_control(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "publish") return cmd_publish(args);
    if (command == "store") return cmd_store(args);
    if (command == "obs") return cmd_obs(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tsvpt_cli: %s\n", e.what());
    return 1;
  }
  return usage();
}
