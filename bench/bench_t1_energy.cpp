// T1 [R]: Conversion-energy table — the per-component breakdown of one full
// self-calibrating conversion (paper headline: 367.5 pJ/conversion) and one
// tracking conversion, plus the energy/resolution trade against the count
// window.  Absolute numbers are calibrated to the headline (the fixed
// digital cost is the one fitted parameter — see EXPERIMENTS.md); the
// *scaling* with window length is model-driven.
#include <iostream>

#include "bench_util.hpp"
#include "circuit/energy.hpp"
#include "core/pt_sensor.hpp"

using namespace tsvpt;

namespace {

/// Run one noise-free full conversion at 25 degC and capture the breakdown
/// by replaying the same measurement sequence through the energy model.
circuit::ConversionEnergyBreakdown breakdown_at_default(
    const core::PtSensor::Config& cfg) {
  core::PtSensor sensor{cfg, 42};
  circuit::FrequencyCounter counter{cfg.counter};
  circuit::ConversionEnergyModel energy{cfg.energy};
  energy.reset();
  const Kelvin t = to_kelvin(Celsius{25.0});
  for (core::RoRole role :
       {core::RoRole::kPsroN, core::RoRole::kPsroP, core::RoRole::kTdro}) {
    const Hertz f = sensor.model_frequency(role, Volt{0.0}, Volt{0.0}, t);
    const auto reading = counter.measure(f, nullptr);
    const auto ro = circuit::RingOscillator::make(
        cfg.tech,
        role == core::RoRole::kTdro ? circuit::RoTopology::kThermal
        : role == core::RoRole::kPsroN ? circuit::RoTopology::kNmosSensitive
                                       : circuit::RoTopology::kPmosSensitive,
        role == core::RoRole::kTdro ? cfg.tdro_stages : cfg.psro_stages);
    energy.add_oscillator_window(ro.energy_per_cycle(cfg.model_vdd),
                                 reading.count, counter.nominal_window());
  }
  return energy.finish();
}

}  // namespace

int main() {
  bench::banner("T1", "energy per conversion: breakdown and window scaling");
  const core::PtSensor::Config cfg;

  const circuit::ConversionEnergyBreakdown b = breakdown_at_default(cfg);
  Table breakdown{"T1 full-conversion energy breakdown @ 25 degC (pJ)"};
  breakdown.add_column("component");
  breakdown.add_column("energy_pJ", 2);
  breakdown.add_column("share_%", 1);
  const double total = b.total().value();
  auto row = [&](const std::string& name, Joule e) {
    breakdown.add_row({name, e.value() * 1e12, 100.0 * e.value() / total});
  };
  row("oscillator dynamic", b.oscillators);
  row("counter switching", b.counters);
  row("control/decoupling (fixed)", b.control);
  row("bias static", b.bias);
  row("TOTAL", b.total());
  bench::emit(breakdown, "t1_breakdown");
  std::cout << "Paper headline: 367.5 pJ/conversion.  Measured total: "
            << total * 1e12 << " pJ.\n\n";

  Table sweep{"T1 energy & resolution vs count window"};
  sweep.add_column("window_us", 2);
  sweep.add_column("cal_pJ", 1);
  sweep.add_column("track_pJ", 1);
  sweep.add_column("T_LSB_mdegC", 1);
  sweep.add_column("rate_kSps", 1);
  for (double window_us : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    core::PtSensor::Config c = cfg;
    c.counter.window = Second{window_us * 1e-6};
    core::PtSensor sensor{c, 42};
    const double cal_pj = sensor.calibration_energy().value() * 1e12;
    const double track_pj = sensor.tracking_energy().value() * 1e12;
    // Temperature LSB: one count at the TDRO frequency, mapped through the
    // TDRO tempco at 25 degC.
    const Kelvin t = to_kelvin(Celsius{25.0});
    const double f = sensor.model_frequency(core::RoRole::kTdro, Volt{0.0},
                                            Volt{0.0}, t)
                         .value();
    const double f_hi = sensor.model_frequency(core::RoRole::kTdro, Volt{0.0},
                                               Volt{0.0}, t + Kelvin{1.0})
                            .value();
    const double hz_per_k = f_hi - f;
    const double lsb_hz = 1.0 / (window_us * 1e-6);
    sweep.add_row({window_us, cal_pj, track_pj,
                   1000.0 * lsb_hz / hz_per_k,
                   1e-3 / (window_us * 1e-6)});
  }
  bench::emit(sweep, "t1_window_sweep");

  std::cout << "Shape check: oscillator+counter energy scales ~linearly with "
               "the window while\nresolution (LSB) improves as 1/window; the "
               "fixed digital cost dominates at short\nwindows — the classic "
               "energy/resolution knee.\n";
  return 0;
}
