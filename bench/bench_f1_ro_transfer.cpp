// F1 [R]: Ring-oscillator transfer curves — frequency vs temperature for
// each oscillator flavour at every process corner.  Reproduces the standard
// "RO characterization" figure of RO-sensor papers: the TDRO must rise
// steeply and monotonically with temperature while the standard RO droops
// slightly; corners separate the curves vertically.
#include <iostream>

#include "bench_util.hpp"
#include "circuit/ring_oscillator.hpp"
#include "device/tech.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("F1", "RO transfer curves: f(T) per topology per corner");
  const device::Technology tech = device::Technology::tsmc65_like();

  for (circuit::RoTopology topo :
       {circuit::RoTopology::kStandard, circuit::RoTopology::kNmosSensitive,
        circuit::RoTopology::kPmosSensitive, circuit::RoTopology::kThermal}) {
    const circuit::RingOscillator ro = circuit::RingOscillator::make(tech, topo);
    Table table{std::string{"F1 "} + circuit::to_string(topo) +
                " frequency (MHz) vs temperature"};
    table.add_column("T_degC", 1);
    for (device::Corner corner : device::all_corners()) {
      table.add_column(device::to_string(corner), 3);
    }
    std::vector<double> t_axis;
    std::vector<double> f_tt;
    for (double t = -20.0; t <= 120.0 + 1e-9; t += 10.0) {
      std::vector<Cell> row{t};
      for (device::Corner corner : device::all_corners()) {
        const device::CornerShift shift = tech.corner_shift(corner);
        circuit::OperatingPoint op;
        op.vdd = tech.vdd_nominal;
        op.temperature = to_kelvin(Celsius{t});
        op.vt_delta = {shift.nmos, shift.pmos};
        const double f_mhz = ro.frequency(op).value() / 1e6;
        row.push_back(f_mhz);
        if (corner == device::Corner::kTT) {
          t_axis.push_back(t);
          f_tt.push_back(f_mhz);
        }
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, std::string{"f1_"} + circuit::to_string(topo));

    const LineFit fit = fit_line(t_axis, f_tt);
    std::cout << "  TT tempco: " << fit.slope << " MHz/degC ("
              << 100.0 * fit.slope / f_tt[t_axis.size() / 2]
              << " %/degC at mid-range), linearity R^2 = " << fit.r_squared
              << "\n\n";
  }

  std::cout << "Shape check: TDRO rises monotonically with T (positive "
               "tempco);\nSTDRO falls slowly (mobility-limited); corner "
               "curves separate (FF fastest, SS slowest).\n";
  return 0;
}
