// A14 [R]: fleet telemetry throughput and end-to-end latency.
//
// The production question behind the telemetry subsystem: how many stacks
// can one host monitor, and how does sampling scale with worker threads?
// Each row runs the same deterministic fleet (16 stacks x 24 scans, 16
// sensors each) on a different pool size while the aggregator drains
// concurrently, and reports wall time, frames/s, sites/s, speedup over one
// thread, ring drops, and collector-side capture-to-decode latency.
//
// Scaling expectation: stacks are independent (no shared mutable state), so
// frames/s should scale near-linearly until workers exceed physical cores;
// on an 8-core host 8 threads should clear 3x over 1 thread.  On fewer
// cores the speedup column saturates accordingly (the row count is still
// printed so CI on small runners stays meaningful).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "ptsim/table.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

int main(int argc, char** argv) {
  using namespace tsvpt;
  const std::string json_dir = bench::json_out_dir(argc, argv);

  bench::banner("A14", "fleet telemetry throughput vs worker threads");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  Table table{"16 stacks x 24 scans, 2x2 sites/die (64 sites/stack)"};
  table.add_column("threads", 0);
  table.add_column("wall s", 3);
  table.add_column("frames/s", 1);
  table.add_column("sites/s", 0);
  table.add_column("speedup", 2);
  table.add_column("drops", 0);
  table.add_column("lat p50 us", 1);
  table.add_column("lat p95 us", 1);

  double base_elapsed = 0.0;
  double best_frames_s = 0.0;
  double best_speedup = 0.0;
  std::uint64_t total_drops = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    telemetry::FleetSampler::Config cfg;
    cfg.stack_count = 16;
    cfg.thread_count = threads;
    cfg.scans_per_stack = 24;
    cfg.ring_capacity = 512;
    cfg.seed = 7;

    telemetry::FleetSampler sampler{cfg};
    telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
    aggregator.start(sampler.rings());
    sampler.run();
    aggregator.stop();

    const auto& sum = aggregator.summary();
    const double elapsed = sampler.elapsed().value();
    if (threads == 1) base_elapsed = elapsed;
    const auto frames = static_cast<double>(sampler.total_frames());
    const double sites_per_frame = 4.0 * 2.0 * 2.0;
    best_frames_s = std::max(best_frames_s, frames / elapsed);
    best_speedup = std::max(best_speedup, base_elapsed / elapsed);
    total_drops += sampler.total_dropped();
    table.add_row({static_cast<double>(threads), elapsed, frames / elapsed,
                   frames * sites_per_frame / elapsed,
                   base_elapsed / elapsed,
                   static_cast<double>(sampler.total_dropped()),
                   sum.latency.empty() ? 0.0 : sum.latency.quantile(0.5) * 1e6,
                   sum.latency.empty() ? 0.0
                                       : sum.latency.quantile(0.95) * 1e6});
  }
  bench::emit(table, "a14_fleet_throughput");
  bench::emit_json(
      json_dir, "a14_fleet_throughput",
      {{"frames_per_second", best_frames_s, "frames/s", 0.0, true},
       {"speedup", best_speedup, "ratio", 0.0, true},
       {"ring_drops", static_cast<double>(total_drops), "frames", 0.0,
        true}});
  return 0;
}
