// A19 [R]: at-least-once ingest — kill-resume exactness and clean-path cost.
//
// PR 7's delivery upgrade makes two claims this bench gates:
//
//  1. Exactness under crashes: a publisher streaming through its crash-safe
//     spill queue can be "SIGKILL'd" mid-stream (modelled as destruction
//     with every server ack chaos-dropped, so nothing was ever retired from
//     the spill log) and restarted against the same spill directory — and
//     the server's merged FleetView still digest-equals the single-process
//     Aggregator baseline, with zero frame loss and zero double counting
//     (every retransmitted batch vetoed by per-publisher dedup).  The kill
//     row additionally runs under transport chaos (connection drop, send
//     stall, duplicated batch) so the retransmit path is exercised, not
//     just the happy replay.
//
//  2. Bounded clean-path cost: with no faults, the at-least-once machinery
//     (sequence numbers, ack round-trips, spill WAL appends) stays within
//     10% of the best-effort v1 path's wire throughput.  Both rows push the
//     identical corpus through the identical server; only the publisher's
//     delivery mode differs.
//
// Frames are pre-encoded once per stack and re-stamped per scan (the A18
// corpus machinery), so rows measure transport + delivery bookkeeping, not
// readout simulation.
//
// --smoke shrinks the corpus for the CI gate (digest equality + zero loss
// on every row); full mode additionally enforces the <10% clean-path
// regression bound, which is too noisy to gate on shared CI runners.
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ingest/fleet_view.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "obs/metrics.hpp"
#include "ptsim/table.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/codec_util.hpp"
#include "telemetry/frame.hpp"

namespace {

using namespace tsvpt;

// Header offsets from the v2 frame wire layout (frame.hpp): the fields a
// re-stamped scan changes, plus the trailing CRC.
constexpr std::size_t kSequenceOffset = 16;
constexpr std::size_t kSimTimeOffset = 24;

void poke_u64(std::vector<std::uint8_t>& buf, std::size_t at,
              std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void restamp(std::vector<std::uint8_t>& buf, std::uint64_t sequence,
             double sim_time) {
  poke_u64(buf, kSequenceOffset, sequence);
  poke_u64(buf, kSimTimeOffset, std::bit_cast<std::uint64_t>(sim_time));
  const std::uint32_t crc =
      telemetry::crc32(buf.data(), buf.size() - sizeof(std::uint32_t));
  const std::size_t at = buf.size() - sizeof(std::uint32_t);
  buf[at] = static_cast<std::uint8_t>(crc);
  buf[at + 1] = static_cast<std::uint8_t>(crc >> 8);
  buf[at + 2] = static_cast<std::uint8_t>(crc >> 16);
  buf[at + 3] = static_cast<std::uint8_t>(crc >> 24);
}

std::vector<std::uint8_t> make_template(std::uint32_t stack,
                                        std::size_t sites) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.readings.resize(sites);
  const bool hot = stack % 13 == 3;  // some alert traffic in the digest
  for (std::size_t i = 0; i < sites; ++i) {
    auto& r = frame.readings[i];
    r.site_index = i;
    r.die = i / ((sites + 3) / 4);
    r.location = {static_cast<double>(i % 16) * 0.1,
                  static_cast<double>(i / 16) * 0.1};
    const double base = hot ? 86.5 : 45.0;
    r.sensed = Celsius{base + static_cast<double>(stack % 9) +
                       0.05 * static_cast<double>(i % 16)};
    r.truth = Celsius{r.sensed.value() - 0.3};
    r.energy = Joule{1.5e-9};
  }
  return telemetry::encode(frame);
}

/// The full corpus as independent wire frames, scan-major (the order every
/// row and the baseline ingest in).
std::vector<std::vector<std::uint8_t>> build_corpus(std::size_t stacks,
                                                    std::size_t sites,
                                                    std::size_t scans) {
  std::vector<std::vector<std::uint8_t>> templates;
  templates.reserve(stacks);
  for (std::uint32_t s = 0; s < stacks; ++s) {
    templates.push_back(make_template(s, sites));
  }
  std::vector<std::vector<std::uint8_t>> wire;
  wire.reserve(stacks * scans);
  for (std::size_t scan = 0; scan < scans; ++scan) {
    for (auto& tmpl : templates) {
      restamp(tmpl, scan, 1e-3 * static_cast<double>(scan));
      wire.push_back(tmpl);
    }
  }
  return wire;
}

telemetry::Aggregator::Config agg_config() {
  telemetry::Aggregator::Config cfg;
  cfg.spatial_check = false;  // O(sites^2) detector out of the hot path
  return cfg;
}

ingest::FleetView baseline_view(
    const std::vector<std::vector<std::uint8_t>>& wire) {
  std::vector<telemetry::Alert> alerts;
  telemetry::Aggregator agg(
      agg_config(),
      [&](const telemetry::Alert& alert) { alerts.push_back(alert); });
  for (const auto& frame : wire) agg.ingest(frame);
  ingest::FleetView view;
  view.add_shard(agg.summary(), alerts);
  view.finalize();
  return view;
}

std::filesystem::path fresh_spill_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "tsvpt_a19" / name;
  std::filesystem::remove_all(dir);
  return dir;
}

struct RowResult {
  double seconds = 0.0;
  std::uint64_t server_frames = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t retransmitted_frames = 0;
  std::uint64_t missed = 0;
  bool digest_ok = false;
};

void pump_all(ingest::FleetPublisher& pub) {
  for (int i = 0; i < 60'000 && !pub.pump(); ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// Clean path: every frame through one publisher, FIN-drained.  `spill_dir`
/// empty = best-effort v1 mode; set = the full at-least-once machinery.
RowResult run_clean(const std::vector<std::vector<std::uint8_t>>& wire,
                    std::uint32_t baseline_digest,
                    const std::string& spill_dir) {
  ingest::IngestServer::Config server_cfg;
  server_cfg.shard_count = 2;
  server_cfg.shard_ring_capacity = 1 << 16;
  server_cfg.aggregator = agg_config();
  ingest::IngestServer server(server_cfg);
  server.start();

  ingest::FleetPublisher::Config pub_cfg;
  pub_cfg.port = server.port();
  pub_cfg.batch_max_frames = 64;
  pub_cfg.batch_max_bytes = std::size_t{4} << 20;
  pub_cfg.queue_max_batches = 1 << 16;  // never shed: exactness bar
  pub_cfg.spill_dir = spill_dir;
  // SIGKILL-safety needs the batch in the page cache, not on the platter;
  // fsync cadence is a power-loss knob, so the throughput row leaves it off
  // (the kill-resume row keeps the default).
  pub_cfg.spill.fsync_every_batches = 0;

  RowResult row;
  const auto t0 = std::chrono::steady_clock::now();
  {
    ingest::FleetPublisher pub(pub_cfg);
    for (const auto& frame : wire) pub.offer(frame);
    pub.flush();
    pump_all(pub);
    (void)pub.drain(Second{30.0});
    row.retransmitted_frames = pub.stats().retransmitted_frames;
  }
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  const auto stats = server.stats();
  row.server_frames = stats.frames;
  row.duplicate_frames = stats.duplicate_frames;
  const ingest::FleetView view = server.fleet_view();
  row.missed = view.missed();
  row.digest_ok = view.digest() == baseline_digest && view.missed() == 0 &&
                  stats.frames == wire.size() && stats.ring_drops == 0;
  return row;
}

/// Kill-resume under chaos: incarnation 1 streams the whole corpus with
/// every ack dropped (so its spill log retires nothing) while the transport
/// also drops the connection once, stalls sends, and duplicates a batch —
/// then dies without draining.  Incarnation 2 opens the same spill dir,
/// replays the entire unacked window and runs the FIN handshake.
RowResult run_kill_resume(const std::vector<std::vector<std::uint8_t>>& wire,
                          std::uint32_t baseline_digest) {
  const auto spill_dir = fresh_spill_dir("kill");

  ingest::IngestServer::Config server_cfg;
  server_cfg.shard_count = 2;
  server_cfg.shard_ring_capacity = 1 << 16;
  server_cfg.aggregator = agg_config();
  ingest::IngestServer server(server_cfg);
  server.start();

  ingest::FleetPublisher::Config pub_cfg;
  pub_cfg.port = server.port();
  pub_cfg.batch_max_frames = 64;
  pub_cfg.batch_max_bytes = std::size_t{4} << 20;
  pub_cfg.queue_max_batches = 1 << 16;
  pub_cfg.spill_dir = spill_dir.string();
  pub_cfg.backoff_initial = Second{0.0};

  inject::FaultPlan plan;
  // Windows are batch indexes.  Acks die for the whole run; the connection
  // is cut after batch 3; batch 5 stalls briefly; batch 7 is sent twice.
  plan.add({inject::FaultKind::kAckDrop, 0, 0, 0, 1u << 20, 0.0});
  plan.add({inject::FaultKind::kNetDrop, 0, 0, 3, 4, 0.0});
  plan.add({inject::FaultKind::kNetStall, 0, 0, 5, 6, 0.002});
  plan.add({inject::FaultKind::kDupBatch, 0, 0, 7, 8, 0.0});
  inject::NetChaos chaos(std::move(plan));

  RowResult row;
  const auto t0 = std::chrono::steady_clock::now();
  {
    ingest::FleetPublisher::Config first = pub_cfg;
    first.hook = &chaos;
    ingest::FleetPublisher pub(first);
    for (const auto& frame : wire) pub.offer(frame);
    pub.flush();
    pump_all(pub);
    // Wait until the (chaos-eaten) acks have round-tripped, so the kill
    // provably lands with the full window unacked.
    for (int i = 0; i < 60'000 && pub.stats().hook_acks_dropped == 0; ++i) {
      (void)pub.pump();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    // SIGKILL: destroyed with every sent batch still in the spill log.
  }
  {
    ingest::FleetPublisher pub(pub_cfg);
    pump_all(pub);
    (void)pub.drain(Second{30.0});
    row.retransmitted_frames = pub.stats().retransmitted_frames;
  }
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.stop();

  const auto stats = server.stats();
  row.server_frames = stats.frames;
  row.duplicate_frames = stats.duplicate_frames;
  const ingest::FleetView view = server.fleet_view();
  row.missed = view.missed();
  // Zero loss AND zero double counting: the view holds exactly the corpus,
  // every retransmitted frame was vetoed (duplicates >= the retransmits
  // that reached the server), and the digest matches the single-process
  // ground truth bit for bit.
  row.digest_ok = view.digest() == baseline_digest && view.missed() == 0 &&
                  stats.frames == wire.size() && stats.ring_drops == 0 &&
                  row.retransmitted_frames > 0 &&
                  stats.duplicate_frames > 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t stacks = smoke ? 32 : 256;
  const std::size_t sites = smoke ? 32 : 256;
  const std::size_t scans = smoke ? 4 : 8;

  bench::banner("A19",
                "at-least-once ingest: kill-resume exactness, clean-path cost");
  std::printf("mode: %s (%zu stacks x %zu sites x %zu scans)\n\n",
              smoke ? "smoke" : "full", stacks, sites, scans);

  const auto wire = build_corpus(stacks, sites, scans);
  std::size_t wire_bytes = 0;
  for (const auto& f : wire) wire_bytes += f.size();
  const double wire_mb = static_cast<double>(wire_bytes) / 1e6;
  const std::uint32_t want = baseline_view(wire).digest();

  Table table{"loopback TCP, digest vs single Aggregator"};
  table.add_column("row", 0);
  table.add_column("frames", 0);
  table.add_column("MB", 1);
  table.add_column("seconds", 3);
  table.add_column("MB/s", 1);
  table.add_column("dup frames", 0);
  table.add_column("retx frames", 0);
  table.add_column("missed", 0);
  table.add_column("digest", 0);

  struct Named {
    std::string name;
    RowResult result;
  };
  std::vector<Named> rows;
  rows.push_back({"best-effort", run_clean(wire, want, "")});
  rows.push_back({"at-least-once",
                  run_clean(wire, want,
                            fresh_spill_dir("clean").string())});
  rows.push_back({"kill-resume", run_kill_resume(wire, want)});

  bool all_ok = true;
  for (const auto& [name, row] : rows) {
    all_ok = all_ok && row.digest_ok;
    table.add_row({name, static_cast<double>(wire.size()), wire_mb,
                   row.seconds, wire_mb / row.seconds,
                   static_cast<double>(row.duplicate_frames),
                   static_cast<double>(row.retransmitted_frames),
                   static_cast<double>(row.missed),
                   std::string{row.digest_ok ? "match" : "MISMATCH"}});
  }
  bench::emit(table, "a19_resume");

  // Clean-path bound: the best-effort service sustained ~80 MB/s on
  // loopback when this gate was set (A18), and the delivery upgrade may
  // regress that by at most 10% — so the at-least-once row must clear
  // 72 MB/s even though it now pays for a WAL append and an ack round trip
  // per batch.  (The in-binary best-effort row is reported for context but
  // not gated: it does no disk IO at all, so its ratio mostly measures the
  // machine's disk, not the protocol.)  Timing is only trustworthy on a
  // quiet machine, so the smoke gate (CI) checks exactness alone.
  constexpr double kCleanPathFloorMBps = 72.0;
  const double best = wire_mb / rows[0].result.seconds;
  const double alo = wire_mb / rows[1].result.seconds;
  const bool cost_ok = smoke || alo >= kCleanPathFloorMBps;
  std::printf("clean-path throughput: best-effort %.1f MB/s,"
              " at-least-once %.1f MB/s (floor %s)\n",
              best, alo,
              smoke ? "reported only in smoke" : ">= 72.0 MB/s");
  std::printf("acceptance: digest %s, clean-path cost %s\n",
              all_ok ? "ok" : "FAILED", cost_ok ? "ok" : "FAILED");
  return (all_ok && cost_ok) ? 0 : 1;
}
