// A11 [R/extension]: What sensing accuracy is worth, in throughput.  A DVFS
// governor walks a 4-level ladder under a temperature ceiling using the
// stack monitor's readings.  Three governors run the same hot workload:
// eyes from self-calibrated PT sensors, eyes from uncalibrated RO sensors
// (their die reads hot or cold by tens of degrees), and the no-sensor
// fallback (statically parked at the worst-case-safe bottom level).
// Output: throughput, peak temperature and ceiling violations for each.
#include <iostream>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"
#include "sim/dvfs.hpp"
#include "thermal/workload.hpp"

using namespace tsvpt;

namespace {

thermal::Workload hot_workload(const thermal::StackConfig& /*cfg*/) {
  thermal::WorkloadPhase hot;
  hot.name = "hot";
  hot.duration = Second{0.5};
  hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                            Watt{14.0}, {}, Meter{0.0}});
  thermal::WorkloadPhase cool;
  cool.name = "cool";
  cool.duration = Second{0.25};
  cool.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                             Watt{2.0}, {}, Meter{0.0}});
  return thermal::Workload{{hot, cool, hot, cool}};
}

std::vector<core::SensorSite> make_sites(const thermal::StackConfig& cfg,
                                         std::uint64_t seed) {
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(cfg, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    points};
  Rng rng{seed};
  for (std::size_t d = 0; d < cfg.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) sites[d * 4 + i].vt_delta = die.at(i);
  }
  return sites;
}

}  // namespace

int main() {
  bench::banner("A11", "DVFS under a thermal ceiling: sensor quality -> throughput");
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  const thermal::Workload workload = hot_workload(stack);

  sim::DvfsGovernor::Config gov_cfg = sim::DvfsGovernor::Config::typical();
  gov_cfg.ceiling = Celsius{50.0};
  gov_cfg.floor = Celsius{44.0};
  gov_cfg.sample_period = Second{2e-3};
  gov_cfg.thermal_step = Second{0.5e-3};

  Table table{"A11 governor comparison (ceiling 50 degC, 1.5 s run)"};
  table.add_column("governor eyes");
  table.add_column("rel_throughput", 3);
  table.add_column("max_true_degC", 2);
  table.add_column("overshoot_degC*s", 4);
  table.add_column("transitions", 0);

  struct Scenario {
    std::string name;
    double mismatch_mv;  // effective uncorrected error scale
    bool calibrated;
    bool static_bottom;
  };
  const Scenario scenarios[] = {
      {"PT sensor (self-cal)", 0.15e0, true, false},
      {"uncalibrated RO", 12.0, false, false},
      {"no sensor (static P3)", 0.15e0, true, true},
  };

  for (const Scenario& s : scenarios) {
    thermal::ThermalNetwork network{stack};
    std::vector<core::SensorSite> sites = make_sites(stack, 818181);
    core::PtSensor::Config sensor_cfg;
    if (!s.calibrated) {
      // Model "reads through the typical curve": die-level scatter stays
      // uncorrected, which is what an uncalibrated monitor suffers.
      sensor_cfg.ro_mismatch_sigma = millivolts(s.mismatch_mv);
    }
    core::StackMonitor monitor{&network, sensor_cfg, sites, 929292};

    sim::DvfsGovernor::Config cfg = gov_cfg;
    if (s.static_bottom) {
      cfg.initial_level = cfg.ladder.size() - 1;
      cfg.ceiling = Celsius{1000.0};
      cfg.floor = Celsius{-200.0};
    }
    const sim::DvfsGovernor governor{cfg};
    const auto result =
        governor.run(network, workload, monitor, Second{1.5}, 515);
    table.add_row({s.name, result.relative_throughput,
                   result.max_true.value(), result.overshoot_integral,
                   static_cast<long long>(result.transitions)});
  }
  bench::emit(table, "a11_dvfs");

  std::cout << "Shape check: accurate sensing extracts nearly all the "
               "throughput the ceiling\nallows (~0.94) with zero overshoot.  "
               "The uncalibrated governor acts on the MAX\nof 16 readings "
               "whose per-instance errors span tens of degrees — and the "
               "max\noperator amplifies the positive tail — so it reliably "
               "over-throttles down to\nthe static floor: uncalibrated "
               "sensing buys nothing over having no sensor at\nall, which is "
               "precisely the paper's economic argument for free per-die\n"
               "self-calibration.\n";
  return 0;
}
