// A2 [R]: Ablation of the on-chip calibration representation.  The Newton
// inversion used by the core sensor assumes the full nominal model is
// evaluable on-chip; a silicon implementation would store a compressed
// form.  This bench compares, for the tracking (temperature-only) path:
//   * exact model inversion (the repo default),
//   * polynomial T(ln f) fits of order 1..4 built from the latched process
//     point, and
//   * uniform LUTs of 8..64 entries (optionally quantized to 12 bits),
// measuring the additional temperature error each representation introduces
// and its storage cost in bits.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "calib/lut.hpp"
#include "calib/polyfit.hpp"
#include "core/pt_sensor.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("A2", "calibration model: exact vs polynomial vs LUT");
  core::PtSensor sensor{core::PtSensor::Config{}, 2024};
  // A representative skewed die, self-calibrated once.
  core::DieEnvironment env = bench::env_at(30.0, millivolts(22.0),
                                           millivolts(-17.0));
  const auto est = sensor.self_calibrate(env, nullptr);
  const Volt dvtn = est.dvtn;
  const Volt dvtp = est.dvtp;

  // Build the ground-truth transfer ln f -> T from the latched model.
  auto lnf_of_t = [&](double t_c) {
    return std::log(sensor
                        .model_frequency(core::RoRole::kTdro, dvtn, dvtp,
                                         to_kelvin(Celsius{t_c}))
                        .value());
  };
  std::vector<double> t_samples;
  std::vector<double> lnf_samples;
  for (double t = -10.0; t <= 110.0 + 1e-9; t += 2.0) {
    t_samples.push_back(t);
    lnf_samples.push_back(lnf_of_t(t));
  }

  // Evaluation grid: what extra error does each representation add when the
  // measured ln f is exact?
  std::vector<double> eval_t;
  for (double t = 0.0; t <= 100.0 + 1e-9; t += 1.0) eval_t.push_back(t);

  Table table{"A2 representation error (degC) and storage"};
  table.add_column("representation");
  table.add_column("max|err|_degC", 4);
  table.add_column("rms_degC", 4);
  table.add_column("storage_bits", 0);

  table.add_row({std::string{"exact Newton inversion"}, 0.0, 0.0,
                 static_cast<long long>(0)});

  for (std::size_t order = 1; order <= 4; ++order) {
    const calib::Polynomial poly = calib::polyfit(lnf_samples, t_samples,
                                                  order);
    Samples err;
    for (double t : eval_t) err.add(poly(lnf_of_t(t)) - t);
    table.add_row({"polynomial order " + std::to_string(order), err.max_abs(),
                   err.rms(), static_cast<long long>(32 * (order + 1))});
  }

  for (std::size_t entries : {8, 16, 32, 64}) {
    // LUT maps a uniform T grid to ln f; inversion is a monotone lookup.
    std::vector<double> values;
    for (std::size_t i = 0; i < entries; ++i) {
      const double t = -10.0 + 120.0 * static_cast<double>(i) /
                                   static_cast<double>(entries - 1);
      values.push_back(lnf_of_t(t));
    }
    calib::Lut1D lut{-10.0, 110.0, values};
    Samples err;
    for (double t : eval_t) err.add(lut.invert(lnf_of_t(t)) - t);
    table.add_row({"LUT " + std::to_string(entries) + " entries",
                   err.max_abs(), err.rms(),
                   static_cast<long long>(32 * entries)});

    calib::Lut1D lut_q = lut;
    (void)lut_q.quantize(12);
    Samples err_q;
    for (double t : eval_t) {
      // Quantization can break strict monotonicity at fine grids; fall back
      // to reporting only when invertible.
      if (!lut_q.is_monotone()) break;
      err_q.add(lut_q.invert(lnf_of_t(t)) - t);
    }
    if (!err_q.empty()) {
      table.add_row({"LUT " + std::to_string(entries) + " entries @12b",
                     err_q.max_abs(), err_q.rms(),
                     static_cast<long long>(12 * entries)});
    }
  }
  bench::emit(table, "a2_cal_model");

  std::cout << "Shape check: a cubic polynomial or a 16-entry LUT already "
               "adds < 0.1 degC over\nthe exact inversion — on-chip storage "
               "of a few hundred bits suffices, which is\nwhat makes the "
               "fully on-chip scheme practical.\n";
  return 0;
}
