// T2 [R]: Sensor comparison table — the proposed self-calibrated PT sensor
// against an uncalibrated RO sensor, a two-point factory-calibrated RO
// sensor, and a diode/BJT sensor (untrimmed and one-point-trimmed), on the
// same Monte-Carlo die population over 0..100 degC.  Columns follow the
// customary prior-art comparison: accuracy, energy, and calibration cost.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/baselines.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("T2", "comparison vs baselines on a common MC population");
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  constexpr std::size_t kDies = 300;
  const process::MonteCarlo mc{777001, kDies};
  std::vector<double> t_grid;
  for (double t = 0.0; t <= 100.0 + 1e-9; t += 20.0) t_grid.push_back(t);

  struct Row {
    std::string name;
    Samples errors;
    RunningStats energy_pj;
    std::string calibration_cost;
  };
  std::vector<Row> rows;
  rows.push_back({"PT sensor (proposed)", {}, {}, "none (self-cal, power-on)"});
  rows.push_back({"RO uncalibrated", {}, {}, "none"});
  rows.push_back({"RO two-point", {}, {}, "2 thermal insertions/die"});
  rows.push_back({"Diode untrimmed", {}, {}, "none"});
  rows.push_back({"Diode 1-pt trim", {}, {}, "1 trim insertion/die"});

  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});

    core::PtSensor pt{core::PtSensor::Config{}, derive_seed(1, trial)};
    (void)pt.self_calibrate(env, &rng);

    core::UncalibratedRoSensor uncal{core::UncalibratedRoSensor::Config{},
                                     derive_seed(2, trial)};
    core::TwoPointCalibratedRoSensor two_pt{
        core::TwoPointCalibratedRoSensor::Config{}, derive_seed(3, trial)};
    two_pt.factory_calibrate(env, &rng);

    core::DiodeSensor diode{core::DiodeSensor::Config{}, derive_seed(4, trial)};
    core::DiodeSensor::Config trim_cfg;
    trim_cfg.one_point_trim = true;
    core::DiodeSensor diode_trim{trim_cfg, derive_seed(4, trial)};
    diode_trim.trim(env.at_celsius(Celsius{25.0}), &rng);

    core::TemperatureSensor* sensors[] = {&pt, &uncal, &two_pt, &diode,
                                          &diode_trim};
    for (double t : t_grid) {
      const core::DieEnvironment at_t = env.at_celsius(Celsius{t});
      for (std::size_t s = 0; s < 5; ++s) {
        const auto reading = sensors[s]->read(at_t, &rng);
        rows[s].errors.add(reading.temperature.value() - t);
        rows[s].energy_pj.add(reading.energy.value() * 1e12);
      }
    }
  });

  Table table{"T2 sensor comparison (" + std::to_string(kDies) +
              " dies x 0..100 degC)"};
  table.add_column("sensor");
  table.add_column("3sigma_degC", 2);
  table.add_column("max|err|_degC", 2);
  table.add_column("E/conv_pJ", 1);
  table.add_column("per-die calibration cost");
  for (const Row& row : rows) {
    table.add_row({row.name, row.errors.three_sigma(), row.errors.max_abs(),
                   row.energy_pj.mean(), row.calibration_cost});
  }
  bench::emit(table, "t2_comparison");

  std::cout
      << "Shape check (who wins): the proposed sensor approaches two-point "
         "accuracy with\nzero per-die test cost, and beats uncalibrated-RO "
         "and untrimmed-diode accuracy\nby roughly an order of magnitude. "
         "The diode burns more energy per conversion;\nthe uncalibrated RO "
         "is cheapest but inaccurate — the paper's motivating gap.\n";
  return 0;
}
