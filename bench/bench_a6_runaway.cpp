// A6 [R/extension]: Leakage-thermal feedback and runaway in the stack.
// Leakage grows exponentially with temperature; in a poorly-sunk 3D stack
// the coupled fixed point has a knee beyond which no equilibrium exists.
// This bench sweeps dynamic power with and without feedback, locates the
// runaway threshold, and shows the sensor-driven thermal guard holding an
// otherwise-runaway operating point stable.
#include <iostream>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "sim/thermal_guard.hpp"
#include "thermal/leakage.hpp"
#include "thermal/workload.hpp"

using namespace tsvpt;

namespace {

thermal::StackConfig weak_sink_stack() {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  cfg.sink_resistance = 5.0;  // a passively cooled / molded package
  return cfg;
}

void attach_leakage(thermal::ThermalNetwork& net, Watt per_die_at_ref) {
  const device::Technology tech = device::Technology::tsmc65_like();
  const auto cells = static_cast<double>(
      net.config().dies[0].nx * net.config().dies[0].ny);
  for (std::size_t d = 0; d < net.config().die_count(); ++d) {
    net.set_leakage_power(
        d, thermal::leakage_source(tech, Volt{1.0},
                                   Watt{per_die_at_ref.value() / cells},
                                   Kelvin{318.15}));  // ref: 45 degC
  }
}

constexpr double kLeakPerDie = 0.18;  // W at the 45 degC reference

}  // namespace

int main() {
  bench::banner("A6", "leakage feedback: runaway knee and the guard");

  Table knee{"A6 steady-state peak (degC) vs dynamic power"};
  knee.add_column("P_dynamic_W", 1);
  knee.add_column("no_feedback", 2);
  knee.add_column("with_feedback");
  knee.add_column("leakage_W");
  for (double p = 1.0; p <= 8.0 + 1e-9; p += 1.0) {
    thermal::ThermalNetwork plain{weak_sink_stack()};
    plain.set_uniform_power(0, Watt{p});
    plain.set_temperatures(plain.steady_state());
    const double t_plain = to_celsius(plain.max_temperature(0)).value();

    thermal::ThermalNetwork fb{weak_sink_stack()};
    fb.set_uniform_power(0, Watt{p});
    attach_leakage(fb, Watt{kLeakPerDie});
    std::string t_fb = "RUNAWAY";
    std::string leak = "-";
    try {
      fb.set_temperatures(fb.steady_state());
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f",
                    to_celsius(fb.max_temperature(0)).value());
      t_fb = buf;
      std::snprintf(buf, sizeof buf, "%.2f", fb.leakage_power().value());
      leak = buf;
    } catch (const std::runtime_error&) {
      // no equilibrium: the fixed point diverged
    }
    knee.add_row({p, t_plain, t_fb, leak});
  }
  bench::emit(knee, "a6_knee");

  // The guard rescues an operating point past the open-loop knee.
  const thermal::StackConfig stack = weak_sink_stack();
  thermal::WorkloadPhase hot;
  hot.name = "hot";
  hot.duration = Second{1.5};
  hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                            Watt{7.0}, {}, Meter{0.0}});
  const thermal::Workload workload{{hot}};

  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 2, 2);
  const process::VariationModel variation{
      device::Technology::tsmc65_like(),
      {sites[0].location, sites[1].location, sites[2].location,
       sites[3].location}};
  Rng rng{31};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) sites[d * 4 + i].vt_delta = die.at(i);
  }

  sim::ThermalGuard::Config guard_cfg;
  guard_cfg.throttle_on = Celsius{60.0};
  guard_cfg.throttle_off = Celsius{52.0};
  guard_cfg.throttle_factor = 0.2;
  guard_cfg.sample_period = Second{2e-3};
  guard_cfg.thermal_step = Second{1e-3};
  const sim::ThermalGuard guard{guard_cfg};

  Table rescue{"A6 transient at 7 W (past the open-loop knee)"};
  rescue.add_column("configuration");
  rescue.add_column("max_true_degC", 2);
  rescue.add_column("throttled_%", 1);
  for (const bool enabled : {false, true}) {
    thermal::ThermalNetwork net{stack};
    attach_leakage(net, Watt{kLeakPerDie});
    net.set_runaway_limit(Kelvin{2000.0});  // let the transient show growth
    core::StackMonitor monitor{&net, core::PtSensor::Config{}, sites, 17};
    const auto result =
        guard.run(net, workload, monitor, Second{1.5}, 19, enabled);
    rescue.add_row({enabled ? std::string{"guarded"} : std::string{"unguarded"},
                    result.max_true.value(),
                    100.0 * result.throttled_fraction});
  }
  bench::emit(rescue, "a6_rescue");

  std::cout << "Shape check: without feedback the peak grows linearly in "
               "power; with leakage\nfeedback it grows super-linearly and "
               "loses equilibrium at the knee.  The\nsensor-driven guard "
               "holds a past-the-knee operating point by throttling —\n"
               "exactly the monitoring-for-thermal-management role the paper "
               "targets.\n";
  return 0;
}
