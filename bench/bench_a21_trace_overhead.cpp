// A21 [R]: distributed observability overhead, clock alignment, stitching.
//
// PR 9's observability plane must be "cheap enough to leave on" end to end,
// not just on the in-process sampler hot path (A17 prices that).  This
// bench prices the distributed additions — v3 batch restamping, per-stage
// histograms, trace spans on the publisher/server paths — on the A18
// loopback ingest workload, interleaving obs-enabled and obs-disabled runs
// A/B/A/B and taking the best wall time per side.
//
// Three gates:
//   overhead    enabled wall time <= (1 + gate) x disabled wall time
//               (5% full, 25% under --smoke where scheduler noise on
//               shared CI runners dwarfs the real cost);
//   clock       the publisher's NTP-style offset estimate on loopback is
//               within +-2 ms of zero — both ends read the same
//               CLOCK_MONOTONIC, so any estimate beyond that is
//               filter/arithmetic breakage, not network asymmetry;
//   stitching   a FlightRecorder snapshot split into two category-
//               partitioned Chrome dumps and re-merged by TraceMerge
//               reconciles 1:1 in span counts.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "ptsim/table.hpp"
#include "telemetry/codec_util.hpp"
#include "telemetry/frame.hpp"

namespace {

using namespace tsvpt;

// v2 frame-header offsets (frame.hpp), same re-stamp trick as A18.
constexpr std::size_t kSequenceOffset = 16;
constexpr std::size_t kSimTimeOffset = 24;
constexpr std::size_t kCaptureNsOffset = 32;

void poke_u64(std::vector<std::uint8_t>& buf, std::size_t at,
              std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void restamp(std::vector<std::uint8_t>& buf, std::uint64_t sequence,
             double sim_time, std::uint64_t capture_ns) {
  poke_u64(buf, kSequenceOffset, sequence);
  poke_u64(buf, kSimTimeOffset, std::bit_cast<std::uint64_t>(sim_time));
  poke_u64(buf, kCaptureNsOffset, capture_ns);
  const std::uint32_t crc =
      telemetry::crc32(buf.data(), buf.size() - sizeof(std::uint32_t));
  const std::size_t at = buf.size() - sizeof(std::uint32_t);
  buf[at] = static_cast<std::uint8_t>(crc);
  buf[at + 1] = static_cast<std::uint8_t>(crc >> 8);
  buf[at + 2] = static_cast<std::uint8_t>(crc >> 16);
  buf[at + 3] = static_cast<std::uint8_t>(crc >> 24);
}

std::vector<std::uint8_t> make_template(std::uint32_t stack,
                                        std::size_t sites) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.readings.resize(sites);
  for (std::size_t i = 0; i < sites; ++i) {
    auto& r = frame.readings[i];
    r.site_index = i;
    r.die = i / ((sites + 3) / 4);
    r.location = {static_cast<double>(i % 32) * 0.1,
                  static_cast<double>(i / 32) * 0.1};
    r.sensed = Celsius{45.0 + static_cast<double>(stack % 9)};
    r.truth = Celsius{r.sensed.value() - 0.3};
    r.energy = Joule{1.5e-9};
  }
  return telemetry::encode(frame);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct RunResult {
  double seconds = 0.0;
  bool delivered = false;
  std::int64_t clock_offset_ns = 0;
  std::uint64_t clock_samples = 0;
};

/// One loopback publish-ingest pass over the pre-encoded corpus.
RunResult run_workload(std::vector<std::vector<std::uint8_t>>& templates,
                       std::size_t scans) {
  ingest::IngestServer::Config server_cfg;
  server_cfg.shard_count = 2;
  server_cfg.shard_ring_capacity = 1 << 16;
  server_cfg.aggregator.spatial_check = false;
  ingest::IngestServer server(server_cfg);
  server.start();

  ingest::FleetPublisher::Config pub_cfg;
  pub_cfg.host = "127.0.0.1";
  pub_cfg.port = server.port();
  pub_cfg.batch_max_frames = 64;
  pub_cfg.batch_max_bytes = std::size_t{4} << 20;
  pub_cfg.queue_max_batches = 1 << 16;
  ingest::FleetPublisher pub(pub_cfg);

  const std::size_t total = templates.size() * scans;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t scan = 0; scan < scans; ++scan) {
    for (auto& tmpl : templates) {
      restamp(tmpl, scan, 1e-3 * static_cast<double>(scan), now_ns());
      pub.offer(std::vector<std::uint8_t>(tmpl));
    }
    pub.flush();
    while (!pub.pump()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  RunResult run;
  for (int i = 0; i < 60'000; ++i) {
    if (server.stats().frames >= total) {
      run.delivered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Acks trail the data: keep pumping (outside the timed window) until the
  // clock filter has at least one sample, so the offset gate reads a real
  // estimate instead of the never-acked default.
  for (int i = 0; i < 2'000 && pub.stats().clock_samples == 0; ++i) {
    (void)pub.pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const ingest::FleetPublisher::Stats st = pub.stats();
  run.clock_offset_ns = st.clock_offset_ns;
  run.clock_samples = st.clock_samples;
  pub.disconnect();
  server.stop();
  return run;
}

/// Split the flight recorder's events into two category-partitioned Chrome
/// dumps, re-merge them, and check the span counts reconcile exactly.
bool stitch_reconciles(std::size_t& merged_events) {
  const std::vector<obs::TraceEvent> events =
      obs::FlightRecorder::instance().snapshot();
  std::vector<obs::TraceEvent> pub_events;
  std::vector<obs::TraceEvent> other_events;
  for (const obs::TraceEvent& e : events) {
    (std::strcmp(e.category, "pub") == 0 ? pub_events : other_events)
        .push_back(e);
  }
  obs::TraceMerge merge;
  merge.add(obs::to_chrome_trace(pub_events), 0, "publisher");
  merge.add(obs::to_chrome_trace(other_events), 2'500'000, "server");
  const obs::TraceMerge::Result merged = merge.merge();
  merged_events = merged.total_events;
  return merged.events_per_input.size() == 2 &&
         merged.events_per_input[0] == pub_events.size() &&
         merged.events_per_input[1] == other_events.size() &&
         merged.total_events == events.size() && !events.empty();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t stacks = smoke ? 32 : 256;
  const std::size_t sites = smoke ? 32 : 256;
  const std::size_t scans = 4;
  const int reps = smoke ? 3 : 5;
  const double gate = smoke ? 0.25 : 0.05;
  constexpr std::int64_t kOffsetGateNs = 2'000'000;  // +-2 ms on loopback

  bench::banner("A21", "distributed observability overhead + stitching");
  std::printf("mode: %s (%zu stacks x %zu sites x %zu scans, best-of-%d)\n\n",
              smoke ? "smoke" : "full", stacks, sites, scans, reps);

  std::vector<std::vector<std::uint8_t>> templates;
  templates.reserve(stacks);
  for (std::uint32_t s = 0; s < stacks; ++s) {
    templates.push_back(make_template(s, sites));
  }

  bool delivered = true;
  double best_on = 1e300;
  double best_off = 1e300;
  std::int64_t offset_ns = 0;
  std::uint64_t offset_samples = 0;
  for (int r = 0; r < reps; ++r) {
    for (const bool enabled : {true, false}) {
      obs::set_enabled(enabled);
      obs::Registry::instance().reset_values();
      if (enabled) obs::FlightRecorder::instance().clear();
      const RunResult run = run_workload(templates, scans);
      delivered = delivered && run.delivered;
      (enabled ? best_on : best_off) =
          std::min(enabled ? best_on : best_off, run.seconds);
      if (enabled) {
        // Keep the last enabled run's clock estimate (and its trace, for
        // the stitching check below).
        offset_ns = run.clock_offset_ns;
        offset_samples = run.clock_samples;
      }
    }
  }
  obs::set_enabled(true);

  const double overhead = best_on / best_off - 1.0;
  const bool overhead_ok = overhead <= gate;
  const bool clock_ok =
      offset_samples > 0 && offset_ns >= -kOffsetGateNs &&
      offset_ns <= kOffsetGateNs;
  std::size_t merged_events = 0;
  const bool stitch_ok = stitch_reconciles(merged_events);

  const double frames = static_cast<double>(stacks * scans);
  Table table{"loopback ingest, obs on vs off, 2 shards"};
  table.add_column("obs", 0);
  table.add_column("wall s", 4);
  table.add_column("frames/s", 1);
  table.add_row({1.0, best_on, frames / best_on});
  table.add_row({0.0, best_off, frames / best_off});
  bench::emit(table, "a21_trace_overhead");

  std::printf("overhead: %.2f%% (gate %.0f%%) %s\n", overhead * 100.0,
              gate * 100.0, overhead_ok ? "ok" : "FAILED");
  std::printf("clock offset: %lld ns over %llu samples (gate +-%lld ns) %s\n",
              static_cast<long long>(offset_ns),
              static_cast<unsigned long long>(offset_samples),
              static_cast<long long>(kOffsetGateNs),
              clock_ok ? "ok" : "FAILED");
  std::printf("trace stitch: %zu spans reconciled %s\n", merged_events,
              stitch_ok ? "ok" : "FAILED");

  bench::emit_json(
      bench::json_out_dir(argc, argv), "a21_trace_overhead",
      {{"overhead_ratio", overhead, "ratio", gate, overhead_ok},
       {"clock_offset_ns", static_cast<double>(offset_ns), "ns",
        static_cast<double>(kOffsetGateNs), clock_ok},
       {"merged_spans", static_cast<double>(merged_events), "spans", 1.0,
        stitch_ok},
       {"delivered", delivered ? 1.0 : 0.0, "bool", 1.0, delivered}});

  return (delivered && overhead_ok && clock_ok && stitch_ok) ? 0 : 1;
}
