// A3 [R]: Sensor-count/placement ablation — how many sensors per die does
// the stack monitor need to see the hotspot?  A fixed hotspot workload heats
// die 0; grids of 1x1 .. 4x4 sensors per die are compared on hotspot
// underestimation (true hottest cell vs hottest sensed site) and total
// sensing energy per sample.
#include <iostream>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "thermal/network.hpp"

using namespace tsvpt;

int main() {
  bench::banner("A3", "sensors per die vs hotspot visibility");
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();

  Table table{"A3 hotspot visibility vs sensor grid"};
  table.add_column("grid/die");
  table.add_column("sensors_total", 0);
  table.add_column("true_hotspot_degC", 2);
  table.add_column("max_sensed_degC", 2);
  table.add_column("underestimate_degC", 2);
  table.add_column("energy/sample_nJ", 2);

  for (std::size_t grid : {1, 2, 3, 4}) {
    thermal::ThermalNetwork network{stack};
    // Off-center hotspot: worst case for sparse sensor grids.
    network.add_hotspot(0, {1.2e-3, 3.6e-3}, Meter{0.5e-3}, Watt{5.0});
    network.set_uniform_power(1, Watt{0.3});
    network.set_temperatures(network.steady_state());

    std::vector<core::SensorSite> sites =
        core::StackMonitor::uniform_sites(stack, grid, grid);
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < grid * grid; ++i) {
      points.push_back(sites[i].location);
    }
    process::VariationModel variation{device::Technology::tsmc65_like(),
                                      points};
    Rng rng{1000 + grid};
    for (std::size_t d = 0; d < stack.die_count(); ++d) {
      const process::DieVariation die = variation.sample_die(rng);
      for (std::size_t i = 0; i < grid * grid; ++i) {
        sites[d * grid * grid + i].vt_delta = die.at(i);
      }
    }
    core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites,
                               2000 + grid};
    monitor.calibrate_all(&rng);
    const auto sample = monitor.sample_all(&rng);

    const double true_hot = to_celsius(network.max_temperature(0)).value();
    const double sensed_hot =
        core::StackMonitor::max_sensed(sample, 0).value();
    double energy = 0.0;
    for (const auto& r : sample) energy += r.energy.value();

    table.add_row({std::to_string(grid) + "x" + std::to_string(grid),
                   static_cast<long long>(sites.size()), true_hot, sensed_hot,
                   true_hot - sensed_hot, energy * 1e9});
  }
  bench::emit(table, "a3_placement");

  std::cout << "Shape check: a single central sensor misses an off-center "
               "hotspot by several\ndegrees; the underestimate shrinks "
               "monotonically with grid density while the\nenergy bill grows "
               "linearly — 2x2 or 3x3 per die is the practical choice.\n";
  return 0;
}
