// F5 [R]: 3D-stack thermal tracking — a 4-die TSV stack runs a burst/idle
// workload with a migrating hotspot while one PT sensor per die quadrant
// samples every millisecond.  Prints the sensed-vs-true trace for the
// hottest site of each die and the per-die tracking-error statistics.  This
// is the paper's system-level use case: intra-die temperature monitoring
// for TSV 3D integration.
// GCC 12 reports a spurious -Wmaybe-uninitialized from the inlined
// vector<variant> reallocation path when a Table row grows (GCC PR 105562);
// the rows below are plainly initialized before use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <iostream>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "sim/monitor_session.hpp"
#include "thermal/workload.hpp"

using namespace tsvpt;

int main() {
  bench::banner("F5", "4-die TSV stack: sensed vs true transient tracking");
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{stack};
  const thermal::Workload workload = thermal::Workload::burst_idle(
      stack, Watt{6.0}, Watt{0.3}, Second{30e-3}, 4);

  // 2x2 sensor sites per die with realistic process variation + TSV stress.
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 2, 2);
  std::vector<process::Point> per_die_points;
  for (std::size_t i = 0; i < 4; ++i) per_die_points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    per_die_points};
  Rng rng{505};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    // Thinned upper dies carry more TSV stress.
    process::TsvStressField stress{stack.tsv.centers, process::TsvStressParams{},
                                   1.0 + 0.25 * static_cast<double>(d)};
    variation.set_tsv_stress(stress);
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) {
      sites[d * 4 + i].vt_delta = die.at(i);
      // PDN droop grows up the stack (longer TSV supply path).
      sites[d * 4 + i].supply = circuit::SupplyRail{
          {Volt{1.0}, Volt{3e-3 * static_cast<double>(d)}, Volt{1e-3}}};
    }
  }

  // Upper dies see real PDN droop; use the supply-compensated mode so the
  // monitor keeps its accuracy up the stack (A4 quantifies the plain mode).
  core::PtSensor::Config sensor_cfg;
  sensor_cfg.compensate_supply = true;
  core::StackMonitor monitor{&network, sensor_cfg, sites, 606};
  sim::MonitoringSession::Config session_cfg;
  session_cfg.sample_period = Second{1e-3};
  session_cfg.thermal_step = Second{0.5e-3};
  sim::MonitoringSession session{&network, &workload, &monitor, session_cfg,
                                 707};
  session.run(Second{120e-3});

  Table trace{"F5 trace: true vs sensed (degC), hottest site per die"};
  trace.add_column("t_ms", 1);
  for (std::size_t d = 0; d < 4; ++d) {
    trace.add_column("die" + std::to_string(d) + "_true", 2);
    trace.add_column("die" + std::to_string(d) + "_sensed", 2);
  }
  for (std::size_t k = 0; k < session.trace().size(); k += 5) {
    const sim::SamplePoint& point = session.trace()[k];
    std::vector<Cell> row{point.time.value() * 1e3};
    for (std::size_t d = 0; d < 4; ++d) {
      double best_true = -1e30;
      double best_sensed = -1e30;
      for (const auto& r : point.readings) {
        if (r.die != d) continue;
        if (r.truth.value() > best_true) {
          best_true = r.truth.value();
          best_sensed = r.sensed.value();
        }
      }
      row.push_back(best_true);
      row.push_back(best_sensed);
    }
    trace.add_row(std::move(row));
  }
  bench::emit(trace, "f5_trace");

  Table stats{"F5 per-die tracking error (degC)"};
  stats.add_column("die", 0);
  stats.add_column("mean", 3);
  stats.add_column("3sigma", 3);
  stats.add_column("max|err|", 3);
  for (std::size_t d = 0; d < 4; ++d) {
    Samples errors;
    for (const auto& point : session.trace()) {
      for (const auto& r : point.readings) {
        if (r.die == d) errors.add(r.error());
      }
    }
    stats.add_row({static_cast<long long>(d), errors.mean(),
                   errors.three_sigma(), errors.max_abs()});
  }
  bench::emit(stats, "f5_stats");

  const Samples all = session.error_samples();
  std::cout << "Overall: 3sigma = " << all.three_sigma()
            << " degC, max |err| = " << all.max_abs()
            << " degC over " << all.count() << " readings; total sensing "
            << "energy = " << session.total_sensing_energy().value() * 1e9
            << " nJ.\n";
  std::cout << "Shape check: the sensed trace follows burst/idle swings on "
               "every die with\ndegree-scale worst-case error; the heated die "
               "0 shows the largest swings.\n";
  return 0;
}
