// A10 [R/extension]: Serialized readout (shared bus / scan chain) and
// snapshot staleness.  A 16-sensor stack cannot read all macros at once; a
// TDM scan visits them one by one while the thermal state keeps moving.
// Each scan is then *presented* to the thermal manager as one snapshot —
// but early readings are up to (N-1) slots old.  This bench sweeps the
// per-site slot time and measures the snapshot error (sensed vs the truth
// at scan end, when the decision is made) under a fast burst workload.
#include <iostream>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"
#include "thermal/workload.hpp"

using namespace tsvpt;

int main() {
  bench::banner("A10", "TDM readout slot vs snapshot staleness");
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  const thermal::Workload workload = thermal::Workload::burst_idle(
      stack, Watt{8.0}, Watt{0.3}, Second{20e-3}, 6);

  Table table{"A10 snapshot error vs readout slot (16 sensors)"};
  table.add_column("slot_us", 1);
  table.add_column("scan_time_ms", 2);
  table.add_column("conv_err_3sigma", 3);
  table.add_column("snapshot_err_3sigma", 3);
  table.add_column("snapshot_err_max", 3);

  for (double slot_us : {0.0, 50.0, 200.0, 500.0, 1000.0}) {
    thermal::ThermalNetwork network{stack};
    std::vector<core::SensorSite> sites =
        core::StackMonitor::uniform_sites(stack, 2, 2);
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
    process::VariationModel variation{device::Technology::tsmc65_like(),
                                      points};
    Rng rng{derive_seed(606060, static_cast<std::uint64_t>(slot_us))};
    for (std::size_t d = 0; d < stack.die_count(); ++d) {
      const process::DieVariation die = variation.sample_die(rng);
      for (std::size_t i = 0; i < 4; ++i) {
        sites[d * 4 + i].vt_delta = die.at(i);
      }
    }
    core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites,
                               707070};

    workload.apply(network, Second{0.0});
    network.set_temperatures(network.steady_state());
    monitor.calibrate_all(&rng);

    const Second slot{slot_us * 1e-6};
    const Second scan_period{5e-3};
    Samples conversion_errors;
    Samples snapshot_errors;
    double now = 0.0;
    const double horizon = workload.total_duration().value();
    while (now + 1e-9 < horizon) {
      // One scan: serialized site conversions.
      std::vector<core::StackMonitor::SiteReading> scan;
      scan.reserve(monitor.site_count());
      for (std::size_t i = 0; i < monitor.site_count(); ++i) {
        scan.push_back(monitor.sample_site(i, &rng));
        if (slot.value() > 0.0 && i + 1 < monitor.site_count()) {
          workload.apply(network, Second{now});
          network.step(slot);
          now += slot.value();
        }
      }
      // Judge the snapshot against the truth at scan end.
      for (const auto& reading : scan) {
        conversion_errors.add(reading.error());
        const double truth_now =
            to_celsius(network.temperature_at(reading.die, reading.location))
                .value();
        snapshot_errors.add(reading.sensed.value() - truth_now);
      }
      // Idle until the next scan starts.
      const double scan_time =
          slot.value() * static_cast<double>(monitor.site_count() - 1);
      const double idle = std::max(scan_period.value() - scan_time, 0.0);
      if (idle > 0.0) {
        workload.apply(network, Second{now});
        network.step(Second{idle});
        now += idle;
      }
    }
    table.add_row({slot_us,
                   1e3 * slot.value() * static_cast<double>(15),
                   conversion_errors.three_sigma(),
                   snapshot_errors.three_sigma(), snapshot_errors.max_abs()});
  }
  bench::emit(table, "a10_readout");

  std::cout << "Shape check: per-conversion accuracy is slot-independent "
               "(each reading is\ncorrect *for its own instant*), but the "
               "snapshot error grows with the scan\ntime — once the 15-slot "
               "scan approaches the stack's thermal time constant,\nearly "
               "readings are stale by several degrees when the manager acts "
               "on them.\nBudget the readout bus so a full scan stays well "
               "under the fastest transient.\n";
  return 0;
}
