// A7 [R/extension]: Wafer-map reconstruction from packaged parts.  Each die
// carries a wafer-systematic (radial bowl + tilt) Vt fingerprint; at
// power-on every part's PT sensor extracts its (dVtn, dVtp) without any
// tester.  Binning those extractions by wafer radius reconstructs the
// wafer's radial profile — the kind of feedback fabs normally need wafer
// probe for.  (Dies are sampled from one wafer; the sensor never sees the
// wafer coordinates, only its own silicon.)
#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "process/wafer.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("A7", "wafer radial profile: true vs sensor-reconstructed");
  const process::WaferModel wafer{process::WaferParams{}, 20120904};
  constexpr std::size_t kSampleStride = 8;  // sample every 8th die

  // Radial bins over the usable radius.
  constexpr std::size_t kBins = 8;
  const double r_max = wafer.params().radius.value();
  std::vector<Samples> true_n(kBins);
  std::vector<Samples> sensed_n(kBins);
  std::vector<Samples> sensed_p(kBins);
  std::vector<Samples> true_p(kBins);
  Samples err_n;
  Samples err_p;

  std::size_t sampled = 0;
  for (std::size_t i = 0; i < wafer.die_count(); i += kSampleStride) {
    const device::VtDelta truth = wafer.die_offset(i);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(909, i)};
    Rng noise{derive_seed(910, i)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{noise.uniform(20.0, 40.0)});
    env.vt_delta = truth;
    const auto est = sensor.self_calibrate(env, &noise);
    if (!est.converged) continue;
    ++sampled;

    const auto bin = std::min(
        static_cast<std::size_t>(wafer.site_radius(i) / r_max *
                                 static_cast<double>(kBins)),
        kBins - 1);
    true_n[bin].add(truth.nmos.value() * 1e3);
    true_p[bin].add(truth.pmos.value() * 1e3);
    sensed_n[bin].add(est.dvtn.value() * 1e3);
    sensed_p[bin].add(est.dvtp.value() * 1e3);
    err_n.add((est.dvtn.value() - truth.nmos.value()) * 1e3);
    err_p.add((est.dvtp.value() - truth.pmos.value()) * 1e3);
  }

  Table profile{"A7 radial profile (mV), " + std::to_string(sampled) +
                " sampled dies"};
  profile.add_column("radius_mm", 1);
  profile.add_column("dies", 0);
  profile.add_column("true_dVtn_mean", 2);
  profile.add_column("sensed_dVtn_mean", 2);
  profile.add_column("true_dVtp_mean", 2);
  profile.add_column("sensed_dVtp_mean", 2);
  for (std::size_t b = 0; b < kBins; ++b) {
    if (true_n[b].empty()) continue;
    profile.add_row({1e3 * r_max * (static_cast<double>(b) + 0.5) /
                         static_cast<double>(kBins),
                     static_cast<long long>(true_n[b].count()),
                     true_n[b].mean(), sensed_n[b].mean(), true_p[b].mean(),
                     sensed_p[b].mean()});
  }
  bench::emit(profile, "a7_profile");

  std::cout << "Per-die reconstruction error: dVtn 3sigma = "
            << err_n.three_sigma() << " mV, dVtp 3sigma = "
            << err_p.three_sigma() << " mV.\n";
  std::cout << "Shape check: the sensed radial means follow the true bowl "
               "(rising toward the\nwafer edge) within fractions of a mV — "
               "the deployed sensor fleet doubles as a\nwafer-level process "
               "monitor, with no tester time.\n";
  return 0;
}
