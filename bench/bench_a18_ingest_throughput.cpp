// A18 [R]: sharded ingest service throughput and merge exactness.
//
// The distributed-ingestion claim is twofold: the TCP service sustains
// fleet-scale frame rates on loopback, and the cross-shard merge is *exact*
// — FleetView::digest() over the sharded run equals the digest of one big
// Aggregator fed the identical frames.  Each row replays the same synthetic
// corpus (full: 1024 stacks x 1024 sites x 4 scans = 4M site readings,
// >1M sites per scan) through an IngestServer with a different shard count
// and reports sustained frames/s, Msites/s, wire MB/s, and the p99
// end-to-end latency (producer encode -> shard aggregator) from the
// tsvpt_agg_e2e_latency_seconds histogram.
//
// Frames are pre-encoded once per stack and re-stamped per scan (sequence,
// sim_time, capture_ns + trailing CRC), so the producer side costs one CRC
// pass per frame — the bench measures the transport + shard pipeline, not
// readout simulation.  The baseline Aggregator ingests byte-identical
// frames modulo capture_ns, which the canonical serialization excludes, so
// digest equality is a real end-to-end check, not a tautology.
//
// --smoke shrinks the corpus (64 x 64 x 4) and the shard sweep for the CI
// gate; the acceptance bar is digest equality with zero loss on every row
// (full mode additionally demands the >=1k stacks / >=1M sites scale).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "ingest/fleet_view.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "obs/metrics.hpp"
#include "ptsim/table.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/codec_util.hpp"
#include "telemetry/frame.hpp"

namespace {

using namespace tsvpt;

// Header offsets from the v2 wire layout (frame.hpp): the three fields a
// re-stamped scan changes, plus the trailing CRC.
constexpr std::size_t kSequenceOffset = 16;
constexpr std::size_t kSimTimeOffset = 24;
constexpr std::size_t kCaptureNsOffset = 32;

void poke_u64(std::vector<std::uint8_t>& buf, std::size_t at,
              std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Re-stamp a pre-encoded frame for one scan and fix its trailing CRC.
void restamp(std::vector<std::uint8_t>& buf, std::uint64_t sequence,
             double sim_time, std::uint64_t capture_ns) {
  poke_u64(buf, kSequenceOffset, sequence);
  poke_u64(buf, kSimTimeOffset, std::bit_cast<std::uint64_t>(sim_time));
  poke_u64(buf, kCaptureNsOffset, capture_ns);
  const std::uint32_t crc =
      telemetry::crc32(buf.data(), buf.size() - sizeof(std::uint32_t));
  const std::size_t at = buf.size() - sizeof(std::uint32_t);
  buf[at] = static_cast<std::uint8_t>(crc);
  buf[at + 1] = static_cast<std::uint8_t>(crc >> 8);
  buf[at + 2] = static_cast<std::uint8_t>(crc >> 16);
  buf[at + 3] = static_cast<std::uint8_t>(crc >> 24);
}

/// One deterministic template frame per stack; scans only re-stamp it.
/// A sparse set of stacks runs hot (over the 85C default threshold) so the
/// digest also covers alert merge, not just Welford stats.
std::vector<std::uint8_t> make_template(std::uint32_t stack,
                                        std::size_t sites) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.readings.resize(sites);
  const bool hot = stack % 97 == 3;
  for (std::size_t i = 0; i < sites; ++i) {
    auto& r = frame.readings[i];
    r.site_index = i;
    r.die = i / ((sites + 3) / 4);
    r.location = {static_cast<double>(i % 32) * 0.1,
                  static_cast<double>(i / 32) * 0.1};
    const double base = hot ? 86.5 : 45.0;
    r.sensed = Celsius{base + static_cast<double>(stack % 9) +
                       0.05 * static_cast<double>(i % 32)};
    r.truth = Celsius{r.sensed.value() - 0.3};
    r.energy = Joule{1.5e-9};
  }
  return telemetry::encode(frame);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Corpus {
  std::size_t stacks = 0;
  std::size_t sites = 0;
  std::size_t scans = 0;
  std::vector<std::vector<std::uint8_t>> templates;  // one per stack

  [[nodiscard]] std::size_t frames() const { return stacks * scans; }
  [[nodiscard]] std::size_t wire_bytes() const {
    return frames() * templates.front().size();
  }
};

Corpus build_corpus(std::size_t stacks, std::size_t sites,
                    std::size_t scans) {
  Corpus c;
  c.stacks = stacks;
  c.sites = sites;
  c.scans = scans;
  c.templates.reserve(stacks);
  for (std::uint32_t s = 0; s < stacks; ++s) {
    c.templates.push_back(make_template(s, sites));
  }
  return c;
}

telemetry::Aggregator::Config agg_config() {
  telemetry::Aggregator::Config cfg;
  // Leave-one-out spatial checks are O(sites^2) per frame; this bench
  // measures the transport + merge pipeline, so keep the detector out of
  // the hot path (over-temperature alerts still exercise the alert merge).
  cfg.spatial_check = false;
  return cfg;
}

/// The ground truth every sharded row must reproduce byte for byte.
ingest::FleetView baseline_view(Corpus& corpus) {
  std::vector<telemetry::Alert> alerts;
  telemetry::Aggregator agg(
      agg_config(),
      [&](const telemetry::Alert& alert) { alerts.push_back(alert); });
  for (std::size_t scan = 0; scan < corpus.scans; ++scan) {
    for (auto& tmpl : corpus.templates) {
      restamp(tmpl, scan, 1e-3 * static_cast<double>(scan), 0);
      agg.ingest(tmpl);
    }
  }
  ingest::FleetView view;
  view.add_shard(agg.summary(), alerts);
  view.finalize();
  return view;
}

struct RowResult {
  double seconds = 0.0;
  double p99_ms = 0.0;
  std::uint64_t ring_drops = 0;
  std::uint64_t missed = 0;
  bool digest_ok = false;
  bool delivered = false;
};

RowResult run_row(Corpus& corpus, std::size_t shard_count,
                  std::uint32_t baseline_digest) {
  // Isolate this row's latency histogram from previous rows.
  obs::Registry::instance().reset_values();

  ingest::IngestServer::Config server_cfg;
  server_cfg.shard_count = shard_count;
  // Generous ring: loss would break the digest bar, and backpressure
  // behavior has its own tests — here we measure sustained throughput.
  server_cfg.shard_ring_capacity = 1 << 16;
  server_cfg.aggregator = agg_config();
  ingest::IngestServer server(server_cfg);
  server.start();

  ingest::FleetPublisher::Config pub_cfg;
  pub_cfg.host = "127.0.0.1";
  pub_cfg.port = server.port();
  pub_cfg.batch_max_frames = 64;
  pub_cfg.batch_max_bytes = std::size_t{4} << 20;
  pub_cfg.queue_max_batches = 1 << 16;  // never shed: exactness bar
  ingest::FleetPublisher pub(pub_cfg);

  const std::size_t total = corpus.frames();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t scan = 0; scan < corpus.scans; ++scan) {
    for (auto& tmpl : corpus.templates) {
      restamp(tmpl, scan, 1e-3 * static_cast<double>(scan), now_ns());
      pub.offer(std::vector<std::uint8_t>(tmpl));
    }
    pub.flush();
    while (!pub.pump()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  RowResult row;
  for (int i = 0; i < 60'000; ++i) {
    if (server.stats().frames >= total) {
      row.delivered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pub.disconnect();
  server.stop();  // drains the shard rings before returning
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ingest::IngestServer::Stats stats = server.stats();
  row.ring_drops = stats.ring_drops;
  ingest::FleetView view = server.fleet_view();
  row.missed = view.missed();
  row.digest_ok = row.delivered && view.digest() == baseline_digest &&
                  stats.ring_drops == 0 && view.missed() == 0;

  for (const auto& h : obs::Registry::instance().snapshot().histograms) {
    if (h.name == "tsvpt_agg_e2e_latency_seconds") row.p99_ms = h.p99 * 1e3;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t stacks = smoke ? 64 : 1024;
  const std::size_t sites = smoke ? 64 : 1024;
  const std::size_t scans = 4;
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};

  bench::banner("A18", "sharded ingest throughput and merge exactness");
  std::printf("mode: %s (%zu stacks x %zu sites x %zu scans)\n\n",
              smoke ? "smoke" : "full", stacks, sites, scans);

  Corpus corpus = build_corpus(stacks, sites, scans);
  const ingest::FleetView baseline = baseline_view(corpus);
  const std::uint32_t want = baseline.digest();

  Table table{"loopback TCP, batched frames, digest vs single Aggregator"};
  table.add_column("shards", 0);
  table.add_column("frames", 0);
  table.add_column("Msites", 2);
  table.add_column("wire MB", 1);
  table.add_column("seconds", 3);
  table.add_column("frames/s", 0);
  table.add_column("Msites/s", 2);
  table.add_column("MB/s", 1);
  table.add_column("p99 ms", 3);
  table.add_column("digest", 3);

  bool all_ok = true;
  double best_frames_s = 0.0;
  double worst_p99_ms = 0.0;
  const double msites =
      static_cast<double>(corpus.frames() * sites) / 1e6;
  const double wire_mb = static_cast<double>(corpus.wire_bytes()) / 1e6;
  for (const std::size_t shard_count : shard_counts) {
    const RowResult row = run_row(corpus, shard_count, want);
    all_ok = all_ok && row.digest_ok;
    best_frames_s = std::max(
        best_frames_s, static_cast<double>(corpus.frames()) / row.seconds);
    worst_p99_ms = std::max(worst_p99_ms, row.p99_ms);
    table.add_row({static_cast<double>(shard_count),
                   static_cast<double>(corpus.frames()), msites, wire_mb,
                   row.seconds,
                   static_cast<double>(corpus.frames()) / row.seconds,
                   msites / row.seconds, wire_mb / row.seconds, row.p99_ms,
                   std::string{row.digest_ok ? "match" : "MISMATCH"}});
  }
  bench::emit(table, "a18_ingest_throughput");

  // Full mode must demonstrate the paper-scale claim: >=1k stacks with
  // >=1M sites in flight per scan, merged exactly.
  const bool scale_ok = smoke || (stacks >= 1024 && stacks * sites >= 1'000'000);
  std::printf("acceptance: digest %s, scale %s\n",
              all_ok ? "ok" : "FAILED", scale_ok ? "ok" : "FAILED");
  bench::emit_json(
      bench::json_out_dir(argc, argv), "a18_ingest_throughput",
      {{"digest_match", all_ok ? 1.0 : 0.0, "bool", 1.0, all_ok},
       {"frames_per_second", best_frames_s, "frames/s", 0.0, true},
       {"e2e_p99", worst_p99_ms, "ms", 0.0, true}});
  return (all_ok && scale_ok) ? 0 : 1;
}
