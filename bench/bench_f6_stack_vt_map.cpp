// F6 [R]: Stack Vt-scatter map — the "thermal stress and Vt scatter"
// challenge from the paper's opening sentence, made visible: each die of a
// 4-die stack carries D2D + within-die variation plus TSV-stress shifts that
// grow with die thinning; the sensor network's latched process estimates are
// compared to the ground-truth deviations, per site.
#include <iostream>

#include "bench_util.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"
#include "thermal/network.hpp"

using namespace tsvpt;

int main() {
  bench::banner("F6", "stack Vt scatter: sensed vs true dVt per site");
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{stack};
  network.set_temperatures(network.steady_state());  // ambient power-on

  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(stack, 3, 3);
  std::vector<process::Point> per_die_points;
  for (std::size_t i = 0; i < 9; ++i) per_die_points.push_back(sites[i].location);

  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    per_die_points};
  Rng rng{808};
  for (std::size_t d = 0; d < stack.die_count(); ++d) {
    process::TsvStressField stress{stack.tsv.centers, process::TsvStressParams{},
                                   1.0 + 0.25 * static_cast<double>(d)};
    variation.set_tsv_stress(stress);
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 9; ++i) {
      sites[d * 9 + i].vt_delta = die.at(i);
    }
  }

  core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites, 909};
  monitor.calibrate_all(&rng);
  const auto map = monitor.process_map();

  Table table{"F6 per-site Vt map (mV): true vs sensed"};
  table.add_column("die", 0);
  table.add_column("x_mm", 2);
  table.add_column("y_mm", 2);
  table.add_column("dVtn_true", 2);
  table.add_column("dVtn_hat", 2);
  table.add_column("dVtp_true", 2);
  table.add_column("dVtp_hat", 2);
  Samples err_n;
  Samples err_p;
  Samples spread_per_die;
  for (const auto& r : map) {
    table.add_row({static_cast<long long>(r.die), r.location.x * 1e3,
                   r.location.y * 1e3, r.dvtn_true.value() * 1e3,
                   r.dvtn_hat.value() * 1e3, r.dvtp_true.value() * 1e3,
                   r.dvtp_hat.value() * 1e3});
    err_n.add((r.dvtn_hat.value() - r.dvtn_true.value()) * 1e3);
    err_p.add((r.dvtp_hat.value() - r.dvtp_true.value()) * 1e3);
  }
  bench::emit(table, "f6_map");

  // Die-to-die scatter the stack integrator must contend with.
  Table per_die{"F6 per-die summary (mV)"};
  per_die.add_column("die", 0);
  per_die.add_column("mean_dVtn_true", 2);
  per_die.add_column("mean_dVtn_hat", 2);
  per_die.add_column("stress_floor(min |dVtn_true|)", 2);
  for (std::size_t d = 0; d < 4; ++d) {
    Samples truth;
    Samples sensed;
    double min_abs = 1e30;
    for (const auto& r : map) {
      if (r.die != d) continue;
      truth.add(r.dvtn_true.value() * 1e3);
      sensed.add(r.dvtn_hat.value() * 1e3);
      min_abs = std::min(min_abs, std::abs(r.dvtn_true.value() * 1e3));
    }
    per_die.add_row({static_cast<long long>(d), truth.mean(), sensed.mean(),
                     min_abs});
    spread_per_die.add(truth.mean());
  }
  bench::emit(per_die, "f6_per_die");

  std::cout << "Extraction error: dVtn 3sigma = " << err_n.three_sigma()
            << " mV (max " << err_n.max_abs() << "), dVtp 3sigma = "
            << err_p.three_sigma() << " mV (max " << err_p.max_abs()
            << ").\n";
  std::cout << "Die-mean dVtn spread across the stack: "
            << spread_per_die.max() - spread_per_die.min() << " mV.\n";
  std::cout << "Shape check: per-die means scatter by tens of mV (D2D + "
               "stress) while the\nsensor map reproduces each site within "
               "~1-2 mV — the map is usable for binning\nand stress "
               "monitoring.\n";
  return 0;
}
