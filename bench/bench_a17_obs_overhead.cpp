// A17 [R]: self-observability overhead on the fleet sampling hot path.
//
// The observability layer's contract is "cheap enough to leave on": every
// frame pays a handful of relaxed atomic ops (counters), four histogram
// observations, and four flight-recorder span publishes.  This bench prices
// that contract: the same deterministic fleet runs with observability fully
// enabled and fully disabled, interleaved A/B/A/B so thermal drift and
// frequency scaling hit both sides equally, taking the best wall time per
// side (the standard best-of-N noise filter for throughput gates).
//
// Gate: enabled throughput must be within 5% of disabled throughput
// (--smoke loosens to 25% and shrinks the fleet for sanitizer/CI runners,
// where scheduling noise dwarfs the real cost).  Exit 1 on a miss, so CI
// fails when someone adds a hot-path span that is not actually cheap.
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ptsim/table.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace {

using namespace tsvpt;

/// One full fleet run; returns sampler wall time in seconds.
double run_fleet(std::size_t stacks, std::size_t scans) {
  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = stacks;
  cfg.thread_count = 4;
  cfg.scans_per_stack = scans;
  cfg.ring_capacity = 1024;
  cfg.seed = 13;

  telemetry::FleetSampler sampler{cfg};
  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();
  return sampler.elapsed().value();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t stacks = smoke ? 4 : 12;
  const std::size_t scans = smoke ? 12 : 40;
  const int reps = smoke ? 3 : 5;
  const double gate = smoke ? 0.25 : 0.05;

  bench::banner("A17", "self-observability overhead on fleet sampling");
  std::printf("hardware threads: %u, mode: %s\n\n",
              std::thread::hardware_concurrency(),
              smoke ? "smoke" : "full");

  double best_on = 1e300;
  double best_off = 1e300;
  for (int r = 0; r < reps; ++r) {
    for (const bool enabled : {true, false}) {
      obs::set_enabled(enabled);
      obs::Registry::instance().reset_values();
      obs::FlightRecorder::instance().clear();
      const double elapsed = run_fleet(stacks, scans);
      (enabled ? best_on : best_off) =
          std::min(enabled ? best_on : best_off, elapsed);
    }
  }
  obs::set_enabled(true);

  const double frames =
      static_cast<double>(stacks) * static_cast<double>(scans);
  const double tput_on = frames / best_on;
  const double tput_off = frames / best_off;
  const double overhead = tput_off / tput_on - 1.0;

  Table table{"best-of-" + std::to_string(reps) + ", " +
              std::to_string(stacks) + " stacks x " + std::to_string(scans) +
              " scans, 4 workers, 16 sites/stack"};
  table.add_column("obs", 0);
  table.add_column("wall s", 4);
  table.add_column("frames/s", 1);
  table.add_row({1.0, best_on, tput_on});
  table.add_row({0.0, best_off, tput_off});
  bench::emit(table, "a17_obs_overhead");
  bench::emit_json(
      bench::json_out_dir(argc, argv), "a17_obs_overhead",
      {{"overhead_ratio", overhead, "ratio", gate, overhead <= gate},
       {"frames_per_second_on", tput_on, "frames/s", 0.0, true},
       {"frames_per_second_off", tput_off, "frames/s", 0.0, true}});

  std::printf("overhead: %.2f%% (gate %.0f%%)\n", overhead * 100.0,
              gate * 100.0);
  if (overhead > gate) {
    std::fprintf(stderr,
                 "A17 FAIL: observability costs %.2f%% of sampler "
                 "throughput (gate %.0f%%)\n",
                 overhead * 100.0, gate * 100.0);
    return 1;
  }
  return 0;
}
