// A20 [R/extension]: Closed-loop DTM policy evaluation.  Four control
// policies (static worst-case, per-die DVFS, reactive gating, inter-die
// migration) run the same fixed work budget on a runaway-prone stack
// (weak sink + leakage feedback), scored on total energy, peak true
// temperature and ceiling-violation time.  A second scenario kills every
// sensor on the hot die mid-run under health supervision, checking the
// policies degrade to worst-case-safe levels instead of actuating on dead
// readings.  A third run drives a whole fleet controller-in-the-loop
// through a chaos campaign at several worker counts and requires the
// per-stack control outcome to be byte-identical.
//
// Gates (all enforced in --smoke too, at reduced scale):
//   * dvfs and migration beat the static baseline on energy with
//     equal-or-fewer violation-seconds (race-to-idle: the static run pays
//     the plant's unscalable floor and leakage for twice as long);
//   * the sensor-loss runs stay within the static baseline's violation
//     time and actually exercise the blind fallback;
//   * canonical control digests are identical across thread counts.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "control/controller.hpp"
#include "control/eval.hpp"
#include "core/stack_monitor.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "process/variation.hpp"
#include "telemetry/fleet_sampler.hpp"
#include "thermal/leakage.hpp"
#include "thermal/workload.hpp"

using namespace tsvpt;

namespace {

thermal::StackConfig weak_sink_stack() {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  cfg.sink_resistance = 2.5;  // a passively cooled / molded package
  return cfg;
}

constexpr std::size_t kHotDie = 3;  // top die: three bond layers from sink

void attach_leakage(thermal::ThermalNetwork& net) {
  const device::Technology tech = device::Technology::tsmc65_like();
  const auto cells = static_cast<double>(
      net.config().dies[0].nx * net.config().dies[0].ny);
  for (std::size_t d = 0; d < net.config().die_count(); ++d) {
    net.set_leakage_power(
        d, thermal::leakage_source(tech, Volt{1.0}, Watt{0.10 / cells},
                                   Kelvin{318.15}));  // ref: 45 degC
  }
}

/// Hot logic die on top of the stack (every bond layer between it and the
/// sink) plus idle floors below: the uncontrolled map that runs away on
/// the weak-sink stack, with a real inter-die gradient for the policies to
/// act on.
thermal::Workload hot_workload(Watt peak) {
  thermal::WorkloadPhase hot;
  hot.name = "hot";
  hot.duration = Second{10.0};
  hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, kHotDie,
                            peak, {}, Meter{0.0}});
  for (std::size_t d = 0; d < kHotDie; ++d) {
    hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, d,
                              Watt{0.5}, {}, Meter{0.0}});
  }
  return thermal::Workload{{hot}};
}

std::vector<core::SensorSite> make_sites(const thermal::StackConfig& cfg,
                                         std::uint64_t seed) {
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(cfg, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    points};
  Rng rng{seed};
  for (std::size_t d = 0; d < cfg.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) sites[d * 4 + i].vt_delta = die.at(i);
  }
  return sites;
}

control::Controller::Config controller_config(control::PolicyKind kind) {
  control::Controller::Config cfg;
  cfg.kind = kind;
  cfg.policy.ceiling = Celsius{59.0};
  cfg.policy.floor = Celsius{54.0};
  cfg.policy.gate_on = Celsius{59.0};
  cfg.policy.gate_off = Celsius{54.0};
  cfg.policy.migrate_trip = Celsius{56.0};
  cfg.policy.migrate_margin_c = 2.0;
  cfg.policy.migrate_step = 0.1;
  cfg.policy.migrate_cap = 0.6;
  cfg.policy.migrate_cooldown_scans = 4;
  cfg.violation_ceiling = Celsius{65.0};
  // Clock-tree/IO-heavy dies: half the dynamic power rides through a DVFS
  // step.  This is what makes parking at the bottom rung energy-expensive
  // per unit of work and gives race-to-idle its bite.
  cfg.plant.unscalable_fraction = 0.5;
  return cfg;
}

constexpr control::PolicyKind kAllPolicies[] = {
    control::PolicyKind::kStaticWorstCase, control::PolicyKind::kDvfsLadder,
    control::PolicyKind::kReactiveGating, control::PolicyKind::kMigration};

struct ScenarioRun {
  control::PolicyKind kind;
  control::EvalResult result;
};

std::vector<ScenarioRun> run_scenario(const control::EvalConfig& eval,
                                      Watt peak) {
  std::vector<ScenarioRun> runs;
  for (const control::PolicyKind kind : kAllPolicies) {
    const thermal::StackConfig stack = weak_sink_stack();
    thermal::ThermalNetwork network{stack};
    attach_leakage(network);
    network.set_runaway_limit(Kelvin{2000.0});
    const thermal::Workload workload = hot_workload(peak);
    std::vector<core::SensorSite> sites = make_sites(stack, 818181);
    core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites,
                               929292};
    control::Controller controller{controller_config(kind),
                                   stack.die_count()};
    runs.push_back(
        {kind, run_closed_loop(network, workload, monitor, controller, eval,
                               515)});
  }
  return runs;
}

void emit_scenario(const std::vector<ScenarioRun>& runs,
                   const std::string& title, const std::string& csv) {
  Table table{title};
  table.add_column("policy");
  table.add_column("energy_J", 3);
  table.add_column("peak_degC", 2);
  table.add_column("violation_s", 4);
  table.add_column("duration_s", 3);
  table.add_column("done");
  table.add_column("actuations", 0);
  table.add_column("migrations", 0);
  table.add_column("blind_scans", 0);
  for (const ScenarioRun& run : runs) {
    const control::Controller::Stats& s = run.result.stats;
    table.add_row({std::string{control::to_string(run.kind)}, s.energy_j,
                   s.peak_true_c, s.violation_s, run.result.duration.value(),
                   run.result.completed ? std::string{"yes"}
                                        : std::string{"no"},
                   static_cast<long long>(s.actuations),
                   static_cast<long long>(s.migrations),
                   static_cast<long long>(s.blind_scans)});
  }
  bench::emit(table, csv);
}

const control::EvalResult& result_of(const std::vector<ScenarioRun>& runs,
                                     control::PolicyKind kind) {
  for (const ScenarioRun& run : runs) {
    if (run.kind == kind) return run.result;
  }
  throw std::logic_error{"policy missing from scenario"};
}

/// Fleet chaos campaign (sensor-only kinds): dead windows on a couple of
/// stacks' hot-die sites plus a stuck oscillator and a droop excursion.
inject::FaultPlan chaos_plan(std::size_t stacks, std::uint64_t scans) {
  inject::FaultPlan plan;
  const std::uint64_t mid = scans / 3;
  for (std::size_t k = 0; k < stacks; k += 2) {
    for (std::size_t site = 0; site < 4; ++site) {
      plan.add({inject::FaultKind::kDeadRo, k, site, mid, scans, 0.0});
    }
  }
  plan.add({inject::FaultKind::kStuckRo, 1, 5, mid / 2, scans, 80.0});
  plan.add({inject::FaultKind::kSupplyDroop, 1, 9, mid, 2 * mid, 0.08});
  return plan;
}

std::string fleet_digest(std::size_t threads, std::size_t stacks,
                         std::size_t scans) {
  control::ControlPlane::Config plane_cfg;
  plane_cfg.controller = controller_config(control::PolicyKind::kDvfsLadder);
  plane_cfg.controller.policy.ceiling = Celsius{50.0};
  plane_cfg.controller.policy.floor = Celsius{44.0};
  plane_cfg.controller.violation_ceiling = Celsius{55.0};
  plane_cfg.stack_count = stacks;
  plane_cfg.die_count = 4;
  control::ControlPlane plane{plane_cfg};

  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = stacks;
  cfg.thread_count = threads;
  cfg.scans_per_stack = scans;
  cfg.peak_power = Watt{8.0};
  cfg.seed = 4242;
  cfg.supervise = true;
  cfg.control = &plane;
  telemetry::FleetSampler sampler{cfg};
  inject::ChaosInjector injector{chaos_plan(stacks, scans), &sampler};
  sampler.set_interceptor(&injector);
  sampler.run();
  return control::canonical_digest(plane);
}

int fail(const std::string& reason) {
  std::cout << "\nFAIL: " << reason << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::banner("A20", smoke ? "closed-loop DTM policy scoreboard (smoke)"
                             : "closed-loop DTM policy scoreboard");

  const Watt peak{10.0};
  control::EvalConfig eval;
  eval.sample_period = Second{2e-3};
  eval.thermal_step = Second{1e-3};
  eval.work_budget = smoke ? 1.0 : 4.8;
  eval.max_duration = Second{smoke ? 0.8 : 3.5};

  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
  }
  if (trace) {
    eval.on_scan = [](std::uint64_t scan,
                      const std::vector<core::StackMonitor::SiteReading>& readings,
                      const control::Actuation& act) {
      if (scan % 25 != 0) return;
      double sensed[4] = {-300, -300, -300, -300};
      for (const core::StackMonitor::SiteReading& r : readings) {
        if (!r.degraded && r.die < 4)
          sensed[r.die] = std::max(sensed[r.die], r.sensed.value());
      }
      std::printf("scan %5llu  sensed %6.2f %6.2f %6.2f %6.2f  levels",
                  static_cast<unsigned long long>(scan), sensed[0], sensed[1],
                  sensed[2], sensed[3]);
      for (const control::DieCommand& c : act.dies)
        std::printf(" %zu%s", c.level, c.gated ? "g" : "");
      std::printf("\n");
    };
  }

  // -- Scenario 1: runaway containment under a fixed work budget ----------
  const std::vector<ScenarioRun> runaway = run_scenario(eval, peak);
  emit_scenario(runaway,
                "A20 runaway containment (weak sink + leakage, fixed work)",
                "a20_runaway");

  // -- Scenario 2: sensor loss under supervision --------------------------
  control::EvalConfig loss = eval;
  loss.supervise = true;
  const std::uint64_t blind_at = smoke ? 20 : 60;
  for (std::size_t site = 0; site < 4; ++site) {  // the hot die goes dark
    loss.outages.push_back({kHotDie * 4 + site, blind_at, 1'000'000});
  }
  const std::vector<ScenarioRun> loss_runs = run_scenario(loss, peak);
  emit_scenario(loss_runs,
                "A20 sensor loss on the hot die (supervised, die 0 dark)",
                "a20_sensor_loss");

  // -- Scenario 3: thread-count invariance under chaos --------------------
  const std::size_t stacks = smoke ? 4 : 8;
  const std::size_t scans = smoke ? 40 : 120;
  std::vector<std::size_t> thread_counts{1, 2};
  if (!smoke) thread_counts.push_back(8);
  std::vector<std::string> digests;
  Table det{"A20 control determinism across worker counts (chaos campaign)"};
  det.add_column("threads", 0);
  det.add_column("digest_bytes", 0);
  det.add_column("matches_1_thread");
  for (const std::size_t threads : thread_counts) {
    digests.push_back(fleet_digest(threads, stacks, scans));
    det.add_row({static_cast<long long>(threads),
                 static_cast<long long>(digests.back().size()),
                 digests.back() == digests.front() ? std::string{"yes"}
                                                   : std::string{"NO"}});
  }
  bench::emit(det, "a20_determinism");

  // -- Gates --------------------------------------------------------------
  const auto& stat = result_of(runaway, control::PolicyKind::kStaticWorstCase);
  const auto& dvfs = result_of(runaway, control::PolicyKind::kDvfsLadder);
  const auto& mig = result_of(runaway, control::PolicyKind::kMigration);
  if (!stat.completed || !dvfs.completed || !mig.completed) {
    return fail("a policy did not finish the work budget in time");
  }
  constexpr double kEps = 1e-9;
  if (!(dvfs.stats.energy_j < stat.stats.energy_j &&
        dvfs.stats.violation_s <= stat.stats.violation_s + kEps)) {
    return fail("dvfs must beat static on energy at <= violations");
  }
  if (!(mig.stats.energy_j < stat.stats.energy_j &&
        mig.stats.violation_s <= stat.stats.violation_s + kEps)) {
    return fail("migration must beat static on energy at <= violations");
  }
  const auto& loss_static =
      result_of(loss_runs, control::PolicyKind::kStaticWorstCase);
  for (const control::PolicyKind kind :
       {control::PolicyKind::kDvfsLadder, control::PolicyKind::kMigration,
        control::PolicyKind::kReactiveGating}) {
    const auto& run = result_of(loss_runs, kind);
    if (run.stats.violation_s > loss_static.stats.violation_s + kEps) {
      return fail(std::string{control::to_string(kind)} +
                  ": sensor loss must not cost violation time");
    }
    if (run.stats.blind_scans == 0) {
      return fail(std::string{control::to_string(kind)} +
                  ": blind fallback never engaged");
    }
  }
  for (const std::string& digest : digests) {
    if (digest != digests.front()) {
      return fail("control outcome varies with thread count");
    }
  }

  std::cout << "Shape check: the static baseline is safe but stretches the "
               "run out, paying the\nunscalable power floor and leakage the "
               "whole time; the adaptive policies finish\nthe same work "
               "sooner and cheaper at zero violation cost, and a dark die "
               "degrades\nto the worst-case rung instead of acting on dead "
               "readings.\n";
  return 0;
}
