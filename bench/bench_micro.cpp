// Microbenchmarks (google-benchmark): computational cost of the simulator's
// hot paths.  These are not paper artifacts; they document that the
// behavioral models are cheap enough for million-die Monte Carlo and
// real-time-scale thermal co-simulation.
#include <benchmark/benchmark.h>

#include "calib/linalg.hpp"
#include "circuit/ring_oscillator.hpp"
#include "core/pt_sensor.hpp"
#include "process/variation.hpp"
#include "thermal/network.hpp"

namespace {

using namespace tsvpt;

void BM_RoFrequency(benchmark::State& state) {
  const device::Technology tech = device::Technology::tsmc65_like();
  const auto ro = circuit::RingOscillator::make(
      tech, circuit::RoTopology::kThermal);
  circuit::OperatingPoint op;
  op.vdd = Volt{1.0};
  op.temperature = Kelvin{330.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ro.frequency(op));
  }
}
BENCHMARK(BM_RoFrequency);

void BM_SelfCalibrate(benchmark::State& state) {
  core::PtSensor sensor{core::PtSensor::Config{}, 1};
  core::DieEnvironment env;
  env.temperature = Kelvin{330.0};
  env.vt_delta = {millivolts(15.0), millivolts(-10.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.self_calibrate(env, nullptr));
  }
}
BENCHMARK(BM_SelfCalibrate);

void BM_TrackingRead(benchmark::State& state) {
  core::PtSensor sensor{core::PtSensor::Config{}, 1};
  core::DieEnvironment env;
  env.temperature = Kelvin{330.0};
  (void)sensor.self_calibrate(env, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.read(env, nullptr));
  }
}
BENCHMARK(BM_TrackingRead);

void BM_ThermalSteadyState(benchmark::State& state) {
  thermal::ThermalNetwork net{thermal::StackConfig::four_die_stack()};
  net.set_uniform_power(0, Watt{2.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.steady_state());
  }
}
BENCHMARK(BM_ThermalSteadyState);

void BM_ThermalTransientMillisecond(benchmark::State& state) {
  thermal::ThermalNetwork net{thermal::StackConfig::four_die_stack()};
  net.set_uniform_power(0, Watt{2.0});
  net.set_temperatures(net.steady_state());
  for (auto _ : state) {
    net.step(Second{1e-3});
    benchmark::DoNotOptimize(net.temperatures());
  }
}
BENCHMARK(BM_ThermalTransientMillisecond);

void BM_SpatialFieldSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({1e-4 * static_cast<double>(i % 10),
                      1e-4 * static_cast<double>(i / 10)});
  }
  const process::SpatialField field{points, 8e-3, 1e-3};
  Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.sample(rng));
  }
}
BENCHMARK(BM_SpatialFieldSample)->Arg(9)->Arg(36)->Arg(100);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{2};
  calib::Matrix a{n, n};
  calib::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
    a(i, i) += 4.0;
    b[i] = rng.gaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(calib::lu_solve(a, b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(3)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
