// A9 [R/extension]: Full-field reconstruction from sparse sensors.  The
// monitor senses a handful of points; the field estimator interpolates the
// rest of the die.  Sweeps sensor density against the worst-case and RMS
// reconstruction error of the die-0 temperature map under an off-center
// hotspot — the practical question behind "how many sensors do I place?".
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/field_estimator.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("A9", "thermal-field reconstruction vs sensor density");
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();

  // Average over random hotspot positions: a single hotspot rewards grids
  // that happen to align with it, which says nothing about density.
  constexpr std::size_t kHotspots = 15;

  Table table{"A9 die-0 field reconstruction error over " +
              std::to_string(kHotspots) + " random hotspots (degC)"};
  table.add_column("grid/die");
  table.add_column("mean_max_err", 2);
  table.add_column("worst_max_err", 2);
  table.add_column("mean_rms_err", 2);
  for (std::size_t grid : {1, 2, 3, 4}) {
    Samples max_errors;
    Samples rms_errors;
    Rng hotspot_rng{424242};  // same hotspot sequence for every grid
    for (std::size_t h = 0; h < kHotspots; ++h) {
      const process::Point hotspot{
          hotspot_rng.uniform(0.5e-3, 4.5e-3),
          hotspot_rng.uniform(0.5e-3, 4.5e-3)};
      thermal::ThermalNetwork network{stack};
      network.add_hotspot(0, hotspot, Meter{0.6e-3}, Watt{4.0});
      network.set_uniform_power(1, Watt{0.4});
      network.set_temperatures(network.steady_state());

      std::vector<core::SensorSite> sites =
          core::StackMonitor::uniform_sites(stack, grid, grid);
      std::vector<process::Point> points;
      for (std::size_t i = 0; i < grid * grid; ++i) {
        points.push_back(sites[i].location);
      }
      process::VariationModel variation{device::Technology::tsmc65_like(),
                                        points};
      Rng rng{derive_seed(4000 + grid, h)};
      for (std::size_t d = 0; d < stack.die_count(); ++d) {
        const process::DieVariation die = variation.sample_die(rng);
        for (std::size_t i = 0; i < grid * grid; ++i) {
          sites[d * grid * grid + i].vt_delta = die.at(i);
        }
      }
      core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites,
                                 derive_seed(5000 + grid, h)};
      monitor.calibrate_all(&rng);
      const auto sample = monitor.sample_all(&rng);

      const core::FieldEstimator estimator;
      const auto field = estimator.reconstruct(network, 0, sample);
      const thermal::DieGeometry& geom = stack.dies[0];
      double rms = 0.0;
      for (std::size_t iy = 0; iy < geom.ny; ++iy) {
        for (std::size_t ix = 0; ix < geom.nx; ++ix) {
          const double truth =
              to_celsius(network.temperature_at(0, ix, iy)).value();
          const double err = field[iy * geom.nx + ix] - truth;
          rms += err * err;
        }
      }
      rms_errors.add(
          std::sqrt(rms / static_cast<double>(geom.nx * geom.ny)));
      max_errors.add(estimator.max_error(network, 0, sample));
    }
    table.add_row({std::to_string(grid) + "x" + std::to_string(grid),
                   max_errors.mean(), max_errors.max(), rms_errors.mean()});
  }
  bench::emit(table, "a9_field");

  std::cout << "Shape check: averaged over hotspot positions, both RMS and "
               "worst-case\nreconstruction error fall monotonically with "
               "sensor density — but with a long\nalignment tail (a hotspot "
               "centered between sensors is underestimated at any\npractical "
               "density).  Matches the A3 placement conclusion from the "
               "field side.\n";
  return 0;
}
