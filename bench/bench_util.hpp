// Shared helpers for the experiment-reproduction binaries.
//
// Every bench regenerates one table/figure from DESIGN.md's evaluation
// index: it prints an aligned ASCII table to stdout and, when TSVPT_CSV_DIR
// is set, writes the same rows as CSV for plotting.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/die_environment.hpp"
#include "ptsim/table.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::bench {

/// Print a table and optionally persist it as CSV.
inline void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  std::cout << '\n';
  if (const char* dir = std::getenv("TSVPT_CSV_DIR")) {
    table.write_csv(std::string{dir} + "/" + csv_name + ".csv");
  }
}

/// A clean environment at the given temperature with the given deviation.
inline core::DieEnvironment env_at(double t_celsius, Volt dvtn = Volt{0.0},
                                   Volt dvtp = Volt{0.0}) {
  core::DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  env.vt_delta = {dvtn, dvtp};
  return env;
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "#\n# " << id << ": " << title << "\n#\n";
}

}  // namespace tsvpt::bench
