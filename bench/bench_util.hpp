// Shared helpers for the experiment-reproduction binaries.
//
// Every bench regenerates one table/figure from DESIGN.md's evaluation
// index: it prints an aligned ASCII table to stdout and, when TSVPT_CSV_DIR
// is set, writes the same rows as CSV for plotting.  Benches with an
// acceptance gate additionally accept --json-out[=DIR] and drop a
// machine-readable BENCH_<id>.json (metric/value/unit/threshold/pass per
// gated quantity) so CI trend tracking does not have to scrape tables.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/die_environment.hpp"
#include "ptsim/table.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::bench {

/// Print a table and optionally persist it as CSV.
inline void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  std::cout << '\n';
  if (const char* dir = std::getenv("TSVPT_CSV_DIR")) {
    table.write_csv(std::string{dir} + "/" + csv_name + ".csv");
  }
}

/// A clean environment at the given temperature with the given deviation.
inline core::DieEnvironment env_at(double t_celsius, Volt dvtn = Volt{0.0},
                                   Volt dvtp = Volt{0.0}) {
  core::DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  env.vt_delta = {dvtn, dvtp};
  return env;
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "#\n# " << id << ": " << title << "\n#\n";
}

/// One gated measurement for machine consumption (BENCH_<id>.json row).
struct JsonMetric {
  std::string metric;  // e.g. "overhead_ratio"
  double value = 0.0;
  std::string unit;       // e.g. "ratio", "frames/s", "ms"
  double threshold = 0.0;  // the acceptance bound value was compared against
  bool pass = true;
};

/// Scan a bench's argv for --json-out[=DIR]; empty string = flag absent
/// (bare --json-out writes to the current directory).
[[nodiscard]] inline std::string json_out_dir(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) return ".";
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) return argv[i] + 11;
  }
  return {};
}

/// Write BENCH_<id>.json to `dir` (no-op when dir is empty).
inline void emit_json(const std::string& dir, const std::string& id,
                      const std::vector<JsonMetric>& metrics) {
  if (dir.empty()) return;
  std::ofstream out{dir + "/BENCH_" + id + ".json"};
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n  \"name\": \"" << id << "\",\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const JsonMetric& m = metrics[i];
    out << "    {\"metric\": \"" << m.metric << "\", \"value\": " << m.value
        << ", \"unit\": \"" << m.unit << "\", \"threshold\": " << m.threshold
        << ", \"pass\": " << (m.pass ? "true" : "false") << "}"
        << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace tsvpt::bench
