// A4 [R]: Supply-sensitivity ablation (bridge to the group's 2013 PVT
// follow-on).  IR droop that the solver does not know about aliases into
// (dVt, T); the 4-RO supply-compensated mode solves for VDD as a fourth
// unknown.  Sweeps static droop and random rail noise for both modes.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

namespace {

struct ModeResult {
  double t_err = 0.0;       // degC, droop sweep (deterministic)
  double dvtn_err_mv = 0.0; // mV
};

ModeResult run_droop(bool compensate, double droop_mv) {
  core::PtSensor::Config cfg;
  cfg.compensate_supply = compensate;
  core::PtSensor sensor{cfg, 4040};
  core::DieEnvironment env = bench::env_at(55.0, millivolts(10.0),
                                           millivolts(-8.0));
  env.supply = circuit::SupplyRail{{Volt{1.0}, millivolts(droop_mv),
                                    Volt{0.0}}};
  const auto est = sensor.self_calibrate(env, nullptr);
  return {to_celsius(est.temperature).value() - 55.0,
          (est.dvtn.value() - 10e-3) * 1e3};
}

double run_noise(bool compensate, double noise_mv, std::uint64_t seed) {
  core::PtSensor::Config cfg;
  cfg.compensate_supply = compensate;
  core::PtSensor sensor{cfg, seed};
  core::DieEnvironment env = bench::env_at(55.0);
  env.supply = circuit::SupplyRail{{Volt{1.0}, Volt{0.0},
                                    millivolts(noise_mv)}};
  Rng rng{seed * 13 + 7};
  (void)sensor.self_calibrate(env, &rng);
  Samples err;
  for (int i = 0; i < 40; ++i) {
    const auto reading = sensor.read(env, &rng);
    err.add(reading.temperature.value() - 55.0);
  }
  return err.three_sigma();
}

}  // namespace

int main() {
  bench::banner("A4", "supply droop/noise vs accuracy, plain vs compensated");

  Table droop{"A4 static IR droop (deterministic)"};
  droop.add_column("droop_mV", 0);
  droop.add_column("plain_T_err_degC", 2);
  droop.add_column("plain_dVtn_err_mV", 2);
  droop.add_column("comp_T_err_degC", 2);
  droop.add_column("comp_dVtn_err_mV", 2);
  for (double d : {0.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
    const ModeResult plain = run_droop(false, d);
    const ModeResult comp = run_droop(true, d);
    droop.add_row({d, plain.t_err, plain.dvtn_err_mv, comp.t_err,
                   comp.dvtn_err_mv});
  }
  bench::emit(droop, "a4_droop");

  Table noise{"A4 random rail noise (3sigma tracking error, degC)"};
  noise.add_column("noise_rms_mV", 1);
  noise.add_column("plain", 3);
  noise.add_column("compensated", 3);
  for (double n : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    noise.add_row({n, run_noise(false, n, 11), run_noise(true, n, 11)});
  }
  bench::emit(noise, "a4_noise");

  std::cout << "Shape check: plain-mode error grows ~linearly with both "
               "droop and rail noise\n(~0.3 degC and ~0.6 mV per mV); the "
               "compensated mode holds both nearly flat\n(~0.8 degC floor "
               "from the monitor's own gain/offset error) by sampling the\n"
               "rail during the conversion and evaluating the model at the "
               "measured voltage.\n";
  return 0;
}
