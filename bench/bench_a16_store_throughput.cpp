// A16 [R]: telemetry historian ingest throughput and compression ratio.
//
// The historian's two costs are write bandwidth and disk footprint; its
// lever is the block size (frames batched into one compressed unit).  Each
// row records the same deterministic fleet capture (8 stacks x 60 scans,
// 16 sites each) through a StoreWriter configured with a different
// block_frames, then reopens the store and reports ingest rate, bytes on
// disk vs raw wire bytes, the resulting compression ratio, and block count.
//
// Expectation: compression improves with block size (more delta frames per
// key frame) and saturates once the per-block key-frame cost is amortized
// — the default (64) must clear the 3x acceptance bar; tiny blocks (8) pay
// one key frame per stack every 8 frames and land well below the plateau.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "ptsim/table.hpp"
#include "store/store.hpp"
#include "telemetry/fleet_sampler.hpp"

int main() {
  using namespace tsvpt;

  bench::banner("A16", "historian ingest throughput vs block size");

  const std::string base =
      (std::filesystem::temp_directory_path() / "tsvpt_bench_a16").string();
  std::filesystem::remove_all(base);

  Table table{"8 stacks x 60 scans, 2x2 sites/die; segment roll at 4 MiB"};
  table.add_column("block frames", 0);
  table.add_column("frames", 0);
  table.add_column("ingest s", 4);
  table.add_column("frames/s", 0);
  table.add_column("raw KiB", 1);
  table.add_column("disk KiB", 1);
  table.add_column("ratio", 2);
  table.add_column("blocks", 0);

  bool default_meets_bar = true;
  for (const std::size_t block_frames : {8u, 32u, 64u, 256u}) {
    const std::string dir = base + "/b" + std::to_string(block_frames);

    // One deterministic capture per row: same seed, same frames, so only
    // the store configuration varies.
    telemetry::FleetSampler::Config cfg;
    cfg.stack_count = 8;
    cfg.scans_per_stack = 60;
    cfg.ring_capacity = 1024;
    cfg.seed = 11;

    store::StoreOptions options;
    options.block_frames = block_frames;
    store::StoreWriter writer{dir, options};
    cfg.sink = &writer;

    telemetry::FleetSampler sampler{cfg};
    const auto t0 = std::chrono::steady_clock::now();
    sampler.run();
    writer.close();
    const double ingest_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const store::StoreReader reader{dir};
    const store::StoreStats stats = reader.stats();
    const double ratio = stats.compression_ratio();
    if (block_frames == 64 && ratio < 3.0) default_meets_bar = false;
    table.add_row({static_cast<double>(block_frames),
                   static_cast<double>(stats.frames), ingest_s,
                   static_cast<double>(stats.frames) / ingest_s,
                   static_cast<double>(stats.bytes_raw) / 1024.0,
                   static_cast<double>(stats.bytes_on_disk) / 1024.0, ratio,
                   static_cast<double>(stats.blocks)});
  }
  bench::emit(table, "a16_store_throughput");
  std::filesystem::remove_all(base);

  std::printf("default block size (64) compression >= 3x: %s\n",
              default_meets_bar ? "yes" : "NO");
  return default_meets_bar ? 0 : 1;
}
