// A12 [R/extension]: Fault-detection operating curve.  Sweeps the spatial
// detector's threshold against (a) detection rate for stuck-sensor faults
// of varying severity and (b) false-positive rate on healthy fleets running
// realistic gradients.  The useful operating region is where multi-degree
// faults are caught with near-zero false alarms.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/fault_detector.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;
using namespace tsvpt::core;

namespace {

struct Fleet {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  std::unique_ptr<thermal::ThermalNetwork> network;
  std::unique_ptr<StackMonitor> monitor;
  Rng rng;

  explicit Fleet(std::uint64_t seed) : rng(seed) {
    network = std::make_unique<thermal::ThermalNetwork>(cfg);
    std::vector<SensorSite> sites = StackMonitor::uniform_sites(cfg, 3, 3);
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < 9; ++i) points.push_back(sites[i].location);
    process::VariationModel variation{device::Technology::tsmc65_like(),
                                      points};
    for (std::size_t d = 0; d < cfg.die_count(); ++d) {
      const process::DieVariation die = variation.sample_die(rng);
      for (std::size_t i = 0; i < 9; ++i) {
        sites[d * 9 + i].vt_delta = die.at(i);
      }
    }
    // A realistic operating gradient: hotspot plus idle floors.
    network->add_hotspot(0, {rng.uniform(1e-3, 4e-3), rng.uniform(1e-3, 4e-3)},
                         Meter{1.2e-3}, Watt{rng.uniform(1.0, 3.0)});
    network->set_uniform_power(1, Watt{0.4});
    network->set_temperatures(network->steady_state());
    monitor = std::make_unique<StackMonitor>(network.get(),
                                             PtSensor::Config{}, sites,
                                             derive_seed(seed, 99));
    monitor->calibrate_all(&rng);
  }
};

}  // namespace

int main() {
  bench::banner("A12", "fault-detection threshold sweep");
  constexpr std::size_t kFleets = 30;

  Table table{"A12 detection vs false alarms (36-sensor fleets)"};
  table.add_column("threshold_degC", 1);
  table.add_column("FP_rate_%", 2);
  table.add_column("detect_+10degC_%", 1);
  table.add_column("detect_+20degC_%", 1);
  table.add_column("detect_+40degC_%", 1);

  for (double threshold : {4.0, 6.0, 8.0, 12.0, 16.0}) {
    const FaultDetector detector{
        FaultDetector::Config{Celsius{threshold}, 2.0}};

    // False positives on healthy fleets.
    std::size_t fp = 0;
    std::size_t healthy_readings = 0;
    for (std::size_t f = 0; f < kFleets; ++f) {
      Fleet fleet{derive_seed(111, f)};
      const auto sample = fleet.monitor->sample_all(&fleet.rng);
      fp += detector.suspects(sample).size();
      healthy_readings += sample.size();
    }

    // Detection of a stuck fault reading +X degC hot at a random site.
    auto detection_rate = [&](double fault_degC) {
      std::size_t detected = 0;
      for (std::size_t f = 0; f < kFleets; ++f) {
        Fleet fleet{derive_seed(222, f)};
        const auto victim_index = static_cast<std::size_t>(
            fleet.rng.uniform_int(0, 35));
        PtSensor& victim = fleet.monitor->sensor(victim_index);
        const auto truth =
            fleet.network->temperature_at(
                fleet.monitor->site(victim_index).die,
                fleet.monitor->site(victim_index).location);
        victim.inject_fault(
            RoRole::kTdro, RoFault::kStuck,
            victim.model_frequency(RoRole::kTdro, Volt{0.0}, Volt{0.0},
                                   truth + Kelvin{fault_degC}));
        const auto sample = fleet.monitor->sample_all(&fleet.rng);
        for (std::size_t s : detector.suspects(sample)) {
          if (s == victim_index) {
            ++detected;
            break;
          }
        }
      }
      return 100.0 * static_cast<double>(detected) /
             static_cast<double>(kFleets);
    };

    table.add_row({threshold,
                   100.0 * static_cast<double>(fp) /
                       static_cast<double>(healthy_readings),
                   detection_rate(10.0), detection_rate(20.0),
                   detection_rate(40.0)});
  }
  bench::emit(table, "a12_fault");

  std::cout << "Shape check: the classic trade — detection falls and false "
               "alarms vanish as\nthe threshold rises.  At 6-8 degC the "
               "false-alarm rate on hotspot-bearing\nhealthy fleets is zero "
               "while >=40 degC stuck faults are always localized and\n"
               "+20 degC ones mostly (interpolation attenuates the apparent "
               "deviation at\nsparsely-neighboured corner sites).  The "
               "temporal jump detector covers the\nremainder: any stuck "
               "fault jumps alone at onset regardless of magnitude.\n";
  return 0;
}
