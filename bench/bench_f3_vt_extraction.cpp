// F3 [R]: Vt-extraction accuracy — Monte-Carlo population of dies
// (die-to-die + within-die variation, independent sensor-instance mismatch),
// each self-calibrated once; reports the (dVtn, dVtp) estimation error
// distribution.  Paper headline: sensitivities of Vtn, Vtp are "merely
// +-1.6 mV, +-0.8 mV".
#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("F3", "Vt extraction error over a 2000-die Monte Carlo");
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  const process::MonteCarlo mc{20260704, 2000};

  Samples err_n;
  Samples err_p;
  Samples true_n;
  std::size_t non_converged = 0;
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{core::PtSensor::Config{},
                          derive_seed(9000, trial)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{rng.uniform(20.0, 80.0)});
    env.vt_delta = die.at(0);
    const auto est = sensor.self_calibrate(env, &rng);
    if (!est.converged) {
      ++non_converged;
      return;
    }
    err_n.add((est.dvtn.value() - die.at(0).nmos.value()) * 1e3);
    err_p.add((est.dvtp.value() - die.at(0).pmos.value()) * 1e3);
    true_n.add(die.at(0).nmos.value() * 1e3);
  });

  Table table{"F3 Vt extraction error statistics (mV)"};
  table.add_column("quantity");
  table.add_column("mean", 3);
  table.add_column("sigma", 3);
  table.add_column("3sigma", 3);
  table.add_column("max|err|", 3);
  table.add_column("p99|err|", 3);
  auto add = [&](const std::string& name, const Samples& s) {
    Samples abs_err;
    for (double v : s.values()) abs_err.add(std::abs(v));
    table.add_row({name, s.mean(), s.stddev(), s.three_sigma(), s.max_abs(),
                   abs_err.quantile(0.99)});
  };
  add("dVtn error", err_n);
  add("dVtp error", err_p);
  add("true dVtn spread (for scale)", true_n);
  bench::emit(table, "f3_stats");

  std::cout << "dVtn error histogram (mV):\n";
  Histogram hist_n{-2.5, 2.5, 25};
  for (double v : err_n.values()) hist_n.add(v);
  std::cout << hist_n.render() << '\n';

  std::cout << "Paper targets: +-1.6 mV (Vtn), +-0.8 mV (Vtp).  Measured "
               "3-sigma bounds above;\nnon-converged solves: "
            << non_converged << "/2000.\n";
  std::cout << "Shape check: errors are zero-mean, mV-scale — an order of "
               "magnitude below the\n+-36 mV (3-sigma D2D) spread being "
               "measured.\n";
  return 0;
}
