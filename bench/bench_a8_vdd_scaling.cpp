// A8 [R/extension]: Operation across supply voltages — the bridge to the
// group's 2013 follow-on ("Near-/Sub-Vth PVT sensors with dynamic voltage
// selection").  As VDD scales from 1.2 V toward threshold, the TDRO slows
// by orders of magnitude; with a *fixed* count window the quantization, and
// with it the temperature error, explodes.  Scaling the window to hold the
// count roughly constant ("dynamic selection" of the conversion setting)
// restores accuracy at an energy/latency cost — the insight the 2013 paper
// builds on.
#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

namespace {

struct ModeResult {
  double three_sigma = 0.0;
  double cal_energy_pj = 0.0;
  double window_us = 0.0;
};

ModeResult evaluate(double vdd, bool adaptive_window) {
  const device::Technology tech = device::Technology::tsmc65_like();
  core::PtSensor::Config cfg;
  cfg.model_vdd = Volt{vdd};

  // Nominal TDRO frequency at this VDD decides the adaptive window: hold
  // ~250 counts, clamped to the counter's practical range.
  {
    const core::PtSensor probe{cfg, 0};
    const double f_tdro =
        probe
            .model_frequency(core::RoRole::kTdro, Volt{0.0}, Volt{0.0},
                             to_kelvin(Celsius{25.0}))
            .value();
    const double window =
        adaptive_window ? std::clamp(250.0 / f_tdro, 2e-6, 400e-6) : 2e-6;
    cfg.counter.window = Second{window};
  }

  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  Samples errors;
  const process::MonteCarlo mc{787878, 80};
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{cfg, derive_seed(99, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.supply = circuit::SupplyRail{{Volt{vdd}, Volt{0.0}, Volt{0.0}}};
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    (void)sensor.self_calibrate(env, &rng);
    for (double t : {10.0, 50.0, 90.0}) {
      const auto reading = sensor.read(env.at_celsius(Celsius{t}), &rng);
      errors.add(reading.temperature.value() - t);
    }
  });

  const core::PtSensor probe{cfg, 1};
  return {errors.three_sigma(), probe.calibration_energy().value() * 1e12,
          cfg.counter.window.value() * 1e6};
}

}  // namespace

int main() {
  bench::banner("A8", "VDD scaling: fixed vs count-adaptive window");
  const device::Technology tech = device::Technology::tsmc65_like();

  Table table{"A8 accuracy & energy vs VDD"};
  table.add_column("VDD_V", 2);
  table.add_column("f_TDRO_MHz", 2);
  table.add_column("fixed_3sigma_degC", 2);
  table.add_column("adaptive_3sigma_degC", 2);
  table.add_column("adaptive_window_us", 1);
  table.add_column("adaptive_cal_pJ", 1);
  for (double vdd : {1.2, 1.0, 0.9, 0.8, 0.7, 0.6}) {
    core::PtSensor::Config probe_cfg;
    probe_cfg.model_vdd = Volt{vdd};
    const core::PtSensor probe{probe_cfg, 0};
    const double f_tdro =
        probe
            .model_frequency(core::RoRole::kTdro, Volt{0.0}, Volt{0.0},
                             to_kelvin(Celsius{25.0}))
            .value() /
        1e6;
    const ModeResult fixed = evaluate(vdd, false);
    const ModeResult adaptive = evaluate(vdd, true);
    table.add_row({vdd, f_tdro, fixed.three_sigma, adaptive.three_sigma,
                   adaptive.window_us, adaptive.cal_energy_pj});
  }
  bench::emit(table, "a8_vdd");

  std::cout << "Shape check: below ~0.8 V the TDRO frequency collapses and "
               "the fixed 2 us\nwindow leaves too few counts — error blows "
               "up (1.2 -> 30 degC); the\ncount-adaptive window holds "
               "accuracy near the mismatch floor down to 0.6 V.\nEnergy is "
               "U-shaped: CV^2 savings win down to ~1.0 V, then the long "
               "windows let\nthe static bias dominate — exactly the "
               "conversion-setting trade the 2013\nfollow-on's 'dynamic "
               "voltage selection' navigates.\n";
  return 0;
}
