// A5 [R/extension]: Lifetime drift and the recalibration policy.  BTI aging
// shifts the die's (and the sensor's own) thresholds over years of
// operation; a sensor that latched its process point at t=0 slowly goes
// stale.  Because the paper's self-calibration needs no tester, the policy
// question is simply how often to rerun it.  This bench measures:
//   * the temperature error a t=0-calibrated sensor accumulates over 10
//     years of 85 degC / full-duty stress, and
//   * the worst-case error as a function of recalibration interval.
#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "process/aging.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("A5", "BTI drift vs recalibration interval");
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  const process::AgingModel aging{};
  process::StressCondition stress;
  stress.temperature = to_kelvin(Celsius{85.0});
  stress.duty = 1.0;
  constexpr std::size_t kDies = 100;

  // Part 1: error growth with a single t=0 calibration.
  Table drift{"A5 temperature error growth, calibrate once at t=0"};
  drift.add_column("age_years", 2);
  drift.add_column("dVt_nbti_mV", 2);
  drift.add_column("err_mean_degC", 3);
  drift.add_column("err_3sigma_degC", 3);
  drift.add_column("err_max_degC", 3);
  const std::vector<double> ages{0.0, 0.5, 1.0, 2.0, 5.0, 10.0};
  std::vector<Samples> errors(ages.size());

  const process::MonteCarlo mc{515151, kDies};
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(77, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.temperature = to_kelvin(Celsius{30.0});
    (void)sensor.self_calibrate(env, &rng);  // t = 0 only
    for (std::size_t i = 0; i < ages.size(); ++i) {
      const device::VtDelta aged =
          die.at(0) + aging.shift(process::AgingModel::years(ages[i]),
                                  stress);
      core::DieEnvironment env_aged = env;
      env_aged.vt_delta = aged;
      for (double t : {25.0, 85.0}) {
        const auto reading =
            sensor.read(env_aged.at_celsius(Celsius{t}), &rng);
        errors[i].add(reading.temperature.value() - t);
      }
    }
  });
  for (std::size_t i = 0; i < ages.size(); ++i) {
    const device::VtDelta shift =
        aging.shift(process::AgingModel::years(ages[i]), stress);
    drift.add_row({ages[i], shift.pmos.value() * 1e3, errors[i].mean(),
                   errors[i].three_sigma(), errors[i].max_abs()});
  }
  bench::emit(drift, "a5_drift");

  // Part 2: recalibration *schedules*.  BTI is log-like — half the 10-year
  // shift lands in the first months — so fixed intervals waste recals late
  // and miss the early drift; log-spaced schedules match the physics.
  // Worst error is taken right before each recalibration (max staleness).
  struct Schedule {
    std::string name;
    std::vector<double> recal_years;  // times at which self_calibrate reruns
  };
  auto log_spaced = [](std::size_t count) {
    // From 1 hour to 10 years, geometrically.
    std::vector<double> times{0.0};
    const double first = 1.0 / (365.25 * 24.0);
    const double ratio =
        std::pow(10.0 / first, 1.0 / static_cast<double>(count - 1));
    double t = first;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      times.push_back(t);
      t *= ratio;
    }
    return times;
  };
  auto fixed_interval = [](double interval) {
    std::vector<double> times;
    for (double t = 0.0; t < 10.0 - 1e-9; t += interval) times.push_back(t);
    return times;
  };
  const std::vector<Schedule> schedules{
      {"once at t=0", {0.0}},
      {"fixed 1 year", fixed_interval(1.0)},
      {"fixed 3 months", fixed_interval(0.25)},
      {"log-spaced x8", log_spaced(8)},
      {"log-spaced x16", log_spaced(16)},
  };

  Table policy{"A5 worst staleness error vs recalibration schedule "
               "(10-year life)"};
  policy.add_column("schedule");
  policy.add_column("recals", 0);
  policy.add_column("worst_err_degC", 3);
  policy.add_column("recal_energy_uJ_per_life", 4);
  for (const Schedule& schedule : schedules) {
    Samples worst;
    const process::MonteCarlo mc2{626262, 60};
    mc2.run([&](std::size_t trial, Rng& rng) {
      const process::DieVariation die = variation.sample_die(rng);
      core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(88, trial)};
      for (std::size_t k = 0; k < schedule.recal_years.size(); ++k) {
        const double start = schedule.recal_years[k];
        const double end = k + 1 < schedule.recal_years.size()
                               ? schedule.recal_years[k + 1]
                               : 10.0;
        core::DieEnvironment env;
        env.vt_delta =
            die.at(0) +
            aging.shift(process::AgingModel::years(start), stress);
        env.temperature = to_kelvin(Celsius{40.0});
        (void)sensor.self_calibrate(env, &rng);
        core::DieEnvironment env_end;
        env_end.vt_delta =
            die.at(0) + aging.shift(process::AgingModel::years(end), stress);
        for (double t : {25.0, 85.0}) {
          const auto reading =
              sensor.read(env_end.at_celsius(Celsius{t}), &rng);
          worst.add(std::abs(reading.temperature.value() - t));
        }
      }
    });
    const core::PtSensor probe{core::PtSensor::Config{}, 1};
    policy.add_row({schedule.name,
                    static_cast<long long>(schedule.recal_years.size()),
                    worst.max(),
                    static_cast<double>(schedule.recal_years.size()) *
                        probe.calibration_energy().value() * 1e6});
  }
  bench::emit(policy, "a5_policy");

  std::cout << "Shape check: drift is log-like (half the 10-year shift lands "
               "in the first\nmonths), so fixed intervals are the wrong "
               "shape — 40 quarterly recals still\nleave >10 degC of "
               "first-window staleness, while 16 log-spaced recals cut the\n"
               "worst error to ~4 degC (and every doubling of the schedule "
               "density shaves it\nfurther toward the ~1.5 degC sensor "
               "floor) at a lifetime recalibration energy\nof ~6 nJ: the "
               "self-calibrated architecture turns aging from a spec-killer\n"
               "into a scheduling detail.\n";
  return 0;
}
