// A15 [R]: degraded-mode service — fleet throughput and temperature error
// with 0, 1 and 25% of the fleet's sensor sites knocked out.
//
// Dead oscillators are injected through the chaos seam for the whole run,
// so the HealthSupervisor quarantines the victims early and serves
// leave-one-out substitutes for the rest of the run.  Each row reports wall
// time, frames/s, the healthy sites' tracking error, and the substitutes'
// error — the cost of degraded mode in accuracy terms.
//
// Expectations: throughput barely moves (quarantined sites skip their
// conversions between probes, so the fleet does *less* sampling work as it
// degrades), healthy-site accuracy is untouched, and substitute error stays
// well inside the supervisor's 25 C spatial threshold — single digits of a
// degree on the sparse 2x2 grid, dominated by the interpolation distance.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "ptsim/table.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

int main() {
  using namespace tsvpt;

  constexpr std::size_t kStacks = 8;
  constexpr std::size_t kScans = 40;
  constexpr std::size_t kSitesPerStack = 16;  // 2x2 grid on each of 4 dies

  bench::banner("A15", "degraded-mode error and throughput vs dead sites");
  std::printf("fleet: %zu stacks x %zu scans, %zu sites each (%zu total)\n\n",
              kStacks, kScans, kSitesPerStack, kStacks * kSitesPerStack);

  Table table{"dead TDROs injected for the whole run; supervisor substitutes"};
  table.add_column("dead sites", 0);
  table.add_column("wall s", 3);
  table.add_column("frames/s", 1);
  table.add_column("healthy err 3s C", 2);
  table.add_column("subst mean C", 2);
  table.add_column("subst max C", 2);
  table.add_column("substituted", 0);

  for (const std::size_t dead_count : {0u, 1u, 32u}) {  // 0, one, 25%
    telemetry::FleetSampler::Config cfg;
    cfg.stack_count = kStacks;
    cfg.thread_count = 4;
    cfg.scans_per_stack = kScans;
    cfg.ring_capacity = 512;
    cfg.seed = 9;
    cfg.supervise = true;
    // Burst hotspots reach ~20 C leave-one-out deviation on a 2x2 grid.
    cfg.health.fault.threshold = Celsius{25.0};
    telemetry::FleetSampler sampler{cfg};

    inject::FaultPlan plan;
    for (std::size_t n = 0; n < dead_count; ++n) {
      // Spread victims across stacks, then across dies within a stack.
      plan.add({.kind = inject::FaultKind::kDeadRo,
                .stack = n % kStacks,
                .site = (n / kStacks) * 4 + 1,
                .start_scan = 2,
                .end_scan = kScans + 1});  // never clears: no recovery
    }
    inject::ChaosInjector injector{plan};
    if (!plan.empty()) sampler.set_interceptor(&injector);

    telemetry::Aggregator::Config acfg;
    acfg.alert_threshold = Celsius{200.0};
    acfg.fault.threshold = Celsius{25.0};
    telemetry::Aggregator aggregator{acfg};
    aggregator.start(sampler.rings());
    sampler.run();
    aggregator.stop();

    const auto& sum = aggregator.summary();
    RunningStats healthy;
    RunningStats degraded;
    for (const auto& [stack_id, stats] : sum.stacks) {
      for (const auto& [die, die_stats] : stats.dies) {
        healthy.merge(die_stats.error_c);
        degraded.merge(die_stats.degraded_error_c);
      }
    }
    const double elapsed = sampler.elapsed().value();
    table.add_row({static_cast<double>(dead_count), elapsed,
                   static_cast<double>(sampler.total_frames()) / elapsed,
                   3.0 * healthy.stddev(),
                   degraded.count() ? degraded.mean() : 0.0,
                   degraded.count() ? degraded.max_abs() : 0.0,
                   static_cast<double>(sum.substituted_readings)});
  }
  bench::emit(table, "a15_degraded_mode");
  return 0;
}
