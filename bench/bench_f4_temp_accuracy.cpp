// F4 [R]: Temperature inaccuracy vs temperature, before and after
// self-calibration, across a Monte-Carlo die population.  Paper headline:
// "the inaccuracy of temperature [is] merely +-1.5 degC".  Each die is
// self-calibrated once at a random power-on temperature, then read in
// tracking mode across the 0..100 degC range; the uncalibrated baseline
// reads the same dies through the typical-corner model.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/baselines.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

int main() {
  bench::banner("F4", "temperature inaccuracy vs T, uncalibrated vs self-cal");
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  constexpr std::size_t kDies = 400;
  const process::MonteCarlo mc{424242, kDies};
  std::vector<double> t_grid;
  for (double t = 0.0; t <= 100.0 + 1e-9; t += 10.0) t_grid.push_back(t);

  std::vector<Samples> err_selfcal(t_grid.size());
  std::vector<Samples> err_uncal(t_grid.size());
  Samples err_all_selfcal;
  Samples err_all_uncal;

  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::DieEnvironment env;
    env.vt_delta = die.at(0);

    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(1000, trial)};
    core::UncalibratedRoSensor uncal{core::UncalibratedRoSensor::Config{},
                                     derive_seed(2000, trial)};
    // Power-on self-calibration at an uncontrolled ambient.
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    (void)sensor.self_calibrate(env, &rng);

    for (std::size_t i = 0; i < t_grid.size(); ++i) {
      const core::DieEnvironment at_t =
          env.at_celsius(Celsius{t_grid[i]});
      const double e_cal =
          sensor.read(at_t, &rng).temperature.value() - t_grid[i];
      const double e_raw =
          uncal.read(at_t, &rng).temperature.value() - t_grid[i];
      err_selfcal[i].add(e_cal);
      err_uncal[i].add(e_raw);
      err_all_selfcal.add(e_cal);
      err_all_uncal.add(e_raw);
    }
  });

  Table table{"F4 temperature error (degC) vs T, " + std::to_string(kDies) +
              "-die MC"};
  table.add_column("T_degC", 0);
  table.add_column("selfcal_mean", 3);
  table.add_column("selfcal_3sigma", 3);
  table.add_column("selfcal_max|e|", 3);
  table.add_column("uncal_3sigma", 3);
  table.add_column("uncal_max|e|", 3);
  for (std::size_t i = 0; i < t_grid.size(); ++i) {
    table.add_row({t_grid[i], err_selfcal[i].mean(),
                   err_selfcal[i].three_sigma(), err_selfcal[i].max_abs(),
                   err_uncal[i].three_sigma(), err_uncal[i].max_abs()});
  }
  bench::emit(table, "f4_vs_t");

  Table summary{"F4 overall"};
  summary.add_column("sensor");
  summary.add_column("3sigma_degC", 3);
  summary.add_column("max|err|_degC", 3);
  summary.add_row({std::string{"self-calibrated PT"},
                   err_all_selfcal.three_sigma(), err_all_selfcal.max_abs()});
  summary.add_row({std::string{"uncalibrated RO"},
                   err_all_uncal.three_sigma(), err_all_uncal.max_abs()});
  bench::emit(summary, "f4_summary");

  std::cout << "Paper target: +-1.5 degC after self-calibration.\n";
  std::cout << "Shape check: self-calibration beats the uncalibrated reading "
               "by roughly an\norder of magnitude, uniformly across the "
               "0..100 degC range.\n";
  return 0;
}
