// F2 [R]: Process sensitivity of the oscillator bank — frequency vs dVtn and
// vs dVtp per oscillator, plus the log-sensitivity (decoupling) matrix and
// its conditioning.  This is the figure that justifies the paper's claim
// that "process information and temperature can be decoupled": the three
// sensitivity vectors must be linearly independent.
#include <iostream>

#include "bench_util.hpp"
#include "calib/linalg.hpp"
#include "circuit/ring_oscillator.hpp"
#include "device/tech.hpp"

using namespace tsvpt;

namespace {

circuit::OperatingPoint op_at(double t_celsius, Volt dvtn, Volt dvtp) {
  circuit::OperatingPoint op;
  op.vdd = Volt{1.0};
  op.temperature = to_kelvin(Celsius{t_celsius});
  op.vt_delta = {dvtn, dvtp};
  return op;
}

}  // namespace

int main() {
  bench::banner("F2", "process sensitivity: f(dVt) per RO + decoupling matrix");
  const device::Technology tech = device::Technology::tsmc65_like();
  const std::vector<circuit::RoTopology> topologies{
      circuit::RoTopology::kNmosSensitive, circuit::RoTopology::kPmosSensitive,
      circuit::RoTopology::kThermal, circuit::RoTopology::kStandard};
  std::vector<circuit::RingOscillator> bank;
  for (circuit::RoTopology topo : topologies) {
    bank.push_back(circuit::RingOscillator::make(tech, topo));
  }

  for (const bool sweep_nmos : {true, false}) {
    Table table{std::string{"F2 frequency (MHz) vs "} +
                (sweep_nmos ? "dVtn" : "dVtp") + " @ 25 degC"};
    table.add_column(sweep_nmos ? "dVtn_mV" : "dVtp_mV", 1);
    for (circuit::RoTopology topo : topologies) {
      table.add_column(circuit::to_string(topo), 3);
    }
    for (double mv = -60.0; mv <= 60.0 + 1e-9; mv += 10.0) {
      std::vector<Cell> row{mv};
      const Volt dn = sweep_nmos ? millivolts(mv) : Volt{0.0};
      const Volt dp = sweep_nmos ? Volt{0.0} : millivolts(mv);
      for (const auto& ro : bank) {
        row.push_back(ro.frequency(op_at(25.0, dn, dp)).value() / 1e6);
      }
      table.add_row(std::move(row));
    }
    bench::emit(table, sweep_nmos ? "f2_dvtn" : "f2_dvtp");
  }

  // The decoupling matrix: rows = oscillators, columns = d ln f / d(state).
  for (double t : {25.0, 75.0}) {
    Table table{"F2 log-sensitivity matrix @ " + std::to_string(int(t)) +
                " degC"};
    table.add_column("RO");
    table.add_column("dlnf/dVtn (1/V)", 3);
    table.add_column("dlnf/dVtp (1/V)", 3);
    table.add_column("dlnf/dT (%/K)", 4);
    calib::Matrix s{3, 3};
    for (std::size_t i = 0; i < 3; ++i) {
      const circuit::RoSensitivity sens =
          bank[i].sensitivity(op_at(t, Volt{0.0}, Volt{0.0}));
      table.add_row({std::string{circuit::to_string(topologies[i])},
                     sens.dlnf_dvtn, sens.dlnf_dvtp, 100.0 * sens.dlnf_dt});
      // Scale columns comparably (V, V, 100 K) for a fair condition number.
      s(i, 0) = sens.dlnf_dvtn * 0.01;   // per 10 mV
      s(i, 1) = sens.dlnf_dvtp * 0.01;   // per 10 mV
      s(i, 2) = sens.dlnf_dt * 10.0;     // per 10 K
    }
    bench::emit(table, "f2_matrix_" + std::to_string(int(t)));
    std::cout << "  scaled decoupling-matrix condition estimate: "
              << calib::condition_estimate(s) << "\n\n";
  }

  std::cout << "Shape check: PSRO-N column is dVtn-dominated, PSRO-P "
               "dVtp-dominated,\nTDRO row carries the temperature weight; "
               "conditioning is modest (solvable).\n";
  return 0;
}
