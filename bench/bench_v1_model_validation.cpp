// V1 [validation]: analytic stage-delay model vs transistor-level transient
// simulation of the same circuit (same EKV devices).  Prints, per topology
// and temperature, both frequencies and their relative deviation — the
// evidence that the behavioral shortcut preserves the sensitivities the
// sensor algorithm consumes.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/transient.hpp"

using namespace tsvpt;
using namespace tsvpt::circuit;

int main() {
  bench::banner("V1", "analytic RO model vs transient circuit simulation");
  const device::Technology tech = device::Technology::tsmc65_like();

  Table table{"V1 frequency (MHz): analytic vs simulated circuit"};
  table.add_column("RO");
  table.add_column("T_degC", 0);
  table.add_column("analytic", 2);
  table.add_column("transient", 2);
  table.add_column("deviation_%", 2);

  struct Row {
    RoTopology topo;
    double dev_sum = 0.0;
    double dev_min = 1e9;
    double dev_max = -1e9;
    int count = 0;
  };
  std::vector<Row> spreads;

  for (RoTopology topo :
       {RoTopology::kStandard, RoTopology::kNmosSensitive,
        RoTopology::kPmosSensitive, RoTopology::kThermal}) {
    const RingOscillator ro = RingOscillator::make(
        tech, topo, topo == RoTopology::kThermal ? 15 : 31);
    Row row{topo};
    for (double t : {0.0, 25.0, 50.0, 75.0, 100.0}) {
      OperatingPoint op;
      op.vdd = Volt{1.0};
      op.temperature = to_kelvin(Celsius{t});
      const TransientResult sim =
          TransientRoSimulator::simulate(ro, tech, op);
      const double f_model = ro.frequency(op).value() / 1e6;
      const double f_sim = sim.frequency.value() / 1e6;
      const double dev = 100.0 * (f_sim / f_model - 1.0);
      table.add_row({std::string{to_string(topo)}, t, f_model, f_sim, dev});
      row.dev_sum += dev;
      row.dev_min = std::min(row.dev_min, dev);
      row.dev_max = std::max(row.dev_max, dev);
      ++row.count;
    }
    spreads.push_back(row);
  }
  bench::emit(table, "v1_validation");

  Table summary{"V1 offset stability (the sensitivity-preservation check)"};
  summary.add_column("RO");
  summary.add_column("mean_offset_%", 2);
  summary.add_column("spread_over_T_%", 2);
  for (const Row& row : spreads) {
    summary.add_row({std::string{to_string(row.topo)},
                     row.dev_sum / row.count, row.dev_max - row.dev_min});
  }
  bench::emit(summary, "v1_summary");

  std::cout << "Shape check: each topology sits at a *constant* offset from "
               "the analytic\nmodel (the C V/2I formula is uniformly "
               "optimistic), with < ~2-3 % drift of\nthat offset across "
               "0..100 degC.  A constant multiplicative offset is exactly\n"
               "what design-time characterization absorbs; the temperature "
               "and Vt\nsensitivities — the quantities the decoupling solver "
               "uses — carry over.\n";
  return 0;
}
