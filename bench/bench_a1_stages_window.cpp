// A1 [R]: Design-space ablation — TDRO stage count x counter window versus
// temperature accuracy and tracking energy.  Fewer stages = higher TDRO
// frequency = finer quantization per window but more energy per second;
// longer windows trade conversion rate for resolution.  This regenerates the
// design-choice justification DESIGN.md calls out for the default (15
// stages, 2 us).
// GCC 12 reports a spurious -Wmaybe-uninitialized from the inlined
// vector<variant> reallocation path when a Table row grows (GCC PR 105562);
// the rows below are plainly initialized before use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

namespace {

struct CellResult {
  double three_sigma = 0.0;
  double track_pj = 0.0;
};

CellResult evaluate(std::size_t stages, double window_us) {
  const device::Technology tech = device::Technology::tsmc65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  const process::MonteCarlo mc{31337, 120};
  Samples errors;
  core::PtSensor::Config cfg;
  cfg.tdro_stages = stages;
  cfg.counter.window = Second{window_us * 1e-6};

  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{cfg, derive_seed(11, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    (void)sensor.self_calibrate(env, &rng);
    for (double t : {10.0, 50.0, 90.0}) {
      const auto reading = sensor.read(env.at_celsius(Celsius{t}), &rng);
      errors.add(reading.temperature.value() - t);
    }
  });

  const core::PtSensor sensor{cfg, 1};
  return {errors.three_sigma(), sensor.tracking_energy().value() * 1e12};
}

}  // namespace

int main() {
  bench::banner("A1", "ablation: TDRO stages x window -> accuracy & energy");
  const std::vector<std::size_t> stage_options{7, 15, 31, 61};
  const std::vector<double> window_options{0.5, 1.0, 2.0, 4.0, 8.0};

  Table accuracy{"A1 temperature 3sigma error (degC)"};
  Table energy{"A1 tracking energy (pJ)"};
  accuracy.add_column("stages", 0);
  energy.add_column("stages", 0);
  for (double w : window_options) {
    accuracy.add_column("w=" + std::to_string(w).substr(0, 3) + "us", 3);
    energy.add_column("w=" + std::to_string(w).substr(0, 3) + "us", 1);
  }
  for (std::size_t stages : stage_options) {
    std::vector<Cell> acc_row{static_cast<long long>(stages)};
    std::vector<Cell> en_row{static_cast<long long>(stages)};
    for (double w : window_options) {
      const CellResult r = evaluate(stages, w);
      acc_row.push_back(r.three_sigma);
      en_row.push_back(r.track_pj);
    }
    accuracy.add_row(std::move(acc_row));
    energy.add_row(std::move(en_row));
  }
  bench::emit(accuracy, "a1_accuracy");
  bench::emit(energy, "a1_energy");

  std::cout << "Shape check: accuracy improves with window length until the "
               "mismatch floor\n(~counter quantization no longer dominant); "
               "fewer stages -> higher f -> finer\nquantization at equal "
               "window but higher oscillator energy.  The default\n(15 "
               "stages, 2 us) sits at the knee.\n";
  return 0;
}
