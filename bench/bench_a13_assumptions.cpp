// A13 [R/extension]: Assumption tornado — how much does the headline
// temperature accuracy (F4-style 3-sigma) move when each behavioral-model
// assumption is perturbed ±25 %?  A reproduction is only as good as its
// least-certain parameter; this bench ranks them.  It also reruns the
// experiment on the LP technology card to show the method is not tuned to
// one card.
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

using namespace tsvpt;

namespace {

/// F4-style 3-sigma temperature error at reduced scale.
double three_sigma(const device::Technology& tech,
                   const core::PtSensor::Config& cfg) {
  const process::VariationModel variation{tech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  Samples errors;
  const process::MonteCarlo mc{131313, 100};
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{cfg, derive_seed(7, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.supply = circuit::SupplyRail{
        {cfg.model_vdd, Volt{0.0}, Volt{0.0}}};
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    (void)sensor.self_calibrate(env, &rng);
    for (double t : {10.0, 50.0, 90.0}) {
      errors.add(sensor.read(env.at_celsius(Celsius{t}), &rng)
                     .temperature.value() -
                 t);
    }
  });
  return errors.three_sigma();
}

}  // namespace

int main() {
  bench::banner("A13", "assumption tornado: 3sigma(T) under +-25% knobs");
  const device::Technology base_tech = device::Technology::tsmc65_like();
  const core::PtSensor::Config base_cfg;
  const double baseline = three_sigma(base_tech, base_cfg);

  struct Knob {
    std::string name;
    std::function<void(device::Technology&, core::PtSensor::Config&,
                       double factor)>
        apply;
  };
  const std::vector<Knob> knobs{
      {"RO mismatch sigma",
       [](device::Technology&, core::PtSensor::Config& cfg, double f) {
         cfg.ro_mismatch_sigma = Volt{cfg.ro_mismatch_sigma.value() * f};
       }},
      {"counter window",
       [](device::Technology&, core::PtSensor::Config& cfg, double f) {
         cfg.counter.window = Second{cfg.counter.window.value() * f};
       }},
      {"Vt tempco d|Vt|/dT",
       [](device::Technology& tech, core::PtSensor::Config& cfg, double f) {
         tech.nmos.dvt_dt *= f;
         tech.pmos.dvt_dt *= f;
         cfg.tech = tech;  // the stored model knows the card
       }},
      {"mobility exponent",
       [](device::Technology& tech, core::PtSensor::Config& cfg, double f) {
         tech.nmos.mobility_exponent *= f;
         tech.pmos.mobility_exponent *= f;
         cfg.tech = tech;
       }},
      {"D2D sigma (population)",
       [](device::Technology& tech, core::PtSensor::Config& cfg, double f) {
         tech.sigma_vt_d2d = Volt{tech.sigma_vt_d2d.value() * f};
         // note: the stored model is unchanged — only the dies spread more.
         cfg.tech.sigma_vt_d2d = tech.sigma_vt_d2d;
       }},
      {"stage capacitance",
       [](device::Technology& tech, core::PtSensor::Config& cfg, double f) {
         tech.stage_cap = Farad{tech.stage_cap.value() * f};
         cfg.tech = tech;
       }},
  };

  Table table{"A13 3sigma(T) in degC (baseline " +
              std::to_string(baseline).substr(0, 5) + ")"};
  table.add_column("assumption");
  table.add_column("x0.75", 3);
  table.add_column("x1.25", 3);
  table.add_column("swing", 3);
  for (const Knob& knob : knobs) {
    double results[2];
    int k = 0;
    for (double f : {0.75, 1.25}) {
      device::Technology tech = base_tech;
      core::PtSensor::Config cfg = base_cfg;
      knob.apply(tech, cfg, f);
      results[k++] = three_sigma(tech, cfg);
    }
    table.add_row({knob.name, results[0], results[1],
                   std::abs(results[1] - results[0])});
  }
  bench::emit(table, "a13_tornado");

  // Cross-card check.
  device::Technology lp = device::Technology::lp65_like();
  core::PtSensor::Config lp_cfg;
  lp_cfg.tech = lp;
  lp_cfg.model_vdd = lp.vdd_nominal;
  std::cout << "cross-card: 3sigma(T) = " << baseline
            << " degC on 65nm-GP-like vs " << three_sigma(lp, lp_cfg)
            << " degC on 65nm-LP-like (same algorithm, own stored model).\n\n";

  std::cout << "Shape check: two assumptions dominate — the RO mismatch "
               "sigma (the accuracy\nfloor scales ~linearly with it) and the "
               "mobility exponent (it sets how much\ntemperature leverage "
               "the oscillator bank has relative to its Vt sensitivity).\n"
               "Population spread, window length and capacitance barely move "
               "the result\nbecause the stored model is characterized on the "
               "same card — the\nself-consistency the on-chip scheme relies "
               "on.  The LP-card rerun lands at the\nsame accuracy, so the "
               "algorithm is not tuned to one technology.\n";
  return 0;
}
