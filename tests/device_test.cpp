#include "device/mosfet.hpp"
#include "device/tech.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::device {
namespace {

const Technology kTech = Technology::tsmc65_like();

TEST(Tech, CornerShiftsHaveConventionalSigns) {
  const CornerShift ff = kTech.corner_shift(Corner::kFF);
  const CornerShift ss = kTech.corner_shift(Corner::kSS);
  const CornerShift fs = kTech.corner_shift(Corner::kFS);
  EXPECT_LT(ff.nmos.value(), 0.0);
  EXPECT_LT(ff.pmos.value(), 0.0);
  EXPECT_GT(ss.nmos.value(), 0.0);
  EXPECT_GT(ss.pmos.value(), 0.0);
  EXPECT_LT(fs.nmos.value(), 0.0);
  EXPECT_GT(fs.pmos.value(), 0.0);
  const CornerShift tt = kTech.corner_shift(Corner::kTT);
  EXPECT_DOUBLE_EQ(tt.nmos.value(), 0.0);
  EXPECT_DOUBLE_EQ(tt.pmos.value(), 0.0);
}

TEST(Tech, CornerIsThreeSigmaD2d) {
  const CornerShift ss = kTech.corner_shift(Corner::kSS);
  EXPECT_NEAR(ss.nmos.value(), 3.0 * kTech.sigma_vt_d2d.value(), 1e-12);
}

TEST(Tech, ToStringCoversAllCorners) {
  for (Corner c : all_corners()) {
    EXPECT_STRNE(to_string(c), "?");
  }
}

TEST(Tech, LpFlavorIsHigherVtLowerDrive) {
  const Technology lp = Technology::lp65_like();
  EXPECT_GT(lp.nmos.vt0.value(), kTech.nmos.vt0.value());
  EXPECT_LT(lp.nmos.i_spec0.value(), kTech.nmos.i_spec0.value());
}

TEST(Mosfet, VtFallsWithTemperature) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const Volt cold = nmos.vt(Kelvin{250.0});
  const Volt hot = nmos.vt(Kelvin{400.0});
  EXPECT_GT(cold.value(), hot.value());
  // Slope matches the card: -0.9 mV/K over 150 K.
  EXPECT_NEAR(cold.value() - hot.value(), 0.9e-3 * 150.0, 1e-9);
}

TEST(Mosfet, VtIncludesDelta) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const Volt base = nmos.vt(Kelvin{300.0});
  const Volt shifted = nmos.vt(Kelvin{300.0}, Volt{25e-3});
  EXPECT_NEAR(shifted.value() - base.value(), 25e-3, 1e-12);
}

TEST(Mosfet, IdSatMonotoneInVgs) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.05) {
    const double id = nmos.id_sat(Volt{vgs}, Kelvin{300.0}).value();
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(Mosfet, IdSatFallsWithVt) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const double lo = nmos.id_sat(Volt{1.0}, Kelvin{300.0}, Volt{-20e-3}).value();
  const double hi = nmos.id_sat(Volt{1.0}, Kelvin{300.0}, Volt{+20e-3}).value();
  EXPECT_GT(lo, hi);
}

TEST(Mosfet, SubthresholdSlopeIsExponential) {
  // Deep below threshold, Id should change by ~a decade per (n vT ln10) of
  // Vgs.  (Probe well below Vt: the EKV interpolation rounds the slope off
  // in the moderate-inversion region near Vt, as real devices do.)
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const Kelvin t{300.0};
  const double n = kTech.nmos.slope_factor;
  const double swing = n * thermal_voltage(t).value() * std::log(10.0);
  const double i1 = nmos.id_sat(Volt{0.10}, t).value();
  const double i2 = nmos.id_sat(Volt{0.10 + swing}, t).value();
  EXPECT_NEAR(i2 / i1, 10.0, 0.8);
}

TEST(Mosfet, StrongInversionCurrentFallsWithT) {
  // Mobility-limited regime: hotter means weaker drive.
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const double cold = nmos.id_sat(Volt{1.0}, Kelvin{273.0}).value();
  const double hot = nmos.id_sat(Volt{1.0}, Kelvin{373.0}).value();
  EXPECT_GT(cold, hot);
}

TEST(Mosfet, SubthresholdCurrentRisesWithT) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const double cold = nmos.id_sat(Volt{0.30}, Kelvin{273.0}).value();
  const double hot = nmos.id_sat(Volt{0.30}, Kelvin{373.0}).value();
  EXPECT_LT(cold, hot);
}

TEST(Mosfet, LeakageRisesSteeplyWithT) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const double cold = nmos.leakage(Volt{1.0}, Kelvin{300.0}).value();
  const double hot = nmos.leakage(Volt{1.0}, Kelvin{360.0}).value();
  EXPECT_GT(hot / cold, 5.0);  // decades over 60 K is the textbook behavior
}

TEST(Mosfet, IdApproachesSaturationWithVds) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const Kelvin t{300.0};
  const double sat = nmos.id_sat(Volt{1.0}, t).value();
  const double triode = nmos.id(Volt{1.0}, Volt{0.01}, t).value();
  const double nearly = nmos.id(Volt{1.0}, Volt{0.5}, t).value();
  EXPECT_LT(triode, 0.5 * sat);
  EXPECT_NEAR(nearly, sat, 1e-9);
}

TEST(Mosfet, DidDvtIsNegative) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  EXPECT_LT(nmos.did_dvt(Volt{0.6}, Kelvin{300.0}), 0.0);
}

TEST(Mosfet, PmosWeakerThanNmos) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const Mosfet pmos{kTech, TransistorKind::kPmos};
  EXPECT_GT(nmos.id_sat(Volt{1.0}, Kelvin{300.0}).value(),
            pmos.id_sat(Volt{1.0}, Kelvin{300.0}).value());
}

TEST(Mosfet, RejectsNonPositiveTemperature) {
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  EXPECT_THROW((void)nmos.i_spec(Kelvin{0.0}), std::invalid_argument);
  EXPECT_THROW((void)nmos.id_sat(Volt{1.0}, Kelvin{-5.0}),
               std::invalid_argument);
}

/// Parameterized physical-sanity sweep: current must be positive and finite
/// at every (corner, temperature, Vgs) combination the sensor can visit.
class MosfetSweep
    : public ::testing::TestWithParam<std::tuple<Corner, double, double>> {};

TEST_P(MosfetSweep, CurrentPositiveFinite) {
  const auto [corner, t_c, vgs] = GetParam();
  const CornerShift shift = kTech.corner_shift(corner);
  const Mosfet nmos{kTech, TransistorKind::kNmos};
  const Mosfet pmos{kTech, TransistorKind::kPmos};
  const Kelvin t = to_kelvin(Celsius{t_c});
  const double id_n = nmos.id_sat(Volt{vgs}, t, shift.nmos).value();
  const double id_p = pmos.id_sat(Volt{vgs}, t, shift.pmos).value();
  EXPECT_TRUE(std::isfinite(id_n));
  EXPECT_TRUE(std::isfinite(id_p));
  EXPECT_GT(id_n, 0.0);
  EXPECT_GT(id_p, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCorners, MosfetSweep,
    ::testing::Combine(::testing::ValuesIn(all_corners()),
                       ::testing::Values(-40.0, 0.0, 25.0, 85.0, 125.0),
                       ::testing::Values(0.2, 0.45, 0.7, 1.0, 1.2)));

}  // namespace
}  // namespace tsvpt::device
