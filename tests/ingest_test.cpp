// Distributed ingestion end-to-end: shard hashing stability, publisher
// batching/backpressure, loopback digest equality against the
// single-process Aggregator, reconnect-with-resume accounting, and
// deterministic transport chaos replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ingest/fleet_view.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"
#include "telemetry/frame.hpp"

namespace tsvpt::ingest {
namespace {

/// Deterministic synthetic frame: contents depend only on (stack, seq).
std::vector<std::uint8_t> make_wire_frame(std::uint32_t stack,
                                          std::uint64_t seq,
                                          std::size_t sites = 4,
                                          double base_c = 55.0) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.sequence = seq;
  frame.sim_time = Second{1e-3 * static_cast<double>(seq)};
  for (std::size_t i = 0; i < sites; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = i / 2;
    r.location = {1e-3 * static_cast<double>(i), 2e-3};
    r.sensed = Celsius{base_c + static_cast<double>(stack % 7) +
                       0.25 * static_cast<double>(i) +
                       0.01 * static_cast<double>(seq % 17)};
    r.truth = Celsius{r.sensed.value() - 0.2};
    frame.readings.push_back(r);
  }
  return telemetry::encode(frame);
}

/// The whole synthetic fleet, per-stack sequences interleaved round-robin
/// (the arrival pattern a multi-stack sampler produces).
std::vector<std::vector<std::uint8_t>> make_fleet(std::size_t stacks,
                                                  std::size_t frames_each,
                                                  double base_c = 55.0) {
  std::vector<std::vector<std::uint8_t>> wire;
  wire.reserve(stacks * frames_each);
  for (std::uint64_t seq = 0; seq < frames_each; ++seq) {
    for (std::uint32_t s = 0; s < stacks; ++s) {
      wire.push_back(make_wire_frame(s, seq, 4, base_c));
    }
  }
  return wire;
}

/// Single-process ground truth: one Aggregator ingesting every frame in
/// order, folded into a finalized FleetView.
FleetView baseline_view(const std::vector<std::vector<std::uint8_t>>& wire,
                        const telemetry::Aggregator::Config& config) {
  std::vector<telemetry::Alert> alerts;
  telemetry::Aggregator agg(config, [&](const telemetry::Alert& alert) {
    alerts.push_back(alert);
  });
  for (const auto& frame : wire) agg.ingest(frame);
  FleetView view;
  view.add_shard(agg.summary(), alerts);
  view.finalize();
  return view;
}

/// Publish `wire` to a running server in caller-driven mode and wait until
/// the server has routed everything (or `expect_frames` arrived).
void publish_and_wait(IngestServer& server,
                      const std::vector<std::vector<std::uint8_t>>& wire,
                      FleetPublisher::Config config,
                      std::uint64_t expect_frames) {
  config.port = server.port();
  FleetPublisher pub(std::move(config));
  for (const auto& frame : wire) pub.offer(frame);
  pub.flush();
  for (int i = 0; i < 2000 && !pub.pump(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 5000; ++i) {
    if (server.stats().frames >= expect_frames) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.stats().frames, expect_frames);
}

TEST(IngestHash, ShardMapIsStableAcrossRunsAndPlatforms) {
  // Pinned golden values: splitmix64(stack_id) % shards.  If these move,
  // every deployed fleet's shard assignment moves with them — that is a
  // wire-compatibility break, not a refactor.
  EXPECT_EQ(IngestServer::shard_of(0, 4), 3u);
  EXPECT_EQ(IngestServer::shard_of(1, 4), 1u);
  EXPECT_EQ(IngestServer::shard_of(2, 4), 2u);
  EXPECT_EQ(IngestServer::shard_of(3, 4), 1u);
  EXPECT_EQ(IngestServer::shard_of(12345, 16),
            IngestServer::shard_of(12345, 16));
  for (std::uint32_t id = 0; id < 1000; ++id) {
    EXPECT_LT(IngestServer::shard_of(id, 8), 8u);
    EXPECT_EQ(IngestServer::shard_of(id, 1), 0u);
  }
}

TEST(IngestHash, SpreadsStacksAcrossShards) {
  std::vector<std::size_t> load(8, 0);
  for (std::uint32_t id = 0; id < 4096; ++id) {
    load[IngestServer::shard_of(id, 8)] += 1;
  }
  for (std::size_t s = 0; s < 8; ++s) {
    // Uniform would be 512; a badly skewed hash concentrates load.
    EXPECT_GT(load[s], 512u / 2) << "shard " << s;
    EXPECT_LT(load[s], 512u * 2) << "shard " << s;
  }
}

TEST(IngestPublisher, BatchesSealBySizeAndQueueDropsOldest) {
  FleetPublisher::Config config;
  config.port = 1;  // never connected: pure batching/queue behaviour
  config.batch_max_frames = 4;
  config.queue_max_batches = 2;
  FleetPublisher pub(config);

  // 5 batches' worth of frames into a 2-batch queue.
  for (std::uint64_t i = 0; i < 20; ++i) {
    pub.offer(make_wire_frame(7, i));
  }
  const auto stats = pub.stats();
  EXPECT_EQ(stats.frames_enqueued, 20u);
  EXPECT_EQ(stats.queue_dropped_batches, 3u);
  EXPECT_EQ(stats.queue_dropped_frames, 12u);
  EXPECT_EQ(stats.frames_sent, 0u);
}

TEST(IngestPublisher, PumpWithoutServerFailsWithoutLosingQueuedBatches) {
  FleetPublisher::Config config;
  // Bind-then-close for a port that refuses connections.
  {
    const net::Socket probe = net::tcp_listen("127.0.0.1", 0);
    config.port = net::local_port(probe);
  }
  config.backoff_initial = Second{0.0};
  FleetPublisher pub(config);
  pub.offer(make_wire_frame(1, 0));
  pub.flush();
  EXPECT_FALSE(pub.pump());
  const auto stats = pub.stats();
  EXPECT_FALSE(stats.connected_once);
  EXPECT_EQ(stats.frames_sent, 0u);
  EXPECT_EQ(stats.queue_dropped_batches, 0u);
}

TEST(IngestLoopback, ShardedDigestMatchesSingleProcessAggregator) {
  // The acceptance property in miniature: same frames, any shard count,
  // byte-identical canonical fleet view.  A low threshold makes stacks
  // with base >= 60C alert, so the merge is exercised with alerts present.
  telemetry::Aggregator::Config agg;
  agg.alert_threshold = Celsius{58.0};
  const auto wire = make_fleet(13, 24);
  const FleetView baseline = baseline_view(wire, agg);
  ASSERT_GT(baseline.alerts(), 0u);
  ASSERT_EQ(baseline.frames(), wire.size());

  for (const std::size_t shard_count : {1u, 2u, 4u}) {
    IngestServer::Config config;
    config.shard_count = shard_count;
    config.aggregator = agg;
    IngestServer server(config);
    server.start();
    publish_and_wait(server, wire, {}, wire.size());
    server.stop();

    const FleetView view = server.fleet_view();
    EXPECT_EQ(view.frames(), baseline.frames()) << shard_count << " shards";
    EXPECT_EQ(view.alerts(), baseline.alerts()) << shard_count << " shards";
    EXPECT_EQ(view.missed(), 0u);
    EXPECT_EQ(view.canonical_bytes(), baseline.canonical_bytes())
        << shard_count << " shards";
    EXPECT_EQ(view.digest(), baseline.digest()) << shard_count << " shards";

    if (shard_count > 1) {
      // Frames actually spread: no shard got everything.
      const auto stats = server.stats();
      for (const std::uint64_t per : stats.frames_per_shard) {
        EXPECT_LT(per, wire.size());
      }
    }
  }
}

TEST(IngestLoopback, ReconnectResumesWithoutLoss) {
  IngestServer::Config config;
  config.shard_count = 2;
  IngestServer server(config);
  server.start();

  FleetPublisher::Config pub_config;
  pub_config.port = server.port();
  pub_config.backoff_initial = Second{0.001};
  FleetPublisher pub(pub_config);

  const auto wire = make_fleet(4, 10);
  std::uint64_t offered = 0;
  for (const auto& frame : wire) {
    pub.offer(frame);
    offered += 1;
    if (offered % 8 == 0) {
      pub.flush();
      while (!pub.pump()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Let the server ingest everything sent so far before cutting the
      // connection: TCP orders bytes within one connection only, so a
      // reconnect while the old connection still has queued bytes would
      // interleave frames across the boundary (no loss, but digest
      // equality needs arrival order preserved).
      for (int i = 0; i < 5000 && server.stats().frames < offered; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      pub.disconnect();  // clean drop between batches: nothing in flight
    }
  }
  pub.flush();
  while (!pub.pump()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 5000 && server.stats().frames < wire.size(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  const auto pub_stats = pub.stats();
  EXPECT_GE(pub_stats.connects, 2u);
  EXPECT_EQ(pub_stats.frames_sent, wire.size());

  const FleetView view = server.fleet_view();
  EXPECT_EQ(view.frames(), wire.size());
  EXPECT_EQ(view.missed(), 0u);  // clean drops lose nothing
  EXPECT_EQ(view.digest(), baseline_view(wire, {}).digest());
}

TEST(IngestLoopback, PartialBatchAtDisconnectIsDiscardedNotAnError) {
  IngestServer::Config config;
  IngestServer server(config);
  server.start();

  // Hand-roll a client that dies mid-batch (a SIGKILL in miniature).
  const auto frames = make_fleet(2, 3);
  const std::vector<std::uint8_t> batch = net::encode_batch(frames);
  {
    net::Socket client = net::tcp_connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.valid());
    ASSERT_TRUE(net::send_all(client, batch.data(), batch.size() / 2));
  }  // closed with half a batch on the wire

  for (int i = 0; i < 5000 && server.stats().disconnects < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.partial_disconnects, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.frames, 0u);  // nothing partial ever surfaced
}

TEST(IngestLoopback, CorruptHeaderDropsConnectionAsProtocolError) {
  IngestServer::Config config;
  IngestServer server(config);
  server.start();

  std::vector<std::uint8_t> batch = net::encode_batch(make_fleet(1, 2));
  batch[0] ^= 0xFFu;  // bad magic
  {
    net::Socket client = net::tcp_connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.valid());
    ASSERT_TRUE(net::send_all(client, batch.data(), batch.size()));
  }
  for (int i = 0; i < 5000 && server.stats().disconnects < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  EXPECT_EQ(server.stats().frames, 0u);
}

TEST(IngestLoopback, FailoverSplitsStackAndMergeKeepsCounts) {
  // Fail shard mid-stream: a stack's frames land on two aggregators, yet
  // the merged frame/missed accounting stays exact (next_sequence-based
  // recompute).  Per-stack stats are no longer bit-identical to a
  // single-process run — order within the stack was preserved but the
  // Welford folds happened in two separate accumulators — so this test
  // checks counts, not the digest.
  IngestServer::Config config;
  config.shard_count = 2;
  IngestServer server(config);
  server.start();

  const std::uint32_t stack = 2;  // shard_of(2, 2) is deterministic
  const std::size_t home = IngestServer::shard_of(stack, 2);

  FleetPublisher::Config pub_config;
  pub_config.port = server.port();
  FleetPublisher pub(pub_config);

  for (std::uint64_t seq = 0; seq < 10; ++seq) pub.offer(make_wire_frame(stack, seq));
  pub.flush();
  while (!pub.pump()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int i = 0; i < 5000 && server.stats().frames < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.fail_shard(home);
  for (std::uint64_t seq = 10; seq < 20; ++seq) pub.offer(make_wire_frame(stack, seq));
  pub.flush();
  while (!pub.pump()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (int i = 0; i < 5000 && server.stats().frames < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  const auto stats = server.stats();
  EXPECT_GT(stats.frames_per_shard[home], 0u);
  EXPECT_GT(stats.frames_per_shard[1 - home], 0u);

  const FleetView view = server.fleet_view();
  ASSERT_EQ(view.stacks().count(stack), 1u);
  const FleetView::StackView& sv = view.stacks().at(stack);
  EXPECT_EQ(sv.frames, 20u);
  EXPECT_EQ(sv.next_sequence, 20u);
  EXPECT_EQ(sv.missed, 0u);  // split across shards, but nothing lost
}

TEST(IngestChaos, NetFaultReplayIsDeterministic) {
  // Same plan + same frames -> identical publisher-side chaos stats and an
  // identical server-side fleet digest, run after run.  This is the replay
  // property the scan-level chaos tests already pin, extended to the four
  // transport fault kinds.
  inject::FaultPlan plan;
  plan.add({inject::FaultKind::kNetCorrupt, 0, 0, 2, 4, 0.0});
  plan.add({inject::FaultKind::kNetDrop, 0, 0, 5, 6, 0.0});
  plan.add({inject::FaultKind::kNetStall, 0, 0, 1, 2, 0.001});

  const auto wire = make_fleet(6, 16);

  auto run_once = [&](std::uint32_t* digest,
                      inject::NetChaos::Stats* chaos_stats,
                      IngestServer::Stats* server_stats) {
    inject::NetChaos chaos(plan);
    IngestServer::Config config;
    config.shard_count = 2;
    IngestServer server(config);
    server.start();

    FleetPublisher::Config pub_config;
    pub_config.port = server.port();
    pub_config.batch_max_frames = 8;
    pub_config.backoff_initial = Second{0.001};
    pub_config.hook = &chaos;
    FleetPublisher pub(pub_config);
    for (const auto& frame : wire) pub.offer(frame);
    pub.flush();
    for (int i = 0; i < 5000 && !pub.pump(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::uint64_t sent = pub.stats().frames_sent;
    for (int i = 0; i < 5000 && server.stats().frames < sent; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.stop();
    *digest = server.fleet_view().digest();
    *chaos_stats = chaos.stats();
    *server_stats = server.stats();
  };

  std::uint32_t digest_a = 0, digest_b = 0;
  inject::NetChaos::Stats chaos_a, chaos_b;
  IngestServer::Stats server_a, server_b;
  run_once(&digest_a, &chaos_a, &server_a);
  run_once(&digest_b, &chaos_b, &server_b);

  EXPECT_EQ(chaos_a.batches_corrupted, 2u);
  EXPECT_EQ(chaos_a.connections_dropped, 1u);
  EXPECT_EQ(chaos_a.stalls_injected, 1u);
  EXPECT_EQ(chaos_a.batches_corrupted, chaos_b.batches_corrupted);
  EXPECT_EQ(chaos_a.connections_dropped, chaos_b.connections_dropped);
  EXPECT_EQ(chaos_a.stalls_injected, chaos_b.stalls_injected);
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(server_a.frames, server_b.frames);
  // Each corrupted batch costs exactly one inner-frame CRC failure at the
  // shard aggregators (the corrupt fault targets the trailing frame's CRC).
  const FleetView baseline = baseline_view(wire, {});
  (void)baseline;
  EXPECT_EQ(server_a.protocol_errors, 0u);  // framing stayed intact
}

TEST(IngestChaos, TruncatedBatchSurfacesAsSequenceGap) {
  inject::FaultPlan plan;
  // Truncate batch index 1: its 8 frames are lost mid-wire.
  plan.add({inject::FaultKind::kNetTruncate, 0, 0, 1, 2, 0.5});

  IngestServer::Config config;
  IngestServer server(config);
  server.start();

  inject::NetChaos chaos(plan);
  FleetPublisher::Config pub_config;
  pub_config.port = server.port();
  pub_config.batch_max_frames = 8;
  pub_config.backoff_initial = Second{0.001};
  pub_config.hook = &chaos;
  FleetPublisher pub(pub_config);

  // One stack, 32 sequential frames -> 4 batches of 8.
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    pub.offer(make_wire_frame(9, seq));
  }
  pub.flush();
  for (int i = 0; i < 5000 && !pub.pump(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 5000 && server.stats().frames < 24; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  EXPECT_EQ(chaos.stats().batches_truncated, 1u);
  EXPECT_EQ(pub.stats().hook_truncated_batches, 1u);
  EXPECT_EQ(pub.stats().frames_sent, 24u);

  const FleetView view = server.fleet_view();
  EXPECT_EQ(view.frames(), 24u);
  // The 8 truncated frames are a visible gap, not silent loss.
  EXPECT_EQ(view.missed(), 8u);
  EXPECT_EQ(view.stacks().at(9).next_sequence, 32u);
}

TEST(IngestLoopback, ThreadedSamplerToServerEndToEnd) {
  // Full production wiring: FleetSampler workers -> publisher thread ->
  // TCP -> sharded server, two publisher processes' worth of stacks in
  // disjoint id ranges (stack_id_base).
  IngestServer::Config server_config;
  server_config.shard_count = 2;
  IngestServer server(server_config);
  server.start();

  std::uint64_t produced = 0;
  for (const std::uint32_t base : {0u, 8u}) {
    telemetry::FleetSampler::Config fleet;
    fleet.stack_count = 3;
    fleet.thread_count = 1;
    fleet.scans_per_stack = 12;
    fleet.ring_capacity = 1024;
    fleet.seed = 7 + base;
    fleet.stack_id_base = base;
    telemetry::FleetSampler sampler(fleet);

    FleetPublisher::Config pub_config;
    pub_config.port = server.port();
    pub_config.flush_interval = Second{0.001};
    FleetPublisher pub(pub_config);
    pub.start(sampler.rings());
    sampler.run();
    pub.stop();

    EXPECT_EQ(pub.stats().frames_enqueued, sampler.total_frames());
    EXPECT_EQ(pub.stats().frames_sent, pub.stats().frames_enqueued);
    produced += sampler.total_frames();
  }

  for (int i = 0; i < 5000 && server.stats().frames < produced; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();

  EXPECT_EQ(server.stats().frames, produced);
  const FleetView view = server.fleet_view();
  EXPECT_EQ(view.frames(), produced);
  EXPECT_EQ(view.missed(), 0u);
  // Both id ranges visible, disjoint: 0..2 and 8..10.
  EXPECT_EQ(view.stacks().size(), 6u);
  EXPECT_EQ(view.stacks().count(0), 1u);
  EXPECT_EQ(view.stacks().count(8), 1u);
  EXPECT_EQ(view.stacks().count(5), 0u);
}

}  // namespace
}  // namespace tsvpt::ingest
