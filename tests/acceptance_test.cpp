// Paper-reproduction acceptance suite: the abstract's headline numbers,
// enforced.  These run the F3/F4/T1 experiments at reduced Monte-Carlo size
// (hundreds of dies instead of thousands) with fixed seeds, so CI fails if
// a model change silently pushes the reproduction out of the paper's band.
//
//   paper:  Vtn +-1.6 mV | Vtp +-0.8 mV | T +-1.5 degC | 367.5 pJ/conv
#include <gtest/gtest.h>

#include <cmath>

#include "core/pt_sensor.hpp"
#include "process/montecarlo.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

namespace tsvpt {
namespace {

const device::Technology kTech = device::Technology::tsmc65_like();

TEST(PaperAcceptance, VtExtractionWithinBand) {
  // Paper: "sensitivities of Vtn, Vtp ... merely +-1.6 mV, +-0.8 mV".
  const process::VariationModel variation{kTech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  const process::MonteCarlo mc{20260704, 400};
  Samples err_n;
  Samples err_p;
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(9000, trial)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{rng.uniform(20.0, 80.0)});
    env.vt_delta = die.at(0);
    const auto est = sensor.self_calibrate(env, &rng);
    ASSERT_TRUE(est.converged);
    err_n.add((est.dvtn.value() - die.at(0).nmos.value()) * 1e3);
    err_p.add((est.dvtp.value() - die.at(0).pmos.value()) * 1e3);
  });
  EXPECT_LT(err_n.three_sigma(), 1.6);   // paper's Vtn band
  EXPECT_LT(err_p.three_sigma(), 1.6);   // same order as the 0.8 mV claim
  EXPECT_LT(std::abs(err_n.mean()), 0.15);  // unbiased
  EXPECT_LT(std::abs(err_p.mean()), 0.15);
}

TEST(PaperAcceptance, TemperatureInaccuracyWithinBand) {
  // Paper: "the inaccuracy of temperature [is] merely +-1.5 degC".
  // (3-sigma over the population; allow 15 % slack for the reduced-size MC.)
  const process::VariationModel variation{kTech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  const process::MonteCarlo mc{424242, 150};
  Samples errors;
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(1000, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    (void)sensor.self_calibrate(env, &rng);
    for (double t = 0.0; t <= 100.0 + 1e-9; t += 20.0) {
      errors.add(sensor.read(env.at_celsius(Celsius{t}), &rng)
                     .temperature.value() -
                 t);
    }
  });
  EXPECT_LT(errors.three_sigma(), 1.5 * 1.15);
  EXPECT_LT(std::abs(errors.mean()), 0.2);
}

TEST(PaperAcceptance, ConversionEnergyMatchesHeadline) {
  // Paper: "367.5 pJ per conversion" (default full conversion at 25 degC).
  core::PtSensor sensor{core::PtSensor::Config{}, 42};
  core::DieEnvironment env;
  env.temperature = to_kelvin(Celsius{25.0});
  const auto est = sensor.self_calibrate(env, nullptr);
  EXPECT_NEAR(est.energy.value() * 1e12, 367.5, 5.0);
}

TEST(PaperAcceptance, SelfCalibrationBeatsUncalibratedByOrderOfMagnitude) {
  // The decoupling claim, quantified: on skewed dies the self-calibrated
  // reading must beat the typical-model reading by >= 10x.
  const process::VariationModel variation{kTech,
                                          {process::Point{2.5e-3, 2.5e-3}}};
  const process::MonteCarlo mc{777, 60};
  Samples cal;
  Samples uncal;
  mc.run([&](std::size_t trial, Rng& rng) {
    const process::DieVariation die = variation.sample_die(rng);
    core::PtSensor sensor{core::PtSensor::Config{}, derive_seed(5, trial)};
    core::DieEnvironment env;
    env.vt_delta = die.at(0);
    env.temperature = to_kelvin(Celsius{30.0});
    (void)sensor.self_calibrate(env, &rng);
    cal.add(sensor.read(env.at_celsius(Celsius{70.0}), &rng)
                .temperature.value() -
            70.0);
    // The "uncalibrated" view of the same die: invert the typical model.
    core::PtSensor typical{core::PtSensor::Config{}, derive_seed(5, trial)};
    core::DieEnvironment pretend = env.at_celsius(Celsius{70.0});
    // Trick: a sensor whose latched estimate is zero reads through the
    // typical curve.
    core::DieEnvironment zero;
    zero.temperature = to_kelvin(Celsius{26.85});
    (void)typical.self_calibrate(zero, nullptr);  // latches ~0 (clean die)
    uncal.add(typical.read(pretend, &rng).temperature.value() - 70.0);
  });
  EXPECT_GT(uncal.rms(), 10.0 * cal.rms());
}

}  // namespace
}  // namespace tsvpt
