#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "ptsim/rng.hpp"
#include "ptsim/stats.hpp"

namespace tsvpt::obs {
namespace {

/// Every test starts from zeroed values with the layer enabled; handles
/// registered by other tests (or the instrumented libraries) stay valid.
class ObsMetrics : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().set_enabled(true);
    Registry::instance().reset_values();
  }
  void TearDown() override {
    Registry::instance().set_enabled(true);
    Registry::instance().reset_values();
  }
};

TEST_F(ObsMetrics, CounterFindOrCreateDedupes) {
  const Counter a = counter("obs_test_dedupe_total");
  const Counter b = counter("obs_test_dedupe_total");
  a.inc();
  b.add(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsMetrics, DefaultConstructedHandlesAreInertNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  EXPECT_NO_THROW(c.inc());
  EXPECT_NO_THROW(g.set(1.0));
  EXPECT_NO_THROW(h.observe(1.0));
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsMetrics, GaugeSetAndAdd) {
  const Gauge g = gauge("obs_test_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(ObsMetrics, DisabledRegistryDropsEverything) {
  const Counter c = counter("obs_test_killswitch_total");
  const Histogram h = histogram("obs_test_killswitch_seconds");
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
  c.add(100);
  h.observe(1.0);
  set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // handle survived the off/on cycle
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsMetrics, ResetZeroesValuesButKeepsHandles) {
  const Counter c = counter("obs_test_reset_total");
  c.add(7);
  Registry::instance().reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

// The registry's whole reason to exist: exact totals under concurrent
// hammering from more threads than shards.  Run under TSan in CI.
TEST_F(ObsMetrics, ConcurrentCounterHammerIsExact) {
  constexpr std::size_t kThreads = 2 * kShards;
  constexpr std::uint64_t kPerThread = 50'000;
  const Counter c = counter("obs_test_hammer_total");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsMetrics, ConcurrentHistogramHammerKeepsEveryObservation) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20'000;
  const Histogram h = histogram("obs_test_hammer_seconds");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng{derive_seed(17, t)};
      for (std::size_t i = 0; i < kPerThread; ++i) {
        h.observe(rng.uniform(1e-6, 1e-3));
      }
    });
  }
  for (auto& t : threads) t.join();
  const Snapshot snap = Registry::instance().snapshot();
  for (const HistogramSnapshot& hs : snap.histograms) {
    if (hs.name != "obs_test_hammer_seconds") continue;
    EXPECT_EQ(hs.count, kThreads * kPerThread);
    EXPECT_GT(hs.sum, 0.0);
    EXPECT_LE(hs.p50, hs.p90);
    EXPECT_LE(hs.p90, hs.p99);
    EXPECT_LE(hs.p99, hs.max * (1.0 + 1e-12));
    return;
  }
  FAIL() << "histogram missing from snapshot";
}

HistogramSnapshot snapshot_of(const std::string& name) {
  const Snapshot snap = Registry::instance().snapshot();
  for (const HistogramSnapshot& hs : snap.histograms) {
    if (hs.name == name) return hs;
  }
  ADD_FAILURE() << name << " missing from snapshot";
  return {};
}

// Log-bucketed quantiles against the exact reference: with 8 sub-buckets
// per octave the relative error is bounded by the bucket width (~12.5%);
// assert 15% to leave room for the bucket-midpoint convention.
TEST_F(ObsMetrics, HistogramQuantilesTrackExactReference) {
  const Histogram h = histogram("obs_test_quantile_seconds");
  Samples reference;
  Rng rng{99};
  for (std::size_t i = 0; i < 20'000; ++i) {
    // Log-uniform over six decades: exercises many octaves, not one bucket.
    const double v = std::pow(10.0, rng.uniform(-7.0, -1.0));
    h.observe(v);
    reference.add(v);
  }
  const HistogramSnapshot hs = snapshot_of("obs_test_quantile_seconds");
  ASSERT_EQ(hs.count, reference.count());
  EXPECT_NEAR(hs.sum, 20'000 * reference.mean(), 1e-6 * hs.sum);
  EXPECT_DOUBLE_EQ(hs.max, reference.max());
  for (const auto& [q, got] : {std::pair{0.5, hs.p50},
                               std::pair{0.9, hs.p90},
                               std::pair{0.99, hs.p99}}) {
    const double want = reference.quantile(q);
    EXPECT_NEAR(got, want, 0.15 * want)
        << "q=" << q << " got " << got << " want " << want;
  }
}

TEST_F(ObsMetrics, HistogramEdgeBucketsAndExactMax) {
  const Histogram h = histogram("obs_test_edges_seconds");
  h.observe(0.0);      // zero bucket
  h.observe(-1.0);     // negative clamps into the zero bucket
  h.observe(1e-12);    // below 2^-30: clamps into the first log bucket
  h.observe(123.456);  // mid-range
  h.observe(1e9);      // above 2^12: overflow bucket, max still exact
  const HistogramSnapshot hs = snapshot_of("obs_test_edges_seconds");
  EXPECT_EQ(hs.count, 5u);
  EXPECT_DOUBLE_EQ(hs.max, 1e9);
  EXPECT_TRUE(std::isfinite(hs.p50));
  EXPECT_TRUE(std::isfinite(hs.p99));
  // p99 of five samples lands in the overflow bucket, whose reported value
  // is the exact max (not a bucket midpoint past the clamp).
  EXPECT_DOUBLE_EQ(hs.p99, 1e9);
}

TEST_F(ObsMetrics, EmptyHistogramExportsFiniteZeros) {
  (void)histogram("obs_test_empty_seconds");
  const HistogramSnapshot hs = snapshot_of("obs_test_empty_seconds");
  EXPECT_EQ(hs.count, 0u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.0);
  EXPECT_DOUBLE_EQ(hs.max, 0.0);
  EXPECT_DOUBLE_EQ(hs.p50, 0.0);
}

TEST_F(ObsMetrics, ScopedTimerObservesElapsedSeconds) {
  const Histogram h = histogram("obs_test_timer_seconds");
  { const ScopedTimer timer{h}; }
  const HistogramSnapshot hs = snapshot_of("obs_test_timer_seconds");
  EXPECT_EQ(hs.count, 1u);
  EXPECT_GE(hs.max, 0.0);
  EXPECT_LT(hs.max, 1.0);  // an empty scope does not take a second
}

TEST_F(ObsMetrics, SnapshotIsSortedByName) {
  (void)counter("obs_test_zz_total");
  (void)counter("obs_test_aa_total");
  const Snapshot snap = Registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

// -- golden-schema checks on the exposition formats ----------------------

TEST_F(ObsMetrics, PrometheusTextMatchesExpositionGrammar) {
  counter("obs_test_prom_total").add(3);
  gauge("obs_test_prom_gauge").set(1.5);
  const Histogram h = histogram("obs_test_prom_seconds");
  h.observe(0.5);
  h.observe(2.0);
  const std::string text = metrics_prometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  const std::regex type_line{
      R"re(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary))re"};
  const std::regex sample_line{
      R"re([a-zA-Z_:][a-zA-Z0-9_:]*(\{quantile="0\.(5|9|99)"\})? )re"
      R"re(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)re"};
  std::istringstream lines{text};
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(std::regex_match(line, type_line) ||
                std::regex_match(line, sample_line))
        << "bad exposition line: " << line;
  }
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_seconds_max gauge"),
            std::string::npos);
}

TEST_F(ObsMetrics, JsonExportParsesAndHoldsTheSections) {
  counter("obs_test_json_total").inc();
  histogram("obs_test_json_seconds").observe(1.0);
  const std::string json = metrics_json();
  EXPECT_TRUE(tsvpt::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_json_total\": 1"), std::string::npos);
}

}  // namespace
}  // namespace tsvpt::obs
