#include "thermal/workload.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tsvpt::thermal {
namespace {

StackConfig two_die_stack() {
  StackConfig cfg;
  DieGeometry die;
  die.nx = 4;
  die.ny = 4;
  cfg.dies.assign(2, die);
  cfg.bonds.assign(1, BondLayer{});
  return cfg;
}

Workload simple_workload() {
  WorkloadPhase a;
  a.name = "a";
  a.duration = Second{1e-3};
  a.directives.push_back(
      {PowerDirective::Kind::kUniform, 0, Watt{1.0}, {}, Meter{0.0}});
  WorkloadPhase b;
  b.name = "b";
  b.duration = Second{2e-3};
  b.directives.push_back(
      {PowerDirective::Kind::kUniform, 1, Watt{0.5}, {}, Meter{0.0}});
  return Workload{{a, b}};
}

TEST(Workload, TotalDuration) {
  EXPECT_DOUBLE_EQ(simple_workload().total_duration().value(), 3e-3);
}

TEST(Workload, PhaseAtBoundariesAndClamp) {
  const Workload w = simple_workload();
  EXPECT_EQ(w.phase_at(Second{0.0}), 0u);
  EXPECT_EQ(w.phase_at(Second{0.9e-3}), 0u);
  EXPECT_EQ(w.phase_at(Second{1.0e-3}), 1u);
  EXPECT_EQ(w.phase_at(Second{2.9e-3}), 1u);
  // Past the end: clamps to the last phase.
  EXPECT_EQ(w.phase_at(Second{10.0}), 1u);
}

TEST(Workload, RejectsNonPositiveDurations) {
  WorkloadPhase bad;
  bad.duration = Second{0.0};
  EXPECT_THROW((Workload{{bad}}), std::invalid_argument);
}

TEST(Workload, ApplyProgramsTheActivePhase) {
  ThermalNetwork net{two_die_stack()};
  const Workload w = simple_workload();
  w.apply(net, Second{0.5e-3});
  EXPECT_NEAR(net.total_power().value(), 1.0, 1e-12);
  EXPECT_NEAR(net.cell_power(0, 0, 0).value(), 1.0 / 16.0, 1e-12);
  w.apply(net, Second{1.5e-3});
  EXPECT_NEAR(net.total_power().value(), 0.5, 1e-12);
  EXPECT_NEAR(net.cell_power(0, 0, 0).value(), 0.0, 1e-12);
}

TEST(Workload, BurstIdleAlternates) {
  const StackConfig cfg = two_die_stack();
  const Workload w =
      Workload::burst_idle(cfg, Watt{2.0}, Watt{0.1}, Second{2e-3}, 3);
  ASSERT_EQ(w.phases().size(), 6u);
  EXPECT_DOUBLE_EQ(w.total_duration().value(), 6e-3);

  ThermalNetwork net{cfg};
  w.apply(net, Second{0.0});  // burst phase
  const double burst_power = net.total_power().value();
  w.apply(net, Second{1.5e-3});  // idle phase
  const double idle_power = net.total_power().value();
  EXPECT_GT(burst_power, idle_power);
  EXPECT_NEAR(idle_power, 0.2, 1e-9);  // 2 dies x 0.1 W
}

TEST(Workload, BurstIdleHotspotMigrates) {
  const StackConfig cfg = two_die_stack();
  const Workload w =
      Workload::burst_idle(cfg, Watt{2.0}, Watt{0.0}, Second{2e-3}, 2);
  ThermalNetwork net{cfg};
  w.apply(net, Second{0.0});
  const double corner_a_first = net.cell_power(0, 0, 0).value();
  w.apply(net, Second{2.0e-3});  // second cycle's burst
  const double corner_a_second = net.cell_power(0, 0, 0).value();
  EXPECT_GT(corner_a_first, corner_a_second);
}

TEST(Workload, BurstIdleValidation) {
  const StackConfig cfg = two_die_stack();
  EXPECT_THROW(
      (void)Workload::burst_idle(cfg, Watt{1.0}, Watt{0.1}, Second{1e-3}, 0),
      std::invalid_argument);
}

TEST(Workload, RandomWorkloadIsBoundedAndReproducible) {
  const StackConfig cfg = two_die_stack();
  Rng rng_a{42};
  Rng rng_b{42};
  const Workload a = Workload::random(cfg, rng_a, 5, Watt{3.0}, Second{1e-3});
  const Workload b = Workload::random(cfg, rng_b, 5, Watt{3.0}, Second{1e-3});
  ASSERT_EQ(a.phases().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(a.phases()[i].duration.value(),
                     b.phases()[i].duration.value());
    EXPECT_LE(a.phases()[i].duration.value(), 1e-3);
    for (const PowerDirective& d : a.phases()[i].directives) {
      EXPECT_LE(d.total.value(), 3.0);
      EXPECT_GE(d.total.value(), 0.0);
    }
  }
}

}  // namespace
}  // namespace tsvpt::thermal
