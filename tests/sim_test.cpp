#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "process/variation.hpp"
#include "sim/event_queue.hpp"
#include "sim/monitor_session.hpp"
#include "sim/thermal_guard.hpp"

namespace tsvpt::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Second{3e-3}, [&](Simulator&) { order.push_back(3); });
  sim.schedule_at(Second{1e-3}, [&](Simulator&) { order.push_back(1); });
  sim.schedule_at(Second{2e-3}, [&](Simulator&) { order.push_back(2); });
  sim.run_until(Second{1.0});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.processed_count(), 3u);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(Second{1e-3}, [&order, i](Simulator&) {
      order.push_back(i);
    });
  }
  sim.run_until(Second{1.0});
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Second{1e-3}, [&](Simulator&) { ++fired; });
  sim.schedule_at(Second{5e-3}, [&](Simulator&) { ++fired; });
  sim.run_until(Second{2e-3});
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().value(), 2e-3);
  sim.run_until(Second{10e-3});
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int ticks = 0;
  std::function<void(Simulator&)> tick = [&](Simulator& s) {
    ++ticks;
    if (ticks < 10) s.schedule_after(Second{1e-3}, tick);
  };
  sim.schedule_at(Second{0.0}, tick);
  sim.run_until(Second{1.0});
  EXPECT_EQ(ticks, 10);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(Second{1e-3}, [](Simulator&) {});
  sim.run_until(Second{2e-3});
  EXPECT_THROW(sim.schedule_at(Second{1e-3}, [](Simulator&) {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(Second{-1.0}, [](Simulator&) {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(Second{5e-3}, nullptr), std::invalid_argument);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Second{1e-3}, [&](Simulator& s) {
    ++fired;
    s.stop();
  });
  sim.schedule_at(Second{2e-3}, [&](Simulator&) { ++fired; });
  sim.run_until(Second{1.0});
  EXPECT_EQ(fired, 1);
}

struct SessionFixture {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  thermal::Workload workload = thermal::Workload::burst_idle(
      cfg, Watt{2.0}, Watt{0.2}, Second{20e-3}, 3);
  std::vector<core::SensorSite> sites;
  std::unique_ptr<core::StackMonitor> monitor;

  SessionFixture() {
    sites = core::StackMonitor::uniform_sites(cfg, 1, 1);
    const process::VariationModel model{
        device::Technology::tsmc65_like(), {sites[0].location}};
    Rng rng{5};
    for (auto& site : sites) {
      site.vt_delta = model.sample_die(rng).at(0);
    }
    monitor = std::make_unique<core::StackMonitor>(
        &network, core::PtSensor::Config{}, sites, 44);
  }
};

TEST(MonitoringSession, ProducesExpectedSampleCount) {
  SessionFixture fx;
  MonitoringSession::Config cfg;
  cfg.sample_period = Second{5e-3};
  cfg.thermal_step = Second{1e-3};
  MonitoringSession session{&fx.network, &fx.workload, fx.monitor.get(), cfg,
                            7};
  session.run(Second{60e-3});
  EXPECT_EQ(session.trace().size(), 12u);
  EXPECT_EQ(session.trace().front().readings.size(), 4u);
}

TEST(MonitoringSession, TrackingErrorsSmall) {
  SessionFixture fx;
  MonitoringSession::Config cfg;
  cfg.sample_period = Second{5e-3};
  cfg.thermal_step = Second{1e-3};
  MonitoringSession session{&fx.network, &fx.workload, fx.monitor.get(), cfg,
                            8};
  session.run(Second{60e-3});
  const Samples errors = session.error_samples();
  ASSERT_GT(errors.count(), 0u);
  EXPECT_LT(errors.max_abs(), 3.0);
  EXPECT_GT(session.total_sensing_energy().value(), 0.0);
}

TEST(MonitoringSession, TdmReadoutStillProducesFullScans) {
  SessionFixture fx;
  MonitoringSession::Config cfg;
  cfg.sample_period = Second{10e-3};
  cfg.thermal_step = Second{1e-3};
  cfg.readout_slot = Second{0.5e-3};
  MonitoringSession session{&fx.network, &fx.workload, fx.monitor.get(), cfg,
                            12};
  session.run(Second{60e-3});
  ASSERT_FALSE(session.trace().empty());
  for (const auto& point : session.trace()) {
    EXPECT_EQ(point.readings.size(), 4u);
  }
  // Per-reading errors remain conversion-accurate (truth is per-instant).
  EXPECT_LT(session.error_samples().max_abs(), 4.0);
}

TEST(MonitoringSession, TdmReadoutSkewsLaterSitesTowardNewerThermalState) {
  // Pin the documented readout_slot semantics: during a heating transient,
  // a serialized (TDM) scan visits sites one slot apart, so later sites see
  // a *newer* (here: hotter) thermal state, while simultaneous readout
  // (readout_slot = 0) sees one instant.  Four sites sit at symmetric
  // locations on die 0 under a uniform load, so at any single instant their
  // true temperatures are identical — any spread is pure readout skew.
  const thermal::StackConfig stack_cfg = thermal::StackConfig::four_die_stack();
  thermal::WorkloadPhase heat;
  heat.name = "heat";
  heat.duration = Second{1.0};
  heat.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                             Watt{8.0}, {}, Meter{0.0}});
  const thermal::Workload workload{{heat}};

  auto run_session = [&](Second slot) {
    thermal::ThermalNetwork network{stack_cfg};
    std::vector<core::SensorSite> sites;
    const double w = stack_cfg.dies[0].width.value();
    const double h = stack_cfg.dies[0].height.value();
    const double fractions[4][2] = {
        {0.25, 0.25}, {0.75, 0.25}, {0.25, 0.75}, {0.75, 0.75}};
    for (const auto& f : fractions) {
      core::SensorSite site;
      site.die = 0;
      site.location = {f[0] * w, f[1] * h};
      sites.push_back(site);
    }
    core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites, 21};
    MonitoringSession::Config cfg;
    cfg.sample_period = Second{10e-3};
    cfg.thermal_step = Second{1e-3};
    cfg.start_at_steady_state = false;  // heat up from ambient
    cfg.readout_slot = slot;
    MonitoringSession session{&network, &workload, &monitor, cfg, 31};
    session.run(Second{10e-3});
    return session.trace().at(0).readings;
  };

  const auto simultaneous = run_session(Second{0.0});
  const auto serialized = run_session(Second{2e-3});
  ASSERT_EQ(simultaneous.size(), 4u);
  ASSERT_EQ(serialized.size(), 4u);

  // Simultaneous readout: symmetric sites agree to the stack's tiny
  // physical asymmetry (the TSV field), far below the TDM skew tested next.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(simultaneous[i].truth.value(), simultaneous[0].truth.value(),
                0.01);
  }
  // Site 0 is read at the scan instant in both modes: identical trajectory,
  // identical truth.
  EXPECT_DOUBLE_EQ(serialized[0].truth.value(), simultaneous[0].truth.value());
  // TDM readout: site i is read i slots later, so (relative to the same
  // site's simultaneous reading, which cancels any spatial asymmetry) its
  // truth reflects a strictly newer, hotter state — and monotonically more
  // so down the scan chain.
  double previous_skew = 0.0;
  for (std::size_t i = 1; i < 4; ++i) {
    const double skew =
        serialized[i].truth.value() - simultaneous[i].truth.value();
    EXPECT_GT(skew, previous_skew + 0.05) << "site " << i;
    previous_skew = skew;
  }
}

TEST(StackMonitorSampleSite, MatchesSampleAllOrdering) {
  SessionFixture fx;
  fx.network.set_uniform_power(0, Watt{1.0});
  fx.network.set_temperatures(fx.network.steady_state());
  fx.monitor->calibrate_all(nullptr);
  const auto all = fx.monitor->sample_all(nullptr);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto one = fx.monitor->sample_site(i, nullptr);
    EXPECT_EQ(one.site_index, all[i].site_index);
    EXPECT_EQ(one.die, all[i].die);
    EXPECT_DOUBLE_EQ(one.truth.value(), all[i].truth.value());
  }
  EXPECT_THROW((void)fx.monitor->sample_site(99, nullptr), std::out_of_range);
}

TEST(MonitoringSession, ValidatesArguments) {
  SessionFixture fx;
  MonitoringSession::Config cfg;
  EXPECT_THROW(
      (MonitoringSession{nullptr, &fx.workload, fx.monitor.get(), cfg, 1}),
      std::invalid_argument);
  cfg.sample_period = Second{0.0};
  EXPECT_THROW((MonitoringSession{&fx.network, &fx.workload, fx.monitor.get(),
                                  cfg, 1}),
               std::invalid_argument);
}

TEST(ThermalGuard, ThrottlingReducesPeak) {
  SessionFixture fx;
  // A hot uniform workload the (single, central) sensor can see directly;
  // runs start from ambient, so the guard has a transient to catch.
  thermal::WorkloadPhase burst;
  burst.name = "burst";
  burst.duration = Second{40e-3};
  burst.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                              Watt{15.0}, {}, Meter{0.0}});
  thermal::WorkloadPhase idle;
  idle.name = "idle";
  idle.duration = Second{40e-3};
  idle.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                             Watt{0.5}, {}, Meter{0.0}});
  const thermal::Workload hot{{burst, idle, burst, idle}};
  ThermalGuard::Config cfg;
  cfg.throttle_on = Celsius{42.0};
  cfg.throttle_off = Celsius{38.0};
  cfg.sample_period = Second{2e-3};
  cfg.thermal_step = Second{1e-3};
  const ThermalGuard guard{cfg};

  SessionFixture fx2;
  const auto unguarded =
      guard.run(fx.network, hot, *fx.monitor, Second{160e-3}, 3, false);
  const auto guarded =
      guard.run(fx2.network, hot, *fx2.monitor, Second{160e-3}, 3, true);

  EXPECT_GT(unguarded.max_true.value(), cfg.throttle_on.value());
  EXPECT_LT(guarded.max_true.value(), unguarded.max_true.value());
  EXPECT_LT(guarded.overshoot_integral, unguarded.overshoot_integral);
  EXPECT_GT(guarded.throttle_events, 0u);
  EXPECT_GT(guarded.throttled_fraction, 0.0);
  EXPECT_EQ(unguarded.throttle_events, 0u);
}

TEST(ThermalGuard, SensedTracksTrue) {
  SessionFixture fx;
  ThermalGuard::Config cfg;
  cfg.sample_period = Second{5e-3};
  cfg.thermal_step = Second{1e-3};
  const ThermalGuard guard{cfg};
  const auto result =
      guard.run(fx.network, fx.workload, *fx.monitor, Second{60e-3}, 4, true);
  // max_true is tracked at every thermal step while max_sensed only exists
  // at sampling instants, so the comparison carries sampling slack on top of
  // sensor error.
  EXPECT_NEAR(result.max_sensed.value(), result.max_true.value(), 8.0);
}

}  // namespace
}  // namespace tsvpt::sim
