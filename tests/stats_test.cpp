#include "ptsim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ptsim/rng.hpp"

namespace tsvpt {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, MaxAbsUsesBothTails) {
  RunningStats s;
  s.add(-5.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.max_abs(), 5.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng{5};
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.gaussian(3.0, 2.0);
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Samples, QuantileInterpolates) {
  Samples s{{1.0, 2.0, 3.0, 4.0, 5.0}};
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Samples, QuantileRejectsOutOfRange) {
  Samples s{{1.0, 2.0}};
  EXPECT_THROW((void)s.quantile(1.5), std::invalid_argument);
}

TEST(Samples, RmsAndThreeSigma) {
  Samples s{{3.0, -4.0}};
  EXPECT_DOUBLE_EQ(s.rms(), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(s.three_sigma(), 3.0 * 3.5);
}

TEST(Samples, AddInvalidatesSortCache) {
  Samples s{{5.0, 1.0}};
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(-7.0);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max_abs(), 7.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 0.0, 4}), std::invalid_argument);
}

TEST(Histogram, RenderContainsRows) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.2);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(FitLine, RecoversExactLine) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyFitHasReasonableR2) {
  Rng rng{3};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(0.5 * i + rng.gaussian(0.0, 1.0));
  }
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, RejectsDegenerate) {
  EXPECT_THROW((void)fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_line({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Correlation, PerfectAndAnti) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> up{2.0, 4.0, 6.0};
  std::vector<double> down{6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, down), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Rng rng{8};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.gaussian());
    y.push_back(rng.gaussian());
  }
  EXPECT_NEAR(correlation(x, y), 0.0, 0.02);
}

}  // namespace
}  // namespace tsvpt
