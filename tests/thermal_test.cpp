#include "process/tsv_stress.hpp"
#include "thermal/network.hpp"
#include "thermal/stack_config.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::thermal {
namespace {

StackConfig small_stack(std::size_t dies = 2, std::size_t grid = 4) {
  StackConfig cfg;
  DieGeometry die;
  die.width = Meter{5e-3};
  die.height = Meter{5e-3};
  die.thickness = Meter{100e-6};
  die.nx = grid;
  die.ny = grid;
  cfg.dies.assign(dies, die);
  cfg.bonds.assign(dies - 1, BondLayer{});
  cfg.tsv.centers = process::TsvStressField::grid_layout(
      die.width, die.height, 3, 3);
  return cfg;
}

TEST(StackConfig, ValidateCatchesInconsistencies) {
  StackConfig cfg = small_stack();
  cfg.bonds.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = small_stack();
  cfg.dies[0].nx = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = small_stack();
  cfg.sink_resistance = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  EXPECT_NO_THROW(StackConfig::four_die_stack().validate());
}

TEST(ThermalNetwork, NoPowerSettlesAtAmbient) {
  ThermalNetwork net{small_stack()};
  const auto field = net.steady_state();
  for (double t : field) {
    EXPECT_NEAR(t, net.config().ambient.value(), 1e-6);
  }
}

TEST(ThermalNetwork, SteadyStateEnergyBalance) {
  // In equilibrium the injected power must equal the heat leaving through
  // the boundaries; equivalently mean rise ~ P * R_effective.
  ThermalNetwork net{small_stack()};
  net.set_uniform_power(0, Watt{1.0});
  const auto field = net.steady_state();
  // Residual check: reapply the conductance operator.
  // (steady_state solved G T = P + Gb Tamb, so the per-node residual of
  // that equation should be tiny.)
  double max_t = 0.0;
  for (double t : field) max_t = std::max(max_t, t);
  const double ambient = net.config().ambient.value();
  // 1 W through ~2 K/W sink: average die-0 rise close to 2 K.
  EXPECT_GT(max_t, ambient + 1.0);
  EXPECT_LT(max_t, ambient + 10.0);
}

TEST(ThermalNetwork, MorePowerIsHotter) {
  ThermalNetwork net{small_stack()};
  net.set_uniform_power(0, Watt{0.5});
  const auto low = net.steady_state();
  net.set_uniform_power(0, Watt{2.0});
  const auto high = net.steady_state();
  for (std::size_t i = 0; i < low.size(); ++i) {
    EXPECT_GT(high[i], low[i]);
  }
}

TEST(ThermalNetwork, HeatSourceDieIsHottest) {
  ThermalNetwork net{small_stack(3)};
  net.set_uniform_power(2, Watt{1.0});  // top die heated
  const auto field = net.steady_state();
  net.set_temperatures(field);
  EXPECT_GT(net.max_temperature(2).value(), net.max_temperature(0).value());
}

TEST(ThermalNetwork, HotspotIsLocalized) {
  StackConfig cfg = small_stack(1, 8);
  ThermalNetwork net{cfg};
  net.add_hotspot(0, {1e-3, 1e-3}, Meter{0.4e-3}, Watt{1.0});
  EXPECT_NEAR(net.total_power().value(), 1.0, 1e-9);
  const auto field = net.steady_state();
  net.set_temperatures(field);
  const double near_spot = net.temperature_at(0, {1e-3, 1e-3}).value();
  const double far_corner = net.temperature_at(0, {4.7e-3, 4.7e-3}).value();
  EXPECT_GT(near_spot, far_corner + 0.5);
}

TEST(ThermalNetwork, TransientApproachesSteadyState) {
  ThermalNetwork net{small_stack()};
  net.set_uniform_power(0, Watt{1.5});
  const auto steady = net.steady_state();
  net.set_uniform_temperature(net.config().ambient);
  // Step well past the dominant time constant.
  for (int i = 0; i < 200; ++i) net.step(Second{2e-3});
  const auto& state = net.temperatures();
  for (std::size_t i = 0; i < steady.size(); ++i) {
    EXPECT_NEAR(state[i], steady[i], 0.05);
  }
}

TEST(ThermalNetwork, TransientFromSteadyStateStays) {
  ThermalNetwork net{small_stack()};
  net.set_uniform_power(0, Watt{1.0});
  net.set_temperatures(net.steady_state());
  const auto before = net.temperatures();
  net.step(Second{5e-3});
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(net.temperatures()[i], before[i], 1e-3);
  }
}

TEST(ThermalNetwork, CoolingIsMonotone) {
  ThermalNetwork net{small_stack()};
  net.set_uniform_temperature(Kelvin{350.0});
  double prev = 350.0;
  for (int i = 0; i < 10; ++i) {
    net.step(Second{1e-3});
    const double now = net.max_temperature(0).value();
    EXPECT_LE(now, prev + 1e-9);
    prev = now;
  }
  EXPECT_GT(prev, net.config().ambient.value() - 1e-9);
}

TEST(ThermalNetwork, TsvsImproveVerticalCoupling) {
  // Heat the top die: with a dense TSV field the bottom-to-top gradient
  // must shrink versus a via-free bond.
  StackConfig with_tsv = small_stack(2);
  with_tsv.tsv.centers = process::TsvStressField::grid_layout(
      Meter{5e-3}, Meter{5e-3}, 16, 16);
  StackConfig without_tsv = small_stack(2);
  without_tsv.tsv.centers.clear();

  auto gradient = [](StackConfig cfg) {
    ThermalNetwork net{std::move(cfg)};
    net.set_uniform_power(1, Watt{1.0});
    const auto field = net.steady_state();
    net.set_temperatures(field);
    return net.max_temperature(1).value() - net.max_temperature(0).value();
  };
  EXPECT_LT(gradient(with_tsv), gradient(without_tsv));
}

TEST(ThermalNetwork, ScalePower) {
  ThermalNetwork net{small_stack()};
  net.set_uniform_power(0, Watt{2.0});
  net.scale_power(0.25);
  EXPECT_NEAR(net.total_power().value(), 0.5, 1e-12);
  EXPECT_THROW(net.scale_power(-1.0), std::invalid_argument);
}

TEST(ThermalNetwork, InterpolationMatchesCellCenters) {
  StackConfig cfg = small_stack(1, 4);
  ThermalNetwork net{cfg};
  net.add_hotspot(0, {2.5e-3, 2.5e-3}, Meter{1e-3}, Watt{1.0});
  net.set_temperatures(net.steady_state());
  const double cell_w = 5e-3 / 4.0;
  for (std::size_t ix = 0; ix < 4; ++ix) {
    for (std::size_t iy = 0; iy < 4; ++iy) {
      const process::Point center{(static_cast<double>(ix) + 0.5) * cell_w,
                                  (static_cast<double>(iy) + 0.5) * cell_w};
      EXPECT_NEAR(net.temperature_at(0, center).value(),
                  net.temperature_at(0, ix, iy).value(), 1e-9);
    }
  }
}

TEST(ThermalNetwork, IndexingAndBounds) {
  ThermalNetwork net{small_stack(2, 4)};
  EXPECT_EQ(net.node_count(), 32u);
  EXPECT_EQ(net.node_index(0, 0, 0), 0u);
  EXPECT_EQ(net.node_index(1, 0, 0), 16u);
  EXPECT_THROW((void)net.node_index(2, 0, 0), std::out_of_range);
  EXPECT_THROW((void)net.node_index(0, 4, 0), std::out_of_range);
}

TEST(ThermalNetwork, StableSubstepPositive) {
  ThermalNetwork net{small_stack()};
  EXPECT_GT(net.stable_substep().value(), 0.0);
  EXPECT_LT(net.stable_substep().value(), 1.0);
}

TEST(ThermalNetwork, StepRejectsNonPositiveDt) {
  ThermalNetwork net{small_stack()};
  EXPECT_THROW(net.step(Second{0.0}), std::invalid_argument);
}

TEST(ThermalNetwork, SetTemperaturesValidatesSize) {
  ThermalNetwork net{small_stack()};
  EXPECT_THROW(net.set_temperatures(std::vector<double>(5, 300.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsvpt::thermal
