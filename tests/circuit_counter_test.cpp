#include "circuit/counter.hpp"
#include "circuit/energy.hpp"
#include "circuit/supply.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::circuit {
namespace {

FrequencyCounter::Config default_config() {
  FrequencyCounter::Config cfg;
  cfg.reference = ReferenceClock{};
  cfg.window = Second{2e-6};
  cfg.counter_bits = 16;
  return cfg;
}

TEST(FrequencyCounter, WindowIsWholeReferenceCycles) {
  const FrequencyCounter counter{default_config()};
  // 2 us at 25 MHz = exactly 50 cycles.
  EXPECT_EQ(counter.reference_cycles(), 50u);
  EXPECT_DOUBLE_EQ(counter.nominal_window().value(), 2e-6);
}

TEST(FrequencyCounter, ResolutionIsInverseWindow) {
  const FrequencyCounter counter{default_config()};
  EXPECT_DOUBLE_EQ(counter.resolution().value(), 0.5e6);
}

TEST(FrequencyCounter, DeterministicMeasurementQuantizes) {
  const FrequencyCounter counter{default_config()};
  const auto reading = counter.measure(Hertz{100e6}, nullptr);
  EXPECT_EQ(reading.count, 200u);
  EXPECT_DOUBLE_EQ(reading.measured.value(), 100e6);
  EXPECT_FALSE(reading.saturated);
}

TEST(FrequencyCounter, QuantizationErrorBounded) {
  const FrequencyCounter counter{default_config()};
  Rng rng{55};
  for (int trial = 0; trial < 2000; ++trial) {
    const double f = rng.uniform(1e6, 400e6);
    const auto reading = counter.measure(Hertz{f}, &rng);
    // With jitter at 5 ppm the dominant error is the +-1-count quantization.
    EXPECT_NEAR(reading.measured.value(), f,
                1.5 * counter.resolution().value());
  }
}

TEST(FrequencyCounter, SystematicPpmShiftsReading) {
  FrequencyCounter::Config cfg = default_config();
  cfg.reference.systematic_ppm = 1000.0;  // reference runs 0.1 % fast
  cfg.reference.jitter_ppm_rms = 0.0;
  const FrequencyCounter counter{cfg};
  const auto reading = counter.measure(Hertz{200e6}, nullptr);
  // Fast reference -> shorter real window -> undercount by ~0.1 %.
  EXPECT_NEAR(reading.measured.value(), 200e6 * (1.0 - 1e-3),
              2.0 * counter.resolution().value());
}

TEST(FrequencyCounter, SaturationFlagsAndClamps) {
  FrequencyCounter::Config cfg = default_config();
  cfg.counter_bits = 8;
  const FrequencyCounter counter{cfg};
  const auto reading = counter.measure(Hertz{1e9}, nullptr);
  EXPECT_TRUE(reading.saturated);
  EXPECT_EQ(reading.count, 255u);
}

TEST(FrequencyCounter, ZeroFrequencyCountsZeroOrOne) {
  const FrequencyCounter counter{default_config()};
  const auto reading = counter.measure(Hertz{0.0}, nullptr);
  EXPECT_LE(reading.count, 1u);
}

TEST(FrequencyCounter, NegativeFrequencyThrows) {
  const FrequencyCounter counter{default_config()};
  EXPECT_THROW((void)counter.measure(Hertz{-1.0}, nullptr),
               std::invalid_argument);
}

TEST(FrequencyCounter, RejectsBadConfigs) {
  FrequencyCounter::Config cfg = default_config();
  cfg.window = Second{0.0};
  EXPECT_THROW((FrequencyCounter{cfg}), std::invalid_argument);
  cfg = default_config();
  cfg.counter_bits = 0;
  EXPECT_THROW((FrequencyCounter{cfg}), std::invalid_argument);
  cfg = default_config();
  cfg.window = Second{1e-9};  // shorter than one 25 MHz cycle
  EXPECT_THROW((FrequencyCounter{cfg}), std::invalid_argument);
}

TEST(FrequencyCounter, NoiseIsSeedDeterministic) {
  const FrequencyCounter counter{default_config()};
  Rng a{9};
  Rng b{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(counter.measure(Hertz{123.456e6}, &a).count,
              counter.measure(Hertz{123.456e6}, &b).count);
  }
}

TEST(SupplyRail, DroopAndNoise) {
  SupplyRail rail{{Volt{1.0}, Volt{50e-3}, Volt{10e-3}}};
  EXPECT_DOUBLE_EQ(rail.effective(nullptr).value(), 0.95);
  Rng rng{77};
  {
    double sum = 0.0;
    double sum2 = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
      const double v = rail.effective(&rng).value();
      sum += v;
      sum2 += v * v;
    }
    const double mean = sum / kN;
    const double sigma = std::sqrt(sum2 / kN - mean * mean);
    EXPECT_NEAR(mean, 0.95, 5e-4);
    EXPECT_NEAR(sigma, 10e-3, 5e-4);
  }
}

TEST(ConversionEnergy, BreakdownAccumulates) {
  ConversionEnergyParams params;
  params.per_count = Joule{10e-15};
  params.control_fixed = Joule{100e-12};
  params.bias_static = Watt{1e-6};
  ConversionEnergyModel model{params};
  model.reset();
  model.add_oscillator_window(Joule{50e-15}, 200, Second{2e-6});
  model.add_oscillator_window(Joule{30e-15}, 100, Second{2e-6});
  const ConversionEnergyBreakdown breakdown = model.finish();
  EXPECT_NEAR(breakdown.oscillators.value(), 50e-15 * 200 + 30e-15 * 100,
              1e-20);
  EXPECT_NEAR(breakdown.counters.value(), 10e-15 * 300, 1e-20);
  EXPECT_NEAR(breakdown.control.value(), 100e-12, 1e-20);
  EXPECT_NEAR(breakdown.bias.value(), 1e-6 * 4e-6, 1e-20);
  EXPECT_NEAR(breakdown.total().value(),
              breakdown.oscillators.value() + breakdown.counters.value() +
                  breakdown.control.value() + breakdown.bias.value(),
              1e-20);
}

TEST(ConversionEnergy, ResetClears) {
  ConversionEnergyModel model;
  model.add_oscillator_window(Joule{50e-15}, 1000, Second{1e-6});
  model.reset();
  const ConversionEnergyBreakdown breakdown = model.finish();
  EXPECT_DOUBLE_EQ(breakdown.oscillators.value(), 0.0);
  EXPECT_DOUBLE_EQ(breakdown.bias.value(), 0.0);
}

}  // namespace
}  // namespace tsvpt::circuit
