#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "store/store.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt::store {
namespace {

telemetry::Frame make_frame(std::uint32_t stack, std::uint64_t sequence,
                            double sim_time) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.sequence = sequence;
  frame.sim_time = Second{sim_time};
  frame.capture_ns = 1'000'000 * sequence + stack;
  for (std::size_t i = 0; i < 4; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = i / 2;
    r.location = {0.5e-3 * static_cast<double>(i % 2),
                  0.5e-3 * static_cast<double>(i / 2)};
    r.sensed = Celsius{40.0 + 0.01 * static_cast<double>(sequence) +
                       0.5 * static_cast<double>(i)};
    r.truth = Celsius{r.sensed.value() - 0.3};
    r.energy = Joule{2.0e-9};
    frame.readings.push_back(r);
  }
  return frame;
}

std::string fresh_dir(const char* name) {
  // Per-process root: sanitizer jobs may run this binary concurrently.
  const std::filesystem::path dir =
      std::filesystem::path{testing::TempDir()} /
      ("tsvpt_store_tests_" + std::to_string(::getpid())) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir.parent_path());
  return dir.string();
}

/// A FrameSink that persists through the writer AND remembers arrival order
/// under one lock, so the on-disk order and the in-memory baseline agree
/// even with concurrent fleet workers.
class RecordingSink : public telemetry::FrameSink {
 public:
  explicit RecordingSink(StoreWriter& writer) : writer_(writer) {}

  void on_frame(const telemetry::Frame& frame,
                const std::vector<std::uint8_t>& wire) override {
    (void)wire;
    std::lock_guard<std::mutex> lock{mutex_};
    writer_.append(frame);
    seen_.push_back(frame);
  }

  [[nodiscard]] const std::vector<telemetry::Frame>& seen() const {
    return seen_;
  }

 private:
  StoreWriter& writer_;
  std::mutex mutex_;
  std::vector<telemetry::Frame> seen_;
};

void run_fleet(telemetry::FrameSink* sink, std::uint64_t seed,
               std::size_t stacks, std::size_t scans) {
  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = stacks;
  cfg.scans_per_stack = scans;
  cfg.seed = seed;
  cfg.sink = sink;
  telemetry::FleetSampler sampler{cfg};
  sampler.run();
}

TEST(StoreHistorian, RecordThenQueryReturnsExactFramesInOrder) {
  const std::string dir = fresh_dir("record_query");
  std::vector<telemetry::Frame> baseline;
  {
    StoreWriter writer{dir};
    RecordingSink sink{writer};
    run_fleet(&sink, /*seed=*/7, /*stacks=*/4, /*scans=*/20);
    writer.close();
    baseline = sink.seen();
  }
  ASSERT_EQ(baseline.size(), 80u);

  const StoreReader reader{dir};
  const std::vector<telemetry::Frame> stored = reader.query({});
  ASSERT_EQ(stored.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(stored[i] == baseline[i]) << "frame " << i;
  }
  EXPECT_EQ(reader.verify(), 0u);
}

TEST(StoreHistorian, ReplayMatchesLiveIngestExactly) {
  // The acceptance property: replaying the store through an Aggregator must
  // produce the same analysis a live collector would have produced from the
  // same frames — alert for alert, stack for stack.
  const std::string dir = fresh_dir("replay_parity");
  std::vector<telemetry::Frame> baseline;
  {
    StoreWriter writer{dir};
    RecordingSink sink{writer};
    run_fleet(&sink, /*seed=*/13, /*stacks=*/3, /*scans=*/30);
    writer.close();
    baseline = sink.seen();
  }

  telemetry::Aggregator live{telemetry::Aggregator::Config{}};
  for (const telemetry::Frame& frame : baseline) {
    live.ingest(telemetry::encode(frame));
  }

  telemetry::Aggregator replayed{telemetry::Aggregator::Config{}};
  const StoreReader reader{dir};
  const StoreReader::ReplayResult result = reader.replay({}, replayed);
  EXPECT_EQ(result.corrupt_blocks, 0u);
  EXPECT_EQ(result.frames_replayed, baseline.size());

  const telemetry::Aggregator::Summary& a = live.summary();
  const telemetry::Aggregator::Summary& b = replayed.summary();
  EXPECT_EQ(b.frames, a.frames);
  EXPECT_EQ(b.decode_errors, 0u);
  EXPECT_EQ(b.alerts, a.alerts);
  EXPECT_EQ(b.alerts_by_kind, a.alerts_by_kind);
  EXPECT_EQ(b.substituted_readings, a.substituted_readings);
  EXPECT_EQ(b.health_transitions.size(), a.health_transitions.size());
  ASSERT_EQ(b.stacks.size(), a.stacks.size());
  for (const auto& [stack_id, live_stats] : a.stacks) {
    const auto it = b.stacks.find(stack_id);
    ASSERT_NE(it, b.stacks.end()) << "stack " << stack_id;
    EXPECT_EQ(it->second.frames, live_stats.frames);
    EXPECT_EQ(it->second.missed, live_stats.missed);
    EXPECT_EQ(it->second.alerts, live_stats.alerts);
  }
}

TEST(StoreHistorian, CrashAtEveryByteRecoversAPrefixAndResumes) {
  // Tear the store at EVERY byte offset.  Whatever survives must be an exact
  // prefix of the recorded sequence — never a corrupt or reordered frame —
  // and reopening for append must resume cleanly after the survivors.
  const std::string dir = fresh_dir("crash_prefix");
  StoreOptions opts;
  opts.block_frames = 4;
  opts.fsync_every_blocks = 1;
  {
    StoreWriter writer{dir, opts};
    for (std::uint64_t i = 0; i < 18; ++i) {
      writer.append(make_frame(1, i, 1e-3 * static_cast<double>(i)));
    }
    writer.close();
  }
  const std::vector<std::string> files = list_segment_files(dir);
  ASSERT_EQ(files.size(), 1u);
  std::vector<std::uint8_t> golden;
  ASSERT_TRUE(read_file(files[0], golden));
  const std::vector<telemetry::Frame> baseline = StoreReader{dir}.query({});
  ASSERT_EQ(baseline.size(), 18u);

  const std::string crash_dir = fresh_dir("crash_prefix_torn");
  std::filesystem::create_directories(crash_dir);
  const std::string crash_file =
      (std::filesystem::path{crash_dir} / "seg-000001.tsl").string();
  for (std::size_t len = 0; len <= golden.size(); ++len) {
    {
      std::FILE* file = std::fopen(crash_file.c_str(), "wb");
      ASSERT_NE(file, nullptr);
      if (len > 0) {
        ASSERT_EQ(std::fwrite(golden.data(), 1, len, file), len);
      }
      ASSERT_EQ(std::fclose(file), 0);
    }

    const StoreReader reader{crash_dir};
    EXPECT_EQ(reader.verify(), 0u) << "length " << len;
    StoreReader::Cursor cursor = reader.scan();
    telemetry::Frame frame;
    std::size_t served = 0;
    while (cursor.next(frame)) {
      ASSERT_LT(served, baseline.size()) << "length " << len;
      EXPECT_TRUE(frame == baseline[served]) << "length " << len << " frame "
                                             << served;
      served += 1;
    }
    EXPECT_EQ(cursor.corrupt_blocks(), 0u) << "length " << len;

    // Sample the writer path too: reopen the torn store, append, and check
    // the new frame lands right after the recovered prefix.
    if (len % 7 == 0) {
      const std::size_t prefix = served;
      {
        StoreWriter writer{crash_dir, opts};
        writer.append(make_frame(1, 99, 1.0));
        writer.close();
      }
      const std::vector<telemetry::Frame> resumed =
          StoreReader{crash_dir}.query({});
      ASSERT_EQ(resumed.size(), prefix + 1) << "length " << len;
      for (std::size_t i = 0; i < prefix; ++i) {
        EXPECT_TRUE(resumed[i] == baseline[i]) << "length " << len;
      }
      EXPECT_EQ(resumed.back().sequence, 99u) << "length " << len;
    }
  }
}

TEST(StoreHistorian, TimeAndStackFiltersSkipBySparseIndex) {
  const std::string dir = fresh_dir("filters");
  StoreOptions opts;
  opts.block_frames = 2;  // several blocks, so header skipping is exercised
  {
    StoreWriter writer{dir, opts};
    for (std::uint64_t i = 0; i < 10; ++i) {
      writer.append(make_frame(1, i, 1e-3 * static_cast<double>(i)));
      writer.append(make_frame(2, i, 1e-3 * static_cast<double>(i)));
    }
    writer.close();
  }
  const StoreReader reader{dir};

  StoreReader::Query window;
  window.t_min = 3e-3;
  window.t_max = 6e-3;
  window.stack_ids = {2};
  const std::vector<telemetry::Frame> hits = reader.query(window);
  ASSERT_EQ(hits.size(), 4u);  // scans 3..6 of stack 2
  for (const telemetry::Frame& frame : hits) {
    EXPECT_EQ(frame.stack_id, 2u);
    EXPECT_GE(frame.sim_time.value(), window.t_min);
    EXPECT_LE(frame.sim_time.value(), window.t_max);
  }

  StoreReader::Query nobody;
  nobody.stack_ids = {42};
  EXPECT_TRUE(reader.query(nobody).empty());

  // The limit short-circuits the cursor.
  EXPECT_EQ(reader.query({}, 5).size(), 5u);
}

TEST(StoreHistorian, SiteFilterPrunesQueriesButReplaysWholeFrames) {
  const std::string dir = fresh_dir("site_filter");
  {
    StoreWriter writer{dir};
    for (std::uint64_t i = 0; i < 8; ++i) {
      writer.append(make_frame(1, i, 1e-3 * static_cast<double>(i)));
    }
    writer.close();
  }
  const StoreReader reader{dir};

  StoreReader::Query query;
  query.site_ids = {1};
  const std::vector<telemetry::Frame> pruned = reader.query(query);
  ASSERT_EQ(pruned.size(), 8u);
  for (const telemetry::Frame& frame : pruned) {
    ASSERT_EQ(frame.readings.size(), 1u);
    EXPECT_EQ(frame.readings[0].site_index, 1u);
  }

  StoreReader::Query absent;
  absent.site_ids = {99};
  EXPECT_TRUE(reader.query(absent).empty());

  // Replay must NOT prune: dropping readings would renumber sites and the
  // re-encoded frame would be rejected by the wire codec's dense-index
  // check.  Zero decode errors proves whole frames went through.
  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  const StoreReader::ReplayResult result = reader.replay(query, aggregator);
  EXPECT_EQ(result.frames_replayed, 8u);
  EXPECT_EQ(aggregator.summary().decode_errors, 0u);
  EXPECT_EQ(aggregator.summary().frames, 8u);
}

TEST(StoreHistorian, FlushMakesPartialBlockDurable) {
  const std::string dir = fresh_dir("flush");
  StoreWriter writer{dir};  // block_frames = 64, far from full
  writer.append(make_frame(1, 0, 0.0));
  writer.append(make_frame(1, 1, 1e-3));
  writer.append(make_frame(1, 2, 2e-3));
  EXPECT_TRUE(StoreReader{dir}.query({}).empty());  // still buffered
  writer.flush();
  EXPECT_EQ(StoreReader{dir}.query({}).size(), 3u);  // sealed + synced
  writer.close();
}

TEST(StoreHistorian, WriterReopenResumesWithoutTornTail) {
  const std::string dir = fresh_dir("reopen");
  StoreOptions opts;
  opts.block_frames = 2;
  {
    StoreWriter writer{dir, opts};
    for (std::uint64_t i = 0; i < 6; ++i) {
      writer.append(make_frame(3, i, 1e-3 * static_cast<double>(i)));
    }
    writer.close();
  }
  {
    StoreWriter writer{dir, opts};
    EXPECT_EQ(writer.stats().torn_tail_recoveries, 0u);
    for (std::uint64_t i = 6; i < 10; ++i) {
      writer.append(make_frame(3, i, 1e-3 * static_cast<double>(i)));
    }
    writer.close();
  }
  const StoreReader reader{dir};
  const std::vector<telemetry::Frame> frames = reader.query({});
  ASSERT_EQ(frames.size(), 10u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].sequence, i);  // one contiguous history, in order
  }
  EXPECT_EQ(reader.segments().size(), 1u);  // resumed, not a fresh segment
}

TEST(StoreHistorian, AppendAfterCloseThrows) {
  const std::string dir = fresh_dir("closed");
  StoreWriter writer{dir};
  writer.append(make_frame(1, 0, 0.0));
  writer.close();
  EXPECT_THROW(writer.append(make_frame(1, 1, 1e-3)), std::logic_error);
}

TEST(StoreHistorian, CompactionOfEmptyOrMissingStoreIsANoOp) {
  const Retention aggressive{.max_bytes = 1, .max_age = Second{1e-9}};

  const std::string empty = fresh_dir("compact_empty");
  std::filesystem::create_directories(empty);
  const CompactionReport on_empty = compact_store(empty, aggressive);
  EXPECT_EQ(on_empty.segments_removed, 0u);
  EXPECT_EQ(on_empty.segments_rewritten, 0u);
  EXPECT_EQ(on_empty.bytes_before, 0u);

  const CompactionReport on_missing =
      compact_store(fresh_dir("compact_missing"), aggressive);
  EXPECT_EQ(on_missing.segments_removed, 0u);
  EXPECT_EQ(on_missing.bytes_after, 0u);
}

TEST(StoreHistorian, OnlineCompactionNeverTouchesTheOpenSegment) {
  const std::string dir = fresh_dir("compact_open");
  StoreOptions opts;
  opts.block_frames = 2;  // seals land in the (single, open) segment
  StoreWriter writer{dir, opts};
  for (std::uint64_t i = 0; i < 6; ++i) {
    writer.append(make_frame(1, i, 1e-3 * static_cast<double>(i)));
  }
  const CompactionReport report =
      writer.compact({.max_bytes = 1, .max_age = Second{1e-9}});
  EXPECT_EQ(report.segments_removed, 0u);
  EXPECT_EQ(report.segments_rewritten, 0u);
  EXPECT_EQ(writer.stats().frames, 6u);  // nothing was harmed
  writer.close();
  EXPECT_EQ(StoreReader{dir}.query({}).size(), 6u);
}

TEST(StoreHistorian, ExpiryExactlyOnBlockEdgeSurvives) {
  // Retention is a closed interval: a block whose t_max lands exactly on
  // the cutoff is NOT expired.  One epsilon tighter and it is.
  const std::string dir = fresh_dir("expiry_edge");
  StoreOptions opts;
  opts.block_frames = 4;
  {
    StoreWriter writer{dir, opts};
    for (const double t : {0.0, 0.25, 0.5, 1.0}) {  // block A, t_max = 1.0
      writer.append(make_frame(1, static_cast<std::uint64_t>(t * 4), t));
    }
    for (const double t : {2.0, 2.25, 2.5, 3.0}) {  // block B, newest = 3.0
      writer.append(make_frame(1, 8 + static_cast<std::uint64_t>(t * 4), t));
    }
    writer.close();
  }

  // cutoff = 3.0 - 2.0 = 1.0 == block A's t_max: A survives.
  const CompactionReport on_edge =
      compact_store(dir, {.max_age = Second{2.0}});
  EXPECT_EQ(on_edge.blocks_dropped, 0u);
  EXPECT_EQ(on_edge.segments_rewritten, 0u);
  EXPECT_EQ(StoreReader{dir}.query({}).size(), 8u);

  // cutoff = 1.5 > 1.0: A expires; the shared segment is rewritten in
  // place, keeping only block B.
  const CompactionReport past_edge =
      compact_store(dir, {.max_age = Second{1.5}});
  EXPECT_EQ(past_edge.segments_rewritten, 1u);
  EXPECT_EQ(past_edge.blocks_dropped, 1u);
  EXPECT_EQ(past_edge.frames_dropped, 4u);
  EXPECT_LT(past_edge.bytes_after, past_edge.bytes_before);

  const StoreReader reader{dir};
  const std::vector<telemetry::Frame> frames = reader.query({});
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_DOUBLE_EQ(frames.front().sim_time.value(), 2.0);
  EXPECT_EQ(reader.verify(), 0u);  // the rewrite kept records bit-exact
}

TEST(StoreHistorian, ByteBudgetDropsOldestWholeSegments) {
  const std::string dir = fresh_dir("byte_budget");
  StoreOptions opts;
  opts.block_frames = 4;
  opts.segment_bytes = 1;  // roll after every sealed block: 1 block/segment
  {
    StoreWriter writer{dir, opts};
    for (std::uint64_t i = 0; i < 16; ++i) {
      writer.append(make_frame(1, i, 1e-3 * static_cast<double>(i)));
    }
    writer.close();
  }
  {
    const StoreReader before{dir};
    ASSERT_EQ(before.segments().size(), 4u);
  }

  // Budget for exactly the newest two segments.
  const StoreReader sizing{dir};
  const std::uint64_t budget = sizing.segments()[2].valid_bytes +
                               sizing.segments()[3].valid_bytes + 1;
  const CompactionReport report =
      compact_store(dir, {.max_bytes = budget});
  EXPECT_EQ(report.segments_removed, 2u);
  EXPECT_LE(report.bytes_after, budget);

  const StoreReader reader{dir};
  const std::vector<telemetry::Frame> frames = reader.query({});
  ASSERT_EQ(frames.size(), 8u);
  EXPECT_EQ(frames.front().sequence, 8u);  // the oldest half is gone
  EXPECT_EQ(frames.back().sequence, 15u);
  EXPECT_EQ(reader.verify(), 0u);
}

TEST(StoreHistorian, CompactionConcurrentWithActiveWriter) {
  // Retention must be safe to run while appends continue: the writer-side
  // pass only touches sealed segments.  Afterwards the surviving history
  // must be a contiguous, uncorrupted suffix ending at the newest frame.
  const std::string dir = fresh_dir("concurrent_compact");
  StoreOptions opts;
  opts.block_frames = 2;
  opts.segment_bytes = 600;  // small segments -> frequent rolls
  opts.fsync_every_blocks = 0;
  StoreWriter writer{dir, opts};

  std::thread appender{[&] {
    for (std::uint64_t i = 0; i < 300; ++i) {
      writer.append(make_frame(1, i, 1e-4 * static_cast<double>(i)));
    }
  }};
  for (int i = 0; i < 100; ++i) {
    const CompactionReport report = writer.compact({.max_bytes = 8192});
    EXPECT_EQ(report.segments_rewritten, 0u);  // byte budget only
    std::this_thread::yield();
  }
  appender.join();
  writer.close();

  const StoreReader reader{dir};
  EXPECT_EQ(reader.verify(), 0u);
  const std::vector<telemetry::Frame> frames = reader.query({});
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().sequence, 299u);  // close() sealed the newest
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].sequence, frames[i - 1].sequence + 1)
        << "history must stay contiguous — only oldest segments may drop";
  }
}

TEST(StoreHistorian, FleetRecordingCompressesPastThreeToOne) {
  // The headline number: a realistic fleet capture at default options must
  // beat the raw wire codec by >3x (the bench asserts the same bar).
  const std::string dir = fresh_dir("compression");
  StoreWriter writer{dir};
  run_fleet(&writer, /*seed=*/5, /*stacks=*/4, /*scans=*/60);
  writer.close();

  const StoreStats stats = writer.stats();
  EXPECT_EQ(stats.frames, 240u);
  EXPECT_GT(stats.bytes_raw, stats.bytes_on_disk);
  EXPECT_GT(stats.compression_ratio(), 3.0)
      << stats.bytes_on_disk << " bytes on disk vs " << stats.bytes_raw
      << " raw";
  EXPECT_EQ(stats.stack_ids.size(), 4u);
  EXPECT_EQ(stats.torn_tail_recoveries, 0u);

  const StoreStats reread = StoreReader{dir}.stats();
  EXPECT_EQ(reread.frames, stats.frames);
  EXPECT_EQ(reread.bytes_on_disk, stats.bytes_on_disk);
}

}  // namespace
}  // namespace tsvpt::store
