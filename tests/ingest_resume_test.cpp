// At-least-once delivery end-to-end: spill-queue crash recovery (torn
// tails, stale markers), kill-and-resume with server-side dedup keeping the
// FleetView exactly-once, ack-loss and duplicate-batch chaos, the FIN drain
// handshake, heartbeat keepalive vs idle reaping, and deterministic
// reconnect jitter.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "ingest/fleet_view.hpp"
#include "ingest/publisher.hpp"
#include "ingest/server.hpp"
#include "ingest/spill.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/frame.hpp"

namespace tsvpt::ingest {
namespace {

/// Deterministic synthetic frame: contents depend only on (stack, seq).
std::vector<std::uint8_t> make_wire_frame(std::uint32_t stack,
                                          std::uint64_t seq) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.sequence = seq;
  frame.sim_time = Second{1e-3 * static_cast<double>(seq)};
  for (std::size_t i = 0; i < 4; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = i / 2;
    r.location = {1e-3 * static_cast<double>(i), 2e-3};
    r.sensed = Celsius{55.0 + static_cast<double>(stack % 7) +
                       0.25 * static_cast<double>(i) +
                       0.01 * static_cast<double>(seq % 17)};
    r.truth = Celsius{r.sensed.value() - 0.2};
    frame.readings.push_back(r);
  }
  return telemetry::encode(frame);
}

std::vector<std::vector<std::uint8_t>> make_fleet(std::size_t stacks,
                                                  std::size_t frames_each) {
  std::vector<std::vector<std::uint8_t>> wire;
  wire.reserve(stacks * frames_each);
  for (std::uint64_t seq = 0; seq < frames_each; ++seq) {
    for (std::uint32_t s = 0; s < stacks; ++s) {
      wire.push_back(make_wire_frame(s, seq));
    }
  }
  return wire;
}

/// Single-process ground truth for digest comparison.
FleetView baseline_view(const std::vector<std::vector<std::uint8_t>>& wire) {
  std::vector<telemetry::Alert> alerts;
  telemetry::Aggregator agg({}, [&](const telemetry::Alert& alert) {
    alerts.push_back(alert);
  });
  for (const auto& frame : wire) agg.ingest(frame);
  FleetView view;
  view.add_shard(agg.summary(), alerts);
  view.finalize();
  return view;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path{testing::TempDir()} / name;
  std::filesystem::remove_all(dir);
  return dir;
}

void wait_for_frames(IngestServer& server, std::uint64_t expect) {
  for (int i = 0; i < 5000 && server.stats().frames < expect; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(SpillQueue, AppendReadAckReopenRoundTrip) {
  const auto dir = fresh_dir("spill-roundtrip");
  const std::vector<std::uint8_t> payload_a(100, 0xAB);
  const std::vector<std::uint8_t> payload_b(50, 0xCD);
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    EXPECT_FALSE(info.marker_found);
    EXPECT_TRUE(info.unacked_seqs.empty());
    q.append(1, 8, payload_a);
    q.append(2, 4, payload_b);
    q.append(3, 2, payload_a);
    q.note_next_seq(4);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(q.read(2, out));
    EXPECT_EQ(out, payload_b);
    EXPECT_EQ(q.frame_count_of(1), 8u);
    q.ack(1);
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_FALSE(q.read(1, out));  // retired by the cumulative ack
    q.close();
  }
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    EXPECT_TRUE(info.marker_found);
    EXPECT_EQ(info.acked_seq, 1u);
    EXPECT_EQ(info.next_seq, 4u);
    ASSERT_EQ(info.unacked_seqs, (std::vector<std::uint64_t>{2, 3}));
    EXPECT_FALSE(info.tail_truncated);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(q.read(3, out));
    EXPECT_EQ(out, payload_a);
    EXPECT_EQ(q.frame_count_of(2), 4u);
  }
}

TEST(SpillQueue, TornTailIsTruncatedNotFatal) {
  const auto dir = fresh_dir("spill-torn");
  const std::vector<std::uint8_t> payload(200, 0x5A);
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    q.append(1, 8, payload);
    q.append(2, 8, payload);
    q.close();
  }
  // A SIGKILL mid-append leaves a partial record at the tail: emulate the
  // torn write with half a record header of garbage.
  {
    std::ofstream log((dir / "spill.log").string(),
                      std::ios::binary | std::ios::app);
    const char torn[] = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66};
    log.write(torn, sizeof(torn));
  }
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    EXPECT_TRUE(info.tail_truncated);
    ASSERT_EQ(info.unacked_seqs, (std::vector<std::uint64_t>{1, 2}));
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(q.read(2, out));
    EXPECT_EQ(out, payload);
    // The log was truncated back to the last intact record, so appends
    // continue from a clean tail.
    q.append(3, 8, payload);
    ASSERT_TRUE(q.read(3, out));
    EXPECT_EQ(out, payload);
  }
}

TEST(SpillQueue, TornPayloadDropsOnlyFinalRecord) {
  const auto dir = fresh_dir("spill-torn-payload");
  const std::vector<std::uint8_t> payload(300, 0x77);
  std::uintmax_t full_size = 0;
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    q.append(1, 8, payload);
    q.append(2, 8, payload);
    q.close();
    full_size = std::filesystem::file_size(dir / "spill.log");
  }
  // Cut into record 2's payload: its header is intact but the payload CRC
  // cannot be, so recovery must drop exactly that record.
  std::filesystem::resize_file(dir / "spill.log", full_size - 100);
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    EXPECT_TRUE(info.tail_truncated);
    ASSERT_EQ(info.unacked_seqs, (std::vector<std::uint64_t>{1}));
    // Seq allocation still clears the dropped record: seq 2 was seen in
    // the log header before the tear, and next_seq must never reuse it...
    EXPECT_GE(info.next_seq, 2u);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(q.read(1, out));
    EXPECT_EQ(out, payload);
  }
}

TEST(SpillQueue, MissingMarkerReplaysConservatively) {
  const auto dir = fresh_dir("spill-stale-marker");
  const std::vector<std::uint8_t> payload(64, 0x3C);
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    q.append(1, 8, payload);
    q.append(2, 8, payload);
    q.ack(2);
    q.close();
  }
  // Lose the marker (a crash before its first persist): recovery must fall
  // back to replaying everything in the log — the safe direction, since
  // the server's dedup absorbs the replays.
  std::filesystem::remove(dir / "spill.ack");
  {
    SpillQueue::RecoverInfo info;
    SpillQueue q = SpillQueue::open(dir.string(), {}, info);
    EXPECT_FALSE(info.marker_found);
    EXPECT_EQ(info.acked_seq, 0u);
    EXPECT_EQ(info.unacked_seqs, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(info.next_seq, 3u);  // high-water mark from the log itself
  }
}

TEST(SpillQueue, CompactionTruncatesFullyAckedLog) {
  const auto dir = fresh_dir("spill-compact");
  SpillQueue::Options options;
  options.compact_min_bytes = 1;  // compact as soon as everything is dead
  const std::vector<std::uint8_t> payload(512, 0x42);
  SpillQueue::RecoverInfo info;
  SpillQueue q = SpillQueue::open(dir.string(), options, info);
  q.append(1, 8, payload);
  q.append(2, 8, payload);
  EXPECT_GT(q.log_bytes(), kSpillHeaderSize);
  q.ack(2);
  EXPECT_EQ(q.compactions(), 1u);
  EXPECT_EQ(q.log_bytes(), kSpillHeaderSize);
  EXPECT_EQ(q.depth(), 0u);
  // Still writable after compaction.
  q.append(3, 8, payload);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(q.read(3, out));
  EXPECT_EQ(out, payload);
}

TEST(IngestResume, KilledPublisherResumesFromSpillWithoutLoss) {
  // The headline gate in miniature: a publisher that never learns what the
  // server received (every ack dropped), "SIGKILL'd" mid-stream, restarted
  // against its spill dir — the FleetView must match the single-process
  // baseline bit for bit, with zero frame loss and zero double counting.
  const auto wire = make_fleet(6, 32);
  const auto spill_dir = fresh_dir("resume-spill");

  IngestServer::Config server_config;
  server_config.shard_count = 2;
  IngestServer server(server_config);
  server.start();

  FleetPublisher::Config config;
  config.port = server.port();
  config.batch_max_frames = 16;
  config.spill_dir = spill_dir.string();
  config.backoff_initial = Second{0.0};

  // Incarnation 1: acks never arrive, so nothing is ever retired from the
  // spill log or the unacked window.
  inject::FaultPlan drop_acks;
  drop_acks.add({inject::FaultKind::kAckDrop, 0, 0, 0, 1u << 20, 0.0});
  inject::NetChaos chaos(std::move(drop_acks));
  std::uint64_t publisher_id = 0;
  {
    FleetPublisher::Config first = config;
    first.hook = &chaos;
    FleetPublisher pub(first);
    publisher_id = pub.publisher_id();
    for (const auto& frame : wire) pub.offer(frame);
    pub.flush();
    for (int i = 0; i < 2000 && !pub.pump(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(pub.stats().frames_sent, wire.size());
    // Keep polling until the server's acks have arrived (and been eaten by
    // the chaos hook): the window must never advance.
    for (int i = 0; i < 2000 && pub.stats().hook_acks_dropped == 0; ++i) {
      (void)pub.pump();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(pub.acked_seq(), 0u);  // every ack was dropped
    EXPECT_GT(pub.stats().hook_acks_dropped, 0u);
    // Destroyed without drain: the process dies here.  Everything it sent
    // is also still in the spill log, unacked.
  }
  wait_for_frames(server, wire.size());

  // Incarnation 2: same spill dir, same derived identity.  It replays the
  // whole unacked window; the server already ingested every batch, so
  // dedup must veto all of them.
  {
    FleetPublisher pub(config);
    EXPECT_EQ(pub.publisher_id(), publisher_id);
    EXPECT_EQ(pub.stats().resumed_batches, 12u);  // 192 frames / 16 per batch
    EXPECT_EQ(pub.stats().resumed_frames, wire.size());
    for (int i = 0; i < 2000 && !pub.pump(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(pub.drain(Second{5.0}));
    EXPECT_EQ(pub.stats().retransmitted_frames, wire.size());
    EXPECT_EQ(pub.stats().frames_sent, 0u);  // nothing new, only replays
    EXPECT_GT(pub.acked_seq(), 0u);
  }
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.frames, wire.size());
  EXPECT_EQ(stats.duplicate_frames, wire.size());
  EXPECT_GT(stats.duplicate_batches, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.fin_drains, 1u);

  const FleetView view = server.fleet_view();
  const FleetView baseline = baseline_view(wire);
  EXPECT_EQ(view.frames(), wire.size());
  EXPECT_EQ(view.missed(), 0u);
  EXPECT_EQ(view.digest(), baseline.digest());
}

TEST(IngestResume, MidStreamDisconnectRetransmitsAndServerDedups) {
  // kNetDrop cuts the connection right after batch 2 reaches the kernel;
  // kAckDrop covering the same seqs guarantees the publisher never saw the
  // ack, so the reconnect MUST retransmit and the server MUST dedup.
  const auto wire = make_fleet(4, 16);
  IngestServer server({});
  server.start();

  inject::FaultPlan plan;
  plan.add({inject::FaultKind::kNetDrop, 0, 0, 2, 3, 0.0});
  plan.add({inject::FaultKind::kAckDrop, 0, 0, 0, 3, 0.0});
  inject::NetChaos chaos(std::move(plan));

  FleetPublisher::Config config;
  config.port = server.port();
  config.batch_max_frames = 8;
  config.backoff_initial = Second{0.0};
  config.hook = &chaos;
  FleetPublisher pub(config);
  for (const auto& frame : wire) pub.offer(frame);
  pub.flush();
  for (int i = 0; i < 2000 && !pub.pump(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pub.drain(Second{5.0}));
  server.stop();

  EXPECT_EQ(chaos.stats().connections_dropped, 1u);
  EXPECT_GE(pub.stats().retransmitted_batches, 1u);
  EXPECT_EQ(pub.stats().frames_sent, wire.size());

  const auto stats = server.stats();
  EXPECT_GE(stats.duplicate_batches, 1u);
  EXPECT_EQ(stats.frames, wire.size());  // dedup kept it exactly-once
  EXPECT_EQ(stats.protocol_errors, 0u);

  const FleetView view = server.fleet_view();
  EXPECT_EQ(view.frames(), wire.size());
  EXPECT_EQ(view.missed(), 0u);
  EXPECT_EQ(view.digest(), baseline_view(wire).digest());
}

TEST(IngestResume, DuplicateBatchChaosIsAbsorbedByDedup) {
  const auto wire = make_fleet(4, 16);
  IngestServer server({});
  server.start();

  inject::FaultPlan plan;
  plan.add({inject::FaultKind::kDupBatch, 0, 0, 1, 3, 0.0});
  inject::NetChaos chaos(std::move(plan));

  FleetPublisher::Config config;
  config.port = server.port();
  config.batch_max_frames = 8;
  config.hook = &chaos;
  FleetPublisher pub(config);
  for (const auto& frame : wire) pub.offer(frame);
  pub.flush();
  for (int i = 0; i < 2000 && !pub.pump(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pub.drain(Second{5.0}));
  server.stop();

  EXPECT_EQ(chaos.stats().batches_duplicated, 2u);
  EXPECT_EQ(pub.stats().hook_duplicated_batches, 2u);

  const auto stats = server.stats();
  EXPECT_EQ(stats.duplicate_batches, 2u);
  EXPECT_EQ(stats.frames, wire.size());
  const FleetView view = server.fleet_view();
  EXPECT_EQ(view.frames(), wire.size());
  EXPECT_EQ(view.missed(), 0u);
  EXPECT_EQ(view.digest(), baseline_view(wire).digest());
}

TEST(IngestResume, FinDrainHandshakeCompletesAndCompactsSpill) {
  const auto wire = make_fleet(3, 8);
  const auto spill_dir = fresh_dir("drain-spill");
  IngestServer server({});
  server.start();

  FleetPublisher::Config config;
  config.port = server.port();
  config.batch_max_frames = 8;
  config.spill_dir = spill_dir.string();
  config.spill.compact_min_bytes = 1;
  config.spill.persist_marker_every = 1;
  FleetPublisher pub(config);
  for (const auto& frame : wire) pub.offer(frame);
  EXPECT_TRUE(pub.drain(Second{5.0}));
  EXPECT_TRUE(pub.stats().drained);
  EXPECT_EQ(pub.stats().fin_sent, 1u);
  EXPECT_EQ(pub.stats().unacked_batches, 0u);
  server.stop();
  EXPECT_EQ(server.stats().fin_drains, 1u);
  EXPECT_EQ(server.stats().frames, wire.size());

  // Everything acked: a later incarnation finds an empty window.
  pub.disconnect();
  SpillQueue::RecoverInfo info;
  SpillQueue q = SpillQueue::open(spill_dir.string(), {}, info);
  (void)q;
  EXPECT_TRUE(info.unacked_seqs.empty());
  EXPECT_GE(info.acked_seq, 1u);
}

TEST(IngestResume, HeartbeatKeepsConnectionAliveAndSilenceIsReaped) {
  IngestServer::Config server_config;
  server_config.idle_conn_timeout = Second{0.25};
  IngestServer server(server_config);
  server.start();

  FleetPublisher::Config config;
  config.port = server.port();
  FleetPublisher pub(config);
  // Establish the connection with one real batch.
  pub.offer(make_wire_frame(0, 0));
  pub.flush();
  for (int i = 0; i < 2000 && !pub.pump(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pub.connected());

  // Heartbeats well inside the timeout: the server must keep us.
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pub.heartbeat();
    (void)pub.pump();
  }
  EXPECT_GE(pub.stats().heartbeats_sent, 8u);
  auto stats = server.stats();
  EXPECT_EQ(stats.reaped_connections, 0u);
  EXPECT_GE(stats.heartbeats, 7u);
  EXPECT_EQ(stats.open_connections, 1u);

  // Go silent: the idle reaper must close us within a few timeouts.
  for (int i = 0; i < 5000 && server.stats().reaped_connections == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().reaped_connections, 1u);
  server.stop();
}

TEST(IngestResume, BackoffJitterIsSeedDeterministic) {
  // Two publishers with the same jitter seed draw identical backoff
  // schedules; different seeds diverge.  Observable consequence: identical
  // failed-connect counts over a fixed pump cadence would be timing-flaky,
  // so assert on the deterministic surface instead — the jitter stream.
  Rng a{derive_seed(1234, 0xB0FFu)};
  Rng b{derive_seed(1234, 0xB0FFu)};
  Rng c{derive_seed(5678, 0xB0FFu)};
  bool diverged = false;
  for (int i = 0; i < 32; ++i) {
    const double draw_a = a.uniform();
    EXPECT_EQ(draw_a, b.uniform());
    if (draw_a != c.uniform()) diverged = true;
  }
  EXPECT_TRUE(diverged);

  // And the publisher path actually survives jittered backoff against a
  // dead endpoint without shedding anything (spill-less, under the queue
  // bound).
  FleetPublisher::Config config;
  config.port = 1;  // nothing listens here
  config.batch_max_frames = 4;
  config.backoff_initial = Second{0.0001};
  config.backoff_jitter = 0.5;
  config.jitter_seed = 1234;
  FleetPublisher pub(config);
  for (std::uint64_t i = 0; i < 16; ++i) pub.offer(make_wire_frame(0, i));
  pub.flush();
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(pub.pump());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pub.stats().frames_sent, 0u);
  EXPECT_EQ(pub.stats().queue_dropped_batches, 0u);
  EXPECT_FALSE(pub.stats().connected_once);
}

}  // namespace
}  // namespace tsvpt::ingest
