#include "calib/polyfit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ptsim/rng.hpp"

namespace tsvpt::calib {
namespace {

TEST(Polynomial, HornerEvaluation) {
  const Polynomial p{Vector{1.0, -2.0, 3.0}};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(2.0), 9.0);
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, EmptyRejected) {
  EXPECT_THROW((Polynomial{Vector{}}), std::invalid_argument);
}

TEST(Polynomial, Derivative) {
  const Polynomial p{Vector{5.0, 1.0, 2.0}};  // 5 + x + 2x^2
  const Polynomial d = p.derivative();
  EXPECT_DOUBLE_EQ(d(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d(3.0), 13.0);
  const Polynomial constant{Vector{7.0}};
  EXPECT_DOUBLE_EQ(constant.derivative()(10.0), 0.0);
}

TEST(Polynomial, InvertMonotone) {
  const Polynomial p{Vector{0.0, 2.0}};  // y = 2x
  EXPECT_NEAR(p.invert(5.0, 0.0, 10.0), 2.5, 1e-10);
}

TEST(Polynomial, InvertCubic) {
  const Polynomial p{Vector{0.0, 0.0, 0.0, 1.0}};  // y = x^3
  EXPECT_NEAR(p.invert(8.0, 0.0, 3.0), 2.0, 1e-8);
}

TEST(Polynomial, InvertUnbracketedThrows) {
  const Polynomial p{Vector{0.0, 1.0}};
  EXPECT_THROW((void)p.invert(100.0, 0.0, 1.0), std::runtime_error);
}

TEST(Polyfit, RecoversExactCoefficients) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 10; ++i) {
    const double xi = -2.0 + 0.4 * i;
    x.push_back(xi);
    y.push_back(1.0 + 2.0 * xi - 0.5 * xi * xi);
  }
  const Polynomial p = polyfit(x, y, 2);
  ASSERT_EQ(p.coefficients().size(), 3u);
  EXPECT_NEAR(p.coefficients()[0], 1.0, 1e-9);
  EXPECT_NEAR(p.coefficients()[1], 2.0, 1e-9);
  EXPECT_NEAR(p.coefficients()[2], -0.5, 1e-9);
}

TEST(Polyfit, CenteringHandlesOffsetDomain) {
  // Temperatures in kelvin (270..400): a naive Vandermonde would be badly
  // conditioned; centered fit must still nail the values.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i <= 40; ++i) {
    const double t = 270.0 + 3.25 * i;
    x.push_back(t);
    y.push_back(1e8 * std::exp(0.01 * (t - 300.0)));
  }
  const Polynomial p = polyfit(x, y, 4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(p(x[i]), y[i], 2e-4 * std::abs(y[i]));
  }
}

TEST(Polyfit, NoisyLinearNearTruth) {
  Rng rng{9};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double xi = rng.uniform(-1.0, 1.0);
    x.push_back(xi);
    y.push_back(3.0 * xi - 1.0 + rng.gaussian(0.0, 0.01));
  }
  const Polynomial p = polyfit(x, y, 1);
  EXPECT_NEAR(p.coefficients()[0], -1.0, 5e-3);
  EXPECT_NEAR(p.coefficients()[1], 3.0, 5e-3);
}

TEST(Polyfit, RejectsBadShapes) {
  EXPECT_THROW((void)polyfit({1.0, 2.0}, {1.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)polyfit({1.0, 2.0}, {1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(Polyfit, MaxResidualReportsWorstCase) {
  const Polynomial p{Vector{0.0, 1.0}};
  const double worst = max_residual(p, {0.0, 1.0, 2.0}, {0.0, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(worst, 0.5);
}

}  // namespace
}  // namespace tsvpt::calib
