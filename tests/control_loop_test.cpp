// Controller-in-the-loop integration tests: runaway containment, graceful
// degradation on sensor loss, the MonitoringSession actuation seam, and
// thread-count invariance of a fleet chaos campaign.
#include "control/eval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "control/controller.hpp"
#include "core/health_supervisor.hpp"
#include "core/stack_monitor.hpp"
#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "process/variation.hpp"
#include "sim/monitor_session.hpp"
#include "telemetry/fleet_sampler.hpp"
#include "thermal/leakage.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::control {
namespace {

constexpr std::size_t kHotDie = 3;  // top die: every bond layer from sink

thermal::StackConfig weak_sink_stack(double sink_r) {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  cfg.sink_resistance = sink_r;
  return cfg;
}

void attach_leakage(thermal::ThermalNetwork& net) {
  const device::Technology tech = device::Technology::tsmc65_like();
  const auto cells = static_cast<double>(net.config().dies[0].nx *
                                         net.config().dies[0].ny);
  for (std::size_t d = 0; d < net.config().die_count(); ++d) {
    net.set_leakage_power(
        d, thermal::leakage_source(tech, Volt{1.0}, Watt{0.10 / cells},
                                   Kelvin{318.15}));
  }
}

thermal::Workload top_die_workload(double peak_w) {
  thermal::WorkloadPhase hot;
  hot.name = "hot";
  hot.duration = Second{10.0};
  hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, kHotDie,
                            Watt{peak_w}, {}, Meter{0.0}});
  for (std::size_t d = 0; d < kHotDie; ++d) {
    hot.directives.push_back({thermal::PowerDirective::Kind::kUniform, d,
                              Watt{0.5}, {}, Meter{0.0}});
  }
  return thermal::Workload{{hot}};
}

std::vector<core::SensorSite> make_sites(const thermal::StackConfig& cfg,
                                         std::uint64_t seed) {
  std::vector<core::SensorSite> sites =
      core::StackMonitor::uniform_sites(cfg, 2, 2);
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) points.push_back(sites[i].location);
  process::VariationModel variation{device::Technology::tsmc65_like(),
                                    points};
  Rng rng{seed};
  for (std::size_t d = 0; d < cfg.die_count(); ++d) {
    const process::DieVariation die = variation.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) sites[d * 4 + i].vt_delta = die.at(i);
  }
  return sites;
}

Controller::Config loop_config(PolicyKind kind) {
  Controller::Config cfg;
  cfg.kind = kind;
  cfg.policy.ceiling = Celsius{69.0};
  cfg.policy.floor = Celsius{63.0};
  cfg.violation_ceiling = Celsius{80.0};
  cfg.plant.unscalable_fraction = 0.5;
  return cfg;
}

EvalResult run_runaway_scenario(PolicyKind kind, std::size_t static_level,
                                const EvalConfig& eval) {
  const thermal::StackConfig stack = weak_sink_stack(5.0);
  thermal::ThermalNetwork network{stack};
  attach_leakage(network);
  const thermal::Workload workload = top_die_workload(8.0);
  std::vector<core::SensorSite> sites = make_sites(stack, 11);
  core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites, 21};
  Controller::Config cfg = loop_config(kind);
  cfg.policy.static_level = static_level;
  Controller controller{cfg, stack.die_count()};
  return run_closed_loop(network, workload, monitor, controller, eval, 33);
}

TEST(ControlLoop, GovernorContainsTheRunawayTheTopRungTrips) {
  EvalConfig eval;
  eval.sample_period = Second{2e-3};
  eval.thermal_step = Second{1e-3};
  eval.work_budget = 2.4;
  eval.max_duration = Second{3.0};
  eval.abort_above = Celsius{100.0};

  // Every die pinned at the top rung: leakage feedback diverges and the
  // run aborts on the runaway limit with the work budget unmet.
  const EvalResult pinned =
      run_runaway_scenario(PolicyKind::kStaticWorstCase, 0, eval);
  EXPECT_TRUE(pinned.runaway);
  EXPECT_FALSE(pinned.completed);
  EXPECT_LT(pinned.stats.work_done, eval.work_budget);

  // The closed loop finishes the same work with no runaway and no
  // violation time, never nearing the abort limit.
  const EvalResult governed =
      run_runaway_scenario(PolicyKind::kDvfsLadder, kLadderBottom, eval);
  EXPECT_FALSE(governed.runaway);
  EXPECT_TRUE(governed.completed);
  EXPECT_LT(governed.stats.peak_true_c, 80.0);
  EXPECT_DOUBLE_EQ(governed.stats.violation_s, 0.0);
}

TEST(ControlLoop, ReplayIsDeterministicForFixedSeeds) {
  EvalConfig eval;
  eval.sample_period = Second{2e-3};
  eval.thermal_step = Second{1e-3};
  eval.work_budget = 0.8;
  eval.max_duration = Second{0.5};
  const EvalResult a =
      run_runaway_scenario(PolicyKind::kDvfsLadder, kLadderBottom, eval);
  const EvalResult b =
      run_runaway_scenario(PolicyKind::kDvfsLadder, kLadderBottom, eval);
  EXPECT_EQ(a.stats.decisions, b.stats.decisions);
  EXPECT_EQ(a.stats.level_changes, b.stats.level_changes);
  EXPECT_EQ(a.stats.energy_j, b.stats.energy_j);  // bit-exact, not NEAR
  EXPECT_EQ(a.stats.work_done, b.stats.work_done);
  EXPECT_EQ(a.stats.peak_true_c, b.stats.peak_true_c);
}

TEST(ControlLoop, QuarantinedFallbackNeverReadsTheDeadSite) {
  const thermal::StackConfig stack = weak_sink_stack(2.5);
  thermal::ThermalNetwork network{stack};
  attach_leakage(network);
  const thermal::Workload workload = top_die_workload(10.0);
  std::vector<core::SensorSite> sites = make_sites(stack, 818181);
  core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites,
                             929292};
  Controller::Config cfg = loop_config(PolicyKind::kDvfsLadder);
  cfg.policy.ceiling = Celsius{59.0};
  cfg.policy.floor = Celsius{54.0};
  cfg.violation_ceiling = Celsius{65.0};
  Controller controller{cfg, stack.die_count()};
  const std::size_t bottom = cfg.policy.ladder.size() - 1;

  EvalConfig eval;
  eval.sample_period = Second{2e-3};
  eval.thermal_step = Second{1e-3};
  eval.work_budget = 1.0;
  eval.max_duration = Second{0.8};
  eval.supervise = true;
  for (std::size_t site = 0; site < 4; ++site) {  // the hot die goes dark
    eval.outages.push_back({kHotDie * 4 + site, 20, 1'000'000});
  }
  constexpr auto kQuarantined =
      static_cast<std::uint8_t>(core::HealthState::kQuarantined);
  std::uint64_t blind_hot_scans = 0;
  std::uint64_t skipped_conversions = 0;
  eval.on_scan = [&](std::uint64_t scan,
                     const std::vector<core::StackMonitor::SiteReading>& rs,
                     const Actuation& act) {
    for (const core::StackMonitor::SiteReading& r : rs) {
      // A quarantined site is pulled from duty: its reading is always a
      // degraded substitute the policy must ignore, and outside the
      // supervisor's occasional re-probes no conversion runs at all.
      if (r.health == kQuarantined) {
        EXPECT_TRUE(r.degraded) << "scan " << scan << " site " << r.site_index;
        if (r.energy.value() == 0.0) ++skipped_conversions;
      }
    }
    const StackObservation obs =
        observe_scan(scan, Second{0.0}, rs, stack.die_count());
    if (obs.dies[kHotDie].blind()) {
      ++blind_hot_scans;
      // Blind on the hot die: its command must be the worst-case rung, and
      // never sourced from whatever the dead sensors last said.
      ASSERT_EQ(act.dies.size(), stack.die_count());
      EXPECT_EQ(act.dies[kHotDie].level, bottom);
    }
  };

  const EvalResult result =
      run_closed_loop(network, workload, monitor, controller, eval, 515);
  EXPECT_GT(blind_hot_scans, 0u);
  EXPECT_GT(skipped_conversions, 0u);  // the skip path actually engaged
  EXPECT_GT(result.stats.blind_scans, 0u);
  EXPECT_DOUBLE_EQ(result.stats.violation_s, 0.0);
}

TEST(ControlLoop, SessionControllerSeamLowersPeakTemperature) {
  const thermal::StackConfig stack = thermal::StackConfig::four_die_stack();
  const thermal::Workload workload = top_die_workload(14.0);

  const auto peak_truth = [&](Controller* controller) {
    thermal::ThermalNetwork network{stack};
    std::vector<core::SensorSite> sites = make_sites(stack, 7);
    core::StackMonitor monitor{&network, core::PtSensor::Config{}, sites, 9};
    sim::MonitoringSession::Config cfg;
    cfg.sample_period = Second{2e-3};
    cfg.thermal_step = Second{1e-3};
    cfg.start_at_steady_state = false;
    cfg.controller = controller;
    sim::MonitoringSession session{&network, &workload, &monitor, cfg, 13};
    session.run(Second{300e-3});
    double peak = -273.15;
    for (const sim::SamplePoint& p : session.trace()) {
      for (const core::StackMonitor::SiteReading& r : p.readings) {
        peak = std::max(peak, r.truth.value());
      }
    }
    return peak;
  };

  const double open_loop = peak_truth(nullptr);
  Controller::Config cfg = loop_config(PolicyKind::kDvfsLadder);
  cfg.policy.ceiling = Celsius{45.0};
  cfg.policy.floor = Celsius{40.0};
  Controller controller{cfg, stack.die_count()};
  const double closed_loop = peak_truth(&controller);
  EXPECT_LT(closed_loop, open_loop - 2.0);
  EXPECT_GT(controller.stats().decisions, 0u);
}

inject::FaultPlan chaos_plan(std::size_t stacks, std::uint64_t scans) {
  inject::FaultPlan plan;
  const std::uint64_t mid = scans / 3;
  for (std::size_t k = 0; k < stacks; k += 2) {
    for (std::size_t site = 0; site < 4; ++site) {
      plan.add({inject::FaultKind::kDeadRo, k, site, mid, scans, 0.0});
    }
  }
  plan.add({inject::FaultKind::kStuckRo, 1, 5, mid / 2, scans, 80.0});
  plan.add({inject::FaultKind::kSupplyDroop, 1, 9, mid, 2 * mid, 0.08});
  return plan;
}

std::string fleet_digest(std::size_t threads) {
  constexpr std::size_t kStacks = 4;
  constexpr std::size_t kScans = 30;
  ControlPlane::Config plane_cfg;
  plane_cfg.controller = loop_config(PolicyKind::kDvfsLadder);
  plane_cfg.controller.policy.ceiling = Celsius{50.0};
  plane_cfg.controller.policy.floor = Celsius{44.0};
  plane_cfg.controller.violation_ceiling = Celsius{55.0};
  plane_cfg.stack_count = kStacks;
  plane_cfg.die_count = 4;
  ControlPlane plane{plane_cfg};

  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = kStacks;
  cfg.thread_count = threads;
  cfg.scans_per_stack = kScans;
  cfg.peak_power = Watt{8.0};
  cfg.seed = 4242;
  cfg.supervise = true;
  cfg.control = &plane;
  telemetry::FleetSampler sampler{cfg};
  inject::ChaosInjector injector{chaos_plan(kStacks, kScans), &sampler};
  sampler.set_interceptor(&injector);
  sampler.run();

  const Controller::Stats total = plane.total();
  EXPECT_EQ(total.decisions, kStacks * kScans);
  EXPECT_GT(total.energy_j, 0.0);
  return canonical_digest(plane);
}

TEST(ControlLoop, FleetChaosDigestIsThreadCountInvariant) {
  const std::string one = fleet_digest(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(fleet_digest(2), one);
  EXPECT_EQ(fleet_digest(8), one);
}

}  // namespace
}  // namespace tsvpt::control
