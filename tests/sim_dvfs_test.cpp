#include "sim/dvfs.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "process/variation.hpp"

namespace tsvpt::sim {
namespace {

struct DvfsFixture {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  std::vector<core::SensorSite> sites;
  std::unique_ptr<core::StackMonitor> monitor;

  DvfsFixture() {
    sites = core::StackMonitor::uniform_sites(cfg, 1, 1);
    const process::VariationModel model{device::Technology::tsmc65_like(),
                                        {sites[0].location}};
    Rng rng{3};
    for (auto& site : sites) site.vt_delta = model.sample_die(rng).at(0);
    monitor = std::make_unique<core::StackMonitor>(
        &network, core::PtSensor::Config{}, sites, 5);
  }
};

thermal::Workload hot_uniform(const thermal::StackConfig& /*cfg*/, double watts) {
  thermal::WorkloadPhase phase;
  phase.name = "hot";
  phase.duration = Second{1.0};
  phase.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                              Watt{watts}, {}, Meter{0.0}});
  return thermal::Workload{{phase}};
}

DvfsGovernor::Config fast_config() {
  DvfsGovernor::Config cfg = DvfsGovernor::Config::typical();
  cfg.ceiling = Celsius{45.0};
  cfg.floor = Celsius{40.0};
  cfg.sample_period = Second{2e-3};
  cfg.thermal_step = Second{1e-3};
  return cfg;
}

TEST(Dvfs, ValidationRejectsBadLadders) {
  DvfsGovernor::Config cfg;
  EXPECT_THROW((DvfsGovernor{cfg}), std::invalid_argument);  // empty
  cfg = DvfsGovernor::Config::typical();
  cfg.ladder[1].relative_frequency = 1.5;  // not descending
  EXPECT_THROW((DvfsGovernor{cfg}), std::invalid_argument);
  cfg = DvfsGovernor::Config::typical();
  cfg.initial_level = 9;
  EXPECT_THROW((DvfsGovernor{cfg}), std::invalid_argument);
  cfg = DvfsGovernor::Config::typical();
  cfg.floor = cfg.ceiling;
  EXPECT_THROW((DvfsGovernor{cfg}), std::invalid_argument);
}

TEST(Dvfs, CoolWorkloadStaysAtTopLevel) {
  DvfsFixture fx;
  const DvfsGovernor governor{fast_config()};
  const auto result = governor.run(fx.network, hot_uniform(fx.cfg, 0.5),
                                   *fx.monitor, Second{100e-3}, 1);
  EXPECT_NEAR(result.relative_throughput, 1.0, 1e-6);
  EXPECT_EQ(result.transitions, 0u);
  EXPECT_NEAR(result.residency[0], 1.0, 1e-6);
}

TEST(Dvfs, HotWorkloadStepsDownAndCapsTemperature) {
  DvfsFixture fx;
  const DvfsGovernor governor{fast_config()};
  const auto result = governor.run(fx.network, hot_uniform(fx.cfg, 14.0),
                                   *fx.monitor, Second{400e-3}, 2);
  EXPECT_GT(result.transitions, 0u);
  EXPECT_LT(result.relative_throughput, 1.0);
  EXPECT_GT(result.relative_throughput, 0.4);  // not stuck at the bottom
  // Temperature is contained near the ceiling (sampling slack allowed).
  EXPECT_LT(result.max_true.value(), 60.0);
  // Residency fractions sum to ~1.
  double total = 0.0;
  for (double r : result.residency) total += r;
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Dvfs, GovernorBeatsStaticWorstCaseLevel) {
  // A designer without a sensor must statically pick the level that is safe
  // for the worst case; the governor adapts and wins throughput.
  DvfsFixture fx_gov;
  const DvfsGovernor governor{fast_config()};
  const auto adaptive = governor.run(fx_gov.network, hot_uniform(fx_gov.cfg, 14.0),
                                     *fx_gov.monitor, Second{400e-3}, 3);
  // Static P3 (half speed) is the worst-case-safe choice here.
  DvfsGovernor::Config static_cfg = fast_config();
  static_cfg.initial_level = 3;
  static_cfg.ceiling = Celsius{1000.0};  // never steps down...
  static_cfg.floor = Celsius{-200.0};    // ...and never steps up: static
  DvfsFixture fx_static;
  const DvfsGovernor static_governor{static_cfg};
  const auto fixed = static_governor.run(fx_static.network,
                                         hot_uniform(fx_static.cfg, 14.0),
                                         *fx_static.monitor, Second{400e-3},
                                         3);
  EXPECT_GT(adaptive.relative_throughput, fixed.relative_throughput);
}

TEST(Dvfs, HysteresisLimitsTransitionRate) {
  DvfsFixture fx;
  DvfsGovernor::Config cfg = fast_config();
  const DvfsGovernor governor{cfg};
  const auto result = governor.run(fx.network, hot_uniform(fx.cfg, 14.0),
                                   *fx.monitor, Second{400e-3}, 4);
  // With a 5 degC hysteresis band the governor must not thrash every sample
  // (400 ms / 2 ms = 200 samples).
  EXPECT_LT(result.transitions, 60u);
}

}  // namespace
}  // namespace tsvpt::sim
