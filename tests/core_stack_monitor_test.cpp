#include "core/stack_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "process/variation.hpp"

namespace tsvpt::core {
namespace {

thermal::StackConfig stack_config() {
  return thermal::StackConfig::four_die_stack();
}

std::vector<SensorSite> make_sites(const thermal::StackConfig& cfg) {
  std::vector<SensorSite> sites = StackMonitor::uniform_sites(cfg, 2, 2);
  // Attach process variation: one statistical die draw per stack layer.
  std::vector<process::Point> points;
  for (std::size_t i = 0; i < 4; ++i) {
    points.push_back(sites[i].location);  // same layout on every die
  }
  const process::VariationModel model{device::Technology::tsmc65_like(),
                                      points};
  Rng rng{1234};
  for (std::size_t d = 0; d < cfg.die_count(); ++d) {
    const process::DieVariation die = model.sample_die(rng);
    for (std::size_t i = 0; i < 4; ++i) {
      sites[d * 4 + i].vt_delta = die.at(i);
    }
  }
  return sites;
}

TEST(StackMonitor, UniformSitesCoverEveryDie) {
  const auto sites = StackMonitor::uniform_sites(stack_config(), 3, 2);
  EXPECT_EQ(sites.size(), 4u * 6u);
  for (const SensorSite& site : sites) {
    EXPECT_LT(site.die, 4u);
    EXPECT_GT(site.location.x, 0.0);
    EXPECT_LT(site.location.x, 5e-3);
  }
  EXPECT_THROW((void)StackMonitor::uniform_sites(stack_config(), 0, 1),
               std::invalid_argument);
}

TEST(StackMonitor, ConstructionValidation) {
  thermal::ThermalNetwork net{stack_config()};
  EXPECT_THROW((StackMonitor{nullptr, PtSensor::Config{}, make_sites(stack_config()), 1}),
               std::invalid_argument);
  EXPECT_THROW((StackMonitor{&net, PtSensor::Config{}, {}, 1}),
               std::invalid_argument);
  std::vector<SensorSite> bad = make_sites(stack_config());
  bad[0].die = 99;
  EXPECT_THROW((StackMonitor{&net, PtSensor::Config{}, bad, 1}),
               std::invalid_argument);
}

TEST(StackMonitor, SampleTracksThermalTruth) {
  thermal::ThermalNetwork net{stack_config()};
  net.set_uniform_power(0, Watt{1.5});
  net.set_temperatures(net.steady_state());

  StackMonitor monitor{&net, PtSensor::Config{}, make_sites(stack_config()),
                       99};
  monitor.calibrate_all(nullptr);
  const auto sample = monitor.sample_all(nullptr);
  ASSERT_EQ(sample.size(), 16u);
  for (const auto& reading : sample) {
    EXPECT_FALSE(reading.degraded);
    EXPECT_NEAR(reading.sensed.value(), reading.truth.value(), 2.5);
  }
}

TEST(StackMonitor, TruthMatchesNetworkQuery) {
  thermal::ThermalNetwork net{stack_config()};
  net.set_uniform_power(0, Watt{2.0});
  net.set_temperatures(net.steady_state());
  StackMonitor monitor{&net, PtSensor::Config{}, make_sites(stack_config()),
                       100};
  monitor.calibrate_all(nullptr);
  const auto sample = monitor.sample_all(nullptr);
  for (const auto& reading : sample) {
    const double expected =
        to_celsius(net.temperature_at(reading.die, reading.location)).value();
    EXPECT_DOUBLE_EQ(reading.truth.value(), expected);
  }
}

TEST(StackMonitor, ProcessMapRecoversTrueDeviation) {
  thermal::ThermalNetwork net{stack_config()};
  net.set_temperatures(net.steady_state());  // ambient, no power
  StackMonitor monitor{&net, PtSensor::Config{}, make_sites(stack_config()),
                       101};
  monitor.calibrate_all(nullptr);
  const auto map = monitor.process_map();
  ASSERT_EQ(map.size(), 16u);
  for (const auto& report : map) {
    EXPECT_NEAR(report.dvtn_hat.value(), report.dvtn_true.value(), 4e-3);
    EXPECT_NEAR(report.dvtp_hat.value(), report.dvtp_true.value(), 4e-3);
  }
}

TEST(StackMonitor, MaxSensedSelectsHotDie) {
  thermal::ThermalNetwork net{stack_config()};
  net.set_uniform_power(0, Watt{3.0});
  net.set_temperatures(net.steady_state());
  StackMonitor monitor{&net, PtSensor::Config{}, make_sites(stack_config()),
                       102};
  monitor.calibrate_all(nullptr);
  const auto sample = monitor.sample_all(nullptr);
  // Powered die 0 runs hotter than the top die.
  EXPECT_GT(StackMonitor::max_sensed(sample, 0).value(),
            StackMonitor::max_sensed(sample, 3).value() - 0.5);
  EXPECT_THROW((void)StackMonitor::max_sensed({}, 0), std::invalid_argument);
}

TEST(StackMonitor, SensorsHaveIndependentMismatch) {
  thermal::ThermalNetwork net{stack_config()};
  StackMonitor monitor{&net, PtSensor::Config{}, make_sites(stack_config()),
                       103};
  EXPECT_NE(monitor.sensor(0).mismatch()[0].nmos.value(),
            monitor.sensor(1).mismatch()[0].nmos.value());
}

}  // namespace
}  // namespace tsvpt::core
