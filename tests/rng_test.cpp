#include "ptsim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tsvpt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng{13};
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(Rng, GaussianScaleAndShift) {
  Rng rng{17};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{19};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{23};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{29};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent{31};
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  std::vector<double> xs;
  std::vector<double> ys;
  double cov = 0.0;
  for (int i = 0; i < 10000; ++i) {
    cov += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_NEAR(cov / 10000.0, 0.0, 0.005);
}

TEST(Rng, DeriveSeedDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(derive_seed(99, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{37};
  std::vector<std::size_t> items{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(items);
  std::set<std::size_t> unique(items.begin(), items.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Rng, ShuffleEmptyIsNoop) {
  Rng rng{41};
  std::vector<std::size_t> items;
  rng.shuffle(items);
  EXPECT_TRUE(items.empty());
}

}  // namespace
}  // namespace tsvpt
