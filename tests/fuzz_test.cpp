// Robustness fuzzing: random-but-plausible configurations and environments
// must never crash, hang, or emit non-finite results.  These tests exercise
// the API surfaces a downstream user is most likely to stress with odd
// parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "calib/lut.hpp"
#include "calib/polyfit.hpp"
#include "core/pt_sensor.hpp"
#include "process/variation.hpp"
#include "sim/event_queue.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt {
namespace {

TEST(Fuzz, SensorSurvivesRandomEnvironments) {
  Rng rng{0xF122};
  core::PtSensor sensor{core::PtSensor::Config{}, 1};
  for (int trial = 0; trial < 200; ++trial) {
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{rng.uniform(-35.0, 135.0)});
    env.vt_delta = {millivolts(rng.uniform(-60.0, 60.0)),
                    millivolts(rng.uniform(-60.0, 60.0))};
    env.supply = circuit::SupplyRail{{Volt{rng.uniform(0.9, 1.1)},
                                      millivolts(rng.uniform(0.0, 30.0)),
                                      millivolts(rng.uniform(0.0, 5.0))}};
    const auto est = sensor.self_calibrate(env, &rng);
    EXPECT_TRUE(std::isfinite(est.temperature.value()));
    EXPECT_TRUE(std::isfinite(est.dvtn.value()));
    EXPECT_TRUE(std::isfinite(est.energy.value()));
    const auto reading = sensor.read(env, &rng);
    EXPECT_TRUE(std::isfinite(reading.temperature.value()));
    // The solver's box bounds the answer even when the environment is wild.
    EXPECT_GE(reading.temperature.value(), -40.0 - 1e-9);
    EXPECT_LE(reading.temperature.value(), 140.0 + 1e-9);
  }
}

TEST(Fuzz, SensorSurvivesRandomConfigs) {
  Rng rng{0xF123};
  for (int trial = 0; trial < 60; ++trial) {
    core::PtSensor::Config cfg;
    cfg.psro_stages = 3 + 2 * static_cast<std::size_t>(rng.uniform_int(0, 30));
    cfg.tdro_stages = 3 + 2 * static_cast<std::size_t>(rng.uniform_int(0, 30));
    cfg.counter.window = Second{rng.uniform(0.5e-6, 10e-6)};
    cfg.counter.counter_bits =
        static_cast<unsigned>(rng.uniform_int(12, 24));
    cfg.ro_mismatch_sigma = millivolts(rng.uniform(0.0, 2.0));
    cfg.compensate_supply = rng.bernoulli(0.5);
    core::PtSensor sensor{cfg, static_cast<std::uint64_t>(trial)};
    core::DieEnvironment env;
    env.temperature = to_kelvin(Celsius{rng.uniform(0.0, 100.0)});
    const auto est = sensor.self_calibrate(env, &rng);
    EXPECT_TRUE(std::isfinite(est.temperature.value())) << trial;
  }
}

TEST(Fuzz, ThermalNetworkRandomWorkloadsStayFinite) {
  Rng rng{0xF124};
  const thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  for (int trial = 0; trial < 10; ++trial) {
    Rng wl_rng = rng.fork(trial);
    const thermal::Workload workload = thermal::Workload::random(
        cfg, wl_rng, 4, Watt{6.0}, Second{5e-3});
    workload.apply(network, Second{0.0});
    const auto steady = network.steady_state();
    for (double t : steady) {
      EXPECT_TRUE(std::isfinite(t));
      EXPECT_GE(t, network.config().ambient.value() - 1e-6);
      EXPECT_LT(t, 500.0);  // 6 W through ~2 K/W cannot melt the model
    }
    network.set_temperatures(steady);
    for (int step = 0; step < 5; ++step) {
      workload.apply(network, Second{step * 2e-3});
      network.step(Second{2e-3});
    }
    for (double t : network.temperatures()) EXPECT_TRUE(std::isfinite(t));
  }
}

TEST(Fuzz, MonotoneLutsAlwaysInvertRoundTrip) {
  Rng rng{0xF125};
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 30));
    std::vector<double> values;
    double acc = rng.uniform(-10.0, 10.0);
    for (std::size_t i = 0; i < n; ++i) {
      acc += rng.uniform(0.01, 2.0);  // strictly increasing
      values.push_back(acc);
    }
    const calib::Lut1D lut{0.0, 1.0, values};
    ASSERT_TRUE(lut.is_monotone());
    for (int q = 0; q < 10; ++q) {
      const double x = rng.uniform(0.0, 1.0);
      EXPECT_NEAR(lut.invert(lut(x)), x, 1e-9);
    }
  }
}

TEST(Fuzz, PolyfitNeverDivergesOnTameData) {
  Rng rng{0xF126};
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t degree =
        static_cast<std::size_t>(rng.uniform_int(1, 5));
    const std::size_t count =
        degree + 1 + static_cast<std::size_t>(rng.uniform_int(0, 40));
    std::vector<double> x;
    std::vector<double> y;
    const double offset = rng.uniform(-1e3, 1e3);
    for (std::size_t i = 0; i < count; ++i) {
      x.push_back(offset + static_cast<double>(i) * rng.uniform(0.1, 2.0));
      y.push_back(rng.gaussian(0.0, 10.0));
    }
    const calib::Polynomial p = calib::polyfit(x, y, degree);
    for (double xi : x) {
      EXPECT_TRUE(std::isfinite(p(xi)));
      EXPECT_LT(std::abs(p(xi)), 1e4);
    }
  }
}

TEST(Fuzz, SimulatorRandomScheduleKeepsOrder) {
  Rng rng{0xF127};
  sim::Simulator simulator;
  std::vector<double> fire_times;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.uniform(0.0, 1.0);
    simulator.schedule_at(Second{t}, [&fire_times](sim::Simulator& s) {
      fire_times.push_back(s.now().value());
    });
  }
  simulator.run_until(Second{2.0});
  ASSERT_EQ(fire_times.size(), 300u);
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_GE(fire_times[i], fire_times[i - 1]);
  }
}

TEST(Fuzz, VariationModelRandomPointSets) {
  Rng rng{0xF128};
  const device::Technology tech = device::Technology::tsmc65_like();
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < n; ++i) {
      points.push_back({rng.uniform(0.0, 5e-3), rng.uniform(0.0, 5e-3)});
    }
    const process::VariationModel model{tech, points};
    const process::DieVariation die = model.sample_die(rng);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(std::isfinite(die.at(i).nmos.value()));
      EXPECT_LT(std::abs(die.at(i).nmos.value()), 0.2);
    }
  }
}

}  // namespace
}  // namespace tsvpt
