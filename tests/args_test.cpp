#include "ptsim/args.hpp"

#include <gtest/gtest.h>

namespace tsvpt {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv(tokens);
  return Args{static_cast<int>(argv.size()), argv.data()};
}

TEST(Args, FlagsAndPositionals) {
  const Args args = parse({"run", "--dies", "500", "--card=my.card", "extra"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "run");
  EXPECT_EQ(args.positionals()[1], "extra");
  EXPECT_TRUE(args.has("dies"));
  EXPECT_EQ(args.get("dies", 0LL), 500);
  EXPECT_EQ(args.get("card", std::string{}), "my.card");
}

TEST(Args, DefaultsWhenAbsent) {
  const Args args = parse({});
  EXPECT_FALSE(args.has("seed"));
  EXPECT_EQ(args.get("seed", 42LL), 42);
  EXPECT_DOUBLE_EQ(args.get("t", 25.0), 25.0);
  EXPECT_EQ(args.get("name", std::string{"x"}), "x");
}

TEST(Args, TypedParsing) {
  const Args args = parse({"--t", "-12.5", "--n", "7"});
  EXPECT_DOUBLE_EQ(args.get("t", 0.0), -12.5);
  EXPECT_EQ(args.get("n", 0LL), 7);
}

TEST(Args, MalformedValuesThrow) {
  const Args args = parse({"--t", "abc", "--n", "7x"});
  EXPECT_THROW((void)args.get("t", 0.0), std::runtime_error);
  EXPECT_THROW((void)args.get("n", 0LL), std::runtime_error);
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(parse({"--dangling"}), std::runtime_error);
}

TEST(Args, UnknownFlagDetection) {
  const Args args = parse({"--seed", "1", "--oops", "2"});
  EXPECT_THROW(args.check_known({"seed"}), std::runtime_error);
  EXPECT_NO_THROW(args.check_known({"seed", "oops"}));
}

TEST(Args, EqualsSyntaxWithEmptyValue) {
  const Args args = parse({"--card="});
  EXPECT_TRUE(args.has("card"));
  EXPECT_EQ(args.get("card", std::string{"z"}), "");
}

}  // namespace
}  // namespace tsvpt
