#include "circuit/supply.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ptsim/stats.hpp"

namespace tsvpt::circuit {
namespace {

VddMonitor::Config ideal_config() {
  VddMonitor::Config cfg;
  cfg.gain_sigma = 0.0;
  cfg.offset_sigma = Volt{0.0};
  cfg.noise_rms = Volt{0.0};
  cfg.bits = 16;
  return cfg;
}

TEST(VddMonitor, IdealInstanceReadsTrueValue) {
  const VddMonitor monitor{ideal_config(), 1};
  for (double v : {0.7, 0.9, 1.0, 1.2}) {
    EXPECT_NEAR(monitor.measure(Volt{v}, nullptr).value(), v, 2e-5);
  }
}

TEST(VddMonitor, QuantizationStepMatchesBits) {
  VddMonitor::Config cfg = ideal_config();
  cfg.bits = 8;
  const VddMonitor monitor{cfg, 1};
  // LSB over [0.6, 1.4] at 8 bits: 0.8/255 ~ 3.1 mV; worst error LSB/2.
  double worst = 0.0;
  for (double v = 0.7; v <= 1.3; v += 0.001) {
    worst = std::max(worst,
                     std::abs(monitor.measure(Volt{v}, nullptr).value() - v));
  }
  EXPECT_LE(worst, 0.5 * 0.8 / 255.0 + 1e-12);
  EXPECT_GT(worst, 0.25 * 0.8 / 255.0);
}

TEST(VddMonitor, ClampsToRange) {
  const VddMonitor monitor{ideal_config(), 1};
  EXPECT_DOUBLE_EQ(monitor.measure(Volt{0.2}, nullptr).value(), 0.6);
  EXPECT_DOUBLE_EQ(monitor.measure(Volt{2.0}, nullptr).value(), 1.4);
}

TEST(VddMonitor, InstanceErrorsAreSeedDeterministic) {
  VddMonitor::Config cfg;  // default: real gain/offset spread
  const VddMonitor a{cfg, 7};
  const VddMonitor b{cfg, 7};
  const VddMonitor c{cfg, 8};
  EXPECT_DOUBLE_EQ(a.measure(Volt{1.0}, nullptr).value(),
                   b.measure(Volt{1.0}, nullptr).value());
  EXPECT_NE(a.measure(Volt{1.0}, nullptr).value(),
            c.measure(Volt{1.0}, nullptr).value());
}

TEST(VddMonitor, PopulationSpreadMatchesConfig) {
  VddMonitor::Config cfg = ideal_config();
  cfg.offset_sigma = Volt{2e-3};
  RunningStats offsets;
  for (std::uint64_t seed = 0; seed < 4000; ++seed) {
    const VddMonitor monitor{cfg, seed};
    offsets.add(monitor.measure(Volt{1.0}, nullptr).value() - 1.0);
  }
  EXPECT_NEAR(offsets.stddev(), 2e-3, 2e-4);
}

TEST(VddMonitor, NoiseAveragesOut) {
  VddMonitor::Config cfg = ideal_config();
  cfg.noise_rms = Volt{1e-3};
  const VddMonitor monitor{cfg, 3};
  Rng rng{5};
  RunningStats readings;
  for (int i = 0; i < 20000; ++i) {
    readings.add(monitor.measure(Volt{1.0}, &rng).value());
  }
  EXPECT_NEAR(readings.mean(), 1.0, 1e-4);
  EXPECT_NEAR(readings.stddev(), 1e-3, 2e-4);
}

TEST(VddMonitor, RejectsBadConfig) {
  VddMonitor::Config cfg = ideal_config();
  cfg.bits = 0;
  EXPECT_THROW((VddMonitor{cfg, 1}), std::invalid_argument);
  cfg = ideal_config();
  cfg.range_hi = cfg.range_lo;
  EXPECT_THROW((VddMonitor{cfg, 1}), std::invalid_argument);
}

TEST(VddMonitor, SampleEnergyExposed) {
  const VddMonitor monitor{VddMonitor::Config{}, 1};
  EXPECT_GT(monitor.sample_energy().value(), 0.0);
}

}  // namespace
}  // namespace tsvpt::circuit
