// Failure-injection suite: oscillator faults injected into live sensors,
// the sensor's own degradation behaviour, and the fleet-level detector
// that localizes the faulty site.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/fault_detector.hpp"
#include "core/pt_sensor.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"

namespace tsvpt::core {
namespace {

PtSensor::Config clean_config() {
  PtSensor::Config cfg;
  cfg.ro_mismatch_sigma = Volt{0.0};
  return cfg;
}

DieEnvironment environment(double t_celsius) {
  DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  return env;
}

TEST(FaultInjection, DeadTdroDegradesTrackingRead) {
  PtSensor sensor{clean_config(), 1};
  (void)sensor.self_calibrate(environment(40.0), nullptr);
  sensor.inject_fault(RoRole::kTdro, RoFault::kDead);
  const auto reading = sensor.read(environment(40.0), nullptr);
  EXPECT_TRUE(reading.degraded);
  EXPECT_DOUBLE_EQ(reading.temperature.value(),
                   clean_config().t_min.value());
}

TEST(FaultInjection, DeadPsroFailsCalibrationGracefully) {
  PtSensor sensor{clean_config(), 2};
  sensor.inject_fault(RoRole::kPsroN, RoFault::kDead);
  const auto est = sensor.self_calibrate(environment(40.0), nullptr);
  EXPECT_FALSE(est.converged);  // no throw, no poisoned solve
}

TEST(FaultInjection, StuckTdroGivesConfidentWrongAnswer) {
  // The dangerous failure mode: a stuck oscillator still yields a plausible
  // reading that does NOT track temperature — undetectable locally.
  PtSensor sensor{clean_config(), 3};
  const DieEnvironment base = environment(40.0);
  (void)sensor.self_calibrate(base, nullptr);
  const Hertz frozen = sensor.model_frequency(RoRole::kTdro, Volt{0.0},
                                              Volt{0.0},
                                              to_kelvin(Celsius{40.0}));
  sensor.inject_fault(RoRole::kTdro, RoFault::kStuck, frozen);
  const auto hot = sensor.read(base.at_celsius(Celsius{90.0}), nullptr);
  EXPECT_FALSE(hot.degraded);  // looks healthy...
  EXPECT_NEAR(hot.temperature.value(), 40.0, 2.0);  // ...but reads 40.
}

TEST(FaultInjection, ClearFaultsRestoresOperation) {
  PtSensor sensor{clean_config(), 4};
  (void)sensor.self_calibrate(environment(40.0), nullptr);
  sensor.inject_fault(RoRole::kTdro, RoFault::kDead);
  sensor.clear_faults();
  const auto reading = sensor.read(environment(70.0), nullptr);
  EXPECT_FALSE(reading.degraded);
  EXPECT_NEAR(reading.temperature.value(), 70.0, 0.7);
}

struct FleetFixture {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  std::vector<SensorSite> sites;
  std::unique_ptr<StackMonitor> monitor;

  FleetFixture() {
    sites = StackMonitor::uniform_sites(cfg, 3, 3);
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < 9; ++i) points.push_back(sites[i].location);
    const process::VariationModel model{device::Technology::tsmc65_like(),
                                        points};
    Rng rng{5};
    for (std::size_t d = 0; d < cfg.die_count(); ++d) {
      const process::DieVariation die = model.sample_die(rng);
      for (std::size_t i = 0; i < 9; ++i) {
        sites[d * 9 + i].vt_delta = die.at(i);
      }
    }
    network.set_uniform_power(0, Watt{1.5});
    network.set_temperatures(network.steady_state());
    monitor = std::make_unique<StackMonitor>(&network, PtSensor::Config{},
                                             sites, 6);
    monitor->calibrate_all(nullptr);
  }
};

TEST(FaultDetectorTest, HealthyFleetHasNoSuspects) {
  FleetFixture fx;
  const auto sample = fx.monitor->sample_all(nullptr);
  const FaultDetector detector;
  EXPECT_TRUE(detector.suspects(sample).empty());
}

TEST(FaultDetectorTest, LocalizesDeadSensor) {
  FleetFixture fx;
  fx.monitor->sensor(7).inject_fault(RoRole::kTdro, RoFault::kDead);
  const auto sample = fx.monitor->sample_all(nullptr);
  const FaultDetector detector;
  const auto suspects = detector.suspects(sample);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], 7u);
  const auto verdicts = detector.analyze(sample);
  EXPECT_EQ(verdicts[7].reason, "self-reported degraded");
}

TEST(FaultDetectorTest, LocalizesStuckSensorSpatially) {
  FleetFixture fx;
  // Freeze site 4's TDRO at a frequency corresponding to a much hotter die:
  // locally plausible, spatially absurd.
  PtSensor& victim = fx.monitor->sensor(4);
  const Hertz frozen = victim.model_frequency(
      RoRole::kTdro, Volt{0.0}, Volt{0.0}, to_kelvin(Celsius{110.0}));
  victim.inject_fault(RoRole::kTdro, RoFault::kStuck, frozen);

  const auto sample = fx.monitor->sample_all(nullptr);
  const FaultDetector detector;
  const auto verdicts = detector.analyze(sample);
  ASSERT_EQ(verdicts.size(), sample.size());
  EXPECT_TRUE(verdicts[4].suspect);
  EXPECT_EQ(verdicts[4].reason, "spatially inconsistent with neighbours");
  // And nobody else got blamed.
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i != 4) {
      EXPECT_FALSE(verdicts[i].suspect) << i;
    }
  }
}

TEST(FaultDetectorTest, LoneSensorCannotBeCrossChecked) {
  // One sensor per die: a stuck (non-degraded) fault is undetectable —
  // the detector must stay silent rather than guess.
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  std::vector<SensorSite> sites = StackMonitor::uniform_sites(cfg, 1, 1);
  StackMonitor monitor{&network, PtSensor::Config{}, sites, 8};
  network.set_temperatures(network.steady_state());
  monitor.calibrate_all(nullptr);
  PtSensor& victim = monitor.sensor(0);
  victim.inject_fault(RoRole::kTdro, RoFault::kStuck,
                      victim.model_frequency(RoRole::kTdro, Volt{0.0},
                                             Volt{0.0}, Kelvin{390.0}));
  const auto sample = monitor.sample_all(nullptr);
  const FaultDetector detector;
  EXPECT_TRUE(detector.suspects(sample).empty());
}

TEST(FaultDetectorTest, SmoothGradientsAreNotFlagged) {
  // A broad hotspot creates a real but smooth gradient across the grid;
  // the threshold must tolerate it.
  FleetFixture fx;
  fx.network.add_hotspot(0, {1.5e-3, 1.5e-3}, Meter{1.8e-3}, Watt{3.0});
  fx.network.set_temperatures(fx.network.steady_state());
  const auto sample = fx.monitor->sample_all(nullptr);
  const FaultDetector detector;
  EXPECT_TRUE(detector.suspects(sample).empty());
}

TEST(FaultDetectorTest, PointHotspotOnASensorAliasesAsFault) {
  // Known limitation, pinned down: a hotspot concentrated on exactly one
  // sensor is spatially indistinguishable from that sensor sticking high.
  // The detector flags it — callers must disambiguate temporally (real
  // hotspots grow on thermal time constants; faults jump instantly).
  FleetFixture fx;
  fx.network.add_hotspot(0, {0.83e-3, 0.83e-3}, Meter{0.4e-3}, Watt{4.0});
  fx.network.set_temperatures(fx.network.steady_state());
  const auto sample = fx.monitor->sample_all(nullptr);
  const FaultDetector detector;
  const auto suspects = detector.suspects(sample);
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects[0], 0u);  // the sensor under the hotspot
}

TEST(JumpDetectorTest, FirstScanPrimesSilently) {
  FleetFixture fx;
  JumpDetector jump;
  EXPECT_TRUE(jump.feed(fx.monitor->sample_all(nullptr)).empty());
}

TEST(JumpDetectorTest, FaultJumpIsCaughtRealTransientIsNot) {
  FleetFixture fx;
  JumpDetector jump;
  (void)jump.feed(fx.monitor->sample_all(nullptr));

  // Real transient: the whole die heats together -> no flags.
  fx.network.set_uniform_power(0, Watt{6.0});
  fx.network.set_temperatures(fx.network.steady_state());
  EXPECT_TRUE(jump.feed(fx.monitor->sample_all(nullptr)).empty());

  // Fault: one sensor's TDRO sticks at a hot frequency between scans ->
  // only that site moves -> flagged.
  PtSensor& victim = fx.monitor->sensor(4);
  victim.inject_fault(RoRole::kTdro, RoFault::kStuck,
                      victim.model_frequency(RoRole::kTdro, Volt{0.0},
                                             Volt{0.0}, Kelvin{390.0}));
  const auto jumped = jump.feed(fx.monitor->sample_all(nullptr));
  ASSERT_EQ(jumped.size(), 1u);
  EXPECT_EQ(jumped[0], 4u);
}

TEST(JumpDetectorTest, ResetForgetsHistory) {
  FleetFixture fx;
  JumpDetector jump;
  (void)jump.feed(fx.monitor->sample_all(nullptr));
  jump.reset();
  // After reset the next feed primes again, even if the state moved a lot.
  fx.network.set_uniform_power(0, Watt{8.0});
  fx.network.set_temperatures(fx.network.steady_state());
  EXPECT_TRUE(jump.feed(fx.monitor->sample_all(nullptr)).empty());
}

TEST(JumpDetectorTest, PointHotspotDisambiguatedFromFault) {
  // The case the spatial detector cannot crack: a hotspot landing on one
  // sensor.  Temporally it is NOT a lone jump if it grows over several
  // scans while the die warms around it — approximate by applying the
  // hotspot and stepping the network briefly so neighbours move too.
  // (Scanned at a period long enough for lateral diffusion to reach the
  // neighbours; a scan much faster than the die's lateral time constant
  // cannot tell a point hotspot's first milliseconds from a fault.)
  FleetFixture fx;
  JumpDetector jump{{Celsius{6.0}, Celsius{0.8}}};
  (void)jump.feed(fx.monitor->sample_all(nullptr));
  fx.network.add_hotspot(0, {0.83e-3, 0.83e-3}, Meter{0.4e-3}, Watt{4.0});
  fx.network.step(Second{25e-3});
  const auto jumped = jump.feed(fx.monitor->sample_all(nullptr));
  EXPECT_TRUE(jumped.empty());
}

}  // namespace
}  // namespace tsvpt::core
