// Minimal recursive-descent JSON syntax checker for golden-schema tests.
// No DOM, no dependencies: answers only "is this byte string one valid JSON
// value?" — which is exactly what the exposition tests need to guarantee
// that downstream tooling (Perfetto, jq, Prometheus scrapers) can load our
// output.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace tsvpt::testing {

namespace json_detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (depth_ > 256 || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // control chars must be escaped
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace json_detail

/// True when `text` is exactly one syntactically valid JSON value.
[[nodiscard]] inline bool is_valid_json(const std::string& text) {
  return json_detail::Parser{text}.parse();
}

}  // namespace tsvpt::testing
