#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::core {
namespace {

SensorController::Config clean_config() {
  SensorController::Config cfg;
  cfg.sensor.ro_mismatch_sigma = Volt{0.0};
  return cfg;
}

DieEnvironment environment(double t_celsius, double dvtn_mv = 0.0,
                           double dvtp_mv = 0.0) {
  DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  env.vt_delta = {millivolts(dvtn_mv), millivolts(dvtp_mv)};
  return env;
}

/// Drive the controller until it goes idle (bounded).
void run_to_idle(SensorController& ctrl, const DieEnvironment& env) {
  for (int i = 0; i < 1000000 && ctrl.busy(); ++i) ctrl.tick(env, nullptr);
  ASSERT_FALSE(ctrl.busy());
}

TEST(Controller, PowerOnStateIsIdleAndUncalibrated) {
  SensorController ctrl{clean_config(), 1};
  EXPECT_FALSE(ctrl.busy());
  EXPECT_EQ(ctrl.read_register(Register::kStatus), 0);
  EXPECT_EQ(ctrl.read_register(Register::kTemp), 0);
}

TEST(Controller, CalibrateSetsResultRegisters) {
  SensorController ctrl{clean_config(), 2};
  const DieEnvironment env = environment(55.0, 15.0, -10.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  EXPECT_TRUE(ctrl.busy());
  EXPECT_TRUE(ctrl.read_register(Register::kStatus) & SensorController::kBusy);
  run_to_idle(ctrl, env);

  const std::uint16_t status = ctrl.read_register(Register::kStatus);
  EXPECT_TRUE(status & SensorController::kCalibrated);
  EXPECT_TRUE(status & SensorController::kDone);
  EXPECT_FALSE(status & SensorController::kBusy);
  EXPECT_NEAR(
      SensorController::decode_temp(ctrl.read_register(Register::kTemp)),
      55.0, 0.6);
  EXPECT_NEAR(
      SensorController::decode_vt(ctrl.read_register(Register::kDvtn)) * 1e3,
      15.0, 1.2);
  EXPECT_NEAR(
      SensorController::decode_vt(ctrl.read_register(Register::kDvtp)) * 1e3,
      -10.0, 1.2);
  EXPECT_GT(ctrl.read_register(Register::kEnergy), 300);  // ~367 pJ
  EXPECT_LT(ctrl.read_register(Register::kEnergy), 450);
}

TEST(Controller, ConvertAfterCalibrateTracksTemperature) {
  SensorController ctrl{clean_config(), 3};
  DieEnvironment env = environment(25.0, 8.0, 6.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  run_to_idle(ctrl, env);
  for (double t : {10.0, 40.0, 90.0}) {
    env = env.at_celsius(Celsius{t});
    ctrl.write_command(SensorController::Command::kConvert);
    run_to_idle(ctrl, env);
    EXPECT_NEAR(
        SensorController::decode_temp(ctrl.read_register(Register::kTemp)),
        t, 0.7)
        << "T=" << t;
  }
}

TEST(Controller, LatencyMatchesWindowsPlusSolver) {
  SensorController ctrl{clean_config(), 4};
  // 2 us window at 25 MHz = 50 cycles per window.
  EXPECT_EQ(ctrl.calibrate_latency_cycles(),
            3 * 50 + SensorController::kSolverCycles);
  EXPECT_EQ(ctrl.convert_latency_cycles(),
            50 + SensorController::kSolverCycles);

  const DieEnvironment env = environment(30.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  std::uint64_t ticks = 0;
  while (ctrl.busy()) {
    ctrl.tick(env, nullptr);
    ++ticks;
  }
  EXPECT_EQ(ticks, ctrl.calibrate_latency_cycles());
}

TEST(Controller, FirstConvertAutoCalibratesWithFullLatency) {
  SensorController ctrl{clean_config(), 5};
  const DieEnvironment env = environment(42.0);
  ctrl.write_command(SensorController::Command::kConvert);
  std::uint64_t ticks = 0;
  while (ctrl.busy()) {
    ctrl.tick(env, nullptr);
    ++ticks;
  }
  EXPECT_EQ(ticks, ctrl.calibrate_latency_cycles());
  EXPECT_TRUE(ctrl.read_register(Register::kStatus) &
              SensorController::kCalibrated);
}

TEST(Controller, CommandsWhileBusyAreDropped) {
  SensorController ctrl{clean_config(), 6};
  const DieEnvironment env = environment(30.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  const std::uint64_t expected = ctrl.calibrate_latency_cycles();
  ctrl.tick(env, nullptr, 10);
  ctrl.write_command(SensorController::Command::kConvert);  // dropped
  std::uint64_t ticks = 10;
  while (ctrl.busy()) {
    ctrl.tick(env, nullptr);
    ++ticks;
  }
  EXPECT_EQ(ticks, expected);  // the in-flight calibration was unaffected
  EXPECT_TRUE(ctrl.read_register(Register::kStatus) &
              SensorController::kCalibrated);
}

TEST(Controller, ResultsHoldWhileNextConversionInFlight) {
  SensorController ctrl{clean_config(), 7};
  DieEnvironment env = environment(25.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  run_to_idle(ctrl, env);
  const std::uint16_t first_temp = ctrl.read_register(Register::kTemp);
  ctrl.write_command(SensorController::Command::kConvert);
  ctrl.tick(env.at_celsius(Celsius{90.0}), nullptr, 5);
  EXPECT_EQ(ctrl.read_register(Register::kTemp), first_temp);  // stale hold
}

TEST(Controller, SoftResetClearsEverything) {
  SensorController ctrl{clean_config(), 8};
  const DieEnvironment env = environment(25.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  run_to_idle(ctrl, env);
  ctrl.write_command(SensorController::Command::kSoftReset);
  EXPECT_EQ(ctrl.read_register(Register::kStatus), 0);
  EXPECT_EQ(ctrl.read_register(Register::kTemp), 0);
  // Next convert must pay the full auto-calibration latency again.
  ctrl.write_command(SensorController::Command::kConvert);
  std::uint64_t ticks = 0;
  while (ctrl.busy()) {
    ctrl.tick(env, nullptr);
    ++ticks;
  }
  EXPECT_EQ(ticks, ctrl.calibrate_latency_cycles());
}

TEST(Controller, DoneClearsOnNextCommand) {
  SensorController ctrl{clean_config(), 9};
  const DieEnvironment env = environment(25.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  run_to_idle(ctrl, env);
  EXPECT_TRUE(ctrl.read_register(Register::kStatus) & SensorController::kDone);
  ctrl.write_command(SensorController::Command::kConvert);
  EXPECT_FALSE(ctrl.read_register(Register::kStatus) &
               SensorController::kDone);
}

TEST(Controller, NegativeTemperatureEncodesTwosComplement) {
  SensorController ctrl{clean_config(), 10};
  const DieEnvironment env = environment(-20.0);
  ctrl.write_command(SensorController::Command::kCalibrate);
  run_to_idle(ctrl, env);
  EXPECT_NEAR(
      SensorController::decode_temp(ctrl.read_register(Register::kTemp)),
      -20.0, 0.7);
}

TEST(Controller, ElapsedTimeTracksClock) {
  SensorController ctrl{clean_config(), 11};
  const DieEnvironment env = environment(25.0);
  ctrl.tick(env, nullptr, 250);
  EXPECT_NEAR(ctrl.elapsed().value(), 250.0 / 25e6, 1e-12);
}

TEST(Controller, EncodingRoundTripsWithinLsb) {
  EXPECT_NEAR(SensorController::decode_temp(
                  static_cast<std::uint16_t>(static_cast<std::int16_t>(
                      std::lround(63.3 / SensorController::kTempLsb)))),
              63.3, SensorController::kTempLsb);
  EXPECT_DOUBLE_EQ(SensorController::decode_vdd(4096), 1.0);
}

TEST(Controller, RejectsBadConfig) {
  SensorController::Config cfg = clean_config();
  cfg.clock = Hertz{0.0};
  EXPECT_THROW((SensorController{cfg, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace tsvpt::core
