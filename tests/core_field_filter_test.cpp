#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/field_estimator.hpp"
#include "core/tracking_filter.hpp"
#include "process/variation.hpp"

namespace tsvpt::core {
namespace {

// ------------------------------------------------------------ FieldEstimator

struct FieldFixture {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  std::vector<SensorSite> sites;
  std::unique_ptr<StackMonitor> monitor;

  explicit FieldFixture(std::size_t grid) {
    sites = StackMonitor::uniform_sites(cfg, grid, grid);
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < grid * grid; ++i) {
      points.push_back(sites[i].location);
    }
    const process::VariationModel model{device::Technology::tsmc65_like(),
                                        points};
    Rng rng{17};
    for (std::size_t d = 0; d < cfg.die_count(); ++d) {
      const process::DieVariation die = model.sample_die(rng);
      for (std::size_t i = 0; i < grid * grid; ++i) {
        sites[d * grid * grid + i].vt_delta = die.at(i);
      }
    }
    monitor = std::make_unique<StackMonitor>(&network, PtSensor::Config{},
                                             sites, 23);
  }
};

TEST(FieldEstimator, UniformFieldReconstructsFlat) {
  FieldFixture fx{2};
  fx.network.set_uniform_temperature(Kelvin{320.0});
  fx.monitor->calibrate_all(nullptr);
  const auto sample = fx.monitor->sample_all(nullptr);
  const FieldEstimator estimator;
  const auto field = estimator.reconstruct(fx.network, 0, sample);
  for (double t : field) {
    EXPECT_NEAR(t, to_celsius(Kelvin{320.0}).value(), 2.5);
  }
}

TEST(FieldEstimator, ExactAtSensorSites) {
  FieldFixture fx{2};
  fx.network.set_uniform_power(0, Watt{2.0});
  fx.network.set_temperatures(fx.network.steady_state());
  fx.monitor->calibrate_all(nullptr);
  const auto sample = fx.monitor->sample_all(nullptr);
  const FieldEstimator estimator;
  for (const auto& reading : sample) {
    if (reading.die != 0) continue;
    EXPECT_DOUBLE_EQ(
        estimator.estimate_at(sample, 0, reading.location).value(),
        reading.sensed.value());
  }
}

TEST(FieldEstimator, EstimateBoundedByReadings) {
  FieldFixture fx{2};
  fx.network.add_hotspot(0, {1e-3, 1e-3}, Meter{0.5e-3}, Watt{3.0});
  fx.network.set_temperatures(fx.network.steady_state());
  fx.monitor->calibrate_all(nullptr);
  const auto sample = fx.monitor->sample_all(nullptr);
  double lo = 1e30;
  double hi = -1e30;
  for (const auto& r : sample) {
    if (r.die != 0) continue;
    lo = std::min(lo, r.sensed.value());
    hi = std::max(hi, r.sensed.value());
  }
  const FieldEstimator estimator;
  const auto field = estimator.reconstruct(fx.network, 0, sample);
  for (double t : field) {
    EXPECT_GE(t, lo - 1e-9);  // IDW is a convex combination
    EXPECT_LE(t, hi + 1e-9);
  }
}

TEST(FieldEstimator, DenserGridReconstructsBetter) {
  auto error_with_grid = [](std::size_t grid) {
    FieldFixture fx{grid};
    fx.network.add_hotspot(0, {1.2e-3, 3.6e-3}, Meter{0.6e-3}, Watt{4.0});
    fx.network.set_temperatures(fx.network.steady_state());
    fx.monitor->calibrate_all(nullptr);
    const auto sample = fx.monitor->sample_all(nullptr);
    return FieldEstimator{}.max_error(fx.network, 0, sample);
  };
  EXPECT_LT(error_with_grid(4), error_with_grid(1));
}

TEST(FieldEstimator, ThrowsWithoutReadings) {
  const FieldEstimator estimator;
  EXPECT_THROW((void)estimator.estimate_at({}, 0, {0.0, 0.0}),
               std::runtime_error);
}

TEST(FieldEstimator, SkipsDegradedReadings) {
  FieldFixture fx{2};
  fx.network.set_uniform_temperature(Kelvin{320.0});
  fx.monitor->calibrate_all(nullptr);
  auto sample = fx.monitor->sample_all(nullptr);
  // Corrupt one reading and mark it degraded: it must not pull the field.
  for (auto& r : sample) {
    if (r.die == 0) {
      r.sensed = Celsius{500.0};
      r.degraded = true;
      break;
    }
  }
  const FieldEstimator estimator;
  const auto field = estimator.reconstruct(fx.network, 0, sample);
  for (double t : field) EXPECT_LT(t, 60.0);
}

// ------------------------------------------------------------ TrackingFilter

TEST(TrackingFilter, FirstSamplePrimes) {
  TrackingFilter filter;
  EXPECT_FALSE(filter.primed());
  const Celsius out = filter.update(Celsius{42.0}, Second{1e-3});
  EXPECT_TRUE(filter.primed());
  EXPECT_DOUBLE_EQ(out.value(), 42.0);
}

TEST(TrackingFilter, ConvergesToConstantInput) {
  TrackingFilter filter;
  (void)filter.update(Celsius{20.0}, Second{1e-3});
  Celsius out{0.0};
  for (int i = 0; i < 50; ++i) out = filter.update(Celsius{80.0}, Second{1e-3});
  EXPECT_NEAR(out.value(), 80.0, 0.01);
}

TEST(TrackingFilter, ReducesNoiseVariance) {
  Rng rng{5};
  TrackingFilter filter{{0.2, 5e3}};
  double raw_acc = 0.0;
  double filt_acc = 0.0;
  int count = 0;
  (void)filter.update(Celsius{50.0}, Second{1e-3});
  for (int i = 0; i < 5000; ++i) {
    const double raw = 50.0 + rng.gaussian(0.0, 0.5);
    const double filtered =
        filter.update(Celsius{raw}, Second{1e-3}).value();
    if (i > 100) {  // past the settling
      raw_acc += (raw - 50.0) * (raw - 50.0);
      filt_acc += (filtered - 50.0) * (filtered - 50.0);
      ++count;
    }
  }
  EXPECT_LT(filt_acc / count, 0.25 * raw_acc / count);
}

TEST(TrackingFilter, SlewBoundsOutlier) {
  TrackingFilter filter{{1.0, 100.0}};  // alpha 1, 100 degC/s limit
  (void)filter.update(Celsius{30.0}, Second{1e-3});
  // A wild 200 degC outlier one millisecond later moves at most 0.1 degC.
  const Celsius out = filter.update(Celsius{200.0}, Second{1e-3});
  EXPECT_NEAR(out.value(), 30.1, 1e-9);
}

TEST(TrackingFilter, ResetReprimes) {
  TrackingFilter filter;
  (void)filter.update(Celsius{10.0}, Second{1e-3});
  filter.reset();
  EXPECT_FALSE(filter.primed());
  EXPECT_DOUBLE_EQ(filter.update(Celsius{99.0}, Second{1e-3}).value(), 99.0);
}

TEST(TrackingFilter, Validation) {
  EXPECT_THROW((TrackingFilter{{0.0, 100.0}}), std::invalid_argument);
  EXPECT_THROW((TrackingFilter{{1.5, 100.0}}), std::invalid_argument);
  EXPECT_THROW((TrackingFilter{{0.5, 0.0}}), std::invalid_argument);
  TrackingFilter filter;
  EXPECT_THROW((void)filter.update(Celsius{1.0}, Second{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsvpt::core
