#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/ring.hpp"

namespace tsvpt::telemetry {
namespace {

TEST(TelemetryRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{2}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{256}.capacity(), 256u);
  EXPECT_EQ(SpscRing<int>{257}.capacity(), 512u);
}

TEST(TelemetryRing, FifoWithinCapacity) {
  SpscRing<std::uint64_t> ring{8};
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  std::uint64_t overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));
  EXPECT_EQ(overflow, 99u);  // rejected pushes leave the value alone

  for (std::uint64_t i = 0; i < 8; ++i) {
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(TelemetryRing, PushOverwriteEvictsOldestAndAccounts) {
  SpscRing<std::uint64_t> ring{4};
  std::vector<std::uint64_t> victims;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.push_overwrite(i, [&](std::uint64_t&& v) { victims.push_back(v); });
  }
  // Capacity 4: frames 0..5 were evicted oldest-first, 6..9 remain.
  EXPECT_EQ(victims, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.popped(), 0u);
  EXPECT_EQ(ring.size(), 4u);
  for (std::uint64_t expected = 6; expected < 10; ++expected) {
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expected);
  }
  // The accounting identity at quiescence.
  EXPECT_EQ(ring.pushed(), ring.popped() + ring.dropped() + ring.size());
}

TEST(TelemetryRing, MovesNonTrivialPayloads) {
  SpscRing<std::vector<std::uint8_t>> ring{4};
  ring.push_overwrite(std::vector<std::uint8_t>{1, 2, 3});
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3}));
}

// One producer pushing with drop-oldest against one concurrent consumer:
// the consumer must observe a strictly increasing subsequence (drops skip
// values, never reorder or duplicate them), and every frame must be
// accounted for as either popped or dropped.  Run under TSan in CI.
TEST(TelemetryRing, ConcurrentProducerConsumerStress) {
  constexpr std::uint64_t kCount = 50'000;
  SpscRing<std::uint64_t> ring{32};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> ordered{true};

  std::thread consumer{[&] {
    std::uint64_t last_seen = 0;
    bool first = true;
    std::uint64_t out = 0;
    for (;;) {
      if (ring.try_pop(out)) {
        if (!first && out <= last_seen) ordered.store(false, std::memory_order_relaxed);
        last_seen = out;
        first = false;
        consumed.fetch_add(1, std::memory_order_relaxed);
      } else if (done.load(std::memory_order_acquire)) {
        if (!ring.try_pop(out)) break;
        if (!first && out <= last_seen) ordered.store(false, std::memory_order_relaxed);
        last_seen = out;
        first = false;
        consumed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  }};

  for (std::uint64_t i = 1; i <= kCount; ++i) ring.push_overwrite(i);
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_TRUE(ordered.load(std::memory_order_relaxed));
  EXPECT_EQ(ring.pushed(), kCount);
  EXPECT_EQ(consumed.load(std::memory_order_relaxed), ring.popped());
  EXPECT_EQ(ring.pushed(), ring.popped() + ring.dropped());
  EXPECT_TRUE(ring.empty());
}

// The drop-oldest protocol makes the producer a second consumer, so the
// slot handshake must survive genuine MPMC traffic; two producers and two
// consumers hammer a small ring.  Checks conservation: every pushed value
// is observed exactly once, as a pop or a drop.
TEST(TelemetryRing, MultiProducerMultiConsumerConservation) {
  constexpr std::uint64_t kPerProducer = 20'000;
  SpscRing<std::uint64_t> ring{16};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> pop_sum{0};
  std::atomic<std::uint64_t> drop_sum{0};
  std::atomic<std::uint64_t> pop_count{0};

  auto producer = [&](std::uint64_t base) {
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      ring.push_overwrite(base + i, [&](std::uint64_t&& v) {
        drop_sum.fetch_add(v, std::memory_order_relaxed);
      });
    }
  };
  auto consumer = [&] {
    std::uint64_t out = 0;
    for (;;) {
      if (ring.try_pop(out)) {
        pop_sum.fetch_add(out, std::memory_order_relaxed);
        pop_count.fetch_add(1, std::memory_order_relaxed);
      } else if (done.load(std::memory_order_acquire)) {
        if (!ring.try_pop(out)) break;
        pop_sum.fetch_add(out, std::memory_order_relaxed);
        pop_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  };

  std::thread c1{consumer};
  std::thread c2{consumer};
  std::thread p1{producer, 1};
  std::thread p2{producer, 1'000'000};
  p1.join();
  p2.join();
  done.store(true, std::memory_order_release);
  c1.join();
  c2.join();

  // Sum of all produced values = sum of popped + sum of dropped.
  std::uint64_t produced_sum = 0;
  for (std::uint64_t i = 0; i < kPerProducer; ++i) {
    produced_sum += 1 + i;
    produced_sum += 1'000'000 + i;
  }
  EXPECT_EQ(pop_sum.load(std::memory_order_relaxed) +
                drop_sum.load(std::memory_order_relaxed),
            produced_sum);
  EXPECT_EQ(ring.pushed(), 2 * kPerProducer);
  EXPECT_EQ(pop_count.load(std::memory_order_relaxed), ring.popped());
  EXPECT_EQ(ring.pushed(), ring.popped() + ring.dropped());
}

}  // namespace
}  // namespace tsvpt::telemetry
