#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "store/block.hpp"
#include "store/segment.hpp"

namespace tsvpt::store {
namespace {

telemetry::Frame make_frame(std::uint32_t stack, std::uint64_t sequence,
                            double sim_time) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.sequence = sequence;
  frame.sim_time = Second{sim_time};
  frame.capture_ns = 1'000'000 * sequence;
  for (std::size_t i = 0; i < 3; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = i;
    r.location = {0.25e-3 * static_cast<double>(i), 0.75e-3};
    r.sensed = Celsius{35.0 + 0.02 * static_cast<double>(sequence)};
    r.truth = Celsius{r.sensed.value() + 0.1};
    r.energy = Joule{1.5e-9};
    frame.readings.push_back(r);
  }
  return frame;
}

std::vector<std::uint8_t> sealed_block(std::uint32_t stack,
                                       std::uint64_t first_sequence,
                                       double t0, std::size_t frames = 4) {
  BlockBuilder builder;
  for (std::size_t i = 0; i < frames; ++i) {
    builder.add(make_frame(stack, first_sequence + i,
                           t0 + 1e-3 * static_cast<double>(i)));
  }
  return builder.seal();
}

std::string temp_path(const char* name) {
  // Per-process root: sanitizer jobs may run this binary concurrently.
  const std::filesystem::path dir =
      std::filesystem::path{testing::TempDir()} /
      ("tsvpt_segment_tests_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes, std::size_t count) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  if (count > 0) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, count, file), count);
  }
  ASSERT_EQ(std::fclose(file), 0);
}

TEST(StoreSegment, CreateAppendScanRoundTrip) {
  const std::string path = temp_path("roundtrip.tsl");
  {
    SegmentWriter writer = SegmentWriter::create(path, {});
    writer.append_block(sealed_block(1, 0, 0.0));
    writer.append_block(sealed_block(2, 0, 4e-3));
    writer.append_block(sealed_block(1, 4, 8e-3));
    writer.close();
  }
  const SegmentIndex index = scan_segment(path);
  EXPECT_TRUE(index.valid_header);
  EXPECT_FALSE(index.torn_tail());
  ASSERT_EQ(index.blocks.size(), 3u);
  EXPECT_EQ(index.blocks[0].offset, kSegmentHeaderSize);
  EXPECT_EQ(index.blocks[1].offset,
            index.blocks[0].offset + index.blocks[0].size);
  EXPECT_EQ(index.frames(), 12u);
  EXPECT_EQ(index.valid_bytes, index.file_bytes);
  EXPECT_GT(index.raw_bytes(), index.valid_bytes);  // compression held
}

TEST(StoreSegment, RecoveryAtEveryTruncationOffset) {
  // The crash model: a SIGKILL mid-write leaves an arbitrary prefix of the
  // segment.  For EVERY prefix length, the scan must index exactly the
  // golden blocks that fit completely, recovery must truncate to that
  // boundary, and appending must resume cleanly after the survivors.
  const std::string golden_path = temp_path("golden.tsl");
  {
    SegmentWriter writer = SegmentWriter::create(golden_path, {});
    writer.append_block(sealed_block(1, 0, 0.0, 2));
    writer.append_block(sealed_block(2, 0, 2e-3, 2));
    writer.append_block(sealed_block(1, 2, 4e-3, 2));
    writer.close();
  }
  const SegmentIndex golden = scan_segment(golden_path);
  ASSERT_EQ(golden.blocks.size(), 3u);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(golden_path, bytes));

  const std::vector<std::uint8_t> extra = sealed_block(3, 0, 9e-3, 2);
  const std::string torn_path = temp_path("torn.tsl");
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    write_bytes(torn_path, bytes, len);

    // How many golden blocks fit completely in this prefix?
    std::size_t expect_blocks = 0;
    std::uint64_t expect_valid = kSegmentHeaderSize;
    if (len >= kSegmentHeaderSize) {
      for (const BlockIndexEntry& block : golden.blocks) {
        if (block.offset + block.size > len) break;
        expect_blocks += 1;
        expect_valid = block.offset + block.size;
      }
    }

    const SegmentIndex scanned = scan_segment(torn_path);
    if (len < kSegmentHeaderSize) {
      EXPECT_FALSE(scanned.valid_header) << "length " << len;
    } else {
      ASSERT_TRUE(scanned.valid_header) << "length " << len;
      EXPECT_EQ(scanned.blocks.size(), expect_blocks) << "length " << len;
      EXPECT_EQ(scanned.valid_bytes, expect_valid) << "length " << len;
      EXPECT_EQ(scanned.torn_tail(), expect_valid < len) << "length " << len;
      for (std::size_t i = 0; i < scanned.blocks.size(); ++i) {
        EXPECT_EQ(scanned.blocks[i].offset, golden.blocks[i].offset);
        EXPECT_EQ(scanned.blocks[i].size, golden.blocks[i].size);
      }
    }

    // Recover, then keep going: the resumed segment must hold the surviving
    // prefix plus the new block, with no torn bytes left behind.
    {
      SegmentIndex recovered;
      SegmentWriter writer = SegmentWriter::recover(torn_path, {}, recovered);
      EXPECT_EQ(writer.tail_truncated(),
                len > 0 && (len < kSegmentHeaderSize || expect_valid < len))
          << "length " << len;
      writer.append_block(extra);
      writer.close();
    }
    const SegmentIndex resumed = scan_segment(torn_path);
    ASSERT_TRUE(resumed.valid_header) << "length " << len;
    EXPECT_FALSE(resumed.torn_tail()) << "length " << len;
    const std::size_t survivors = len < kSegmentHeaderSize ? 0 : expect_blocks;
    ASSERT_EQ(resumed.blocks.size(), survivors + 1) << "length " << len;
    EXPECT_EQ(resumed.blocks.back().size, extra.size()) << "length " << len;
    EXPECT_TRUE(resumed.blocks.back().header.contains_stack(3));
  }
}

TEST(StoreSegment, GarbageFileIsNotASegment) {
  const std::string path = temp_path("garbage.tsl");
  write_bytes(path, {'n', 'o', 'p', 'e', 0, 1, 2, 3, 4, 5}, 10);
  const SegmentIndex index = scan_segment(path);
  EXPECT_FALSE(index.valid_header);
  EXPECT_TRUE(index.blocks.empty());
  EXPECT_TRUE(index.torn_tail());

  // Recovery starts the segment over rather than appending after junk.
  SegmentIndex recovered;
  SegmentWriter writer = SegmentWriter::recover(path, {}, recovered);
  EXPECT_TRUE(writer.tail_truncated());
  writer.append_block(sealed_block(1, 0, 0.0));
  writer.close();
  const SegmentIndex after = scan_segment(path);
  EXPECT_TRUE(after.valid_header);
  EXPECT_EQ(after.blocks.size(), 1u);
  EXPECT_FALSE(after.torn_tail());
}

TEST(StoreSegment, MissingFileScansEmpty) {
  const SegmentIndex index = scan_segment(temp_path("does-not-exist.tsl"));
  EXPECT_FALSE(index.valid_header);
  EXPECT_EQ(index.file_bytes, 0u);
  EXPECT_TRUE(index.blocks.empty());
}

TEST(StoreSegment, FsyncBatchingPolicy) {
  const std::string path = temp_path("fsync.tsl");
  SegmentWriter writer = SegmentWriter::create(path, {.fsync_every_blocks = 2});
  const std::uint64_t after_create = writer.fsync_count();
  for (std::uint64_t i = 0; i < 5; ++i) {
    writer.append_block(sealed_block(1, 4 * i, 1e-2 * static_cast<double>(i)));
  }
  // Five appends at a batch of two -> exactly two batched syncs; the odd
  // block waits for close().
  EXPECT_EQ(writer.fsync_count(), after_create + 2);
  writer.close();
  EXPECT_EQ(writer.fsync_count(), after_create + 3);
  writer.close();  // idempotent, no further syncs
  EXPECT_EQ(writer.fsync_count(), after_create + 3);
  EXPECT_EQ(writer.blocks_appended(), 5u);
}

TEST(StoreSegment, ZeroBatchSyncsOnlyOnClose) {
  const std::string path = temp_path("fsync0.tsl");
  SegmentWriter writer = SegmentWriter::create(path, {.fsync_every_blocks = 0});
  const std::uint64_t after_create = writer.fsync_count();
  for (std::uint64_t i = 0; i < 4; ++i) {
    writer.append_block(sealed_block(1, 4 * i, 1e-2 * static_cast<double>(i)));
  }
  EXPECT_EQ(writer.fsync_count(), after_create);
  writer.close();
  EXPECT_EQ(writer.fsync_count(), after_create + 1);
}

TEST(StoreSegment, ReplaceFileSyncIsAtomicSwap) {
  const std::string path = temp_path("swap.tsl");
  write_bytes(path, {1, 2, 3}, 3);
  const std::vector<std::uint8_t> fresh{9, 8, 7, 6};
  replace_file_sync(path, fresh);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(read_file(path, bytes));
  EXPECT_EQ(bytes, fresh);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

}  // namespace
}  // namespace tsvpt::store
