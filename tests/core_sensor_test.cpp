#include "core/pt_sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ptsim/stats.hpp"

namespace tsvpt::core {
namespace {

PtSensor::Config clean_config() {
  // An idealized instance: no RO mismatch, so the only residual error
  // sources are quantization and the instance's reference-clock ppm draw.
  PtSensor::Config cfg;
  cfg.ro_mismatch_sigma = Volt{0.0};
  return cfg;
}

DieEnvironment environment(double t_celsius, double dvtn_mv, double dvtp_mv) {
  DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  env.vt_delta = {millivolts(dvtn_mv), millivolts(dvtp_mv)};
  return env;
}

TEST(PtSensor, ModelFrequencyMatchesOscillatorBank) {
  const PtSensor sensor{clean_config(), 1};
  const circuit::RingOscillator tdro = circuit::RingOscillator::make(
      clean_config().tech, circuit::RoTopology::kThermal, 15);
  circuit::OperatingPoint op;
  op.vdd = Volt{1.0};
  op.temperature = Kelvin{320.0};
  EXPECT_DOUBLE_EQ(
      sensor.model_frequency(RoRole::kTdro, Volt{0.0}, Volt{0.0},
                             Kelvin{320.0})
          .value(),
      tdro.frequency(op).value());
}

TEST(PtSensor, SelfCalibrationRecoversStateNoiseFree) {
  PtSensor sensor{clean_config(), 2};
  const DieEnvironment env = environment(63.0, 18.0, -12.0);
  const auto est = sensor.self_calibrate(env, nullptr);
  ASSERT_TRUE(est.converged);
  // Quantization-limited: sub-mV / sub-0.5C recovery expected.
  EXPECT_NEAR(est.dvtn.value(), 18e-3, 1e-3);
  EXPECT_NEAR(est.dvtp.value(), -12e-3, 1e-3);
  EXPECT_NEAR(to_celsius(est.temperature).value(), 63.0, 0.5);
}

TEST(PtSensor, SelfCalibrationAcrossCorners) {
  for (device::Corner corner : device::all_corners()) {
    PtSensor sensor{clean_config(), 3};
    const device::CornerShift shift =
        clean_config().tech.corner_shift(corner);
    DieEnvironment env;
    env.temperature = to_kelvin(Celsius{45.0});
    env.vt_delta = {shift.nmos, shift.pmos};
    const auto est = sensor.self_calibrate(env, nullptr);
    ASSERT_TRUE(est.converged) << device::to_string(corner);
    EXPECT_NEAR(est.dvtn.value(), shift.nmos.value(), 1.5e-3)
        << device::to_string(corner);
    EXPECT_NEAR(est.dvtp.value(), shift.pmos.value(), 1.5e-3)
        << device::to_string(corner);
    EXPECT_NEAR(to_celsius(est.temperature).value(), 45.0, 0.7)
        << device::to_string(corner);
  }
}

TEST(PtSensor, TrackingReadFollowsTemperature) {
  PtSensor sensor{clean_config(), 4};
  const DieEnvironment base = environment(25.0, 10.0, 8.0);
  (void)sensor.self_calibrate(base, nullptr);
  for (double t = 0.0; t <= 100.0; t += 12.5) {
    const auto reading = sensor.read(base.at_celsius(Celsius{t}), nullptr);
    EXPECT_FALSE(reading.degraded);
    EXPECT_NEAR(reading.temperature.value(), t, 0.6) << "T=" << t;
  }
}

TEST(PtSensor, FirstReadAutoCalibrates) {
  PtSensor sensor{clean_config(), 5};
  EXPECT_FALSE(sensor.is_calibrated());
  const auto reading = sensor.read(environment(40.0, -15.0, 9.0), nullptr);
  EXPECT_TRUE(sensor.is_calibrated());
  EXPECT_NEAR(reading.temperature.value(), 40.0, 0.7);
}

TEST(PtSensor, LatchedProcessThrowsBeforeCalibration) {
  PtSensor sensor{clean_config(), 6};
  EXPECT_THROW((void)sensor.latched_process(), std::logic_error);
  (void)sensor.self_calibrate(environment(25.0, 0.0, 0.0), nullptr);
  EXPECT_NO_THROW((void)sensor.latched_process());
  sensor.clear_calibration();
  EXPECT_FALSE(sensor.is_calibrated());
}

TEST(PtSensor, TrackingCheaperThanCalibration) {
  const PtSensor sensor{PtSensor::Config{}, 7};
  EXPECT_LT(sensor.tracking_energy().value(),
            sensor.calibration_energy().value());
}

TEST(PtSensor, CalibrationEnergyNearHeadline) {
  // The default configuration is tuned to the paper's 367.5 pJ/conversion.
  const PtSensor sensor{PtSensor::Config{}, 8};
  DieEnvironment env = environment(25.0, 0.0, 0.0);
  PtSensor probe = sensor;
  const auto est = probe.self_calibrate(env, nullptr);
  EXPECT_NEAR(est.energy.value() * 1e12, 367.5, 8.0);
}

TEST(PtSensor, MismatchLimitsAccuracyButStaysBounded) {
  // Realistic instances: 1 mV RO mismatch. Errors grow but stay within the
  // abstract's +-1.6 mV / +-1.5 C style bounds for typical draws.
  PtSensor::Config cfg;  // default mismatch sigma = 1 mV
  double worst_t = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    PtSensor sensor{cfg, seed};
    const DieEnvironment env = environment(50.0, 20.0, -15.0);
    const auto est = sensor.self_calibrate(env, nullptr);
    ASSERT_TRUE(est.converged);
    worst_t = std::max(worst_t,
                       std::abs(to_celsius(est.temperature).value() - 50.0));
  }
  EXPECT_LT(worst_t, 3.0);
}

TEST(PtSensor, NoiseDeterministicPerSeed) {
  PtSensor a{PtSensor::Config{}, 9};
  PtSensor b{PtSensor::Config{}, 9};
  Rng na{13};
  Rng nb{13};
  const DieEnvironment env = environment(33.0, 5.0, -5.0);
  const auto ea = a.self_calibrate(env, &na);
  const auto eb = b.self_calibrate(env, &nb);
  EXPECT_DOUBLE_EQ(ea.dvtn.value(), eb.dvtn.value());
  EXPECT_DOUBLE_EQ(ea.temperature.value(), eb.temperature.value());
}

TEST(PtSensor, SupplyCompensationRejectsDroop) {
  // 5 % rail droop, unknown to the 3-RO solver: it aliases into (dVt, T).
  // The 4-RO mode solves for VDD as a fourth unknown and must recover both
  // the droop and the true temperature.
  PtSensor::Config plain_cfg = clean_config();
  PtSensor::Config comp_cfg = clean_config();
  comp_cfg.compensate_supply = true;

  DieEnvironment droopy = environment(55.0, 0.0, 0.0);
  droopy.supply = circuit::SupplyRail{{Volt{1.0}, Volt{50e-3}, Volt{0.0}}};

  PtSensor plain{plain_cfg, 10};
  PtSensor comp{comp_cfg, 10};
  const auto est_plain = plain.self_calibrate(droopy, nullptr);
  const auto est_comp = comp.self_calibrate(droopy, nullptr);
  const double err_plain =
      std::abs(to_celsius(est_plain.temperature).value() - 55.0);
  const double err_comp =
      std::abs(to_celsius(est_comp.temperature).value() - 55.0);
  EXPECT_GT(err_plain, 5.0);  // droop costs the plain sensor dearly
  // The 4-unknown solve amplifies counter quantization somewhat, so the
  // compensated error is bounded by ~2 C rather than the sub-degree plain
  // no-droop case — still an order of magnitude better than uncompensated.
  EXPECT_LT(err_comp, 2.0);
  EXPECT_NEAR(est_comp.vdd.value(), 0.95, 0.01);  // droop was identified
  // Compensated tracking reads stay accurate too.
  const auto tracked = comp.read(droopy.at_celsius(Celsius{70.0}), nullptr);
  EXPECT_NEAR(tracked.temperature.value(), 70.0, 2.0);
}

TEST(PtSensor, CompensationRejectsRailNoiseInTracking) {
  // Random rail noise shifts each conversion's effective VDD; the monitor
  // samples the same realization and cancels it.
  auto three_sigma = [](bool compensate) {
    PtSensor::Config cfg = clean_config();
    cfg.compensate_supply = compensate;
    PtSensor sensor{cfg, 21};
    DieEnvironment env = environment(50.0, 0.0, 0.0);
    env.supply = circuit::SupplyRail{{Volt{1.0}, Volt{0.0}, Volt{5e-3}}};
    Rng noise{22};
    (void)sensor.self_calibrate(env, &noise);
    Samples err;
    for (int i = 0; i < 60; ++i) {
      err.add(sensor.read(env, &noise).temperature.value() - 50.0);
    }
    return err.three_sigma();
  };
  EXPECT_LT(three_sigma(true), 0.4 * three_sigma(false));
}

TEST(PtSensor, CompensationChargesMonitorEnergy) {
  PtSensor::Config plain_cfg;
  PtSensor::Config comp_cfg;
  comp_cfg.compensate_supply = true;
  const PtSensor plain{plain_cfg, 23};
  const PtSensor comp{comp_cfg, 23};
  const double extra =
      comp.tracking_energy().value() - plain.tracking_energy().value();
  EXPECT_NEAR(extra, comp_cfg.vdd_monitor.sample_energy.value(), 1e-13);
}

TEST(PtSensor, EstimateExposesRailVoltage) {
  PtSensor::Config cfg = clean_config();
  cfg.compensate_supply = true;
  cfg.vdd_monitor.gain_sigma = 0.0;
  cfg.vdd_monitor.offset_sigma = Volt{0.0};
  cfg.vdd_monitor.noise_rms = Volt{0.0};
  PtSensor sensor{cfg, 24};
  DieEnvironment env = environment(40.0, 0.0, 0.0);
  env.supply = circuit::SupplyRail{{Volt{1.0}, Volt{30e-3}, Volt{0.0}}};
  const auto est = sensor.self_calibrate(env, nullptr);
  EXPECT_NEAR(est.vdd.value(), 0.97, 1e-3);
  // Plain mode reports the assumed model rail.
  PtSensor::Config plain = clean_config();
  PtSensor plain_sensor{plain, 24};
  const auto plain_est = plain_sensor.self_calibrate(env, nullptr);
  EXPECT_DOUBLE_EQ(plain_est.vdd.value(), plain.model_vdd.value());
}

TEST(PtSensor, AveragedReadReducesNoise) {
  PtSensor::Config cfg = clean_config();
  PtSensor sensor{cfg, 31};
  DieEnvironment env = environment(50.0, 0.0, 0.0);
  env.supply = circuit::SupplyRail{{Volt{1.0}, Volt{0.0}, Volt{3e-3}}};
  Rng noise{32};
  (void)sensor.self_calibrate(env, &noise);
  Samples single;
  Samples averaged;
  for (int i = 0; i < 40; ++i) {
    single.add(sensor.read(env, &noise).temperature.value() - 50.0);
    averaged.add(sensor.read_averaged(env, 8, &noise).temperature.value() -
                 50.0);
  }
  EXPECT_LT(averaged.stddev(), 0.6 * single.stddev());
}

TEST(PtSensor, AveragedReadSumsEnergy) {
  PtSensor sensor{clean_config(), 33};
  const DieEnvironment env = environment(25.0, 0.0, 0.0);
  (void)sensor.self_calibrate(env, nullptr);
  const auto one = sensor.read(env, nullptr);
  const auto four = sensor.read_averaged(env, 4, nullptr);
  EXPECT_NEAR(four.energy.value(), 4.0 * one.energy.value(), 1e-15);
  EXPECT_THROW((void)sensor.read_averaged(env, 0, nullptr),
               std::invalid_argument);
}

TEST(PtSensor, SaturatedCounterFlagsDegraded) {
  PtSensor::Config cfg = clean_config();
  cfg.counter.counter_bits = 6;  // 63 max: everything saturates
  PtSensor sensor{cfg, 11};
  (void)sensor.self_calibrate(environment(25.0, 0.0, 0.0), nullptr);
  const auto reading = sensor.read(environment(25.0, 0.0, 0.0), nullptr);
  EXPECT_TRUE(reading.degraded);
}

TEST(PtSensor, OutOfRangeTemperatureClampsAndFlags) {
  PtSensor::Config cfg = clean_config();
  cfg.t_min = Celsius{0.0};
  cfg.t_max = Celsius{60.0};
  PtSensor sensor{cfg, 12};
  (void)sensor.self_calibrate(environment(25.0, 0.0, 0.0), nullptr);
  const auto reading = sensor.read(environment(90.0, 0.0, 0.0), nullptr);
  EXPECT_TRUE(reading.degraded);
  EXPECT_NEAR(reading.temperature.value(), 60.0, 1.0);
}

TEST(PtSensor, DistinctSeedsDistinctMismatch) {
  PtSensor a{PtSensor::Config{}, 100};
  PtSensor b{PtSensor::Config{}, 101};
  EXPECT_NE(a.mismatch()[0].nmos.value(), b.mismatch()[0].nmos.value());
}

TEST(PtSensor, WiderWindowImprovesQuantization) {
  // Property of the F2D stage: 8 us window must beat 0.5 us on the same
  // noise-free environment.
  auto error_with_window = [](double window_us) {
    PtSensor::Config cfg = clean_config();
    cfg.counter.window = Second{window_us * 1e-6};
    PtSensor sensor{cfg, 500};
    const DieEnvironment env = environment(37.3, 12.0, -7.0);
    const auto est = sensor.self_calibrate(env, nullptr);
    return std::abs(to_celsius(est.temperature).value() - 37.3);
  };
  EXPECT_LT(error_with_window(8.0), error_with_window(0.5) + 1e-9);
}

/// Round-trip decoupling property over a grid of true states.
class DecouplingSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DecouplingSweep, RoundTripWithinQuantization) {
  const auto [t_c, dvtn_mv, dvtp_mv] = GetParam();
  PtSensor sensor{clean_config(), 77};
  const auto est =
      sensor.self_calibrate(environment(t_c, dvtn_mv, dvtp_mv), nullptr);
  ASSERT_TRUE(est.converged);
  EXPECT_NEAR(est.dvtn.value() * 1e3, dvtn_mv, 1.2);
  EXPECT_NEAR(est.dvtp.value() * 1e3, dvtp_mv, 1.2);
  EXPECT_NEAR(to_celsius(est.temperature).value(), t_c, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecouplingSweep,
    ::testing::Combine(::testing::Values(0.0, 25.0, 60.0, 100.0),
                       ::testing::Values(-30.0, 0.0, 30.0),
                       ::testing::Values(-30.0, 0.0, 30.0)));

}  // namespace
}  // namespace tsvpt::core
