#include "device/tech_io.hpp"

#include <gtest/gtest.h>

#include "device/mosfet.hpp"

#include <cstdio>
#include <stdexcept>

namespace tsvpt::device {
namespace {

TEST(TechIo, RoundTripPreservesEveryField) {
  const Technology original = Technology::lp65_like();
  const Technology parsed =
      parse_technology_string(to_card_string(original));
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_DOUBLE_EQ(parsed.vdd_nominal.value(), original.vdd_nominal.value());
  EXPECT_DOUBLE_EQ(parsed.t_ref.value(), original.t_ref.value());
  EXPECT_DOUBLE_EQ(parsed.nmos.vt0.value(), original.nmos.vt0.value());
  EXPECT_DOUBLE_EQ(parsed.nmos.dvt_dt, original.nmos.dvt_dt);
  EXPECT_DOUBLE_EQ(parsed.nmos.mobility_exponent,
                   original.nmos.mobility_exponent);
  EXPECT_DOUBLE_EQ(parsed.nmos.slope_factor, original.nmos.slope_factor);
  EXPECT_DOUBLE_EQ(parsed.nmos.i_spec0.value(), original.nmos.i_spec0.value());
  EXPECT_DOUBLE_EQ(parsed.pmos.vt0.value(), original.pmos.vt0.value());
  EXPECT_DOUBLE_EQ(parsed.stage_cap.value(), original.stage_cap.value());
  EXPECT_DOUBLE_EQ(parsed.sigma_vt_d2d.value(),
                   original.sigma_vt_d2d.value());
  EXPECT_DOUBLE_EQ(parsed.sigma_vt_wid.value(),
                   original.sigma_vt_wid.value());
  EXPECT_DOUBLE_EQ(parsed.wid_correlation_length.value(),
                   original.wid_correlation_length.value());
}

TEST(TechIo, PartialCardKeepsDefaults) {
  const Technology tech = parse_technology_string(
      "name = custom\n"
      "nmos.vt0 = 0.5\n");
  EXPECT_EQ(tech.name, "custom");
  EXPECT_DOUBLE_EQ(tech.nmos.vt0.value(), 0.5);
  // Untouched fields stay at the GP defaults.
  const Technology defaults = Technology::tsmc65_like();
  EXPECT_DOUBLE_EQ(tech.pmos.vt0.value(), defaults.pmos.vt0.value());
  EXPECT_DOUBLE_EQ(tech.stage_cap.value(), defaults.stage_cap.value());
}

TEST(TechIo, CommentsAndBlankLinesIgnored) {
  const Technology tech = parse_technology_string(
      "# a comment\n"
      "\n"
      "   \t  \n"
      "nmos.vt0 = 0.45   # inline comment\n");
  EXPECT_DOUBLE_EQ(tech.nmos.vt0.value(), 0.45);
}

TEST(TechIo, UnknownKeyIsHardError) {
  try {
    (void)parse_technology_string("nmos.vt_zero = 0.4\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 1"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("unknown key"), std::string::npos);
  }
}

TEST(TechIo, MalformedLinesReportLineNumbers) {
  try {
    (void)parse_technology_string("name = ok\nnmos.vt0 0.4\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
  EXPECT_THROW((void)parse_technology_string("nmos.vt0 = \n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_technology_string(" = 5\n"), std::runtime_error);
  EXPECT_THROW((void)parse_technology_string("nmos.vt0 = abc\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_technology_string("nmos.vt0 = 0.4volts\n"),
               std::runtime_error);
}

TEST(TechIo, PhysicalValidation) {
  EXPECT_THROW((void)parse_technology_string("nmos.vt0 = -0.4\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_technology_string("vdd_nominal = 0\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_technology_string("nmos.slope_factor = 0.9\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_technology_string("sigma_vt_d2d = -1e-3\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_technology_string("nmos.i_spec0 = inf\n"),
               std::runtime_error);
}

TEST(TechIo, FileRoundTrip) {
  const std::string path = "/tmp/tsvpt_tech_card_test.txt";
  save_technology(Technology::tsmc65_like(), path);
  const Technology loaded = load_technology(path);
  EXPECT_EQ(loaded.name, "65nm-GP-like");
  EXPECT_DOUBLE_EQ(loaded.nmos.vt0.value(), 0.42);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_technology("/nonexistent/card.txt"),
               std::runtime_error);
}

TEST(TechIo, ParsedCardDrivesTheModels) {
  // End-to-end: a card with a lower Vt must yield a faster oscillator.
  const Technology slow = parse_technology_string("nmos.vt0 = 0.48\n");
  const Technology fast = parse_technology_string("nmos.vt0 = 0.36\n");
  const Mosfet slow_n{slow, TransistorKind::kNmos};
  const Mosfet fast_n{fast, TransistorKind::kNmos};
  EXPECT_GT(fast_n.id_sat(Volt{1.0}, Kelvin{300.0}).value(),
            slow_n.id_sat(Volt{1.0}, Kelvin{300.0}).value());
}

}  // namespace
}  // namespace tsvpt::device
