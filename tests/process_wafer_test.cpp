#include "process/wafer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ptsim/stats.hpp"

namespace tsvpt::process {
namespace {

TEST(Wafer, SitesFitInsideRadius) {
  const WaferModel wafer{WaferParams{}, 1};
  EXPECT_GT(wafer.die_count(), 2000u);  // ~290 mm usable / 5 mm pitch
  for (std::size_t i = 0; i < wafer.die_count(); ++i) {
    EXPECT_LE(wafer.site_radius(i), wafer.params().radius.value() + 1e-12);
  }
}

TEST(Wafer, DeterministicPerSeed) {
  const WaferModel a{WaferParams{}, 7};
  const WaferModel b{WaferParams{}, 7};
  const WaferModel c{WaferParams{}, 8};
  EXPECT_DOUBLE_EQ(a.die_offset(100).nmos.value(),
                   b.die_offset(100).nmos.value());
  EXPECT_NE(a.die_offset(100).nmos.value(), c.die_offset(100).nmos.value());
}

TEST(Wafer, BowlRaisesEdgeAboveCenter) {
  WaferParams params;
  params.tilt_nmos = Volt{0.0};
  params.tilt_pmos = Volt{0.0};
  params.lot_spread = 0.0;
  const WaferModel wafer{params, 2};
  const device::VtDelta center = wafer.systematic_at({0.0, 0.0});
  const device::VtDelta edge =
      wafer.systematic_at({params.radius.value(), 0.0});
  EXPECT_NEAR(center.nmos.value(), 0.0, 1e-12);
  EXPECT_NEAR(edge.nmos.value(), params.bowl_nmos.value(), 1e-12);
  EXPECT_NEAR(edge.pmos.value(), params.bowl_pmos.value(), 1e-12);
  // Quadratic: half radius -> quarter amplitude.
  EXPECT_NEAR(wafer.systematic_at({params.radius.value() / 2.0, 0.0})
                  .nmos.value(),
              params.bowl_nmos.value() / 4.0, 1e-12);
}

TEST(Wafer, TiltIsAntisymmetric) {
  WaferParams params;
  params.bowl_nmos = Volt{0.0};
  params.bowl_pmos = Volt{0.0};
  params.lot_spread = 0.0;
  const WaferModel wafer{params, 3};
  const double r = params.radius.value();
  const device::VtDelta plus = wafer.systematic_at({r, 0.0});
  const device::VtDelta minus = wafer.systematic_at({-r, 0.0});
  EXPECT_NEAR(plus.nmos.value(), -minus.nmos.value(), 1e-12);
}

TEST(Wafer, ResidualSigmaMatches) {
  WaferParams params;
  params.bowl_nmos = Volt{0.0};
  params.bowl_pmos = Volt{0.0};
  params.tilt_nmos = Volt{0.0};
  params.tilt_pmos = Volt{0.0};
  params.sigma_residual = Volt{5e-3};
  const WaferModel wafer{params, 4};
  RunningStats stats;
  for (std::size_t i = 0; i < wafer.die_count(); ++i) {
    stats.add(wafer.die_offset(i).nmos.value());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 4e-4);
  EXPECT_NEAR(stats.stddev(), 5e-3, 5e-4);
}

TEST(Wafer, SystematicDominatesWhenResidualSmall) {
  WaferParams params;
  params.sigma_residual = Volt{0.5e-3};
  const WaferModel wafer{params, 5};
  // Correlate offset with radius^2: should be strongly positive.
  std::vector<double> r2;
  std::vector<double> offset;
  for (std::size_t i = 0; i < wafer.die_count(); ++i) {
    const double radius = wafer.site_radius(i);
    r2.push_back(radius * radius);
    offset.push_back(wafer.die_offset(i).nmos.value());
  }
  EXPECT_GT(correlation(r2, offset), 0.5);
}

TEST(Wafer, Validation) {
  WaferParams params;
  params.radius = Meter{0.0};
  EXPECT_THROW((WaferModel{params, 1}), std::invalid_argument);
  const WaferModel wafer{WaferParams{}, 1};
  EXPECT_THROW((void)wafer.die_offset(wafer.die_count()), std::out_of_range);
  EXPECT_THROW((void)wafer.site_radius(wafer.die_count()), std::out_of_range);
}

}  // namespace
}  // namespace tsvpt::process
