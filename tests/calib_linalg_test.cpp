#include "calib/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ptsim/rng.hpp"

namespace tsvpt::calib {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng{1};
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky(a);
  const Matrix rebuilt = l * l.transposed();
  EXPECT_LT((rebuilt - a).norm(), 1e-9 * a.norm());
}

TEST(Cholesky, SolveMatchesDirect) {
  Rng rng{2};
  const Matrix a = random_spd(5, rng);
  Vector x_true(5);
  for (double& v : x_true) v = rng.gaussian();
  const Vector b = a * x_true;
  const Vector x = cholesky_solve(cholesky(a), b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, JitterHandlesSemiDefinite) {
  // Rank-deficient: two identical correlation rows.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const Matrix l = cholesky(a, 1e-3);
  EXPECT_TRUE(std::isfinite(l(1, 1)));
  EXPECT_GT(l(0, 0), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a{{1.0, 0.0}, {0.0, -2.0}};
  EXPECT_THROW((void)cholesky(a), std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW((void)cholesky(Matrix{2, 3}), std::invalid_argument);
}

TEST(LuSolve, KnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = lu_solve(a, Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolve, PivotingHandlesZeroDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = lu_solve(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolve, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)lu_solve(a, Vector{1.0, 2.0}), std::runtime_error);
}

TEST(LuSolve, RandomRoundTrip) {
  Rng rng{3};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(1, 8));
    Matrix a{n, n};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
      a(i, i) += 3.0;  // diagonally dominant: well-conditioned
    }
    Vector x_true(n);
    for (double& v : x_true) v = rng.gaussian();
    const Vector x = lu_solve(a, a * x_true);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(QrLeastSquares, ExactSquareSystem) {
  const Matrix a{{1.0, 1.0}, {1.0, -1.0}};
  const Vector x = qr_least_squares(a, Vector{3.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(QrLeastSquares, OverdeterminedMinimizesResidual) {
  // Fit y = 2x + 1 through noisy-free overdetermined samples.
  Matrix a{4, 2};
  Vector b{1.0, 3.0, 5.0, 7.0};
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = static_cast<double>(i);
  }
  const Vector x = qr_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(QrLeastSquares, LeastSquaresBeatsAnyPerturbation) {
  Rng rng{4};
  Matrix a{20, 3};
  Vector b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.gaussian();
    b[i] = rng.gaussian();
  }
  const Vector x = qr_least_squares(a, b);
  auto residual = [&](const Vector& v) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 20; ++i) {
      double r = -b[i];
      for (std::size_t j = 0; j < 3; ++j) r += a(i, j) * v[j];
      acc += r * r;
    }
    return acc;
  };
  const double best = residual(x);
  for (int k = 0; k < 50; ++k) {
    Vector perturbed = x;
    for (double& v : perturbed) v += 0.01 * rng.gaussian();
    EXPECT_GE(residual(perturbed), best - 1e-12);
  }
}

TEST(QrLeastSquares, UnderdeterminedThrows) {
  EXPECT_THROW((void)qr_least_squares(Matrix{2, 3}, Vector{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Inverse, MatchesIdentity) {
  Rng rng{5};
  const Matrix a = random_spd(4, rng);
  const Matrix inv = inverse(a);
  const Matrix prod = a * inv;
  EXPECT_LT((prod - Matrix::identity(4)).norm(), 1e-8);
}

TEST(ConditionEstimate, IdentityIsOne) {
  EXPECT_NEAR(condition_estimate(Matrix::identity(5)), 1.0, 1e-6);
}

TEST(ConditionEstimate, DiagonalRatio) {
  const Matrix a{{100.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(condition_estimate(a), 100.0, 1.0);
}

}  // namespace
}  // namespace tsvpt::calib
