#include "ptsim/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tsvpt {
namespace {

TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(to_kelvin(Celsius{25.0}).value(), 298.15);
  EXPECT_DOUBLE_EQ(to_celsius(Kelvin{373.15}).value(), 100.0);
  EXPECT_DOUBLE_EQ(to_celsius(to_kelvin(Celsius{-40.0})).value(), -40.0);
}

TEST(Units, ArithmeticWithinUnit) {
  const Volt a = millivolts(500.0);
  const Volt b = millivolts(250.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 0.75);
  EXPECT_DOUBLE_EQ((a - b).value(), 0.25);
  EXPECT_DOUBLE_EQ((2.0 * b).value(), 0.5);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 0.25);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Celsius{20.0}, Celsius{25.0});
  EXPECT_EQ(Hertz{100.0}, hertz(100.0));
  EXPECT_GT(megahertz(1.0), kilohertz(999.0));
}

TEST(Units, CompoundAssignment) {
  Joule e{1.0};
  e += Joule{2.0};
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
  e -= Joule{0.5};
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

TEST(Units, FrequencyPeriodInverse) {
  EXPECT_DOUBLE_EQ(period_of(megahertz(1.0)).value(), 1e-6);
  EXPECT_DOUBLE_EQ(frequency_of(nanoseconds(1.0)).value(), 1e9);
}

TEST(Units, EnergyPowerRelations) {
  const Watt p = milliwatts(2.0);
  const Second t = seconds(3.0);
  EXPECT_DOUBLE_EQ((p * t).value(), 6e-3);
  EXPECT_DOUBLE_EQ((t * p).value(), 6e-3);
  EXPECT_DOUBLE_EQ((Joule{6e-3} / t).value(), 2e-3);
  EXPECT_DOUBLE_EQ((volts(2.0) * amperes(3.0)).value(), 6.0);
}

TEST(Units, SiPrefixFactories) {
  EXPECT_DOUBLE_EQ(picojoules(367.5).value(), 367.5e-12);
  EXPECT_DOUBLE_EQ(femtofarads(2.0).value(), 2e-15);
  EXPECT_DOUBLE_EQ(micrometers(100.0).value(), 1e-4);
  EXPECT_DOUBLE_EQ(microwatts(20.0).value(), 2e-5);
}

TEST(Units, ThermalVoltageAt300K) {
  EXPECT_NEAR(thermal_voltage(Kelvin{300.0}).value(), 0.02585, 1e-4);
}

TEST(Units, StreamingIncludesSymbol) {
  std::ostringstream os;
  os << Celsius{25.0};
  EXPECT_NE(os.str().find("degC"), std::string::npos);
}

TEST(Units, UnaryNegation) {
  EXPECT_DOUBLE_EQ((-millivolts(3.0)).value(), -3e-3);
}

}  // namespace
}  // namespace tsvpt
