#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/health_supervisor.hpp"
#include "telemetry/frame.hpp"

namespace tsvpt::telemetry {
namespace {

// Wire header offsets (see frame.hpp layout).
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kSiteCountOffset = 12;

Frame sample_frame() {
  Frame frame;
  frame.stack_id = 17;
  frame.sequence = 0xDEADBEEF01ull;
  frame.sim_time = Second{12.5e-3};
  frame.capture_ns = 123456789;
  for (std::size_t i = 0; i < 5; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = i % 3;
    r.location = {1.25e-3 * static_cast<double>(i), 3.75e-3};
    r.sensed = Celsius{25.0 + 7.3 * static_cast<double>(i)};
    r.truth = Celsius{25.1 + 7.3 * static_cast<double>(i)};
    r.energy = Joule{-1.0e-12 * static_cast<double>(i)};  // sign survives
    r.degraded = (i == 4);
    // Exercise every health state the wire can carry.
    r.health = static_cast<std::uint8_t>(i % core::kHealthStateCount);
    frame.readings.push_back(r);
  }
  return frame;
}

/// Rewrite the trailing CRC so a deliberately edited buffer is otherwise
/// self-consistent (isolates the field check under test from the CRC check).
void refresh_crc(std::vector<std::uint8_t>& buffer) {
  const std::uint32_t crc = crc32(buffer.data(), buffer.size() - 4);
  for (int i = 0; i < 4; ++i) {
    buffer[buffer.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

TEST(TelemetryFrame, Crc32KnownVector) {
  // The canonical IEEE CRC-32 check value.
  const char* data = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(data), 9),
            0xCBF43926u);
}

TEST(TelemetryFrame, RoundTrip) {
  const Frame original = sample_frame();
  const std::vector<std::uint8_t> wire = encode(original);
  EXPECT_EQ(wire.size(), encoded_size(original.readings.size()));

  const DecodeResult result = decode(wire);
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_TRUE(result.frame == original);
}

TEST(TelemetryFrame, EmptyScanRoundTrips) {
  Frame frame;
  frame.stack_id = 3;
  const DecodeResult result = decode(encode(frame));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.frame.stack_id, 3u);
  EXPECT_TRUE(result.frame.readings.empty());
}

TEST(TelemetryFrame, EveryTruncationRejected) {
  const std::vector<std::uint8_t> wire = encode(sample_frame());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult result = decode(wire.data(), len);
    EXPECT_NE(result.status, DecodeStatus::kOk) << "length " << len;
  }
  // Trailing garbage is not a valid frame either.
  std::vector<std::uint8_t> longer = wire;
  longer.push_back(0);
  EXPECT_EQ(decode(longer).status, DecodeStatus::kTruncated);
  EXPECT_EQ(decode(nullptr, 0).status, DecodeStatus::kTruncated);
}

TEST(TelemetryFrame, TruncationFuzzExactAllocations) {
  // EveryTruncationRejected passes a short length over the *full* buffer, so
  // a decoder bug that reads past `len` would land in valid memory and go
  // unnoticed.  Here every prefix is copied into an exactly-sized heap
  // allocation: under the sanitizer CI job any out-of-bounds read is a
  // heap-buffer-overflow, and in all builds the status must be non-kOk.
  const Frame multi = sample_frame();
  const std::vector<std::uint8_t> wire = encode(multi);
  ASSERT_GT(multi.readings.size(), 1u);  // multi-site, per the threat model
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::unique_ptr<std::uint8_t[]> exact{new std::uint8_t[len]};
    std::memcpy(exact.get(), wire.data(), len);
    const DecodeResult result = decode(exact.get(), len);
    EXPECT_NE(result.status, DecodeStatus::kOk) << "length " << len;
  }
}

TEST(TelemetryFrame, EveryBitFlipRejected) {
  const std::vector<std::uint8_t> wire = encode(sample_frame());
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = wire;
    corrupt[pos] ^= 0x10;
    EXPECT_NE(decode(corrupt).status, DecodeStatus::kOk) << "byte " << pos;
  }
}

TEST(TelemetryFrame, PayloadCorruptionIsBadCrc) {
  std::vector<std::uint8_t> wire = encode(sample_frame());
  wire[wire.size() / 2] ^= 0xFF;
  EXPECT_EQ(decode(wire).status, DecodeStatus::kBadCrc);
}

TEST(TelemetryFrame, UnknownVersionRejected) {
  // A well-formed frame from a *future* codec revision (valid CRC) must be
  // refused, not misparsed.
  std::vector<std::uint8_t> wire = encode(sample_frame());
  wire[kVersionOffset] = static_cast<std::uint8_t>(kWireVersion + 1);
  refresh_crc(wire);
  EXPECT_EQ(decode(wire).status, DecodeStatus::kUnsupportedVersion);
}

TEST(TelemetryFrame, BadMagicRejected) {
  std::vector<std::uint8_t> wire = encode(sample_frame());
  wire[0] ^= 0xFF;
  refresh_crc(wire);
  EXPECT_EQ(decode(wire).status, DecodeStatus::kBadMagic);
}

TEST(TelemetryFrame, AbsurdSiteCountRejected) {
  // A hostile/corrupt length field must be caught before any allocation is
  // sized from it.
  std::vector<std::uint8_t> wire = encode(sample_frame());
  const std::uint32_t absurd = kMaxSiteCount + 1;
  for (int i = 0; i < 4; ++i) {
    wire[kSiteCountOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(absurd >> (8 * i));
  }
  refresh_crc(wire);
  EXPECT_EQ(decode(wire).status, DecodeStatus::kBadSiteCount);
}

TEST(TelemetryFrame, OutOfRangeSiteIndexRejected) {
  // A CRC-valid frame whose reading claims a site outside [0, site_count)
  // must be refused: consumers index scan-shaped arrays by site_index.
  constexpr std::size_t kHeaderSize = 40;  // first reading's site_index field
  std::vector<std::uint8_t> wire = encode(sample_frame());
  const std::uint32_t rogue = 5;  // == site_count, first invalid value
  for (int i = 0; i < 4; ++i) {
    wire[kHeaderSize + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rogue >> (8 * i));
  }
  refresh_crc(wire);
  EXPECT_EQ(decode(wire).status, DecodeStatus::kBadSiteIndex);
}

TEST(TelemetryFrame, PeekStackId) {
  const Frame frame = sample_frame();
  const std::vector<std::uint8_t> wire = encode(frame);
  ASSERT_TRUE(peek_stack_id(wire).has_value());
  EXPECT_EQ(*peek_stack_id(wire), frame.stack_id);
  EXPECT_FALSE(peek_stack_id(std::vector<std::uint8_t>(8)).has_value());
}

TEST(TelemetryFrame, HealthBytesSurviveRoundTrip) {
  const Frame original = sample_frame();
  const DecodeResult result = decode(encode(original));
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < original.readings.size(); ++i) {
    EXPECT_EQ(result.frame.readings[i].health, original.readings[i].health)
        << "site " << i;
  }
}

TEST(TelemetryFrame, BogusHealthStateRejected) {
  // A CRC-valid frame whose health byte names no core::HealthState must be
  // refused: collectors cast the byte straight into the enum.
  constexpr std::size_t kHeaderSize = 40;
  constexpr std::size_t kSiteSize = 50;  // health is the site's last byte
  std::vector<std::uint8_t> wire = encode(sample_frame());
  wire[kHeaderSize + kSiteSize - 1] = core::kHealthStateCount;
  refresh_crc(wire);
  EXPECT_EQ(decode(wire).status, DecodeStatus::kBadHealthState);
}

TEST(TelemetryFrame, StatusStringsCoverEveryCode) {
  for (const DecodeStatus status :
       {DecodeStatus::kOk, DecodeStatus::kTruncated, DecodeStatus::kBadMagic,
        DecodeStatus::kUnsupportedVersion, DecodeStatus::kBadSiteCount,
        DecodeStatus::kBadSiteIndex, DecodeStatus::kBadHealthState,
        DecodeStatus::kBadCrc}) {
    EXPECT_STRNE(to_string(status), "unknown");
  }
}

}  // namespace
}  // namespace tsvpt::telemetry
