#include "thermal/leakage.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "thermal/network.hpp"

namespace tsvpt::thermal {
namespace {

StackConfig tiny_stack() {
  StackConfig cfg;
  DieGeometry die;
  die.nx = 4;
  die.ny = 4;
  cfg.dies.assign(2, die);
  cfg.bonds.assign(1, BondLayer{});
  cfg.sink_resistance = 3.0;
  return cfg;
}

TEST(LeakageSource, MatchesReferenceScale) {
  const auto fn = leakage_source(device::Technology::tsmc65_like(),
                                 Volt{1.0}, Watt{0.01}, Kelvin{318.15});
  EXPECT_NEAR(fn(318.15), 0.01, 1e-9);
}

TEST(LeakageSource, GrowsWithTemperatureAndClamps) {
  const auto fn = leakage_source(device::Technology::tsmc65_like(),
                                 Volt{1.0}, Watt{0.01}, Kelvin{318.15}, 5.0);
  // Exponential growth below the clamp (leakage roughly doubles per ~10 K).
  EXPECT_GT(fn(325.0), fn(318.15));
  EXPECT_GT(fn(332.0), fn(325.0));
  // Clamp engages at 5x the reference.
  EXPECT_DOUBLE_EQ(fn(600.0), 0.05);
  EXPECT_DOUBLE_EQ(fn(380.0), 0.05);
}

TEST(ThermalNetwork, LeakageRaisesSteadyState) {
  ThermalNetwork plain{tiny_stack()};
  plain.set_uniform_power(0, Watt{1.0});
  const auto cold = plain.steady_state();

  ThermalNetwork with_leak{tiny_stack()};
  with_leak.set_uniform_power(0, Watt{1.0});
  with_leak.set_leakage_power(
      0, leakage_source(device::Technology::tsmc65_like(), Volt{1.0},
                        Watt{0.005}, Kelvin{298.15}));
  const auto hot = with_leak.steady_state();
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_GT(hot[i], cold[i]);
  }
}

TEST(ThermalNetwork, ClearLeakageRestoresLinear) {
  ThermalNetwork net{tiny_stack()};
  net.set_uniform_power(0, Watt{1.0});
  const auto baseline = net.steady_state();
  net.set_leakage_power(
      0, leakage_source(device::Technology::tsmc65_like(), Volt{1.0},
                        Watt{0.01}, Kelvin{298.15}));
  net.clear_leakage_power();
  const auto after = net.steady_state();
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i], baseline[i]);
  }
}

TEST(ThermalNetwork, TransientMatchesFeedbackSteadyState) {
  ThermalNetwork net{tiny_stack()};
  net.set_uniform_power(0, Watt{0.8});
  net.set_leakage_power(
      0, leakage_source(device::Technology::tsmc65_like(), Volt{1.0},
                        Watt{0.01}, Kelvin{298.15}));
  const auto steady = net.steady_state();
  net.set_uniform_temperature(net.config().ambient);
  for (int i = 0; i < 300; ++i) net.step(Second{2e-3});
  for (std::size_t i = 0; i < steady.size(); ++i) {
    EXPECT_NEAR(net.temperatures()[i], steady[i], 0.05);
  }
}

TEST(ThermalNetwork, LeakagePowerQueryTracksState) {
  ThermalNetwork net{tiny_stack()};
  net.set_leakage_power(
      0, leakage_source(device::Technology::tsmc65_like(), Volt{1.0},
                        Watt{0.01}, Kelvin{298.15}));
  net.set_uniform_temperature(Kelvin{298.15});
  // 16 cells x 0.01 W at the reference temperature.
  EXPECT_NEAR(net.leakage_power().value(), 0.16, 1e-9);
  net.set_uniform_temperature(Kelvin{340.0});
  EXPECT_GT(net.leakage_power().value(), 0.16);
}

TEST(ThermalNetwork, RunawayThrows) {
  StackConfig cfg = tiny_stack();
  cfg.sink_resistance = 50.0;  // nearly adiabatic
  ThermalNetwork net{cfg};
  net.set_uniform_power(0, Watt{2.0});
  // Unclamped-ish exponential with a strong base: no equilibrium.
  net.set_leakage_power(
      0, leakage_source(device::Technology::tsmc65_like(), Volt{1.0},
                        Watt{0.05}, Kelvin{298.15}, 1e9));
  net.set_runaway_limit(Kelvin{800.0});
  EXPECT_THROW((void)net.steady_state(), std::runtime_error);
}

TEST(ThermalNetwork, RejectsInvalidLeakage) {
  ThermalNetwork net{tiny_stack()};
  EXPECT_THROW(net.set_leakage_power(5, [](double) { return 0.0; }),
               std::out_of_range);
  net.set_leakage_power(0, [](double) { return -1.0; });
  EXPECT_THROW((void)net.leakage_power(), std::runtime_error);
}

TEST(ThermalNetwork, ScalePowerLeavesLeakageAlone) {
  ThermalNetwork net{tiny_stack()};
  net.set_uniform_power(0, Watt{1.0});
  net.set_leakage_power(
      0, leakage_source(device::Technology::tsmc65_like(), Volt{1.0},
                        Watt{0.01}, Kelvin{298.15}));
  net.set_uniform_temperature(Kelvin{298.15});
  const double leak_before = net.leakage_power().value();
  net.scale_power(0.5);
  EXPECT_NEAR(net.total_power().value(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(net.leakage_power().value(), leak_before);
}

}  // namespace
}  // namespace tsvpt::thermal
