#include "ptsim/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tsvpt {
namespace {

/// RAII capture of the global logger's sink and level.
class LogCapture {
 public:
  LogCapture() {
    previous_level_ = Logger::instance().level();
    Logger::instance().set_sink(
        [this](LogLevel level, const std::string& message) {
          entries_.push_back({level, message});
        });
  }
  ~LogCapture() {
    Logger::instance().set_level(previous_level_);
    Logger::instance().set_sink(nullptr);
  }

  struct Entry {
    LogLevel level;
    std::string message;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  LogLevel previous_level_;
  std::vector<Entry> entries_;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug() << "invisible";
  log_info() << "also invisible";
  log_warn() << "visible";
  log_error() << "critical";
  ASSERT_EQ(capture.entries().size(), 2u);
  EXPECT_EQ(capture.entries()[0].level, LogLevel::kWarn);
  EXPECT_EQ(capture.entries()[1].level, LogLevel::kError);
}

TEST(Log, StreamingComposesMessage) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kDebug);
  log_info() << "f=" << 42 << " MHz, T=" << 25.5;
  ASSERT_EQ(capture.entries().size(), 1u);
  EXPECT_EQ(capture.entries()[0].message, "f=42 MHz, T=25.5");
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Log, NullSinkIsSafe) {
  LogCapture capture;
  Logger::instance().set_sink(nullptr);
  Logger::instance().set_level(LogLevel::kDebug);
  EXPECT_NO_THROW(log_error() << "nowhere to go");
}

TEST(Log, ParseLevelAcceptsAnyCaseAndRejectsJunk) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Log, EnabledFollowsLevel) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

}  // namespace
}  // namespace tsvpt
