#include "calib/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::calib {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{2, 3, 1.5};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m{2, 2};
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
}

TEST(Matrix, InitializerListAndRagged) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix id = Matrix::identity(2);
  const Matrix prod = a * id;
  EXPECT_DOUBLE_EQ(prod(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnownResult) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a{2, 3};
  const Matrix b{2, 3};
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(Matrix, VectorMultiply) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector v{5.0, 6.0};
  const Vector out = a * v;
  EXPECT_DOUBLE_EQ(out[0], 17.0);
  EXPECT_DOUBLE_EQ(out[1], 39.0);
  EXPECT_THROW((void)(a * Vector{1.0}), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const Matrix back = t.transposed();
  EXPECT_DOUBLE_EQ(back(1, 2), 6.0);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
  EXPECT_THROW((void)(a + Matrix{1, 1}), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Matrix, ToStringContainsValues) {
  const Matrix a{{1.5, 2.5}};
  const std::string s = a.to_string(1);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(VectorOps, DotNormAddSub) {
  const Vector a{1.0, 2.0, 2.0};
  const Vector b{2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ((a + b)[0], 3.0);
  EXPECT_DOUBLE_EQ((a - b)[2], 1.0);
  EXPECT_DOUBLE_EQ((2.0 * a)[1], 4.0);
  EXPECT_THROW((void)dot(a, Vector{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace tsvpt::calib
