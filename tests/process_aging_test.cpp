#include "process/aging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::process {
namespace {

const AgingModel kModel{};

TEST(Aging, ZeroAgeZeroShift) {
  const device::VtDelta fresh = kModel.shift(Second{0.0}, StressCondition{});
  EXPECT_DOUBLE_EQ(fresh.nmos.value(), 0.0);
  EXPECT_DOUBLE_EQ(fresh.pmos.value(), 0.0);
}

TEST(Aging, ZeroDutyZeroShift) {
  StressCondition idle;
  idle.duty = 0.0;
  const device::VtDelta shift = kModel.shift(AgingModel::years(10.0), idle);
  EXPECT_DOUBLE_EQ(shift.pmos.value(), 0.0);
}

TEST(Aging, TenYearMagnitudeMatchesCalibration) {
  // ~21 mV NBTI after 10 years at 85 degC full duty (the calibration
  // anchor), PBTI ~ 40 % of that.
  StressCondition stress;
  stress.temperature = to_kelvin(Celsius{85.0});
  stress.duty = 1.0;
  const device::VtDelta shift =
      kModel.shift(AgingModel::years(10.0), stress);
  EXPECT_NEAR(shift.pmos.value() * 1e3, 21.0, 3.0);
  EXPECT_NEAR(shift.nmos.value() / shift.pmos.value(), 0.42, 0.05);
}

TEST(Aging, MonotoneInTime) {
  StressCondition stress;
  double prev = 0.0;
  for (double years : {0.1, 0.5, 1.0, 3.0, 10.0, 20.0}) {
    const double shift =
        kModel.shift(device::TransistorKind::kPmos,
                     AgingModel::years(years), stress)
            .value();
    EXPECT_GT(shift, prev);
    prev = shift;
  }
}

TEST(Aging, SubLinearInTime) {
  // Power law with n < 1: the second decade adds less than the first.
  StressCondition stress;
  const double y1 = kModel.shift(device::TransistorKind::kPmos,
                                 AgingModel::years(1.0), stress)
                        .value();
  const double y10 = kModel.shift(device::TransistorKind::kPmos,
                                  AgingModel::years(10.0), stress)
                         .value();
  EXPECT_LT(y10, 5.0 * y1);
  EXPECT_GT(y10, y1);
}

TEST(Aging, HotterAgesFaster) {
  StressCondition cool;
  cool.temperature = to_kelvin(Celsius{45.0});
  StressCondition hot;
  hot.temperature = to_kelvin(Celsius{105.0});
  const Second age = AgingModel::years(5.0);
  EXPECT_GT(kModel.shift(device::TransistorKind::kPmos, age, hot).value(),
            1.3 * kModel.shift(device::TransistorKind::kPmos, age, cool)
                      .value());
}

TEST(Aging, DutyReducesStress) {
  StressCondition full;
  StressCondition half;
  half.duty = 0.25;
  const Second age = AgingModel::years(5.0);
  const double f = kModel.shift(device::TransistorKind::kPmos, age, full)
                       .value();
  const double h = kModel.shift(device::TransistorKind::kPmos, age, half)
                       .value();
  EXPECT_NEAR(h / f, 0.5, 1e-9);  // duty^0.5 with duty = 0.25
}

TEST(Aging, ShiftsArePositiveBothKinds) {
  const device::VtDelta shift =
      kModel.shift(AgingModel::years(2.0), StressCondition{});
  EXPECT_GT(shift.nmos.value(), 0.0);
  EXPECT_GT(shift.pmos.value(), 0.0);
  EXPECT_GT(shift.pmos.value(), shift.nmos.value());  // NBTI dominates
}

TEST(Aging, Validation) {
  EXPECT_THROW(
      (void)kModel.shift(Second{-1.0}, StressCondition{}),
      std::invalid_argument);
  StressCondition bad;
  bad.duty = 1.5;
  EXPECT_THROW((void)kModel.shift(Second{1.0}, bad), std::invalid_argument);
  AgingParams params;
  params.time_exponent = 0.0;
  EXPECT_THROW((AgingModel{params}), std::invalid_argument);
}

}  // namespace
}  // namespace tsvpt::process
