#include "circuit/ring_oscillator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::circuit {
namespace {

const device::Technology kTech = device::Technology::tsmc65_like();

OperatingPoint nominal(double t_celsius = 25.0) {
  OperatingPoint op;
  op.vdd = Volt{1.0};
  op.temperature = to_kelvin(Celsius{t_celsius});
  return op;
}

RingOscillator make(RoTopology topo, std::size_t stages = 0) {
  return RingOscillator::make(kTech, topo, stages);
}

TEST(RingOscillator, TopologyNames) {
  EXPECT_STREQ(to_string(RoTopology::kStandard), "STDRO");
  EXPECT_STREQ(to_string(RoTopology::kNmosSensitive), "PSRO-N");
  EXPECT_STREQ(to_string(RoTopology::kPmosSensitive), "PSRO-P");
  EXPECT_STREQ(to_string(RoTopology::kThermal), "TDRO");
}

TEST(RingOscillator, RejectsEvenOrTinyStageCount) {
  RingOscillator::Config cfg;
  cfg.stages = 4;
  EXPECT_THROW((RingOscillator{kTech, cfg}), std::invalid_argument);
  cfg.stages = 1;
  EXPECT_THROW((RingOscillator{kTech, cfg}), std::invalid_argument);
  cfg.stages = 3;
  EXPECT_NO_THROW((RingOscillator{kTech, cfg}));
}

TEST(RingOscillator, FrequencyOrderingAcrossTopologies) {
  // Full-drive standard chain is fastest; starved thermal chain slowest at
  // room temperature.
  const double f_std = make(RoTopology::kStandard).frequency(nominal()).value();
  const double f_n =
      make(RoTopology::kNmosSensitive).frequency(nominal()).value();
  const double f_t = make(RoTopology::kThermal).frequency(nominal()).value();
  EXPECT_GT(f_std, f_n);
  EXPECT_GT(f_n, f_t);
}

TEST(RingOscillator, FrequencyInverseInStageCount) {
  const RingOscillator short_ro = make(RoTopology::kStandard, 15);
  const RingOscillator long_ro = make(RoTopology::kStandard, 61);
  const double ratio = short_ro.frequency(nominal()).value() /
                       long_ro.frequency(nominal()).value();
  EXPECT_NEAR(ratio, 61.0 / 15.0, 1e-9);
}

TEST(RingOscillator, StandardSlowsWithTemperature) {
  const RingOscillator ro = make(RoTopology::kStandard);
  double prev = 1e30;
  for (double t = -20.0; t <= 120.0; t += 10.0) {
    const double f = ro.frequency(nominal(t)).value();
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(RingOscillator, ThermalSpeedsUpMonotonically) {
  const RingOscillator ro = make(RoTopology::kThermal);
  double prev = 0.0;
  for (double t = -40.0; t <= 140.0; t += 5.0) {
    const double f = ro.frequency(nominal(t)).value();
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(RingOscillator, ThermalTempcoDominates) {
  const RoSensitivity s_t =
      make(RoTopology::kThermal).sensitivity(nominal());
  const RoSensitivity s_std =
      make(RoTopology::kStandard).sensitivity(nominal());
  EXPECT_GT(s_t.dlnf_dt, 5.0 * std::abs(s_std.dlnf_dt));
}

TEST(RingOscillator, PsroNSelectivity) {
  const RoSensitivity s = make(RoTopology::kNmosSensitive).sensitivity(
      nominal());
  EXPECT_LT(s.dlnf_dvtn, 0.0);
  EXPECT_GT(std::abs(s.dlnf_dvtn), 20.0 * std::abs(s.dlnf_dvtp));
}

TEST(RingOscillator, PsroPSelectivity) {
  const RoSensitivity s = make(RoTopology::kPmosSensitive).sensitivity(
      nominal());
  EXPECT_LT(s.dlnf_dvtp, 0.0);
  EXPECT_GT(std::abs(s.dlnf_dvtp), 20.0 * std::abs(s.dlnf_dvtn));
}

TEST(RingOscillator, PsroMoreSensitiveThanStandard) {
  const RoSensitivity psro = make(RoTopology::kNmosSensitive).sensitivity(
      nominal());
  const RoSensitivity stdro = make(RoTopology::kStandard).sensitivity(
      nominal());
  EXPECT_GT(std::abs(psro.dlnf_dvtn), 4.0 * std::abs(stdro.dlnf_dvtn));
}

TEST(RingOscillator, HigherVtSlowsEveryTopology) {
  for (RoTopology topo :
       {RoTopology::kStandard, RoTopology::kNmosSensitive,
        RoTopology::kPmosSensitive, RoTopology::kThermal}) {
    const RingOscillator ro = make(topo);
    OperatingPoint slow = nominal();
    slow.vt_delta = {Volt{30e-3}, Volt{30e-3}};
    OperatingPoint fast = nominal();
    fast.vt_delta = {Volt{-30e-3}, Volt{-30e-3}};
    EXPECT_GT(ro.frequency(fast).value(), ro.frequency(slow).value())
        << to_string(topo);
  }
}

TEST(RingOscillator, LowerVddSlows) {
  const RingOscillator ro = make(RoTopology::kStandard);
  EXPECT_GT(ro.frequency(nominal()).value(),
            ro.frequency(nominal().with_vdd(Volt{0.9})).value());
}

TEST(RingOscillator, RejectsNonPositiveVdd) {
  const RingOscillator ro = make(RoTopology::kStandard);
  EXPECT_THROW((void)ro.frequency(nominal().with_vdd(Volt{0.0})),
               std::invalid_argument);
}

TEST(RingOscillator, EnergyPerCycleQuadraticInVdd) {
  const RingOscillator ro = make(RoTopology::kStandard);
  const double e1 = ro.energy_per_cycle(Volt{1.0}).value();
  const double e2 = ro.energy_per_cycle(Volt{2.0}).value();
  EXPECT_NEAR(e2 / e1, 4.0, 1e-12);
}

TEST(RingOscillator, EnergyScalesWithStages) {
  const double e31 =
      make(RoTopology::kStandard, 31).energy_per_cycle(Volt{1.0}).value();
  const double e61 =
      make(RoTopology::kStandard, 61).energy_per_cycle(Volt{1.0}).value();
  EXPECT_NEAR(e61 / e31, 61.0 / 31.0, 1e-12);
}

TEST(RingOscillator, PowerIsEnergyTimesFrequency) {
  const RingOscillator ro = make(RoTopology::kStandard);
  const OperatingPoint op = nominal();
  EXPECT_NEAR(ro.power(op).value(),
              ro.energy_per_cycle(op.vdd).value() * ro.frequency(op).value(),
              1e-18);
}

TEST(RingOscillator, LeakageGrowsWithTemperature) {
  const RingOscillator ro = make(RoTopology::kStandard);
  EXPECT_GT(ro.leakage_power(nominal(100.0)).value(),
            3.0 * ro.leakage_power(nominal(25.0)).value());
}

TEST(RingOscillator, LeakageFarBelowActivePower) {
  const RingOscillator ro = make(RoTopology::kStandard);
  EXPECT_LT(ro.leakage_power(nominal()).value(),
            0.01 * ro.power(nominal()).value());
}

/// Parameterized sanity sweep over corner x temperature for all topologies.
class RoSweep : public ::testing::TestWithParam<
                    std::tuple<RoTopology, device::Corner, double>> {};

TEST_P(RoSweep, FrequencyFinitePositiveAndSensible) {
  const auto [topo, corner, t_c] = GetParam();
  const RingOscillator ro = make(topo);
  const device::CornerShift shift = kTech.corner_shift(corner);
  OperatingPoint op = nominal(t_c);
  op.vt_delta = {shift.nmos, shift.pmos};
  const double f = ro.frequency(op).value();
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(f, 1e5);    // > 100 kHz: still countable
  EXPECT_LT(f, 50e9);   // < 50 GHz: physically plausible
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, RoSweep,
    ::testing::Combine(
        ::testing::Values(RoTopology::kStandard, RoTopology::kNmosSensitive,
                          RoTopology::kPmosSensitive, RoTopology::kThermal),
        ::testing::ValuesIn(device::all_corners()),
        ::testing::Values(-40.0, 0.0, 25.0, 85.0, 125.0)));

}  // namespace
}  // namespace tsvpt::circuit
