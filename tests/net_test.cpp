// Transport framing + socket edge cases: the batch codec must tolerate
// arbitrary read boundaries (TCP promises a byte stream, nothing more),
// reject every structural corruption before trusting a length field, and
// treat a partial batch at disconnect as loss, not as an error.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "telemetry/codec_util.hpp"
#include "telemetry/frame.hpp"

namespace tsvpt::net {
namespace {

/// A few valid v2 wire frames of varying sizes (the parser treats inner
/// bytes as opaque, but using real frames keeps the test honest end to end).
std::vector<std::vector<std::uint8_t>> sample_frames(std::size_t count) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::size_t k = 0; k < count; ++k) {
    telemetry::Frame frame;
    frame.stack_id = static_cast<std::uint32_t>(40 + k);
    frame.sequence = k;
    frame.sim_time = Second{1e-3 * static_cast<double>(k)};
    for (std::size_t i = 0; i < 1 + k % 3; ++i) {
      core::StackMonitor::SiteReading r;
      r.site_index = i;
      r.die = i;
      r.sensed = Celsius{50.0 + static_cast<double>(k)};
      r.truth = Celsius{50.1 + static_cast<double>(k)};
      frame.readings.push_back(r);
    }
    frames.push_back(telemetry::encode(frame));
  }
  return frames;
}

std::vector<std::vector<std::uint8_t>> parse_all(
    BatchParser& parser, const std::uint8_t* data, std::size_t size,
    BatchStatus expect = BatchStatus::kOk) {
  std::vector<std::vector<std::uint8_t>> out;
  const BatchStatus status = parser.consume(
      data, size, [&](std::vector<std::uint8_t>&& f) {
        out.push_back(std::move(f));
      });
  EXPECT_EQ(status, expect) << to_string(status);
  return out;
}

TEST(NetFraming, BatchRoundTrip) {
  const auto frames = sample_frames(3);
  const std::vector<std::uint8_t> wire = encode_batch(frames);
  EXPECT_EQ(wire.size(), batch_wire_size(frames));

  BatchParser parser;
  const auto decoded = parse_all(parser, wire.data(), wire.size());
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded[i], frames[i]) << "frame " << i;
  }
  EXPECT_EQ(parser.batches(), 1u);
  EXPECT_EQ(parser.frames(), 3u);
  EXPECT_EQ(parser.bytes(), wire.size());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(NetFraming, EmptyBatchRoundTrips) {
  const std::vector<std::uint8_t> wire = encode_batch({});
  BatchParser parser;
  const auto decoded = parse_all(parser, wire.data(), wire.size());
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(parser.batches(), 1u);
}

TEST(NetFraming, SplitAtEveryByteBoundary) {
  const auto frames = sample_frames(2);
  const std::vector<std::uint8_t> wire = encode_batch(frames);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    BatchParser parser;
    std::vector<std::vector<std::uint8_t>> out;
    const auto sink = [&](std::vector<std::uint8_t>&& f) {
      out.push_back(std::move(f));
    };
    ASSERT_EQ(parser.consume(wire.data(), split, sink), BatchStatus::kOk);
    ASSERT_EQ(parser.consume(wire.data() + split, wire.size() - split, sink),
              BatchStatus::kOk);
    ASSERT_EQ(out.size(), frames.size()) << "split at " << split;
    EXPECT_EQ(out.front(), frames.front()) << "split at " << split;
    EXPECT_EQ(out.back(), frames.back()) << "split at " << split;
  }
}

TEST(NetFraming, OneByteAtATime) {
  const auto frames = sample_frames(3);
  // Two batches back to back, dribbled in a byte at a time.
  std::vector<std::uint8_t> wire = encode_batch({frames[0], frames[1]});
  const std::vector<std::uint8_t> second = encode_batch({frames[2]});
  wire.insert(wire.end(), second.begin(), second.end());

  BatchParser parser;
  std::vector<std::vector<std::uint8_t>> out;
  for (const std::uint8_t byte : wire) {
    ASSERT_EQ(parser.consume(&byte, 1,
                             [&](std::vector<std::uint8_t>&& f) {
                               out.push_back(std::move(f));
                             }),
              BatchStatus::kOk);
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], frames[2]);
  EXPECT_EQ(parser.batches(), 2u);
}

TEST(NetFraming, MultipleBatchesInOneChunk) {
  const auto frames = sample_frames(4);
  std::vector<std::uint8_t> wire = encode_batch({frames[0]});
  for (std::size_t i = 1; i < 4; ++i) {
    const auto next = encode_batch({frames[i]});
    wire.insert(wire.end(), next.begin(), next.end());
  }
  BatchParser parser;
  const auto out = parse_all(parser, wire.data(), wire.size());
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(parser.batches(), 4u);
}

TEST(NetFraming, HeaderCorruptionRejected) {
  const auto frames = sample_frames(1);
  const std::vector<std::uint8_t> wire = encode_batch(frames);
  // Any flipped header byte must poison the stream: magic and version
  // mismatches name themselves; everything else trips the header CRC (or,
  // for a flipped CRC field, the CRC check itself).
  for (std::size_t i = 0; i < kBatchHeaderSize; ++i) {
    std::vector<std::uint8_t> bad = wire;
    bad[i] ^= 0x5Au;
    BatchParser parser;
    std::size_t emitted = 0;
    const BatchStatus status =
        parser.consume(bad.data(), bad.size(),
                       [&](std::vector<std::uint8_t>&&) { emitted += 1; });
    EXPECT_NE(status, BatchStatus::kOk) << "header byte " << i;
    EXPECT_TRUE(parser.failed()) << "header byte " << i;
    EXPECT_EQ(emitted, 0u) << "header byte " << i;

    // Poisoned parsers stay poisoned: feeding good bytes cannot revive one.
    EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                             [&](std::vector<std::uint8_t>&&) {
                               emitted += 1;
                             }),
              status);
    EXPECT_EQ(emitted, 0u);
  }
}

TEST(NetFraming, TruncatedBatchEmitsNothingAndIsNotAnError) {
  const auto frames = sample_frames(2);
  const std::vector<std::uint8_t> wire = encode_batch(frames);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    BatchParser parser;
    std::size_t emitted = 0;
    ASSERT_EQ(parser.consume(wire.data(), cut,
                             [&](std::vector<std::uint8_t>&&) {
                               emitted += 1;
                             }),
              BatchStatus::kOk)
        << "cut at " << cut;
    // Frames only appear when the whole batch arrived; a SIGKILL'd client
    // mid-batch must not surface partial garbage.
    EXPECT_EQ(emitted, 0u) << "cut at " << cut;
    EXPECT_FALSE(parser.failed());
    EXPECT_EQ(parser.buffered(), cut);
  }
}

TEST(NetFraming, OversizedClaimsRejected) {
  using telemetry::put_u16;
  using telemetry::put_u32;
  using telemetry::put_u64;
  const auto make_header = [](std::uint32_t frame_count,
                              std::uint32_t payload_bytes) {
    std::vector<std::uint8_t> h;
    put_u32(h, kBatchMagic);
    put_u16(h, kBatchVersion);
    put_u16(h, 0);
    put_u64(h, 1);  // publisher id
    put_u64(h, 1);  // batch seq
    put_u32(h, frame_count);
    put_u32(h, payload_bytes);
    put_u64(h, 0);  // trace id
    put_u64(h, 0);  // send ns
    put_u64(h, 0);  // offset ns
    put_u32(h, telemetry::crc32(h.data(), h.size()));
    return h;
  };
  {
    const auto h = make_header(1, kMaxBatchPayload + 1);
    BatchParser parser;
    EXPECT_EQ(parser.consume(h.data(), h.size(),
                             [](std::vector<std::uint8_t>&&) {}),
              BatchStatus::kOversized);
  }
  {
    const auto h = make_header(kMaxBatchFrames + 1, 64);
    BatchParser parser;
    EXPECT_EQ(parser.consume(h.data(), h.size(),
                             [](std::vector<std::uint8_t>&&) {}),
              BatchStatus::kOversized);
  }
}

TEST(NetFraming, InconsistentFrameLengthsRejected) {
  const auto frames = sample_frames(2);
  std::vector<std::uint8_t> wire = encode_batch(frames);
  // Inflate the first inner length so it overruns the payload; the header
  // CRC does not cover the payload, so this models payload corruption that
  // happens to hit a length prefix.
  wire[kBatchHeaderSize + 3] = 0x7F;
  BatchParser parser;
  std::size_t emitted = 0;
  EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](std::vector<std::uint8_t>&&) {
                             emitted += 1;
                           }),
            BatchStatus::kBadFrameBounds);
  EXPECT_EQ(emitted, 0u);
}

TEST(NetFraming, BatchMetaRoundTrips) {
  const auto frames = sample_frames(3);
  BatchMeta meta;
  meta.publisher_id = 0xFEEDFACEDEADBEEFull;
  meta.seq = 42;
  meta.flags = kBatchFlagFin;
  const std::vector<std::uint8_t> wire = encode_batch(frames, meta);
  BatchParser parser;
  std::size_t seen = 0;
  parser.set_batch_handler([&](const BatchInfo& info) {
    EXPECT_EQ(info.publisher_id, meta.publisher_id);
    EXPECT_EQ(info.seq, meta.seq);
    EXPECT_TRUE(info.fin());
    EXPECT_FALSE(info.heartbeat());
    EXPECT_EQ(info.frame_count, frames.size());
    seen += 1;
    return true;
  });
  std::size_t emitted = 0;
  EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](std::vector<std::uint8_t>&&) { emitted += 1; }),
            BatchStatus::kOk);
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(emitted, frames.size());
}

TEST(NetFraming, BatchHandlerVetoSkipsFrames) {
  const auto frames = sample_frames(4);
  const std::vector<std::uint8_t> wire =
      encode_batch(frames, BatchMeta{7, 9, 0});
  BatchParser parser;
  parser.set_batch_handler([](const BatchInfo&) { return false; });
  std::size_t emitted = 0;
  EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](std::vector<std::uint8_t>&&) { emitted += 1; }),
            BatchStatus::kOk);
  // Vetoed: the batch still counts (it was valid wire), its frames do not.
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(parser.batches(), 1u);
  EXPECT_EQ(parser.frames(), 0u);
  EXPECT_EQ(parser.frames_skipped(), frames.size());
}

TEST(NetFraming, AckRoundTripsAtEveryReadBoundary) {
  AckFrame ack;
  ack.flags = kAckFlagDrained;
  ack.ack_seq = 0x0123456789ABCDEFull;
  ack.nack = 0;
  const std::vector<std::uint8_t> wire = encode_ack(ack);
  ASSERT_EQ(wire.size(), kAckFrameSize);
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    AckParser parser;
    std::vector<AckFrame> got;
    ASSERT_EQ(parser.consume(wire.data(), cut,
                             [&](const AckFrame& a) { got.push_back(a); }),
              AckStatus::kOk);
    ASSERT_EQ(parser.consume(wire.data() + cut, wire.size() - cut,
                             [&](const AckFrame& a) { got.push_back(a); }),
              AckStatus::kOk);
    ASSERT_EQ(got.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(got[0].ack_seq, ack.ack_seq);
    EXPECT_EQ(got[0].flags, ack.flags);
    EXPECT_TRUE(got[0].drained());
    EXPECT_FALSE(got[0].nacked());
  }
}

TEST(NetFraming, AckEveryByteCorruptionDetected) {
  AckFrame ack;
  ack.ack_seq = 12345;
  const std::vector<std::uint8_t> pristine = encode_ack(ack);
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                    std::uint8_t{0xFF}}) {
      std::vector<std::uint8_t> wire = pristine;
      wire[i] ^= flip;
      AckParser parser;
      std::size_t emitted = 0;
      const AckStatus status = parser.consume(
          wire.data(), wire.size(), [&](const AckFrame&) { emitted += 1; });
      // Flag bytes and the ack_seq/nack payload are CRC-covered, so any
      // single-byte damage must surface as a poisoned parser, never as a
      // silently-wrong cumulative ack.
      EXPECT_NE(status, AckStatus::kOk) << "byte " << i;
      EXPECT_TRUE(parser.failed()) << "byte " << i;
      EXPECT_EQ(emitted, 0u) << "byte " << i;
      // Sticky: more (valid) bytes cannot resurrect the connection.
      EXPECT_NE(parser.consume(pristine.data(), pristine.size(),
                               [&](const AckFrame&) { emitted += 1; }),
                AckStatus::kOk);
      EXPECT_EQ(emitted, 0u) << "byte " << i;
    }
  }
}

TEST(NetFraming, AckTruncationNeverEmits) {
  AckFrame ack;
  ack.ack_seq = 999;
  ack.flags = kAckFlagNack;
  ack.nack = 3;
  const std::vector<std::uint8_t> wire = encode_ack(ack);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    AckParser parser;
    std::size_t emitted = 0;
    EXPECT_EQ(parser.consume(wire.data(), cut,
                             [&](const AckFrame&) { emitted += 1; }),
              AckStatus::kOk)
        << "cut at " << cut;
    EXPECT_EQ(emitted, 0u) << "cut at " << cut;
    EXPECT_FALSE(parser.failed());
    EXPECT_EQ(parser.buffered(), cut);
  }
}

TEST(NetFraming, TraceContextFieldsRoundTrip) {
  const auto frames = sample_frames(2);
  BatchMeta meta;
  meta.publisher_id = 11;
  meta.seq = 3;
  meta.flags = kBatchFlagOffsetValid;
  meta.trace_id = 0xABCDEF0123456789ull;
  meta.send_ns = 987'654'321;
  meta.offset_ns = -250'000;
  const std::vector<std::uint8_t> wire = encode_batch(frames, meta);

  BatchParser parser;
  std::size_t seen = 0;
  parser.set_batch_handler([&](const BatchInfo& info) {
    EXPECT_EQ(info.version, kBatchVersion);
    EXPECT_EQ(info.trace_id, meta.trace_id);
    EXPECT_EQ(info.send_ns, meta.send_ns);
    EXPECT_EQ(info.offset_ns, meta.offset_ns);
    EXPECT_TRUE(info.offset_valid());
    seen += 1;
    return true;
  });
  std::size_t emitted = 0;
  EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](std::vector<std::uint8_t>&&) { emitted += 1; }),
            BatchStatus::kOk);
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(emitted, frames.size());
}

/// A 36-byte v2 batch as a pre-upgrade build (or an old spill log) wrote it.
std::vector<std::uint8_t> encode_v2_batch(
    const std::vector<std::vector<std::uint8_t>>& frames) {
  using telemetry::put_u16;
  using telemetry::put_u32;
  using telemetry::put_u64;
  std::size_t payload = 0;
  for (const auto& f : frames) payload += 4 + f.size();
  std::vector<std::uint8_t> out;
  put_u32(out, kBatchMagic);
  put_u16(out, kBatchVersionV2);
  put_u16(out, 0);  // flags
  put_u64(out, 21); // publisher id
  put_u64(out, 5);  // seq
  put_u32(out, static_cast<std::uint32_t>(frames.size()));
  put_u32(out, static_cast<std::uint32_t>(payload));
  put_u32(out, telemetry::crc32(out.data(), kBatchHeaderSizeV2 - 4));
  for (const auto& f : frames) {
    put_u32(out, static_cast<std::uint32_t>(f.size()));
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

TEST(NetFraming, V2BatchStillParses) {
  const auto frames = sample_frames(3);
  const std::vector<std::uint8_t> wire = encode_v2_batch(frames);
  ASSERT_EQ(wire.size(),
            kBatchHeaderSizeV2 + batch_wire_size(frames) - kBatchHeaderSize);

  BatchParser parser;
  std::size_t seen = 0;
  parser.set_batch_handler([&](const BatchInfo& info) {
    EXPECT_EQ(info.version, kBatchVersionV2);
    EXPECT_EQ(info.publisher_id, 21u);
    EXPECT_EQ(info.seq, 5u);
    // v2 carries no trace context: fields default, offset never valid.
    EXPECT_EQ(info.trace_id, 0u);
    EXPECT_EQ(info.send_ns, 0u);
    EXPECT_FALSE(info.offset_valid());
    seen += 1;
    return true;
  });
  std::size_t emitted = 0;
  EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](std::vector<std::uint8_t>&&) { emitted += 1; }),
            BatchStatus::kOk);
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(emitted, frames.size());
}

TEST(NetFraming, RestampRefreshesSendTimestampAndOffset) {
  const auto frames = sample_frames(2);
  BatchMeta meta;
  meta.publisher_id = 4;
  meta.seq = 8;
  meta.send_ns = 1111;
  std::vector<std::uint8_t> wire = encode_batch(frames, meta);

  ASSERT_TRUE(restamp_batch_send(wire, 2222, 777, true));
  BatchParser parser;
  parser.set_batch_handler([&](const BatchInfo& info) {
    EXPECT_EQ(info.send_ns, 2222u);
    EXPECT_EQ(info.offset_ns, 777);
    EXPECT_TRUE(info.offset_valid());
    // Restamp must not disturb the delivery-protocol fields.
    EXPECT_EQ(info.publisher_id, 4u);
    EXPECT_EQ(info.seq, 8u);
    return true;
  });
  std::size_t emitted = 0;
  EXPECT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](std::vector<std::uint8_t>&&) { emitted += 1; }),
            BatchStatus::kOk);
  EXPECT_EQ(emitted, frames.size());

  // A later attempt with no offset estimate clears the validity flag (and
  // the header CRC is recomputed each time — the parse would fail if not).
  ASSERT_TRUE(restamp_batch_send(wire, 3333, 0, false));
  BatchParser reparse;
  reparse.set_batch_handler([&](const BatchInfo& info) {
    EXPECT_EQ(info.send_ns, 3333u);
    EXPECT_FALSE(info.offset_valid());
    return true;
  });
  EXPECT_EQ(reparse.consume(wire.data(), wire.size(),
                            [](std::vector<std::uint8_t>&&) {}),
            BatchStatus::kOk);
}

TEST(NetFraming, RestampRefusesV2AndGarbage) {
  // v2 batches (replayed spill logs) have no timestamp fields: untouched.
  std::vector<std::uint8_t> v2 = encode_v2_batch(sample_frames(1));
  const std::vector<std::uint8_t> pristine = v2;
  EXPECT_FALSE(restamp_batch_send(v2, 999, 0, false));
  EXPECT_EQ(v2, pristine);

  std::vector<std::uint8_t> tiny(8, 0);
  EXPECT_FALSE(restamp_batch_send(tiny, 999, 0, false));

  std::vector<std::uint8_t> wrong_magic = encode_batch(sample_frames(1));
  wrong_magic[0] ^= 0xFF;
  EXPECT_FALSE(restamp_batch_send(wrong_magic, 999, 0, false));
}

TEST(NetFraming, AckTimestampTrioRoundTrips) {
  AckFrame ack;
  ack.ack_seq = 17;
  ack.echo_send_ns = 1'000'001;
  ack.srv_rx_ns = 2'000'002;
  ack.srv_tx_ns = 3'000'003;
  const std::vector<std::uint8_t> wire = encode_ack(ack);
  ASSERT_EQ(wire.size(), kAckFrameSize);

  AckParser parser;
  std::vector<AckFrame> got;
  ASSERT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](const AckFrame& a) { got.push_back(a); }),
            AckStatus::kOk);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].echo_send_ns, ack.echo_send_ns);
  EXPECT_EQ(got[0].srv_rx_ns, ack.srv_rx_ns);
  EXPECT_EQ(got[0].srv_tx_ns, ack.srv_tx_ns);
  EXPECT_TRUE(got[0].timestamped());

  // No timestamped batch seen yet → echo stays 0 and the publisher must not
  // feed the sample to its clock filter.
  AckFrame bare;
  bare.ack_seq = 18;
  const std::vector<std::uint8_t> bare_wire = encode_ack(bare);
  got.clear();
  ASSERT_EQ(parser.consume(bare_wire.data(), bare_wire.size(),
                           [&](const AckFrame& a) { got.push_back(a); }),
            AckStatus::kOk);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_FALSE(got[0].timestamped());
}

TEST(NetFraming, V1AckStillParses) {
  using telemetry::put_u16;
  using telemetry::put_u32;
  using telemetry::put_u64;
  std::vector<std::uint8_t> wire;
  put_u32(wire, kAckMagic);
  put_u16(wire, kAckVersionV1);
  put_u16(wire, kAckFlagDrained);
  put_u64(wire, 99);  // ack_seq
  put_u32(wire, 0);   // nack
  put_u32(wire, telemetry::crc32(wire.data(), kAckFrameSizeV1 - 4));
  ASSERT_EQ(wire.size(), kAckFrameSizeV1);

  AckParser parser;
  std::vector<AckFrame> got;
  ASSERT_EQ(parser.consume(wire.data(), wire.size(),
                           [&](const AckFrame& a) { got.push_back(a); }),
            AckStatus::kOk);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].ack_seq, 99u);
  EXPECT_TRUE(got[0].drained());
  EXPECT_FALSE(got[0].timestamped());
}

TEST(NetSocket, LoopbackSendRecvRoundTrip) {
  Socket listener = tcp_listen("127.0.0.1", 0);
  set_nonblocking(listener, true);
  const std::uint16_t port = local_port(listener);
  ASSERT_NE(port, 0);

  Socket client = tcp_connect("127.0.0.1", port);
  ASSERT_TRUE(client.valid());

  Socket server;
  for (int i = 0; i < 1000 && !server.valid(); ++i) {
    server = tcp_accept(listener);
    if (!server.valid()) std::this_thread::yield();
  }
  ASSERT_TRUE(server.valid());

  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(send_all(client, payload.data(), payload.size()));
  client.close();  // orderly shutdown -> reader sees kClosed after the bytes

  std::vector<std::uint8_t> received;
  std::uint8_t chunk[257];
  for (;;) {
    const IoResult r = recv_some(server, chunk, sizeof(chunk));
    if (r.status == IoStatus::kOk) {
      received.insert(received.end(), chunk, chunk + r.bytes);
      continue;
    }
    ASSERT_EQ(r.status, IoStatus::kClosed);
    break;
  }
  EXPECT_EQ(received, payload);
}

TEST(NetSocket, ConnectToClosedPortFails) {
  // Bind-then-close to get a port that is almost certainly not listening.
  std::uint16_t port = 0;
  {
    const Socket listener = tcp_listen("127.0.0.1", 0);
    port = local_port(listener);
  }
  const Socket client = tcp_connect("127.0.0.1", port);
  EXPECT_FALSE(client.valid());
}

TEST(NetSocket, ChunkedSendsReassembleThroughParser) {
  // A real socket between sender and parser, bytes pushed in awkward
  // 7-byte chunks: partial *writes* at arbitrary boundaries must be
  // invisible to the framing layer.
  Socket listener = tcp_listen("127.0.0.1", 0);
  set_nonblocking(listener, true);
  Socket client = tcp_connect("127.0.0.1", local_port(listener));
  ASSERT_TRUE(client.valid());
  Socket server;
  for (int i = 0; i < 1000 && !server.valid(); ++i) {
    server = tcp_accept(listener);
    if (!server.valid()) std::this_thread::yield();
  }
  ASSERT_TRUE(server.valid());

  const auto frames = sample_frames(3);
  const std::vector<std::uint8_t> wire = encode_batch(frames);
  for (std::size_t off = 0; off < wire.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, wire.size() - off);
    ASSERT_TRUE(send_all(client, wire.data() + off, n));
  }
  client.close();

  BatchParser parser;
  std::vector<std::vector<std::uint8_t>> out;
  std::uint8_t chunk[64];
  for (;;) {
    const IoResult r = recv_some(server, chunk, sizeof(chunk));
    if (r.status == IoStatus::kOk) {
      ASSERT_EQ(parser.consume(chunk, r.bytes,
                               [&](std::vector<std::uint8_t>&& f) {
                                 out.push_back(std::move(f));
                               }),
                BatchStatus::kOk);
      continue;
    }
    ASSERT_EQ(r.status, IoStatus::kClosed);
    break;
  }
  ASSERT_EQ(out.size(), frames.size());
  EXPECT_EQ(out, frames);
}

}  // namespace
}  // namespace tsvpt::net
