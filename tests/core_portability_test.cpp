// Cross-technology portability: the self-calibration algorithm must not be
// tuned to one technology card.  Runs the decoupling round trip on the
// low-power 65 nm flavour (higher Vt, weaker drive, 1.2 V) with its own
// stored model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pt_sensor.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

namespace tsvpt::core {
namespace {

PtSensor::Config lp_config() {
  PtSensor::Config cfg;
  cfg.tech = device::Technology::lp65_like();
  cfg.model_vdd = cfg.tech.vdd_nominal;  // 1.2 V card
  return cfg;
}

DieEnvironment lp_environment(double t_celsius, Volt dvtn, Volt dvtp) {
  DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  env.vt_delta = {dvtn, dvtp};
  env.supply = circuit::SupplyRail{
      {device::Technology::lp65_like().vdd_nominal, Volt{0.0}, Volt{0.0}}};
  return env;
}

TEST(Portability, LpCardDecouplingRoundTrip) {
  PtSensor::Config cfg = lp_config();
  cfg.ro_mismatch_sigma = Volt{0.0};
  PtSensor sensor{cfg, 1};
  const auto est = sensor.self_calibrate(
      lp_environment(60.0, millivolts(20.0), millivolts(-15.0)), nullptr);
  ASSERT_TRUE(est.converged);
  EXPECT_NEAR(est.dvtn.value() * 1e3, 20.0, 1.5);
  EXPECT_NEAR(est.dvtp.value() * 1e3, -15.0, 1.5);
  EXPECT_NEAR(to_celsius(est.temperature).value(), 60.0, 1.0);
}

TEST(Portability, LpCardTrackingAcrossRange) {
  PtSensor::Config cfg = lp_config();
  cfg.ro_mismatch_sigma = Volt{0.0};
  PtSensor sensor{cfg, 2};
  const DieEnvironment base =
      lp_environment(25.0, millivolts(-12.0), millivolts(10.0));
  (void)sensor.self_calibrate(base, nullptr);
  for (double t = 0.0; t <= 100.0; t += 25.0) {
    const auto reading = sensor.read(base.at_celsius(Celsius{t}), nullptr);
    EXPECT_NEAR(reading.temperature.value(), t, 1.0) << "T=" << t;
  }
}

TEST(Portability, LpCardMonteCarloAccuracy) {
  // Same statistical exercise as F4, small scale: accuracy on the LP card
  // stays within ~2x of the GP result (different sensitivities, same
  // algorithm).
  const device::Technology tech = device::Technology::lp65_like();
  const process::VariationModel variation{tech,
                                          {process::Point{1e-3, 1e-3}}};
  Samples errors;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    Rng rng{derive_seed(313, trial)};
    const process::DieVariation die = variation.sample_die(rng);
    PtSensor sensor{lp_config(), derive_seed(314, trial)};
    DieEnvironment env = lp_environment(0.0, die.at(0).nmos, die.at(0).pmos);
    env.temperature = to_kelvin(Celsius{rng.uniform(15.0, 45.0)});
    (void)sensor.self_calibrate(env, &rng);
    for (double t : {10.0, 50.0, 90.0}) {
      const auto reading = sensor.read(env.at_celsius(Celsius{t}), &rng);
      errors.add(reading.temperature.value() - t);
    }
  }
  EXPECT_LT(errors.three_sigma(), 3.5);
  EXPECT_NEAR(errors.mean(), 0.0, 0.5);
}

TEST(Portability, CardsProduceDifferentOscillators) {
  // Sanity: the two cards are genuinely different silicon.
  const PtSensor gp{PtSensor::Config{}, 1};
  PtSensor::Config lp_cfg = lp_config();
  const PtSensor lp{lp_cfg, 1};
  const Kelvin t = to_kelvin(Celsius{25.0});
  EXPECT_NE(gp.model_frequency(RoRole::kTdro, Volt{0.0}, Volt{0.0}, t).value(),
            lp.model_frequency(RoRole::kTdro, Volt{0.0}, Volt{0.0}, t).value());
}

}  // namespace
}  // namespace tsvpt::core
