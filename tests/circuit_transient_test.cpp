// Model-validation suite: the analytic stage-delay abstraction vs the
// transistor-level transient simulation of the same circuit.  The sensor
// algorithm consumes log-frequency *sensitivities*; a constant multiplicative
// offset between model and circuit is absorbed by design-time
// characterization, so the tests pin (a) oscillation, (b) a bounded offset,
// and (c) agreement of the sensitivities themselves.
#include "circuit/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::circuit {
namespace {

const device::Technology kTech = device::Technology::tsmc65_like();

TransientRoSimulator::Options fast_options() {
  TransientRoSimulator::Options options;
  options.settle_periods = 2;
  options.measure_periods = 5;
  return options;
}

OperatingPoint op_at(double t_celsius, device::VtDelta dvt = {}) {
  OperatingPoint op;
  op.vdd = Volt{1.0};
  op.temperature = to_kelvin(Celsius{t_celsius});
  op.vt_delta = dvt;
  return op;
}

double transient_mhz(RoTopology topo, const OperatingPoint& op) {
  const RingOscillator ro = RingOscillator::make(
      kTech, topo, topo == RoTopology::kThermal ? 15 : 31);
  const TransientResult result =
      TransientRoSimulator::simulate(ro, kTech, op, fast_options());
  EXPECT_TRUE(result.valid);
  return result.frequency.value() / 1e6;
}

TEST(TransientValidation, AllTopologiesOscillate) {
  for (RoTopology topo :
       {RoTopology::kStandard, RoTopology::kNmosSensitive,
        RoTopology::kPmosSensitive, RoTopology::kThermal}) {
    EXPECT_GT(transient_mhz(topo, op_at(25.0)), 1.0) << to_string(topo);
  }
}

TEST(TransientValidation, OffsetBounded) {
  // The C V / 2 I formula is known-optimistic; the circuit must sit within
  // a fixed band of it, not arbitrarily far.
  for (RoTopology topo :
       {RoTopology::kStandard, RoTopology::kNmosSensitive,
        RoTopology::kPmosSensitive, RoTopology::kThermal}) {
    const RingOscillator ro = RingOscillator::make(
        kTech, topo, topo == RoTopology::kThermal ? 15 : 31);
    const double dev = TransientRoSimulator::relative_deviation(
        ro, kTech, op_at(25.0), fast_options());
    EXPECT_GT(dev, -0.45) << to_string(topo);
    EXPECT_LT(dev, 0.10) << to_string(topo);
  }
}

TEST(TransientValidation, OffsetStableAcrossTemperature) {
  // The offset must be ~constant in T, or the stored-model tempco would be
  // wrong: spread over 0..100 degC below 3 % for every topology.
  for (RoTopology topo :
       {RoTopology::kStandard, RoTopology::kNmosSensitive,
        RoTopology::kThermal}) {
    const RingOscillator ro = RingOscillator::make(
        kTech, topo, topo == RoTopology::kThermal ? 15 : 31);
    double lo = 1e9;
    double hi = -1e9;
    for (double t : {0.0, 50.0, 100.0}) {
      const double dev = TransientRoSimulator::relative_deviation(
          ro, kTech, op_at(t), fast_options());
      lo = std::min(lo, dev);
      hi = std::max(hi, dev);
    }
    EXPECT_LT(hi - lo, 0.03) << to_string(topo);
  }
}

TEST(TransientValidation, TdroTempcoMatchesModel) {
  const RingOscillator ro =
      RingOscillator::make(kTech, RoTopology::kThermal, 15);
  const double f_cold = transient_mhz(RoTopology::kThermal, op_at(10.0));
  const double f_hot = transient_mhz(RoTopology::kThermal, op_at(90.0));
  const double tempco_sim = std::log(f_hot / f_cold) / 80.0;
  const double tempco_model =
      std::log(ro.frequency(op_at(90.0)).value() /
               ro.frequency(op_at(10.0)).value()) /
      80.0;
  EXPECT_GT(tempco_sim, 0.0);
  EXPECT_NEAR(tempco_sim, tempco_model, 0.25 * tempco_model);
}

TEST(TransientValidation, PsroVtSensitivityMatchesModel) {
  const RingOscillator ro =
      RingOscillator::make(kTech, RoTopology::kNmosSensitive, 31);
  const device::VtDelta lo{Volt{-20e-3}, Volt{0.0}};
  const device::VtDelta hi{Volt{+20e-3}, Volt{0.0}};
  const double f_lo = transient_mhz(RoTopology::kNmosSensitive,
                                    op_at(25.0, lo));
  const double f_hi = transient_mhz(RoTopology::kNmosSensitive,
                                    op_at(25.0, hi));
  const double sens_sim = std::log(f_hi / f_lo) / 40e-3;  // per volt
  const double sens_model =
      std::log(ro.frequency(op_at(25.0, hi)).value() /
               ro.frequency(op_at(25.0, lo)).value()) /
      40e-3;
  EXPECT_LT(sens_sim, 0.0);
  EXPECT_NEAR(sens_sim, sens_model, 0.25 * std::abs(sens_model));
}

TEST(TransientValidation, SupplySensitivityDirectionMatches) {
  const RingOscillator ro =
      RingOscillator::make(kTech, RoTopology::kStandard, 31);
  OperatingPoint low = op_at(25.0);
  low.vdd = Volt{0.9};
  const TransientResult at_low =
      TransientRoSimulator::simulate(ro, kTech, low, fast_options());
  const TransientResult at_nom =
      TransientRoSimulator::simulate(ro, kTech, op_at(25.0), fast_options());
  ASSERT_TRUE(at_low.valid);
  ASSERT_TRUE(at_nom.valid);
  EXPECT_LT(at_low.frequency.value(), at_nom.frequency.value());
}

TEST(TransientValidation, OptionsValidated) {
  const RingOscillator ro =
      RingOscillator::make(kTech, RoTopology::kThermal, 15);
  TransientRoSimulator::Options bad;
  bad.step_fraction = 0.0;
  EXPECT_THROW(
      (void)TransientRoSimulator::simulate(ro, kTech, op_at(25.0), bad),
      std::invalid_argument);
}

TEST(TransientValidation, TooFewStepsReportsInvalid) {
  const RingOscillator ro =
      RingOscillator::make(kTech, RoTopology::kThermal, 15);
  TransientRoSimulator::Options tiny = fast_options();
  tiny.max_steps = 100;  // far too few to settle
  const TransientResult result =
      TransientRoSimulator::simulate(ro, kTech, op_at(25.0), tiny);
  EXPECT_FALSE(result.valid);
}

}  // namespace
}  // namespace tsvpt::circuit
