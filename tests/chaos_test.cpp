// Chaos suite: the fault-injection framework (inject::FaultPlan +
// ChaosInjector) driven through the supervised fleet pipeline.  The
// campaign test is the robustness acceptance gate: a seeded multi-fault
// campaign across an 8-stack fleet must be detected within bounded latency,
// never permanently quarantine a healthy site, serve substitutes within the
// spatial estimator's error bound, and converge back to all-healthy once
// the faults clear — identically at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "inject/fault_plan.hpp"
#include "inject/injectors.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt {
namespace {

using core::HealthState;
using inject::ChaosInjector;
using inject::FaultEvent;
using inject::FaultKind;
using inject::FaultPlan;
using telemetry::Aggregator;
using telemetry::FleetSampler;

constexpr std::uint64_t kScans = 120;
constexpr std::uint64_t kSeed = 7;

bool is_sensor_fault(FaultKind kind) {
  return kind == FaultKind::kStuckRo || kind == FaultKind::kDeadRo ||
         kind == FaultKind::kCounterBitFlip ||
         kind == FaultKind::kSupplyDroop || kind == FaultKind::kCalDrift;
}

FleetSampler::Config chaos_fleet(std::size_t threads) {
  FleetSampler::Config cfg;
  cfg.stack_count = 8;
  cfg.thread_count = threads;
  cfg.scans_per_stack = kScans;
  cfg.grid_columns = 2;
  cfg.grid_rows = 2;
  cfg.ring_capacity = 512;
  cfg.seed = kSeed;
  cfg.supervise = true;
  // The burst workload's hotspot reaches ~20 C leave-one-out deviation on a
  // sparse 2x2 grid; the spatial threshold must clear it or every clean
  // stack false-quarantines its hot corner.
  cfg.health.fault.threshold = Celsius{25.0};
  return cfg;
}

struct CampaignRun {
  FaultPlan plan;
  std::vector<std::vector<core::HealthSupervisor::Transition>> transitions;
  std::vector<std::vector<HealthState>> final_health;
  ChaosInjector::Stats stats;
  Aggregator::Summary summary;
  std::vector<FleetSampler::StackProduction> production;
};

CampaignRun run_campaign(std::size_t threads) {
  const FleetSampler::Config cfg = chaos_fleet(threads);
  const std::size_t sites_per_stack =
      cfg.grid_columns * cfg.grid_rows * 4;  // four_die_stack
  FleetSampler sampler{cfg};

  const std::vector<FaultKind> kinds{
      FaultKind::kStuckRo,      FaultKind::kDeadRo,
      FaultKind::kCounterBitFlip, FaultKind::kSupplyDroop,
      FaultKind::kCalDrift,     FaultKind::kFrameCorrupt,
      FaultKind::kRingStall,    FaultKind::kWorkerStall};
  const FaultPlan plan = FaultPlan::random_campaign(
      kSeed, cfg.stack_count, sites_per_stack, kScans, kinds);
  ChaosInjector injector{plan, &sampler};
  sampler.set_interceptor(&injector);

  Aggregator::Config acfg;
  acfg.alert_threshold = Celsius{200.0};  // alerting is not under test here
  acfg.fault.threshold = Celsius{25.0};
  acfg.watchdog_timeout = Second{0.05};
  acfg.on_stalled_ring = [&](std::size_t w) { sampler.resume_worker(w); };
  Aggregator aggregator{acfg};

  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  CampaignRun run;
  run.plan = plan;
  for (std::size_t k = 0; k < cfg.stack_count; ++k) {
    run.transitions.push_back(sampler.transitions(k));
    run.final_health.push_back(sampler.health(k));
  }
  run.stats = injector.stats();
  run.summary = aggregator.summary();
  run.production = sampler.production();
  return run;
}

TEST(ChaosCampaign, DetectsIsolatesAndRecovers) {
  const CampaignRun run = run_campaign(4);

  // The campaign genuinely exercises the required fault diversity.
  std::size_t kinds_present = 0;
  for (const FaultKind kind :
       {FaultKind::kStuckRo, FaultKind::kDeadRo, FaultKind::kCounterBitFlip,
        FaultKind::kSupplyDroop, FaultKind::kCalDrift,
        FaultKind::kFrameCorrupt, FaultKind::kRingStall,
        FaultKind::kWorkerStall}) {
    kinds_present += run.plan.has_kind(kind) ? 1 : 0;
  }
  EXPECT_GE(kinds_present, 4u);
  EXPECT_EQ(kinds_present, 8u);

  // Every sensor-level fault is detected (quarantined) within a bounded
  // number of scans of its onset.
  std::map<std::pair<std::size_t, std::size_t>, const FaultEvent*> faulted;
  for (const FaultEvent& e : run.plan.events()) {
    if (!is_sensor_fault(e.kind)) continue;
    faulted[{e.stack, e.site}] = &e;
    bool detected = false;
    for (const auto& t : run.transitions[e.stack]) {
      if (t.site_index == e.site && t.to == HealthState::kQuarantined &&
          t.scan >= e.start_scan) {
        EXPECT_LE(t.scan - e.start_scan, 30u)
            << to_string(e.kind) << " detected too late";
        detected = true;
        break;
      }
    }
    EXPECT_TRUE(detected) << to_string(e.kind) << " on stack " << e.stack
                          << " site " << e.site << " never quarantined";
  }

  // Zero permanent false positives: every site that never carried a sensor
  // fault ends Healthy — and so do the faulted ones, because every fault
  // window closed in the first half of the run (recovery converges).
  for (std::size_t k = 0; k < run.final_health.size(); ++k) {
    for (std::size_t i = 0; i < run.final_health[k].size(); ++i) {
      EXPECT_EQ(run.final_health[k][i], HealthState::kHealthy)
          << "stack " << k << " site " << i
          << (faulted.count({k, i}) ? " (faulted)" : " (never faulted)");
    }
  }

  // Recovery went through the probe path and forced recalibration.
  bool recalibrated = false;
  for (const auto& stack_transitions : run.transitions) {
    for (const auto& t : stack_transitions) {
      recalibrated |= t.reason == "probe consistent; recalibrating";
    }
  }
  EXPECT_TRUE(recalibrated);

  // Degraded-mode service: substitutes reached the collector flagged, and
  // stayed within the spatial estimator's error bound.
  EXPECT_GT(run.summary.substituted_readings, 0u);
  RunningStats degraded;
  for (const auto& [stack_id, stats] : run.summary.stacks) {
    for (const auto& [die, die_stats] : stats.dies) {
      degraded.merge(die_stats.degraded_error_c);
    }
  }
  ASSERT_GT(degraded.count(), 0u);
  EXPECT_LT(degraded.max_abs(), 25.0);

  // Transport faults land where designed: corrupted frames die at the CRC,
  // suppressed publishes surface as sequence gaps, the stalled worker is
  // kicked back to life by the collector's watchdog and every stack still
  // finishes its full production.
  EXPECT_GT(run.stats.frames_corrupted, 0u);
  EXPECT_EQ(run.summary.decode_errors, run.stats.frames_corrupted);
  EXPECT_GT(run.stats.publishes_suppressed, 0u);
  std::uint64_t missed = 0;
  for (const auto& [stack_id, stats] : run.summary.stacks) {
    missed += stats.missed;
  }
  EXPECT_GE(missed, run.stats.publishes_suppressed);
  EXPECT_EQ(run.stats.worker_stalls_requested, 1u);
  EXPECT_GE(run.summary.watchdog_kicks, 1u);
  for (const auto& p : run.production) EXPECT_EQ(p.frames, kScans);
  EXPECT_EQ(run.summary.health_transitions.empty(), false);
}

TEST(ChaosCampaign, DeterministicAcrossThreadCounts) {
  // The injector acts per (stack, scan) and supervisors live inside the
  // worker that owns the stack, so the entire health history must be
  // bit-identical no matter how the fleet is scheduled.
  const CampaignRun one = run_campaign(1);
  const CampaignRun many = run_campaign(4);

  ASSERT_EQ(one.transitions.size(), many.transitions.size());
  for (std::size_t k = 0; k < one.transitions.size(); ++k) {
    ASSERT_EQ(one.transitions[k].size(), many.transitions[k].size())
        << "stack " << k;
    for (std::size_t t = 0; t < one.transitions[k].size(); ++t) {
      const auto& a = one.transitions[k][t];
      const auto& b = many.transitions[k][t];
      EXPECT_EQ(a.site_index, b.site_index);
      EXPECT_EQ(a.from, b.from);
      EXPECT_EQ(a.to, b.to);
      EXPECT_EQ(a.scan, b.scan);
      EXPECT_EQ(a.reason, b.reason);
    }
    EXPECT_EQ(one.final_health[k], many.final_health[k]);
  }
  EXPECT_EQ(one.stats.sensor_faults_applied, many.stats.sensor_faults_applied);
  EXPECT_EQ(one.stats.readings_corrupted, many.stats.readings_corrupted);
  EXPECT_EQ(one.stats.frames_corrupted, many.stats.frames_corrupted);
  EXPECT_EQ(one.stats.publishes_suppressed, many.stats.publishes_suppressed);
}

TEST(ChaosTransport, WatchdogResumesStalledWorker) {
  FleetSampler::Config cfg;
  cfg.stack_count = 2;
  cfg.thread_count = 2;
  cfg.scans_per_stack = 12;
  cfg.grid_columns = 1;
  cfg.grid_rows = 1;
  cfg.seed = 3;
  FleetSampler sampler{cfg};

  FaultPlan plan;
  plan.add({.kind = FaultKind::kWorkerStall, .stack = 1, .start_scan = 4,
            .end_scan = 5});
  ChaosInjector injector{plan, &sampler};
  sampler.set_interceptor(&injector);

  Aggregator::Config acfg;
  acfg.watchdog_timeout = Second{0.02};
  acfg.on_stalled_ring = [&](std::size_t w) { sampler.resume_worker(w); };
  Aggregator aggregator{acfg};
  aggregator.start(sampler.rings());
  sampler.run();  // would never return if the watchdog failed to kick
  aggregator.stop();

  EXPECT_EQ(injector.stats().worker_stalls_requested, 1u);
  EXPECT_GE(aggregator.summary().watchdog_kicks, 1u);
  for (const auto& p : sampler.production()) EXPECT_EQ(p.frames, 12u);
}

TEST(ChaosTransport, CorruptedFramesDieAtTheCrc) {
  FleetSampler::Config cfg;
  cfg.stack_count = 1;
  cfg.thread_count = 1;
  cfg.scans_per_stack = 10;
  cfg.grid_columns = 1;
  cfg.grid_rows = 1;
  cfg.seed = 4;
  FleetSampler sampler{cfg};

  FaultPlan plan;
  plan.add({.kind = FaultKind::kFrameCorrupt, .stack = 0, .start_scan = 2,
            .end_scan = 6});
  ChaosInjector injector{plan};
  sampler.set_interceptor(&injector);

  Aggregator aggregator{Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  EXPECT_EQ(injector.stats().frames_corrupted, 4u);
  const auto& sum = aggregator.summary();
  EXPECT_EQ(sum.decode_errors, 4u);
  ASSERT_EQ(sum.stacks.size(), 1u);
  const auto& stats = sum.stacks.begin()->second;
  EXPECT_EQ(stats.frames, 6u);
  EXPECT_EQ(stats.missed, 4u);  // the CRC victims read as lost frames
}

TEST(ChaosTransport, RingStallSurfacesAsSequenceGaps) {
  FleetSampler::Config cfg;
  cfg.stack_count = 1;
  cfg.thread_count = 1;
  cfg.scans_per_stack = 10;
  cfg.grid_columns = 1;
  cfg.grid_rows = 1;
  cfg.seed = 5;
  FleetSampler sampler{cfg};

  FaultPlan plan;
  plan.add({.kind = FaultKind::kRingStall, .stack = 0, .start_scan = 2,
            .end_scan = 5});
  ChaosInjector injector{plan};
  sampler.set_interceptor(&injector);

  Aggregator aggregator{Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  EXPECT_EQ(injector.stats().publishes_suppressed, 3u);
  EXPECT_EQ(sampler.production()[0].suppressed, 3u);
  const auto& sum = aggregator.summary();
  EXPECT_EQ(sum.decode_errors, 0u);
  ASSERT_EQ(sum.stacks.size(), 1u);
  EXPECT_EQ(sum.stacks.begin()->second.frames, 7u);
  EXPECT_EQ(sum.stacks.begin()->second.missed, 3u);
}

// ---- FaultDetector::Config propagation through Aggregator::Config.

telemetry::Frame outlier_frame(double deviation_c) {
  telemetry::Frame frame;
  frame.stack_id = 0;
  frame.sequence = 0;
  frame.sim_time = Second{1e-3};
  for (std::size_t i = 0; i < 9; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = 0;
    r.location = {1e-3 * static_cast<double>(i % 3),
                  1e-3 * static_cast<double>(i / 3)};
    r.sensed = Celsius{30.0 + (i == 4 ? deviation_c : 0.0)};
    r.truth = Celsius{30.0};
    frame.readings.push_back(r);
  }
  return frame;
}

TEST(ChaosAggregation, FaultDetectorConfigReachesTheSpatialCheck) {
  // The same 20 C outlier, judged under two thresholds: the collector's
  // spatial cross-check must obey Config::fault, not a baked-in default.
  const std::vector<std::uint8_t> wire = encode(outlier_frame(20.0));

  Aggregator tight{Aggregator::Config{}};  // fleet default: 15 C
  tight.ingest(wire);
  EXPECT_EQ(tight.summary().alerts_by_kind.at(
                telemetry::AlertKind::kSpatialSuspect),
            1u);

  Aggregator::Config wide_cfg;
  wide_cfg.fault.threshold = Celsius{25.0};
  Aggregator wide{wide_cfg};
  wide.ingest(wire);
  EXPECT_EQ(wide.summary().alerts_by_kind.count(
                telemetry::AlertKind::kSpatialSuspect),
            0u);
  EXPECT_EQ(wide.summary().alerts, 0u);
}

// ---- FaultPlan construction and validation.

TEST(FaultPlanTest, RejectsEmptyWindowAndDegenerateCampaigns) {
  FaultPlan plan;
  EXPECT_THROW(plan.add({.kind = FaultKind::kStuckRo, .start_scan = 5,
                         .end_scan = 5}),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::random_campaign(1, 0, 4, 64,
                                                {FaultKind::kStuckRo}),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::random_campaign(1, 8, 4, 8,
                                                {FaultKind::kStuckRo}),
               std::invalid_argument);
}

TEST(FaultPlanTest, RandomCampaignCoversKindsInFirstHalf) {
  const std::vector<FaultKind> kinds{FaultKind::kStuckRo, FaultKind::kDeadRo,
                                     FaultKind::kCalDrift,
                                     FaultKind::kFrameCorrupt};
  const FaultPlan plan = FaultPlan::random_campaign(42, 8, 16, 64, kinds, 2);
  EXPECT_EQ(plan.size(), kinds.size() * 2);
  for (const FaultKind kind : kinds) EXPECT_TRUE(plan.has_kind(kind));
  EXPECT_FALSE(plan.has_kind(FaultKind::kWorkerStall));
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.start_scan, 2u);
    EXPECT_LT(e.start_scan, e.end_scan);
    EXPECT_LE(e.end_scan, 32u);  // first half: recovery is observable
    EXPECT_LT(e.stack, 8u);
    EXPECT_LT(e.site, 16u);
  }
  EXPECT_LE(plan.last_active_scan(), 31u);

  // Same seed, same campaign — the whole run replays from one integer.
  const FaultPlan replay = FaultPlan::random_campaign(42, 8, 16, 64, kinds, 2);
  ASSERT_EQ(replay.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(replay.events()[i].kind, plan.events()[i].kind);
    EXPECT_EQ(replay.events()[i].stack, plan.events()[i].stack);
    EXPECT_EQ(replay.events()[i].site, plan.events()[i].site);
    EXPECT_EQ(replay.events()[i].start_scan, plan.events()[i].start_scan);
    EXPECT_EQ(replay.events()[i].end_scan, plan.events()[i].end_scan);
    EXPECT_EQ(replay.events()[i].magnitude, plan.events()[i].magnitude);
  }
}

TEST(FaultPlanTest, WorkerStallRequiresSampler) {
  FaultPlan plan;
  plan.add({.kind = FaultKind::kWorkerStall, .stack = 0, .start_scan = 1,
            .end_scan = 2});
  EXPECT_THROW(ChaosInjector{plan}, std::invalid_argument);
}

}  // namespace
}  // namespace tsvpt
