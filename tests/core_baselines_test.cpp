#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::core {
namespace {

DieEnvironment environment(double t_celsius, double dvtn_mv = 0.0,
                           double dvtp_mv = 0.0) {
  DieEnvironment env;
  env.temperature = to_kelvin(Celsius{t_celsius});
  env.vt_delta = {millivolts(dvtn_mv), millivolts(dvtp_mv)};
  return env;
}

TEST(UncalibratedRo, AccurateOnTypicalDie) {
  UncalibratedRoSensor sensor{UncalibratedRoSensor::Config{}, 1};
  const auto reading = sensor.read(environment(50.0), nullptr);
  // Only the instance mismatch (~1 mV) biases it on a typical die.
  EXPECT_NEAR(reading.temperature.value(), 50.0, 2.5);
}

TEST(UncalibratedRo, VtScatterInjectsLargeError) {
  UncalibratedRoSensor sensor{UncalibratedRoSensor::Config{}, 2};
  const auto typical = sensor.read(environment(50.0), nullptr);
  const auto skewed = sensor.read(environment(50.0, 30.0, 30.0), nullptr);
  const double err_typical = std::abs(typical.temperature.value() - 50.0);
  const double err_skewed = std::abs(skewed.temperature.value() - 50.0);
  // A 30 mV die-level shift should cost several degrees uncalibrated.
  EXPECT_GT(err_skewed, err_typical + 3.0);
}

TEST(UncalibratedRo, ErrorGrowsWithShiftMagnitude) {
  UncalibratedRoSensor sensor{UncalibratedRoSensor::Config{}, 3};
  double prev = 0.0;
  for (double shift : {0.0, 12.0, 24.0, 36.0}) {
    const auto reading = sensor.read(environment(40.0, shift, shift), nullptr);
    const double err = std::abs(reading.temperature.value() - 40.0);
    EXPECT_GE(err + 1.2, prev);  // allow mismatch/quantization slack
    prev = err;
  }
  EXPECT_GT(prev, 4.0);
}

TEST(TwoPoint, ThrowsBeforeCalibration) {
  TwoPointCalibratedRoSensor sensor{TwoPointCalibratedRoSensor::Config{}, 4};
  EXPECT_THROW((void)sensor.read(environment(25.0), nullptr),
               std::logic_error);
  EXPECT_FALSE(sensor.is_calibrated());
}

TEST(TwoPoint, AccurateAfterFactoryCalibration) {
  TwoPointCalibratedRoSensor sensor{TwoPointCalibratedRoSensor::Config{}, 5};
  const DieEnvironment die = environment(0.0, 25.0, -20.0);  // skewed die
  sensor.factory_calibrate(die, nullptr);
  ASSERT_TRUE(sensor.is_calibrated());
  for (double t : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    const auto reading = sensor.read(die.at_celsius(Celsius{t}), nullptr);
    // Log-linear map through two exact points: small residual curvature.
    EXPECT_NEAR(reading.temperature.value(), t, 1.5) << "T=" << t;
  }
}

TEST(TwoPoint, ExactAtCalibrationPoints) {
  TwoPointCalibratedRoSensor::Config cfg;
  TwoPointCalibratedRoSensor sensor{cfg, 6};
  const DieEnvironment die = environment(0.0, 10.0, 10.0);
  sensor.factory_calibrate(die, nullptr);
  const auto at_low =
      sensor.read(die.at_celsius(cfg.cal_low), nullptr);
  const auto at_high =
      sensor.read(die.at_celsius(cfg.cal_high), nullptr);
  EXPECT_NEAR(at_low.temperature.value(), cfg.cal_low.value(), 0.3);
  EXPECT_NEAR(at_high.temperature.value(), cfg.cal_high.value(), 0.3);
}

TEST(TwoPoint, BathErrorPropagates) {
  // A sloppy bath (2 C) must produce visibly worse calibration than a tight
  // one (0.05 C) on average.
  auto spread_with_bath = [](double bath_c) {
    TwoPointCalibratedRoSensor::Config cfg;
    cfg.bath_accuracy = Celsius{bath_c};
    double worst = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      TwoPointCalibratedRoSensor sensor{cfg, seed};
      Rng noise{seed + 1000};
      const DieEnvironment die = environment(0.0, 5.0, 5.0);
      sensor.factory_calibrate(die, &noise);
      const auto reading = sensor.read(die.at_celsius(Celsius{50.0}), &noise);
      worst = std::max(worst, std::abs(reading.temperature.value() - 50.0));
    }
    return worst;
  };
  EXPECT_GT(spread_with_bath(2.0), spread_with_bath(0.05));
}

TEST(Diode, NominalInstanceIsAccurate) {
  DiodeSensor::Config cfg;
  cfg.offset_sigma = Volt{0.0};
  cfg.slope_sigma = 0.0;
  DiodeSensor sensor{cfg, 7};
  const auto reading = sensor.read(environment(60.0), nullptr);
  EXPECT_NEAR(reading.temperature.value(), 60.0, 0.3);  // ADC LSB limited
}

TEST(Diode, ProcessSpreadBiasesUntrimmed) {
  double worst = 0.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    DiodeSensor sensor{DiodeSensor::Config{}, seed};
    const auto reading = sensor.read(environment(60.0), nullptr);
    worst = std::max(worst, std::abs(reading.temperature.value() - 60.0));
  }
  // 4 mV offset sigma / 1.73 mV/K slope: multi-degree tail expected.
  EXPECT_GT(worst, 2.0);
}

TEST(Diode, TrimRemovesOffset) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    DiodeSensor::Config cfg;
    cfg.one_point_trim = true;
    DiodeSensor sensor{cfg, seed};
    sensor.trim(environment(25.0), nullptr);
    const auto reading = sensor.read(environment(25.0), nullptr);
    EXPECT_NEAR(reading.temperature.value(), 25.0, 0.35) << "seed=" << seed;
  }
}

TEST(Diode, TrimImprovesAwayFromTrimPoint) {
  DiodeSensor::Config cfg;
  DiodeSensor raw{cfg, 42};
  cfg.one_point_trim = true;
  DiodeSensor trimmed{cfg, 42};
  trimmed.trim(environment(25.0), nullptr);
  const double err_raw =
      std::abs(raw.read(environment(80.0), nullptr).temperature.value() -
               80.0);
  const double err_trimmed =
      std::abs(trimmed.read(environment(80.0), nullptr).temperature.value() -
               80.0);
  EXPECT_LT(err_trimmed, err_raw + 1e-9);
}

TEST(Diode, OutOfAdcRangeFlagsDegraded) {
  DiodeSensor::Config cfg;
  cfg.adc_lo = Volt{0.58};
  cfg.adc_hi = Volt{0.62};
  cfg.offset_sigma = Volt{0.0};
  cfg.slope_sigma = 0.0;
  DiodeSensor sensor{cfg, 9};
  const auto reading = sensor.read(environment(120.0), nullptr);
  EXPECT_TRUE(reading.degraded);
}

TEST(Diode, FixedConversionEnergy) {
  DiodeSensor sensor{DiodeSensor::Config{}, 10};
  const auto reading = sensor.read(environment(25.0), nullptr);
  EXPECT_DOUBLE_EQ(reading.energy.value(),
                   DiodeSensor::Config{}.conversion_energy.value());
}

TEST(Names, AreDistinct) {
  UncalibratedRoSensor a{UncalibratedRoSensor::Config{}, 1};
  TwoPointCalibratedRoSensor b{TwoPointCalibratedRoSensor::Config{}, 1};
  DiodeSensor c{DiodeSensor::Config{}, 1};
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
}

}  // namespace
}  // namespace tsvpt::core
