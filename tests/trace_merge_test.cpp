// Cross-process trace stitching: TraceMerge must map every input dump onto
// one reference clock (per-input ts offset), give each input its own pid
// lane, label the lanes, and pass every other field through untouched — so
// a merged trace reconciles 1:1 with its inputs' span counts.
#include "obs/trace_merge.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/trace.hpp"

namespace tsvpt::obs {
namespace {

/// Minimal single-event Chrome dump with a controllable ts (microseconds).
std::string one_event(const std::string& name, double ts_us) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
                "{\"name\": \"%s\", \"cat\": \"t\", \"ph\": \"X\", "
                "\"pid\": 1, \"tid\": 0, \"ts\": %.3f, \"dur\": 5.000, "
                "\"args\": {\"arg\": 7}}\n]}\n",
                name.c_str(), ts_us);
  return buf;
}

/// The event object (outer braces included) containing `needle`.
std::string event_containing(const std::string& doc,
                             const std::string& needle) {
  const std::size_t at = doc.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t open = doc.rfind('{', at);
  const std::size_t close = doc.find('}', at);
  // Step over the nested args object if the needle landed before it.
  std::size_t end = close;
  if (doc.compare(close + 1, 1, "}") == 0) end = close + 1;
  return doc.substr(open, end - open + 1);
}

TEST(TraceMerge, GoldenMergeIsValidJsonWithLabelledLanes) {
  TraceMerge merge;
  merge.add(one_event("send", 100.0), 0, "publisher");
  merge.add(one_event("recv", 100.0), 0, "server");
  const TraceMerge::Result result = merge.merge();

  EXPECT_TRUE(tsvpt::testing::is_valid_json(result.json)) << result.json;
  EXPECT_EQ(result.total_events, 2u);
  ASSERT_EQ(result.events_per_input.size(), 2u);
  EXPECT_EQ(result.events_per_input[0], 1u);
  EXPECT_EQ(result.events_per_input[1], 1u);
  // One process_name metadata record per labelled lane.
  EXPECT_NE(result.json.find("\"name\": \"publisher\""), std::string::npos);
  EXPECT_NE(result.json.find("\"name\": \"server\""), std::string::npos);
}

TEST(TraceMerge, OffsetRebasesTimestamps) {
  TraceMerge merge;
  merge.add(one_event("a", 100.0), 0);
  merge.add(one_event("b", 100.0), 2'000'000);   // +2 ms = +2000 us
  merge.add(one_event("c", 100.0), -50'000);     // -50 us
  const TraceMerge::Result result = merge.merge();

  EXPECT_NE(event_containing(result.json, "\"a\"").find("\"ts\": 100.000"),
            std::string::npos);
  EXPECT_NE(event_containing(result.json, "\"b\"").find("\"ts\": 2100.000"),
            std::string::npos);
  EXPECT_NE(event_containing(result.json, "\"c\"").find("\"ts\": 50.000"),
            std::string::npos);
}

TEST(TraceMerge, EachInputGetsItsOwnPidLane) {
  TraceMerge merge;
  merge.add(one_event("a", 1.0), 0);
  merge.add(one_event("b", 1.0), 0);
  merge.add(one_event("c", 1.0), 0);
  const TraceMerge::Result result = merge.merge();

  // Every input dump arrived claiming pid 1; the merge must relane them.
  EXPECT_NE(event_containing(result.json, "\"a\"").find("\"pid\": 1"),
            std::string::npos);
  EXPECT_NE(event_containing(result.json, "\"b\"").find("\"pid\": 2"),
            std::string::npos);
  EXPECT_NE(event_containing(result.json, "\"c\"").find("\"pid\": 3"),
            std::string::npos);
}

TEST(TraceMerge, NonPidTsFieldsPassThroughVerbatim) {
  TraceMerge merge;
  merge.add(one_event("op", 10.0), 1'000'000);
  const std::string merged = merge.merge().json;
  const std::string event = event_containing(merged, "\"op\"");
  EXPECT_NE(event.find("\"cat\": \"t\""), std::string::npos);
  EXPECT_NE(event.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(event.find("\"dur\": 5.000"), std::string::npos);
  EXPECT_NE(event.find("\"args\": {\"arg\": 7}"), std::string::npos);
}

TEST(TraceMerge, MalformedInputContributesZeroEvents) {
  TraceMerge merge;
  merge.add("this is not a trace", 0, "broken");
  merge.add(one_event("ok", 1.0), 0, "fine");
  const TraceMerge::Result result = merge.merge();
  ASSERT_EQ(result.events_per_input.size(), 2u);
  EXPECT_EQ(result.events_per_input[0], 0u);
  EXPECT_EQ(result.events_per_input[1], 1u);
  EXPECT_EQ(result.total_events, 1u);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(result.json)) << result.json;
}

TEST(TraceMerge, EmptyMergeIsStillValidJson) {
  const TraceMerge::Result result = TraceMerge{}.merge();
  EXPECT_EQ(result.total_events, 0u);
  EXPECT_TRUE(result.events_per_input.empty());
  EXPECT_TRUE(tsvpt::testing::is_valid_json(result.json)) << result.json;
}

TEST(TraceMerge, RoundTripReconcilesWithFlightRecorderDumps) {
  // Real to_chrome_trace output (the production input format), two
  // "processes" of different sizes: counts must reconcile exactly.
  std::vector<TraceEvent> pub_events;
  for (std::uint64_t i = 0; i < 5; ++i) {
    pub_events.push_back(
        TraceEvent{"pub", "send", 1000 + i * 100, 40, i, 0, 'X'});
  }
  std::vector<TraceEvent> srv_events;
  for (std::uint64_t i = 0; i < 3; ++i) {
    srv_events.push_back(
        TraceEvent{"ingest", "batch_rx", 2000 + i * 100, 0, i, 1, 'i'});
  }

  TraceMerge merge;
  merge.add(to_chrome_trace(pub_events), 0, "publisher");
  merge.add(to_chrome_trace(srv_events), 3'000, "server");
  const TraceMerge::Result result = merge.merge();

  ASSERT_EQ(result.events_per_input.size(), 2u);
  EXPECT_EQ(result.events_per_input[0], pub_events.size());
  EXPECT_EQ(result.events_per_input[1], srv_events.size());
  EXPECT_EQ(result.total_events, pub_events.size() + srv_events.size());
  EXPECT_TRUE(tsvpt::testing::is_valid_json(result.json)) << result.json;
}

}  // namespace
}  // namespace tsvpt::obs
