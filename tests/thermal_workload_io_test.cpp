#include "thermal/workload_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "ptsim/rng.hpp"

namespace tsvpt::thermal {
namespace {

TEST(WorkloadIo, ParsesMixedTrace) {
  const Workload workload = parse_workload_string(
      "# burst/idle trace\n"
      "phase 0.010 burst\n"
      "uniform 0 2.0\n"
      "hotspot 0 3.0 1.2e-3 3.4e-3 5e-4\n"
      "\n"
      "phase 0.020 idle\n"
      "uniform 0 0.5\n");
  ASSERT_EQ(workload.phases().size(), 2u);
  EXPECT_EQ(workload.phases()[0].name, "burst");
  EXPECT_DOUBLE_EQ(workload.phases()[0].duration.value(), 0.010);
  ASSERT_EQ(workload.phases()[0].directives.size(), 2u);
  const PowerDirective& hotspot = workload.phases()[0].directives[1];
  EXPECT_EQ(hotspot.kind, PowerDirective::Kind::kHotspot);
  EXPECT_DOUBLE_EQ(hotspot.total.value(), 3.0);
  EXPECT_DOUBLE_EQ(hotspot.center.x, 1.2e-3);
  EXPECT_DOUBLE_EQ(hotspot.radius.value(), 5e-4);
  EXPECT_DOUBLE_EQ(workload.total_duration().value(), 0.030);
}

TEST(WorkloadIo, RoundTripsRandomWorkloads) {
  const StackConfig cfg = StackConfig::four_die_stack();
  Rng rng{55};
  const Workload original =
      Workload::random(cfg, rng, 5, Watt{4.0}, Second{2e-3});
  const Workload reparsed =
      parse_workload_string(to_trace_string(original));
  ASSERT_EQ(reparsed.phases().size(), original.phases().size());
  for (std::size_t p = 0; p < original.phases().size(); ++p) {
    const WorkloadPhase& a = original.phases()[p];
    const WorkloadPhase& b = reparsed.phases()[p];
    EXPECT_DOUBLE_EQ(a.duration.value(), b.duration.value());
    ASSERT_EQ(a.directives.size(), b.directives.size());
    for (std::size_t d = 0; d < a.directives.size(); ++d) {
      EXPECT_EQ(a.directives[d].kind, b.directives[d].kind);
      EXPECT_EQ(a.directives[d].die, b.directives[d].die);
      EXPECT_DOUBLE_EQ(a.directives[d].total.value(),
                       b.directives[d].total.value());
    }
  }
}

TEST(WorkloadIo, ErrorsCarryLineNumbers) {
  try {
    (void)parse_workload_string("phase 0.01\nuniform 0 1.0\nbogus 1 2\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(WorkloadIo, RejectsMalformedRecords) {
  EXPECT_THROW((void)parse_workload_string("uniform 0 1.0\n"),
               std::runtime_error);  // directive before phase
  EXPECT_THROW((void)parse_workload_string("phase 0\n"), std::runtime_error);
  EXPECT_THROW((void)parse_workload_string("phase 0.01\nuniform 0 -1\n"),
               std::runtime_error);
  EXPECT_THROW((void)parse_workload_string("phase 0.01\nuniform 0\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_workload_string("phase 0.01\nuniform 0 1.0 extra\n"),
      std::runtime_error);
  EXPECT_THROW(
      (void)parse_workload_string("phase 0.01\nhotspot 0 1 0 0 0\n"),
      std::runtime_error);  // zero radius
  EXPECT_THROW((void)parse_workload_string("# only comments\n"),
               std::runtime_error);
}

TEST(WorkloadIo, FileRoundTrip) {
  const std::string path = "/tmp/tsvpt_workload_test.trace";
  const Workload original = parse_workload_string(
      "phase 0.005 a\nuniform 1 1.5\nphase 0.007 b\nuniform 2 0.25\n");
  save_workload(original, path);
  const Workload loaded = load_workload(path);
  EXPECT_DOUBLE_EQ(loaded.total_duration().value(), 0.012);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_workload("/nonexistent/trace"),
               std::runtime_error);
}

TEST(WorkloadIo, ParsedTraceDrivesTheNetwork) {
  const Workload workload = parse_workload_string(
      "phase 0.01\nuniform 0 2.0\nphase 0.01\nuniform 1 1.0\n");
  ThermalNetwork net{StackConfig::four_die_stack()};
  workload.apply(net, Second{0.0});
  EXPECT_NEAR(net.total_power().value(), 2.0, 1e-12);
  workload.apply(net, Second{0.015});
  EXPECT_NEAR(net.total_power().value(), 1.0, 1e-12);
}

}  // namespace
}  // namespace tsvpt::thermal
