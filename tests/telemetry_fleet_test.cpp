#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt::telemetry {
namespace {

FleetSampler::Config small_fleet() {
  FleetSampler::Config cfg;
  cfg.stack_count = 3;
  cfg.thread_count = 2;
  cfg.scans_per_stack = 5;
  cfg.grid_columns = 1;
  cfg.grid_rows = 1;
  cfg.ring_capacity = 64;
  cfg.seed = 11;
  return cfg;
}

TEST(FleetPipeline, EndToEndCountsAndStats) {
  FleetSampler sampler{small_fleet()};
  Aggregator aggregator{Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  const auto& sum = aggregator.summary();
  EXPECT_EQ(sampler.total_frames(), 15u);
  EXPECT_EQ(sampler.total_dropped(), 0u);  // ring far larger than the run
  EXPECT_EQ(sum.frames, 15u);
  EXPECT_EQ(sum.decode_errors, 0u);
  ASSERT_EQ(sum.stacks.size(), 3u);
  for (const auto& [stack_id, stats] : sum.stacks) {
    EXPECT_EQ(stats.frames, 5u) << "stack " << stack_id;
    EXPECT_EQ(stats.missed, 0u);
    ASSERT_EQ(stats.dies.size(), 4u);  // 1x1 grid on each of 4 dies
    for (const auto& [die, die_stats] : stats.dies) {
      EXPECT_EQ(die_stats.sensed_c.count(), 5u);
      // Sensible temperatures and paper-grade tracking accuracy.
      EXPECT_GT(die_stats.sensed_c.mean(), 15.0);
      EXPECT_LT(die_stats.sensed_c.mean(), 100.0);
      EXPECT_LT(std::abs(die_stats.error_c.mean()), 2.0) << "die " << die;
    }
  }
  EXPECT_EQ(sum.latency.count(), 15u);
  EXPECT_GT(sum.latency.quantile(0.5), 0.0);
}

TEST(FleetPipeline, FrameContentIndependentOfThreadCount) {
  // Stacks evolve from per-stack seeds, so threading must change only the
  // interleaving, never the telemetry itself.
  auto run_with = [](std::size_t threads) {
    FleetSampler::Config cfg = small_fleet();
    cfg.thread_count = threads;
    FleetSampler sampler{cfg};
    Aggregator aggregator{Aggregator::Config{}};
    aggregator.start(sampler.rings());
    sampler.run();
    aggregator.stop();
    return aggregator.summary();  // copy survives the aggregator
  };

  const Aggregator::Summary a = run_with(1);
  const Aggregator::Summary b = run_with(3);
  ASSERT_EQ(a.stacks.size(), b.stacks.size());
  for (const auto& [stack_id, stats_a] : a.stacks) {
    const auto& stats_b = b.stacks.at(stack_id);
    ASSERT_EQ(stats_a.dies.size(), stats_b.dies.size());
    for (const auto& [die, die_a] : stats_a.dies) {
      const auto& die_b = stats_b.dies.at(die);
      // Per-stack folds see that stack's frames in sequence order on both
      // runs, so the statistics match bit-for-bit.
      EXPECT_EQ(die_a.sensed_c.mean(), die_b.sensed_c.mean());
      EXPECT_EQ(die_a.sensed_c.max(), die_b.sensed_c.max());
      EXPECT_EQ(die_a.error_c.mean(), die_b.error_c.mean());
    }
  }
}

TEST(FleetPipeline, DropOldestAccountingUnderBackpressure) {
  // No collector while sampling: the tiny rings must evict, and every
  // produced frame must be accounted as received or dropped afterwards.
  FleetSampler::Config cfg = small_fleet();
  cfg.scans_per_stack = 20;
  cfg.ring_capacity = 2;
  FleetSampler sampler{cfg};
  sampler.run();

  EXPECT_GT(sampler.total_dropped(), 0u);

  Aggregator aggregator{Aggregator::Config{}};
  aggregator.start(sampler.rings());
  aggregator.stop();  // drains what is left, then joins

  const auto& sum = aggregator.summary();
  EXPECT_EQ(sum.frames + sampler.total_dropped(), sampler.total_frames());
  // The collector sees the per-stack sequence gaps the drops created.
  std::uint64_t missed = 0;
  for (const auto& [stack_id, stats] : sum.stacks) missed += stats.missed;
  EXPECT_EQ(missed, sampler.total_dropped());
}

TEST(FleetPipeline, AlertCallbackMatchesSummary) {
  Aggregator::Config alert_cfg;
  alert_cfg.alert_threshold = Celsius{1.0};  // everything alerts once

  std::atomic<std::uint64_t> delivered{0};
  FleetSampler sampler{small_fleet()};
  Aggregator aggregator{alert_cfg, [&](const Alert& alert) {
                          EXPECT_LT(alert.stack_id, 3u);
                          delivered.fetch_add(1, std::memory_order_relaxed);
                        }};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  const auto& sum = aggregator.summary();
  EXPECT_GT(sum.alerts, 0u);
  EXPECT_EQ(delivered.load(std::memory_order_relaxed), sum.alerts);
  // Edge-triggered: one over-temperature alert per site, not per frame.
  EXPECT_EQ(sum.alerts_by_kind.at(AlertKind::kOverTemperature),
            3u * 4u);  // 3 stacks x 4 sites all sit above 1 C
}

// ---- Synthetic-frame aggregation logic (no sampler, fully deterministic).

Frame synthetic_frame(std::uint32_t stack, std::uint64_t seq, double t_s,
                      const std::vector<double>& sensed_c,
                      const std::vector<bool>& degraded = {}) {
  Frame frame;
  frame.stack_id = stack;
  frame.sequence = seq;
  frame.sim_time = Second{t_s};
  for (std::size_t i = 0; i < sensed_c.size(); ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = 0;
    // A 3x3 grid so the spatial cross-check has neighbours to lean on.
    r.location = {1e-3 * static_cast<double>(i % 3),
                  1e-3 * static_cast<double>(i / 3)};
    r.sensed = Celsius{sensed_c[i]};
    r.truth = Celsius{sensed_c[i]};
    r.degraded = i < degraded.size() && degraded[i];
    frame.readings.push_back(r);
  }
  return frame;
}

TEST(FleetAggregation, OverTemperatureIsEdgeTriggered) {
  Aggregator::Config cfg;
  cfg.alert_threshold = Celsius{80.0};
  cfg.spatial_check = false;
  Aggregator agg{cfg};

  agg.ingest(encode(synthetic_frame(0, 0, 0.001, {90.0})));  // crossing: fire
  agg.ingest(encode(synthetic_frame(0, 1, 0.002, {91.0})));  // still high
  agg.ingest(encode(synthetic_frame(0, 2, 0.003, {30.0})));  // re-arm
  agg.ingest(encode(synthetic_frame(0, 3, 0.004, {92.0})));  // fire again
  EXPECT_EQ(agg.summary().alerts_by_kind.at(AlertKind::kOverTemperature), 2u);
}

TEST(FleetAggregation, RunawayRateDetected) {
  Aggregator::Config cfg;
  cfg.runaway_rate = 400.0;  // degC/s
  cfg.spatial_check = false;
  Aggregator agg{cfg};

  agg.ingest(encode(synthetic_frame(0, 0, 0.010, {30.0})));
  agg.ingest(encode(synthetic_frame(0, 1, 0.020, {33.0})));  // 300 C/s: ok
  agg.ingest(encode(synthetic_frame(0, 2, 0.030, {40.0})));  // 700 C/s: fire
  const auto& sum = agg.summary();
  ASSERT_EQ(sum.alerts_by_kind.count(AlertKind::kThermalRunaway), 1u);
  EXPECT_EQ(sum.alerts_by_kind.at(AlertKind::kThermalRunaway), 1u);
}

TEST(FleetAggregation, DeadSensorNeedsConsecutiveDegradedScans) {
  Aggregator::Config cfg;
  cfg.dead_scan_limit = 3;
  cfg.spatial_check = false;
  Aggregator agg{cfg};

  agg.ingest(encode(synthetic_frame(0, 0, 0.001, {30.0}, {true})));
  agg.ingest(encode(synthetic_frame(0, 1, 0.002, {30.0}, {false})));  // reset
  agg.ingest(encode(synthetic_frame(0, 2, 0.003, {30.0}, {true})));
  agg.ingest(encode(synthetic_frame(0, 3, 0.004, {30.0}, {true})));
  EXPECT_EQ(agg.summary().alerts_by_kind.count(AlertKind::kDeadSensor), 0u);
  agg.ingest(encode(synthetic_frame(0, 4, 0.005, {30.0}, {true})));  // third
  EXPECT_EQ(agg.summary().alerts_by_kind.at(AlertKind::kDeadSensor), 1u);
}

TEST(FleetAggregation, SpatialOutlierFlagged) {
  Aggregator agg{Aggregator::Config{}};
  // A 3x3 die at 30 C with one sensor reading 55 C: spatially impossible,
  // exactly what core::FaultDetector exists to catch.
  std::vector<double> sensed(9, 30.0);
  sensed[4] = 55.0;
  agg.ingest(encode(synthetic_frame(0, 0, 0.001, sensed)));
  const auto& sum = agg.summary();
  ASSERT_EQ(sum.alerts_by_kind.count(AlertKind::kSpatialSuspect), 1u);
  EXPECT_GE(sum.alerts_by_kind.at(AlertKind::kSpatialSuspect), 1u);
}

TEST(FleetAggregation, SequenceGapsCountAsMissed) {
  Aggregator agg{Aggregator::Config{}};
  agg.ingest(encode(synthetic_frame(7, 0, 0.001, {30.0})));
  agg.ingest(encode(synthetic_frame(7, 3, 0.002, {30.0})));  // lost 1, 2
  agg.ingest(encode(synthetic_frame(7, 4, 0.003, {30.0})));
  EXPECT_EQ(agg.summary().stacks.at(7).missed, 2u);
  EXPECT_EQ(agg.summary().stacks.at(7).frames, 3u);
}

TEST(FleetAggregation, GarbageCountsAsDecodeError) {
  Aggregator agg{Aggregator::Config{}};
  agg.ingest(std::vector<std::uint8_t>{1, 2, 3});
  std::vector<std::uint8_t> corrupt = encode(synthetic_frame(0, 0, 0.0, {30.0}));
  corrupt[corrupt.size() / 2] ^= 0xFF;
  agg.ingest(corrupt);
  EXPECT_EQ(agg.summary().decode_errors, 2u);
  EXPECT_EQ(agg.summary().frames, 0u);
}

}  // namespace
}  // namespace tsvpt::telemetry
