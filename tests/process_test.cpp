#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "process/montecarlo.hpp"
#include "process/spatial_field.hpp"
#include "process/tsv_stress.hpp"
#include "process/variation.hpp"
#include "ptsim/stats.hpp"

namespace tsvpt::process {
namespace {

const device::Technology kTech = device::Technology::tsmc65_like();

std::vector<Point> line_points(std::size_t n, double spacing) {
  std::vector<Point> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({static_cast<double>(i) * spacing, 0.0});
  }
  return points;
}

TEST(SpatialField, MarginalSigmaMatches) {
  const SpatialField field{line_points(5, 1e-3), 8e-3, 1e-3};
  Rng rng{100};
  RunningStats stats;
  for (int trial = 0; trial < 5000; ++trial) {
    for (double v : field.sample(rng)) stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 3e-4);
  EXPECT_NEAR(stats.stddev(), 8e-3, 3e-4);
}

TEST(SpatialField, NearbyPointsCorrelated) {
  // Two points 0.1 correlation-lengths apart vs two points 5 apart.
  const std::vector<Point> points{{0.0, 0.0}, {1e-4, 0.0}, {5e-3, 0.0}};
  const SpatialField field{points, 10e-3, 1e-3};
  Rng rng{200};
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int trial = 0; trial < 4000; ++trial) {
    const auto sample = field.sample(rng);
    a.push_back(sample[0]);
    b.push_back(sample[1]);
    c.push_back(sample[2]);
  }
  EXPECT_GT(correlation(a, b), 0.85);  // exp(-0.1) ~ 0.90
  EXPECT_LT(correlation(a, c), 0.05);  // exp(-5) ~ 0.007
}

TEST(SpatialField, ModelCorrelationDecay) {
  const SpatialField field{line_points(3, 1e-3), 5e-3, 1e-3};
  EXPECT_NEAR(field.correlation_between(0, 1), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(field.correlation_between(0, 2), std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(field.correlation_between(1, 1), 1.0);
}

TEST(SpatialField, ZeroSigmaYieldsZeros) {
  const SpatialField field{line_points(4, 1e-3), 0.0, 1e-3};
  Rng rng{1};
  for (double v : field.sample(rng)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SpatialField, CoincidentPointsHandled) {
  // Degenerate covariance: jitter must keep the factorization alive and the
  // two coincident points nearly identical in every draw.
  const std::vector<Point> points{{0.0, 0.0}, {0.0, 0.0}};
  const SpatialField field{points, 5e-3, 1e-3};
  Rng rng{2};
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = field.sample(rng);
    EXPECT_NEAR(sample[0], sample[1], 0.2 * 5e-3);
  }
}

TEST(SpatialField, RejectsBadArguments) {
  EXPECT_THROW((SpatialField{{}, 1e-3, 1e-3}), std::invalid_argument);
  EXPECT_THROW((SpatialField{line_points(2, 1e-3), -1.0, 1e-3}),
               std::invalid_argument);
  EXPECT_THROW((SpatialField{line_points(2, 1e-3), 1e-3, 0.0}),
               std::invalid_argument);
}

TEST(TsvStress, DecaysWithDistance) {
  const TsvStressField field{{Point{0.0, 0.0}}, TsvStressParams{}};
  const device::VtDelta near = field.shift_at({3e-6, 0.0});
  const device::VtDelta far = field.shift_at({20e-6, 0.0});
  EXPECT_GT(near.nmos.value(), far.nmos.value());
  EXPECT_GT(std::abs(near.pmos.value()), std::abs(far.pmos.value()));
}

TEST(TsvStress, OppositeSignsForNmosPmos) {
  const TsvStressField field{{Point{0.0, 0.0}}, TsvStressParams{}};
  const device::VtDelta shift = field.shift_at({5e-6, 0.0});
  EXPECT_GT(shift.nmos.value(), 0.0);
  EXPECT_LT(shift.pmos.value(), 0.0);
}

TEST(TsvStress, ClampedAtViaEdge) {
  const TsvStressParams params;
  const TsvStressField field{{Point{0.0, 0.0}}, params};
  const device::VtDelta at_center = field.shift_at({0.0, 0.0});
  EXPECT_NEAR(at_center.nmos.value(), params.nmos_edge_shift.value(), 1e-12);
}

TEST(TsvStress, CutoffTruncates) {
  const TsvStressField field{{Point{0.0, 0.0}}, TsvStressParams{}};
  const device::VtDelta beyond = field.shift_at({30e-6, 0.0});
  EXPECT_DOUBLE_EQ(beyond.nmos.value(), 0.0);
  EXPECT_DOUBLE_EQ(beyond.pmos.value(), 0.0);
}

TEST(TsvStress, MultipleViasAccumulate) {
  const std::vector<Point> one{Point{0.0, 0.0}};
  const std::vector<Point> two{Point{-4e-6, 0.0}, Point{4e-6, 0.0}};
  const TsvStressField f1{one, TsvStressParams{}};
  const TsvStressField f2{two, TsvStressParams{}};
  EXPECT_GT(f2.shift_at({0.0, 0.0}).nmos.value(),
            f1.shift_at({6e-6, 0.0}).nmos.value());
}

TEST(TsvStress, ThinningFactorScales) {
  const TsvStressField thick{{Point{0.0, 0.0}}, TsvStressParams{}, 1.0};
  const TsvStressField thin{{Point{0.0, 0.0}}, TsvStressParams{}, 2.0};
  EXPECT_NEAR(thin.shift_at({5e-6, 0.0}).nmos.value(),
              2.0 * thick.shift_at({5e-6, 0.0}).nmos.value(), 1e-15);
}

TEST(TsvStress, GridLayoutCountAndBounds) {
  const auto grid = TsvStressField::grid_layout(Meter{5e-3}, Meter{5e-3}, 4, 3);
  EXPECT_EQ(grid.size(), 12u);
  for (const Point& p : grid) {
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 5e-3);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, 5e-3);
  }
  EXPECT_THROW((void)TsvStressField::grid_layout(Meter{1e-3}, Meter{1e-3}, 0,
                                                 1),
               std::invalid_argument);
}

TEST(VariationModel, D2dSigmaMatchesCard) {
  const VariationModel model{kTech, line_points(1, 1e-3)};
  Rng rng{300};
  RunningStats n_stats;
  RunningStats p_stats;
  for (int trial = 0; trial < 20000; ++trial) {
    const DieVariation die = model.sample_die(rng);
    n_stats.add(die.d2d.nmos.value());
    p_stats.add(die.d2d.pmos.value());
  }
  EXPECT_NEAR(n_stats.stddev(), kTech.sigma_vt_d2d.value(), 5e-4);
  EXPECT_NEAR(p_stats.stddev(), kTech.sigma_vt_d2d.value(), 5e-4);
}

TEST(VariationModel, TotalsComposeComponents) {
  VariationModel model{kTech, line_points(3, 1e-3)};
  model.set_tsv_stress(
      TsvStressField{{Point{0.0, 0.0}}, TsvStressParams{}});
  Rng rng{301};
  const DieVariation die = model.sample_die(rng);
  ASSERT_EQ(die.point_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const device::VtDelta total = die.at(i);
    EXPECT_NEAR(total.nmos.value(),
                die.d2d.nmos.value() + die.wid[i].nmos.value() +
                    die.stress[i].nmos.value(),
                1e-15);
  }
}

TEST(VariationModel, CornerDieHasNoRandomness) {
  const VariationModel model{kTech, line_points(2, 1e-3)};
  const DieVariation ss = model.corner_die(device::Corner::kSS);
  EXPECT_GT(ss.d2d.nmos.value(), 0.0);
  for (const auto& wid : ss.wid) {
    EXPECT_DOUBLE_EQ(wid.nmos.value(), 0.0);
    EXPECT_DOUBLE_EQ(wid.pmos.value(), 0.0);
  }
}

TEST(VariationModel, ScalingKnobs) {
  VariationModel model{kTech, line_points(1, 1e-3)};
  model.scale_d2d_sigma(0.0);
  Rng rng{302};
  const DieVariation die = model.sample_die(rng);
  EXPECT_DOUBLE_EQ(die.d2d.nmos.value(), 0.0);
  EXPECT_THROW(model.scale_wid_sigma(-1.0), std::invalid_argument);
}

TEST(MonteCarlo, TrialsAreReproducibleAndOrderFree) {
  const MonteCarlo mc{777, 10};
  std::vector<double> first(10);
  mc.run([&](std::size_t trial, Rng& rng) { first[trial] = rng.uniform(); });
  // Re-running gives identical draws.
  std::vector<double> second(10);
  mc.run([&](std::size_t trial, Rng& rng) { second[trial] = rng.uniform(); });
  EXPECT_EQ(first, second);
  // A standalone per-trial RNG matches too (order independence).
  Rng solo = mc.rng_for_trial(7);
  EXPECT_DOUBLE_EQ(solo.uniform(), first[7]);
}

TEST(MonteCarlo, DistinctTrialsDecorrelated) {
  const MonteCarlo mc{778, 2};
  Rng a = mc.rng_for_trial(0);
  Rng b = mc.rng_for_trial(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace tsvpt::process
