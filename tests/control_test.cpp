#include "control/policies.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "control/controller.hpp"
#include "control/ladder.hpp"
#include "control/policy.hpp"
#include "core/health_supervisor.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::control {
namespace {

// ---------------------------------------------------------------- ladder --

TEST(ControlLadder, ValidateRejectsBadLadders) {
  EXPECT_THROW(validate_ladder({}), std::invalid_argument);
  Ladder flat = typical_ladder();
  flat[2].relative_frequency = flat[1].relative_frequency;  // not descending
  EXPECT_THROW(validate_ladder(flat), std::invalid_argument);
  Ladder rising = typical_ladder();
  rising[3].relative_frequency = 2.0;
  EXPECT_THROW(validate_ladder(rising), std::invalid_argument);
  EXPECT_NO_THROW(validate_ladder(typical_ladder()));
}

TEST(ControlLadder, StepperHoldsAtExactThresholds) {
  const LadderStepper stepper{Celsius{85.0}, Celsius{75.0}};
  const std::size_t n = 4;
  // Strictly above the ceiling steps down; exactly at it holds.
  EXPECT_EQ(stepper.step(1, n, Celsius{85.1}), 2u);
  EXPECT_EQ(stepper.step(1, n, Celsius{85.0}), 1u);
  // Strictly below the floor steps up; exactly at it holds.
  EXPECT_EQ(stepper.step(1, n, Celsius{74.9}), 0u);
  EXPECT_EQ(stepper.step(1, n, Celsius{75.0}), 1u);
  // The dead band holds.
  EXPECT_EQ(stepper.step(2, n, Celsius{80.0}), 2u);
  // Clamped at both ends.
  EXPECT_EQ(stepper.step(n - 1, n, Celsius{200.0}), n - 1);
  EXPECT_EQ(stepper.step(0, n, Celsius{-40.0}), 0u);
  // An out-of-range level is clamped before stepping.
  EXPECT_EQ(stepper.step(99, n, Celsius{80.0}), n - 1);
}

TEST(ControlLadder, HysteresisEngagesReleasesWithoutFlapping) {
  EXPECT_THROW((Hysteresis{Celsius{80.0}, Celsius{80.0}}),
               std::invalid_argument);
  EXPECT_THROW((Hysteresis{Celsius{70.0}, Celsius{80.0}}),
               std::invalid_argument);

  Hysteresis trip{Celsius{85.0}, Celsius{75.0}};
  EXPECT_FALSE(trip.update(Celsius{85.0}));  // exactly at the trip: no engage
  EXPECT_TRUE(trip.update(Celsius{85.1}));
  // Crossing back into the dead band, even to the exact release value,
  // holds engaged; only a strict drop below releases.
  EXPECT_TRUE(trip.update(Celsius{80.0}));
  EXPECT_TRUE(trip.update(Celsius{75.0}));
  EXPECT_FALSE(trip.update(Celsius{74.9}));
  // And at the boundary again it stays released.
  EXPECT_FALSE(trip.update(Celsius{75.0}));
  trip.update(Celsius{90.0});
  EXPECT_TRUE(trip.engaged());
  trip.reset();
  EXPECT_FALSE(trip.engaged());
}

// ----------------------------------------------------------- observation --

core::StackMonitor::SiteReading reading(std::size_t die, double sensed_c,
                                        std::uint8_t health = 0,
                                        bool degraded = false) {
  core::StackMonitor::SiteReading r;
  r.die = die;
  r.sensed = Celsius{sensed_c};
  r.truth = Celsius{sensed_c};
  r.health = health;
  r.degraded = degraded;
  return r;
}

constexpr auto kQuarantined =
    static_cast<std::uint8_t>(core::HealthState::kQuarantined);
constexpr auto kDead = static_cast<std::uint8_t>(core::HealthState::kDead);

TEST(ControlObserve, OnlyCredibleReadingsFeedThePolicy) {
  const std::vector<core::StackMonitor::SiteReading> readings{
      reading(0, 50.0),
      reading(0, 60.0),
      reading(0, 99.0, kQuarantined),      // pulled from duty: excluded
      reading(0, 98.0, kDead),             // dead sensor: excluded
      reading(0, 97.0, 0, true),           // degraded placeholder: excluded
      reading(1, 40.0, kQuarantined),
      reading(1, 41.0, kDead),
      reading(2, 55.0),
      reading(7, 500.0),                   // foreign die: never actuate on it
  };
  const StackObservation obs = observe_scan(3, Second{0.25}, readings, 3);
  EXPECT_EQ(obs.scan, 3u);
  ASSERT_EQ(obs.dies.size(), 3u);

  EXPECT_EQ(obs.dies[0].credible_sites, 2u);
  EXPECT_EQ(obs.dies[0].total_sites, 5u);
  EXPECT_FALSE(obs.dies[0].blind());
  EXPECT_DOUBLE_EQ(obs.dies[0].max_sensed.value(), 60.0);
  EXPECT_DOUBLE_EQ(obs.dies[0].mean_sensed.value(), 55.0);

  // Every reading on die 1 is non-credible: the die arrives blind.
  EXPECT_EQ(obs.dies[1].total_sites, 2u);
  EXPECT_TRUE(obs.dies[1].blind());

  EXPECT_EQ(obs.dies[2].credible_sites, 1u);
  EXPECT_DOUBLE_EQ(obs.dies[2].max_sensed.value(), 55.0);
}

StackObservation obs_at(std::vector<double> die_temps) {
  StackObservation obs;
  obs.dies.resize(die_temps.size());
  for (std::size_t d = 0; d < die_temps.size(); ++d) {
    obs.dies[d].die = d;
    obs.dies[d].credible_sites = 1;
    obs.dies[d].total_sites = 1;
    obs.dies[d].max_sensed = Celsius{die_temps[d]};
    obs.dies[d].mean_sensed = Celsius{die_temps[d]};
  }
  return obs;
}

StackObservation blind_die(StackObservation obs, std::size_t die) {
  obs.dies[die].credible_sites = 0;
  return obs;
}

// -------------------------------------------------------------- policies --

PolicyConfig tight_config() {
  PolicyConfig cfg;
  cfg.ceiling = Celsius{60.0};
  cfg.floor = Celsius{50.0};
  cfg.gate_on = Celsius{60.0};
  cfg.gate_off = Celsius{50.0};
  cfg.migrate_trip = Celsius{55.0};
  cfg.migrate_margin_c = 2.0;
  cfg.migrate_step = 0.1;
  cfg.migrate_cap = 0.3;
  cfg.migrate_cooldown_scans = 0;  // every decision may move
  return cfg;
}

TEST(ControlPolicy, ParseAndPrintRoundTrip) {
  for (const PolicyKind kind :
       {PolicyKind::kStaticWorstCase, PolicyKind::kDvfsLadder,
        PolicyKind::kReactiveGating, PolicyKind::kMigration}) {
    PolicyKind parsed{};
    ASSERT_TRUE(parse_policy_kind(to_string(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind parsed{};
  EXPECT_FALSE(parse_policy_kind("turbo", &parsed));
}

TEST(ControlPolicy, MakePolicyValidatesConfig) {
  PolicyConfig cfg = tight_config();
  cfg.floor = cfg.ceiling;
  EXPECT_THROW(make_policy(PolicyKind::kDvfsLadder, cfg, 4),
               std::invalid_argument);
  cfg = tight_config();
  cfg.gate_power_scale = 1.5;
  EXPECT_THROW(make_policy(PolicyKind::kReactiveGating, cfg, 4),
               std::invalid_argument);
  cfg = tight_config();
  cfg.migrate_cap = 0.05;  // below one step
  EXPECT_THROW(make_policy(PolicyKind::kMigration, cfg, 4),
               std::invalid_argument);
  EXPECT_THROW(make_policy(PolicyKind::kDvfsLadder, tight_config(), 0),
               std::invalid_argument);
}

TEST(ControlPolicy, StaticIgnoresSensing) {
  PolicyConfig cfg = tight_config();
  cfg.static_level = kLadderBottom;
  const auto policy = make_policy(PolicyKind::kStaticWorstCase, cfg, 4);
  const std::size_t bottom = cfg.ladder.size() - 1;
  const Actuation cool = policy->decide(obs_at({20, 20, 20, 20}));
  const Actuation hot = policy->decide(obs_at({200, 200, 200, 200}));
  ASSERT_EQ(cool.dies.size(), 4u);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(cool.dies[d].level, bottom);
    EXPECT_TRUE(cool.dies[d] == hot.dies[d]);
  }
}

TEST(ControlPolicy, DvfsWalksPerDieAndParksBlindDiesAtBottom) {
  const PolicyConfig cfg = tight_config();
  const auto policy = make_policy(PolicyKind::kDvfsLadder, cfg, 2);
  const std::size_t bottom = cfg.ladder.size() - 1;

  // Starts worst-case-safe; cool readings walk up one rung per decision.
  EXPECT_EQ(policy->safe_actuation().dies[0].level, bottom);
  Actuation act = policy->decide(obs_at({20, 70}));
  EXPECT_EQ(act.dies[0].level, bottom - 1);  // cooling: one rung up
  EXPECT_EQ(act.dies[1].level, bottom);      // still hot: stays at the bottom
  act = policy->decide(obs_at({20, 70}));
  act = policy->decide(obs_at({20, 70}));
  EXPECT_EQ(act.dies[0].level, 0u);  // reached nominal
  EXPECT_EQ(act.dies[1].level, bottom);

  // The die going blind is forced straight to the bottom rung.
  act = policy->decide(blind_die(obs_at({20, 20}), 0));
  EXPECT_EQ(act.dies[0].level, bottom);
  EXPECT_EQ(act.dies[1].level, bottom - 1);
}

TEST(ControlPolicy, GatingTripsAndReleasesPerDie) {
  const PolicyConfig cfg = tight_config();
  const auto policy = make_policy(PolicyKind::kReactiveGating, cfg, 2);

  Actuation act = policy->decide(obs_at({70, 40}));
  EXPECT_TRUE(act.dies[0].gated);
  EXPECT_DOUBLE_EQ(act.dies[0].relative_frequency, 0.0);  // no work while gated
  EXPECT_DOUBLE_EQ(act.dies[0].power_scale, cfg.gate_power_scale);
  EXPECT_FALSE(act.dies[1].gated);
  EXPECT_EQ(act.dies[1].level, 0u);  // ungated dies run nominal

  // Inside the dead band the trip holds; below the release it lets go.
  act = policy->decide(obs_at({55, 40}));
  EXPECT_TRUE(act.dies[0].gated);
  act = policy->decide(obs_at({45, 40}));
  EXPECT_FALSE(act.dies[0].gated);

  // A blind die fails safe: gated.
  act = policy->decide(blind_die(obs_at({45, 40}), 1));
  EXPECT_TRUE(act.dies[1].gated);
}

TEST(ControlPolicy, MigrationNeverPingPongsBetweenEquallyHotDies) {
  const PolicyConfig cfg = tight_config();
  const auto policy = make_policy(PolicyKind::kMigration, cfg, 4);
  // Two dies equally hot above the trip, two cool: work must flow from the
  // lowest-index hot die only, and two equally-hot dies (gap <= margin)
  // must never trade work between themselves.
  for (int i = 0; i < 20; ++i) {
    const Actuation act = policy->decide(obs_at({70, 70, 30, 30}));
    for (const Migration& m : act.migrations) {
      EXPECT_EQ(m.from_die, 0u);  // tie breaks toward the lower index
      EXPECT_NE(m.to_die, 1u);    // never toward the equally hot peer
    }
  }
  // Equally hot everywhere: gap 0 <= margin, no move at all.
  const auto fresh = make_policy(PolicyKind::kMigration, cfg, 4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fresh->decide(obs_at({70, 70, 70, 70})).migrations.empty());
  }
}

TEST(ControlPolicy, MigrationGrowsToCapAndRetractsBeforeReversing) {
  const PolicyConfig cfg = tight_config();  // step 0.1, cap 0.3, cooldown 0
  const auto policy = make_policy(PolicyKind::kMigration, cfg, 2);

  // Die 0 hot: the 0->1 lane grows one step per decision up to the cap.
  Actuation act;
  for (int i = 0; i < 6; ++i) act = policy->decide(obs_at({70, 30}));
  ASSERT_EQ(act.migrations.size(), 1u);
  EXPECT_EQ(act.migrations[0].from_die, 0u);
  EXPECT_EQ(act.migrations[0].to_die, 1u);
  EXPECT_NEAR(act.migrations[0].fraction, cfg.migrate_cap, 1e-12);

  // Now the roles flip: the policy must retract the inflow into the newly
  // hot die before it ever opens a reverse lane.
  for (int i = 0; i < 2; ++i) {
    act = policy->decide(obs_at({30, 70}));
    for (const Migration& m : act.migrations) {
      EXPECT_EQ(m.from_die, 0u);
      EXPECT_LT(m.fraction, cfg.migrate_cap);
    }
  }
  // Fully retracted: the move list drains to empty, still no reverse lane.
  act = policy->decide(obs_at({30, 70}));
  EXPECT_TRUE(act.migrations.empty());
}

// ------------------------------------------------------------- actuation --

thermal::Workload one_hot_die(double watts) {
  thermal::WorkloadPhase phase;
  phase.name = "hot";
  phase.duration = Second{1.0};
  phase.directives.push_back({thermal::PowerDirective::Kind::kUniform, 0,
                              Watt{watts}, {}, Meter{0.0}});
  phase.directives.push_back({thermal::PowerDirective::Kind::kUniform, 1,
                              Watt{2.0}, {}, Meter{0.0}});
  return thermal::Workload{{phase}};
}

TEST(ControlApply, MigrationConservesTotalPower) {
  thermal::ThermalNetwork network{thermal::StackConfig::four_die_stack()};
  const thermal::Workload workload = one_hot_die(8.0);

  Actuation nominal;  // no commands, no moves: the raw map
  apply_actuation(workload, network, Second{0.0}, nominal);
  const double before = network.total_power().value();
  const double die0 = network.die_power(0).value();
  const double die1 = network.die_power(1).value();

  Actuation act;
  act.dies.assign(4, DieCommand{});  // all at nominal scale
  act.migrations.push_back({0, 1, 0.25});
  apply_actuation(workload, network, Second{0.0}, act);
  EXPECT_NEAR(network.total_power().value(), before, 1e-9);
  EXPECT_NEAR(network.die_power(0).value(), die0 * 0.75, 1e-9);
  EXPECT_NEAR(network.die_power(1).value(), die1 + die0 * 0.25, 1e-9);
}

TEST(ControlApply, UnscalableFractionFloorsEveryCommand) {
  thermal::ThermalNetwork network{thermal::StackConfig::four_die_stack()};
  const thermal::Workload workload = one_hot_die(8.0);
  PlantModel plant;
  plant.unscalable_fraction = 0.35;

  // Even a zero power-scale command cannot remove the unscalable floor.
  Actuation act;
  act.dies.assign(4, DieCommand{});
  act.dies[0].power_scale = 0.0;
  act.dies[1].power_scale = 0.25;  // P3
  apply_actuation(workload, network, Second{0.0}, act, plant);
  EXPECT_NEAR(network.die_power(0).value(), 8.0 * 0.35, 1e-9);
  EXPECT_NEAR(network.die_power(1).value(), 2.0 * (0.35 + 0.65 * 0.25), 1e-9);
}

TEST(ControlApply, RejectsBadMigrationsAndPlants) {
  thermal::ThermalNetwork network{thermal::StackConfig::four_die_stack()};
  const thermal::Workload workload = one_hot_die(8.0);
  Actuation act;
  act.migrations.push_back({0, 0, 0.1});  // self-migration
  EXPECT_THROW(apply_actuation(workload, network, Second{0.0}, act),
               std::invalid_argument);
  act.migrations[0] = {0, 9, 0.1};  // die out of range
  EXPECT_THROW(apply_actuation(workload, network, Second{0.0}, act),
               std::invalid_argument);
  act.migrations[0] = {0, 1, 1.5};  // fraction out of range
  EXPECT_THROW(apply_actuation(workload, network, Second{0.0}, act),
               std::invalid_argument);
  act.migrations.clear();
  PlantModel plant;
  plant.unscalable_fraction = -0.1;
  EXPECT_THROW(apply_actuation(workload, network, Second{0.0}, act, plant),
               std::invalid_argument);
}

// ------------------------------------------------- controller and plane --

TEST(ControlController, AccountsEnergyWorkAndViolations) {
  Controller::Config cfg;
  cfg.kind = PolicyKind::kDvfsLadder;
  cfg.policy = tight_config();
  cfg.violation_ceiling = Celsius{65.0};
  Controller controller{cfg, 2};

  // Holds the worst-case-safe actuation before the first scan.
  const std::size_t bottom = cfg.policy.ladder.size() - 1;
  ASSERT_EQ(controller.actuation().dies.size(), 2u);
  EXPECT_EQ(controller.actuation().dies[0].level, bottom);

  controller.on_observation(obs_at({20, 20}));
  EXPECT_EQ(controller.stats().decisions, 1u);
  EXPECT_EQ(controller.stats().actuations, 1u);  // both dies moved a rung
  EXPECT_EQ(controller.stats().level_changes, 2u);

  // One tick under the ceiling, one over it.
  const double rate = 2.0 * cfg.policy.ladder[bottom - 1].relative_frequency;
  controller.note_tick(Second{0.5}, Celsius{60.0}, Watt{4.0});
  controller.note_tick(Second{0.5}, Celsius{70.0}, Watt{4.0});
  EXPECT_NEAR(controller.stats().energy_j, 4.0, 1e-12);
  EXPECT_NEAR(controller.stats().work_done, rate, 1e-12);
  EXPECT_NEAR(controller.stats().violation_s, 0.5, 1e-12);
  EXPECT_NEAR(controller.stats().peak_true_c, 70.0, 1e-12);

  controller.on_observation(blind_die(obs_at({20, 20}), 1));
  EXPECT_EQ(controller.stats().blind_scans, 1u);

  controller.reset();
  EXPECT_EQ(controller.stats().decisions, 0u);
  EXPECT_EQ(controller.actuation().dies[0].level, bottom);
}

TEST(ControlPlane, TotalsSumStatsAndMaxThePeak) {
  ControlPlane::Config cfg;
  cfg.controller.kind = PolicyKind::kStaticWorstCase;
  cfg.controller.policy = tight_config();
  cfg.stack_count = 3;
  cfg.die_count = 4;
  ControlPlane plane{cfg};
  ASSERT_EQ(plane.stack_count(), 3u);

  plane.controller(0).note_tick(Second{1.0}, Celsius{40.0}, Watt{1.0});
  plane.controller(1).note_tick(Second{1.0}, Celsius{55.0}, Watt{2.0});
  plane.controller(2).note_tick(Second{1.0}, Celsius{48.0}, Watt{3.0});
  const Controller::Stats total = plane.total();
  EXPECT_NEAR(total.energy_j, 6.0, 1e-12);
  EXPECT_NEAR(total.peak_true_c, 55.0, 1e-12);  // the max, not the sum

  EXPECT_THROW((ControlPlane{ControlPlane::Config{cfg.controller, 0, 4}}),
               std::invalid_argument);
}

TEST(ControlPlane, CanonicalDigestSeparatesOutcomes) {
  ControlPlane::Config cfg;
  cfg.controller.kind = PolicyKind::kStaticWorstCase;
  cfg.controller.policy = tight_config();
  cfg.stack_count = 2;
  cfg.die_count = 4;
  ControlPlane a{cfg};
  ControlPlane b{cfg};
  EXPECT_EQ(canonical_digest(a), canonical_digest(b));
  // One tick of difference on one stack must show in the bytes.
  b.controller(1).note_tick(Second{1e-9}, Celsius{30.0}, Watt{1.0});
  EXPECT_NE(canonical_digest(a), canonical_digest(b));
}

// ------------------------------------------------- thermal actuation API --

TEST(ControlThermal, DiePowerScaleAndAddRoundTrip) {
  thermal::ThermalNetwork network{thermal::StackConfig::four_die_stack()};
  const thermal::Workload workload = one_hot_die(8.0);
  workload.apply(network, Second{0.0});
  EXPECT_NEAR(network.die_power(0).value(), 8.0, 1e-9);
  network.scale_die_power(0, 0.5);
  EXPECT_NEAR(network.die_power(0).value(), 4.0, 1e-9);
  network.add_uniform_power(2, Watt{3.0});
  EXPECT_NEAR(network.die_power(2).value(), 3.0, 1e-9);
  EXPECT_NEAR(network.total_power().value(), 4.0 + 2.0 + 3.0, 1e-9);
}

}  // namespace
}  // namespace tsvpt::control
