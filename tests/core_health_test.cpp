// HealthSupervisor suite: the per-site state machine that acts on fault
// verdicts — quarantine on decisive evidence, graceful degradation while
// quarantined, bounded re-probe with exponential backoff, recalibration on
// recovery, and Dead as the terminal state when probes run out.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/health_supervisor.hpp"
#include "core/pt_sensor.hpp"
#include "core/stack_monitor.hpp"
#include "process/variation.hpp"

namespace tsvpt::core {
namespace {

// Same physical fleet as core_fault_test: a four-die stack with a 3x3
// sensor grid per die, calibrated at a mild uniform load.
struct FleetFixture {
  thermal::StackConfig cfg = thermal::StackConfig::four_die_stack();
  thermal::ThermalNetwork network{cfg};
  std::vector<SensorSite> sites;
  std::unique_ptr<StackMonitor> monitor;

  FleetFixture() {
    sites = StackMonitor::uniform_sites(cfg, 3, 3);
    std::vector<process::Point> points;
    for (std::size_t i = 0; i < 9; ++i) points.push_back(sites[i].location);
    const process::VariationModel model{device::Technology::tsmc65_like(),
                                        points};
    Rng rng{5};
    for (std::size_t d = 0; d < cfg.die_count(); ++d) {
      const process::DieVariation die = model.sample_die(rng);
      for (std::size_t i = 0; i < 9; ++i) {
        sites[d * 9 + i].vt_delta = die.at(i);
      }
    }
    network.set_uniform_power(0, Watt{1.5});
    network.set_temperatures(network.steady_state());
    monitor = std::make_unique<StackMonitor>(&network, PtSensor::Config{},
                                             sites, 6);
    monitor->calibrate_all(nullptr);
  }
};

/// One supervised scan exactly as a sampling worker drives it: sample only
/// the sites the supervisor asks for, hand placeholders for the rest, and
/// honour the recalibration list.
HealthSupervisor::ScanResult observe_masked(FleetFixture& fx,
                                            HealthSupervisor& sup) {
  const std::size_t n = fx.monitor->site_count();
  std::vector<StackMonitor::SiteReading> raw;
  std::vector<bool> mask(n, false);
  raw.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sup.wants_sample(i)) {
      mask[i] = true;
      raw.push_back(fx.monitor->sample_site(i, nullptr));
    } else {
      StackMonitor::SiteReading r;
      r.site_index = i;
      r.die = fx.monitor->site(i).die;
      r.location = fx.monitor->site(i).location;
      r.truth = fx.monitor->truth_at(i);
      r.degraded = true;  // no conversion ran
      raw.push_back(r);
    }
  }
  HealthSupervisor::ScanResult result = sup.observe(raw, mask);
  for (const std::size_t i : result.recalibrate) {
    fx.monitor->sensor(i).clear_calibration();
  }
  return result;
}

// Synthetic scans for pure state-machine tests: a flat 3-column grid on die
// 0 where every reading equals `c` unless the test perturbs it.
std::vector<StackMonitor::SiteReading> flat_scan(std::size_t n, double c) {
  std::vector<StackMonitor::SiteReading> readings;
  for (std::size_t i = 0; i < n; ++i) {
    StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = 0;
    r.location = {1e-3 * static_cast<double>(i % 3),
                  1e-3 * static_cast<double>(i / 3)};
    r.sensed = Celsius{c};
    r.truth = Celsius{c};
    readings.push_back(r);
  }
  return readings;
}

std::vector<std::string> reasons_of(
    const std::vector<HealthSupervisor::Transition>& transitions) {
  std::vector<std::string> reasons;
  for (const auto& t : transitions) reasons.push_back(t.reason);
  return reasons;
}

// The disambiguation FaultDetector's header defers to this layer (and pins
// by name): electronics break between two scans, silicon heats over many.
// A broad hotspot ramping up on thermal time constants moves the whole
// neighbourhood together and must pass; a stuck oscillator moving one site
// alone in a single scan must quarantine immediately.
TEST(HealthSupervisorTest, SingleScanJumpQuarantinedHotspotRampIsNot) {
  FleetFixture fx;
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(fx.monitor->sample_all(nullptr));  // primes history

  // Multi-scan ramp: the hotspot grows scan over scan as the die warms.
  fx.network.add_hotspot(0, {1.5e-3, 1.5e-3}, Meter{1.8e-3}, Watt{3.0});
  for (int s = 0; s < 6; ++s) {
    fx.network.step(Second{5e-3});
    const auto result = sup.observe(fx.monitor->sample_all(nullptr));
    for (const auto& t : result.transitions) {
      EXPECT_NE(t.to, HealthState::kQuarantined)
          << "ramp scan " << s << ": " << t.reason;
    }
  }
  EXPECT_TRUE(sup.all_healthy());

  // Single-scan jump: site 4's TDRO sticks at a much hotter frequency
  // between two scans — only that site moves.
  PtSensor& victim = fx.monitor->sensor(4);
  victim.inject_fault(RoRole::kTdro, RoFault::kStuck,
                      victim.model_frequency(RoRole::kTdro, Volt{0.0},
                                             Volt{0.0}, Kelvin{390.0}));
  const auto result = sup.observe(fx.monitor->sample_all(nullptr));
  EXPECT_EQ(sup.state(4), HealthState::kQuarantined);
  ASSERT_EQ(result.transitions.size(), 1u);
  EXPECT_EQ(result.transitions[0].site_index, 4u);
  EXPECT_EQ(result.transitions[0].to, HealthState::kQuarantined);
  EXPECT_EQ(result.transitions[0].reason,
            "temporal jump isolated from neighbours");
  // The served reading is a flagged substitute, not the stuck value.
  EXPECT_EQ(result.substituted, 1u);
  EXPECT_TRUE(result.readings[4].degraded);
  EXPECT_EQ(result.readings[4].health,
            static_cast<std::uint8_t>(HealthState::kQuarantined));
  EXPECT_NEAR(result.readings[4].sensed.value(),
              result.readings[4].truth.value(), 8.0);
  for (std::size_t i = 0; i < fx.monitor->site_count(); ++i) {
    if (i != 4) {
      EXPECT_EQ(sup.state(i), HealthState::kHealthy) << i;
    }
  }
}

TEST(HealthSupervisorTest, DegradedStreakQuarantinesThroughSuspect) {
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(flat_scan(9, 40.0));

  // A degraded conversion that still reports a plausible value (so the
  // temporal check stays silent): suspicion first, quarantine on streak.
  auto raw = flat_scan(9, 40.0);
  raw[4].degraded = true;
  auto result = sup.observe(raw);
  EXPECT_EQ(sup.state(4), HealthState::kSuspect);
  ASSERT_EQ(result.transitions.size(), 1u);
  EXPECT_EQ(result.transitions[0].reason, "degraded conversion");

  result = sup.observe(raw);
  EXPECT_EQ(sup.state(4), HealthState::kQuarantined);
  ASSERT_EQ(result.transitions.size(), 1u);
  EXPECT_EQ(result.transitions[0].reason, "persistently degraded conversions");
  EXPECT_TRUE(result.readings[4].degraded);
  EXPECT_NEAR(result.readings[4].sensed.value(), 40.0, 0.5);  // substituted
}

TEST(HealthSupervisorTest, TransientSuspicionClears) {
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(flat_scan(9, 40.0));

  auto raw = flat_scan(9, 40.0);
  raw[4].degraded = true;
  (void)sup.observe(raw);
  EXPECT_EQ(sup.state(4), HealthState::kSuspect);

  // suspect_clear_scans clean scans return the site to Healthy.
  (void)sup.observe(flat_scan(9, 40.0));
  const auto result = sup.observe(flat_scan(9, 40.0));
  EXPECT_TRUE(sup.all_healthy());
  ASSERT_EQ(result.transitions.size(), 1u);
  EXPECT_EQ(result.transitions[0].reason, "suspicion cleared");
}

TEST(HealthSupervisorTest, SlowSpatialDriftQuarantinesOnSustainedStreak) {
  // Calibration drift: the reading walks away a little every scan — never
  // fast enough to be a jump, never self-degraded.  Only the *sustained*
  // spatial inconsistency catches it.
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(flat_scan(9, 40.0));

  std::vector<std::string> reasons;
  double offset = 0.0;
  for (int s = 0; s < 12 && sup.state(4) != HealthState::kQuarantined; ++s) {
    offset += 4.0;  // below the 6 C jump threshold
    auto raw = flat_scan(9, 40.0);
    raw[4].sensed = Celsius{40.0 + offset};
    const auto result = sup.observe(raw);
    for (const auto& r : reasons_of(result.transitions)) reasons.push_back(r);
  }
  EXPECT_EQ(sup.state(4), HealthState::kQuarantined);
  EXPECT_NE(std::find(reasons.begin(), reasons.end(),
                      "spatially inconsistent with neighbours"),
            reasons.end());
  EXPECT_EQ(reasons.back(), "sustained spatial inconsistency");
}

TEST(HealthSupervisorTest, ProbeRecoveryRecalibratesAndRestores) {
  FleetFixture fx;
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(fx.monitor->sample_all(nullptr));

  // Break site 4, let the jump quarantine it, then repair the hardware —
  // the supervisor must notice on its own schedule.
  PtSensor& victim = fx.monitor->sensor(4);
  victim.inject_fault(RoRole::kTdro, RoFault::kStuck,
                      victim.model_frequency(RoRole::kTdro, Volt{0.0},
                                             Volt{0.0}, Kelvin{390.0}));
  (void)sup.observe(fx.monitor->sample_all(nullptr));
  ASSERT_EQ(sup.state(4), HealthState::kQuarantined);
  victim.clear_faults();

  std::vector<std::string> reasons;
  bool saw_skipped_sample = false;
  for (int s = 0; s < 20 && !sup.all_healthy(); ++s) {
    if (!sup.wants_sample(4)) saw_skipped_sample = true;
    const auto result = observe_masked(fx, sup);
    for (const auto& r : reasons_of(result.transitions)) reasons.push_back(r);
    if (sup.state(4) == HealthState::kQuarantined) {
      // Graceful degradation between probes: a flagged substitute near
      // truth, stamped with the quarantined health byte.
      EXPECT_TRUE(result.readings[4].degraded);
      EXPECT_EQ(result.readings[4].health,
                static_cast<std::uint8_t>(HealthState::kQuarantined));
      EXPECT_NEAR(result.readings[4].sensed.value(),
                  result.readings[4].truth.value(), 8.0);
    }
  }
  EXPECT_TRUE(sup.all_healthy());
  EXPECT_TRUE(saw_skipped_sample);  // conversions were actually saved
  EXPECT_NE(std::find(reasons.begin(), reasons.end(),
                      "probe consistent; recalibrating"),
            reasons.end());
  EXPECT_EQ(reasons.back(), "probation complete");

  // The recalibrated sensor tracks again.
  const auto sample = fx.monitor->sample_all(nullptr);
  EXPECT_FALSE(sample[4].degraded);
  EXPECT_NEAR(sample[4].sensed.value(), sample[4].truth.value(), 2.0);
}

TEST(HealthSupervisorTest, ExhaustedProbesDeclareDeadWithBackoff) {
  const HealthSupervisor::Config cfg;
  HealthSupervisor sup{cfg};
  (void)sup.observe(flat_scan(9, 40.0));

  // Site 4 degrades for good: every probe fails, backoff stretches, and
  // after max_probe_attempts the site is Dead and never sampled again.
  std::vector<std::uint64_t> probe_scans;
  for (int s = 0; s < 220 && sup.state(4) != HealthState::kDead; ++s) {
    std::vector<bool> mask(9, true);
    for (std::size_t i = 0; i < 9; ++i) mask[i] = sup.wants_sample(i);
    if (mask[4] && sup.state(4) == HealthState::kQuarantined) {
      probe_scans.push_back(sup.scans_observed());
    }
    auto raw = flat_scan(9, 40.0);
    raw[4].degraded = true;
    const auto result = sup.observe(raw, mask);
    if (sup.state(4) == HealthState::kQuarantined ||
        sup.state(4) == HealthState::kDead) {
      EXPECT_TRUE(result.readings[4].degraded);
      EXPECT_NEAR(result.readings[4].sensed.value(), 40.0, 0.5);
    }
  }
  EXPECT_EQ(sup.state(4), HealthState::kDead);
  EXPECT_FALSE(sup.wants_sample(4));
  EXPECT_EQ(sup.quarantined_count(), 1u);

  // Exactly the configured probe budget was spent, at gaps that grow
  // geometrically and saturate at the backoff cap.
  ASSERT_EQ(probe_scans.size(), cfg.max_probe_attempts);
  std::vector<std::uint64_t> gaps;
  for (std::size_t p = 1; p < probe_scans.size(); ++p) {
    gaps.push_back(probe_scans[p] - probe_scans[p - 1]);
  }
  for (std::size_t g = 0; g < gaps.size(); ++g) {
    if (g > 0) {
      EXPECT_GE(gaps[g], gaps[g - 1]) << "backoff shrank";
    }
    EXPECT_LE(gaps[g], 1 + cfg.probe_backoff_max);
  }
}

TEST(HealthSupervisorTest, LoneSensorFallsBackToLastServed) {
  // One sensor on its die: no leave-one-out reference exists, so the
  // substitute is the last served value, and a probe (which cannot be
  // cross-checked) succeeds on any clean conversion.
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(flat_scan(1, 40.0));

  auto raw = flat_scan(1, 40.0);
  raw[0].degraded = true;
  (void)sup.observe(raw);
  const auto result = sup.observe(raw);
  ASSERT_EQ(sup.state(0), HealthState::kQuarantined);
  EXPECT_TRUE(result.readings[0].degraded);
  EXPECT_NEAR(result.readings[0].sensed.value(), 40.0, 1e-9);

  bool recovered = false;
  for (int s = 0; s < 20 && !recovered; ++s) {
    std::vector<bool> mask{sup.wants_sample(0)};
    auto scan = flat_scan(1, 40.0);
    scan[0].degraded = !mask[0];  // hardware is fine again when probed
    (void)sup.observe(scan, mask);
    recovered = sup.all_healthy();
  }
  EXPECT_TRUE(recovered);
}

TEST(HealthSupervisorTest, ObserveValidatesInput) {
  HealthSupervisor sup{HealthSupervisor::Config{}};
  auto raw = flat_scan(9, 40.0);
  EXPECT_THROW((void)sup.observe(raw, std::vector<bool>(8, true)),
               std::invalid_argument);

  (void)sup.observe(raw);
  EXPECT_THROW((void)sup.observe(flat_scan(4, 40.0)), std::invalid_argument);

  auto shuffled = flat_scan(9, 40.0);
  std::swap(shuffled[0], shuffled[1]);
  EXPECT_THROW((void)sup.observe(shuffled), std::invalid_argument);

  // Before the set is sized (and for unknown indices) sampling is wanted.
  EXPECT_TRUE(sup.wants_sample(42));
}

TEST(HealthSupervisorTest, ResetForgetsHistory) {
  HealthSupervisor sup{HealthSupervisor::Config{}};
  (void)sup.observe(flat_scan(9, 40.0));
  auto raw = flat_scan(9, 40.0);
  raw[4].sensed = Celsius{90.0};
  (void)sup.observe(raw);
  ASSERT_EQ(sup.state(4), HealthState::kQuarantined);

  sup.reset();
  EXPECT_EQ(sup.site_count(), 0u);
  EXPECT_EQ(sup.scans_observed(), 0u);
  // The first scan after reset primes silently no matter how far the field
  // moved while the supervisor was away.
  const auto result = sup.observe(flat_scan(9, 75.0));
  EXPECT_TRUE(result.transitions.empty());
  EXPECT_TRUE(sup.all_healthy());
}

TEST(HealthSupervisorTest, RecoveryStepBackToRawIsNotAJump) {
  // Regression: while quarantined the served value is an estimate; when the
  // site comes back, the step from that estimate to the first raw reading
  // is estimation error, not a sensor breaking.  It must not re-quarantine.
  HealthSupervisor::Config cfg;
  cfg.jump.jump_threshold = Celsius{2.0};  // make any real step look scary
  HealthSupervisor sup{cfg};
  (void)sup.observe(flat_scan(9, 40.0));

  auto raw = flat_scan(9, 40.0);
  raw[4].degraded = true;
  (void)sup.observe(raw);
  (void)sup.observe(raw);
  ASSERT_EQ(sup.state(4), HealthState::kQuarantined);

  bool relapsed = false;
  for (int s = 0; s < 20 && !sup.all_healthy(); ++s) {
    std::vector<bool> mask(9, true);
    for (std::size_t i = 0; i < 9; ++i) mask[i] = sup.wants_sample(i);
    auto scan = flat_scan(9, 40.0);
    if (!mask[4]) scan[4].degraded = true;
    // The repaired sensor reads 3.5 C off the substitute's estimate —
    // within spatial tolerance, but past the (tightened) jump threshold.
    if (mask[4]) scan[4].sensed = Celsius{43.5};
    const auto result = sup.observe(scan, mask);
    for (const auto& t : result.transitions) {
      relapsed |= t.reason == "relapse during probation" ||
                  t.reason == "temporal jump isolated from neighbours";
    }
  }
  EXPECT_TRUE(sup.all_healthy());
  EXPECT_FALSE(relapsed);
}

}  // namespace
}  // namespace tsvpt::core
