#include "ptsim/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tsvpt {
namespace {

Table make_sample() {
  Table t{"sample"};
  t.add_column("name");
  t.add_column("value", 2);
  t.add_column("count", 0);
  t.add_row({std::string{"alpha"}, 1.234, 7LL});
  t.add_row({std::string{"beta"}, -0.5, 42LL});
  return t;
}

TEST(Table, RenderContainsHeadersAndValues) {
  const std::string out = make_sample().render();
  EXPECT_NE(out.find("sample"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, PrecisionIsPerColumn) {
  Table t;
  t.add_column("a", 1);
  t.add_column("b", 4);
  t.add_row({3.14159, 3.14159});
  const std::string out = t.render();
  EXPECT_NE(out.find("3.1 "), std::string::npos);
  EXPECT_NE(out.find("3.1416"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.add_column("a");
  EXPECT_THROW(t.add_row({1.0, 2.0}), std::invalid_argument);
}

TEST(Table, AddColumnAfterRowsThrows) {
  Table t;
  t.add_column("a");
  t.add_row({1.0});
  EXPECT_THROW(t.add_column("b"), std::logic_error);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t;
  t.add_column("text");
  t.add_row({std::string{"hello, \"world\""}});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundNumbers) {
  const std::string csv = make_sample().to_csv();
  EXPECT_NE(csv.find("alpha,1.23,7"), std::string::npos);
}

TEST(Table, WriteCsvCreatesFile) {
  const std::string path = "/tmp/tsvpt_table_test.csv";
  make_sample().write_csv(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "name,value,count");
  std::remove(path.c_str());
}

TEST(Table, CountsAreTracked) {
  const Table t = make_sample();
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 3u);
}

}  // namespace
}  // namespace tsvpt
