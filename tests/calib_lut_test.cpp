#include "calib/lut.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace tsvpt::calib {
namespace {

TEST(Lut1D, ExactAtGridPoints) {
  const Lut1D lut{0.0, 4.0, {0.0, 1.0, 4.0, 9.0, 16.0}};
  EXPECT_DOUBLE_EQ(lut(0.0), 0.0);
  EXPECT_DOUBLE_EQ(lut(2.0), 4.0);
  EXPECT_DOUBLE_EQ(lut(4.0), 16.0);
}

TEST(Lut1D, LinearBetweenPoints) {
  const Lut1D lut{0.0, 2.0, {0.0, 10.0, 40.0}};
  EXPECT_DOUBLE_EQ(lut(0.5), 5.0);
  EXPECT_DOUBLE_EQ(lut(1.5), 25.0);
}

TEST(Lut1D, ExtrapolatesFromEndSegments) {
  const Lut1D lut{0.0, 1.0, {0.0, 2.0}};
  EXPECT_DOUBLE_EQ(lut(2.0), 4.0);
  EXPECT_DOUBLE_EQ(lut(-1.0), -2.0);
}

TEST(Lut1D, RejectsBadConstruction) {
  EXPECT_THROW((Lut1D{0.0, 1.0, {1.0}}), std::invalid_argument);
  EXPECT_THROW((Lut1D{1.0, 0.0, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Lut1D, InvertIncreasing) {
  const Lut1D lut{0.0, 3.0, {1.0, 2.0, 4.0, 8.0}};
  EXPECT_NEAR(lut.invert(3.0), 1.5, 1e-12);
  EXPECT_NEAR(lut.invert(1.0), 0.0, 1e-12);
  EXPECT_NEAR(lut.invert(8.0), 3.0, 1e-12);
}

TEST(Lut1D, InvertDecreasing) {
  const Lut1D lut{0.0, 2.0, {10.0, 5.0, 0.0}};
  EXPECT_NEAR(lut.invert(7.5), 0.5, 1e-12);
}

TEST(Lut1D, InvertRoundTripDense) {
  std::vector<double> values;
  for (int i = 0; i <= 50; ++i) values.push_back(std::exp(0.05 * i));
  const Lut1D lut{-20.0, 120.0, std::move(values)};
  for (double x = -20.0; x <= 120.0; x += 3.7) {
    EXPECT_NEAR(lut.invert(lut(x)), x, 1e-9);
  }
}

TEST(Lut1D, InvertNonMonotoneThrows) {
  const Lut1D lut{0.0, 2.0, {0.0, 5.0, 1.0}};
  EXPECT_FALSE(lut.is_monotone());
  EXPECT_THROW((void)lut.invert(2.0), std::runtime_error);
}

TEST(Lut1D, InvertOutOfRangeThrows) {
  const Lut1D lut{0.0, 1.0, {0.0, 1.0}};
  EXPECT_THROW((void)lut.invert(2.0), std::runtime_error);
}

TEST(Lut1D, QuantizeBoundsError) {
  std::vector<double> values;
  for (int i = 0; i <= 32; ++i) values.push_back(static_cast<double>(i));
  Lut1D lut{0.0, 32.0, std::move(values)};
  const double worst = lut.quantize(8);
  // 8-bit over a span of 32: LSB = 32/255, worst rounding error <= LSB/2.
  EXPECT_LE(worst, 0.5 * 32.0 / 255.0 + 1e-12);
  EXPECT_THROW((void)lut.quantize(0), std::invalid_argument);
}

TEST(Lut2D, BilinearExactAtCorners) {
  Lut2D lut{0.0, 1.0, 2, 0.0, 1.0, 2};
  lut.cell(0, 0) = 1.0;
  lut.cell(1, 0) = 2.0;
  lut.cell(0, 1) = 3.0;
  lut.cell(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(lut(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(lut(1.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lut(0.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(lut(1.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lut(0.5, 0.5), 2.5);
}

TEST(Lut2D, ClampsOutsideDomain) {
  Lut2D lut{0.0, 1.0, 2, 0.0, 1.0, 2};
  lut.cell(0, 0) = 1.0;
  lut.cell(1, 0) = 2.0;
  lut.cell(0, 1) = 3.0;
  lut.cell(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(lut(-5.0, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(lut(5.0, 5.0), 4.0);
}

TEST(Lut2D, ReproducesBilinearFunction) {
  Lut2D lut{0.0, 2.0, 5, -1.0, 1.0, 5};
  auto f = [](double x, double y) { return 2.0 + 3.0 * x - y + 0.5 * x * y; };
  for (std::size_t i = 0; i < lut.nx(); ++i) {
    for (std::size_t j = 0; j < lut.ny(); ++j) {
      lut.cell(i, j) = f(lut.x_at(i), lut.y_at(j));
    }
  }
  for (double x = 0.0; x <= 2.0; x += 0.13) {
    for (double y = -1.0; y <= 1.0; y += 0.17) {
      EXPECT_NEAR(lut(x, y), f(x, y), 1e-9);
    }
  }
}

TEST(Lut2D, RejectsBadConstruction) {
  EXPECT_THROW((Lut2D{0.0, 1.0, 1, 0.0, 1.0, 2}), std::invalid_argument);
  EXPECT_THROW((Lut2D{1.0, 0.0, 2, 0.0, 1.0, 2}), std::invalid_argument);
}

TEST(Lut2D, CellBoundsChecked) {
  Lut2D lut{0.0, 1.0, 2, 0.0, 1.0, 2};
  EXPECT_THROW((void)lut.cell(2, 0), std::out_of_range);
}

}  // namespace
}  // namespace tsvpt::calib
