// Scrape-endpoint plumbing: the incremental HTTP request parser and the
// live /metrics + /healthz endpoints served from the ingest server's poll
// loop.  The parser tests sweep every possible chunk boundary (bytes arrive
// from a nonblocking socket in arbitrary pieces); the live tests drive a
// real IngestServer over loopback, including concurrent scrapers so TSan
// sees the IO-thread/scraper interleaving.
#include "obs/http.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ingest/server.hpp"
#include "json_check.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"

namespace tsvpt::obs {
namespace {

using State = HttpRequestParser::State;

constexpr const char* kGetMetrics =
    "GET /metrics HTTP/1.0\r\nHost: localhost\r\nAccept: */*\r\n\r\n";

TEST(ObsHttp, WholeRequestInOneChunk) {
  HttpRequestParser parser;
  const std::string req = kGetMetrics;
  EXPECT_EQ(parser.feed(req.data(), req.size()), State::kComplete);
  EXPECT_EQ(parser.method(), "GET");
  EXPECT_EQ(parser.path(), "/metrics");
}

TEST(ObsHttp, SplitAtEveryByteParsesIdentically) {
  const std::string req = kGetMetrics;
  for (std::size_t split = 0; split <= req.size(); ++split) {
    HttpRequestParser parser;
    State state = parser.feed(req.data(), split);
    if (split < req.size()) {
      state = parser.feed(req.data() + split, req.size() - split);
    }
    ASSERT_EQ(state, State::kComplete) << "split at " << split;
    EXPECT_EQ(parser.method(), "GET");
    EXPECT_EQ(parser.path(), "/metrics");
  }
}

TEST(ObsHttp, OneByteAtATime) {
  const std::string req = kGetMetrics;
  HttpRequestParser parser;
  State state = State::kIncomplete;
  for (const char c : req) state = parser.feed(&c, 1);
  EXPECT_EQ(state, State::kComplete);
  EXPECT_EQ(parser.path(), "/metrics");
}

TEST(ObsHttp, IncompleteUntilBlankLine) {
  HttpRequestParser parser;
  const std::string partial = "GET /metrics HTTP/1.0\r\nHost: x\r\n";
  EXPECT_EQ(parser.feed(partial.data(), partial.size()), State::kIncomplete);
  const std::string rest = "\r\n";
  EXPECT_EQ(parser.feed(rest.data(), rest.size()), State::kComplete);
}

TEST(ObsHttp, OversizedRequestRejected) {
  HttpRequestParser parser;
  const std::string chunk(1024, 'a');  // no blank line anywhere
  State state = State::kIncomplete;
  for (int i = 0; i < 9; ++i) state = parser.feed(chunk.data(), chunk.size());
  EXPECT_EQ(state, State::kTooLarge);
  // Terminal states are sticky: a late blank line cannot resurrect it.
  const std::string end = "\r\n\r\n";
  EXPECT_EQ(parser.feed(end.data(), end.size()), State::kTooLarge);
}

TEST(ObsHttp, MalformedRequestLines) {
  for (const char* bad : {"GARBAGE\r\n\r\n",            // no spaces
                          "GET /metrics\r\n\r\n",        // no version
                          "GET  HTTP/1.0\r\n\r\n",       // empty path
                          " GET /x HTTP/1.0\r\n\r\n",    // leading space
                          "GET /x SPDY/3\r\n\r\n"}) {    // wrong protocol
    HttpRequestParser parser;
    const std::string req = bad;
    EXPECT_EQ(parser.feed(req.data(), req.size()), State::kMalformed) << bad;
  }
}

TEST(ObsHttp, ResetAllowsReuse) {
  HttpRequestParser parser;
  const std::string bad = "GARBAGE\r\n\r\n";
  EXPECT_EQ(parser.feed(bad.data(), bad.size()), State::kMalformed);
  parser.reset();
  const std::string good = "GET /healthz HTTP/1.1\r\n\r\n";
  EXPECT_EQ(parser.feed(good.data(), good.size()), State::kComplete);
  EXPECT_EQ(parser.path(), "/healthz");
}

TEST(ObsHttp, ResponseFormat) {
  const std::string res = http_response(200, "text/plain", "hello\n");
  EXPECT_EQ(res.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(res.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(res.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(res.find("Connection: close\r\n\r\nhello\n"), std::string::npos);

  EXPECT_NE(http_response(404, "text/plain", "").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(http_response(405, "text/plain", "").find("405 Method Not"),
            std::string::npos);
  EXPECT_NE(http_response(431, "text/plain", "").find("431 Request Header"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Live endpoint on a real IngestServer.

/// Blocking one-shot HTTP/1.0 client: send the request, read to EOF.
std::string fetch(std::uint16_t port, const std::string& request) {
  net::Socket conn = net::tcp_connect("127.0.0.1", port);
  if (!conn.valid()) return {};
  if (!net::send_all(conn,
                     reinterpret_cast<const std::uint8_t*>(request.data()),
                     request.size())) {
    return {};
  }
  std::string response;
  std::uint8_t buf[4096];
  for (;;) {
    const net::IoResult io = net::recv_some(conn, buf, sizeof buf);
    if (io.status == net::IoStatus::kOk) {
      response.append(reinterpret_cast<const char*>(buf), io.bytes);
      continue;
    }
    if (io.status == net::IoStatus::kWouldBlock) continue;  // blocking: rare
    break;  // kClosed = full response; kError = give up with what we have
  }
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return fetch(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

class ObsHttpLive : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().set_enabled(true);
    Registry::instance().reset_values();
    ingest::IngestServer::Config cfg;
    cfg.http_enabled = true;
    server_ = std::make_unique<ingest::IngestServer>(cfg);
    server_->start();
    ASSERT_NE(server_->http_port(), 0);
  }
  void TearDown() override {
    server_->stop();
    Registry::instance().reset_values();
  }

  std::unique_ptr<ingest::IngestServer> server_;
};

TEST_F(ObsHttpLive, MetricsScrapeCarriesStageHistograms) {
  const std::string res = get(server_->http_port(), "/metrics");
  ASSERT_NE(res.find("HTTP/1.0 200 OK"), std::string::npos) << res;
  EXPECT_NE(res.find("text/plain; version=0.0.4"), std::string::npos);
  // The five-stage waterfall is pre-registered at server start, so the
  // scrape schema is complete even before any traffic arrives.
  for (const char* stage : all_stages()) {
    EXPECT_NE(res.find("stage=\"" + std::string(stage) + "\""),
              std::string::npos)
        << "missing stage " << stage << " in:\n"
        << res;
  }
  EXPECT_NE(res.find(kStageLatencyMetric), std::string::npos);
}

TEST_F(ObsHttpLive, HealthzIsValidJson) {
  const std::string res = get(server_->http_port(), "/healthz");
  ASSERT_NE(res.find("HTTP/1.0 200 OK"), std::string::npos);
  const std::size_t body_at = res.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = res.substr(body_at + 4);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(body)) << body;
  EXPECT_NE(body.find("\"shards\""), std::string::npos);
  EXPECT_NE(body.find("\"open_connections\""), std::string::npos);
}

TEST_F(ObsHttpLive, UnknownPathAndMethodAreRejected) {
  EXPECT_NE(get(server_->http_port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(fetch(server_->http_port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
}

TEST_F(ObsHttpLive, MalformedAndOversizedRequestsAnswered) {
  EXPECT_NE(fetch(server_->http_port(), "GARBAGE\r\n\r\n").find("400"),
            std::string::npos);
  // A request-line that never terminates: the server must cut it off at
  // kMaxHttpRequestBytes with a 431 instead of buffering forever.
  std::string huge = "GET /";
  huge.append(2 * kMaxHttpRequestBytes, 'x');
  EXPECT_NE(fetch(server_->http_port(), huge).find("431"), std::string::npos);
}

TEST_F(ObsHttpLive, ConcurrentScrapesAreClean) {
  constexpr int kThreads = 4;
  constexpr int kRequests = 8;
  std::vector<std::thread> scrapers;
  std::vector<int> ok(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([this, t, &ok] {
      for (int i = 0; i < kRequests; ++i) {
        const std::string path = i % 2 == 0 ? "/metrics" : "/healthz";
        if (get(server_->http_port(), path).find("200 OK") !=
            std::string::npos) {
          ++ok[t];
        }
      }
    });
  }
  for (std::thread& s : scrapers) s.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], kRequests);
  EXPECT_GE(server_->stats().http_requests,
            static_cast<std::uint64_t>(kThreads * kRequests));
}

}  // namespace
}  // namespace tsvpt::obs
