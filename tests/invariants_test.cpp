// Cross-module physical invariants: properties the models must satisfy by
// construction, checked over randomized inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/counter.hpp"
#include "circuit/ring_oscillator.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt {
namespace {

thermal::StackConfig small_stack() {
  thermal::StackConfig cfg;
  thermal::DieGeometry die;
  die.nx = 4;
  die.ny = 4;
  cfg.dies.assign(2, die);
  cfg.bonds.assign(1, thermal::BondLayer{});
  return cfg;
}

TEST(Invariants, ThermalSuperposition) {
  // The network is linear (without leakage feedback): the rise caused by
  // P1 + P2 equals the sum of the rises caused separately.
  Rng rng{901};
  thermal::ThermalNetwork net{small_stack()};
  const double ambient = net.config().ambient.value();
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> p1(32);
    std::vector<double> p2(32);
    net.clear_power();
    for (std::size_t d = 0; d < 2; ++d) {
      for (std::size_t iy = 0; iy < 4; ++iy) {
        for (std::size_t ix = 0; ix < 4; ++ix) {
          p1[d * 16 + iy * 4 + ix] = rng.uniform(0.0, 0.3);
          p2[d * 16 + iy * 4 + ix] = rng.uniform(0.0, 0.3);
        }
      }
    }
    auto solve_with = [&](const std::vector<double>& a,
                          const std::vector<double>& b, double wa,
                          double wb) {
      net.clear_power();
      for (std::size_t d = 0; d < 2; ++d) {
        for (std::size_t iy = 0; iy < 4; ++iy) {
          for (std::size_t ix = 0; ix < 4; ++ix) {
            const std::size_t k = d * 16 + iy * 4 + ix;
            net.set_cell_power(d, ix, iy, Watt{wa * a[k] + wb * b[k]});
          }
        }
      }
      return net.steady_state(1e-12);
    };
    const auto t1 = solve_with(p1, p2, 1.0, 0.0);
    const auto t2 = solve_with(p1, p2, 0.0, 1.0);
    const auto t12 = solve_with(p1, p2, 1.0, 1.0);
    for (std::size_t n = 0; n < t12.size(); ++n) {
      EXPECT_NEAR(t12[n] - ambient, (t1[n] - ambient) + (t2[n] - ambient),
                  1e-6);
    }
  }
}

TEST(Invariants, ThermalScalingIsLinear) {
  thermal::ThermalNetwork net{small_stack()};
  net.set_uniform_power(0, Watt{1.0});
  const auto base = net.steady_state(1e-12);
  net.set_uniform_power(0, Watt{3.0});
  const auto tripled = net.steady_state(1e-12);
  const double ambient = net.config().ambient.value();
  for (std::size_t n = 0; n < base.size(); ++n) {
    EXPECT_NEAR(tripled[n] - ambient, 3.0 * (base[n] - ambient), 1e-6);
  }
}

TEST(Invariants, TransientConservesHeatBudget) {
  // Starting hot with no power: the stack can only lose energy; the
  // capacitance-weighted mean temperature must decay monotonically to
  // ambient.
  thermal::ThermalNetwork net{small_stack()};
  net.set_uniform_temperature(Kelvin{360.0});
  double prev_mean = 360.0;
  for (int i = 0; i < 20; ++i) {
    net.step(Second{2e-3});
    double mean = 0.0;
    for (double t : net.temperatures()) mean += t;
    mean /= static_cast<double>(net.node_count());
    EXPECT_LE(mean, prev_mean + 1e-9);
    EXPECT_GE(mean, net.config().ambient.value() - 1e-9);
    prev_mean = mean;
  }
}

TEST(Invariants, RoFrequencyHomogeneousInCapacitance) {
  // f scales exactly as 1/C in the stage-delay abstraction.
  device::Technology tech = device::Technology::tsmc65_like();
  const auto f1 =
      circuit::RingOscillator::make(tech, circuit::RoTopology::kThermal)
          .frequency({Volt{1.0}, Kelvin{320.0}, {}});
  tech.stage_cap = Farad{2.0 * tech.stage_cap.value()};
  const auto f2 =
      circuit::RingOscillator::make(tech, circuit::RoTopology::kThermal)
          .frequency({Volt{1.0}, Kelvin{320.0}, {}});
  EXPECT_NEAR(f1.value() / f2.value(), 2.0, 1e-12);
}

TEST(Invariants, RoSensitivitySignsStableOverRange) {
  // The decoupling relies on fixed sensitivity signs across the whole
  // operating box: check every topology over a coarse (T, dVt) grid.
  const device::Technology tech = device::Technology::tsmc65_like();
  for (circuit::RoTopology topo :
       {circuit::RoTopology::kStandard, circuit::RoTopology::kNmosSensitive,
        circuit::RoTopology::kPmosSensitive, circuit::RoTopology::kThermal}) {
    const auto ro = circuit::RingOscillator::make(tech, topo);
    for (double t = -20.0; t <= 120.0; t += 35.0) {
      for (double mv = -40.0; mv <= 40.0; mv += 40.0) {
        circuit::OperatingPoint op;
        op.vdd = Volt{1.0};
        op.temperature = to_kelvin(Celsius{t});
        op.vt_delta = {millivolts(mv), millivolts(mv)};
        const auto s = ro.sensitivity(op);
        EXPECT_LT(s.dlnf_dvtn, 0.0) << circuit::to_string(topo);
        EXPECT_LT(s.dlnf_dvtp, 0.0) << circuit::to_string(topo);
        if (topo == circuit::RoTopology::kThermal) {
          EXPECT_GT(s.dlnf_dt, 0.0);
        }
      }
    }
  }
}

TEST(Invariants, CounterAveragingConvergesToTruth) {
  // The mean of many noisy measurements approaches the true frequency
  // (quantization is unbiased thanks to the random sampling phase).
  const circuit::FrequencyCounter counter{
      {circuit::ReferenceClock{}, Second{2e-6}, 16}};
  Rng rng{902};
  const double truth = 123.4567e6;
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    acc += counter.measure(Hertz{truth}, &rng).measured.value();
  }
  EXPECT_NEAR(acc / kN, truth, 6e3);  // ~1/sqrt(N) of the 0.5 MHz LSB
}

TEST(Invariants, WorkloadPowerIsConserved) {
  // apply() must inject exactly the phase's declared power.
  const thermal::StackConfig cfg = small_stack();
  thermal::ThermalNetwork net{cfg};
  Rng rng{903};
  const thermal::Workload workload =
      thermal::Workload::random(cfg, rng, 6, Watt{4.0}, Second{1e-3});
  for (const thermal::WorkloadPhase& phase : workload.phases()) {
    double declared = 0.0;
    for (const auto& d : phase.directives) declared += d.total.value();
    thermal::Workload single{{phase}};
    single.apply(net, Second{0.0});
    EXPECT_NEAR(net.total_power().value(), declared, 1e-9);
  }
}

}  // namespace
}  // namespace tsvpt
