#include "calib/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace tsvpt::calib {
namespace {

TEST(BrentRoot, FindsSquareRoot) {
  auto f = [](double x) { return x * x - 2.0; };
  EXPECT_NEAR(brent_root(f, 0.0, 2.0), std::sqrt(2.0), 1e-10);
}

TEST(BrentRoot, FindsTranscendentalRoot) {
  auto f = [](double x) { return std::cos(x) - x; };
  const double root = brent_root(f, 0.0, 1.0);
  EXPECT_NEAR(std::cos(root), root, 1e-10);
}

TEST(BrentRoot, ExactEndpoint) {
  auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(brent_root(f, 1.0, 2.0), 1.0);
}

TEST(BrentRoot, NotBracketedThrows) {
  auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)brent_root(f, -1.0, 1.0), std::runtime_error);
}

TEST(BrentRoot, SteepExponential) {
  // Shapes like the TDRO transfer curve: f(T) ~ exp(kT) - target.
  auto f = [](double t) { return std::exp(0.02 * t) - std::exp(0.02 * 57.3); };
  EXPECT_NEAR(brent_root(f, -40.0, 140.0), 57.3, 1e-8);
}

TEST(NewtonSolve, Linear2x2) {
  auto f = [](const Vector& x) {
    return Vector{2.0 * x[0] + x[1] - 5.0, x[0] - x[1] + 2.0};
  };
  const NewtonResult r = newton_solve(f, Vector{0.0, 0.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 1.0, 1e-8);
  EXPECT_NEAR(r.x[1], 3.0, 1e-8);
}

TEST(NewtonSolve, Nonlinear2x2) {
  // Intersection of a circle and a line: x^2+y^2=25, y=x+1 -> (3,4).
  auto f = [](const Vector& v) {
    return Vector{v[0] * v[0] + v[1] * v[1] - 25.0, v[1] - v[0] - 1.0};
  };
  const NewtonResult r = newton_solve(f, Vector{2.0, 2.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
  EXPECT_NEAR(r.x[1], 4.0, 1e-7);
}

TEST(NewtonSolve, ExponentialSystemLikeDecoupling) {
  // A caricature of the sensor's system: three log-frequencies as smooth
  // functions of (a, b, t); recover the hidden state from measurements.
  auto model = [](double a, double b, double t) {
    return Vector{-10.0 * a - 0.2 * b + 0.005 * t,
                  -0.2 * a - 9.0 * b + 0.004 * t,
                  -6.0 * a - 5.0 * b + 0.015 * t + 2e-5 * t * t};
  };
  const Vector truth = model(0.018, -0.012, 63.0);
  auto f = [&](const Vector& x) {
    Vector m = model(x[0], x[1], x[2]);
    return Vector{m[0] - truth[0], m[1] - truth[1], m[2] - truth[2]};
  };
  const NewtonResult r = newton_solve(f, Vector{0.0, 0.0, 30.0});
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.018, 1e-7);
  EXPECT_NEAR(r.x[1], -0.012, 1e-7);
  EXPECT_NEAR(r.x[2], 63.0, 1e-5);
}

TEST(NewtonSolve, RespectsBoxConstraints) {
  auto f = [](const Vector& x) { return Vector{x[0] - 10.0}; };
  NewtonOptions options;
  options.lower_bounds = {-1.0};
  options.upper_bounds = {2.0};
  const NewtonResult r = newton_solve(f, Vector{0.0}, options);
  EXPECT_LE(r.x[0], 2.0 + 1e-12);
  EXPECT_FALSE(r.converged);  // the root is outside the box
}

TEST(NewtonSolve, BadBoundsShapeThrows) {
  auto f = [](const Vector& x) { return Vector{x[0]}; };
  NewtonOptions options;
  options.lower_bounds = {0.0, 0.0};
  EXPECT_THROW((void)newton_solve(f, Vector{1.0}, options),
               std::invalid_argument);
}

TEST(NewtonSolve, NonSquareThrows) {
  auto f = [](const Vector&) { return Vector{1.0, 2.0}; };
  EXPECT_THROW((void)newton_solve(f, Vector{0.0}), std::invalid_argument);
}

TEST(NewtonSolve, ReportsIterationBudget) {
  auto f = [](const Vector& x) { return Vector{std::exp(x[0]) - 3.0}; };
  NewtonOptions options;
  options.max_iterations = 50;
  const NewtonResult r = newton_solve(f, Vector{0.0}, options);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 50);
  EXPECT_NEAR(r.x[0], std::log(3.0), 1e-8);
}

}  // namespace
}  // namespace tsvpt::calib
