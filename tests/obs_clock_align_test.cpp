// NTP-style clock alignment: offset/rtt arithmetic, the min-RTT sample
// filter, rejection of non-positive RTTs, window aging, and reset.  All
// timestamps are synthetic, so every expectation is exact.
#include "obs/clock_align.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace tsvpt::obs {
namespace {

TEST(ObsClockAlign, StartsInvalid) {
  const ClockAlign align;
  EXPECT_FALSE(align.valid());
  EXPECT_EQ(align.offset_ns(), 0);
  EXPECT_EQ(align.samples(), 0u);
}

TEST(ObsClockAlign, SymmetricExchangeRecoversExactOffset) {
  // Server clock = publisher clock + 5000 ns, both wire legs 100 ns:
  //   t1=1000 (pub), t2=1000+100+5000 (srv), t3=t2+50, t4=t1+100+50+100.
  ClockAlign align;
  align.update(1000, 6100, 6150, 1250);
  ASSERT_TRUE(align.valid());
  EXPECT_EQ(align.offset_ns(), 5000);
  EXPECT_EQ(align.min_rtt_ns(), 200);  // (t4-t1) - (t3-t2) = 250 - 50
  EXPECT_EQ(align.samples(), 1u);
}

TEST(ObsClockAlign, NegativeOffsetRecovered) {
  // Server clock runs 3000 ns behind the publisher.
  ClockAlign align;
  align.update(10'000, 7'100, 7'150, 10'250);
  ASSERT_TRUE(align.valid());
  EXPECT_EQ(align.offset_ns(), -3000);
}

TEST(ObsClockAlign, MinRttSampleWins) {
  // The offset must track whichever window sample has the smallest RTT —
  // the exchange least polluted by queueing.
  ClockAlign align;
  align.update(1000, 6100, 6150, 1250);       // offset 5000, rtt 200
  align.update(2000, 17'000, 17'050, 2'150);  // offset 14950, rtt 100
  ASSERT_TRUE(align.valid());
  EXPECT_EQ(align.min_rtt_ns(), 100);
  EXPECT_EQ(align.offset_ns(), 14950);
  EXPECT_EQ(align.samples(), 2u);

  // A clearly slower exchange with yet another implied offset must NOT
  // displace the min-RTT winner.
  align.update(3000, 1'003'000, 1'003'500, 13'000);  // rtt 9500
  EXPECT_EQ(align.offset_ns(), 14950);
  EXPECT_EQ(align.min_rtt_ns(), 100);
}

TEST(ObsClockAlign, NonPositiveRttDropped) {
  // t4 earlier than the exchange allows → rtt <= 0 → dropped.
  ClockAlign align;
  align.update(1000, 6000, 7000, 1500);  // rtt = 500 - 1000 < 0
  EXPECT_FALSE(align.valid());
  EXPECT_EQ(align.samples(), 0u);
}

TEST(ObsClockAlign, WindowAgesOutOldSamples) {
  ClockAlign align;
  // One ultra-clean sample (rtt 2), then kWindow samples with rtt 200 and a
  // different offset: the clean sample must age out of the ring and the
  // offset track the surviving window.
  align.update(1000, 2001, 2001, 1002);  // offset ~1000, rtt 2
  EXPECT_EQ(align.min_rtt_ns(), 2);
  for (int i = 0; i < ClockAlign::kWindow; ++i) {
    const std::uint64_t t1 = 10'000 + static_cast<std::uint64_t>(i) * 1000;
    align.update(t1, t1 + 5100, t1 + 5150, t1 + 250);  // offset 5000, rtt 200
  }
  EXPECT_EQ(align.min_rtt_ns(), 200);
  EXPECT_EQ(align.offset_ns(), 5000);
  EXPECT_EQ(align.samples(), 1u + ClockAlign::kWindow);
}

TEST(ObsClockAlign, ResetDropsEverything) {
  ClockAlign align;
  align.update(1000, 6100, 6150, 1250);
  ASSERT_TRUE(align.valid());
  align.reset();
  EXPECT_FALSE(align.valid());
  EXPECT_EQ(align.offset_ns(), 0);
  EXPECT_EQ(align.samples(), 0u);
}

}  // namespace
}  // namespace tsvpt::obs
