// SLO evaluation: burn-rate arithmetic over hand-built snapshots (exact,
// no registry involved), the stage-latency convenience spec, and the JSON
// export embedded in the serve report.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"

namespace tsvpt::obs {
namespace {

/// Snapshot fixture with one labelled histogram: `fast` samples at 10 ms
/// and `slow` samples at 500 ms.
Snapshot latency_snapshot(std::uint64_t fast, std::uint64_t slow,
                          const std::string& label) {
  HistogramSnapshot h;
  h.name = kStageLatencyMetric;
  h.label = label;
  h.count = fast + slow;
  h.buckets = {{0.010, fast}, {0.500, slow}};
  Snapshot snapshot;
  snapshot.histograms.push_back(std::move(h));
  return snapshot;
}

SloSpec wire_slo(double threshold, double objective) {
  return SloTracker::stage_latency_slo(kStageWireToShard, threshold,
                                       objective);
}

TEST(ObsSlo, LatencyWithinObjectiveDoesNotAlert) {
  SloTracker tracker;
  tracker.add(wire_slo(0.1, 0.99));
  // 995/1000 fast: bad_fraction 0.005, budget 0.01 → burn 0.5.
  const auto statuses = tracker.evaluate(
      latency_snapshot(995, 5, "stage=\"wire_to_shard\""));
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].name, "stage_wire_to_shard");
  EXPECT_EQ(statuses[0].samples, 1000u);
  EXPECT_NEAR(statuses[0].bad_fraction, 0.005, 1e-12);
  EXPECT_NEAR(statuses[0].burn_rate, 0.5, 1e-9);
  EXPECT_FALSE(statuses[0].alerting);
}

TEST(ObsSlo, LatencyBudgetOverspendAlerts) {
  SloTracker tracker;
  tracker.add(wire_slo(0.1, 0.99));
  // 950/1000 fast: bad_fraction 0.05 → burn 5.
  const auto statuses = tracker.evaluate(
      latency_snapshot(950, 50, "stage=\"wire_to_shard\""));
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_NEAR(statuses[0].burn_rate, 5.0, 1e-9);
  EXPECT_TRUE(statuses[0].alerting);
}

TEST(ObsSlo, LabelMismatchMeansNoSamplesAndNoAlert) {
  // The histogram exists but under a different stage label: the spec must
  // see zero samples, and zero samples can never alert.
  SloTracker tracker;
  tracker.add(wire_slo(0.1, 0.99));
  const auto statuses = tracker.evaluate(
      latency_snapshot(0, 1000, "stage=\"seal_to_wire\""));
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].samples, 0u);
  EXPECT_FALSE(statuses[0].alerting);
}

TEST(ObsSlo, AvailabilityRatio) {
  SloSpec spec;
  spec.name = "ingest_delivery";
  spec.kind = SloSpec::Kind::kAvailability;
  spec.objective = 0.999;
  spec.good_counter = "tsvpt_acked_total";
  spec.total_counter = "tsvpt_offered_total";
  SloTracker tracker;
  tracker.add(spec);

  Snapshot snapshot;
  snapshot.counters = {{"tsvpt_acked_total", 9980},
                       {"tsvpt_offered_total", 10'000}};
  const auto statuses = tracker.evaluate(snapshot);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].samples, 10'000u);
  EXPECT_NEAR(statuses[0].bad_fraction, 0.002, 1e-12);
  EXPECT_NEAR(statuses[0].burn_rate, 2.0, 1e-9);  // 0.002 / 0.001
  EXPECT_TRUE(statuses[0].alerting);
}

TEST(ObsSlo, AvailabilityGoodClampedToTotal) {
  // good > total (counter race at snapshot time) must clamp, not go
  // negative on bad_fraction.
  SloSpec spec;
  spec.name = "clamp";
  spec.kind = SloSpec::Kind::kAvailability;
  spec.objective = 0.99;
  spec.good_counter = "tsvpt_good_total";
  spec.total_counter = "tsvpt_all_total";
  SloTracker tracker;
  tracker.add(spec);

  Snapshot snapshot;
  snapshot.counters = {{"tsvpt_good_total", 105}, {"tsvpt_all_total", 100}};
  const auto statuses = tracker.evaluate(snapshot);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].bad_fraction, 0.0);
  EXPECT_FALSE(statuses[0].alerting);
}

TEST(ObsSlo, AbsentMetricsEvaluateToZeroSamples) {
  SloTracker tracker;
  tracker.add(wire_slo(0.1, 0.99));
  const auto statuses = tracker.evaluate(Snapshot{});
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].samples, 0u);
  EXPECT_EQ(statuses[0].burn_rate, 0.0);
  EXPECT_FALSE(statuses[0].alerting);
}

TEST(ObsSlo, FullStageWaterfallEvaluates) {
  SloTracker tracker;
  for (const char* stage : all_stages()) {
    tracker.add(SloTracker::stage_latency_slo(stage, 0.1, 0.99));
  }
  EXPECT_EQ(tracker.size(), 5u);
  const auto statuses = tracker.evaluate(
      latency_snapshot(10, 0, "stage=\"capture_to_ring\""));
  ASSERT_EQ(statuses.size(), 5u);
  EXPECT_EQ(statuses[0].name, "stage_capture_to_ring");
  EXPECT_EQ(statuses[0].samples, 10u);
  for (std::size_t i = 1; i < statuses.size(); ++i) {
    EXPECT_EQ(statuses[i].samples, 0u);
  }
}

TEST(ObsSlo, JsonExportIsValid) {
  SloTracker tracker;
  tracker.add(wire_slo(0.1, 0.99));
  const std::string json = to_json(tracker.evaluate(
      latency_snapshot(950, 50, "stage=\"wire_to_shard\"")));
  EXPECT_TRUE(tsvpt::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"name\": \"stage_wire_to_shard\""),
            std::string::npos);
  EXPECT_NE(json.find("\"alerting\": true"), std::string::npos);

  const std::string empty = to_json(std::vector<SloStatus>{});
  EXPECT_TRUE(tsvpt::testing::is_valid_json(empty)) << empty;
}

}  // namespace
}  // namespace tsvpt::obs
