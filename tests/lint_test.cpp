#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "json_check.hpp"
#include "lint/analyzer.hpp"
#include "lint/config.hpp"
#include "lint/lexer.hpp"
#include "lint/sarif.hpp"

namespace tsvpt::lint {
namespace {

// Three-layer demo DAG used by most fixtures: top -> mid -> base.
LayeringConfig demo_layering() {
  LayeringConfig config;
  std::string error;
  const bool ok = parse_layering(
      "[modules]\n"
      "order = [\"base\", \"mid\", \"top\"]\n"
      "[deps]\n"
      "base = []\n"
      "mid = [\"base\"]\n"
      "top = [\"base\", \"mid\"]\n",
      &config, &error);
  EXPECT_TRUE(ok) << error;
  return config;
}

// Flow-rule config: the demo DAG plus small must-consume / lock-order /
// hot-path registries, so fixtures can exercise the flow rules without
// dragging in the tree's full layering.toml.
LayeringConfig flow_layering() {
  LayeringConfig config;
  std::string error;
  const bool ok = parse_layering(
      "[modules]\n"
      "order = [\"base\", \"mid\", \"top\"]\n"
      "[deps]\n"
      "base = []\n"
      "mid = [\"base\"]\n"
      "top = [\"base\", \"mid\"]\n"
      "[must_consume]\n"
      "status_types = [\"DecodeStatus\"]\n"
      "bool_functions = [\"send_all\"]\n"
      "[lock_order]\n"
      "blocking = [\"send_all\", \"fsync\"]\n"
      "[hot_path]\n"
      "io = [\"send_all\", \"fsync\", \"read\"]\n",
      &config, &error);
  EXPECT_TRUE(ok) << error;
  return config;
}

Analyzer::Options only(std::initializer_list<const char*> rules) {
  Analyzer::Options options;
  options.enabled.clear();
  for (const char* rule : rules) options.enabled.insert(rule);
  return options;
}

using Fixture = std::vector<std::pair<std::string, std::string>>;

std::vector<Diagnostic> run(const Fixture& files,
                            Analyzer::Options options = {},
                            Stats* stats_out = nullptr,
                            LayeringConfig config = demo_layering()) {
  Analyzer analyzer{std::move(config), std::move(options)};
  for (const auto& [path, content] : files) {
    analyzer.add_file(path, content);
  }
  std::vector<Diagnostic> diags = analyzer.finish();
  if (stats_out != nullptr) *stats_out = analyzer.stats();
  return diags;
}

bool any_message_contains(const std::vector<Diagnostic>& diags,
                          const std::string& needle) {
  for (const Diagnostic& diag : diags) {
    if (diag.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer edge cases

TEST(LintLexer, RawStringHidesCommentAndQuoteMarkers) {
  const LexResult lex_result =
      lex("auto s = R\"(// not a comment */ \" still string)\";");
  EXPECT_TRUE(lex_result.comments.empty());
  bool found = false;
  for (const Token& tok : lex_result.tokens) {
    if (tok.kind == TokKind::kString) {
      found = true;
      EXPECT_NE(tok.text.find("// not a comment"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, RawStringCustomDelimiterSwallowsPlainCloser) {
  // The `)"` inside must not terminate an R"xy(...)xy" literal.
  const LexResult lex_result = lex("auto s = R\"xy(a )\" b)xy\"; int z;");
  ASSERT_FALSE(lex_result.tokens.empty());
  bool seen_z = false;
  for (const Token& tok : lex_result.tokens) {
    if (tok.kind == TokKind::kString) {
      EXPECT_NE(tok.text.find("a )\" b"), std::string::npos);
    }
    seen_z = seen_z || (tok.kind == TokKind::kIdentifier && tok.text == "z");
  }
  EXPECT_TRUE(seen_z);
}

TEST(LintLexer, LineContinuedCommentSpansLines) {
  const LexResult lex_result = lex(
      "// continued \\\n"
      "still comment\n"
      "int x;\n");
  ASSERT_EQ(lex_result.comments.size(), 1u);
  EXPECT_EQ(lex_result.comments[0].line, 1);
  EXPECT_EQ(lex_result.comments[0].end_line, 2);
  ASSERT_FALSE(lex_result.tokens.empty());
  EXPECT_EQ(lex_result.tokens[0].text, "int");
  EXPECT_EQ(lex_result.tokens[0].line, 3);
}

TEST(LintLexer, BlockCommentLineRange) {
  const LexResult lex_result = lex("/* a\nb\nc */ int y;");
  ASSERT_EQ(lex_result.comments.size(), 1u);
  EXPECT_EQ(lex_result.comments[0].line, 1);
  EXPECT_EQ(lex_result.comments[0].end_line, 3);
  EXPECT_EQ(lex_result.tokens[0].line, 3);
}

TEST(LintLexer, StringLiteralHidesCommentMarkers) {
  const LexResult lex_result = lex("const char* s = \"// /* */\";");
  EXPECT_TRUE(lex_result.comments.empty());
}

TEST(LintLexer, DirectiveTokensFlagged) {
  const LexResult lex_result = lex("#include \"a.hpp\"\nint x;\n");
  bool saw_directive = false;
  for (const Token& tok : lex_result.tokens) {
    if (tok.line == 1) {
      EXPECT_TRUE(tok.in_directive) << tok.text;
      saw_directive = true;
    } else {
      EXPECT_FALSE(tok.in_directive) << tok.text;
    }
  }
  EXPECT_TRUE(saw_directive);
}

// ---------------------------------------------------------------------------
// atomics-contract

TEST(LintAtomics, ImplicitSeqCstIsFlagged) {
  const auto diags = run({{"src/mid/a.cpp",
                           "#include <atomic>\n"
                           "std::atomic<bool> flag;\n"
                           "void f() { flag.store(true); }\n"}},
                         only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleAtomics);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("explicit std::memory_order"),
            std::string::npos);
}

TEST(LintAtomics, ExplicitRelaxedIsClean) {
  Stats stats;
  const auto diags =
      run({{"src/mid/a.cpp",
            "#include <atomic>\n"
            "std::atomic<int> n;\n"
            "void f() { n.fetch_add(1, std::memory_order_relaxed); }\n"}},
          only({kRuleAtomics}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.atomic_sites, 1);
  EXPECT_EQ(stats.atomic_nonrelaxed, 0);
}

TEST(LintAtomics, NonRelaxedInSrcNeedsMoComment) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "#include <atomic>\n"
            "std::atomic<bool> flag;\n"
            "void f() { flag.store(true, std::memory_order_release); }\n"}},
          only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("// mo:"), std::string::npos);
}

TEST(LintAtomics, SameLineMoCommentSatisfies) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <atomic>\n"
        "std::atomic<bool> flag;\n"
        "void f() { flag.store(true, std::memory_order_release); }"
        "  // mo: pairs with g()'s acquire load\n"}},
      only({kRuleAtomics}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintAtomics, MultiLineMoBlockAboveSatisfies) {
  // The `mo:` text sits on the first line of a two-line comment block; the
  // whole contiguous block must count as "immediately above".
  const auto diags =
      run({{"src/mid/a.cpp",
            "#include <atomic>\n"
            "std::atomic<bool> flag;\n"
            "void f() {\n"
            "  // mo: release publishes the payload written above;\n"
            "  // pairs with g()'s acquire load.\n"
            "  flag.store(true, std::memory_order_release);\n"
            "}\n"}},
          only({kRuleAtomics}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintAtomics, NonSrcNeedsNoMoComment) {
  const auto diags =
      run({{"tests/a_test.cpp",
            "#include <atomic>\n"
            "std::atomic<bool> flag;\n"
            "void f() { flag.store(true, std::memory_order_release); }\n"}},
          only({kRuleAtomics}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintAtomics, AtomicInMacroBodyIsStillChecked) {
  const auto diags = run({{"src/mid/a.cpp",
                           "#include <atomic>\n"
                           "std::atomic<bool> flag;\n"
                           "#define PUBLISH() flag.store(true)\n"}},
                         only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintAtomics, FenceCountsAsSite) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <atomic>\n"
        "void f() { std::atomic_thread_fence(std::memory_order_release); }\n"}},
      only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("atomic_thread_fence"), std::string::npos);
}

TEST(LintAtomics, SelfIdentifyingReceiverIsChecked) {
  // `ticket` is declared in another TU we have not seen, but the call names
  // a memory_order, which marks it as an atomic site on its own.
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f(Cell& c) { c.seq.load(std::memory_order_acquire); }\n"}},
          only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("non-relaxed"), std::string::npos);
}

TEST(LintAtomics, SubscriptedReceiverResolvesToDeclaredAtomic) {
  const auto diags = run({{"src/mid/a.cpp",
                           "#include <atomic>\n"
                           "std::atomic<int> seq;\n"
                           "void f() { cells[i & mask].seq.load(); }\n"}},
                         only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

// ---------------------------------------------------------------------------
// determinism-ban

TEST(LintDeterminism, RandCallIsFlaggedInSrc) {
  const auto diags = run({{"src/mid/a.cpp", "int f() { return rand(); }\n"}},
                         only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleDeterminism);
  EXPECT_NE(diags[0].message.find("ptsim::Rng"), std::string::npos);
}

TEST(LintDeterminism, FunctionDeclarationNamedRandomIsNotACall) {
  const auto diags =
      run({{"src/mid/a.hpp",
            "#pragma once\n"
            "struct W { static W random(int seed); };\n"
            "W* time(int);\n"}},
          only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, RandomDeviceBannedOutsideRng) {
  const auto outside = run({{"src/mid/a.cpp", "std::random_device rd;\n"}},
                           only({kRuleDeterminism}));
  ASSERT_EQ(outside.size(), 1u);
  EXPECT_NE(outside[0].message.find("random_device"), std::string::npos);

  const auto inside = run({{"src/ptsim/rng.cpp", "std::random_device rd;\n"}},
                          only({kRuleDeterminism}));
  EXPECT_TRUE(inside.empty());
}

TEST(LintDeterminism, SystemClockBannedInSrc) {
  const auto diags = run(
      {{"src/mid/a.cpp", "auto t = std::chrono::system_clock::now();\n"}},
      only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("system_clock"), std::string::npos);
}

TEST(LintDeterminism, TestsAreExempt) {
  const auto diags = run({{"tests/a_test.cpp", "int f() { return rand(); }\n"}},
                         only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, MutableGlobalInPhysicsModuleIsFlagged) {
  const auto diags = run({{"src/core/state.cpp",
                           "namespace tsvpt::core {\n"
                           "int call_count = 0;\n"
                           "}  // namespace tsvpt::core\n"}},
                         only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("call_count"), std::string::npos);
}

TEST(LintDeterminism, ConstexprAndLocalsAreNotGlobals) {
  const auto diags = run({{"src/core/state.cpp",
                           "namespace tsvpt::core {\n"
                           "constexpr int kLimit = 8;\n"
                           "const double kGain = 1.5;\n"
                           "int helper() { int local = 0; return local; }\n"
                           "}  // namespace tsvpt::core\n"}},
                         only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, NonPhysicsModuleMayHoldState) {
  // Mutable namespace-scope state is only banned in device/process/circuit/
  // core; the telemetry registry pattern stays legal.
  const auto diags = run({{"src/telemetry/reg.cpp",
                           "namespace tsvpt::telemetry {\n"
                           "int registry_epoch = 0;\n"
                           "}\n"}},
                         only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// header-hygiene

TEST(LintHygiene, MissingPragmaOnce) {
  const auto diags = run({{"src/mid/a.hpp", "int f();\n"}},
                         only({kRuleHygiene}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("#pragma once"), std::string::npos);
}

TEST(LintHygiene, UsingNamespaceInHeader) {
  const auto diags = run({{"src/mid/a.hpp",
                           "#pragma once\n"
                           "using namespace std;\n"}},
                         only({kRuleHygiene}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("using namespace"), std::string::npos);
}

TEST(LintHygiene, SelfIncludeMustComeFirst) {
  const Fixture wrong = {
      {"src/mid/widget.hpp", "#pragma once\nint f();\n"},
      {"src/mid/widget.cpp",
       "#include <vector>\n#include \"mid/widget.hpp\"\nint f() { return 1; }\n"},
  };
  const auto diags = run(wrong, only({kRuleHygiene}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("own header"), std::string::npos);

  const Fixture right = {
      {"src/mid/widget.hpp", "#pragma once\nint f();\n"},
      {"src/mid/widget.cpp",
       "#include \"mid/widget.hpp\"\n#include <vector>\nint f() { return 1; }\n"},
  };
  EXPECT_TRUE(run(right, only({kRuleHygiene})).empty());
}

TEST(LintHygiene, CppWithoutSiblingHeaderIsExempt) {
  const auto diags = run(
      {{"src/mid/main.cpp", "#include <vector>\nint main() { return 0; }\n"}},
      only({kRuleHygiene}));
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// metric-name

TEST(LintMetricName, MissingPrefixIsFlagged) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() { obs::counter(\"frames_total\").add(1); }\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleMetricName);
  EXPECT_NE(diags[0].message.find("tsvpt_[a-z0-9_]+"), std::string::npos);
}

TEST(LintMetricName, UppercaseAndDashesAreFlagged) {
  const auto diags = run({{"src/mid/a.cpp",
                           "void f() {\n"
                           "  obs::counter(\"tsvpt_Frames_total\").add(1);\n"
                           "  obs::gauge(\"tsvpt_ring-depth_frames\").set(1);\n"
                           "}\n"}},
                         only({kRuleMetricName}));
  EXPECT_EQ(diags.size(), 2u);
}

TEST(LintMetricName, EmptySegmentsAreFlagged) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() {\n"
            "  obs::counter(\"tsvpt__frames_total\").add(1);\n"
            "  obs::counter(\"tsvpt_frames_total_\").add(1);\n"
            "}\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "empty name segments"));
}

TEST(LintMetricName, CounterMustEndTotal) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() { obs::counter(\"tsvpt_frames\").add(1); }\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'_total'"), std::string::npos);
}

TEST(LintMetricName, HistogramMustEndUnitSuffix) {
  const auto bad =
      run({{"src/mid/a.cpp",
            "void f() { obs::histogram(\"tsvpt_latency\").observe(1.0); }\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_TRUE(any_message_contains(bad, "unit suffix"));

  const auto good = run(
      {{"src/mid/a.cpp",
        "void f() {\n"
        "  obs::histogram(\"tsvpt_latency_seconds\").observe(1.0);\n"
        "  obs::histogram(\"tsvpt_batch_bytes\").observe(1.0);\n"
        "  obs::histogram(\"tsvpt_die_celsius\").observe(1.0);\n"
        "}\n"}},
      only({kRuleMetricName}));
  EXPECT_TRUE(good.empty());
}

TEST(LintMetricName, GaugeSuffixContract) {
  // `_total` is reserved for counters; a bare noun is missing its unit or
  // countable suffix; the countable set is accepted.
  const auto bad = run({{"src/mid/a.cpp",
                         "void f() {\n"
                         "  obs::gauge(\"tsvpt_spill_total\").set(1);\n"
                         "  obs::gauge(\"tsvpt_spill_depth\").set(1);\n"
                         "}\n"}},
                       only({kRuleMetricName}));
  ASSERT_EQ(bad.size(), 2u);
  EXPECT_TRUE(any_message_contains(bad, "reserved for counters"));
  EXPECT_TRUE(any_message_contains(bad, "countable suffix"));

  const auto good =
      run({{"src/mid/a.cpp",
            "void f() {\n"
            "  obs::gauge(\"tsvpt_spill_depth_batches\").set(1);\n"
            "  obs::gauge(\"tsvpt_open_connections\").set(1);\n"
            "  obs::gauge(\"tsvpt_duty_ratio\").set(0.5);\n"
            "}\n"}},
          only({kRuleMetricName}));
  EXPECT_TRUE(good.empty());
}

TEST(LintMetricName, NonLiteralFirstArgumentIsExempt) {
  // A shared constant is named (and linted) at its defining literal; the
  // registration through the constant must not be double-flagged.
  Stats stats;
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() { obs::histogram(kStageLatencyMetric, \"stage\", "
            "\"seal\").observe(1.0); }\n"}},
          only({kRuleMetricName}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.metric_names_checked, 0);
}

TEST(LintMetricName, NonSrcIsExempt) {
  const auto diags =
      run({{"tests/a_test.cpp",
            "void f() { obs::counter(\"bad name\").add(1); }\n"}},
          only({kRuleMetricName}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintMetricName, CompliantRegistrationsCountAsChecked) {
  Stats stats;
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() {\n"
            "  obs::counter(\"tsvpt_ingest_frames_total\").add(1);\n"
            "  obs::histogram(\"tsvpt_stage_latency_seconds\").observe(1.0);\n"
            "  obs::gauge(\"tsvpt_ring_depth_frames\").set(3);\n"
            "}\n"}},
          only({kRuleMetricName}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.metric_names_checked, 3);
}

TEST(LintMetricName, AllowWithReasonSuppresses) {
  Stats stats;
  const auto diags = run(
      {{"src/mid/a.cpp",
        "void f() { obs::counter(\"legacy_frames\").add(1); }  "
        "// lint:allow(metric-name): grandfathered dashboard key\n"}},
      only({kRuleMetricName}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.suppressions_used, 1);
}

// ---------------------------------------------------------------------------
// layering-dag

TEST(LintLayering, UndeclaredEdgeIsFlagged) {
  const auto diags =
      run({{"src/base/a.cpp", "#include \"mid/b.hpp\"\n"}},
          only({kRuleLayering}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("undeclared edge base -> mid"),
            std::string::npos);
}

TEST(LintLayering, DeclaredEdgeAndLocalIncludesAreClean) {
  const auto diags = run({{"src/top/a.cpp",
                           "#include \"mid/b.hpp\"\n"
                           "#include \"top/detail.hpp\"\n"
                           "#include \"helper.hpp\"\n"
                           "#include <vector>\n"}},
                         only({kRuleLayering}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintLayering, UnknownModuleIsFlagged) {
  const auto diags = run({{"src/rogue/a.cpp", "int x;\n"}},
                         only({kRuleLayering}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("not declared"), std::string::npos);
}

TEST(LintLayering, DeclaredCycleYieldsBackEdgeDiagnostic) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(parse_layering(
      "[modules]\norder = [\"a\", \"b\"]\n[deps]\na = [\"b\"]\nb = [\"a\"]\n",
      &config, &error))
      << error;
  const auto diags = run({}, only({kRuleLayering}), nullptr, config);
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "back-edge"));
  EXPECT_EQ(diags[0].file, "tools/lint/layering.toml");
}

TEST(LintLayering, SelfEdgeIsRejected) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(parse_layering(
      "[modules]\norder = [\"a\"]\n[deps]\na = [\"a\"]\n", &config, &error));
  const auto diags = run({}, only({kRuleLayering}), nullptr, config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(any_message_contains(diags, "back-edge"));
}

TEST(LintLayering, AuditFlagsDeclaredButUnusedEdges) {
  Analyzer::Options options = only({kRuleLayering});
  options.layering_audit = true;
  // top -> mid is exercised; mid -> base and top -> base are not.
  const auto diags =
      run({{"src/top/a.cpp", "#include \"mid/b.hpp\"\n"}}, options);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "mid -> base"));
  EXPECT_TRUE(any_message_contains(diags, "top -> base"));
  EXPECT_TRUE(any_message_contains(diags, "not used by any include"));
}

// ---------------------------------------------------------------------------
// suppressions

TEST(LintSuppression, AllowWithReasonSuppresses) {
  Stats stats;
  const auto diags = run(
      {{"src/mid/a.cpp",
        "int f() { return rand(); }  "
        "// lint:allow(determinism-ban): fixture exercises legacy path\n"}},
      only({kRuleDeterminism}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.suppressions_used, 1);
}

TEST(LintSuppression, OwnLineAllowCoversNextLine) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "// lint:allow(determinism-ban): fixture exercises legacy path\n"
        "int f() { return rand(); }\n"}},
      only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, ReasonIsMandatory) {
  const auto diags = run({{"src/mid/a.cpp",
                           "int f() { return rand(); }  "
                           "// lint:allow(determinism-ban)\n"}},
                         only({kRuleDeterminism}));
  // The original diagnostic survives AND the reason-less allow is diagnosed.
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "must carry a reason"));
  EXPECT_TRUE(any_message_contains(diags, "banned in src/"));
}

TEST(LintSuppression, UnknownRuleNameIsDiagnosed) {
  const auto diags = run(
      {{"src/mid/a.cpp", "// lint:allow(no-such-rule): whatever\nint x;\n"}},
      only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleSuppression);
  EXPECT_TRUE(any_message_contains(diags, "unknown rule"));
}

TEST(LintSuppression, UnusedAllowIsDiagnosed) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "// lint:allow(determinism-ban): nothing here actually fires\n"
        "int f() { return 1; }\n"}},
      only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(any_message_contains(diags, "never matched"));
}

TEST(LintSuppression, ProseMentionIsNotADirective) {
  // A comment *talking about* lint:allow(rule) mid-sentence must not be
  // parsed as a suppression (and thus must not be flagged as unused).
  const auto diags = run(
      {{"src/mid/a.cpp",
        "// Suppress with lint:allow(determinism-ban): reason, like this.\n"
        "int f() { return 1; }\n"}},
      only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// output formats

TEST(LintOutput, FormatDiagnostic) {
  Diagnostic diag;
  diag.file = "src/mid/a.cpp";
  diag.line = 12;
  diag.rule = kRuleDeterminism;
  diag.message = "msg";
  EXPECT_EQ(format_diagnostic(diag), "src/mid/a.cpp:12: [determinism-ban] msg");
}

TEST(LintOutput, JsonReportIsValidJson) {
  Stats stats;
  const auto diags = run({{"src/mid/a.cpp",
                           "int f() { return rand(); }\n"
                           "const char* s = \"quote \\\" and \\\\ inside\";\n"}},
                         only({kRuleDeterminism}), &stats);
  ASSERT_EQ(diags.size(), 1u);
  const std::string report = json_report(diags, stats);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(report)) << report;
  EXPECT_NE(report.find("\"clean\": false"), std::string::npos);

  const std::string clean = json_report({}, stats);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(clean)) << clean;
  EXPECT_NE(clean.find("\"clean\": true"), std::string::npos);
}

TEST(LintOutput, RuleCatalogIsStable) {
  const auto& rules = all_rules();
  ASSERT_EQ(rules.size(), 9u);
  for (const std::string& rule : rules) {
    EXPECT_FALSE(rule_description(rule).empty()) << rule;
  }
}

// ---------------------------------------------------------------------------
// layering config parser

TEST(LintConfig, MultiLineListsParse) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(parse_layering(
      "[modules]\n"
      "order = [\"a\",  # trailing comment\n"
      "         \"b\"]\n"
      "[deps]\na = []\nb = [\"a\"]\n",
      &config, &error))
      << error;
  ASSERT_EQ(config.modules.size(), 2u);
  EXPECT_EQ(config.modules[1], "b");
}

TEST(LintConfig, RejectsModuleWithoutDepsEntry) {
  LayeringConfig config;
  std::string error;
  EXPECT_FALSE(parse_layering("[modules]\norder = [\"a\"]\n[deps]\n", &config,
                              &error));
  EXPECT_NE(error.find("no [deps] entry"), std::string::npos);
}

TEST(LintConfig, RejectsUnknownDependency) {
  LayeringConfig config;
  std::string error;
  EXPECT_FALSE(parse_layering(
      "[modules]\norder = [\"a\"]\n[deps]\na = [\"ghost\"]\n", &config,
      &error));
  EXPECT_NE(error.find("unknown module"), std::string::npos);
}

// ---------------------------------------------------------------------------
// lock-order graph

TEST(LintLockOrder, ConsistentOrderAcrossFunctionsIsClean) {
  Stats stats;
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "std::mutex mu_b;\n"
        "void first() {\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "}\n"
        "void second() {\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "}\n"}},
      only({kRuleLockOrder}), &stats, flow_layering());
  EXPECT_TRUE(diags.empty()) << diags.size();
  EXPECT_EQ(stats.lock_sites, 4);
  EXPECT_EQ(stats.lock_edges, 1);
}

TEST(LintLockOrder, DetectsSeededTwoMutexInversion) {
  // The seeded deadlock: one function takes a then b, the other b then a.
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "std::mutex mu_b;\n"
        "void forward() {\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "}\n"},
       {"src/mid/b.cpp",
        "#include <mutex>\n"
        "extern std::mutex mu_a;\n"
        "extern std::mutex mu_b;\n"
        "void backward() {\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleLockOrder);
  EXPECT_NE(diags[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(diags[0].message.find("'mu_a' -> 'mu_b'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("can deadlock"), std::string::npos);
}

TEST(LintLockOrder, MemberMutexesResolveToClassQualifiedKeysAcrossTus) {
  // The class body lives in one file, the inverted method in another: the
  // cycle only falls out if both TUs resolve `mu_` to `Store::mu_`.
  const auto diags = run(
      {{"src/mid/store.cpp",
        "#include <mutex>\n"
        "class Store {\n"
        " public:\n"
        "  void fill();\n"
        "  void drain();\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "  std::mutex compact_;\n"
        "};\n"
        "void Store::fill() {\n"
        "  std::lock_guard<std::mutex> g1{mu_};\n"
        "  std::lock_guard<std::mutex> g2{compact_};\n"
        "}\n"},
       {"src/mid/compact.cpp",
        "#include <mutex>\n"
        "#include \"store.hpp\"\n"
        "void Store::drain() {\n"
        "  std::lock_guard<std::mutex> g1{compact_};\n"
        "  std::lock_guard<std::mutex> g2{mu_};\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'Store::compact_' -> 'Store::mu_'"),
            std::string::npos)
      << diags[0].message;
}

TEST(LintLockOrder, ScopedLockMultiArgGainsNoInternalEdges) {
  // std::scoped_lock's multi-arg form uses deadlock-avoiding std::lock, so
  // opposite argument orders in two functions must not read as an inversion.
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "std::mutex mu_b;\n"
        "void forward() { std::scoped_lock g{mu_a, mu_b}; }\n"
        "void backward() { std::scoped_lock g{mu_b, mu_a}; }\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

TEST(LintLockOrder, DeferLockDoesNotAcquire) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "std::mutex mu_b;\n"
        "void forward() {\n"
        "  std::unique_lock<std::mutex> ga{mu_a, std::defer_lock};\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "}\n"
        "void backward() {\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

TEST(LintLockOrder, ExplicitUnlockReleasesTheHold) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "std::mutex mu_b;\n"
        "void forward() {\n"
        "  std::unique_lock<std::mutex> ga{mu_a};\n"
        "  ga.unlock();\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "}\n"
        "void backward() {\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

TEST(LintLockOrder, ScopeExitReleasesBeforeLaterAcquisition) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "std::mutex mu_b;\n"
        "void forward() {\n"
        "  { std::lock_guard<std::mutex> ga{mu_a}; }\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "}\n"
        "void backward() {\n"
        "  std::lock_guard<std::mutex> gb{mu_b};\n"
        "  std::lock_guard<std::mutex> ga{mu_a};\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

TEST(LintLockOrder, BlockingCallUnderLockIsDiagnosed) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "void hold_and_send(int fd) {\n"
        "  std::lock_guard<std::mutex> g{mu_a};\n"
        "  send_all(fd);\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("blocking call 'send_all' while holding"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("'mu_a'"), std::string::npos);
}

TEST(LintLockOrder, BlockingCallAfterGuardScopeIsClean) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "void send_unlocked(int fd) {\n"
        "  { std::lock_guard<std::mutex> g{mu_a}; }\n"
        "  send_all(fd);\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

TEST(LintLockOrder, SuppressionWithReasonIsHonoured) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <mutex>\n"
        "std::mutex mu_a;\n"
        "void hold_and_send(int fd) {\n"
        "  std::lock_guard<std::mutex> g{mu_a};\n"
        "  // lint:allow(lock-order): peer is a localhost pipe, cannot stall\n"
        "  send_all(fd);\n"
        "}\n"}},
      only({kRuleLockOrder}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// must-consume statuses

TEST(LintMustConsume, DiscardedStatusCallIsDiagnosed) {
  const auto diags = run(
      {{"src/base/codec.hpp", "DecodeStatus decode(int frame);\n"},
       {"src/mid/a.cpp", "void f() { decode(1); }\n"}},
      only({kRuleMustConsume}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/mid/a.cpp");
  EXPECT_NE(
      diags[0].message.find("status result of 'decode' (returns "
                            "'DecodeStatus') is discarded"),
      std::string::npos);
}

TEST(LintMustConsume, ConsumedCallSitesAreClean) {
  Stats stats;
  const auto diags = run(
      {{"src/base/codec.hpp", "DecodeStatus decode(int frame);\n"},
       {"src/mid/a.cpp",
        "DecodeStatus keep() { return decode(1); }\n"
        "void assign() { DecodeStatus s = decode(2); (void)s; }\n"
        "bool compare() { return decode(3) == DecodeStatus::kOk; }\n"
        "void cast_away() { (void)decode(4); }\n"}},
      only({kRuleMustConsume}), &stats, flow_layering());
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.must_consume_sites, 4);
}

TEST(LintMustConsume, DeclarationIsNotACallSite) {
  const auto diags = run(
      {{"src/base/codec.hpp",
        "DecodeStatus decode(int frame);\n"
        "DecodeStatus decode(int frame, bool strict);\n"}},
      only({kRuleMustConsume}), nullptr, flow_layering());
  EXPECT_TRUE(diags.empty());
}

TEST(LintMustConsume, RegisteredBoolFunctionMustBeConsumed) {
  const auto diags = run(
      {{"src/mid/a.cpp", "void f(int fd) { send_all(fd); }\n"}},
      only({kRuleMustConsume}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'send_all' (registered bool status)"),
            std::string::npos);
}

TEST(LintMustConsume, UnbracedControlBodyStillDropsTheValue) {
  const auto diags = run(
      {{"src/base/codec.hpp", "DecodeStatus decode(int frame);\n"},
       {"src/mid/a.cpp", "void f(int fd) { if (fd) decode(fd); }\n"}},
      only({kRuleMustConsume}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("is discarded"), std::string::npos);
}

TEST(LintMustConsume, MemberChainReceiverCountsAsConsumption) {
  // `parser.decode(1);` discards too, but `log(parser.decode(1));` consumes.
  const auto diags = run(
      {{"src/base/codec.hpp", "DecodeStatus decode(int frame);\n"},
       {"src/mid/a.cpp",
        "void drop(Parser& parser) { parser.decode(1); }\n"
        "void feed(Parser& parser) { log(parser.decode(2)); }\n"}},
      only({kRuleMustConsume}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1);
}

// ---------------------------------------------------------------------------
// wire-layout contracts

TEST(LintWireLayout, ContiguousLayoutIsClean) {
  Stats stats;
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=8 crc=[0,4)\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"
        "inline constexpr std::size_t kBOffset = 4;  // field: b size=4\n"}},
      only({kRuleWireLayout}), &stats, flow_layering());
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.layouts_checked, 1);
  EXPECT_EQ(stats.layout_fields, 2);
}

TEST(LintWireLayout, DetectsSeededOffByOneOffset) {
  // The seeded header bug: field b starts one byte past the end of a.
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=9\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"
        "inline constexpr std::size_t kBOffset = 5;  // field: b size=4\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find(
                "1-byte gap between 'a' (ends 4) and 'b' (starts 5)"),
            std::string::npos);
}

TEST(LintWireLayout, DetectsOverlappingFields) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=7\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"
        "inline constexpr std::size_t kBOffset = 3;  // field: b size=4\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("overlaps 'a'"), std::string::npos);
}

TEST(LintWireLayout, FirstFieldMustStartAtZero) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=8\n"
        "inline constexpr std::size_t kAOffset = 2;  // field: a size=6\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("starts at offset 2, expected 0"),
            std::string::npos);
}

TEST(LintWireLayout, FieldsMustCoverTheDeclaredSize) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=8\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"
        "inline constexpr std::size_t kBOffset = 4;  // field: b size=2\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find(
                "fields cover [0,6) but the layout declares size=8"),
            std::string::npos);
}

TEST(LintWireLayout, CrcSpanMustLieInsideTheHeader) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=8 crc=[0,12)\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=8\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("crc span [0,12) must lie inside [0,8)"),
            std::string::npos);
}

TEST(LintWireLayout, CrcFieldInsideItsOwnCoverageIsDiagnosed) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=8 crc=[0,8)\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"
        "inline constexpr std::size_t kCrcOffset = 4;"
        "  // field: header_crc size=4\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("lies inside its own coverage span"),
            std::string::npos);
}

TEST(LintWireLayout, DanglingFieldDirectiveIsDiagnosed) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("no preceding layout directive"),
            std::string::npos);
}

TEST(LintWireLayout, DuplicateLayoutNameAcrossFilesIsDiagnosed) {
  const auto diags = run(
      {{"src/base/wire.hpp",
        "// layout: demo size=4\n"
        "inline constexpr std::size_t kAOffset = 0;  // field: a size=4\n"},
       {"src/mid/wire2.hpp",
        "// layout: demo size=4\n"
        "inline constexpr std::size_t kBOffset = 0;  // field: b size=4\n"}},
      only({kRuleWireLayout}), nullptr, flow_layering());
  // The rejected duplicate also orphans its field directive, so two
  // diagnostics: the redeclaration and the dangling field.
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "already declared at"));
  EXPECT_TRUE(any_message_contains(diags, "no preceding layout directive"));
}

// ---------------------------------------------------------------------------
// hot-path bans

TEST(LintHotPath, CleanContractedFunctionPasses) {
  Stats stats;
  const auto diags = run(
      {{"src/base/fast.hpp",
        "// hot: per-frame conversion path\n"
        "int fast(int x) { return x + 1; }\n"}},
      only({kRuleHotPath}), &stats, flow_layering());
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.hot_functions, 1);
}

TEST(LintHotPath, AllocationInHotFunctionIsDiagnosed) {
  const auto diags = run(
      {{"src/base/fast.cpp",
        "#include <vector>\n"
        "std::vector<int> sink;\n"
        "// hot: per-frame append path\n"
        "void record(int x) { sink.push_back(x); }\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'push_back' allocates inside 'record'"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("bans alloc"), std::string::npos);
}

TEST(LintHotPath, SubsetContractBansOnlyListedCategories) {
  // A hot(alloc) contract tolerates the throw but not the vector growth.
  const auto diags = run(
      {{"src/base/fast.cpp",
        "// hot(alloc): bounds check may throw, that is fine\n"
        "int pick(int i) {\n"
        "  if (i < 0) throw 1;\n"
        "  return i;\n"
        "}\n"
        "// hot(alloc): no growth on this path\n"
        "void grow(std::vector<int>& v) { v.resize(8); }\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'resize' allocates inside 'grow'"),
            std::string::npos);
}

TEST(LintHotPath, TransitiveCalleeViolationIsDiagnosed) {
  // The hot function itself is clean; its callee (defined in another file)
  // throws, and the ban is enforced one call level deep.
  const auto diags = run(
      {{"src/base/helper.cpp",
        "void validate(int x) { if (x < 0) throw 1; }\n"},
       {"src/mid/outer.cpp",
        "// hot: no exceptions on the scan path\n"
        "void outer(int x) { validate(x); }\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("call to 'validate'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("which throws"), std::string::npos);
  EXPECT_NE(diags[0].message.find("(transitive, depth 1)"),
            std::string::npos);
}

TEST(LintHotPath, LockAcquisitionInHotFunctionIsDiagnosed) {
  const auto diags = run(
      {{"src/base/fast.cpp",
        "#include <mutex>\n"
        "std::mutex mu;\n"
        "// hot: wait-free by contract\n"
        "int locked_get(int x) {\n"
        "  std::lock_guard<std::mutex> g{mu};\n"
        "  return x;\n"
        "}\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("acquires a lock"), std::string::npos);
}

TEST(LintHotPath, FreeIoCallIsDiagnosedButMemberReadIsNot) {
  // `read` is in the io registry: the bare call is the syscall, while
  // `sensor.read(...)` is a method on a model object and must not count.
  const auto diags = run(
      {{"src/base/fast.cpp",
        "// hot: sensor conversion path\n"
        "int sample(Sensor& sensor) { return sensor.read(); }\n"
        "// hot: but this one really does io\n"
        "int slurp() { return read(); }\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("performs blocking io"), std::string::npos);
}

TEST(LintHotPath, MalformedContractIsDiagnosed) {
  const auto diags = run(
      {{"src/base/fast.cpp",
        "// hot(bogus): not a category\n"
        "int f(int x) { return x; }\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("unknown hot contract category 'bogus'"),
            std::string::npos);
}

TEST(LintHotPath, ContractWithoutReasonIsDiagnosed) {
  const auto diags = run(
      {{"src/base/fast.cpp",
        "// hot:\n"
        "int f(int x) { return x; }\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("must carry a reason"), std::string::npos);
}

TEST(LintHotPath, DanglingContractIsDiagnosed) {
  const auto diags = run(
      {{"src/base/fast.cpp",
        "// hot: floats free above a plain variable\n"
        "int x = 3;\n"}},
      only({kRuleHotPath}), nullptr, flow_layering());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("attaches to no function definition"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF output

TEST(LintSarif, ReportIsValidJsonWithRuleIds) {
  const auto diags = run({{"src/mid/a.cpp", "int f() { return rand(); }\n"}},
                         only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  const std::string report = sarif_report(diags);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(report)) << report;
  EXPECT_NE(report.find("\"ruleId\": \"determinism-ban\""),
            std::string::npos);
  EXPECT_NE(report.find("src/mid/a.cpp"), std::string::npos);
  EXPECT_NE(report.find("\"version\": \"2.1.0\""), std::string::npos);
}

TEST(LintSarif, EmptyReportIsValidJson) {
  const std::string report = sarif_report({});
  EXPECT_TRUE(tsvpt::testing::is_valid_json(report)) << report;
  EXPECT_NE(report.find("\"results\": []"), std::string::npos);
}

TEST(LintConfig, FlowRegistrySectionsParse) {
  const LayeringConfig config = flow_layering();
  EXPECT_EQ(config.status_types.count("DecodeStatus"), 1u);
  EXPECT_EQ(config.consume_bool_functions.count("send_all"), 1u);
  EXPECT_EQ(config.blocking_calls.count("fsync"), 1u);
  EXPECT_EQ(config.hot_io_calls.count("read"), 1u);
}

}  // namespace
}  // namespace tsvpt::lint
