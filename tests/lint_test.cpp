#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "json_check.hpp"
#include "lint/analyzer.hpp"
#include "lint/config.hpp"
#include "lint/lexer.hpp"

namespace tsvpt::lint {
namespace {

// Three-layer demo DAG used by most fixtures: top -> mid -> base.
LayeringConfig demo_layering() {
  LayeringConfig config;
  std::string error;
  const bool ok = parse_layering(
      "[modules]\n"
      "order = [\"base\", \"mid\", \"top\"]\n"
      "[deps]\n"
      "base = []\n"
      "mid = [\"base\"]\n"
      "top = [\"base\", \"mid\"]\n",
      &config, &error);
  EXPECT_TRUE(ok) << error;
  return config;
}

Analyzer::Options only(std::initializer_list<const char*> rules) {
  Analyzer::Options options;
  options.enabled.clear();
  for (const char* rule : rules) options.enabled.insert(rule);
  return options;
}

using Fixture = std::vector<std::pair<std::string, std::string>>;

std::vector<Diagnostic> run(const Fixture& files,
                            Analyzer::Options options = {},
                            Stats* stats_out = nullptr,
                            LayeringConfig config = demo_layering()) {
  Analyzer analyzer{std::move(config), std::move(options)};
  for (const auto& [path, content] : files) {
    analyzer.add_file(path, content);
  }
  std::vector<Diagnostic> diags = analyzer.finish();
  if (stats_out != nullptr) *stats_out = analyzer.stats();
  return diags;
}

bool any_message_contains(const std::vector<Diagnostic>& diags,
                          const std::string& needle) {
  for (const Diagnostic& diag : diags) {
    if (diag.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer edge cases

TEST(LintLexer, RawStringHidesCommentAndQuoteMarkers) {
  const LexResult lex_result =
      lex("auto s = R\"(// not a comment */ \" still string)\";");
  EXPECT_TRUE(lex_result.comments.empty());
  bool found = false;
  for (const Token& tok : lex_result.tokens) {
    if (tok.kind == TokKind::kString) {
      found = true;
      EXPECT_NE(tok.text.find("// not a comment"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, RawStringCustomDelimiterSwallowsPlainCloser) {
  // The `)"` inside must not terminate an R"xy(...)xy" literal.
  const LexResult lex_result = lex("auto s = R\"xy(a )\" b)xy\"; int z;");
  ASSERT_FALSE(lex_result.tokens.empty());
  bool seen_z = false;
  for (const Token& tok : lex_result.tokens) {
    if (tok.kind == TokKind::kString) {
      EXPECT_NE(tok.text.find("a )\" b"), std::string::npos);
    }
    seen_z = seen_z || (tok.kind == TokKind::kIdentifier && tok.text == "z");
  }
  EXPECT_TRUE(seen_z);
}

TEST(LintLexer, LineContinuedCommentSpansLines) {
  const LexResult lex_result = lex(
      "// continued \\\n"
      "still comment\n"
      "int x;\n");
  ASSERT_EQ(lex_result.comments.size(), 1u);
  EXPECT_EQ(lex_result.comments[0].line, 1);
  EXPECT_EQ(lex_result.comments[0].end_line, 2);
  ASSERT_FALSE(lex_result.tokens.empty());
  EXPECT_EQ(lex_result.tokens[0].text, "int");
  EXPECT_EQ(lex_result.tokens[0].line, 3);
}

TEST(LintLexer, BlockCommentLineRange) {
  const LexResult lex_result = lex("/* a\nb\nc */ int y;");
  ASSERT_EQ(lex_result.comments.size(), 1u);
  EXPECT_EQ(lex_result.comments[0].line, 1);
  EXPECT_EQ(lex_result.comments[0].end_line, 3);
  EXPECT_EQ(lex_result.tokens[0].line, 3);
}

TEST(LintLexer, StringLiteralHidesCommentMarkers) {
  const LexResult lex_result = lex("const char* s = \"// /* */\";");
  EXPECT_TRUE(lex_result.comments.empty());
}

TEST(LintLexer, DirectiveTokensFlagged) {
  const LexResult lex_result = lex("#include \"a.hpp\"\nint x;\n");
  bool saw_directive = false;
  for (const Token& tok : lex_result.tokens) {
    if (tok.line == 1) {
      EXPECT_TRUE(tok.in_directive) << tok.text;
      saw_directive = true;
    } else {
      EXPECT_FALSE(tok.in_directive) << tok.text;
    }
  }
  EXPECT_TRUE(saw_directive);
}

// ---------------------------------------------------------------------------
// atomics-contract

TEST(LintAtomics, ImplicitSeqCstIsFlagged) {
  const auto diags = run({{"src/mid/a.cpp",
                           "#include <atomic>\n"
                           "std::atomic<bool> flag;\n"
                           "void f() { flag.store(true); }\n"}},
                         only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleAtomics);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("explicit std::memory_order"),
            std::string::npos);
}

TEST(LintAtomics, ExplicitRelaxedIsClean) {
  Stats stats;
  const auto diags =
      run({{"src/mid/a.cpp",
            "#include <atomic>\n"
            "std::atomic<int> n;\n"
            "void f() { n.fetch_add(1, std::memory_order_relaxed); }\n"}},
          only({kRuleAtomics}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.atomic_sites, 1);
  EXPECT_EQ(stats.atomic_nonrelaxed, 0);
}

TEST(LintAtomics, NonRelaxedInSrcNeedsMoComment) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "#include <atomic>\n"
            "std::atomic<bool> flag;\n"
            "void f() { flag.store(true, std::memory_order_release); }\n"}},
          only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("// mo:"), std::string::npos);
}

TEST(LintAtomics, SameLineMoCommentSatisfies) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <atomic>\n"
        "std::atomic<bool> flag;\n"
        "void f() { flag.store(true, std::memory_order_release); }"
        "  // mo: pairs with g()'s acquire load\n"}},
      only({kRuleAtomics}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintAtomics, MultiLineMoBlockAboveSatisfies) {
  // The `mo:` text sits on the first line of a two-line comment block; the
  // whole contiguous block must count as "immediately above".
  const auto diags =
      run({{"src/mid/a.cpp",
            "#include <atomic>\n"
            "std::atomic<bool> flag;\n"
            "void f() {\n"
            "  // mo: release publishes the payload written above;\n"
            "  // pairs with g()'s acquire load.\n"
            "  flag.store(true, std::memory_order_release);\n"
            "}\n"}},
          only({kRuleAtomics}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintAtomics, NonSrcNeedsNoMoComment) {
  const auto diags =
      run({{"tests/a_test.cpp",
            "#include <atomic>\n"
            "std::atomic<bool> flag;\n"
            "void f() { flag.store(true, std::memory_order_release); }\n"}},
          only({kRuleAtomics}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintAtomics, AtomicInMacroBodyIsStillChecked) {
  const auto diags = run({{"src/mid/a.cpp",
                           "#include <atomic>\n"
                           "std::atomic<bool> flag;\n"
                           "#define PUBLISH() flag.store(true)\n"}},
                         only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintAtomics, FenceCountsAsSite) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "#include <atomic>\n"
        "void f() { std::atomic_thread_fence(std::memory_order_release); }\n"}},
      only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("atomic_thread_fence"), std::string::npos);
}

TEST(LintAtomics, SelfIdentifyingReceiverIsChecked) {
  // `ticket` is declared in another TU we have not seen, but the call names
  // a memory_order, which marks it as an atomic site on its own.
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f(Cell& c) { c.seq.load(std::memory_order_acquire); }\n"}},
          only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("non-relaxed"), std::string::npos);
}

TEST(LintAtomics, SubscriptedReceiverResolvesToDeclaredAtomic) {
  const auto diags = run({{"src/mid/a.cpp",
                           "#include <atomic>\n"
                           "std::atomic<int> seq;\n"
                           "void f() { cells[i & mask].seq.load(); }\n"}},
                         only({kRuleAtomics}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

// ---------------------------------------------------------------------------
// determinism-ban

TEST(LintDeterminism, RandCallIsFlaggedInSrc) {
  const auto diags = run({{"src/mid/a.cpp", "int f() { return rand(); }\n"}},
                         only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleDeterminism);
  EXPECT_NE(diags[0].message.find("ptsim::Rng"), std::string::npos);
}

TEST(LintDeterminism, FunctionDeclarationNamedRandomIsNotACall) {
  const auto diags =
      run({{"src/mid/a.hpp",
            "#pragma once\n"
            "struct W { static W random(int seed); };\n"
            "W* time(int);\n"}},
          only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, RandomDeviceBannedOutsideRng) {
  const auto outside = run({{"src/mid/a.cpp", "std::random_device rd;\n"}},
                           only({kRuleDeterminism}));
  ASSERT_EQ(outside.size(), 1u);
  EXPECT_NE(outside[0].message.find("random_device"), std::string::npos);

  const auto inside = run({{"src/ptsim/rng.cpp", "std::random_device rd;\n"}},
                          only({kRuleDeterminism}));
  EXPECT_TRUE(inside.empty());
}

TEST(LintDeterminism, SystemClockBannedInSrc) {
  const auto diags = run(
      {{"src/mid/a.cpp", "auto t = std::chrono::system_clock::now();\n"}},
      only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("system_clock"), std::string::npos);
}

TEST(LintDeterminism, TestsAreExempt) {
  const auto diags = run({{"tests/a_test.cpp", "int f() { return rand(); }\n"}},
                         only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, MutableGlobalInPhysicsModuleIsFlagged) {
  const auto diags = run({{"src/core/state.cpp",
                           "namespace tsvpt::core {\n"
                           "int call_count = 0;\n"
                           "}  // namespace tsvpt::core\n"}},
                         only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("call_count"), std::string::npos);
}

TEST(LintDeterminism, ConstexprAndLocalsAreNotGlobals) {
  const auto diags = run({{"src/core/state.cpp",
                           "namespace tsvpt::core {\n"
                           "constexpr int kLimit = 8;\n"
                           "const double kGain = 1.5;\n"
                           "int helper() { int local = 0; return local; }\n"
                           "}  // namespace tsvpt::core\n"}},
                         only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintDeterminism, NonPhysicsModuleMayHoldState) {
  // Mutable namespace-scope state is only banned in device/process/circuit/
  // core; the telemetry registry pattern stays legal.
  const auto diags = run({{"src/telemetry/reg.cpp",
                           "namespace tsvpt::telemetry {\n"
                           "int registry_epoch = 0;\n"
                           "}\n"}},
                         only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// header-hygiene

TEST(LintHygiene, MissingPragmaOnce) {
  const auto diags = run({{"src/mid/a.hpp", "int f();\n"}},
                         only({kRuleHygiene}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("#pragma once"), std::string::npos);
}

TEST(LintHygiene, UsingNamespaceInHeader) {
  const auto diags = run({{"src/mid/a.hpp",
                           "#pragma once\n"
                           "using namespace std;\n"}},
                         only({kRuleHygiene}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("using namespace"), std::string::npos);
}

TEST(LintHygiene, SelfIncludeMustComeFirst) {
  const Fixture wrong = {
      {"src/mid/widget.hpp", "#pragma once\nint f();\n"},
      {"src/mid/widget.cpp",
       "#include <vector>\n#include \"mid/widget.hpp\"\nint f() { return 1; }\n"},
  };
  const auto diags = run(wrong, only({kRuleHygiene}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("own header"), std::string::npos);

  const Fixture right = {
      {"src/mid/widget.hpp", "#pragma once\nint f();\n"},
      {"src/mid/widget.cpp",
       "#include \"mid/widget.hpp\"\n#include <vector>\nint f() { return 1; }\n"},
  };
  EXPECT_TRUE(run(right, only({kRuleHygiene})).empty());
}

TEST(LintHygiene, CppWithoutSiblingHeaderIsExempt) {
  const auto diags = run(
      {{"src/mid/main.cpp", "#include <vector>\nint main() { return 0; }\n"}},
      only({kRuleHygiene}));
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// metric-name

TEST(LintMetricName, MissingPrefixIsFlagged) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() { obs::counter(\"frames_total\").add(1); }\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleMetricName);
  EXPECT_NE(diags[0].message.find("tsvpt_[a-z0-9_]+"), std::string::npos);
}

TEST(LintMetricName, UppercaseAndDashesAreFlagged) {
  const auto diags = run({{"src/mid/a.cpp",
                           "void f() {\n"
                           "  obs::counter(\"tsvpt_Frames_total\").add(1);\n"
                           "  obs::gauge(\"tsvpt_ring-depth_frames\").set(1);\n"
                           "}\n"}},
                         only({kRuleMetricName}));
  EXPECT_EQ(diags.size(), 2u);
}

TEST(LintMetricName, EmptySegmentsAreFlagged) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() {\n"
            "  obs::counter(\"tsvpt__frames_total\").add(1);\n"
            "  obs::counter(\"tsvpt_frames_total_\").add(1);\n"
            "}\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "empty name segments"));
}

TEST(LintMetricName, CounterMustEndTotal) {
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() { obs::counter(\"tsvpt_frames\").add(1); }\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("'_total'"), std::string::npos);
}

TEST(LintMetricName, HistogramMustEndUnitSuffix) {
  const auto bad =
      run({{"src/mid/a.cpp",
            "void f() { obs::histogram(\"tsvpt_latency\").observe(1.0); }\n"}},
          only({kRuleMetricName}));
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_TRUE(any_message_contains(bad, "unit suffix"));

  const auto good = run(
      {{"src/mid/a.cpp",
        "void f() {\n"
        "  obs::histogram(\"tsvpt_latency_seconds\").observe(1.0);\n"
        "  obs::histogram(\"tsvpt_batch_bytes\").observe(1.0);\n"
        "  obs::histogram(\"tsvpt_die_celsius\").observe(1.0);\n"
        "}\n"}},
      only({kRuleMetricName}));
  EXPECT_TRUE(good.empty());
}

TEST(LintMetricName, GaugeSuffixContract) {
  // `_total` is reserved for counters; a bare noun is missing its unit or
  // countable suffix; the countable set is accepted.
  const auto bad = run({{"src/mid/a.cpp",
                         "void f() {\n"
                         "  obs::gauge(\"tsvpt_spill_total\").set(1);\n"
                         "  obs::gauge(\"tsvpt_spill_depth\").set(1);\n"
                         "}\n"}},
                       only({kRuleMetricName}));
  ASSERT_EQ(bad.size(), 2u);
  EXPECT_TRUE(any_message_contains(bad, "reserved for counters"));
  EXPECT_TRUE(any_message_contains(bad, "countable suffix"));

  const auto good =
      run({{"src/mid/a.cpp",
            "void f() {\n"
            "  obs::gauge(\"tsvpt_spill_depth_batches\").set(1);\n"
            "  obs::gauge(\"tsvpt_open_connections\").set(1);\n"
            "  obs::gauge(\"tsvpt_duty_ratio\").set(0.5);\n"
            "}\n"}},
          only({kRuleMetricName}));
  EXPECT_TRUE(good.empty());
}

TEST(LintMetricName, NonLiteralFirstArgumentIsExempt) {
  // A shared constant is named (and linted) at its defining literal; the
  // registration through the constant must not be double-flagged.
  Stats stats;
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() { obs::histogram(kStageLatencyMetric, \"stage\", "
            "\"seal\").observe(1.0); }\n"}},
          only({kRuleMetricName}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.metric_names_checked, 0);
}

TEST(LintMetricName, NonSrcIsExempt) {
  const auto diags =
      run({{"tests/a_test.cpp",
            "void f() { obs::counter(\"bad name\").add(1); }\n"}},
          only({kRuleMetricName}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintMetricName, CompliantRegistrationsCountAsChecked) {
  Stats stats;
  const auto diags =
      run({{"src/mid/a.cpp",
            "void f() {\n"
            "  obs::counter(\"tsvpt_ingest_frames_total\").add(1);\n"
            "  obs::histogram(\"tsvpt_stage_latency_seconds\").observe(1.0);\n"
            "  obs::gauge(\"tsvpt_ring_depth_frames\").set(3);\n"
            "}\n"}},
          only({kRuleMetricName}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.metric_names_checked, 3);
}

TEST(LintMetricName, AllowWithReasonSuppresses) {
  Stats stats;
  const auto diags = run(
      {{"src/mid/a.cpp",
        "void f() { obs::counter(\"legacy_frames\").add(1); }  "
        "// lint:allow(metric-name): grandfathered dashboard key\n"}},
      only({kRuleMetricName}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.suppressions_used, 1);
}

// ---------------------------------------------------------------------------
// layering-dag

TEST(LintLayering, UndeclaredEdgeIsFlagged) {
  const auto diags =
      run({{"src/base/a.cpp", "#include \"mid/b.hpp\"\n"}},
          only({kRuleLayering}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("undeclared edge base -> mid"),
            std::string::npos);
}

TEST(LintLayering, DeclaredEdgeAndLocalIncludesAreClean) {
  const auto diags = run({{"src/top/a.cpp",
                           "#include \"mid/b.hpp\"\n"
                           "#include \"top/detail.hpp\"\n"
                           "#include \"helper.hpp\"\n"
                           "#include <vector>\n"}},
                         only({kRuleLayering}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintLayering, UnknownModuleIsFlagged) {
  const auto diags = run({{"src/rogue/a.cpp", "int x;\n"}},
                         only({kRuleLayering}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("not declared"), std::string::npos);
}

TEST(LintLayering, DeclaredCycleYieldsBackEdgeDiagnostic) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(parse_layering(
      "[modules]\norder = [\"a\", \"b\"]\n[deps]\na = [\"b\"]\nb = [\"a\"]\n",
      &config, &error))
      << error;
  const auto diags = run({}, only({kRuleLayering}), nullptr, config);
  ASSERT_FALSE(diags.empty());
  EXPECT_TRUE(any_message_contains(diags, "back-edge"));
  EXPECT_EQ(diags[0].file, "tools/lint/layering.toml");
}

TEST(LintLayering, SelfEdgeIsRejected) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(parse_layering(
      "[modules]\norder = [\"a\"]\n[deps]\na = [\"a\"]\n", &config, &error));
  const auto diags = run({}, only({kRuleLayering}), nullptr, config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(any_message_contains(diags, "back-edge"));
}

TEST(LintLayering, AuditFlagsDeclaredButUnusedEdges) {
  Analyzer::Options options = only({kRuleLayering});
  options.layering_audit = true;
  // top -> mid is exercised; mid -> base and top -> base are not.
  const auto diags =
      run({{"src/top/a.cpp", "#include \"mid/b.hpp\"\n"}}, options);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "mid -> base"));
  EXPECT_TRUE(any_message_contains(diags, "top -> base"));
  EXPECT_TRUE(any_message_contains(diags, "not used by any include"));
}

// ---------------------------------------------------------------------------
// suppressions

TEST(LintSuppression, AllowWithReasonSuppresses) {
  Stats stats;
  const auto diags = run(
      {{"src/mid/a.cpp",
        "int f() { return rand(); }  "
        "// lint:allow(determinism-ban): fixture exercises legacy path\n"}},
      only({kRuleDeterminism}), &stats);
  EXPECT_TRUE(diags.empty());
  EXPECT_EQ(stats.suppressions_used, 1);
}

TEST(LintSuppression, OwnLineAllowCoversNextLine) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "// lint:allow(determinism-ban): fixture exercises legacy path\n"
        "int f() { return rand(); }\n"}},
      only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, ReasonIsMandatory) {
  const auto diags = run({{"src/mid/a.cpp",
                           "int f() { return rand(); }  "
                           "// lint:allow(determinism-ban)\n"}},
                         only({kRuleDeterminism}));
  // The original diagnostic survives AND the reason-less allow is diagnosed.
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_TRUE(any_message_contains(diags, "must carry a reason"));
  EXPECT_TRUE(any_message_contains(diags, "banned in src/"));
}

TEST(LintSuppression, UnknownRuleNameIsDiagnosed) {
  const auto diags = run(
      {{"src/mid/a.cpp", "// lint:allow(no-such-rule): whatever\nint x;\n"}},
      only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, kRuleSuppression);
  EXPECT_TRUE(any_message_contains(diags, "unknown rule"));
}

TEST(LintSuppression, UnusedAllowIsDiagnosed) {
  const auto diags = run(
      {{"src/mid/a.cpp",
        "// lint:allow(determinism-ban): nothing here actually fires\n"
        "int f() { return 1; }\n"}},
      only({kRuleDeterminism}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_TRUE(any_message_contains(diags, "never matched"));
}

TEST(LintSuppression, ProseMentionIsNotADirective) {
  // A comment *talking about* lint:allow(rule) mid-sentence must not be
  // parsed as a suppression (and thus must not be flagged as unused).
  const auto diags = run(
      {{"src/mid/a.cpp",
        "// Suppress with lint:allow(determinism-ban): reason, like this.\n"
        "int f() { return 1; }\n"}},
      only({kRuleDeterminism}));
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// output formats

TEST(LintOutput, FormatDiagnostic) {
  Diagnostic diag;
  diag.file = "src/mid/a.cpp";
  diag.line = 12;
  diag.rule = kRuleDeterminism;
  diag.message = "msg";
  EXPECT_EQ(format_diagnostic(diag), "src/mid/a.cpp:12: [determinism-ban] msg");
}

TEST(LintOutput, JsonReportIsValidJson) {
  Stats stats;
  const auto diags = run({{"src/mid/a.cpp",
                           "int f() { return rand(); }\n"
                           "const char* s = \"quote \\\" and \\\\ inside\";\n"}},
                         only({kRuleDeterminism}), &stats);
  ASSERT_EQ(diags.size(), 1u);
  const std::string report = json_report(diags, stats);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(report)) << report;
  EXPECT_NE(report.find("\"clean\": false"), std::string::npos);

  const std::string clean = json_report({}, stats);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(clean)) << clean;
  EXPECT_NE(clean.find("\"clean\": true"), std::string::npos);
}

TEST(LintOutput, RuleCatalogIsStable) {
  const auto& rules = all_rules();
  ASSERT_EQ(rules.size(), 5u);
  for (const std::string& rule : rules) {
    EXPECT_FALSE(rule_description(rule).empty()) << rule;
  }
}

// ---------------------------------------------------------------------------
// layering config parser

TEST(LintConfig, MultiLineListsParse) {
  LayeringConfig config;
  std::string error;
  ASSERT_TRUE(parse_layering(
      "[modules]\n"
      "order = [\"a\",  # trailing comment\n"
      "         \"b\"]\n"
      "[deps]\na = []\nb = [\"a\"]\n",
      &config, &error))
      << error;
  ASSERT_EQ(config.modules.size(), 2u);
  EXPECT_EQ(config.modules[1], "b");
}

TEST(LintConfig, RejectsModuleWithoutDepsEntry) {
  LayeringConfig config;
  std::string error;
  EXPECT_FALSE(parse_layering("[modules]\norder = [\"a\"]\n[deps]\n", &config,
                              &error));
  EXPECT_NE(error.find("no [deps] entry"), std::string::npos);
}

TEST(LintConfig, RejectsUnknownDependency) {
  LayeringConfig config;
  std::string error;
  EXPECT_FALSE(parse_layering(
      "[modules]\norder = [\"a\"]\n[deps]\na = [\"ghost\"]\n", &config,
      &error));
  EXPECT_NE(error.find("unknown module"), std::string::npos);
}

}  // namespace
}  // namespace tsvpt::lint
