#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"

namespace tsvpt::obs {
namespace {

/// Each test gets an empty, enabled recorder at a known small capacity and
/// restores the library default afterwards (other suites run in the same
/// process when the binary is invoked without a filter).
class ObsTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().set_enabled(true);
    FlightRecorder::instance().set_capacity(1u << 10);
    FlightRecorder::instance().clear();
  }
  void TearDown() override {
    FlightRecorder::instance().set_enabled(true);
    FlightRecorder::instance().set_capacity(1u << 15);
    FlightRecorder::instance().clear();
  }
};

TEST_F(ObsTrace, SpanRecordsOneCompleteEvent) {
  { const ObsSpan span{"test", "op", 42}; }
  const std::vector<TraceEvent> events = FlightRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_STREQ(events[0].name, "op");
  EXPECT_EQ(events[0].arg, 42u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GT(events[0].start_ns, 0u);
  EXPECT_NE(events[0].tid, 0u);
}

TEST_F(ObsTrace, InstantRecordsPointEvent) {
  instant("test", "edge", 7);
  const std::vector<TraceEvent> events = FlightRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].dur_ns, 0u);
}

TEST_F(ObsTrace, SpanFeedsDurationIntoHistogram) {
  Registry::instance().set_enabled(true);
  Registry::instance().reset_values();
  const Histogram h = histogram("obs_test_span_seconds");
  { const ObsSpan span{"test", "timed", h}; }
  const Snapshot snap = Registry::instance().snapshot();
  for (const HistogramSnapshot& hs : snap.histograms) {
    if (hs.name != "obs_test_span_seconds") continue;
    EXPECT_EQ(hs.count, 1u);
    Registry::instance().reset_values();
    return;
  }
  FAIL() << "span did not observe into the histogram";
}

TEST_F(ObsTrace, DisabledRecorderCostsNothingAndRecordsNothing) {
  FlightRecorder::instance().set_enabled(false);
  { const ObsSpan span{"test", "ghost"}; }
  instant("test", "ghost_edge");
  EXPECT_EQ(FlightRecorder::instance().recorded(), 0u);
  EXPECT_TRUE(FlightRecorder::instance().snapshot().empty());
}

TEST_F(ObsTrace, GlobalKillSwitchFlipsMetricsAndTracing) {
  set_enabled(false);
  EXPECT_FALSE(FlightRecorder::instance().enabled());
  EXPECT_FALSE(metrics_enabled());
  set_enabled(true);
  EXPECT_TRUE(FlightRecorder::instance().enabled());
  EXPECT_TRUE(metrics_enabled());
}

// Drop-oldest accounting must be exact: recorded() counts every event ever,
// dropped() is precisely the overwritten prefix, and the snapshot holds the
// newest `capacity` events in order.
TEST_F(ObsTrace, DropOldestAccountingIsExact) {
  FlightRecorder::instance().set_capacity(64);
  FlightRecorder& rec = FlightRecorder::instance();
  const std::size_t cap = rec.capacity();
  const std::uint64_t total = 10 * cap + 3;
  for (std::uint64_t i = 0; i < total; ++i) {
    rec.record_instant("test", "flood", i);
  }
  EXPECT_EQ(rec.recorded(), total);
  EXPECT_EQ(rec.dropped(), total - cap);
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), cap);
  // Oldest-first, contiguous, ending at the last event written.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, total - cap + i);
  }
}

TEST_F(ObsTrace, UnfilledRingReportsNoDrops) {
  FlightRecorder& rec = FlightRecorder::instance();
  for (int i = 0; i < 10; ++i) rec.record_instant("test", "few");
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.snapshot().size(), 10u);
}

// Writers flooding the ring while a reader snapshots continuously: every
// accepted event must be coherent (a torn cell is dropped, never surfaced).
// The TSan CI job runs this to prove the seqlock discipline is race-free.
TEST_F(ObsTrace, ConcurrentWritersAndSnapshotsStayCoherent) {
  FlightRecorder::instance().set_capacity(256);
  FlightRecorder& rec = FlightRecorder::instance();
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader{[&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : rec.snapshot()) {
        // A torn read would show a mismatched pair; each writer stamps both
        // name and arg with its own identity.
        ASSERT_STREQ(e.category, "test");
        ASSERT_EQ(std::string{e.name}.substr(0, 6), "writer");
        ASSERT_EQ(e.name[6] - '0', static_cast<int>(e.arg));
      }
    }
  }};
  static const char* kNames[kWriters] = {"writer0", "writer1", "writer2",
                                         "writer3"};
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        rec.record_instant("test", kNames[w], w);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(rec.dropped(), kWriters * kPerWriter - rec.capacity());
}

// -- golden-schema checks on the Chrome trace export ---------------------

TEST_F(ObsTrace, ChromeTraceJsonParsesAndCarriesTheEvents) {
  {
    const ObsSpan span{"sampler", "scan", 3};
    instant("alert", "over_temperature", 1);
  }
  const std::string json = trace_chrome_json();
  EXPECT_TRUE(tsvpt::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"sampler\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"over_temperature\""), std::string::npos);
}

TEST_F(ObsTrace, ChromeTraceEscapesAndEmptyRing) {
  // Empty ring still exports a loadable document.
  const std::string empty = trace_chrome_json();
  EXPECT_TRUE(tsvpt::testing::is_valid_json(empty)) << empty;
  // Names with JSON-hostile characters survive escaping.
  instant("test", "quote\"back\\slash");
  const std::string json = trace_chrome_json();
  EXPECT_TRUE(tsvpt::testing::is_valid_json(json)) << json;
}

TEST_F(ObsTrace, ThreadIdsAreSmallAndStablePerThread) {
  const std::uint32_t here = current_thread_id();
  EXPECT_EQ(current_thread_id(), here);
  std::uint32_t other = 0;
  std::thread t{[&other] { other = current_thread_id(); }};
  t.join();
  EXPECT_NE(other, here);
}

}  // namespace
}  // namespace tsvpt::obs
