// End-to-end self-observability: run the real pipeline (fleet sampler ->
// rings -> aggregator, with the historian as the frame sink), then check
// that the instrumentation's counters reconcile exactly with the pipeline's
// own ground-truth accounting and that the flight recorder saw spans from
// every layer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/store.hpp"
#include "telemetry/aggregator.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt {
namespace {

std::string fresh_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path{::testing::TempDir()} /
      ("tsvpt_obs_tests_" + std::to_string(::getpid())) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir.parent_path());
  return dir.string();
}

telemetry::FleetSampler::Config small_fleet() {
  telemetry::FleetSampler::Config cfg;
  cfg.stack_count = 3;
  cfg.thread_count = 2;
  cfg.scans_per_stack = 5;
  cfg.grid_columns = cfg.grid_rows = 1;
  cfg.ring_capacity = 64;
  cfg.seed = 11;
  return cfg;
}

std::uint64_t counter_value(const std::string& name) {
  return obs::counter(name).value();
}

class ObsPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_values();
    obs::FlightRecorder::instance().clear();
  }
  void TearDown() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_values();
    obs::FlightRecorder::instance().clear();
  }
};

TEST_F(ObsPipeline, CountersReconcileWithPipelineGroundTruth) {
  const std::string dir = fresh_dir("reconcile");
  telemetry::FleetSampler::Config cfg = small_fleet();
  store::StoreWriter writer{dir, {.block_frames = 4}};
  cfg.sink = &writer;

  telemetry::FleetSampler sampler{cfg};
  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();
  writer.close();

  const auto& sum = aggregator.summary();
  const std::uint64_t produced = sampler.total_frames();
  ASSERT_EQ(produced, 15u);

  // Sampler-side counters against the sampler's own ledger.
  EXPECT_EQ(counter_value("tsvpt_sampler_frames_total"), produced);
  EXPECT_EQ(counter_value("tsvpt_sampler_dropped_total"),
            sampler.total_dropped());
  // Collector-side counters against the aggregator summary.
  EXPECT_EQ(counter_value("tsvpt_agg_frames_total"), sum.frames);
  EXPECT_EQ(counter_value("tsvpt_agg_decode_errors_total"),
            sum.decode_errors);
  EXPECT_EQ(counter_value("tsvpt_agg_alerts_total"), sum.alerts);
  // Store-side counters against the historian's on-disk stats.
  const store::StoreStats st = writer.stats();
  EXPECT_EQ(counter_value("tsvpt_store_frames_appended_total"), produced);
  EXPECT_EQ(counter_value("tsvpt_store_blocks_sealed_total"), st.blocks);
  EXPECT_GE(counter_value("tsvpt_store_bytes_written_total"),
            st.bytes_on_disk - 8 * st.segments);  // headers are not blocks
  // Every site conversion lands in the sensor counter: sites * scans.
  EXPECT_EQ(counter_value("tsvpt_sensor_conversions_total"),
            produced * 4u);  // 1x1 grid on 4 dies

  // Gauges echo the fleet shape.
  EXPECT_DOUBLE_EQ(obs::gauge("tsvpt_sampler_stacks").value(), 3.0);
}

TEST_F(ObsPipeline, FlightRecorderSawEveryLayer) {
  const std::string dir = fresh_dir("layers");
  telemetry::FleetSampler::Config cfg = small_fleet();
  store::StoreWriter writer{dir, {.block_frames = 4}};
  cfg.sink = &writer;

  telemetry::FleetSampler sampler{cfg};
  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();
  writer.close();

  // Read a few frames back so the store's decode path traces too.
  store::StoreReader reader{dir};
  const auto frames = reader.query({}, 100);
  EXPECT_FALSE(frames.empty());

  const std::vector<obs::TraceEvent> events =
      obs::FlightRecorder::instance().snapshot();
  ASSERT_FALSE(events.empty());
  const auto has = [&events](const char* cat, const char* name) {
    return std::any_of(events.begin(), events.end(),
                       [&](const obs::TraceEvent& e) {
                         return std::string{e.category} == cat &&
                                std::string{e.name} == name;
                       });
  };
  EXPECT_TRUE(has("sampler", "scan"));
  EXPECT_TRUE(has("sampler", "encode"));
  EXPECT_TRUE(has("sampler", "ring_push"));
  EXPECT_TRUE(has("aggregator", "ingest"));
  EXPECT_TRUE(has("store", "seal_block"));
  EXPECT_TRUE(has("store", "recover"));
  EXPECT_TRUE(has("store", "decode_block"));

  // The whole run exports as one loadable Chrome trace.
  const std::string json = obs::to_chrome_trace(events);
  EXPECT_TRUE(tsvpt::testing::is_valid_json(json));

  // And the decode counter matches the cursor's work.
  EXPECT_GT(counter_value("tsvpt_store_blocks_decoded_total"), 0u);
  EXPECT_EQ(counter_value("tsvpt_store_corrupt_blocks_total"), 0u);
}

TEST_F(ObsPipeline, DisabledObservabilityRunsPipelineUntouched) {
  obs::set_enabled(false);
  telemetry::FleetSampler sampler{small_fleet()};
  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  EXPECT_EQ(sampler.total_frames(), 15u);
  EXPECT_EQ(aggregator.summary().frames, 15u);
  EXPECT_EQ(counter_value("tsvpt_sampler_frames_total"), 0u);
  EXPECT_TRUE(obs::FlightRecorder::instance().snapshot().empty());
}

TEST_F(ObsPipeline, PrometheusExportCoversPipelineMetricNames) {
  telemetry::FleetSampler sampler{small_fleet()};
  telemetry::Aggregator aggregator{telemetry::Aggregator::Config{}};
  aggregator.start(sampler.rings());
  sampler.run();
  aggregator.stop();

  const std::string text = obs::metrics_prometheus();
  for (const char* name :
       {"tsvpt_sampler_frames_total", "tsvpt_sampler_scan_seconds",
        "tsvpt_agg_frames_total", "tsvpt_agg_ingest_seconds",
        "tsvpt_sensor_conversions_total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_TRUE(
      tsvpt::testing::is_valid_json(obs::metrics_json()));
}

}  // namespace
}  // namespace tsvpt
