#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/health_supervisor.hpp"
#include "store/block.hpp"

namespace tsvpt::store {
namespace {

/// Deterministic frame shaped like real fleet traffic: a small site grid,
/// smoothly drifting temperatures, monotone counters.
telemetry::Frame make_frame(std::uint32_t stack, std::uint64_t sequence,
                            double sim_time, std::size_t sites = 4) {
  telemetry::Frame frame;
  frame.stack_id = stack;
  frame.sequence = sequence;
  frame.sim_time = Second{sim_time};
  frame.capture_ns = 1'000'000 * sequence + stack;
  for (std::size_t i = 0; i < sites; ++i) {
    core::StackMonitor::SiteReading r;
    r.site_index = i;
    r.die = i / 2;
    r.location = {0.5e-3 * static_cast<double>(i % 2),
                  0.5e-3 * static_cast<double>(i / 2)};
    // Counter-quantized temperatures: consecutive scans mostly repeat
    // exactly and step occasionally, like a real readout.
    r.sensed = Celsius{40.0 + 0.5 * static_cast<double>(i) +
                       0.25 * static_cast<double>((sequence / 16) % 8)};
    r.truth = Celsius{r.sensed.value() - 0.3};
    r.energy = Joule{2.0e-9};
    r.degraded = (stack + sequence + i) % 7 == 0;
    r.health = static_cast<std::uint8_t>((stack + i) % core::kHealthStateCount);
    frame.readings.push_back(r);
  }
  return frame;
}

std::vector<std::uint8_t> seal_frames(
    const std::vector<telemetry::Frame>& frames) {
  BlockBuilder builder;
  for (const telemetry::Frame& frame : frames) builder.add(frame);
  return builder.seal();
}

TEST(StoreBlock, RoundTripMultiStackInterleaved) {
  // Stacks interleave in arrival order, exactly as concurrent fleet workers
  // produce them; decode must reproduce every frame bit-for-bit, in order.
  std::vector<telemetry::Frame> frames;
  for (std::uint64_t scan = 0; scan < 5; ++scan) {
    for (std::uint32_t stack : {7u, 3u, 11u}) {
      frames.push_back(make_frame(stack, 100 + scan, 1e-3 * double(scan)));
    }
  }
  const std::vector<std::uint8_t> record = seal_frames(frames);

  std::vector<telemetry::Frame> decoded;
  ASSERT_EQ(decode_block(record.data(), record.size(), decoded),
            BlockStatus::kOk);
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(decoded[i] == frames[i]) << "frame " << i;
  }
}

TEST(StoreBlock, HeaderDescribesContents) {
  std::vector<telemetry::Frame> frames;
  std::uint64_t raw = 0;
  for (std::uint64_t scan = 0; scan < 4; ++scan) {
    frames.push_back(make_frame(9, scan, 2e-3 + 1e-3 * double(scan)));
    frames.push_back(make_frame(2, scan, 2e-3 + 1e-3 * double(scan)));
    raw += 2 * telemetry::encoded_size(frames.back().readings.size());
  }
  const std::vector<std::uint8_t> record = seal_frames(frames);

  BlockHeader header;
  ASSERT_EQ(parse_block_header(record.data(), record.size(), header),
            BlockStatus::kOk);
  EXPECT_EQ(header.record_size(), record.size());
  EXPECT_EQ(header.frame_count, frames.size());
  EXPECT_EQ(header.raw_bytes, raw);
  EXPECT_DOUBLE_EQ(header.t_min, 2e-3);
  EXPECT_DOUBLE_EQ(header.t_max, 5e-3);
  EXPECT_EQ(header.stack_ids, (std::vector<std::uint32_t>{2, 9}));
  EXPECT_TRUE(header.contains_stack(9));
  EXPECT_FALSE(header.contains_stack(4));
  EXPECT_TRUE(header.overlaps(4e-3, 10.0));
  EXPECT_FALSE(header.overlaps(6e-3, 10.0));
  // Closed-interval edges: touching the span counts as overlap.
  EXPECT_TRUE(header.overlaps(5e-3, 10.0));
  EXPECT_TRUE(header.overlaps(-1.0, 2e-3));
}

TEST(StoreBlock, LayoutChangeMidBlockForcesKeyFrameAndRoundTrips) {
  // A stack whose site layout changes mid-block (site dropped by the health
  // supervisor, say) cannot be delta-coded against the old layout; the codec
  // must fall back to a key frame and still reproduce everything exactly.
  std::vector<telemetry::Frame> frames;
  frames.push_back(make_frame(5, 0, 0.0, 4));
  frames.push_back(make_frame(5, 1, 1e-3, 4));
  frames.push_back(make_frame(5, 2, 2e-3, 3));  // layout shrinks
  frames.push_back(make_frame(5, 3, 3e-3, 3));
  telemetry::Frame moved = make_frame(5, 4, 4e-3, 3);
  moved.readings[1].location.x += 0.25e-3;  // same count, different layout
  frames.push_back(moved);
  frames.push_back(make_frame(5, 5, 5e-3, 4));  // layout grows back

  const std::vector<std::uint8_t> record = seal_frames(frames);
  std::vector<telemetry::Frame> decoded;
  ASSERT_EQ(decode_block(record.data(), record.size(), decoded),
            BlockStatus::kOk);
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_TRUE(decoded[i] == frames[i]) << "frame " << i;
  }
}

TEST(StoreBlock, EmptyReadingsFrameRoundTrips) {
  std::vector<telemetry::Frame> frames;
  frames.push_back(make_frame(1, 0, 0.0));
  telemetry::Frame empty;
  empty.stack_id = 1;
  empty.sequence = 1;
  empty.sim_time = Second{1e-3};
  frames.push_back(empty);  // zero-site scan between normal ones
  frames.push_back(make_frame(1, 2, 2e-3));

  const std::vector<std::uint8_t> record = seal_frames(frames);
  std::vector<telemetry::Frame> decoded;
  ASSERT_EQ(decode_block(record.data(), record.size(), decoded),
            BlockStatus::kOk);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_TRUE(decoded[1] == empty);
  EXPECT_TRUE(decoded[2] == frames[2]);
}

TEST(StoreBlock, SealResetsBuilderForIndependentBlocks) {
  // seal() must reset all per-stack context: the second block has to decode
  // standalone (readers jump straight to any block via the sparse index).
  BlockBuilder builder;
  builder.add(make_frame(4, 0, 0.0));
  builder.add(make_frame(4, 1, 1e-3));
  const std::vector<std::uint8_t> first = builder.seal();
  EXPECT_TRUE(builder.empty());

  const telemetry::Frame later = make_frame(4, 2, 2e-3);
  builder.add(later);
  const std::vector<std::uint8_t> second = builder.seal();

  std::vector<telemetry::Frame> decoded;
  ASSERT_EQ(decode_block(second.data(), second.size(), decoded),
            BlockStatus::kOk);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0] == later);  // a key frame again, not a delta

  decoded.clear();
  ASSERT_EQ(decode_block(first.data(), first.size(), decoded),
            BlockStatus::kOk);
  EXPECT_EQ(decoded.size(), 2u);
}

TEST(StoreBlock, TruncationAtEveryByteExactAllocations) {
  // Every prefix is copied into an exactly-sized heap allocation so the
  // sanitizer CI job turns any read past `len` into a heap-buffer-overflow;
  // in all builds no prefix may decode as a complete block.
  const std::vector<std::uint8_t> record = seal_frames(
      {make_frame(6, 0, 0.0), make_frame(8, 0, 0.0), make_frame(6, 1, 1e-3)});
  std::vector<telemetry::Frame> sink;
  for (std::size_t len = 0; len < record.size(); ++len) {
    std::unique_ptr<std::uint8_t[]> exact{new std::uint8_t[len]};
    std::memcpy(exact.get(), record.data(), len);
    sink.clear();
    EXPECT_NE(decode_block(exact.get(), len, sink), BlockStatus::kOk)
        << "length " << len;
    EXPECT_TRUE(sink.empty()) << "length " << len;
  }
}

TEST(StoreBlock, EveryBitFlipRejected) {
  const std::vector<std::uint8_t> record =
      seal_frames({make_frame(6, 0, 0.0), make_frame(6, 1, 1e-3)});
  std::vector<telemetry::Frame> sink;
  for (std::size_t pos = 0; pos < record.size(); ++pos) {
    std::vector<std::uint8_t> corrupt = record;
    corrupt[pos] ^= 0x04;
    sink.clear();
    EXPECT_NE(decode_block(corrupt.data(), corrupt.size(), sink),
              BlockStatus::kOk)
        << "byte " << pos;
    EXPECT_TRUE(sink.empty()) << "byte " << pos;
  }
}

TEST(StoreBlock, HeaderVsPayloadCorruptionDistinguished) {
  std::vector<std::uint8_t> record =
      seal_frames({make_frame(6, 0, 0.0), make_frame(6, 1, 1e-3)});
  std::vector<telemetry::Frame> sink;

  std::vector<std::uint8_t> bad_magic = record;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode_block(bad_magic.data(), bad_magic.size(), sink),
            BlockStatus::kBadMagic);

  // The t_min field is covered by the header CRC, not the payload CRC.
  std::vector<std::uint8_t> bad_header = record;
  bad_header[16] ^= 0xFF;
  EXPECT_EQ(decode_block(bad_header.data(), bad_header.size(), sink),
            BlockStatus::kBadHeaderCrc);

  BlockHeader header;
  ASSERT_EQ(parse_block_header(record.data(), record.size(), header),
            BlockStatus::kOk);
  const std::size_t payload_start =
      kBlockFixedHeaderSize + header.stack_ids.size() * 4 + kBlockCrcSize;
  std::vector<std::uint8_t> bad_payload = record;
  bad_payload[payload_start + header.payload_size / 2] ^= 0xFF;
  EXPECT_EQ(decode_block(bad_payload.data(), bad_payload.size(), sink),
            BlockStatus::kBadPayloadCrc);
  EXPECT_TRUE(sink.empty());
}

TEST(StoreBlock, SteadyStreamCompressesWellPastRaw) {
  // The historian's whole reason to exist: a steady per-stack stream (one
  // key frame, then deltas) must land far below the raw wire footprint.
  BlockBuilder builder;
  for (std::uint64_t scan = 0; scan < 64; ++scan) {
    builder.add(make_frame(1, scan, 1e-3 * double(scan)));
  }
  const std::uint64_t raw = builder.raw_bytes();
  const std::vector<std::uint8_t> record = builder.seal();
  EXPECT_GT(static_cast<double>(raw) / static_cast<double>(record.size()),
            3.0)
      << record.size() << " bytes on disk vs " << raw << " raw";
}

TEST(StoreBlock, StatusStringsCoverEveryCode) {
  for (const BlockStatus status :
       {BlockStatus::kOk, BlockStatus::kTruncated, BlockStatus::kBadMagic,
        BlockStatus::kBadHeader, BlockStatus::kBadHeaderCrc,
        BlockStatus::kBadPayloadCrc, BlockStatus::kBadFrame}) {
    EXPECT_STRNE(to_string(status), "unknown");
  }
}

}  // namespace
}  // namespace tsvpt::store
