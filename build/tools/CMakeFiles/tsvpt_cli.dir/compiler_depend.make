# Empty compiler generated dependencies file for tsvpt_cli.
# This may be replaced when dependencies are built.
