
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/tsvpt_cli.cpp" "tools/CMakeFiles/tsvpt_cli.dir/tsvpt_cli.cpp.o" "gcc" "tools/CMakeFiles/tsvpt_cli.dir/tsvpt_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ptsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ptsim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ptsim_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/ptsim_process.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ptsim_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
