file(REMOVE_RECURSE
  "CMakeFiles/tsvpt_cli.dir/tsvpt_cli.cpp.o"
  "CMakeFiles/tsvpt_cli.dir/tsvpt_cli.cpp.o.d"
  "tsvpt_cli"
  "tsvpt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsvpt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
