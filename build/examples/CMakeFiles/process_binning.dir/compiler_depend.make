# Empty compiler generated dependencies file for process_binning.
# This may be replaced when dependencies are built.
