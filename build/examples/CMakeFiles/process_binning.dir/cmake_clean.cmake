file(REMOVE_RECURSE
  "CMakeFiles/process_binning.dir/process_binning.cpp.o"
  "CMakeFiles/process_binning.dir/process_binning.cpp.o.d"
  "process_binning"
  "process_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
