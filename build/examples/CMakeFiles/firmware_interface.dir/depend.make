# Empty dependencies file for firmware_interface.
# This may be replaced when dependencies are built.
