file(REMOVE_RECURSE
  "CMakeFiles/firmware_interface.dir/firmware_interface.cpp.o"
  "CMakeFiles/firmware_interface.dir/firmware_interface.cpp.o.d"
  "firmware_interface"
  "firmware_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
