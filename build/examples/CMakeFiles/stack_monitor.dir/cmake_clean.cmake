file(REMOVE_RECURSE
  "CMakeFiles/stack_monitor.dir/stack_monitor.cpp.o"
  "CMakeFiles/stack_monitor.dir/stack_monitor.cpp.o.d"
  "stack_monitor"
  "stack_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
