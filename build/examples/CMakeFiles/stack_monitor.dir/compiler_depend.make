# Empty compiler generated dependencies file for stack_monitor.
# This may be replaced when dependencies are built.
