# Empty compiler generated dependencies file for wafer_report.
# This may be replaced when dependencies are built.
