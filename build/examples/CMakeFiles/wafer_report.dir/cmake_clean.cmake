file(REMOVE_RECURSE
  "CMakeFiles/wafer_report.dir/wafer_report.cpp.o"
  "CMakeFiles/wafer_report.dir/wafer_report.cpp.o.d"
  "wafer_report"
  "wafer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
