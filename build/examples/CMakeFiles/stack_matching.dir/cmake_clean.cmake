file(REMOVE_RECURSE
  "CMakeFiles/stack_matching.dir/stack_matching.cpp.o"
  "CMakeFiles/stack_matching.dir/stack_matching.cpp.o.d"
  "stack_matching"
  "stack_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
