# Empty dependencies file for stack_matching.
# This may be replaced when dependencies are built.
