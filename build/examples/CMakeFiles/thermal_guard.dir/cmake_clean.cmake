file(REMOVE_RECURSE
  "CMakeFiles/thermal_guard.dir/thermal_guard.cpp.o"
  "CMakeFiles/thermal_guard.dir/thermal_guard.cpp.o.d"
  "thermal_guard"
  "thermal_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
