# Empty compiler generated dependencies file for thermal_guard.
# This may be replaced when dependencies are built.
