# Empty compiler generated dependencies file for tsvpt_tests.
# This may be replaced when dependencies are built.
