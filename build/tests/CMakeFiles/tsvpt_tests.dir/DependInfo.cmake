
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acceptance_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/acceptance_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/acceptance_test.cpp.o.d"
  "/root/repo/tests/args_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/args_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/args_test.cpp.o.d"
  "/root/repo/tests/calib_linalg_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/calib_linalg_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/calib_linalg_test.cpp.o.d"
  "/root/repo/tests/calib_lut_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/calib_lut_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/calib_lut_test.cpp.o.d"
  "/root/repo/tests/calib_matrix_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/calib_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/calib_matrix_test.cpp.o.d"
  "/root/repo/tests/calib_newton_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/calib_newton_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/calib_newton_test.cpp.o.d"
  "/root/repo/tests/calib_polyfit_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/calib_polyfit_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/calib_polyfit_test.cpp.o.d"
  "/root/repo/tests/circuit_counter_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/circuit_counter_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/circuit_counter_test.cpp.o.d"
  "/root/repo/tests/circuit_ro_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/circuit_ro_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/circuit_ro_test.cpp.o.d"
  "/root/repo/tests/circuit_supply_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/circuit_supply_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/circuit_supply_test.cpp.o.d"
  "/root/repo/tests/circuit_transient_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/circuit_transient_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/circuit_transient_test.cpp.o.d"
  "/root/repo/tests/core_baselines_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_baselines_test.cpp.o.d"
  "/root/repo/tests/core_controller_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_controller_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_controller_test.cpp.o.d"
  "/root/repo/tests/core_fault_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_fault_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_fault_test.cpp.o.d"
  "/root/repo/tests/core_field_filter_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_field_filter_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_field_filter_test.cpp.o.d"
  "/root/repo/tests/core_portability_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_portability_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_portability_test.cpp.o.d"
  "/root/repo/tests/core_sensor_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_sensor_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_sensor_test.cpp.o.d"
  "/root/repo/tests/core_stack_monitor_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/core_stack_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/core_stack_monitor_test.cpp.o.d"
  "/root/repo/tests/device_tech_io_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/device_tech_io_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/device_tech_io_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/invariants_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/invariants_test.cpp.o.d"
  "/root/repo/tests/log_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/log_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/log_test.cpp.o.d"
  "/root/repo/tests/process_aging_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/process_aging_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/process_aging_test.cpp.o.d"
  "/root/repo/tests/process_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/process_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/process_test.cpp.o.d"
  "/root/repo/tests/process_wafer_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/process_wafer_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/process_wafer_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/sim_dvfs_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/sim_dvfs_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/sim_dvfs_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/thermal_leakage_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/thermal_leakage_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/thermal_leakage_test.cpp.o.d"
  "/root/repo/tests/thermal_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/thermal_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/thermal_test.cpp.o.d"
  "/root/repo/tests/thermal_workload_io_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/thermal_workload_io_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/thermal_workload_io_test.cpp.o.d"
  "/root/repo/tests/thermal_workload_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/thermal_workload_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/thermal_workload_test.cpp.o.d"
  "/root/repo/tests/units_test.cpp" "tests/CMakeFiles/tsvpt_tests.dir/units_test.cpp.o" "gcc" "tests/CMakeFiles/tsvpt_tests.dir/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ptsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ptsim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ptsim_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/ptsim_process.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ptsim_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
