# Empty compiler generated dependencies file for ptsim_circuit.
# This may be replaced when dependencies are built.
