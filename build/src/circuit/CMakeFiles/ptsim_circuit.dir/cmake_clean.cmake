file(REMOVE_RECURSE
  "CMakeFiles/ptsim_circuit.dir/counter.cpp.o"
  "CMakeFiles/ptsim_circuit.dir/counter.cpp.o.d"
  "CMakeFiles/ptsim_circuit.dir/energy.cpp.o"
  "CMakeFiles/ptsim_circuit.dir/energy.cpp.o.d"
  "CMakeFiles/ptsim_circuit.dir/ring_oscillator.cpp.o"
  "CMakeFiles/ptsim_circuit.dir/ring_oscillator.cpp.o.d"
  "CMakeFiles/ptsim_circuit.dir/supply.cpp.o"
  "CMakeFiles/ptsim_circuit.dir/supply.cpp.o.d"
  "CMakeFiles/ptsim_circuit.dir/transient.cpp.o"
  "CMakeFiles/ptsim_circuit.dir/transient.cpp.o.d"
  "libptsim_circuit.a"
  "libptsim_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
