
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/counter.cpp" "src/circuit/CMakeFiles/ptsim_circuit.dir/counter.cpp.o" "gcc" "src/circuit/CMakeFiles/ptsim_circuit.dir/counter.cpp.o.d"
  "/root/repo/src/circuit/energy.cpp" "src/circuit/CMakeFiles/ptsim_circuit.dir/energy.cpp.o" "gcc" "src/circuit/CMakeFiles/ptsim_circuit.dir/energy.cpp.o.d"
  "/root/repo/src/circuit/ring_oscillator.cpp" "src/circuit/CMakeFiles/ptsim_circuit.dir/ring_oscillator.cpp.o" "gcc" "src/circuit/CMakeFiles/ptsim_circuit.dir/ring_oscillator.cpp.o.d"
  "/root/repo/src/circuit/supply.cpp" "src/circuit/CMakeFiles/ptsim_circuit.dir/supply.cpp.o" "gcc" "src/circuit/CMakeFiles/ptsim_circuit.dir/supply.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/ptsim_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/ptsim_circuit.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ptsim_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
