file(REMOVE_RECURSE
  "libptsim_circuit.a"
)
