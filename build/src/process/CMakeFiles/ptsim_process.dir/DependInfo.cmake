
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/process/aging.cpp" "src/process/CMakeFiles/ptsim_process.dir/aging.cpp.o" "gcc" "src/process/CMakeFiles/ptsim_process.dir/aging.cpp.o.d"
  "/root/repo/src/process/spatial_field.cpp" "src/process/CMakeFiles/ptsim_process.dir/spatial_field.cpp.o" "gcc" "src/process/CMakeFiles/ptsim_process.dir/spatial_field.cpp.o.d"
  "/root/repo/src/process/tsv_stress.cpp" "src/process/CMakeFiles/ptsim_process.dir/tsv_stress.cpp.o" "gcc" "src/process/CMakeFiles/ptsim_process.dir/tsv_stress.cpp.o.d"
  "/root/repo/src/process/variation.cpp" "src/process/CMakeFiles/ptsim_process.dir/variation.cpp.o" "gcc" "src/process/CMakeFiles/ptsim_process.dir/variation.cpp.o.d"
  "/root/repo/src/process/wafer.cpp" "src/process/CMakeFiles/ptsim_process.dir/wafer.cpp.o" "gcc" "src/process/CMakeFiles/ptsim_process.dir/wafer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ptsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ptsim_calib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
