file(REMOVE_RECURSE
  "libptsim_process.a"
)
