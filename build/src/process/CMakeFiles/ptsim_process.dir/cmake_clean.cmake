file(REMOVE_RECURSE
  "CMakeFiles/ptsim_process.dir/aging.cpp.o"
  "CMakeFiles/ptsim_process.dir/aging.cpp.o.d"
  "CMakeFiles/ptsim_process.dir/spatial_field.cpp.o"
  "CMakeFiles/ptsim_process.dir/spatial_field.cpp.o.d"
  "CMakeFiles/ptsim_process.dir/tsv_stress.cpp.o"
  "CMakeFiles/ptsim_process.dir/tsv_stress.cpp.o.d"
  "CMakeFiles/ptsim_process.dir/variation.cpp.o"
  "CMakeFiles/ptsim_process.dir/variation.cpp.o.d"
  "CMakeFiles/ptsim_process.dir/wafer.cpp.o"
  "CMakeFiles/ptsim_process.dir/wafer.cpp.o.d"
  "libptsim_process.a"
  "libptsim_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
