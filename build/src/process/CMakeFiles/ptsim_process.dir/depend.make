# Empty dependencies file for ptsim_process.
# This may be replaced when dependencies are built.
