file(REMOVE_RECURSE
  "libptsim_core.a"
)
