
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/ptsim_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/ptsim_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/ptsim_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/ptsim_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/fault_detector.cpp" "src/core/CMakeFiles/ptsim_core.dir/fault_detector.cpp.o" "gcc" "src/core/CMakeFiles/ptsim_core.dir/fault_detector.cpp.o.d"
  "/root/repo/src/core/field_estimator.cpp" "src/core/CMakeFiles/ptsim_core.dir/field_estimator.cpp.o" "gcc" "src/core/CMakeFiles/ptsim_core.dir/field_estimator.cpp.o.d"
  "/root/repo/src/core/pt_sensor.cpp" "src/core/CMakeFiles/ptsim_core.dir/pt_sensor.cpp.o" "gcc" "src/core/CMakeFiles/ptsim_core.dir/pt_sensor.cpp.o.d"
  "/root/repo/src/core/stack_monitor.cpp" "src/core/CMakeFiles/ptsim_core.dir/stack_monitor.cpp.o" "gcc" "src/core/CMakeFiles/ptsim_core.dir/stack_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ptsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ptsim_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ptsim_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/ptsim_process.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/ptsim_thermal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
