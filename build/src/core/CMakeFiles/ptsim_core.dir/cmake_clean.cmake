file(REMOVE_RECURSE
  "CMakeFiles/ptsim_core.dir/baselines.cpp.o"
  "CMakeFiles/ptsim_core.dir/baselines.cpp.o.d"
  "CMakeFiles/ptsim_core.dir/controller.cpp.o"
  "CMakeFiles/ptsim_core.dir/controller.cpp.o.d"
  "CMakeFiles/ptsim_core.dir/fault_detector.cpp.o"
  "CMakeFiles/ptsim_core.dir/fault_detector.cpp.o.d"
  "CMakeFiles/ptsim_core.dir/field_estimator.cpp.o"
  "CMakeFiles/ptsim_core.dir/field_estimator.cpp.o.d"
  "CMakeFiles/ptsim_core.dir/pt_sensor.cpp.o"
  "CMakeFiles/ptsim_core.dir/pt_sensor.cpp.o.d"
  "CMakeFiles/ptsim_core.dir/stack_monitor.cpp.o"
  "CMakeFiles/ptsim_core.dir/stack_monitor.cpp.o.d"
  "libptsim_core.a"
  "libptsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
