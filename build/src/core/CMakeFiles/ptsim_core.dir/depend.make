# Empty dependencies file for ptsim_core.
# This may be replaced when dependencies are built.
