file(REMOVE_RECURSE
  "CMakeFiles/ptsim_device.dir/mosfet.cpp.o"
  "CMakeFiles/ptsim_device.dir/mosfet.cpp.o.d"
  "CMakeFiles/ptsim_device.dir/tech.cpp.o"
  "CMakeFiles/ptsim_device.dir/tech.cpp.o.d"
  "CMakeFiles/ptsim_device.dir/tech_io.cpp.o"
  "CMakeFiles/ptsim_device.dir/tech_io.cpp.o.d"
  "libptsim_device.a"
  "libptsim_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
