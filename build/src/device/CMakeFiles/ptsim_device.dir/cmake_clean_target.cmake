file(REMOVE_RECURSE
  "libptsim_device.a"
)
