# Empty compiler generated dependencies file for ptsim_device.
# This may be replaced when dependencies are built.
