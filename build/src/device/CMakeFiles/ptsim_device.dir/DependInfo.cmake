
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/mosfet.cpp" "src/device/CMakeFiles/ptsim_device.dir/mosfet.cpp.o" "gcc" "src/device/CMakeFiles/ptsim_device.dir/mosfet.cpp.o.d"
  "/root/repo/src/device/tech.cpp" "src/device/CMakeFiles/ptsim_device.dir/tech.cpp.o" "gcc" "src/device/CMakeFiles/ptsim_device.dir/tech.cpp.o.d"
  "/root/repo/src/device/tech_io.cpp" "src/device/CMakeFiles/ptsim_device.dir/tech_io.cpp.o" "gcc" "src/device/CMakeFiles/ptsim_device.dir/tech_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
