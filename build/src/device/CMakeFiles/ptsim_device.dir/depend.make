# Empty dependencies file for ptsim_device.
# This may be replaced when dependencies are built.
