file(REMOVE_RECURSE
  "libptsim_calib.a"
)
