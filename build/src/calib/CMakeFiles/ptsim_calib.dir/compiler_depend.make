# Empty compiler generated dependencies file for ptsim_calib.
# This may be replaced when dependencies are built.
