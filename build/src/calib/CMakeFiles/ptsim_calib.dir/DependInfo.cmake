
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calib/linalg.cpp" "src/calib/CMakeFiles/ptsim_calib.dir/linalg.cpp.o" "gcc" "src/calib/CMakeFiles/ptsim_calib.dir/linalg.cpp.o.d"
  "/root/repo/src/calib/lut.cpp" "src/calib/CMakeFiles/ptsim_calib.dir/lut.cpp.o" "gcc" "src/calib/CMakeFiles/ptsim_calib.dir/lut.cpp.o.d"
  "/root/repo/src/calib/matrix.cpp" "src/calib/CMakeFiles/ptsim_calib.dir/matrix.cpp.o" "gcc" "src/calib/CMakeFiles/ptsim_calib.dir/matrix.cpp.o.d"
  "/root/repo/src/calib/newton.cpp" "src/calib/CMakeFiles/ptsim_calib.dir/newton.cpp.o" "gcc" "src/calib/CMakeFiles/ptsim_calib.dir/newton.cpp.o.d"
  "/root/repo/src/calib/polyfit.cpp" "src/calib/CMakeFiles/ptsim_calib.dir/polyfit.cpp.o" "gcc" "src/calib/CMakeFiles/ptsim_calib.dir/polyfit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
