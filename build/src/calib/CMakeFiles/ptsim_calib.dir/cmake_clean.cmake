file(REMOVE_RECURSE
  "CMakeFiles/ptsim_calib.dir/linalg.cpp.o"
  "CMakeFiles/ptsim_calib.dir/linalg.cpp.o.d"
  "CMakeFiles/ptsim_calib.dir/lut.cpp.o"
  "CMakeFiles/ptsim_calib.dir/lut.cpp.o.d"
  "CMakeFiles/ptsim_calib.dir/matrix.cpp.o"
  "CMakeFiles/ptsim_calib.dir/matrix.cpp.o.d"
  "CMakeFiles/ptsim_calib.dir/newton.cpp.o"
  "CMakeFiles/ptsim_calib.dir/newton.cpp.o.d"
  "CMakeFiles/ptsim_calib.dir/polyfit.cpp.o"
  "CMakeFiles/ptsim_calib.dir/polyfit.cpp.o.d"
  "libptsim_calib.a"
  "libptsim_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
