# Empty dependencies file for ptsim_sim.
# This may be replaced when dependencies are built.
