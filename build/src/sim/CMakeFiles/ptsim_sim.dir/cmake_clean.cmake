file(REMOVE_RECURSE
  "CMakeFiles/ptsim_sim.dir/dvfs.cpp.o"
  "CMakeFiles/ptsim_sim.dir/dvfs.cpp.o.d"
  "CMakeFiles/ptsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ptsim_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ptsim_sim.dir/monitor_session.cpp.o"
  "CMakeFiles/ptsim_sim.dir/monitor_session.cpp.o.d"
  "CMakeFiles/ptsim_sim.dir/thermal_guard.cpp.o"
  "CMakeFiles/ptsim_sim.dir/thermal_guard.cpp.o.d"
  "libptsim_sim.a"
  "libptsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
