file(REMOVE_RECURSE
  "libptsim_sim.a"
)
