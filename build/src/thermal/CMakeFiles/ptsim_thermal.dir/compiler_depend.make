# Empty compiler generated dependencies file for ptsim_thermal.
# This may be replaced when dependencies are built.
