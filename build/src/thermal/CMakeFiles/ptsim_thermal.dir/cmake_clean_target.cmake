file(REMOVE_RECURSE
  "libptsim_thermal.a"
)
