file(REMOVE_RECURSE
  "CMakeFiles/ptsim_thermal.dir/network.cpp.o"
  "CMakeFiles/ptsim_thermal.dir/network.cpp.o.d"
  "CMakeFiles/ptsim_thermal.dir/stack_config.cpp.o"
  "CMakeFiles/ptsim_thermal.dir/stack_config.cpp.o.d"
  "CMakeFiles/ptsim_thermal.dir/workload.cpp.o"
  "CMakeFiles/ptsim_thermal.dir/workload.cpp.o.d"
  "CMakeFiles/ptsim_thermal.dir/workload_io.cpp.o"
  "CMakeFiles/ptsim_thermal.dir/workload_io.cpp.o.d"
  "libptsim_thermal.a"
  "libptsim_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
