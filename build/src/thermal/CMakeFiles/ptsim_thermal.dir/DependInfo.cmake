
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/network.cpp" "src/thermal/CMakeFiles/ptsim_thermal.dir/network.cpp.o" "gcc" "src/thermal/CMakeFiles/ptsim_thermal.dir/network.cpp.o.d"
  "/root/repo/src/thermal/stack_config.cpp" "src/thermal/CMakeFiles/ptsim_thermal.dir/stack_config.cpp.o" "gcc" "src/thermal/CMakeFiles/ptsim_thermal.dir/stack_config.cpp.o.d"
  "/root/repo/src/thermal/workload.cpp" "src/thermal/CMakeFiles/ptsim_thermal.dir/workload.cpp.o" "gcc" "src/thermal/CMakeFiles/ptsim_thermal.dir/workload.cpp.o.d"
  "/root/repo/src/thermal/workload_io.cpp" "src/thermal/CMakeFiles/ptsim_thermal.dir/workload_io.cpp.o" "gcc" "src/thermal/CMakeFiles/ptsim_thermal.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptsim/CMakeFiles/ptsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/ptsim_process.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ptsim_device.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/ptsim_calib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
