
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptsim/log.cpp" "src/ptsim/CMakeFiles/ptsim_util.dir/log.cpp.o" "gcc" "src/ptsim/CMakeFiles/ptsim_util.dir/log.cpp.o.d"
  "/root/repo/src/ptsim/rng.cpp" "src/ptsim/CMakeFiles/ptsim_util.dir/rng.cpp.o" "gcc" "src/ptsim/CMakeFiles/ptsim_util.dir/rng.cpp.o.d"
  "/root/repo/src/ptsim/stats.cpp" "src/ptsim/CMakeFiles/ptsim_util.dir/stats.cpp.o" "gcc" "src/ptsim/CMakeFiles/ptsim_util.dir/stats.cpp.o.d"
  "/root/repo/src/ptsim/table.cpp" "src/ptsim/CMakeFiles/ptsim_util.dir/table.cpp.o" "gcc" "src/ptsim/CMakeFiles/ptsim_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
