# Empty dependencies file for ptsim_util.
# This may be replaced when dependencies are built.
