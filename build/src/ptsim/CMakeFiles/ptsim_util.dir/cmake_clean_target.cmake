file(REMOVE_RECURSE
  "libptsim_util.a"
)
