file(REMOVE_RECURSE
  "CMakeFiles/ptsim_util.dir/log.cpp.o"
  "CMakeFiles/ptsim_util.dir/log.cpp.o.d"
  "CMakeFiles/ptsim_util.dir/rng.cpp.o"
  "CMakeFiles/ptsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/ptsim_util.dir/stats.cpp.o"
  "CMakeFiles/ptsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/ptsim_util.dir/table.cpp.o"
  "CMakeFiles/ptsim_util.dir/table.cpp.o.d"
  "libptsim_util.a"
  "libptsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
