file(REMOVE_RECURSE
  "../bench/bench_a5_aging"
  "../bench/bench_a5_aging.pdb"
  "CMakeFiles/bench_a5_aging.dir/bench_a5_aging.cpp.o"
  "CMakeFiles/bench_a5_aging.dir/bench_a5_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
