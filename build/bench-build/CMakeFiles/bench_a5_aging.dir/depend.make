# Empty dependencies file for bench_a5_aging.
# This may be replaced when dependencies are built.
