file(REMOVE_RECURSE
  "../bench/bench_t2_comparison"
  "../bench/bench_t2_comparison.pdb"
  "CMakeFiles/bench_t2_comparison.dir/bench_t2_comparison.cpp.o"
  "CMakeFiles/bench_t2_comparison.dir/bench_t2_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
