file(REMOVE_RECURSE
  "../bench/bench_a8_vdd_scaling"
  "../bench/bench_a8_vdd_scaling.pdb"
  "CMakeFiles/bench_a8_vdd_scaling.dir/bench_a8_vdd_scaling.cpp.o"
  "CMakeFiles/bench_a8_vdd_scaling.dir/bench_a8_vdd_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_vdd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
