# Empty dependencies file for bench_a8_vdd_scaling.
# This may be replaced when dependencies are built.
