file(REMOVE_RECURSE
  "../bench/bench_a10_readout"
  "../bench/bench_a10_readout.pdb"
  "CMakeFiles/bench_a10_readout.dir/bench_a10_readout.cpp.o"
  "CMakeFiles/bench_a10_readout.dir/bench_a10_readout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a10_readout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
