# Empty dependencies file for bench_a10_readout.
# This may be replaced when dependencies are built.
