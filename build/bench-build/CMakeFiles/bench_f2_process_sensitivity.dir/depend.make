# Empty dependencies file for bench_f2_process_sensitivity.
# This may be replaced when dependencies are built.
