file(REMOVE_RECURSE
  "../bench/bench_f2_process_sensitivity"
  "../bench/bench_f2_process_sensitivity.pdb"
  "CMakeFiles/bench_f2_process_sensitivity.dir/bench_f2_process_sensitivity.cpp.o"
  "CMakeFiles/bench_f2_process_sensitivity.dir/bench_f2_process_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_process_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
