# Empty dependencies file for bench_a11_dvfs.
# This may be replaced when dependencies are built.
