file(REMOVE_RECURSE
  "../bench/bench_a11_dvfs"
  "../bench/bench_a11_dvfs.pdb"
  "CMakeFiles/bench_a11_dvfs.dir/bench_a11_dvfs.cpp.o"
  "CMakeFiles/bench_a11_dvfs.dir/bench_a11_dvfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a11_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
