file(REMOVE_RECURSE
  "../bench/bench_f1_ro_transfer"
  "../bench/bench_f1_ro_transfer.pdb"
  "CMakeFiles/bench_f1_ro_transfer.dir/bench_f1_ro_transfer.cpp.o"
  "CMakeFiles/bench_f1_ro_transfer.dir/bench_f1_ro_transfer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_ro_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
