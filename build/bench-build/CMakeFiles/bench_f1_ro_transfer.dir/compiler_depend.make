# Empty compiler generated dependencies file for bench_f1_ro_transfer.
# This may be replaced when dependencies are built.
