file(REMOVE_RECURSE
  "../bench/bench_a9_field_reconstruction"
  "../bench/bench_a9_field_reconstruction.pdb"
  "CMakeFiles/bench_a9_field_reconstruction.dir/bench_a9_field_reconstruction.cpp.o"
  "CMakeFiles/bench_a9_field_reconstruction.dir/bench_a9_field_reconstruction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_field_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
