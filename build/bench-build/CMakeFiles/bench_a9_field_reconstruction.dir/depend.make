# Empty dependencies file for bench_a9_field_reconstruction.
# This may be replaced when dependencies are built.
