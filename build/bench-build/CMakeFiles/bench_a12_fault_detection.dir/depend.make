# Empty dependencies file for bench_a12_fault_detection.
# This may be replaced when dependencies are built.
