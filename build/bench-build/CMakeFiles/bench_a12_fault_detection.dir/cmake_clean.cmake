file(REMOVE_RECURSE
  "../bench/bench_a12_fault_detection"
  "../bench/bench_a12_fault_detection.pdb"
  "CMakeFiles/bench_a12_fault_detection.dir/bench_a12_fault_detection.cpp.o"
  "CMakeFiles/bench_a12_fault_detection.dir/bench_a12_fault_detection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a12_fault_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
