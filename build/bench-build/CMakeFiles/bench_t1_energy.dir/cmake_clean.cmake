file(REMOVE_RECURSE
  "../bench/bench_t1_energy"
  "../bench/bench_t1_energy.pdb"
  "CMakeFiles/bench_t1_energy.dir/bench_t1_energy.cpp.o"
  "CMakeFiles/bench_t1_energy.dir/bench_t1_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
