file(REMOVE_RECURSE
  "../bench/bench_a2_cal_model"
  "../bench/bench_a2_cal_model.pdb"
  "CMakeFiles/bench_a2_cal_model.dir/bench_a2_cal_model.cpp.o"
  "CMakeFiles/bench_a2_cal_model.dir/bench_a2_cal_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_cal_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
