file(REMOVE_RECURSE
  "../bench/bench_a6_runaway"
  "../bench/bench_a6_runaway.pdb"
  "CMakeFiles/bench_a6_runaway.dir/bench_a6_runaway.cpp.o"
  "CMakeFiles/bench_a6_runaway.dir/bench_a6_runaway.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_runaway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
