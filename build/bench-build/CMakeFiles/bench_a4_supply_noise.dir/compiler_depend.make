# Empty compiler generated dependencies file for bench_a4_supply_noise.
# This may be replaced when dependencies are built.
