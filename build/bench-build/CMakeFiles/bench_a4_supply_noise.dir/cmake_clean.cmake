file(REMOVE_RECURSE
  "../bench/bench_a4_supply_noise"
  "../bench/bench_a4_supply_noise.pdb"
  "CMakeFiles/bench_a4_supply_noise.dir/bench_a4_supply_noise.cpp.o"
  "CMakeFiles/bench_a4_supply_noise.dir/bench_a4_supply_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_supply_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
