# Empty compiler generated dependencies file for bench_f4_temp_accuracy.
# This may be replaced when dependencies are built.
