file(REMOVE_RECURSE
  "../bench/bench_f4_temp_accuracy"
  "../bench/bench_f4_temp_accuracy.pdb"
  "CMakeFiles/bench_f4_temp_accuracy.dir/bench_f4_temp_accuracy.cpp.o"
  "CMakeFiles/bench_f4_temp_accuracy.dir/bench_f4_temp_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_temp_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
