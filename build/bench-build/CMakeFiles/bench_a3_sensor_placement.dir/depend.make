# Empty dependencies file for bench_a3_sensor_placement.
# This may be replaced when dependencies are built.
