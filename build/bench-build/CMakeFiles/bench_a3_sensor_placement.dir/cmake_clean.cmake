file(REMOVE_RECURSE
  "../bench/bench_a3_sensor_placement"
  "../bench/bench_a3_sensor_placement.pdb"
  "CMakeFiles/bench_a3_sensor_placement.dir/bench_a3_sensor_placement.cpp.o"
  "CMakeFiles/bench_a3_sensor_placement.dir/bench_a3_sensor_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_sensor_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
