# Empty compiler generated dependencies file for bench_a1_stages_window.
# This may be replaced when dependencies are built.
