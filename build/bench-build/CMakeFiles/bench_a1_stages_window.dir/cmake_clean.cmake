file(REMOVE_RECURSE
  "../bench/bench_a1_stages_window"
  "../bench/bench_a1_stages_window.pdb"
  "CMakeFiles/bench_a1_stages_window.dir/bench_a1_stages_window.cpp.o"
  "CMakeFiles/bench_a1_stages_window.dir/bench_a1_stages_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_stages_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
