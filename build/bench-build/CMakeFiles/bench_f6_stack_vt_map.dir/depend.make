# Empty dependencies file for bench_f6_stack_vt_map.
# This may be replaced when dependencies are built.
