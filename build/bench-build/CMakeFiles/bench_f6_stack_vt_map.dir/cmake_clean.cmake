file(REMOVE_RECURSE
  "../bench/bench_f6_stack_vt_map"
  "../bench/bench_f6_stack_vt_map.pdb"
  "CMakeFiles/bench_f6_stack_vt_map.dir/bench_f6_stack_vt_map.cpp.o"
  "CMakeFiles/bench_f6_stack_vt_map.dir/bench_f6_stack_vt_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_stack_vt_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
