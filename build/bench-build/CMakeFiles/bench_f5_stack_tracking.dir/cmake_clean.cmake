file(REMOVE_RECURSE
  "../bench/bench_f5_stack_tracking"
  "../bench/bench_f5_stack_tracking.pdb"
  "CMakeFiles/bench_f5_stack_tracking.dir/bench_f5_stack_tracking.cpp.o"
  "CMakeFiles/bench_f5_stack_tracking.dir/bench_f5_stack_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_stack_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
