# Empty compiler generated dependencies file for bench_f5_stack_tracking.
# This may be replaced when dependencies are built.
