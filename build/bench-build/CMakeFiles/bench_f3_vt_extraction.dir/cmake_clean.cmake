file(REMOVE_RECURSE
  "../bench/bench_f3_vt_extraction"
  "../bench/bench_f3_vt_extraction.pdb"
  "CMakeFiles/bench_f3_vt_extraction.dir/bench_f3_vt_extraction.cpp.o"
  "CMakeFiles/bench_f3_vt_extraction.dir/bench_f3_vt_extraction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_vt_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
