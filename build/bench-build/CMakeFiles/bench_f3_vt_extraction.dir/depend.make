# Empty dependencies file for bench_f3_vt_extraction.
# This may be replaced when dependencies are built.
