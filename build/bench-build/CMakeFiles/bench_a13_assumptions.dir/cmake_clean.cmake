file(REMOVE_RECURSE
  "../bench/bench_a13_assumptions"
  "../bench/bench_a13_assumptions.pdb"
  "CMakeFiles/bench_a13_assumptions.dir/bench_a13_assumptions.cpp.o"
  "CMakeFiles/bench_a13_assumptions.dir/bench_a13_assumptions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a13_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
