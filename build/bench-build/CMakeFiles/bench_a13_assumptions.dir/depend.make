# Empty dependencies file for bench_a13_assumptions.
# This may be replaced when dependencies are built.
