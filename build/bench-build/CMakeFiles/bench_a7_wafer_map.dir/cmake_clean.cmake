file(REMOVE_RECURSE
  "../bench/bench_a7_wafer_map"
  "../bench/bench_a7_wafer_map.pdb"
  "CMakeFiles/bench_a7_wafer_map.dir/bench_a7_wafer_map.cpp.o"
  "CMakeFiles/bench_a7_wafer_map.dir/bench_a7_wafer_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_wafer_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
