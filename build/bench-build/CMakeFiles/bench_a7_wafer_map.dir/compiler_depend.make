# Empty compiler generated dependencies file for bench_a7_wafer_map.
# This may be replaced when dependencies are built.
