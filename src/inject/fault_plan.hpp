// Deterministic fault schedules for chaos testing the telemetry path.  A
// FaultPlan is data, not behaviour: a list of timed fault events, each
// naming a kind, a target (stack / site), a scan window and a magnitude.
// The ChaosInjector (injectors.hpp) executes a plan through the
// FleetSampler's ScanInterceptor seam without modifying any physics code —
// faults act on the same public surfaces real failures act on (the sensor's
// fault-injection hooks, the site's supply rail, the wire bytes, the
// worker's stall gate).
//
// Plans are either hand-written (regression tests pin one scenario) or
// drawn by random_campaign from a seed, so an entire chaos campaign is
// reproducible from one integer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ptsim/rng.hpp"

namespace tsvpt::inject {

/// What breaks.  The first five act on a single sensor site; the last three
/// act on a stack's transport (frame bytes, ring publish, worker thread).
enum class FaultKind {
  /// TDRO latches at a fixed frequency: the sensor confidently reports the
  /// temperature that frequency corresponds to, forever.  magnitude = the
  /// apparent temperature (degC) the stuck oscillator encodes.
  kStuckRo,
  /// TDRO stops: the counter sees zero edges and the conversion degrades.
  kDeadRo,
  /// A counter/readout bit flip: the reading is silently offset.
  /// magnitude = offset in degC (sign included).
  kCounterBitFlip,
  /// Supply-droop excursion at the site's point of the PDN.
  /// magnitude = extra droop in volts.
  kSupplyDroop,
  /// Slow calibration drift: the reading walks away from truth a little
  /// more every scan.  magnitude = degC of drift added per scan.
  kCalDrift,
  /// Frame corrupted on the wire (bytes flipped after encode; the CRC
  /// catches it at the collector as a decode error).
  kFrameCorrupt,
  /// Publish suppressed: frames are produced but never reach the ring
  /// (the collector sees sequence gaps).
  kRingStall,
  /// The worker thread owning the stack parks at its next scan boundary
  /// (fires once at start_scan); only the collector's watchdog — or an
  /// explicit resume — brings it back.
  kWorkerStall,
  // The remaining kinds act on the publisher->server TCP transport and are
  // executed by NetChaos (a net::TransportHook), not by ChaosInjector.
  // Their windows are measured in *batch indexes*, not scans.
  /// Batch payload corrupted on the wire: a byte in the trailing frame's
  /// CRC region is flipped, so the server counts one decode error per
  /// corrupted batch (the framing layer itself stays intact).
  kNetCorrupt,
  /// Batch truncated mid-send and the connection cut: every frame in the
  /// batch is lost and surfaces as a sequence gap at the server.
  /// magnitude = fraction of the batch's bytes actually delivered (0, 1).
  kNetTruncate,
  /// Connection dropped cleanly after a sent batch (fires once per event);
  /// the publisher reconnects with backoff and resumes, losing nothing.
  kNetDrop,
  /// Slow-consumer stall: the sender sleeps before each batch in the
  /// window.  magnitude = seconds of stall per batch.
  kNetStall,
  /// Server->publisher ack frames silently discarded for batches in the
  /// window: the publisher's unacked window stops advancing and a later
  /// reconnect retransmits batches the server already has (exercising
  /// dedup).  Windows are batch indexes of the *acked* seq.
  kAckDrop,
  /// Ack frames delivered late.  magnitude = seconds of delay per ack.
  kAckDelay,
  /// A batch in the window is sent twice back-to-back on the same
  /// connection; the server's dedup must veto the copy.
  kDupBatch,
};
inline constexpr std::size_t kFaultKindCount = 15;

/// True for the kinds NetChaos executes on the transport (batch windows).
[[nodiscard]] constexpr bool is_net_fault(FaultKind kind) {
  return kind == FaultKind::kNetCorrupt || kind == FaultKind::kNetTruncate ||
         kind == FaultKind::kNetDrop || kind == FaultKind::kNetStall ||
         kind == FaultKind::kAckDrop || kind == FaultKind::kAckDelay ||
         kind == FaultKind::kDupBatch;
}

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kStuckRo;
  /// Target stack (fleet index).
  std::size_t stack = 0;
  /// Target site within the stack (ignored by transport faults).
  std::size_t site = 0;
  /// Active scan window [start_scan, end_scan).
  std::uint64_t start_scan = 0;
  std::uint64_t end_scan = 0;
  /// Kind-specific severity (see FaultKind docs).
  double magnitude = 0.0;

  [[nodiscard]] bool active_at(std::uint64_t scan) const {
    return scan >= start_scan && scan < end_scan;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Append one event (start_scan < end_scan required).
  FaultPlan& add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Last scan at which any event is still active (0 for an empty plan);
  /// after this scan the fleet should converge back to all-healthy.
  [[nodiscard]] std::uint64_t last_active_scan() const;

  /// Does any event of `kind` exist?
  [[nodiscard]] bool has_kind(FaultKind kind) const;

  /// Draw a reproducible campaign: `events_per_kind` events of every kind
  /// in `kinds`, targeting random (stack, site) pairs, with windows placed
  /// in the first half of the run so recovery can be observed in the
  /// second.  Sensor-level events avoid doubling up on a (stack, site)
  /// pair; transport events avoid doubling up on a stack.
  [[nodiscard]] static FaultPlan random_campaign(
      std::uint64_t seed, std::size_t stack_count,
      std::size_t sites_per_stack, std::uint64_t scans,
      const std::vector<FaultKind>& kinds, std::size_t events_per_kind = 1);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace tsvpt::inject
