// ChaosInjector: executes a FaultPlan through the FleetSampler's
// ScanInterceptor seam.  Faults are applied and withdrawn on the same
// public surfaces real failures act on:
//
//   kStuckRo / kDeadRo    -> PtSensor::inject_fault on the site's TDRO
//   kSupplyDroop          -> StackMonitor::set_site_supply (extra IR droop;
//                            the prior rail is restored when the window ends)
//   kCounterBitFlip       -> additive offset on the raw reading (silent
//                            corruption: the degraded flag stays false)
//   kCalDrift             -> growing offset, magnitude degC per scan
//   kFrameCorrupt         -> bytes flipped in the encoded frame (the CRC
//                            catches it collector-side)
//   kRingStall            -> before_publish returns false (sequence gap)
//   kWorkerStall          -> FleetSampler::stall_worker on the owning worker
//
// The injector is deterministic: what it does to stack k at scan s depends
// only on the plan, never on timing or thread count.  Per-event bookkeeping
// (applied latches, saved rails) is only ever touched by the worker that
// owns the event's stack, so no locking is needed; the injected-fault
// counters are plain per-stack slots summed after run().
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/supply.hpp"
#include "inject/fault_plan.hpp"
#include "net/framing.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt::inject {

class ChaosInjector final : public telemetry::ScanInterceptor {
 public:
  /// `sampler` is required when the plan contains kWorkerStall events (the
  /// stall gate lives in the sampler); it is not owned and must outlive
  /// the injector's use.
  explicit ChaosInjector(FaultPlan plan,
                         telemetry::FleetSampler* sampler = nullptr);

  void before_scan(std::size_t stack, std::uint64_t scan,
                   core::StackMonitor& monitor) override;
  void after_scan(std::size_t stack, std::uint64_t scan,
                  std::vector<core::StackMonitor::SiteReading>& readings)
      override;
  bool before_publish(std::size_t stack, std::uint64_t scan,
                      std::vector<std::uint8_t>& buffer) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  struct Stats {
    /// Sensor-level fault windows opened (stuck/dead/droop applications).
    std::uint64_t sensor_faults_applied = 0;
    /// Readings silently offset (bit flips + drift, one per scan touched).
    std::uint64_t readings_corrupted = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t publishes_suppressed = 0;
    std::uint64_t worker_stalls_requested = 0;
  };
  /// Aggregate counters (valid after the sampler's run()).
  [[nodiscard]] Stats stats() const;

 private:
  struct Slot {
    FaultEvent event;
    /// Window currently applied to the target (sensor fault latched, rail
    /// swapped, stall requested).
    bool applied = false;
    /// Rail to restore when a droop window closes.
    circuit::SupplyRail saved_rail;
  };

  FaultPlan plan_;
  telemetry::FleetSampler* sampler_;
  /// Slots grouped by stack: by_stack_[k] holds the events targeting stack
  /// k, touched only by the worker that owns stack k.
  std::vector<std::vector<Slot>> by_stack_;
  std::vector<Stats> stats_by_stack_;
};

/// NetChaos: executes a FaultPlan's transport kinds (kNet*) as a
/// net::TransportHook on the publisher's sending thread; all other kinds in
/// the plan are ignored, mirroring how ChaosInjector ignores the net kinds —
/// one plan can drive both seams.  Windows are batch indexes (batches seal
/// in deterministic order), and every action depends only on
/// (plan, batch_index), so a replay with the same plan and batch stream
/// applies byte-identical faults:
///
///   kNetCorrupt  -> flips a byte in the batch's trailing frame-CRC region,
///                   so framing survives and the server counts exactly one
///                   decode error per corrupted batch
///   kNetTruncate -> delivers only `magnitude` of the batch's bytes and
///                   cuts the connection (the server discards the tail and
///                   the batch's frames surface as sequence gaps)
///   kNetDrop     -> drops the connection once, after a clean send
///   kNetStall    -> sleeps `magnitude` seconds before each batch sent in
///                   the window (slow-consumer backpressure)
///   kAckDrop     -> discards server acks whose cumulative seq falls in the
///                   window (the publisher's unacked window stops advancing
///                   and a reconnect retransmits already-ingested batches)
///   kAckDelay    -> delivers acks in the window `magnitude` seconds late
///   kDupBatch    -> sends a batch in the window twice back-to-back (the
///                   server's dedup must veto the copy)
///
/// Corrupt/stall/dup fire at most once per batch index: at-least-once
/// delivery re-offers a retransmitted batch to the hook under the same
/// index, and re-flipping the same byte would repair the corruption (and
/// re-stalling would break replay determinism).
class NetChaos final : public net::TransportHook {
 public:
  explicit NetChaos(FaultPlan plan);

  net::BatchAction on_batch(std::uint64_t batch_index,
                            std::vector<std::uint8_t>& bytes) override;
  net::AckAction on_ack(const net::AckFrame& ack) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  struct Stats {
    std::uint64_t batches_corrupted = 0;
    std::uint64_t batches_truncated = 0;
    std::uint64_t connections_dropped = 0;
    std::uint64_t stalls_injected = 0;
    std::uint64_t acks_dropped = 0;
    std::uint64_t acks_delayed = 0;
    std::uint64_t batches_duplicated = 0;
  };
  /// Plain counters, updated on the sending thread; read after the
  /// publisher stops (or between manual pumps).
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    FaultEvent event;
    /// One-shot latch (kNetDrop fires once per event).
    bool fired = false;
    /// Batch indexes this slot already fired on (once-per-index kinds);
    /// windows are a handful of indexes, so linear scan is fine.
    std::vector<std::uint64_t> fired_indexes;

    /// True exactly once per batch index.
    [[nodiscard]] bool first_fire(std::uint64_t batch_index);
  };

  FaultPlan plan_;
  std::vector<Slot> slots_;
  Stats stats_;
};

}  // namespace tsvpt::inject
