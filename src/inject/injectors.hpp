// ChaosInjector: executes a FaultPlan through the FleetSampler's
// ScanInterceptor seam.  Faults are applied and withdrawn on the same
// public surfaces real failures act on:
//
//   kStuckRo / kDeadRo    -> PtSensor::inject_fault on the site's TDRO
//   kSupplyDroop          -> StackMonitor::set_site_supply (extra IR droop;
//                            the prior rail is restored when the window ends)
//   kCounterBitFlip       -> additive offset on the raw reading (silent
//                            corruption: the degraded flag stays false)
//   kCalDrift             -> growing offset, magnitude degC per scan
//   kFrameCorrupt         -> bytes flipped in the encoded frame (the CRC
//                            catches it collector-side)
//   kRingStall            -> before_publish returns false (sequence gap)
//   kWorkerStall          -> FleetSampler::stall_worker on the owning worker
//
// The injector is deterministic: what it does to stack k at scan s depends
// only on the plan, never on timing or thread count.  Per-event bookkeeping
// (applied latches, saved rails) is only ever touched by the worker that
// owns the event's stack, so no locking is needed; the injected-fault
// counters are plain per-stack slots summed after run().
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/supply.hpp"
#include "inject/fault_plan.hpp"
#include "telemetry/fleet_sampler.hpp"

namespace tsvpt::inject {

class ChaosInjector final : public telemetry::ScanInterceptor {
 public:
  /// `sampler` is required when the plan contains kWorkerStall events (the
  /// stall gate lives in the sampler); it is not owned and must outlive
  /// the injector's use.
  explicit ChaosInjector(FaultPlan plan,
                         telemetry::FleetSampler* sampler = nullptr);

  void before_scan(std::size_t stack, std::uint64_t scan,
                   core::StackMonitor& monitor) override;
  void after_scan(std::size_t stack, std::uint64_t scan,
                  std::vector<core::StackMonitor::SiteReading>& readings)
      override;
  bool before_publish(std::size_t stack, std::uint64_t scan,
                      std::vector<std::uint8_t>& buffer) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  struct Stats {
    /// Sensor-level fault windows opened (stuck/dead/droop applications).
    std::uint64_t sensor_faults_applied = 0;
    /// Readings silently offset (bit flips + drift, one per scan touched).
    std::uint64_t readings_corrupted = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t publishes_suppressed = 0;
    std::uint64_t worker_stalls_requested = 0;
  };
  /// Aggregate counters (valid after the sampler's run()).
  [[nodiscard]] Stats stats() const;

 private:
  struct Slot {
    FaultEvent event;
    /// Window currently applied to the target (sensor fault latched, rail
    /// swapped, stall requested).
    bool applied = false;
    /// Rail to restore when a droop window closes.
    circuit::SupplyRail saved_rail;
  };

  FaultPlan plan_;
  telemetry::FleetSampler* sampler_;
  /// Slots grouped by stack: by_stack_[k] holds the events targeting stack
  /// k, touched only by the worker that owns stack k.
  std::vector<std::vector<Slot>> by_stack_;
  std::vector<Stats> stats_by_stack_;
};

}  // namespace tsvpt::inject
