#include "inject/injectors.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ptsim/units.hpp"

namespace tsvpt::inject {

namespace {

/// Every fault firing lands in the flight recorder as an instant named after
/// the fault kind, so a trace shows cause (chaos) next to effect (alerts,
/// health transitions) on the same timeline.
void record_fault(FaultKind kind, std::size_t stack) {
  static const obs::Counter faults = obs::counter("tsvpt_chaos_faults_total");
  faults.inc();
  obs::instant("chaos", to_string(kind), stack);
}

}  // namespace

ChaosInjector::ChaosInjector(FaultPlan plan, telemetry::FleetSampler* sampler)
    : plan_(std::move(plan)), sampler_(sampler) {
  std::size_t max_stack = 0;
  for (const FaultEvent& e : plan_.events()) {
    max_stack = std::max(max_stack, e.stack);
    if (e.kind == FaultKind::kWorkerStall && sampler_ == nullptr) {
      throw std::invalid_argument{
          "ChaosInjector: kWorkerStall events need a sampler"};
    }
  }
  by_stack_.resize(max_stack + 1);
  stats_by_stack_.resize(max_stack + 1);
  for (const FaultEvent& e : plan_.events()) {
    by_stack_[e.stack].push_back(Slot{e, false, {}});
  }
}

void ChaosInjector::before_scan(std::size_t stack, std::uint64_t scan,
                                core::StackMonitor& monitor) {
  if (stack >= by_stack_.size()) return;
  Stats& stats = stats_by_stack_[stack];
  for (Slot& slot : by_stack_[stack]) {
    const FaultEvent& e = slot.event;
    const bool active = e.active_at(scan);
    switch (e.kind) {
      case FaultKind::kStuckRo: {
        if (active && !slot.applied) {
          // Latch the TDRO at the frequency its own nominal model assigns
          // to the apparent temperature: a confident, plausible-looking,
          // dead-wrong reading.
          const Hertz stuck = monitor.sensor(e.site).model_frequency(
              core::RoRole::kTdro, Volt{0.0}, Volt{0.0},
              to_kelvin(Celsius{e.magnitude}));
          monitor.sensor(e.site).inject_fault(core::RoRole::kTdro,
                                              core::RoFault::kStuck, stuck);
          slot.applied = true;
          stats.sensor_faults_applied += 1;
          record_fault(e.kind, stack);
        } else if (!active && slot.applied) {
          monitor.sensor(e.site).clear_faults();
          slot.applied = false;
        }
        break;
      }
      case FaultKind::kDeadRo: {
        if (active && !slot.applied) {
          monitor.sensor(e.site).inject_fault(core::RoRole::kTdro,
                                              core::RoFault::kDead);
          slot.applied = true;
          stats.sensor_faults_applied += 1;
          record_fault(e.kind, stack);
        } else if (!active && slot.applied) {
          monitor.sensor(e.site).clear_faults();
          slot.applied = false;
        }
        break;
      }
      case FaultKind::kSupplyDroop: {
        if (active && !slot.applied) {
          slot.saved_rail = monitor.site(e.site).supply;
          circuit::SupplyRail::Config drooped = slot.saved_rail.config();
          drooped.droop = Volt{drooped.droop.value() + e.magnitude};
          monitor.set_site_supply(e.site, circuit::SupplyRail{drooped});
          slot.applied = true;
          stats.sensor_faults_applied += 1;
          record_fault(e.kind, stack);
        } else if (!active && slot.applied) {
          monitor.set_site_supply(e.site, slot.saved_rail);
          slot.applied = false;
        }
        break;
      }
      case FaultKind::kWorkerStall: {
        if (scan == e.start_scan && !slot.applied) {
          // Takes effect at the worker's *next* scan boundary; recovery is
          // the collector watchdog's job (or an explicit resume).
          sampler_->stall_worker(sampler_->worker_of(stack));
          slot.applied = true;
          stats.worker_stalls_requested += 1;
          record_fault(e.kind, stack);
        }
        break;
      }
      case FaultKind::kCounterBitFlip:
      case FaultKind::kCalDrift:
      case FaultKind::kFrameCorrupt:
      case FaultKind::kRingStall:
        break;  // handled after sampling / at publish
      case FaultKind::kNetCorrupt:
      case FaultKind::kNetTruncate:
      case FaultKind::kNetDrop:
      case FaultKind::kNetStall:
      case FaultKind::kAckDrop:
      case FaultKind::kAckDelay:
      case FaultKind::kDupBatch:
        break;  // transport faults: executed by NetChaos, not here
    }
  }
}

void ChaosInjector::after_scan(
    std::size_t stack, std::uint64_t scan,
    std::vector<core::StackMonitor::SiteReading>& readings) {
  if (stack >= by_stack_.size()) return;
  Stats& stats = stats_by_stack_[stack];
  for (Slot& slot : by_stack_[stack]) {
    const FaultEvent& e = slot.event;
    if (!e.active_at(scan) || e.site >= readings.size()) continue;
    switch (e.kind) {
      case FaultKind::kCounterBitFlip:
        // Silent corruption: the value moves, the degraded flag does not.
        readings[e.site].sensed =
            Celsius{readings[e.site].sensed.value() + e.magnitude};
        stats.readings_corrupted += 1;
        record_fault(e.kind, stack);
        break;
      case FaultKind::kCalDrift:
        readings[e.site].sensed = Celsius{
            readings[e.site].sensed.value() +
            e.magnitude * static_cast<double>(scan - e.start_scan + 1)};
        stats.readings_corrupted += 1;
        record_fault(e.kind, stack);
        break;
      default:
        break;
    }
  }
}

bool ChaosInjector::before_publish(std::size_t stack, std::uint64_t scan,
                                   std::vector<std::uint8_t>& buffer) {
  if (stack >= by_stack_.size()) return true;
  Stats& stats = stats_by_stack_[stack];
  bool publish = true;
  for (Slot& slot : by_stack_[stack]) {
    const FaultEvent& e = slot.event;
    if (!e.active_at(scan)) continue;
    if (e.kind == FaultKind::kFrameCorrupt && !buffer.empty()) {
      // Flip bits mid-payload; the trailing CRC no longer matches and the
      // collector counts a decode error instead of ingesting garbage.
      buffer[buffer.size() / 2] ^= 0xFFu;
      stats.frames_corrupted += 1;
      record_fault(e.kind, stack);
    } else if (e.kind == FaultKind::kRingStall) {
      publish = false;
    }
  }
  if (!publish) {
    stats.publishes_suppressed += 1;
    record_fault(FaultKind::kRingStall, stack);
  }
  return publish;
}

NetChaos::NetChaos(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultEvent& e : plan_.events()) {
    if (is_net_fault(e.kind)) slots_.push_back(Slot{e, false, {}});
  }
}

bool NetChaos::Slot::first_fire(std::uint64_t batch_index) {
  if (std::find(fired_indexes.begin(), fired_indexes.end(), batch_index) !=
      fired_indexes.end()) {
    return false;
  }
  fired_indexes.push_back(batch_index);
  return true;
}

net::BatchAction NetChaos::on_batch(std::uint64_t batch_index,
                                    std::vector<std::uint8_t>& bytes) {
  net::BatchAction action;
  for (Slot& slot : slots_) {
    const FaultEvent& e = slot.event;
    if (!e.active_at(batch_index)) continue;
    switch (e.kind) {
      case FaultKind::kNetCorrupt:
        // Target the trailing inner frame's CRC bytes: the framing layer
        // stays parseable, the frame fails its own CRC at the aggregator.
        if (bytes.size() > net::kBatchHeaderSize + 8 &&
            slot.first_fire(batch_index)) {
          bytes[bytes.size() - 1 - (batch_index % 4)] ^= 0xFFu;
          stats_.batches_corrupted += 1;
          record_fault(e.kind, e.stack);
        }
        break;
      case FaultKind::kNetTruncate: {
        const auto keep = static_cast<std::size_t>(
            static_cast<double>(bytes.size()) * e.magnitude);
        action.truncate_to =
            std::min(std::max<std::size_t>(keep, 1), bytes.size() - 1);
        stats_.batches_truncated += 1;
        record_fault(e.kind, e.stack);
        break;
      }
      case FaultKind::kNetDrop:
        if (!slot.fired) {
          action.drop_connection = true;
          slot.fired = true;
          stats_.connections_dropped += 1;
          record_fault(e.kind, e.stack);
        }
        break;
      case FaultKind::kNetStall:
        if (slot.first_fire(batch_index)) {
          action.stall_seconds += e.magnitude;
          stats_.stalls_injected += 1;
          record_fault(e.kind, e.stack);
        }
        break;
      case FaultKind::kDupBatch:
        if (slot.first_fire(batch_index)) {
          action.duplicate = true;
          stats_.batches_duplicated += 1;
          record_fault(e.kind, e.stack);
        }
        break;
      default:
        break;  // sensor/scan kinds + ack kinds: not batch-side
    }
  }
  return action;
}

net::AckAction NetChaos::on_ack(const net::AckFrame& ack) {
  net::AckAction action;
  for (Slot& slot : slots_) {
    const FaultEvent& e = slot.event;
    // Ack windows index the *acked* cumulative seq, so "drop acks covering
    // batches 2..4" reads the same way batch windows do.  Ack cadence is
    // timing-dependent (the server acks per consumed chunk), so these fire
    // per ack, not once — tests assert on >= 1, not exact counts.
    if (!e.active_at(ack.ack_seq)) continue;
    switch (e.kind) {
      case FaultKind::kAckDrop:
        action.drop = true;
        stats_.acks_dropped += 1;
        record_fault(e.kind, e.stack);
        break;
      case FaultKind::kAckDelay:
        action.delay_seconds += e.magnitude;
        stats_.acks_delayed += 1;
        record_fault(e.kind, e.stack);
        break;
      default:
        break;
    }
  }
  return action;
}

ChaosInjector::Stats ChaosInjector::stats() const {
  Stats total;
  for (const Stats& s : stats_by_stack_) {
    total.sensor_faults_applied += s.sensor_faults_applied;
    total.readings_corrupted += s.readings_corrupted;
    total.frames_corrupted += s.frames_corrupted;
    total.publishes_suppressed += s.publishes_suppressed;
    total.worker_stalls_requested += s.worker_stalls_requested;
  }
  return total;
}

}  // namespace tsvpt::inject
