#include "inject/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tsvpt::inject {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStuckRo: return "stuck-ro";
    case FaultKind::kDeadRo: return "dead-ro";
    case FaultKind::kCounterBitFlip: return "counter-bit-flip";
    case FaultKind::kSupplyDroop: return "supply-droop";
    case FaultKind::kCalDrift: return "cal-drift";
    case FaultKind::kFrameCorrupt: return "frame-corrupt";
    case FaultKind::kRingStall: return "ring-stall";
    case FaultKind::kWorkerStall: return "worker-stall";
    case FaultKind::kNetCorrupt: return "net-corrupt";
    case FaultKind::kNetTruncate: return "net-truncate";
    case FaultKind::kNetDrop: return "net-drop";
    case FaultKind::kNetStall: return "net-stall";
    case FaultKind::kAckDrop: return "ack-drop";
    case FaultKind::kAckDelay: return "ack-delay";
    case FaultKind::kDupBatch: return "dup-batch";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  if (event.start_scan >= event.end_scan) {
    throw std::invalid_argument{"FaultPlan::add: empty scan window"};
  }
  events_.push_back(event);
  return *this;
}

std::uint64_t FaultPlan::last_active_scan() const {
  std::uint64_t last = 0;
  for (const FaultEvent& e : events_) {
    last = std::max(last, e.end_scan - 1);
  }
  return last;
}

bool FaultPlan::has_kind(FaultKind kind) const {
  return std::any_of(events_.begin(), events_.end(),
                     [&](const FaultEvent& e) { return e.kind == kind; });
}

FaultPlan FaultPlan::random_campaign(std::uint64_t seed,
                                     std::size_t stack_count,
                                     std::size_t sites_per_stack,
                                     std::uint64_t scans,
                                     const std::vector<FaultKind>& kinds,
                                     std::size_t events_per_kind) {
  if (stack_count == 0 || sites_per_stack == 0) {
    throw std::invalid_argument{"random_campaign: empty fleet"};
  }
  if (scans < 16) {
    throw std::invalid_argument{
        "random_campaign: too few scans to observe recovery"};
  }
  Rng rng{derive_seed(seed, 0xFA17)};
  FaultPlan plan;

  // Sensor faults target distinct (stack, site) pairs, transport faults
  // distinct stacks, so one fault's symptoms never mask another's.
  std::vector<std::pair<std::size_t, std::size_t>> used_sites;
  std::vector<std::size_t> used_stacks;

  const auto pick_site = [&](FaultEvent& e) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      e.stack = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stack_count) - 1));
      e.site = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sites_per_stack) - 1));
      const auto key = std::make_pair(e.stack, e.site);
      if (std::find(used_sites.begin(), used_sites.end(), key) ==
          used_sites.end()) {
        used_sites.push_back(key);
        return;
      }
    }
    // Fleet smaller than the campaign: accept the collision.
  };
  const auto pick_stack = [&](FaultEvent& e) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      e.stack = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(stack_count) - 1));
      if (std::find(used_stacks.begin(), used_stacks.end(), e.stack) ==
          used_stacks.end()) {
        used_stacks.push_back(e.stack);
        return;
      }
    }
  };
  // Windows live in the first half of the run so the second half shows
  // recovery (probe + probation need tens of scans after the fault clears).
  const auto pick_window = [&](FaultEvent& e, std::uint64_t min_len,
                               std::uint64_t max_len) {
    const std::uint64_t latest_start = std::max<std::uint64_t>(scans / 4, 3);
    e.start_scan = static_cast<std::uint64_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(latest_start)));
    const std::uint64_t len = static_cast<std::uint64_t>(rng.uniform_int(
        static_cast<std::int64_t>(min_len),
        static_cast<std::int64_t>(max_len)));
    e.end_scan = std::min(e.start_scan + len, scans / 2);
    if (e.end_scan <= e.start_scan) e.end_scan = e.start_scan + 1;
  };

  for (const FaultKind kind : kinds) {
    for (std::size_t n = 0; n < events_per_kind; ++n) {
      FaultEvent e;
      e.kind = kind;
      switch (kind) {
        case FaultKind::kStuckRo:
          pick_site(e);
          pick_window(e, 8, 20);
          // Rail high or low — either way far enough from any plausible
          // neighbourhood temperature that the onset reads as a jump.
          e.magnitude = rng.bernoulli(0.5) ? rng.uniform(85.0, 115.0)
                                           : rng.uniform(-15.0, 5.0);
          break;
        case FaultKind::kDeadRo:
          pick_site(e);
          pick_window(e, 8, 20);
          break;
        case FaultKind::kCounterBitFlip:
          pick_site(e);
          pick_window(e, 6, 16);
          e.magnitude = (rng.bernoulli(0.5) ? 1.0 : -1.0) *
                        rng.uniform(12.0, 25.0);
          break;
        case FaultKind::kSupplyDroop:
          pick_site(e);
          pick_window(e, 8, 20);
          e.magnitude = rng.uniform(0.08, 0.15);
          break;
        case FaultKind::kCalDrift:
          // Long window, fast enough walk that the accumulated offset
          // clears a hotspot-safe spatial threshold well before the window
          // closes (and the snap-back at the end reads as a jump anyway).
          pick_site(e);
          pick_window(e, 14, 24);
          e.magnitude = rng.uniform(2.0, 4.0);
          break;
        case FaultKind::kFrameCorrupt:
          pick_stack(e);
          pick_window(e, 2, 5);
          break;
        case FaultKind::kRingStall:
          pick_stack(e);
          pick_window(e, 3, 6);
          break;
        case FaultKind::kWorkerStall:
          // Fires once at start_scan; recovery is the watchdog's job.
          pick_stack(e);
          pick_window(e, 1, 1);
          break;
        // Net kinds: windows are batch indexes (a publisher seals batches
        // in deterministic order), but the placement logic is the same —
        // first half of the run, transport-style stack dedupe.
        case FaultKind::kNetCorrupt:
          pick_stack(e);
          pick_window(e, 2, 5);
          break;
        case FaultKind::kNetTruncate:
          pick_stack(e);
          pick_window(e, 1, 3);
          e.magnitude = rng.uniform(0.25, 0.75);
          break;
        case FaultKind::kNetDrop:
          pick_stack(e);
          pick_window(e, 1, 1);
          break;
        case FaultKind::kNetStall:
          pick_stack(e);
          pick_window(e, 2, 4);
          e.magnitude = rng.uniform(0.002, 0.010);
          break;
        case FaultKind::kAckDrop:
          pick_stack(e);
          pick_window(e, 2, 5);
          break;
        case FaultKind::kAckDelay:
          pick_stack(e);
          pick_window(e, 2, 4);
          e.magnitude = rng.uniform(0.002, 0.010);
          break;
        case FaultKind::kDupBatch:
          pick_stack(e);
          pick_window(e, 1, 3);
          break;
      }
      plan.add(e);
    }
  }
  return plan;
}

}  // namespace tsvpt::inject
