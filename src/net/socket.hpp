// Thin POSIX TCP layer for the fleet telemetry transport: a move-only RAII
// fd owner plus the handful of helpers the publisher and ingest server need
// (listen/connect/accept on loopback-or-LAN addresses, non-blocking mode,
// and partial-IO-aware send/recv).  Nothing here knows about frames or
// batches — framing.hpp builds the protocol on top of these primitives.
//
// Error philosophy: setup failures that indicate a misconfigured run
// (cannot bind the listen port) throw; steady-state IO failures (peer went
// away, kernel buffer full) are statuses the caller handles, because the
// whole point of the ingest layer is to survive flaky clients.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tsvpt::net {

/// Move-only owner of a socket file descriptor.  A default-constructed or
/// moved-from Socket holds no fd (`valid()` is false); the destructor closes
/// whatever is held.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Close the held fd (idempotent).
  void close();

 private:
  int fd_ = -1;
};

/// Create a TCP listener bound to host:port (port 0 asks the kernel for an
/// ephemeral port — read it back with local_port).  SO_REUSEADDR is set so
/// rapid restart cycles in tests do not trip TIME_WAIT.  Throws
/// std::runtime_error when the address cannot be bound.
[[nodiscard]] Socket tcp_listen(const std::string& host, std::uint16_t port,
                                int backlog = 64);

/// Port a bound socket actually listens on (resolves port-0 binds).
[[nodiscard]] std::uint16_t local_port(const Socket& socket);

/// Blocking connect; returns an invalid Socket on failure (connection
/// refused is an expected steady-state outcome for a publisher whose server
/// has not come up yet).
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Accept one pending connection from a non-blocking listener; invalid
/// Socket when none is pending.
[[nodiscard]] Socket tcp_accept(const Socket& listener);

void set_nonblocking(const Socket& socket, bool enabled);

/// Disable Nagle so small alert-bearing batches are not held back.
void set_nodelay(const Socket& socket);

enum class IoStatus : std::uint8_t {
  kOk,          // bytes transferred (see IoResult::bytes)
  kWouldBlock,  // non-blocking socket had no data / no buffer space
  kClosed,      // orderly shutdown by the peer
  kError,       // anything else; the connection is unusable
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;
};

/// One recv() with EINTR retry.  kOk implies bytes > 0.
[[nodiscard]] IoResult recv_some(const Socket& socket, std::uint8_t* data,
                                 std::size_t size);

/// One send() with EINTR retry; may transfer fewer bytes than asked.
[[nodiscard]] IoResult send_some(const Socket& socket,
                                 const std::uint8_t* data, std::size_t size);

/// Blocking write loop that rides out partial writes and EINTR; false when
/// the connection died before all bytes were handed to the kernel.
[[nodiscard]] bool send_all(const Socket& socket, const std::uint8_t* data,
                            std::size_t size);

}  // namespace tsvpt::net
