// Batch framing for the fleet telemetry transport.  A TCP stream carries a
// sequence of batches, each wrapping zero or more v2 telemetry wire frames:
//
//   [magic u32 "TSVB"] [version u16 = 3] [flags u16]
//   [publisher_id u64] [batch_seq u64]
//   [frame_count u32] [payload_bytes u32]
//   [trace_id u64] [send_ns u64] [offset_ns i64]
//   [header_crc32 u32]                                        -- 60 bytes
//   payload: frame_count x { [len u32] [len bytes of v2 frame] }
//
// Protocol v2 added the delivery-guarantee fields: every data batch carries
// its publisher's stable id and a per-publisher sequence number (starting at
// 1), which the server acks cumulatively and dedups against, making
// retransmission idempotent.  Flags mark the two zero-frame control batches:
// kBatchFlagHeartbeat (keepalive from an idle publisher; carries no seq) and
// kBatchFlagFin (drain handshake; batch_seq echoes the highest data seq the
// publisher allocated, so the server can report "drained" once its
// cumulative ack reaches it).
//
// Protocol v3 adds the trace-context fields (v2 is still parsed — spill logs
// written by a v2 build replay fine): `trace_id` names this batch in both
// processes' flight recorders so a TraceMerge can pair the publisher's send
// span with the server's receive span; `send_ns` is the publisher's steady
// clock at the moment of the socket write (re-stamped on every send attempt
// via restamp_batch_send, so a retransmit carries a fresh timestamp); and
// `offset_ns` ships the publisher's current ClockAlign estimate
// (server_clock - publisher_clock), valid only under kBatchFlagOffsetValid,
// letting the server re-base publisher timestamps onto its own clock for
// cross-process latency attribution.
//
// The header CRC covers the first 32 header bytes, so a corrupted or
// desynchronised stream is rejected before any length field is trusted.
// Inner frames carry their own CRC (telemetry::decode verifies it), so a
// payload byte flipped on the wire surfaces as a per-frame decode error at
// the aggregator, not as UB or a poisoned connection.
//
// BatchParser is an incremental consumer: feed it whatever recv() returned —
// a byte at a time, half a header, three batches at once — and it emits each
// completed inner frame exactly once.  Any structural violation (bad magic,
// bad header CRC, frame lengths that disagree with payload_bytes, absurd
// sizes) poisons the parser: the connection cannot be trusted past that
// point and must be dropped.  A partial batch at orderly disconnect is NOT
// an error — a SIGKILL'd publisher must leave the server consistent, so the
// tail is simply discarded.  An optional BatchHandler sees every validated
// batch header before its frames are emitted and may veto emission (the
// server's dedup seam: a retransmitted batch parses cleanly but its frames
// are skipped).
//
// The reverse direction is the ack channel: the server answers accepted
// batches with fixed-size TSVA frames carrying its cumulative ack (and, on
// protocol error, a best-effort nack naming the BatchStatus).  AckParser is
// the publisher-side incremental decoder with the same poison discipline.
//
// TransportHook is the chaos seam: the publisher offers every outgoing batch
// to the hook, which may stall, truncate (cutting the connection mid-batch),
// corrupt bytes in place, duplicate the send, or drop the connection after a
// clean send; incoming acks pass through on_ack, which may drop or delay
// them.  It lives here (not in inject/) so inject can depend on net without
// ingest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace tsvpt::net {

inline constexpr std::uint32_t kBatchMagic = 0x42565354u;  // "TSVB" LE
inline constexpr std::uint16_t kBatchVersion = 3;
/// Previous protocol version, still accepted by BatchParser (spill logs and
/// mixed-version fleets).
inline constexpr std::uint16_t kBatchVersionV2 = 2;
inline constexpr std::size_t kBatchHeaderSize = 60;
inline constexpr std::size_t kBatchHeaderSizeV2 = 36;

// Byte-level batch header maps.  The `layout:` / `field:` comments are
// wire-layout lint directives: tsvpt_lint cross-checks that each header's
// fields start at 0, stay contiguous and non-overlapping, sum to the
// declared header size, and that the CRC span stays inside the header — an
// off-by-one here fails LintClean before it can corrupt a stream.

// layout: tsvb_v3 size=60 crc=[0,56)
inline constexpr std::size_t kBatchMagicOffset = 0;          // field: magic size=4
inline constexpr std::size_t kBatchVersionOffset = 4;        // field: version size=2
inline constexpr std::size_t kBatchFlagsOffset = 6;          // field: flags size=2
inline constexpr std::size_t kBatchPublisherIdOffset = 8;    // field: publisher_id size=8
inline constexpr std::size_t kBatchSeqOffset = 16;           // field: batch_seq size=8
inline constexpr std::size_t kBatchFrameCountOffset = 24;    // field: frame_count size=4
inline constexpr std::size_t kBatchPayloadBytesOffset = 28;  // field: payload_bytes size=4
inline constexpr std::size_t kBatchTraceIdOffset = 32;       // field: trace_id size=8
inline constexpr std::size_t kBatchSendNsOffset = 40;        // field: send_ns size=8
inline constexpr std::size_t kBatchOffsetNsOffset = 48;      // field: offset_ns size=8
inline constexpr std::size_t kBatchHeaderCrcOffset = 56;     // field: header_crc size=4
/// Bytes the v3 header CRC covers (everything before the CRC field).
inline constexpr std::size_t kBatchCrcCoverage = 56;

// The v2 header is the v3 prefix without the trace/timestamp trio; spill
// logs written by a v2 build still replay through BatchParser.
// layout: tsvb_v2 size=36 crc=[0,32)
inline constexpr std::size_t kBatchV2MagicOffset = 0;          // field: magic size=4
inline constexpr std::size_t kBatchV2VersionOffset = 4;        // field: version size=2
inline constexpr std::size_t kBatchV2FlagsOffset = 6;          // field: flags size=2
inline constexpr std::size_t kBatchV2PublisherIdOffset = 8;    // field: publisher_id size=8
inline constexpr std::size_t kBatchV2SeqOffset = 16;           // field: batch_seq size=8
inline constexpr std::size_t kBatchV2FrameCountOffset = 24;    // field: frame_count size=4
inline constexpr std::size_t kBatchV2PayloadBytesOffset = 28;  // field: payload_bytes size=4
inline constexpr std::size_t kBatchV2HeaderCrcOffset = 32;     // field: header_crc size=4
/// Bytes the v2 header CRC covers.
inline constexpr std::size_t kBatchV2CrcCoverage = 32;
/// Upper bounds a well-formed batch may claim; anything larger is treated as
/// stream corruption rather than trusted as an allocation size.
inline constexpr std::uint32_t kMaxBatchPayload = 64u << 20;
inline constexpr std::uint32_t kMaxBatchFrames = 1u << 20;

/// Zero-frame keepalive from an idle publisher; carries no sequence number.
inline constexpr std::uint16_t kBatchFlagHeartbeat = 1u << 0;
/// Drain handshake: "my highest allocated data seq is batch_seq; tell me
/// when your cumulative ack reaches it."
inline constexpr std::uint16_t kBatchFlagFin = 1u << 1;
/// The header's offset_ns carries a live ClockAlign estimate (a publisher
/// that has not completed a round trip yet sends 0 without this flag).
inline constexpr std::uint16_t kBatchFlagOffsetValid = 1u << 2;

/// Per-batch metadata stamped into the v3 header.  The defaults encode
/// "anonymous best-effort publisher" so v1-era call sites that only pass
/// frames still produce valid batches (seq 0 batches bypass dedup).
struct BatchMeta {
  std::uint64_t publisher_id = 0;
  /// Data batch sequence, starting at 1; 0 = unsequenced (no ack/dedup).
  std::uint64_t seq = 0;
  std::uint16_t flags = 0;
  /// Trace-context id pairing this batch's spans across processes.
  std::uint64_t trace_id = 0;
  /// Publisher steady clock at socket write, ns (restamped per attempt).
  std::uint64_t send_ns = 0;
  /// Publisher's ClockAlign estimate (server - publisher), ns; meaningful
  /// only under kBatchFlagOffsetValid.
  std::int64_t offset_ns = 0;
};

/// Serialize `frames` (each an encoded v2 wire frame) into one batch.
[[nodiscard]] std::vector<std::uint8_t> encode_batch(
    const std::vector<std::vector<std::uint8_t>>& frames,
    const BatchMeta& meta = {});

/// Bytes a batch of these frames occupies on the wire.
[[nodiscard]] std::size_t batch_wire_size(
    const std::vector<std::vector<std::uint8_t>>& frames);

/// Re-stamp a previously encoded batch's send timestamp and clock offset in
/// place (header CRC recomputed) — called immediately before every send
/// attempt so retransmits carry fresh timestamps.  `offset_valid` sets or
/// clears kBatchFlagOffsetValid.  v2 batches (replayed spill logs) have no
/// timestamp fields and pass through untouched; returns whether the batch
/// was restamped.
[[nodiscard]] bool restamp_batch_send(std::vector<std::uint8_t>& bytes,
                                      std::uint64_t send_ns,
                                      std::int64_t offset_ns,
                                      bool offset_valid);

enum class BatchStatus : std::uint8_t {
  kOk,             // all fed bytes consumed (possibly buffering a partial)
  kBadMagic,       // stream desynchronised or not a TSVB stream
  kBadVersion,     // version this build does not speak
  kBadHeaderCrc,   // header corrupted on the wire
  kOversized,      // claimed payload/frame count above sanity bounds
  kBadFrameBounds  // inner frame lengths disagree with payload_bytes
};

[[nodiscard]] const char* to_string(BatchStatus status);

/// A validated batch header, surfaced to the BatchHandler before any of the
/// batch's frames are emitted.
struct BatchInfo {
  std::uint64_t publisher_id = 0;
  std::uint64_t seq = 0;
  std::uint16_t flags = 0;
  std::uint32_t frame_count = 0;
  std::uint32_t payload_bytes = 0;
  /// Wire protocol version this batch arrived as (2 or 3).
  std::uint16_t version = kBatchVersion;
  /// v3 trace-context fields; all zero on a v2 batch.
  std::uint64_t trace_id = 0;
  std::uint64_t send_ns = 0;
  std::int64_t offset_ns = 0;

  [[nodiscard]] bool heartbeat() const {
    return (flags & kBatchFlagHeartbeat) != 0;
  }
  [[nodiscard]] bool fin() const { return (flags & kBatchFlagFin) != 0; }
  [[nodiscard]] bool offset_valid() const {
    return (flags & kBatchFlagOffsetValid) != 0;
  }
};

/// Incremental batch stream decoder.  One instance per connection; any
/// status other than kOk is sticky and the connection must be closed.
class BatchParser {
 public:
  using FrameHandler = std::function<void(std::vector<std::uint8_t>&&)>;
  /// Sees every validated batch before its frames; return false to skip
  /// frame emission (the batch still counts in batches()/bytes()).
  using BatchHandler = std::function<bool(const BatchInfo&)>;

  /// Install the per-batch veto seam (dedup, heartbeat/FIN handling).
  void set_batch_handler(BatchHandler handler) {
    on_batch_ = std::move(handler);
  }

  /// Feed `size` received bytes; `on_frame` is invoked once per completed
  /// inner frame, in stream order.  A batch's frames are only emitted after
  /// the whole batch has been validated, so a batch that fails validation
  /// emits nothing.
  [[nodiscard]] BatchStatus consume(const std::uint8_t* data,
                                    std::size_t size,
                                    const FrameHandler& on_frame);

  [[nodiscard]] bool failed() const { return status_ != BatchStatus::kOk; }
  [[nodiscard]] BatchStatus status() const { return status_; }

  /// Bytes buffered awaiting a batch's completion; nonzero at disconnect
  /// means the peer died mid-batch (the tail is discarded, not an error).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  /// Frames inside batches a BatchHandler vetoed (dedup skips).
  [[nodiscard]] std::uint64_t frames_skipped() const {
    return frames_skipped_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  BatchStatus status_ = BatchStatus::kOk;
  BatchHandler on_batch_;
  std::uint64_t batches_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t frames_skipped_ = 0;
};

// --- server -> client ack channel ------------------------------------------

inline constexpr std::uint32_t kAckMagic = 0x41565354u;  // "TSVA" LE
inline constexpr std::uint16_t kAckVersion = 2;
/// Previous ack version, still accepted by AckParser.
inline constexpr std::uint16_t kAckVersionV1 = 1;
inline constexpr std::size_t kAckFrameSize = 48;
inline constexpr std::size_t kAckFrameSizeV1 = 24;

// layout: tsva_v2 size=48 crc=[0,44)
inline constexpr std::size_t kAckMagicOffset = 0;        // field: magic size=4
inline constexpr std::size_t kAckVersionOffset = 4;      // field: version size=2
inline constexpr std::size_t kAckFlagsOffset = 6;        // field: flags size=2
inline constexpr std::size_t kAckSeqOffset = 8;          // field: ack_seq size=8
inline constexpr std::size_t kAckNackOffset = 16;        // field: nack size=4
inline constexpr std::size_t kAckEchoSendNsOffset = 20;  // field: echo_send_ns size=8
inline constexpr std::size_t kAckSrvRxNsOffset = 28;     // field: srv_rx_ns size=8
inline constexpr std::size_t kAckSrvTxNsOffset = 36;     // field: srv_tx_ns size=8
inline constexpr std::size_t kAckCrcOffset = 44;         // field: crc size=4
/// Bytes the v2 ack CRC covers.
inline constexpr std::size_t kAckCrcCoverage = 44;

// The v1 ack is the same prefix without the NTP timestamp trio.
// layout: tsva_v1 size=24 crc=[0,20)
inline constexpr std::size_t kAckV1MagicOffset = 0;    // field: magic size=4
inline constexpr std::size_t kAckV1VersionOffset = 4;  // field: version size=2
inline constexpr std::size_t kAckV1FlagsOffset = 6;    // field: flags size=2
inline constexpr std::size_t kAckV1SeqOffset = 8;      // field: ack_seq size=8
inline constexpr std::size_t kAckV1NackOffset = 16;    // field: nack size=4
inline constexpr std::size_t kAckV1CrcOffset = 20;     // field: crc size=4
/// Bytes the v1 ack CRC covers.
inline constexpr std::size_t kAckV1CrcCoverage = 20;

/// The nack field carries a BatchStatus and the connection is being closed.
inline constexpr std::uint16_t kAckFlagNack = 1u << 0;
/// The publisher's FIN seq is covered by ack_seq: it may close cleanly.
inline constexpr std::uint16_t kAckFlagDrained = 1u << 1;

/// One fixed-size ack frame (v2, 48 bytes; the 24-byte v1 without the
/// timestamp trio is still parsed):
///   [magic u32 "TSVA"] [version u16 = 2] [flags u16]
///   [ack_seq u64] [nack u32]
///   [echo_send_ns u64] [srv_rx_ns u64] [srv_tx_ns u64]
///   [crc32 u32 over the first 44 bytes]
/// The timestamp trio gives the publisher the full NTP four-tuple: t1 =
/// echo_send_ns (its own send stamp echoed back), t2 = srv_rx_ns (server
/// clock at batch parse), t3 = srv_tx_ns (server clock at ack build), and
/// t4 is the publisher's clock on ack receipt.
struct AckFrame {
  std::uint16_t flags = 0;
  /// Cumulative: the highest batch seq accepted from this publisher (0 =
  /// none yet).  Everything at or below it is durably ingested or was
  /// deliberately skipped by the publisher itself.
  std::uint64_t ack_seq = 0;
  /// BatchStatus (as u32) when kAckFlagNack is set; 0 otherwise.
  std::uint32_t nack = 0;
  /// send_ns of the most recent batch this ack covers, echoed verbatim
  /// (0 = no timestamped batch seen, e.g. v2 traffic or v1 ack).
  std::uint64_t echo_send_ns = 0;
  /// Server steady clock when that batch was parsed, ns.
  std::uint64_t srv_rx_ns = 0;
  /// Server steady clock when this ack frame was built, ns.
  std::uint64_t srv_tx_ns = 0;

  [[nodiscard]] bool nacked() const { return (flags & kAckFlagNack) != 0; }
  [[nodiscard]] bool drained() const {
    return (flags & kAckFlagDrained) != 0;
  }
  /// All four NTP timestamps will be available to the receiver.
  [[nodiscard]] bool timestamped() const { return echo_send_ns != 0; }
};

[[nodiscard]] std::vector<std::uint8_t> encode_ack(const AckFrame& ack);
/// Append the encoded ack to `out` (the server's per-connection outbox).
void append_ack(std::vector<std::uint8_t>& out, const AckFrame& ack);

enum class AckStatus : std::uint8_t {
  kOk,
  kBadMagic,    // stream desynchronised or not an ack stream
  kBadVersion,  // version this build does not speak
  kBadCrc       // frame corrupted on the wire
};

[[nodiscard]] const char* to_string(AckStatus status);

/// Incremental decoder for the server->client ack stream.  Same poison
/// discipline as BatchParser: any non-kOk status is sticky and the
/// connection must be dropped (retransmission after reconnect makes that
/// safe under at-least-once delivery).
class AckParser {
 public:
  using AckHandler = std::function<void(const AckFrame&)>;

  [[nodiscard]] AckStatus consume(const std::uint8_t* data, std::size_t size,
                                  const AckHandler& on_ack);

  [[nodiscard]] bool failed() const { return status_ != AckStatus::kOk; }
  [[nodiscard]] AckStatus status() const { return status_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }
  [[nodiscard]] std::uint64_t acks() const { return acks_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  AckStatus status_ = AckStatus::kOk;
  std::uint64_t acks_ = 0;
};

// --- chaos seam -------------------------------------------------------------

inline constexpr std::size_t kNoTruncate =
    std::numeric_limits<std::size_t>::max();

/// What the chaos hook wants done to one outgoing batch.
struct BatchAction {
  double stall_seconds = 0.0;          // sleep before sending (slow consumer)
  std::size_t truncate_to = kNoTruncate;  // send only this many bytes, then
                                          // cut the connection mid-batch
  bool drop_connection = false;        // close after a clean send
  /// Send the batch twice back to back (the server's dedup must drop the
  /// second copy; only at-least-once semantics make this survivable).
  bool duplicate = false;
};

/// What the chaos hook wants done to one incoming ack frame.
struct AckAction {
  bool drop = false;          // swallow the ack (publisher retransmits later)
  double delay_seconds = 0.0; // sleep before delivering it
};

/// Publisher-side fault seam.  on_batch is called once per send attempt from
/// the sending thread; `bytes` may be mutated in place to model wire
/// corruption.  on_ack is called once per decoded ack frame before the
/// publisher's window advances; the default passes acks through untouched.
class TransportHook {
 public:
  virtual ~TransportHook() = default;
  virtual BatchAction on_batch(std::uint64_t batch_index,
                               std::vector<std::uint8_t>& bytes) = 0;
  virtual AckAction on_ack(const AckFrame& ack) {
    (void)ack;
    return {};
  }
};

}  // namespace tsvpt::net
