// Batch framing for the fleet telemetry transport.  A TCP stream carries a
// sequence of batches, each wrapping one or more v2 telemetry wire frames:
//
//   [magic u32 "TSVB"] [version u16] [flags u16] [frame_count u32]
//   [payload_bytes u32] [header_crc32 u32]          -- 20-byte header
//   payload: frame_count x { [len u32] [len bytes of v2 frame] }
//
// The header CRC covers the first 16 header bytes, so a corrupted or
// desynchronised stream is rejected before any length field is trusted.
// Inner frames carry their own CRC (telemetry::decode verifies it), so a
// payload byte flipped on the wire surfaces as a per-frame decode error at
// the aggregator, not as UB or a poisoned connection.
//
// BatchParser is an incremental consumer: feed it whatever recv() returned —
// a byte at a time, half a header, three batches at once — and it emits each
// completed inner frame exactly once.  Any structural violation (bad magic,
// bad header CRC, frame lengths that disagree with payload_bytes, absurd
// sizes) poisons the parser: the connection cannot be trusted past that
// point and must be dropped.  A partial batch at orderly disconnect is NOT
// an error — a SIGKILL'd publisher must leave the server consistent, so the
// tail is simply discarded.
//
// TransportHook is the chaos seam: the publisher offers every outgoing batch
// to the hook, which may stall, truncate (cutting the connection mid-batch),
// corrupt bytes in place, or drop the connection after a clean send.  It
// lives here (not in inject/) so inject can depend on net without ingest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace tsvpt::net {

inline constexpr std::uint32_t kBatchMagic = 0x42565354u;  // "TSVB" LE
inline constexpr std::uint16_t kBatchVersion = 1;
inline constexpr std::size_t kBatchHeaderSize = 20;
/// Upper bounds a well-formed batch may claim; anything larger is treated as
/// stream corruption rather than trusted as an allocation size.
inline constexpr std::uint32_t kMaxBatchPayload = 64u << 20;
inline constexpr std::uint32_t kMaxBatchFrames = 1u << 20;

/// Serialize `frames` (each an encoded v2 wire frame) into one batch.
[[nodiscard]] std::vector<std::uint8_t> encode_batch(
    const std::vector<std::vector<std::uint8_t>>& frames);

/// Bytes a batch of these frames occupies on the wire.
[[nodiscard]] std::size_t batch_wire_size(
    const std::vector<std::vector<std::uint8_t>>& frames);

enum class BatchStatus : std::uint8_t {
  kOk,             // all fed bytes consumed (possibly buffering a partial)
  kBadMagic,       // stream desynchronised or not a TSVB stream
  kBadVersion,     // version this build does not speak
  kBadHeaderCrc,   // header corrupted on the wire
  kOversized,      // claimed payload/frame count above sanity bounds
  kBadFrameBounds  // inner frame lengths disagree with payload_bytes
};

[[nodiscard]] const char* to_string(BatchStatus status);

/// Incremental batch stream decoder.  One instance per connection; any
/// status other than kOk is sticky and the connection must be closed.
class BatchParser {
 public:
  using FrameHandler = std::function<void(std::vector<std::uint8_t>&&)>;

  /// Feed `size` received bytes; `on_frame` is invoked once per completed
  /// inner frame, in stream order.  A batch's frames are only emitted after
  /// the whole batch has been validated, so a batch that fails validation
  /// emits nothing.
  BatchStatus consume(const std::uint8_t* data, std::size_t size,
                      const FrameHandler& on_frame);

  [[nodiscard]] bool failed() const { return status_ != BatchStatus::kOk; }
  [[nodiscard]] BatchStatus status() const { return status_; }

  /// Bytes buffered awaiting a batch's completion; nonzero at disconnect
  /// means the peer died mid-batch (the tail is discarded, not an error).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  BatchStatus status_ = BatchStatus::kOk;
  std::uint64_t batches_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

inline constexpr std::size_t kNoTruncate =
    std::numeric_limits<std::size_t>::max();

/// What the chaos hook wants done to one outgoing batch.
struct BatchAction {
  double stall_seconds = 0.0;          // sleep before sending (slow consumer)
  std::size_t truncate_to = kNoTruncate;  // send only this many bytes, then
                                          // cut the connection mid-batch
  bool drop_connection = false;        // close after a clean send
};

/// Publisher-side fault seam.  Called once per send attempt from the sending
/// thread; `bytes` may be mutated in place to model wire corruption.
class TransportHook {
 public:
  virtual ~TransportHook() = default;
  virtual BatchAction on_batch(std::uint64_t batch_index,
                               std::vector<std::uint8_t>& bytes) = 0;
};

}  // namespace tsvpt::net
