#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tsvpt::net {

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;  // dead peer -> EPIPE, not SIGPIPE
#else
constexpr int kSendFlags = 0;
#endif

[[nodiscard]] sockaddr_in make_addr(const std::string& host,
                                    std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net: not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!sock.valid()) {
    throw std::runtime_error("net: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("net: cannot bind " + host + ": " +
                             std::string(std::strerror(errno)));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    throw std::runtime_error("net: listen() failed: " +
                             std::string(std::strerror(errno)));
  }
  return sock;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!sock.valid()) return Socket{};
  const sockaddr_in addr = make_addr(host, port);
  int rc = 0;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Socket{};
  return sock;
}

Socket tcp_accept(const Socket& listener) {
  int fd = -1;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  return Socket{fd};
}

void set_nonblocking(const Socket& socket, bool enabled) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) return;
  const int next = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  ::fcntl(socket.fd(), F_SETFL, next);
}

void set_nodelay(const Socket& socket) {
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

IoResult recv_some(const Socket& socket, std::uint8_t* data,
                   std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), data, size, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult send_some(const Socket& socket, const std::uint8_t* data,
                   std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(socket.fd(), data, size, kSendFlags);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

bool send_all(const Socket& socket, const std::uint8_t* data,
              std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const IoResult r = send_some(socket, data + sent, size - sent);
    if (r.status == IoStatus::kOk) {
      sent += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      // Non-blocking socket with a full kernel buffer: wait for writability
      // instead of spinning.  A short timeout keeps a wedged peer from
      // stalling the caller forever — the loop re-checks and the publisher's
      // own deadlines bound the total wait.
      pollfd pfd{socket.fd(), POLLOUT, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace tsvpt::net
