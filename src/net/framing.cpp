#include "net/framing.hpp"

#include <cstring>

#include "telemetry/codec_util.hpp"

namespace tsvpt::net {

namespace {

// Keep the consumed prefix from growing without bound on long-lived
// connections: once it passes this, shift the live tail to the front.
constexpr std::size_t kCompactThreshold = 1u << 16;

}  // namespace

const char* to_string(BatchStatus status) {
  switch (status) {
    case BatchStatus::kOk: return "ok";
    case BatchStatus::kBadMagic: return "bad-magic";
    case BatchStatus::kBadVersion: return "bad-version";
    case BatchStatus::kBadHeaderCrc: return "bad-header-crc";
    case BatchStatus::kOversized: return "oversized";
    case BatchStatus::kBadFrameBounds: return "bad-frame-bounds";
  }
  return "unknown";
}

const char* to_string(AckStatus status) {
  switch (status) {
    case AckStatus::kOk: return "ok";
    case AckStatus::kBadMagic: return "bad-magic";
    case AckStatus::kBadVersion: return "bad-version";
    case AckStatus::kBadCrc: return "bad-crc";
  }
  return "unknown";
}

std::size_t batch_wire_size(
    const std::vector<std::vector<std::uint8_t>>& frames) {
  std::size_t payload = 0;
  for (const auto& f : frames) payload += 4 + f.size();
  return kBatchHeaderSize + payload;
}

std::vector<std::uint8_t> encode_batch(
    const std::vector<std::vector<std::uint8_t>>& frames,
    const BatchMeta& meta) {
  using telemetry::put_u16;
  using telemetry::put_u32;
  using telemetry::put_u64;
  std::vector<std::uint8_t> out;
  out.reserve(batch_wire_size(frames));
  std::size_t payload = 0;
  for (const auto& f : frames) payload += 4 + f.size();
  put_u32(out, kBatchMagic);
  put_u16(out, kBatchVersion);
  put_u16(out, meta.flags);
  put_u64(out, meta.publisher_id);
  put_u64(out, meta.seq);
  put_u32(out, static_cast<std::uint32_t>(frames.size()));
  put_u32(out, static_cast<std::uint32_t>(payload));
  put_u64(out, meta.trace_id);
  put_u64(out, meta.send_ns);
  put_u64(out, static_cast<std::uint64_t>(meta.offset_ns));
  put_u32(out, telemetry::crc32(out.data(), kBatchCrcCoverage));
  for (const auto& f : frames) {
    put_u32(out, static_cast<std::uint32_t>(f.size()));
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

namespace {

// In-place little-endian u64 store (put_u64 only appends).
void store_u64(std::uint8_t* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void store_u32(std::uint8_t* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

bool restamp_batch_send(std::vector<std::uint8_t>& bytes,
                        std::uint64_t send_ns, std::int64_t offset_ns,
                        bool offset_valid) {
  if (bytes.size() < kBatchHeaderSize) return false;
  if (telemetry::get_u32(bytes.data()) != kBatchMagic) return false;
  // Spill logs written by a v2 build replay with their original 36-byte
  // headers — no timestamp fields to poke.
  if (telemetry::get_u16(bytes.data() + kBatchVersionOffset) !=
      kBatchVersion) {
    return false;
  }
  std::uint16_t flags = telemetry::get_u16(bytes.data() + kBatchFlagsOffset);
  if (offset_valid) {
    flags |= kBatchFlagOffsetValid;
  } else {
    flags = static_cast<std::uint16_t>(flags & ~kBatchFlagOffsetValid);
  }
  bytes[kBatchFlagsOffset] = static_cast<std::uint8_t>(flags);
  bytes[kBatchFlagsOffset + 1] = static_cast<std::uint8_t>(flags >> 8);
  store_u64(bytes.data() + kBatchSendNsOffset, send_ns);
  store_u64(bytes.data() + kBatchOffsetNsOffset,
            static_cast<std::uint64_t>(offset_ns));
  store_u32(bytes.data() + kBatchHeaderCrcOffset,
            telemetry::crc32(bytes.data(), kBatchCrcCoverage));
  return true;
}

BatchStatus BatchParser::consume(const std::uint8_t* data, std::size_t size,
                                 const FrameHandler& on_frame) {
  if (status_ != BatchStatus::kOk) return status_;
  buffer_.insert(buffer_.end(), data, data + size);

  for (;;) {
    const std::size_t available = buffer_.size() - pos_;
    // Magic + version first (6 bytes) — the version picks the header size.
    if (available < 8) break;
    const std::uint8_t* head = buffer_.data() + pos_;

    if (telemetry::get_u32(head) != kBatchMagic) {
      status_ = BatchStatus::kBadMagic;
      return status_;
    }
    const std::uint16_t version = telemetry::get_u16(head + kBatchVersionOffset);
    if (version != kBatchVersion && version != kBatchVersionV2) {
      status_ = BatchStatus::kBadVersion;
      return status_;
    }
    const std::size_t header_size =
        version == kBatchVersionV2 ? kBatchHeaderSizeV2 : kBatchHeaderSize;
    const std::size_t crc_coverage =
        version == kBatchVersionV2 ? kBatchV2CrcCoverage : kBatchCrcCoverage;
    if (available < header_size) break;
    BatchInfo info;
    info.version = version;
    info.flags = telemetry::get_u16(head + kBatchFlagsOffset);
    info.publisher_id = telemetry::get_u64(head + kBatchPublisherIdOffset);
    info.seq = telemetry::get_u64(head + kBatchSeqOffset);
    info.frame_count = telemetry::get_u32(head + kBatchFrameCountOffset);
    info.payload_bytes = telemetry::get_u32(head + kBatchPayloadBytesOffset);
    if (version == kBatchVersion) {
      info.trace_id = telemetry::get_u64(head + kBatchTraceIdOffset);
      info.send_ns = telemetry::get_u64(head + kBatchSendNsOffset);
      info.offset_ns = static_cast<std::int64_t>(
          telemetry::get_u64(head + kBatchOffsetNsOffset));
    }
    if (telemetry::get_u32(head + crc_coverage) !=
        telemetry::crc32(head, crc_coverage)) {
      status_ = BatchStatus::kBadHeaderCrc;
      return status_;
    }
    if (info.payload_bytes > kMaxBatchPayload ||
        info.frame_count > kMaxBatchFrames) {
      status_ = BatchStatus::kOversized;
      return status_;
    }
    if (available < header_size + info.payload_bytes) break;  // partial

    // Validate every inner length before emitting anything, so a batch whose
    // lengths disagree with payload_bytes emits zero frames.
    const std::uint8_t* payload = head + header_size;
    std::size_t cursor = 0;
    for (std::uint32_t i = 0; i < info.frame_count; ++i) {
      if (info.payload_bytes - cursor < 4) {
        status_ = BatchStatus::kBadFrameBounds;
        return status_;
      }
      const std::uint32_t len = telemetry::get_u32(payload + cursor);
      cursor += 4;
      if (info.payload_bytes - cursor < len) {
        status_ = BatchStatus::kBadFrameBounds;
        return status_;
      }
      cursor += len;
    }
    if (cursor != info.payload_bytes) {
      status_ = BatchStatus::kBadFrameBounds;
      return status_;
    }

    // The veto seam sees only fully validated batches, so a dedup decision
    // can never be made on bytes that later turn out to be torn.
    const bool emit = !on_batch_ || on_batch_(info);
    if (emit) {
      cursor = 0;
      for (std::uint32_t i = 0; i < info.frame_count; ++i) {
        const std::uint32_t len = telemetry::get_u32(payload + cursor);
        cursor += 4;
        on_frame(std::vector<std::uint8_t>(payload + cursor,
                                           payload + cursor + len));
        cursor += len;
      }
      frames_ += info.frame_count;
    } else {
      frames_skipped_ += info.frame_count;
    }

    pos_ += header_size + info.payload_bytes;
    batches_ += 1;
    bytes_ += header_size + info.payload_bytes;
  }

  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > kCompactThreshold) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return status_;
}

void append_ack(std::vector<std::uint8_t>& out, const AckFrame& ack) {
  using telemetry::put_u16;
  using telemetry::put_u32;
  using telemetry::put_u64;
  const std::size_t base = out.size();
  out.reserve(base + kAckFrameSize);
  put_u32(out, kAckMagic);
  put_u16(out, kAckVersion);
  put_u16(out, ack.flags);
  put_u64(out, ack.ack_seq);
  put_u32(out, ack.nack);
  put_u64(out, ack.echo_send_ns);
  put_u64(out, ack.srv_rx_ns);
  put_u64(out, ack.srv_tx_ns);
  put_u32(out, telemetry::crc32(out.data() + base, kAckCrcCoverage));
}

std::vector<std::uint8_t> encode_ack(const AckFrame& ack) {
  std::vector<std::uint8_t> out;
  append_ack(out, ack);
  return out;
}

AckStatus AckParser::consume(const std::uint8_t* data, std::size_t size,
                             const AckHandler& on_ack) {
  if (status_ != AckStatus::kOk) return status_;
  buffer_.insert(buffer_.end(), data, data + size);

  for (;;) {
    if (buffer_.size() - pos_ < 8) break;
    const std::uint8_t* head = buffer_.data() + pos_;
    if (telemetry::get_u32(head) != kAckMagic) {
      status_ = AckStatus::kBadMagic;
      return status_;
    }
    const std::uint16_t version = telemetry::get_u16(head + kAckVersionOffset);
    if (version != kAckVersion && version != kAckVersionV1) {
      status_ = AckStatus::kBadVersion;
      return status_;
    }
    const std::size_t frame_size =
        version == kAckVersionV1 ? kAckFrameSizeV1 : kAckFrameSize;
    const std::size_t crc_coverage =
        version == kAckVersionV1 ? kAckV1CrcCoverage : kAckCrcCoverage;
    if (buffer_.size() - pos_ < frame_size) break;
    if (telemetry::get_u32(head + crc_coverage) !=
        telemetry::crc32(head, crc_coverage)) {
      status_ = AckStatus::kBadCrc;
      return status_;
    }
    AckFrame ack;
    ack.flags = telemetry::get_u16(head + kAckFlagsOffset);
    ack.ack_seq = telemetry::get_u64(head + kAckSeqOffset);
    ack.nack = telemetry::get_u32(head + kAckNackOffset);
    if (version == kAckVersion) {
      ack.echo_send_ns = telemetry::get_u64(head + kAckEchoSendNsOffset);
      ack.srv_rx_ns = telemetry::get_u64(head + kAckSrvRxNsOffset);
      ack.srv_tx_ns = telemetry::get_u64(head + kAckSrvTxNsOffset);
    }
    pos_ += frame_size;
    acks_ += 1;
    on_ack(ack);
  }

  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ > kCompactThreshold) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return status_;
}

}  // namespace tsvpt::net
