// Shared DVFS-ladder and hysteresis primitives for thermal control.
//
// Every thermal actuator in the repo used to carry its own copy of the same
// two ideas: a ladder of (frequency, power) operating points walked one rung
// at a time (sim::DvfsGovernor, bench_a11), and a two-threshold hysteretic
// trip (sim::ThermalGuard).  This header is the single home for both; the
// control policies, the sim-layer governors and the benches all consume it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ptsim/units.hpp"

namespace tsvpt::control {

/// One rung of a DVFS ladder.
struct LadderLevel {
  std::string name;
  /// Relative clock (1.0 = nominal); work accrues at this rate.
  double relative_frequency = 1.0;
  /// Power multiplier applied to the die's map (~ f V^2 scaling).
  double power_scale = 1.0;
};

using Ladder = std::vector<LadderLevel>;

/// Throws std::invalid_argument unless the ladder is non-empty and strictly
/// slows downward (rung i+1 clocks slower than rung i).
void validate_ladder(const Ladder& ladder);

/// A typical 4-level ladder: nominal, -10 %, -25 %, half speed.  Power
/// scales follow ~ f V^2 at each point.
[[nodiscard]] Ladder typical_ladder();

/// Hysteretic one-rung-per-decision ladder walker: step down (slower) when
/// the observed temperature exceeds the ceiling, step back up when it cools
/// below the floor, hold anywhere in between.  Stateless — the caller owns
/// the current level, which makes per-die instances free.
struct LadderStepper {
  Celsius ceiling{85.0};
  Celsius floor{75.0};

  /// One decision; returns the new level (clamped to [0, ladder_size)).
  [[nodiscard]] std::size_t step(std::size_t level, std::size_t ladder_size,
                                 Celsius hottest) const;
};

/// Two-threshold trip: engages when the value exceeds `on`, releases when it
/// drops below `off`, holds state in the dead band (including exactly at
/// either threshold — no flapping at the boundary).
class Hysteresis {
 public:
  /// Throws std::invalid_argument unless off < on.
  Hysteresis(Celsius on, Celsius off);

  /// Feed one observation; returns the (possibly new) engaged state.
  bool update(Celsius value);
  [[nodiscard]] bool engaged() const { return engaged_; }
  void reset() { engaged_ = false; }

 private:
  Celsius on_;
  Celsius off_;
  bool engaged_ = false;
};

}  // namespace tsvpt::control
