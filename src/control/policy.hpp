// The control plane's vocabulary: what a policy sees (per-die observations
// distilled from one sensor scan), what it commands (per-die DVFS/gating
// levels plus inter-die power migrations), and how a command is applied to
// the simulated plant.
//
// Determinism rules (these make controller-in-the-loop fleet runs
// thread-count-invariant — see DESIGN.md "Closed-loop DTM"):
//   * a policy's decide() is a pure function of its own state and the
//     observation; no clocks, no global RNG, no cross-stack state;
//   * all floating-point reductions iterate sites/dies in index order;
//   * ties (equally hot dies) break toward the lowest die index.
//
// Safety rule: observations only carry *credible* readings — a reading with
// a real conversion behind it from a site the HealthSupervisor has not
// pulled from duty.  Degraded substitutes (quarantined sites, dead sensors,
// chaos placeholders) are excluded, so a policy can never actuate on a
// dead-sensor value; a die with zero credible sites arrives blind() and
// must be driven to its worst-case-safe command.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/stack_monitor.hpp"
#include "ptsim/units.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::control {

/// What one die looks like to a policy after one scan.
struct DieObservation {
  std::size_t die = 0;
  /// Hottest / mean credible sensed temperature on this die (meaningless
  /// when blind()).
  Celsius max_sensed{-273.15};
  Celsius mean_sensed{-273.15};
  std::size_t credible_sites = 0;
  std::size_t total_sites = 0;
  /// No credible reading: the policy is flying blind on this die.
  [[nodiscard]] bool blind() const { return credible_sites == 0; }
};

struct StackObservation {
  std::uint64_t scan = 0;
  Second sim_time{0.0};
  std::vector<DieObservation> dies;
};

/// Distill one scan into per-die observations.  A reading is credible when
/// it is not degraded (a real conversion happened) and its site is neither
/// quarantined nor dead.
[[nodiscard]] StackObservation observe_scan(
    std::uint64_t scan, Second sim_time,
    const std::vector<core::StackMonitor::SiteReading>& readings,
    std::size_t die_count);

/// Operating command for one die, held until the next decision.
struct DieCommand {
  /// Ladder rung the command corresponds to (informational for policies
  /// that do not walk a ladder).
  std::size_t level = 0;
  /// Work accrues at this rate (0 while gated).
  double relative_frequency = 1.0;
  /// Multiplier on the die's scalable power.
  double power_scale = 1.0;
  bool gated = false;

  friend bool operator==(const DieCommand& a, const DieCommand& b) {
    return a.level == b.level &&
           a.relative_frequency == b.relative_frequency &&
           a.power_scale == b.power_scale && a.gated == b.gated;
  }
};

/// Move a fraction of one die's programmed power onto another die
/// (task migration).  Fractions are of the *nominal* workload map — the
/// actuation is re-applied from the freshly programmed map every thermal
/// substep, so entries compose without feedback.
struct Migration {
  std::size_t from_die = 0;
  std::size_t to_die = 0;
  double fraction = 0.0;

  friend bool operator==(const Migration& a, const Migration& b) {
    return a.from_die == b.from_die && a.to_die == b.to_die &&
           a.fraction == b.fraction;
  }
};

struct Actuation {
  std::vector<DieCommand> dies;
  std::vector<Migration> migrations;
};

/// How the stack responds to commands.  `unscalable_fraction` is the share
/// of each die's programmed power no command can remove (clock tree,
/// uncore, IO): effective scale = u + (1 - u) * power_scale.  It is what
/// makes race-to-idle real — finishing the work sooner stops paying the
/// unscalable floor sooner, so parking at the bottom rung is *not* the
/// energy-optimal policy.
struct PlantModel {
  double unscalable_fraction = 0.35;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  /// One decision; the returned actuation is held until the next scan.
  [[nodiscard]] virtual Actuation decide(const StackObservation& obs) = 0;
  /// Worst-case-safe command: issued before the first observation ever
  /// arrives, and the shape blind dies must be driven to.
  [[nodiscard]] virtual Actuation safe_actuation() const = 0;
  virtual void reset() = 0;
};

/// Program the network's power map for time t from the workload, then apply
/// the actuation on top: migrations move programmed watts between dies,
/// per-die commands scale what remains (through the plant's unscalable
/// floor).  Leakage sources are physics, not task placement — untouched.
void apply_actuation(const thermal::Workload& workload,
                     thermal::ThermalNetwork& network, Second t,
                     const Actuation& act, const PlantModel& plant = {});

}  // namespace tsvpt::control
