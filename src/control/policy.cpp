#include "control/policy.hpp"

#include <stdexcept>

#include "core/health_supervisor.hpp"

namespace tsvpt::control {

namespace {

bool credible(const core::StackMonitor::SiteReading& r) {
  if (r.degraded) return false;
  const auto health = static_cast<core::HealthState>(r.health);
  return health != core::HealthState::kQuarantined &&
         health != core::HealthState::kDead;
}

}  // namespace

StackObservation observe_scan(
    std::uint64_t scan, Second sim_time,
    const std::vector<core::StackMonitor::SiteReading>& readings,
    std::size_t die_count) {
  StackObservation obs;
  obs.scan = scan;
  obs.sim_time = sim_time;
  obs.dies.resize(die_count);
  std::vector<double> sums(die_count, 0.0);
  for (std::size_t d = 0; d < die_count; ++d) obs.dies[d].die = d;
  for (const auto& r : readings) {
    if (r.die >= die_count) continue;  // foreign reading; never actuate on it
    DieObservation& die = obs.dies[r.die];
    die.total_sites += 1;
    if (!credible(r)) continue;
    die.credible_sites += 1;
    sums[r.die] += r.sensed.value();
    if (r.sensed > die.max_sensed) die.max_sensed = r.sensed;
  }
  for (std::size_t d = 0; d < die_count; ++d) {
    if (obs.dies[d].credible_sites > 0) {
      obs.dies[d].mean_sensed =
          Celsius{sums[d] / static_cast<double>(obs.dies[d].credible_sites)};
    }
  }
  return obs;
}

void apply_actuation(const thermal::Workload& workload,
                     thermal::ThermalNetwork& network, Second t,
                     const Actuation& act, const PlantModel& plant) {
  if (plant.unscalable_fraction < 0.0 || plant.unscalable_fraction > 1.0) {
    throw std::invalid_argument{"apply_actuation: unscalable_fraction"};
  }
  workload.apply(network, t);
  const std::size_t die_count = network.config().die_count();
  // Migrations first: they rebalance the nominal placement; the commands
  // then scale whatever each die ended up hosting.
  for (const Migration& m : act.migrations) {
    if (m.from_die >= die_count || m.to_die >= die_count ||
        m.from_die == m.to_die) {
      throw std::invalid_argument{"apply_actuation: bad migration"};
    }
    if (m.fraction < 0.0 || m.fraction > 1.0) {
      throw std::invalid_argument{"apply_actuation: migration fraction"};
    }
    const Watt moved{network.die_power(m.from_die).value() * m.fraction};
    network.scale_die_power(m.from_die, 1.0 - m.fraction);
    network.add_uniform_power(m.to_die, moved);
  }
  const std::size_t dies = std::min(act.dies.size(), die_count);
  for (std::size_t d = 0; d < dies; ++d) {
    const double u = plant.unscalable_fraction;
    network.scale_die_power(d, u + (1.0 - u) * act.dies[d].power_scale);
  }
}

}  // namespace tsvpt::control
