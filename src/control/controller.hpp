// Per-stack closed-loop controller and the fleet-wide control plane.
//
// A Controller owns one Policy and splits the loop into the two calls the
// sampling seams can make at their natural moments:
//
//   on_scan(...)   the sensor scan just finished — distill it into an
//                  observation, let the policy decide, hold the actuation;
//   note_tick(...) one thermal substep just ran under the held actuation —
//                  account energy, work, peak temperature and time spent
//                  over the scoring ceiling.
//
// The ControlPlane owns one Controller per stack.  Concurrency contract
// (same as inject::ChaosInjector): stack k's controller is only ever
// touched by the worker that owns stack k, so per-stack state needs no
// locking and results are identical no matter how many workers run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "control/policies.hpp"
#include "control/policy.hpp"

namespace tsvpt::control {

class Controller {
 public:
  struct Config {
    PolicyKind kind = PolicyKind::kDvfsLadder;
    PolicyConfig policy;
    /// How the plant responds to commands (shared by every seam that
    /// applies this controller's actuation).
    PlantModel plant;
    /// Scoring ceiling: violation-seconds accrue while the *true* max
    /// temperature exceeds it.  Keep it above the policy ceiling — the gap
    /// is the overshoot margin a sampled controller needs.
    Celsius violation_ceiling{85.0};
  };

  struct Stats {
    std::uint64_t decisions = 0;
    /// Decisions that changed at least one die command or migration.
    std::uint64_t actuations = 0;
    /// Individual die-command changes (rung moves, gate toggles).
    std::uint64_t level_changes = 0;
    /// Migration-entry changes (grown, retracted or added moves).
    std::uint64_t migrations = 0;
    /// Scans that saw at least one blind die (worst-case fallback held).
    std::uint64_t blind_scans = 0;
    double energy_j = 0.0;
    double work_done = 0.0;  // sum over dies of relative_frequency * dt
    double violation_s = 0.0;
    double peak_true_c = -273.15;
  };

  Controller(Config config, std::size_t die_count);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const char* policy_name() const { return policy_->name(); }
  /// The command currently held (worst-case-safe until the first scan).
  [[nodiscard]] const Actuation& actuation() const { return actuation_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Feed one finished scan; runs the policy and swaps in its actuation.
  void on_scan(std::uint64_t scan, Second sim_time,
               const std::vector<core::StackMonitor::SiteReading>& readings);
  void on_observation(const StackObservation& obs);

  /// Account one thermal substep run under the held actuation.
  void note_tick(Second dt, Celsius max_true, Watt total_power);

  /// Back to the policy's initial state and zeroed stats.
  void reset();

 private:
  Config config_;
  std::size_t die_count_;
  std::unique_ptr<Policy> policy_;
  Actuation actuation_;
  Stats stats_;
};

class ControlPlane {
 public:
  struct Config {
    Controller::Config controller;
    std::size_t stack_count = 1;
    std::size_t die_count = 4;
  };

  explicit ControlPlane(Config config);

  [[nodiscard]] std::size_t stack_count() const { return controllers_.size(); }
  [[nodiscard]] std::size_t die_count() const { return config_.die_count; }
  [[nodiscard]] Controller& controller(std::size_t stack) {
    return *controllers_.at(stack);
  }
  [[nodiscard]] const Controller& controller(std::size_t stack) const {
    return *controllers_.at(stack);
  }

  /// Stats summed across every stack (peak is the max, not the sum).
  [[nodiscard]] Controller::Stats total() const;

 private:
  Config config_;
  std::vector<std::unique_ptr<Controller>> controllers_;
};

/// Canonical byte image of every per-stack Stats, doubles rendered as raw
/// IEEE-754 bit patterns — byte-equal across runs iff the control outcome
/// was bit-identical (the thread-count-invariance gate in bench_a20).
[[nodiscard]] std::string canonical_digest(const ControlPlane& plane);

}  // namespace tsvpt::control
