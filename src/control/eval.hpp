// Single-stack closed-loop evaluation: the policy harness behind
// bench_a20, the closed_loop_dtm example and the Control* loop tests.
//
// Runs one stack controller-in-the-loop with a fixed *work budget* rather
// than a fixed duration: the run ends when the dies have accrued the budget
// (in relative-frequency-seconds) or the time cap expires.  That makes the
// energy comparison between policies honest — a policy that throttles
// harder takes longer to finish the same work and keeps paying the plant's
// unscalable power floor and leakage the whole time (race-to-idle).
//
// Sensor-loss scenarios inject dead-RO windows per site; with supervision
// enabled the harness mirrors the FleetSampler's skip-quarantined sampling
// path exactly: a site the HealthSupervisor has pulled from duty is never
// converted, so the controller's blind-die fallback — not a stale or
// fabricated reading — is what keeps the stack safe.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "control/controller.hpp"
#include "core/health_supervisor.hpp"
#include "core/stack_monitor.hpp"
#include "ptsim/units.hpp"
#include "thermal/network.hpp"
#include "thermal/workload.hpp"

namespace tsvpt::control {

/// Dead-RO window on one site: every oscillator of the site's sensor stops
/// at `start_scan` and recovers at `end_scan` (exclusive).
struct SensorOutage {
  std::size_t site = 0;
  std::uint64_t start_scan = 0;
  std::uint64_t end_scan = 0;
};

struct EvalConfig {
  Second sample_period{1e-3};
  Second thermal_step{2.5e-4};
  /// Stop once this much work is done (0 = run to max_duration).
  double work_budget = 0.0;
  Second max_duration{1.0};
  /// Start from the uncontrolled steady state instead of ambient.
  bool start_at_steady_state = false;
  /// Abort (EvalResult::runaway) once any true cell temperature exceeds
  /// this — the transient analogue of the network's runaway limit, which
  /// only steady-state solves enforce.  Default far above any survivable
  /// silicon temperature, i.e. effectively off.
  Celsius abort_above{500.0};
  bool supervise = false;
  core::HealthSupervisor::Config health;
  std::vector<SensorOutage> outages;
  /// Diagnostic hook: the post-supervision readings and held actuation
  /// after each scan's decision.
  std::function<void(std::uint64_t scan,
                     const std::vector<core::StackMonitor::SiteReading>&,
                     const Actuation&)>
      on_scan;
};

struct EvalResult {
  /// Work budget met before the time cap (always false with budget 0).
  bool completed = false;
  /// The run was aborted because the plant crossed `abort_above`.
  bool runaway = false;
  Second duration{0.0};
  Controller::Stats stats;
};

/// Deterministic given `noise_seed`.  Resets the controller, power-on
/// calibrates the monitor, then alternates scan/decide with actuated
/// thermal advancement until the budget or the cap is hit.
EvalResult run_closed_loop(thermal::ThermalNetwork& network,
                           const thermal::Workload& workload,
                           core::StackMonitor& monitor,
                           Controller& controller, const EvalConfig& config,
                           std::uint64_t noise_seed);

}  // namespace tsvpt::control
