#include "control/ladder.hpp"

#include <stdexcept>

namespace tsvpt::control {

void validate_ladder(const Ladder& ladder) {
  if (ladder.empty()) {
    throw std::invalid_argument{"control: empty ladder"};
  }
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    if (ladder[i].relative_frequency >= ladder[i - 1].relative_frequency) {
      throw std::invalid_argument{"control: ladder must slow downward"};
    }
  }
}

Ladder typical_ladder() {
  return {{"P0", 1.00, 1.00},
          {"P1", 0.90, 0.73},  // ~f V^2 at 0.9 f, 0.95 V
          {"P2", 0.75, 0.51},
          {"P3", 0.50, 0.25}};
}

std::size_t LadderStepper::step(std::size_t level, std::size_t ladder_size,
                                Celsius hottest) const {
  if (ladder_size == 0) return 0;
  if (level >= ladder_size) level = ladder_size - 1;
  if (hottest > ceiling && level + 1 < ladder_size) return level + 1;
  if (hottest < floor && level > 0) return level - 1;
  return level;
}

Hysteresis::Hysteresis(Celsius on, Celsius off) : on_(on), off_(off) {
  if (!(off < on)) {
    throw std::invalid_argument{"Hysteresis: off must be below on"};
  }
}

bool Hysteresis::update(Celsius value) {
  if (!engaged_ && value > on_) {
    engaged_ = true;
  } else if (engaged_ && value < off_) {
    engaged_ = false;
  }
  return engaged_;
}

}  // namespace tsvpt::control
