// The policy catalog.  Four ways to keep a 3D stack under its thermal
// ceiling, all speaking the same Policy interface so the eval harness
// (bench_a20) can score them against each other on energy, peak temperature
// and ceiling-violation time:
//
//   static     park every die at one worst-case rung, ignore sensing.  The
//              baseline every sensing policy must beat: always safe, never
//              efficient (it pays the unscalable power floor for the whole
//              stretched-out run).
//   dvfs       per-die ladder governor with hysteresis — the generalized
//              form of the bench_a11 / sim::DvfsGovernor walk, one stepper
//              per die.
//   gating     reactive clock/power gating: a hysteretic trip per die cuts
//              the die to a gate fraction on over-temp, releases below the
//              floor.  Blunt but fast.
//   migration  inter-die task migration: a dvfs backstop plus a persistent
//              set of power moves from the hottest die toward the coolest,
//              grown/retracted one step at a time under a cooldown so two
//              equally-hot dies never ping-pong work between them.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "control/ladder.hpp"
#include "control/policy.hpp"

namespace tsvpt::control {

enum class PolicyKind {
  kStaticWorstCase,
  kDvfsLadder,
  kReactiveGating,
  kMigration,
};

[[nodiscard]] const char* to_string(PolicyKind kind);
/// Parse "static" / "dvfs" / "gating" / "migration"; false on no match.
bool parse_policy_kind(std::string_view text, PolicyKind* out);

/// Marks "the slowest rung, whatever the ladder's length".
inline constexpr std::size_t kLadderBottom = static_cast<std::size_t>(-1);

/// One config drives all four policies; each reads its own slice.
struct PolicyConfig {
  Ladder ladder = typical_ladder();
  /// DVFS stepper thresholds (also the migration policy's backstop).
  Celsius ceiling{85.0};
  Celsius floor{75.0};
  /// Static baseline rung (kLadderBottom = last rung).
  std::size_t static_level = kLadderBottom;
  /// Gating trip/release and the power fraction left while gated.
  Celsius gate_on{85.0};
  Celsius gate_off{75.0};
  double gate_power_scale = 0.05;
  /// Migration: consider moving work only when the hottest die exceeds the
  /// trip AND leads the coolest by more than the margin; move `step` of the
  /// nominal map per decision, at most `cap` cumulative per die, no more
  /// often than every `cooldown_scans` decisions.
  Celsius migrate_trip{80.0};
  double migrate_margin_c = 2.0;
  double migrate_step = 0.1;
  double migrate_cap = 0.5;
  std::uint64_t migrate_cooldown_scans = 4;
};

/// Build a policy for a stack with `die_count` dies.  Throws
/// std::invalid_argument on a nonsensical config (bad ladder, inverted
/// thresholds, out-of-range fractions).
[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                                  const PolicyConfig& config,
                                                  std::size_t die_count);

}  // namespace tsvpt::control
